// Exploration of the Section 7.1 synthetic Books universe: generate 200
// sources (50 BAMM-style base schemas + perturbed copies, Zipf data, MTTF),
// run the iterative µBE loop, and score each iteration against the
// generator's ground truth (the Table 1 metrics).
//
//   ./build/examples/books_exploration
#include <iostream>

#include "core/engine.h"
#include "core/ga_evaluation.h"
#include "core/report.h"
#include "core/session.h"
#include "workload/generator.h"

int main() {
  // Scale 0.02 keeps data generation around a second while preserving the
  // structure (cardinalities 200..20k over pools of 40k+40k).
  ube::WorkloadConfig config;
  config.num_sources = 200;
  config.seed = 2007;
  config.scale = 0.02;
  std::cout << "generating " << config.num_sources
            << " Books-domain sources...\n";
  ube::GeneratedWorkload workload = ube::GenerateWorkload(config);
  ube::GroundTruth ground_truth = workload.ground_truth;

  ube::Engine engine(std::move(workload.universe),
                     ube::QualityModel::MakeDefault());
  ube::Session session(&engine);
  session.SetMaxSources(20);

  ube::SolverOptions options;
  options.seed = 1;
  options.max_iterations = 300;
  options.stall_iterations = 60;

  auto report = [&](const ube::Solution& solution, const char* header) {
    std::cout << "==== " << header << " ====\n";
    std::cout << ube::FormatSolution(solution, engine.universe(),
                                     engine.quality_model());
    std::cout << "ground-truth score (Table 1 metrics):\n"
              << ube::ToString(ube::EvaluateGaQuality(
                     solution.mediated_schema, solution.sources,
                     ground_truth))
              << "\n";
  };

  // ---- Iteration 1: defaults ------------------------------------------
  ube::Result<ube::Solution> first =
      session.Iterate(ube::SolverKind::kTabu, options);
  if (!first.ok()) {
    std::cerr << "solve failed: " << first.status() << "\n";
    return 1;
  }
  report(*first, "iteration 1: default weights, no constraints");

  // ---- Iteration 2: user cares most about data volume -------------------
  std::cout << ">>> user raises the cardinality weight to 0.6\n\n";
  if (ube::Status s = session.SetWeight("cardinality", 0.6); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  ube::Result<ube::Solution> second =
      session.Iterate(ube::SolverKind::kTabu, options);
  if (!second.ok()) {
    std::cerr << "solve failed: " << second.status() << "\n";
    return 1;
  }
  report(*second, "iteration 2: cardinality-biased");

  // ---- Iteration 3: keep the best concept, let it grow ------------------
  if (second->mediated_schema.num_gas() > 0) {
    int largest = 0;
    for (int g = 1; g < second->mediated_schema.num_gas(); ++g) {
      if (second->mediated_schema.ga(g).size() >
          second->mediated_schema.ga(largest).size()) {
        largest = g;
      }
    }
    std::cout << ">>> user promotes GA " << largest
              << " into a GA constraint and re-solves\n\n";
    if (ube::Status s = session.PromoteGa(largest); !s.ok()) {
      std::cerr << s << "\n";
      return 1;
    }
    ube::SolverOptions third_options = options;
    third_options.seed = 2;
    ube::Result<ube::Solution> third =
        session.Iterate(ube::SolverKind::kTabu, third_options);
    if (!third.ok()) {
      std::cerr << "solve failed: " << third.status() << "\n";
      return 1;
    }
    report(*third, "iteration 3: promoted GA constraint");
  }

  std::cout << "session ran " << session.num_iterations()
            << " iterations.\n";
  return 0;
}
