// The paper's motivating example (Section 1, Figure 1): hidden-Web theater
// ticket sources found via a CompletePlanet-style query. Schemas are the
// ones listed in Figure 1. No tuple data is available for hidden-Web query
// interfaces, so the quality model here uses matching quality plus latency
// and cardinality claims only — exactly the "schemas + source
// characteristics" regime µBE supports.
//
// The run demonstrates the iterative loop: a first solve groups the
// lexically obvious attributes; the user then bridges "keywords" with
// "search for" and "phrase, search term"-style attributes via a GA
// constraint (the Matching-By-Example gesture), and re-solves.
//
//   ./build/examples/theater_tickets
#include <iostream>

#include "core/engine.h"
#include "core/report.h"
#include "core/session.h"

namespace {

ube::DataSource HiddenWebSource(const std::string& name,
                                std::vector<std::string> attributes,
                                int64_t claimed_listings, double latency_ms) {
  ube::DataSource source(name, ube::SourceSchema(std::move(attributes)));
  // Hidden-Web sources rarely cooperate with signatures; µBE then relies on
  // claimed cardinality and other characteristics (Section 4 fallback).
  source.set_cardinality(claimed_listings);
  source.SetCharacteristic("latency_ms", latency_ms);
  return source;
}

void PrintSolution(const ube::Engine& engine, const ube::Solution& solution,
                   const char* header) {
  std::cout << "==== " << header << " ====\n"
            << ube::FormatSolution(solution, engine.universe(),
                                   engine.quality_model())
            << "\n";
}

}  // namespace

int main() {
  ube::Universe universe;
  // Figure 1 of the paper, verbatim.
  universe.AddSource(
      HiddenWebSource("tonyawards.com", {"keywords"}, 1200, 180));
  universe.AddSource(
      HiddenWebSource("whatsonstage.com", {"your town"}, 15000, 220));
  universe.AddSource(HiddenWebSource(
      "aceticket.com", {"state", "city", "event", "venue"}, 80000, 140));
  universe.AddSource(HiddenWebSource(
      "canadiantheatre.com", {"phrase", "search term"}, 6000, 320));
  universe.AddSource(HiddenWebSource(
      "londontheatre.co.uk", {"type", "keyword"}, 9000, 250));
  universe.AddSource(
      HiddenWebSource("mime.info.com", {"search for"}, 800, 400));
  universe.AddSource(HiddenWebSource(
      "pbs.org",
      {"program title", "date", "author", "actor", "director", "keyword"},
      30000, 160));
  universe.AddSource(HiddenWebSource("pa.msu.edu", {"keyword"}, 500, 500));
  universe.AddSource(HiddenWebSource(
      "wstonline.org", {"keyword", "after date", "before date"}, 4000, 290));
  universe.AddSource(HiddenWebSource(
      "officiallondontheatre.co.uk", {"keyword", "after date", "before date"},
      22000, 200));
  universe.AddSource(HiddenWebSource(
      "lastminute.com",
      {"event name", "event type", "location", "date", "radius"}, 120000,
      130));

  // Quality model for signature-less sources: matching dominates; prefer
  // sources that claim many listings and respond quickly.
  ube::QualityModel model;
  model.AddQef(std::make_unique<ube::MatchingQualityQef>(), 0.5);
  model.AddQef(std::make_unique<ube::CardinalityQef>(), 0.3);
  model.AddQef(std::make_unique<ube::CharacteristicQef>(
                   "latency_ms", ube::Aggregation::kWeightedSum,
                   /*invert=*/true),
               0.2);

  ube::Engine engine(std::move(universe), std::move(model));
  ube::Session session(&engine);
  session.SetMaxSources(6);
  session.SetTheta(0.55);  // hidden-Web labels are noisier than BAMM schemas

  ube::SolverOptions options;
  options.seed = 2007;

  // ---- Iteration 1: no constraints ------------------------------------
  ube::Result<ube::Solution> first = session.Iterate(
      ube::SolverKind::kTabu, options);
  if (!first.ok()) {
    std::cerr << "solve failed: " << first.status() << "\n";
    return 1;
  }
  PrintSolution(engine, *first, "iteration 1: automatic matching");

  // ---- Iteration 2: the user bridges the keyword-like attributes -------
  // "keywords", "search for", "phrase" and "search term" all denote
  // keyword search, but no string measure will say so. One GA constraint
  // bridges them; the clustering then grows the GA with every
  // lexically-similar "keyword" attribute (the bridging effect).
  ube::Status bridged = session.AddGaConstraintByNames({
      {"tonyawards.com", "keywords"},
      {"mime.info.com", "search for"},
      {"canadiantheatre.com", "phrase"},
  });
  if (!bridged.ok()) {
    std::cerr << "constraint failed: " << bridged << "\n";
    return 1;
  }
  std::cout << ">>> user adds GA constraint {tonyawards.keywords, "
               "mime.info.'search for', canadiantheatre.phrase}\n\n";

  ube::Result<ube::Solution> second = session.Iterate(
      ube::SolverKind::kTabu, options);
  if (!second.ok()) {
    std::cerr << "solve failed: " << second.status() << "\n";
    return 1;
  }
  PrintSolution(engine, *second, "iteration 2: with bridging GA constraint");

  // ---- Iteration 3: pin a personally preferred source ------------------
  std::cout << ">>> user pins lastminute.com (their preferred vendor)\n\n";
  if (ube::Status s = session.PinSourceByName("lastminute.com"); !s.ok()) {
    std::cerr << "pin failed: " << s << "\n";
    return 1;
  }
  ube::Result<ube::Solution> third = session.Iterate(
      ube::SolverKind::kTabu, options);
  if (!third.ok()) {
    std::cerr << "solve failed: " << third.status() << "\n";
    return 1;
  }
  PrintSolution(engine, *third, "iteration 3: preferred source pinned");

  return 0;
}
