// Compound schema elements (Section 2.1 extension): expressing n:m
// attribute correspondences as 1:1 matches over fused attributes.
//
// Scenario: three customer-record sources. Source A splits the customer
// name into two query fields, B and C expose a single field. Plain 1:1
// matching cannot relate A's fragments to B/C; fusing them into one
// compound element makes the correspondence a simple 1:1 match, which the
// regular µBE pipeline (clustering, QEFs, tabu search) then handles.
//
//   ./build/examples/compound_elements
#include <iostream>
#include <memory>

#include "core/engine.h"
#include "core/report.h"
#include "source/compound.h"

namespace {

ube::DataSource MakeSource(const std::string& name,
                           std::vector<std::string> attributes,
                           int64_t cardinality) {
  ube::DataSource source(name, ube::SourceSchema(std::move(attributes)));
  source.set_cardinality(cardinality);
  return source;
}

ube::QualityModel MatchingOnlyModel() {
  ube::QualityModel model;
  model.AddQef(std::make_unique<ube::MatchingQualityQef>(), 0.7);
  model.AddQef(std::make_unique<ube::CardinalityQef>(), 0.3);
  return model;
}

}  // namespace

int main() {
  ube::Universe original;
  original.AddSource(MakeSource(
      "split-crm.example", {"customer first name", "customer last name",
                            "account id"},
      50000));
  original.AddSource(MakeSource(
      "flat-crm.example", {"customer name", "account id"}, 80000));
  original.AddSource(MakeSource(
      "legacy-crm.example", {"customer name", "account number"}, 20000));

  // --- 1. plain 1:1 matching misses the split name ----------------------
  {
    ube::Engine engine(std::move(original), MatchingOnlyModel());
    ube::ProblemSpec spec;
    spec.max_sources = 3;
    spec.theta = 0.7;
    ube::Result<ube::Solution> flat = engine.Solve(spec);
    if (!flat.ok()) {
      std::cerr << flat.status() << "\n";
      return 1;
    }
    std::cout << "==== without compounds (1:1 only) ====\n"
              << ube::FormatSolution(*flat, engine.universe(),
                                     engine.quality_model())
              << "\n";
  }

  // --- 2. fuse the two name fragments of split-crm ----------------------
  // (rebuild the universe; Engine took ownership above)
  ube::Universe rebuilt;
  rebuilt.AddSource(MakeSource(
      "split-crm.example", {"customer first name", "customer last name",
                            "account id"},
      50000));
  rebuilt.AddSource(MakeSource(
      "flat-crm.example", {"customer name", "account id"}, 80000));
  rebuilt.AddSource(MakeSource(
      "legacy-crm.example", {"customer name", "account number"}, 20000));

  ube::CompoundGroup name_group;
  name_group.source = 0;
  name_group.attr_indices = {0, 1};
  name_group.name = "customer name";  // the user names the fused element

  auto derived = ube::BuildCompoundUniverse(rebuilt, {name_group});
  if (!derived.ok()) {
    std::cerr << derived.status() << "\n";
    return 1;
  }
  auto& [compound_universe, mapping] = *derived;

  ube::Engine engine(std::move(compound_universe), MatchingOnlyModel());
  ube::ProblemSpec spec;
  spec.max_sources = 3;
  spec.theta = 0.7;
  ube::Result<ube::Solution> fused = engine.Solve(spec);
  if (!fused.ok()) {
    std::cerr << fused.status() << "\n";
    return 1;
  }
  std::cout << "==== with the compound element ====\n"
            << ube::FormatSolution(*fused, engine.universe(),
                                   engine.quality_model());

  // --- 3. expand the GAs back to original attributes (n:m view) ---------
  std::cout << "\nn:m correspondences over the original schemas:\n";
  for (int g = 0; g < fused->mediated_schema.num_gas(); ++g) {
    std::cout << "  GA " << g << " covers original attributes:";
    ube::Result<std::vector<ube::AttributeId>> originals =
        mapping.ExpandGa(fused->mediated_schema.ga(g));
    if (!originals.ok()) {
      std::cerr << originals.status() << "\n";
      return 1;
    }
    for (const ube::AttributeId& id : originals.value()) {
      std::cout << " " << rebuilt.source(id.source).name() << "."
                << rebuilt.source(id.source).schema().attribute_name(
                       id.attr_index);
    }
    std::cout << "\n";
  }
  return 0;
}
