// Quickstart: build a small universe by hand, let µBE choose the sources
// and mediated schema, and print the result.
//
//   ./build/examples/quickstart
#include <iostream>
#include <memory>

#include "core/engine.h"
#include "core/report.h"
#include "sketch/distinct_estimator.h"

namespace {

// A toy book-selling source: `name`, its query-interface attributes, and a
// block of tuple ids [first, first+count) standing in for its inventory.
ube::DataSource MakeSource(const std::string& name,
                           std::vector<std::string> attributes,
                           uint64_t first, uint64_t count, double mttf) {
  ube::DataSource source(name, ube::SourceSchema(std::move(attributes)));
  source.set_cardinality(static_cast<int64_t>(count));
  // A cooperating source ships a PCSA hash signature of its tuples; µBE
  // never needs the data itself.
  auto signature = std::make_unique<ube::PcsaSignature>(64);
  for (uint64_t id = first; id < first + count; ++id) signature->Add(id);
  source.set_signature(std::move(signature));
  source.SetCharacteristic("mttf", mttf);
  return source;
}

}  // namespace

int main() {
  // 1. Describe the universe of candidate sources.
  ube::Universe universe;
  universe.AddSource(MakeSource(
      "megabooks.com", {"title", "author", "isbn", "price"}, 0, 60000, 120));
  universe.AddSource(MakeSource(
      "rarereads.com", {"title", "author", "condition"}, 40000, 30000, 90));
  universe.AddSource(MakeSource(
      "unibookstore.edu", {"title", "author", "subject"}, 55000, 25000, 150));
  universe.AddSource(MakeSource(
      "cheapbooks.net", {"title", "price", "seller"}, 0, 50000, 40));
  universe.AddSource(MakeSource(
      "obscure-annex.org", {"docket", "plaintiff"}, 90000, 5000, 30));

  // 2. Pick the quality model (the paper's default: matching, cardinality,
  //    coverage, redundancy, wsum(MTTF)).
  ube::Engine engine(std::move(universe), ube::QualityModel::MakeDefault());

  // 3. Pose the optimization problem: at most 3 sources, matching
  //    threshold 0.75.
  ube::ProblemSpec spec;
  spec.max_sources = 3;
  spec.theta = 0.75;

  ube::Result<ube::Solution> solution = engine.Solve(spec);
  if (!solution.ok()) {
    std::cerr << "solve failed: " << solution.status() << "\n";
    return 1;
  }

  // 4. Inspect the proposed data integration system.
  std::cout << "µBE quickstart — chose " << solution->sources.size()
            << " of " << engine.universe().num_sources() << " sources\n\n";
  std::cout << ube::FormatSolution(*solution, engine.universe(),
                                   engine.quality_model());
  return 0;
}
