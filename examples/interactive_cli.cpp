// Interactive µBE console — the textual equivalent of the paper's UI
// (Figure 4): pose a problem, look at the proposed sources and mediated
// schema, edit constraints/weights, re-solve.
//
//   ./build/examples/interactive_cli            # 120-source demo universe
//   ./build/examples/interactive_cli my.catalog  # user-provided catalog
//   echo "solve" | ./build/examples/interactive_cli   # scriptable
//
// Commands: help, sources, spec, solve, pin <src>, unpin <src>,
//           promote <ga>, ga <src.attr> <src.attr> ..., weight <qef> <w>,
//           m <n>, theta <v>, beta <n>, truth, history, clear, quit
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "core/engine.h"
#include "core/ga_evaluation.h"
#include "core/report.h"
#include "core/session.h"
#include "util/strings.h"
#include "workload/generator.h"

namespace {

void PrintHelp() {
  std::cout <<
      "commands:\n"
      "  solve               run one µBE iteration (tabu search)\n"
      "  sources             list the universe\n"
      "  spec                show the current problem spec\n"
      "  pin <name|id>       require a source in the solution\n"
      "  unpin <name|id>     remove a source constraint\n"
      "  ban <name|id>       exclude a source from all solutions\n"
      "  unban <name|id>     remove a ban\n"
      "  promote <ga-index>  turn an output GA into a GA constraint\n"
      "  ga <s.attr> ...     add a GA constraint from source.attribute pairs\n"
      "  weight <qef> <w>    set a QEF weight (others rescale)\n"
      "  m <n>               max sources to select\n"
      "  theta <v>           matching threshold\n"
      "  beta <n>            min attributes per generated GA\n"
      "  truth               score the last solution against ground truth\n"
      "  history             show quality per iteration\n"
      "  clear               drop all constraints\n"
      "  help                this text\n"
      "  quit                exit\n";
}

ube::SourceId ResolveSource(const ube::Universe& universe,
                            const std::string& token) {
  ube::Result<ube::SourceId> by_name = universe.FindByName(token);
  if (by_name.ok()) return by_name.value();
  try {
    int id = std::stoi(token);
    if (id >= 0 && id < universe.num_sources()) return id;
  } catch (...) {  // not a number; fall through
  }
  return -1;
}

}  // namespace

int main(int argc, char** argv) {
  ube::Universe universe;
  ube::GroundTruth ground_truth;
  bool have_ground_truth = false;
  if (argc > 1) {
    std::cout << "µBE interactive console — loading catalog " << argv[1]
              << "...\n";
    ube::Result<ube::Universe> loaded = ube::LoadCatalogFile(argv[1]);
    if (!loaded.ok()) {
      std::cerr << loaded.status() << "\n";
      return 1;
    }
    universe = std::move(loaded).value();
    std::cout << "loaded " << universe.num_sources() << " sources\n";
  } else {
    ube::WorkloadConfig config;
    config.num_sources = 120;
    config.seed = 7;
    config.scale = 0.01;
    std::cout << "µBE interactive console — generating a "
              << config.num_sources << "-source Books universe...\n";
    ube::GeneratedWorkload workload = ube::GenerateWorkload(config);
    ground_truth = workload.ground_truth;
    have_ground_truth = true;
    universe = std::move(workload.universe);
  }
  ube::Engine engine(std::move(universe),
                     ube::QualityModel::MakeDefault());
  ube::Session session(&engine);
  session.SetMaxSources(15);

  PrintHelp();
  std::string line;
  std::cout << "\nube> " << std::flush;
  while (std::getline(std::cin, line)) {
    std::vector<std::string> tokens = ube::SplitTokens(line);
    if (tokens.empty()) {
      std::cout << "ube> " << std::flush;
      continue;
    }
    const std::string& cmd = tokens[0];

    if (cmd == "quit" || cmd == "exit") break;

    if (cmd == "help") {
      PrintHelp();
    } else if (cmd == "sources") {
      for (ube::SourceId s = 0; s < engine.universe().num_sources(); ++s) {
        const ube::DataSource& src = engine.universe().source(s);
        std::cout << "  [" << s << "] " << src.name() << "  card="
                  << src.cardinality() << "  {"
                  << ube::Join(src.schema().names(), ", ") << "}\n";
      }
    } else if (cmd == "spec") {
      const ube::ProblemSpec& spec = session.spec();
      std::cout << "  m=" << spec.max_sources << " theta=" << spec.theta
                << " beta=" << spec.beta << "\n  pinned:";
      for (ube::SourceId s : spec.source_constraints) std::cout << " " << s;
      std::cout << "\n  banned:";
      for (ube::SourceId s : spec.banned_sources) std::cout << " " << s;
      std::cout << "\n  GA constraints: " << spec.ga_constraints.size()
                << "\n  weights:";
      const ube::QualityModel& model = engine.quality_model();
      const std::vector<double>& weights = session.effective_weights();
      for (int i = 0; i < model.num_qefs(); ++i) {
        std::cout << " " << model.qef(i).name() << "="
                  << weights[static_cast<size_t>(i)];
      }
      std::cout << "\n";
    } else if (cmd == "solve") {
      ube::SolverOptions options;
      options.seed = 42 + static_cast<uint64_t>(session.num_iterations());
      options.max_iterations = 300;
      options.stall_iterations = 60;
      ube::Result<ube::Solution> solution =
          session.Iterate(ube::SolverKind::kTabu, options);
      if (!solution.ok()) {
        std::cout << "error: " << solution.status() << "\n";
      } else {
        std::cout << ube::FormatSolution(*solution, engine.universe(),
                                         engine.quality_model());
      }
    } else if (cmd == "pin" && tokens.size() == 2) {
      ube::SourceId s = ResolveSource(engine.universe(), tokens[1]);
      if (s < 0) {
        std::cout << "unknown source '" << tokens[1] << "'\n";
      } else if (ube::Status status = session.PinSource(s); !status.ok()) {
        std::cout << "error: " << status << "\n";
      } else {
        std::cout << "pinned " << engine.universe().source(s).name() << "\n";
      }
    } else if (cmd == "unpin" && tokens.size() == 2) {
      ube::SourceId s = ResolveSource(engine.universe(), tokens[1]);
      ube::Status status = s < 0 ? ube::Status::NotFound("unknown source")
                                 : session.UnpinSource(s);
      std::cout << (status.ok() ? "unpinned" : status.ToString()) << "\n";
    } else if (cmd == "ban" && tokens.size() == 2) {
      ube::SourceId s = ResolveSource(engine.universe(), tokens[1]);
      ube::Status status = s < 0 ? ube::Status::NotFound("unknown source")
                                 : session.BanSource(s);
      std::cout << (status.ok() ? "banned" : status.ToString()) << "\n";
    } else if (cmd == "unban" && tokens.size() == 2) {
      ube::SourceId s = ResolveSource(engine.universe(), tokens[1]);
      ube::Status status = s < 0 ? ube::Status::NotFound("unknown source")
                                 : session.UnbanSource(s);
      std::cout << (status.ok() ? "unbanned" : status.ToString()) << "\n";
    } else if (cmd == "promote" && tokens.size() == 2) {
      ube::Status status = session.PromoteGa(std::atoi(tokens[1].c_str()));
      std::cout << (status.ok() ? "promoted" : status.ToString()) << "\n";
    } else if (cmd == "ga" && tokens.size() >= 3) {
      std::vector<std::pair<std::string, std::string>> attrs;
      bool parsed = true;
      for (size_t i = 1; i < tokens.size(); ++i) {
        size_t dot = tokens[i].find('.');
        if (dot == std::string::npos) {
          std::cout << "expected source.attribute, got " << tokens[i] << "\n";
          parsed = false;
          break;
        }
        attrs.emplace_back(tokens[i].substr(0, dot),
                           tokens[i].substr(dot + 1));
      }
      if (parsed) {
        ube::Status status = session.AddGaConstraintByNames(attrs);
        std::cout << (status.ok() ? "GA constraint added"
                                  : status.ToString())
                  << "\n";
      }
    } else if (cmd == "weight" && tokens.size() == 3) {
      ube::Status status =
          session.SetWeight(tokens[1], std::atof(tokens[2].c_str()));
      std::cout << (status.ok() ? "weights updated" : status.ToString())
                << "\n";
    } else if (cmd == "m" && tokens.size() == 2) {
      session.SetMaxSources(std::atoi(tokens[1].c_str()));
      std::cout << "m=" << session.spec().max_sources << "\n";
    } else if (cmd == "theta" && tokens.size() == 2) {
      session.SetTheta(std::atof(tokens[1].c_str()));
      std::cout << "theta=" << session.spec().theta << "\n";
    } else if (cmd == "beta" && tokens.size() == 2) {
      session.SetBeta(std::atoi(tokens[1].c_str()));
      std::cout << "beta=" << session.spec().beta << "\n";
    } else if (cmd == "truth") {
      if (!have_ground_truth) {
        std::cout << "ground truth is only available for the generated demo "
                     "universe\n";
      } else if (session.last() == nullptr) {
        std::cout << "no solution yet; run 'solve' first\n";
      } else {
        std::cout << ube::ToString(ube::EvaluateGaQuality(
            session.last()->mediated_schema, session.last()->sources,
            ground_truth));
      }
    } else if (cmd == "history") {
      for (int i = 0; i < session.num_iterations(); ++i) {
        const ube::Solution& s = session.history()[static_cast<size_t>(i)];
        std::cout << "  iter " << i + 1 << ": Q=" << s.quality << " |S|="
                  << s.sources.size() << " GAs="
                  << s.mediated_schema.num_gas() << "\n";
      }
    } else if (cmd == "clear") {
      session.ClearConstraints();
      std::cout << "constraints cleared\n";
    } else {
      std::cout << "unknown command; try 'help'\n";
    }
    std::cout << "ube> " << std::flush;
  }
  std::cout << "bye\n";
  return 0;
}
