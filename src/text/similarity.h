#ifndef UBE_TEXT_SIMILARITY_H_
#define UBE_TEXT_SIMILARITY_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>
#include <string_view>

namespace ube {

/// Pairwise attribute-name similarity measure in [0, 1].
///
/// µBE "can use any attribute similarity measure, whether it is schema based
/// or data based" (Section 3); the matcher is parameterized on this
/// interface. Implementations must be symmetric and return 1 for identical
/// inputs. All built-in measures normalize names with
/// NormalizeAttributeName before comparing.
class AttributeSimilarity {
 public:
  virtual ~AttributeSimilarity() = default;

  /// Similarity of the two attribute names, in [0, 1].
  virtual double Score(std::string_view a, std::string_view b) const = 0;

  /// Short identifier for diagnostics ("ngram-jaccard", "levenshtein", ...).
  virtual std::string_view name() const = 0;
};

/// The paper's measure: Jaccard coefficient over character n-grams
/// (default n = 3).
class NgramJaccardSimilarity final : public AttributeSimilarity {
 public:
  explicit NgramJaccardSimilarity(int n = 3) : n_(n) {}
  double Score(std::string_view a, std::string_view b) const override;
  std::string_view name() const override { return "ngram-jaccard"; }
  int n() const { return n_; }

 private:
  int n_;
};

/// Normalized Levenshtein similarity: 1 - dist(a, b) / max(|a|, |b|).
class LevenshteinSimilarity final : public AttributeSimilarity {
 public:
  double Score(std::string_view a, std::string_view b) const override;
  std::string_view name() const override { return "levenshtein"; }
};

/// Jaro or Jaro-Winkler similarity (Winkler prefix boost optional), one of
/// the classic name-matching measures from the Cohen et al. study the paper
/// cites for string distance metrics.
class JaroWinklerSimilarity final : public AttributeSimilarity {
 public:
  /// prefix_scale = 0 gives plain Jaro; the conventional Winkler scale is
  /// 0.1 with up to 4 prefix characters.
  explicit JaroWinklerSimilarity(double prefix_scale = 0.1)
      : prefix_scale_(prefix_scale) {}
  double Score(std::string_view a, std::string_view b) const override;
  std::string_view name() const override { return "jaro-winkler"; }

 private:
  double prefix_scale_;
};

/// Cosine similarity over whitespace-delimited word tokens — useful for
/// multi-word interface labels ("publication year" vs "year published").
class TokenCosineSimilarity final : public AttributeSimilarity {
 public:
  double Score(std::string_view a, std::string_view b) const override;
  std::string_view name() const override { return "token-cosine"; }
};

/// Combines several measures into one score — useful when no single
/// measure dominates (e.g. n-gram Jaccard for word-order-insensitive
/// matches plus Jaro-Winkler for typo tolerance). Section 3 allows any
/// similarity measure; this is the standard way to build ensemble ones.
class HybridSimilarity final : public AttributeSimilarity {
 public:
  enum class Combine {
    kMax,          ///< most optimistic member wins
    kWeightedMean, ///< weighted average (weights normalized internally)
  };

  explicit HybridSimilarity(Combine combine = Combine::kMax)
      : combine_(combine) {}

  /// Adds a member measure. `weight` only matters for kWeightedMean;
  /// weights need not sum to 1 (they are normalized). Must be called at
  /// least once before Score.
  void Add(std::unique_ptr<AttributeSimilarity> measure, double weight = 1.0);

  double Score(std::string_view a, std::string_view b) const override;
  std::string_view name() const override { return "hybrid"; }

  int num_members() const { return static_cast<int>(members_.size()); }
  Combine combine() const { return combine_; }

 private:
  Combine combine_;
  std::vector<std::pair<std::unique_ptr<AttributeSimilarity>, double>>
      members_;
};

/// Raw edit distance (exposed for tests and for users building their own
/// measures).
size_t LevenshteinDistance(std::string_view a, std::string_view b);

/// Plain Jaro similarity in [0, 1].
double JaroSimilarity(std::string_view a, std::string_view b);

/// Factory for the paper's default measure (3-gram Jaccard).
std::unique_ptr<AttributeSimilarity> MakeDefaultSimilarity();

}  // namespace ube

#endif  // UBE_TEXT_SIMILARITY_H_
