#include "text/similarity.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "text/ngram.h"
#include "util/check.h"
#include "util/strings.h"

namespace ube {

double NgramJaccardSimilarity::Score(std::string_view a,
                                     std::string_view b) const {
  return NgramJaccard(a, b, n_);
}

size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  // a is the shorter string; O(|a|) memory.
  std::vector<size_t> row(a.size() + 1);
  for (size_t i = 0; i <= a.size(); ++i) row[i] = i;
  for (size_t j = 1; j <= b.size(); ++j) {
    size_t prev_diag = row[0];
    row[0] = j;
    for (size_t i = 1; i <= a.size(); ++i) {
      size_t cur = row[i];
      size_t subst = prev_diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[i] = std::min({row[i] + 1, row[i - 1] + 1, subst});
      prev_diag = cur;
    }
  }
  return row[a.size()];
}

double LevenshteinSimilarity::Score(std::string_view a,
                                    std::string_view b) const {
  std::string na = NormalizeAttributeName(a);
  std::string nb = NormalizeAttributeName(b);
  if (na.empty() && nb.empty()) return 1.0;
  size_t longest = std::max(na.size(), nb.size());
  size_t dist = LevenshteinDistance(na, nb);
  return 1.0 - static_cast<double>(dist) / static_cast<double>(longest);
}

double JaroSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const int len_a = static_cast<int>(a.size());
  const int len_b = static_cast<int>(b.size());
  const int window = std::max(0, std::max(len_a, len_b) / 2 - 1);

  std::vector<bool> matched_a(a.size(), false);
  std::vector<bool> matched_b(b.size(), false);
  int matches = 0;
  for (int i = 0; i < len_a; ++i) {
    int lo = std::max(0, i - window);
    int hi = std::min(len_b - 1, i + window);
    for (int j = lo; j <= hi; ++j) {
      if (!matched_b[j] && a[i] == b[j]) {
        matched_a[i] = true;
        matched_b[j] = true;
        ++matches;
        break;
      }
    }
  }
  if (matches == 0) return 0.0;

  // Count transpositions among matched characters.
  int transpositions = 0;
  int j = 0;
  for (int i = 0; i < len_a; ++i) {
    if (!matched_a[i]) continue;
    while (!matched_b[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }
  double m = matches;
  return (m / len_a + m / len_b + (m - transpositions / 2.0) / m) / 3.0;
}

double JaroWinklerSimilarity::Score(std::string_view a,
                                    std::string_view b) const {
  std::string na = NormalizeAttributeName(a);
  std::string nb = NormalizeAttributeName(b);
  double jaro = JaroSimilarity(na, nb);
  if (prefix_scale_ <= 0.0) return jaro;
  int prefix = 0;
  for (size_t i = 0; i < std::min({na.size(), nb.size(), size_t{4}}); ++i) {
    if (na[i] != nb[i]) break;
    ++prefix;
  }
  return jaro + prefix * prefix_scale_ * (1.0 - jaro);
}

double TokenCosineSimilarity::Score(std::string_view a,
                                    std::string_view b) const {
  std::vector<std::string> ta = SplitTokens(NormalizeAttributeName(a));
  std::vector<std::string> tb = SplitTokens(NormalizeAttributeName(b));
  // Equal token vectors must score exactly 1 (the interface contract);
  // sqrt(n)*sqrt(n) below can round to just under n.
  if (ta == tb) return 1.0;
  if (ta.empty() || tb.empty()) return 0.0;

  std::map<std::string, std::pair<int, int>> counts;
  for (const auto& t : ta) counts[t].first++;
  for (const auto& t : tb) counts[t].second++;

  double dot = 0.0, norm_a = 0.0, norm_b = 0.0;
  for (const auto& [token, c] : counts) {
    dot += static_cast<double>(c.first) * c.second;
    norm_a += static_cast<double>(c.first) * c.first;
    norm_b += static_cast<double>(c.second) * c.second;
  }
  if (norm_a == 0.0 || norm_b == 0.0) return 0.0;
  return dot / (std::sqrt(norm_a) * std::sqrt(norm_b));
}

void HybridSimilarity::Add(std::unique_ptr<AttributeSimilarity> measure,
                           double weight) {
  UBE_CHECK(measure != nullptr, "HybridSimilarity::Add requires a measure");
  UBE_CHECK(weight >= 0.0, "member weight must be non-negative");
  members_.emplace_back(std::move(measure), weight);
}

double HybridSimilarity::Score(std::string_view a, std::string_view b) const {
  UBE_CHECK(!members_.empty(), "HybridSimilarity has no member measures");
  switch (combine_) {
    case Combine::kMax: {
      double best = 0.0;
      for (const auto& [measure, weight] : members_) {
        best = std::max(best, measure->Score(a, b));
      }
      return best;
    }
    case Combine::kWeightedMean: {
      double total_weight = 0.0;
      double sum = 0.0;
      for (const auto& [measure, weight] : members_) {
        sum += weight * measure->Score(a, b);
        total_weight += weight;
      }
      return total_weight > 0.0 ? sum / total_weight : 0.0;
    }
  }
  UBE_CHECK(false, "unknown combine mode");
  return 0.0;
}

std::unique_ptr<AttributeSimilarity> MakeDefaultSimilarity() {
  return std::make_unique<NgramJaccardSimilarity>(3);
}

}  // namespace ube
