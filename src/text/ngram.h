#ifndef UBE_TEXT_NGRAM_H_
#define UBE_TEXT_NGRAM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ube {

/// A set of character n-grams, packed into sorted unique 64-bit codes so
/// that set intersection/union run in O(|a| + |b|) over sorted vectors.
///
/// The paper measures attribute similarity as "the Jaccard similarity
/// coefficient between the 3-grams in the attribute names" (Section 3);
/// NgramSet is the precomputed per-attribute representation that makes the
/// O(#attributes²) similarity-graph construction cheap.
class NgramSet {
 public:
  NgramSet() = default;

  /// Builds the n-gram set of `text` (n in [1, 8]). The text is used as-is;
  /// callers normally pass NormalizeAttributeName(name). Following common
  /// practice (and making 1-2 character names meaningful), the text is
  /// padded with (n-1) sentinel characters on each side before extraction.
  static NgramSet Build(std::string_view text, int n = 3);

  /// Number of distinct n-grams.
  size_t size() const { return grams_.size(); }
  bool empty() const { return grams_.empty(); }

  /// Size of the intersection with `other`.
  size_t IntersectionSize(const NgramSet& other) const;

  /// Size of the union with `other`.
  size_t UnionSize(const NgramSet& other) const;

  /// Jaccard coefficient |A ∩ B| / |A ∪ B|; 1.0 when both sets are empty
  /// (two empty names are identical), 0.0 when exactly one is empty.
  double Jaccard(const NgramSet& other) const;

  const std::vector<uint64_t>& grams() const { return grams_; }

  friend bool operator==(const NgramSet& a, const NgramSet& b) {
    return a.grams_ == b.grams_;
  }

 private:
  std::vector<uint64_t> grams_;  // sorted, unique
};

/// Convenience: Jaccard over n-grams of two raw strings (each normalized by
/// NormalizeAttributeName first).
double NgramJaccard(std::string_view a, std::string_view b, int n = 3);

}  // namespace ube

#endif  // UBE_TEXT_NGRAM_H_
