#include "text/ngram.h"

#include <algorithm>

#include "util/check.h"
#include "util/strings.h"

namespace ube {

namespace {

// Sentinel byte used for padding; cannot appear in normalized names.
constexpr char kPad = '\x01';

}  // namespace

NgramSet NgramSet::Build(std::string_view text, int n) {
  UBE_CHECK(n >= 1 && n <= 8, "n-gram size must be in [1, 8]");
  NgramSet out;
  if (text.empty()) return out;

  std::string padded;
  padded.reserve(text.size() + 2 * (n - 1));
  padded.append(static_cast<size_t>(n - 1), kPad);
  padded.append(text);
  padded.append(static_cast<size_t>(n - 1), kPad);

  out.grams_.reserve(padded.size());
  for (size_t i = 0; i + n <= padded.size(); ++i) {
    uint64_t code = 0;
    for (int j = 0; j < n; ++j) {
      code = (code << 8) | static_cast<unsigned char>(padded[i + j]);
    }
    out.grams_.push_back(code);
  }
  std::sort(out.grams_.begin(), out.grams_.end());
  out.grams_.erase(std::unique(out.grams_.begin(), out.grams_.end()),
                   out.grams_.end());
  return out;
}

size_t NgramSet::IntersectionSize(const NgramSet& other) const {
  size_t count = 0;
  auto a = grams_.begin();
  auto b = other.grams_.begin();
  while (a != grams_.end() && b != other.grams_.end()) {
    if (*a < *b) {
      ++a;
    } else if (*b < *a) {
      ++b;
    } else {
      ++count;
      ++a;
      ++b;
    }
  }
  return count;
}

size_t NgramSet::UnionSize(const NgramSet& other) const {
  return grams_.size() + other.grams_.size() - IntersectionSize(other);
}

double NgramSet::Jaccard(const NgramSet& other) const {
  if (empty() && other.empty()) return 1.0;
  size_t inter = IntersectionSize(other);
  size_t uni = grams_.size() + other.grams_.size() - inter;
  if (uni == 0) return 1.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double NgramJaccard(std::string_view a, std::string_view b, int n) {
  NgramSet sa = NgramSet::Build(NormalizeAttributeName(a), n);
  NgramSet sb = NgramSet::Build(NormalizeAttributeName(b), n);
  return sa.Jaccard(sb);
}

}  // namespace ube
