#ifndef UBE_SCHEMA_SCHEMA_H_
#define UBE_SCHEMA_SCHEMA_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace ube {

/// Index of a data source within the universe.
using SourceId = int32_t;

/// Identifies one attribute a_ij: attribute `attr_index` of source
/// `source`. Ordered lexicographically so GAs can be kept sorted.
struct AttributeId {
  SourceId source = -1;
  int32_t attr_index = -1;

  friend bool operator==(const AttributeId&, const AttributeId&) = default;
  friend auto operator<=>(const AttributeId&, const AttributeId&) = default;
};

/// "source:index" — debugging aid.
std::string ToString(const AttributeId& id);

/// The relational schema of one data source: an ordered list of attribute
/// names, e.g. {"title", "author", "keyword"} (Section 2.1 restricts µBE's
/// prototype to relational schemas with 1:1 matching; compound elements can
/// be modeled by treating an element set as a single named attribute).
class SourceSchema {
 public:
  SourceSchema() = default;
  explicit SourceSchema(std::vector<std::string> attribute_names)
      : names_(std::move(attribute_names)) {}

  int num_attributes() const { return static_cast<int>(names_.size()); }
  bool empty() const { return names_.empty(); }

  /// Name of attribute `index`; index must be in range.
  const std::string& attribute_name(int index) const;

  // --- drift mutators (live universe, src/source/live_universe.h) --------
  //
  // Schema-drift churn events edit schemas in place. Renames keep every
  // attribute index stable; an added attribute always appends (taking index
  // num_attributes()), and removal shifts every later attribute down by one
  // — callers that cache AttributeIds must repair them (the similarity
  // graph's attribute patch operations do exactly that).

  /// Renames attribute `index` (must be in range).
  void RenameAttribute(int index, std::string name);
  /// Appends an attribute and returns its index.
  int AddAttribute(std::string name);
  /// Removes attribute `index` (must be in range); later indices shift.
  void RemoveAttribute(int index);

  /// Index of the first attribute with this exact name, or -1.
  int FindAttribute(std::string_view name) const;

  const std::vector<std::string>& names() const { return names_; }

  friend bool operator==(const SourceSchema&, const SourceSchema&) = default;

 private:
  std::vector<std::string> names_;
};

}  // namespace ube

namespace std {
template <>
struct hash<ube::AttributeId> {
  size_t operator()(const ube::AttributeId& id) const noexcept {
    return (static_cast<size_t>(id.source) << 32) ^
           static_cast<size_t>(static_cast<uint32_t>(id.attr_index));
  }
};
}  // namespace std

#endif  // UBE_SCHEMA_SCHEMA_H_
