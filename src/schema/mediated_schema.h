#ifndef UBE_SCHEMA_MEDIATED_SCHEMA_H_
#define UBE_SCHEMA_MEDIATED_SCHEMA_H_

#include <string>
#include <vector>

#include "schema/schema.h"

namespace ube {

/// A Global Attribute (GA): a set of attributes from different sources that
/// all express the same concept and map to one (unnamed) mediated-schema
/// attribute (Definition 1).
///
/// Attribute ids are kept sorted and unique. A GA is *valid* iff it is
/// non-empty and contains at most one attribute per source.
class GlobalAttribute {
 public:
  GlobalAttribute() = default;
  /// Builds a GA from an arbitrary list (sorted and deduplicated).
  explicit GlobalAttribute(std::vector<AttributeId> attributes);

  /// Definition 1: g ≠ ∅ and no two attributes come from the same source.
  bool IsValid() const;

  int size() const { return static_cast<int>(attributes_.size()); }
  bool empty() const { return attributes_.empty(); }

  bool Contains(const AttributeId& id) const;
  /// True if the GA has an attribute from source `source` (g ∩ s ≠ ∅).
  bool TouchesSource(SourceId source) const;
  /// True if every attribute of `other` is contained in this GA.
  bool ContainsAll(const GlobalAttribute& other) const;
  /// True if the two GAs share at least one attribute.
  bool Intersects(const GlobalAttribute& other) const;

  /// Adds an attribute (keeps order/uniqueness). Validity is not enforced
  /// here so callers can construct-and-check.
  void Add(const AttributeId& id);

  /// The distinct sources touched by this GA, sorted.
  std::vector<SourceId> Sources() const;

  const std::vector<AttributeId>& attributes() const { return attributes_; }

  friend bool operator==(const GlobalAttribute&,
                         const GlobalAttribute&) = default;

 private:
  std::vector<AttributeId> attributes_;  // sorted, unique
};

/// A mediated schema M: a set of GAs (Definition 2). M is valid on a set of
/// sources S iff (a) the GAs are pairwise disjoint and (b) every source in S
/// has at least one attribute in some GA.
class MediatedSchema {
 public:
  MediatedSchema() = default;
  explicit MediatedSchema(std::vector<GlobalAttribute> gas)
      : gas_(std::move(gas)) {}

  int num_gas() const { return static_cast<int>(gas_.size()); }
  bool empty() const { return gas_.empty(); }

  const GlobalAttribute& ga(int index) const;
  const std::vector<GlobalAttribute>& gas() const { return gas_; }

  void Add(GlobalAttribute ga) { gas_.push_back(std::move(ga)); }

  /// Pairwise-disjointness half of Definition 2 (plus per-GA validity).
  bool GasAreDisjointAndValid() const;

  /// Full Definition 2 check against the given source set.
  bool IsValidOn(const std::vector<SourceId>& sources) const;

  /// Definition 3: this ⊑ other — every GA of *this* is contained in some
  /// GA of `other`.
  bool IsSubsumedBy(const MediatedSchema& other) const;

  /// Total number of attributes across all GAs.
  int TotalAttributes() const;

  /// Index of the GA containing `id`, or -1.
  int FindGaContaining(const AttributeId& id) const;

 private:
  std::vector<GlobalAttribute> gas_;
};

}  // namespace ube

#endif  // UBE_SCHEMA_MEDIATED_SCHEMA_H_
