#include "schema/schema.h"

#include "util/check.h"

namespace ube {

std::string ToString(const AttributeId& id) {
  return std::to_string(id.source) + ":" + std::to_string(id.attr_index);
}

const std::string& SourceSchema::attribute_name(int index) const {
  UBE_CHECK(index >= 0 && index < num_attributes(),
            "attribute index out of range");
  return names_[static_cast<size_t>(index)];
}

void SourceSchema::RenameAttribute(int index, std::string name) {
  UBE_CHECK(index >= 0 && index < num_attributes(),
            "attribute index out of range");
  names_[static_cast<size_t>(index)] = std::move(name);
}

int SourceSchema::AddAttribute(std::string name) {
  names_.push_back(std::move(name));
  return num_attributes() - 1;
}

void SourceSchema::RemoveAttribute(int index) {
  UBE_CHECK(index >= 0 && index < num_attributes(),
            "attribute index out of range");
  names_.erase(names_.begin() + index);
}

int SourceSchema::FindAttribute(std::string_view name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace ube
