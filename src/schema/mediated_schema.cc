#include "schema/mediated_schema.h"

#include <algorithm>

#include "util/check.h"

namespace ube {

GlobalAttribute::GlobalAttribute(std::vector<AttributeId> attributes)
    : attributes_(std::move(attributes)) {
  std::sort(attributes_.begin(), attributes_.end());
  attributes_.erase(std::unique(attributes_.begin(), attributes_.end()),
                    attributes_.end());
}

bool GlobalAttribute::IsValid() const {
  if (attributes_.empty()) return false;
  for (size_t i = 1; i < attributes_.size(); ++i) {
    if (attributes_[i].source == attributes_[i - 1].source) return false;
  }
  return true;
}

bool GlobalAttribute::Contains(const AttributeId& id) const {
  return std::binary_search(attributes_.begin(), attributes_.end(), id);
}

bool GlobalAttribute::TouchesSource(SourceId source) const {
  // attributes_ is sorted by (source, attr_index); binary search on source.
  auto it = std::lower_bound(
      attributes_.begin(), attributes_.end(), source,
      [](const AttributeId& a, SourceId s) { return a.source < s; });
  return it != attributes_.end() && it->source == source;
}

bool GlobalAttribute::ContainsAll(const GlobalAttribute& other) const {
  return std::includes(attributes_.begin(), attributes_.end(),
                       other.attributes_.begin(), other.attributes_.end());
}

bool GlobalAttribute::Intersects(const GlobalAttribute& other) const {
  auto a = attributes_.begin();
  auto b = other.attributes_.begin();
  while (a != attributes_.end() && b != other.attributes_.end()) {
    if (*a < *b) {
      ++a;
    } else if (*b < *a) {
      ++b;
    } else {
      return true;
    }
  }
  return false;
}

void GlobalAttribute::Add(const AttributeId& id) {
  auto it = std::lower_bound(attributes_.begin(), attributes_.end(), id);
  if (it != attributes_.end() && *it == id) return;
  attributes_.insert(it, id);
}

std::vector<SourceId> GlobalAttribute::Sources() const {
  std::vector<SourceId> out;
  out.reserve(attributes_.size());
  for (const AttributeId& id : attributes_) {
    if (out.empty() || out.back() != id.source) out.push_back(id.source);
  }
  return out;
}

const GlobalAttribute& MediatedSchema::ga(int index) const {
  UBE_CHECK(index >= 0 && index < num_gas(), "GA index out of range");
  return gas_[static_cast<size_t>(index)];
}

bool MediatedSchema::GasAreDisjointAndValid() const {
  for (const GlobalAttribute& g : gas_) {
    if (!g.IsValid()) return false;
  }
  for (size_t i = 0; i < gas_.size(); ++i) {
    for (size_t j = i + 1; j < gas_.size(); ++j) {
      if (gas_[i].Intersects(gas_[j])) return false;
    }
  }
  return true;
}

bool MediatedSchema::IsValidOn(const std::vector<SourceId>& sources) const {
  if (!GasAreDisjointAndValid()) return false;
  for (SourceId s : sources) {
    bool touched = false;
    for (const GlobalAttribute& g : gas_) {
      if (g.TouchesSource(s)) {
        touched = true;
        break;
      }
    }
    if (!touched) return false;
  }
  return true;
}

bool MediatedSchema::IsSubsumedBy(const MediatedSchema& other) const {
  for (const GlobalAttribute& mine : gas_) {
    bool contained = false;
    for (const GlobalAttribute& theirs : other.gas_) {
      if (theirs.ContainsAll(mine)) {
        contained = true;
        break;
      }
    }
    if (!contained) return false;
  }
  return true;
}

int MediatedSchema::TotalAttributes() const {
  int total = 0;
  for (const GlobalAttribute& g : gas_) total += g.size();
  return total;
}

int MediatedSchema::FindGaContaining(const AttributeId& id) const {
  for (size_t i = 0; i < gas_.size(); ++i) {
    if (gas_[i].Contains(id)) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace ube
