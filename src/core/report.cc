#include "core/report.h"

#include <algorithm>
#include <cstdio>

#include "core/engine.h"
#include "obs/metrics.h"

namespace ube {

namespace {

std::string Format(const char* format, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), format, value);
  return buffer;
}

}  // namespace

std::string FormatMediatedSchema(const MediatedSchema& schema,
                                 const std::vector<double>& ga_qualities,
                                 const Universe& universe) {
  std::string out;
  for (int g = 0; g < schema.num_gas(); ++g) {
    out += "  GA " + std::to_string(g);
    if (static_cast<size_t>(g) < ga_qualities.size()) {
      out += " [q=" + Format("%.2f", ga_qualities[static_cast<size_t>(g)]) +
             "]";
    }
    out += ": {";
    const GlobalAttribute& ga = schema.ga(g);
    for (int a = 0; a < ga.size(); ++a) {
      const AttributeId& id = ga.attributes()[static_cast<size_t>(a)];
      if (a > 0) out += ", ";
      out += universe.source(id.source).name();
      out += ".";
      out += universe.source(id.source).schema().attribute_name(
          id.attr_index);
    }
    out += "}\n";
  }
  return out;
}

std::string FormatAcquisitionReport(const AcquisitionReport& report) {
  std::string out = report.Summary() + "\n";
  for (const SourceAcquisition& acq : report.sources) {
    if (acq.outcome == AcquisitionOutcome::kAcquired) continue;
    out += "  " + acq.name + ": " +
           std::string(AcquisitionOutcomeName(acq.outcome)) +
           "  (attempts=" + std::to_string(acq.attempts);
    if (acq.breaker_trips > 0) {
      out += ", breaker_trips=" + std::to_string(acq.breaker_trips);
    }
    if (acq.outcome == AcquisitionOutcome::kAcquiredStale) {
      out += ", staleness=" + Format("%.2f", acq.staleness);
    }
    out += ", elapsed=" + Format("%.0f", acq.elapsed_ms) + "ms";
    if (!acq.status.ok()) out += ", " + acq.status.ToString();
    out += ")\n";
  }
  return out;
}

std::string FormatSolution(const Solution& solution, const Universe& universe,
                           const QualityModel& model,
                           const AcquisitionReport* acquisition) {
  std::string out = FormatSolution(solution, universe, model);
  if (acquisition == nullptr ||
      acquisition->num_degraded() + acquisition->num_dropped() == 0) {
    return out;
  }
  out += "degraded sources (policy: " +
         std::string(DegradationPolicyName(model.degradation().policy)) +
         "):\n";
  out += FormatAcquisitionReport(*acquisition);
  return out;
}

std::string FormatSolution(const Solution& solution, const Universe& universe,
                           const QualityModel& model) {
  std::string out;
  out += "solver: " + solution.stats.solver_name +
         "  (iterations=" + std::to_string(solution.stats.iterations) +
         ", evaluations=" + std::to_string(solution.stats.evaluations) +
         ", time=" + Format("%.3f", solution.stats.elapsed_seconds) +
         "s, stop=" + std::string(StopReasonName(solution.stats.stop_reason)) +
         ")\n";
  out += "overall quality Q(S) = " + Format("%.4f", solution.quality) + "\n";
  for (size_t i = 0; i < solution.breakdown.scores.size() &&
                     static_cast<int>(i) < model.num_qefs();
       ++i) {
    out += "  " + std::string(model.qef(static_cast<int>(i)).name()) + " = " +
           Format("%.4f", solution.breakdown.scores[i]) + "  (weight " +
           Format("%.2f", model.weight(static_cast<int>(i))) + ")\n";
  }
  out += "sources (" + std::to_string(solution.sources.size()) + "):";
  for (SourceId s : solution.sources) {
    out += " " + universe.source(s).name();
  }
  out += "\nmediated schema (" +
         std::to_string(solution.mediated_schema.num_gas()) + " GAs):\n";
  out += FormatMediatedSchema(solution.mediated_schema,
                              solution.ga_qualities, universe);
  out += FormatObservability(solution.stats);
  return out;
}

std::string FormatContinuousReport(const ContinuousReport& report) {
  std::string out;
  out += "continuous: " + std::to_string(report.events_applied) + " events (" +
         std::to_string(report.drift_events) + " schema drift) over " +
         std::to_string(report.steps.size()) + " batches, " +
         std::to_string(report.repairs) + " repairs (" +
         std::to_string(report.repair_evaluations) + " evaluations), " +
         std::to_string(report.full_solves) + " full solves, " +
         std::to_string(report.escalations) + " escalations\n";
  out += "final quality Q(S) = " +
         Format("%.4f", report.final_solution.quality) +
         "  (last full solve " + Format("%.4f", report.last_full_quality) +
         ")\n";
  for (size_t i = 0; i < report.steps.size(); ++i) {
    const ContinuousStep& step = report.steps[i];
    out += "  batch " + std::to_string(i) + " @" +
           Format("%.0f", step.time_ms) + "ms: events=" +
           std::to_string(step.events_applied);
    if (step.drift_events > 0) {
      out += " (drift " + std::to_string(step.drift_events) + ")";
    }
    if (step.evicted > 0) out += " evicted=" + std::to_string(step.evicted);
    if (step.repair_budget > 0) {
      out += " budget=" + std::to_string(step.repair_budget);
    }
    out += " evals=" + std::to_string(step.evaluations) + " q=" +
           Format("%.4f", step.quality_before) + "->" +
           Format("%.4f", step.quality_after);
    if (step.escalated) {
      out += "  ESCALATED (" +
             std::string(EscalationReasonName(step.escalation_reason)) + ")";
    }
    out += "\n";
  }
  // Escalation-reason census (the quality backstop's shape at a glance).
  int by_reason[4] = {0, 0, 0, 0};
  for (const ContinuousStep& step : report.steps) {
    ++by_reason[static_cast<int>(step.escalation_reason)];
  }
  out += "escalation reasons:";
  for (int r = 0; r < 4; ++r) {
    if (by_reason[r] == 0) continue;
    out += " " +
           std::string(EscalationReasonName(static_cast<EscalationReason>(r))) +
           "=" + std::to_string(by_reason[r]);
  }
  out += "\n";
  return out;
}

std::string FormatObservability(const SolverStats& stats) {
  if (stats.metrics == nullptr) return "";
  std::string out = "observability:\n";
  const int64_t lookups = stats.evaluations + stats.cache_hits;
  const double hit_rate =
      lookups > 0
          ? 100.0 * static_cast<double>(stats.cache_hits) /
                static_cast<double>(lookups)
          : 0.0;
  out += "  cache: " + std::to_string(stats.cache_hits) + " hits / " +
         std::to_string(lookups) + " lookups (hit rate " +
         Format("%.1f", hit_rate) + "%)\n";
  if (!stats.telemetry.empty()) {
    out += "  telemetry: " + std::to_string(stats.telemetry.size()) +
           " iteration samples (" + std::to_string(stats.telemetry_dropped) +
           " dropped)\n";
    // Compact incumbent curve: up to 8 evenly spaced samples, always
    // including the last.
    out += "  incumbent curve:";
    const size_t n = stats.telemetry.size();
    const size_t step = n <= 8 ? 1 : (n + 7) / 8;
    for (size_t i = 0; i < n; i += step) {
      size_t at = std::min(i, n - 1);
      const obs::IterationSample& s = stats.telemetry[at];
      out += " @" + std::to_string(s.iteration) + ":" +
             Format("%.4f", s.incumbent_quality);
    }
    const obs::IterationSample& final_sample = stats.telemetry.back();
    if ((n - 1) % step != 0) {
      out += " @" + std::to_string(final_sample.iteration) + ":" +
             Format("%.4f", final_sample.incumbent_quality);
    }
    out += "\n";
  }
  out += obs::FormatMetricsReport(*stats.metrics);
  return out;
}

}  // namespace ube
