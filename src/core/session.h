#ifndef UBE_CORE_SESSION_H_
#define UBE_CORE_SESSION_H_

#include <string>
#include <string_view>
#include <vector>

#include "core/engine.h"

namespace ube {

/// The iterative user-feedback loop of Section 6: the user runs µBE, looks
/// at the proposed sources and mediated schema, edits the problem (pins
/// sources, promotes output GAs into GA constraints, re-weights QEFs,
/// changes m/θ/β), and re-solves — "the input has the same structure and
/// format as the output", which is what makes this loop cheap for the user.
///
/// Session keeps the evolving ProblemSpec and the solution history. All
/// feedback — including SetWeight, which edits a per-session weight overlay
/// in the spec — lives in per-session state; the engine is only ever read,
/// so any number of sessions can share one engine without corrupting each
/// other (SessionServer builds on exactly this).
class Session {
 public:
  /// Per-session effort/outcome counters (all deterministic except the
  /// wall-clock fields).
  struct Stats {
    int64_t iterations = 0;     ///< successful solves appended to history
    int64_t failed_solves = 0;  ///< Iterate calls that returned non-OK
    /// Solves seeded from a repaired previous incumbent / started cold.
    int64_t warm_solves = 0;
    int64_t cold_solves = 0;
    /// Feedback gestures accepted (pin/ban/unpin/unban/promote/add-GA/
    /// reweight) since the session opened.
    int64_t feedback_gestures = 0;
    double last_iterate_ms = 0.0;
    double total_iterate_ms = 0.0;
  };

  /// The engine must outlive the session. Sessions never mutate the engine
  /// (note the const — the type-level isolation guarantee); do not run
  /// Engine::RunContinuous while sessions are iterating.
  explicit Session(const Engine* engine);

  const ProblemSpec& spec() const { return spec_; }
  ProblemSpec& mutable_spec() { return spec_; }

  /// Solver knobs used by Iterate() when no explicit options are passed —
  /// set once per session (e.g. num_threads, budgets) and every iteration
  /// of the feedback loop inherits them.
  const SolverOptions& solver_options() const { return solver_options_; }
  SolverOptions& mutable_solver_options() { return solver_options_; }

  /// Warm-start re-solve: when enabled and a previous solution exists,
  /// Iterate repairs the last incumbent against the current spec
  /// (Engine::RepairSeed, bounded by repair_options()) and seeds the solver
  /// with the result via SolverOptions::initial_incumbent — so a feedback
  /// gesture re-solves from where the user already was instead of from
  /// scratch. When the whole incumbent is evicted (e.g. its sources all
  /// banned) the solve falls back cold, bit-identical to warm start off.
  /// Off by default: a plain Session keeps Iterate == Engine::Solve.
  void set_warm_start(bool on) { warm_start_ = on; }
  bool warm_start() const { return warm_start_; }

  /// Budget/seed of the warm-start repair (used only when warm_start()).
  const RepairOptions& repair_options() const { return repair_options_; }
  RepairOptions& mutable_repair_options() { return repair_options_; }

  /// Solves the current problem with the session's solver options and
  /// appends the solution to the history.
  Result<Solution> Iterate(SolverKind solver = SolverKind::kTabu);
  /// Same, with explicit one-off options. On failure (infeasible spec,
  /// solver error) the history is left untouched — last()/ReportLast()
  /// keep answering from the previous solution, never a half-appended one.
  Result<Solution> Iterate(SolverKind solver, const SolverOptions& options);

  /// Per-session counters (see Stats).
  const Stats& stats() const { return stats_; }

  int num_iterations() const { return static_cast<int>(history_.size()); }
  const std::vector<Solution>& history() const { return history_; }
  /// Last solution, or null before the first Iterate.
  const Solution* last() const;

  /// Renders the last solution (FormatSolution with the acquisition report
  /// and, when the engine has an ObsContext, the observability section).
  /// Empty string before the first Iterate.
  std::string ReportLast() const;

  /// The engine's acquisition report (null when the engine was built from a
  /// plain universe). Lets UI code render the DegradedSources section next
  /// to any solution in the history.
  const AcquisitionReport* acquisition_report() const {
    return engine_->acquisition_report();
  }

  // --- feedback operations (all take effect at the next Iterate) --------

  /// Requires `source` to be part of the solution (a source constraint).
  Status PinSource(SourceId source);
  /// Same, resolving the source by name.
  Status PinSourceByName(std::string_view name);
  /// Removes a source constraint.
  Status UnpinSource(SourceId source);

  /// Excludes `source` from all future solutions (the "reject this source"
  /// gesture). Fails if the source is currently pinned or referenced by a
  /// GA constraint.
  Status BanSource(SourceId source);
  /// Same, resolving the source by name.
  Status BanSourceByName(std::string_view name);
  /// Removes a ban.
  Status UnbanSource(SourceId source);

  /// Promotes GA `ga_index` of the last solution into a GA constraint —
  /// the core "Matching By Example" gesture. Existing GA constraints fully
  /// contained in the promoted GA are absorbed; a partial overlap with an
  /// unrelated constraint is an error.
  Status PromoteGa(int ga_index);
  /// Adds an explicit GA constraint (validated against the universe and
  /// existing constraints).
  Status AddGaConstraint(GlobalAttribute ga);
  /// Convenience: builds a GA from (source name, attribute name) pairs and
  /// adds it.
  Status AddGaConstraintByNames(
      const std::vector<std::pair<std::string, std::string>>& attributes);

  /// Sets the weight of QEF `qef_name`, rescaling the others so the weights
  /// keep summing to 1. Edits this session's weight overlay
  /// (ProblemSpec::weight_overlay, initialized from the engine's model on
  /// first use) — the engine's shared QualityModel is never touched, so
  /// concurrent sessions each solve under their own weights.
  Status SetWeight(std::string_view qef_name, double weight);

  /// This session's effective weights: the overlay when SetWeight has been
  /// called, the engine model's weights otherwise.
  const std::vector<double>& effective_weights() const;

  void SetMaxSources(int m) { spec_.max_sources = m; }
  void SetTheta(double theta) { spec_.theta = theta; }
  void SetBeta(int beta) { spec_.beta = beta; }
  void ClearConstraints();

 private:
  const Engine* engine_;
  ProblemSpec spec_;
  SolverOptions solver_options_;
  std::vector<Solution> history_;
  bool warm_start_ = false;
  RepairOptions repair_options_;
  Stats stats_;
};

}  // namespace ube

#endif  // UBE_CORE_SESSION_H_
