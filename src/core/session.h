#ifndef UBE_CORE_SESSION_H_
#define UBE_CORE_SESSION_H_

#include <string>
#include <string_view>
#include <vector>

#include "core/engine.h"

namespace ube {

/// The iterative user-feedback loop of Section 6: the user runs µBE, looks
/// at the proposed sources and mediated schema, edits the problem (pins
/// sources, promotes output GAs into GA constraints, re-weights QEFs,
/// changes m/θ/β), and re-solves — "the input has the same structure and
/// format as the output", which is what makes this loop cheap for the user.
///
/// Session keeps the evolving ProblemSpec and the solution history.
class Session {
 public:
  /// The engine must outlive the session.
  explicit Session(Engine* engine);

  const ProblemSpec& spec() const { return spec_; }
  ProblemSpec& mutable_spec() { return spec_; }

  /// Solver knobs used by Iterate() when no explicit options are passed —
  /// set once per session (e.g. num_threads, budgets) and every iteration
  /// of the feedback loop inherits them.
  const SolverOptions& solver_options() const { return solver_options_; }
  SolverOptions& mutable_solver_options() { return solver_options_; }

  /// Solves the current problem with the session's solver options and
  /// appends the solution to the history.
  Result<Solution> Iterate(SolverKind solver = SolverKind::kTabu);
  /// Same, with explicit one-off options.
  Result<Solution> Iterate(SolverKind solver, const SolverOptions& options);

  int num_iterations() const { return static_cast<int>(history_.size()); }
  const std::vector<Solution>& history() const { return history_; }
  /// Last solution, or null before the first Iterate.
  const Solution* last() const;

  /// Renders the last solution (FormatSolution with the acquisition report
  /// and, when the engine has an ObsContext, the observability section).
  /// Empty string before the first Iterate.
  std::string ReportLast() const;

  /// The engine's acquisition report (null when the engine was built from a
  /// plain universe). Lets UI code render the DegradedSources section next
  /// to any solution in the history.
  const AcquisitionReport* acquisition_report() const {
    return engine_->acquisition_report();
  }

  // --- feedback operations (all take effect at the next Iterate) --------

  /// Requires `source` to be part of the solution (a source constraint).
  Status PinSource(SourceId source);
  /// Same, resolving the source by name.
  Status PinSourceByName(std::string_view name);
  /// Removes a source constraint.
  Status UnpinSource(SourceId source);

  /// Excludes `source` from all future solutions (the "reject this source"
  /// gesture). Fails if the source is currently pinned or referenced by a
  /// GA constraint.
  Status BanSource(SourceId source);
  /// Same, resolving the source by name.
  Status BanSourceByName(std::string_view name);
  /// Removes a ban.
  Status UnbanSource(SourceId source);

  /// Promotes GA `ga_index` of the last solution into a GA constraint —
  /// the core "Matching By Example" gesture. Existing GA constraints fully
  /// contained in the promoted GA are absorbed; a partial overlap with an
  /// unrelated constraint is an error.
  Status PromoteGa(int ga_index);
  /// Adds an explicit GA constraint (validated against the universe and
  /// existing constraints).
  Status AddGaConstraint(GlobalAttribute ga);
  /// Convenience: builds a GA from (source name, attribute name) pairs and
  /// adds it.
  Status AddGaConstraintByNames(
      const std::vector<std::pair<std::string, std::string>>& attributes);

  /// Sets the weight of QEF `qef_name`, rescaling the others so the weights
  /// keep summing to 1. NOTE: mutates the engine's shared quality model.
  Status SetWeight(std::string_view qef_name, double weight);

  void SetMaxSources(int m) { spec_.max_sources = m; }
  void SetTheta(double theta) { spec_.theta = theta; }
  void SetBeta(int beta) { spec_.beta = beta; }
  void ClearConstraints();

 private:
  Engine* engine_;
  ProblemSpec spec_;
  SolverOptions solver_options_;
  std::vector<Solution> history_;
};

}  // namespace ube

#endif  // UBE_CORE_SESSION_H_
