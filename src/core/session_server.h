#ifndef UBE_CORE_SESSION_SERVER_H_
#define UBE_CORE_SESSION_SERVER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "core/engine.h"
#include "core/session.h"

namespace ube {

/// Multi-tenant front end over one engine: N concurrent feedback sessions
/// share a single immutable universe + similarity-graph snapshot (owned by
/// the server's Engine) while every piece of mutable state — bans, pins, GA
/// constraints, the QEF weight overlay, solution history — lives in the
/// per-session ProblemSpec. Sessions only ever *read* the engine (Session
/// holds `const Engine*`), so isolation is enforced by the type system, not
/// by convention.
///
/// What the server adds on top of plain Sessions:
///  - lifecycle: Open()/Close()/Find() under one mutex (the sessions
///    themselves are not synchronized — one user drives one session; many
///    sessions run concurrently);
///  - warm-start wiring: every opened session gets warm_start on (by
///    default), the server's RepairOptions, and the server's shared cache
///    plumbed into its SolverOptions — a feedback gesture re-solves from
///    the repaired previous incumbent instead of from scratch;
///  - the cross-session SharedQualityCache: quality memoization keyed by
///    (spec fingerprint, candidate), so two sessions posing the *same*
///    effective problem share hits while different specs can never poison
///    each other (verify-on-hit, see optimize/evaluator.h);
///  - per-server metrics (sessions opened/closed) on the optional
///    ObsContext.
///
/// Thread safety: Open/Close/Find/num_open/total_opened are safe to call
/// concurrently. A Session* returned by Open/Find is owned by the server
/// and must not be used after Close(id) — the caller coordinates that (in
/// a real service, one connection owns one session id). Do not call
/// Engine::RunContinuous on the wrapped engine while sessions exist; the
/// server only exposes the engine const for that reason.
class SessionServer {
 public:
  using SessionId = int64_t;

  struct Options {
    /// Applied to every opened session (the per-session copies can be
    /// edited afterwards via Session::mutable_solver_options()).
    SolverOptions solver_options;
    /// Budget of the warm-start repair each Iterate runs.
    RepairOptions repair;
    /// Warm-start re-solve for opened sessions (see Session::set_warm_start).
    bool warm_start = true;
    /// Bound of each shared-cache shard (entries).
    size_t cache_entries_per_shard = 1u << 14;
    /// Optional observability: counters server/sessions_opened and
    /// server/sessions_closed. Not owned; must outlive the server.
    obs::ObsContext* obs = nullptr;
  };

  /// Takes ownership of the engine. Primes the universe's lazily-built
  /// union signatures so concurrent first evaluations never race on the
  /// lazy init (the engine is immutable from here on).
  SessionServer(Engine engine, Options options);
  explicit SessionServer(Engine engine);

  SessionServer(const SessionServer&) = delete;
  SessionServer& operator=(const SessionServer&) = delete;

  /// Opens a fresh session wired per Options. The pointer stays valid until
  /// Close(id) or the server dies.
  std::pair<SessionId, Session*> Open();

  /// Destroys the session. NotFound for an unknown (or already closed) id.
  Status Close(SessionId id);

  /// The session, or null when the id is unknown/closed.
  Session* Find(SessionId id);

  int num_open() const;
  int64_t total_opened() const;

  const Engine& engine() const { return engine_; }
  const SharedQualityCache& cache() const { return cache_; }
  SharedQualityCache& mutable_cache() { return cache_; }
  const Options& options() const { return options_; }

 private:
  Options options_;
  Engine engine_;
  SharedQualityCache cache_;
  mutable std::mutex mu_;
  SessionId next_id_ = 1;
  int64_t total_opened_ = 0;
  std::unordered_map<SessionId, std::unique_ptr<Session>> sessions_;
};

}  // namespace ube

#endif  // UBE_CORE_SESSION_SERVER_H_
