#include "core/engine.h"

#include <algorithm>
#include <utility>

#include "obs/obs.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/timer.h"

namespace ube {

namespace {

/// Engine::Options → LiveUniverse::Options, with the match-phase span
/// wrapping graph construction (the dominant cost of engine startup).
LiveUniverse BuildLive(Universe universe, Engine::Options* options) {
  obs::Tracer::Span span = obs::SpanIf(options->obs, "phase/match");
  LiveUniverse::Options live;
  live.similarity_floor = options->similarity_floor;
  live.similarity = std::move(options->similarity);
  return LiveUniverse(std::move(universe), std::move(live));
}

/// Required ids of a spec (source constraints + GA constraint sources),
/// sorted unique — the set breaker bans must never touch.
std::vector<SourceId> RequiredIds(const ProblemSpec& spec) {
  std::vector<SourceId> required = spec.source_constraints;
  for (const GlobalAttribute& g : spec.ga_constraints) {
    for (const AttributeId& id : g.attributes()) required.push_back(id.source);
  }
  std::sort(required.begin(), required.end());
  required.erase(std::unique(required.begin(), required.end()),
                 required.end());
  return required;
}

}  // namespace

std::string_view EscalationReasonName(EscalationReason reason) {
  switch (reason) {
    case EscalationReason::kNone:
      return "none";
    case EscalationReason::kQualityFraction:
      return "quality-fraction";
    case EscalationReason::kIncumbentWipeout:
      return "incumbent-wipeout";
    case EscalationReason::kBaseline:
      return "baseline";
  }
  return "unknown";
}

Engine::Engine(Universe universe, QualityModel model)
    : Engine(std::move(universe), std::move(model), Options{}) {}

Engine::Engine(Universe universe, QualityModel model, Options options)
    : model_(std::move(model)),
      obs_(options.obs),
      live_(BuildLive(std::move(universe), &options)) {
  unavailable_ = live_.universe().UnavailableIds();
}

Engine::Engine(Acquisition acquisition, QualityModel model)
    : Engine(std::move(acquisition), std::move(model), Options{}) {}

Engine::Engine(Acquisition acquisition, QualityModel model, Options options)
    : Engine(std::move(acquisition.universe), std::move(model),
             std::move(options)) {
  acquisition_report_ = std::move(acquisition.report);
}

Result<ProblemSpec> Engine::EffectiveSpec(const ProblemSpec& spec) const {
  const Universe& universe = live_.universe();
  if (unavailable_.empty()) return spec;
  // A constraint pinning a dropped source can never be satisfied; report it
  // cleanly instead of letting it surface as a generic validation failure
  // (the dropped shell has an empty schema, so GA constraints on it would
  // otherwise read as "nonexistent attribute").
  for (SourceId s : spec.source_constraints) {
    if (s >= 0 && s < universe.num_sources() &&
        std::binary_search(unavailable_.begin(), unavailable_.end(), s)) {
      return Status::Unavailable(
          "source constraint pins '" + universe.source(s).name() +
          "', which was dropped during acquisition");
    }
  }
  for (const GlobalAttribute& g : spec.ga_constraints) {
    for (const AttributeId& id : g.attributes()) {
      if (id.source >= 0 && id.source < universe.num_sources() &&
          std::binary_search(unavailable_.begin(), unavailable_.end(),
                             id.source)) {
        return Status::Unavailable(
            "GA constraint references '" + universe.source(id.source).name() +
            "', which was dropped during acquisition");
      }
    }
  }
  ProblemSpec effective = spec;
  effective.banned_sources.insert(effective.banned_sources.end(),
                                  unavailable_.begin(), unavailable_.end());
  std::sort(effective.banned_sources.begin(), effective.banned_sources.end());
  effective.banned_sources.erase(
      std::unique(effective.banned_sources.begin(),
                  effective.banned_sources.end()),
      effective.banned_sources.end());
  return effective;
}

Result<Solution> Engine::Solve(const ProblemSpec& spec, SolverKind solver,
                               const SolverOptions& options) const {
  Result<ProblemSpec> effective = EffectiveSpec(spec);
  UBE_RETURN_IF_ERROR(effective.status());
  UBE_RETURN_IF_ERROR(
      CandidateEvaluator::ValidateSpec(live_.universe(), effective.value()));
  UBE_RETURN_IF_ERROR(
      CandidateEvaluator::ValidateOverlay(model_, effective.value()));
  if (spec.theta < live_.graph().floor()) {
    return Status::InvalidArgument(
        "θ is below the engine's similarity floor; rebuild the engine with a "
        "lower Options::similarity_floor");
  }
  obs::Tracer::Span evaluate_span = obs::SpanIf(obs_, "phase/evaluate");
  // The live version is the cache epoch: a shared cache warmed before a
  // churn event can never answer for the evolved universe.
  CandidateEvaluator evaluator(live_.universe(), live_.matcher(), model_,
                               effective.value(),
                               static_cast<uint64_t>(live_.version()));
  if (options.shared_cache != nullptr) {
    evaluator.AttachSharedCache(options.shared_cache);
  }
  evaluate_span.End();
  std::unique_ptr<Solver> impl = MakeSolver(solver);
  // Forward the engine's context into the solve unless the caller attached
  // their own SolverOptions::obs.
  SolverOptions effective_options = options;
  if (effective_options.obs == nullptr) effective_options.obs = obs_;
  obs::Tracer::Span solve_span = obs::SpanIf(obs_, "phase/solve");
  return impl->Solve(evaluator, effective_options);
}

Result<ContinuousReport> Engine::RunContinuous(
    const ProblemSpec& spec, const ChurnTrace& trace,
    const ContinuousOptions& options) {
  if (options.batch_ms <= 0.0) {
    return Status::InvalidArgument("ContinuousOptions::batch_ms must be > 0");
  }
  if (options.escalation_fraction < 0.0 || options.escalation_fraction > 1.0) {
    return Status::InvalidArgument(
        "ContinuousOptions::escalation_fraction must be in [0, 1]");
  }

  ContinuousReport report;
  // The initial solve is *exactly* Solve(spec, solver, solver_options), so
  // with an empty trace RunContinuous is byte-identical to a one-shot Solve
  // for any thread count (tests/test_continuous.cc pins this).
  Result<Solution> initial =
      Solve(spec, options.solver, options.solver_options);
  UBE_RETURN_IF_ERROR(initial.status());
  report.final_solution = std::move(initial.value());
  report.full_solves = 1;
  report.last_full_quality = report.final_solution.quality;

  using MetricId = obs::MetricsRegistry::MetricId;
  MetricId events_metric = obs::MetricsRegistry::kInvalidMetric;
  MetricId repairs_metric = events_metric, escalations_metric = events_metric,
           evictions_metric = events_metric, repair_evals_metric = events_metric,
           drift_metric = events_metric, repair_budget_metric = events_metric;
  if (obs_ != nullptr) {
    obs::MetricsRegistry& metrics = obs_->metrics();
    events_metric = metrics.Counter("continuous.events");
    repairs_metric = metrics.Counter("continuous.repairs");
    escalations_metric = metrics.Counter("continuous.escalations");
    evictions_metric = metrics.Counter("continuous.evictions");
    repair_evals_metric = metrics.Histogram(
        "continuous.repair_evals", {64, 256, 1'024, 4'096, 16'384});
    drift_metric = metrics.Counter("continuous.drift_events");
    repair_budget_metric = metrics.Histogram(
        "continuous.repair_budget", {256, 1'024, 4'096, 16'384});
  }

  std::vector<SourceId> incumbent = report.final_solution.sources;
  const bool baseline =
      options.mode == ContinuousOptions::Mode::kFullEverytime;
  // Sizes the repair budget per batch from recent outcomes. Deterministic
  // state fed only by deterministic repair results, so the replay contract
  // is unchanged.
  RepairBudgetController controller(options.repair.eval_budget,
                                    options.adaptive);

  size_t next = 0;
  uint64_t batch_index = 0;
  while (next < trace.events.size()) {
    obs::Tracer::Span batch_span = obs::SpanIf(obs_, "phase/churn_batch");
    // One batch = every event inside a batch_ms window anchored at the
    // first unapplied event, answered with a single repair / re-solve.
    const double window_end = trace.events[next].time_ms + options.batch_ms;
    ContinuousStep step;
    double batch_time = trace.events[next].time_ms;
    while (next < trace.events.size() &&
           trace.events[next].time_ms <= window_end + 1e-9) {
      UBE_RETURN_IF_ERROR(live_.Apply(trace.events[next]));
      batch_time = trace.events[next].time_ms;
      ++step.events_applied;
      if (IsSchemaDrift(trace.events[next].kind)) ++step.drift_events;
      ++next;
    }
    unavailable_ = live_.universe().UnavailableIds();
    step.time_ms = batch_time;
    report.events_applied += step.events_applied;
    report.drift_events += step.drift_events;
    if (obs_ != nullptr) {
      obs_->metrics().Add(events_metric, step.events_applied);
      if (step.drift_events > 0) {
        obs_->metrics().Add(drift_metric, step.drift_events);
      }
    }

    // Batch spec: dropped-source bans plus bans for every source whose
    // health breaker is open at batch time — except required sources, whose
    // absence would make the spec infeasible (the caller pinned them; an
    // open breaker is advisory, a constraint is not).
    Result<ProblemSpec> effective = EffectiveSpec(spec);
    UBE_RETURN_IF_ERROR(effective.status());
    ProblemSpec batch_spec = std::move(effective.value());
    const std::vector<SourceId> required = RequiredIds(batch_spec);
    for (SourceId s : live_.health().TrackedIds()) {
      if (live_.health().IsBlocked(s, batch_time) &&
          !std::binary_search(required.begin(), required.end(), s)) {
        batch_spec.banned_sources.push_back(s);
      }
    }
    std::sort(batch_spec.banned_sources.begin(),
              batch_spec.banned_sources.end());
    batch_spec.banned_sources.erase(
        std::unique(batch_spec.banned_sources.begin(),
                    batch_spec.banned_sources.end()),
        batch_spec.banned_sources.end());
    UBE_RETURN_IF_ERROR(
        CandidateEvaluator::ValidateSpec(live_.universe(), batch_spec));
    CandidateEvaluator evaluator(live_.universe(), live_.matcher(), model_,
                                 batch_spec);

    WallTimer timer(options.solver_options.clock);
    ++batch_index;
    bool escalate = baseline;
    EscalationReason reason =
        baseline ? EscalationReason::kBaseline : EscalationReason::kNone;
    if (!baseline) {
      RepairOptions repair = options.repair;
      // Per-batch derived stream: repairs stay decorrelated across batches
      // yet replay bit-identically from (trace, options).
      repair.seed =
          SplitMix64(options.repair.seed ^ (0x9e3779b97f4a7c15ull * batch_index));
      if (options.adaptive.enabled) {
        repair.eval_budget = controller.budget();
      }
      step.repair_budget = repair.eval_budget;
      repair.num_threads = options.solver_options.num_threads;
      repair.delta_eval = options.solver_options.delta_eval;
      repair.clock = options.solver_options.clock;
      if (repair.obs == nullptr) repair.obs = obs_;
      if (obs_ != nullptr) {
        obs_->metrics().Observe(repair_budget_metric, repair.eval_budget);
      }
      RepairResult repaired = RepairIncumbent(evaluator, incumbent, repair);
      step.evicted = repaired.evicted;
      step.quality_before = repaired.seed_quality;
      if (obs_ != nullptr && step.evicted > 0) {
        obs_->metrics().Add(evictions_metric, step.evicted);
      }
      int64_t repair_evals = 0;
      if (!repaired.seeded) {
        escalate = true;
        reason = EscalationReason::kIncumbentWipeout;
      } else {
        repair_evals = repaired.solution.stats.evaluations;
        ++report.repairs;
        step.evaluations += repair_evals;
        report.repair_evaluations += repair_evals;
        if (obs_ != nullptr) {
          obs_->metrics().Observe(repair_evals_metric, repair_evals);
          obs_->metrics().Add(repairs_metric);
        }
        if (repaired.solution.quality + 1e-12 <
            options.escalation_fraction * report.last_full_quality) {
          escalate = true;
          reason = EscalationReason::kQualityFraction;
        } else {
          report.final_solution = std::move(repaired.solution);
        }
      }
      controller.Record(repair_evals, repaired.seeded,
                        reason == EscalationReason::kQualityFraction,
                        reason == EscalationReason::kIncumbentWipeout);
    }
    if (escalate) {
      if (!baseline) {
        ++report.escalations;
        if (obs_ != nullptr) obs_->metrics().Add(escalations_metric);
      }
      SolverOptions solver_options = options.solver_options;
      if (solver_options.obs == nullptr) solver_options.obs = obs_;
      // Same evaluator as the repair, so breaker bans apply to the full
      // re-solve too.
      Result<Solution> solved =
          MakeSolver(options.solver)->Solve(evaluator, solver_options);
      UBE_RETURN_IF_ERROR(solved.status());
      ++report.full_solves;
      report.last_full_quality = solved.value().quality;
      step.evaluations += solved.value().stats.evaluations;
      report.final_solution = std::move(solved.value());
    }
    step.escalated = escalate;
    step.escalation_reason = reason;
    step.quality_after = report.final_solution.quality;
    step.elapsed_ms = timer.ElapsedMillis();
    incumbent = report.final_solution.sources;
    step.incumbent = incumbent;
    report.steps.push_back(std::move(step));
  }
  return report;
}

Result<CandidateEvaluator::Evaluation> Engine::EvaluateCandidate(
    const ProblemSpec& spec, std::vector<SourceId> sources) const {
  const Universe& universe = live_.universe();
  Result<ProblemSpec> resolved = EffectiveSpec(spec);
  UBE_RETURN_IF_ERROR(resolved.status());
  const ProblemSpec& effective = resolved.value();
  UBE_RETURN_IF_ERROR(CandidateEvaluator::ValidateSpec(universe, effective));
  for (SourceId s : sources) {
    UBE_RETURN_IF_ERROR(universe.ValidateId(s));
  }
  std::sort(sources.begin(), sources.end());
  sources.erase(std::unique(sources.begin(), sources.end()), sources.end());
  if (sources.empty()) {
    return Status::InvalidArgument("candidate must contain a source");
  }
  if (static_cast<int>(sources.size()) > spec.max_sources) {
    return Status::InvalidArgument("candidate exceeds m sources");
  }
  std::vector<SourceId> required;
  for (SourceId s : spec.source_constraints) required.push_back(s);
  for (const GlobalAttribute& g : spec.ga_constraints) {
    for (const AttributeId& id : g.attributes()) required.push_back(id.source);
  }
  for (SourceId s : required) {
    if (!std::binary_search(sources.begin(), sources.end(), s)) {
      return Status::InvalidArgument(
          "candidate omits a source the constraints require");
    }
  }
  for (SourceId s : effective.banned_sources) {
    if (std::binary_search(sources.begin(), sources.end(), s)) {
      if (std::binary_search(unavailable_.begin(), unavailable_.end(), s)) {
        return Status::Unavailable(
            "candidate contains '" + universe.source(s).name() +
            "', which was dropped during acquisition");
      }
      return Status::InvalidArgument("candidate contains a banned source");
    }
  }
  UBE_RETURN_IF_ERROR(CandidateEvaluator::ValidateOverlay(model_, effective));
  CandidateEvaluator evaluator(universe, live_.matcher(), model_, effective,
                               static_cast<uint64_t>(live_.version()));
  return evaluator.Evaluate(sources);
}

Result<std::vector<SourceId>> Engine::RepairSeed(
    const ProblemSpec& spec, const std::vector<SourceId>& incumbent,
    const RepairOptions& options) const {
  Result<ProblemSpec> effective = EffectiveSpec(spec);
  UBE_RETURN_IF_ERROR(effective.status());
  UBE_RETURN_IF_ERROR(
      CandidateEvaluator::ValidateSpec(live_.universe(), effective.value()));
  UBE_RETURN_IF_ERROR(
      CandidateEvaluator::ValidateOverlay(model_, effective.value()));
  CandidateEvaluator evaluator(live_.universe(), live_.matcher(), model_,
                               effective.value(),
                               static_cast<uint64_t>(live_.version()));
  if (options.shared_cache != nullptr) {
    // Repair and the subsequent solve share one spec fingerprint, so the
    // repair's evaluations pre-warm the session's solve.
    evaluator.AttachSharedCache(options.shared_cache);
  }
  RepairResult repaired = RepairIncumbent(evaluator, incumbent, options);
  if (!repaired.seeded) return std::vector<SourceId>{};
  return std::move(repaired.solution.sources);
}

Result<MatchResult> Engine::MatchSources(const ProblemSpec& spec,
                                         std::vector<SourceId> sources) const {
  const Universe& universe = live_.universe();
  UBE_RETURN_IF_ERROR(CandidateEvaluator::ValidateSpec(universe, spec));
  for (SourceId s : sources) {
    UBE_RETURN_IF_ERROR(universe.ValidateId(s));
  }
  std::sort(sources.begin(), sources.end());
  sources.erase(std::unique(sources.begin(), sources.end()), sources.end());
  MatchOptions options;
  options.theta = spec.theta;
  options.beta = spec.beta;
  return live_.matcher().Match(sources, spec.source_constraints,
                               spec.ga_constraints, options);
}

}  // namespace ube
