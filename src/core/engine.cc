#include "core/engine.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace ube {

Engine::Engine(Universe universe, QualityModel model)
    : Engine(std::move(universe), std::move(model), Options{}) {}

Engine::Engine(Universe universe, QualityModel model, Options options)
    : universe_(std::move(universe)), model_(std::move(model)) {
  std::unique_ptr<AttributeSimilarity> measure =
      options.similarity != nullptr ? std::move(options.similarity)
                                    : MakeDefaultSimilarity();
  graph_ = std::make_unique<SimilarityGraph>(universe_, std::move(measure),
                                             options.similarity_floor);
  matcher_ = std::make_unique<ClusterMatcher>(universe_, *graph_);
}

Result<Solution> Engine::Solve(const ProblemSpec& spec, SolverKind solver,
                               const SolverOptions& options) const {
  UBE_RETURN_IF_ERROR(CandidateEvaluator::ValidateSpec(universe_, spec));
  if (spec.theta < graph_->floor()) {
    return Status::InvalidArgument(
        "θ is below the engine's similarity floor; rebuild the engine with a "
        "lower Options::similarity_floor");
  }
  CandidateEvaluator evaluator(universe_, *matcher_, model_, spec);
  std::unique_ptr<Solver> impl = MakeSolver(solver);
  return impl->Solve(evaluator, options);
}

Result<CandidateEvaluator::Evaluation> Engine::EvaluateCandidate(
    const ProblemSpec& spec, std::vector<SourceId> sources) const {
  UBE_RETURN_IF_ERROR(CandidateEvaluator::ValidateSpec(universe_, spec));
  std::sort(sources.begin(), sources.end());
  sources.erase(std::unique(sources.begin(), sources.end()), sources.end());
  if (sources.empty()) {
    return Status::InvalidArgument("candidate must contain a source");
  }
  if (static_cast<int>(sources.size()) > spec.max_sources) {
    return Status::InvalidArgument("candidate exceeds m sources");
  }
  std::vector<SourceId> required;
  for (SourceId s : spec.source_constraints) required.push_back(s);
  for (const GlobalAttribute& g : spec.ga_constraints) {
    for (const AttributeId& id : g.attributes()) required.push_back(id.source);
  }
  for (SourceId s : required) {
    if (!std::binary_search(sources.begin(), sources.end(), s)) {
      return Status::InvalidArgument(
          "candidate omits a source the constraints require");
    }
  }
  for (SourceId s : spec.banned_sources) {
    if (std::binary_search(sources.begin(), sources.end(), s)) {
      return Status::InvalidArgument("candidate contains a banned source");
    }
  }
  CandidateEvaluator evaluator(universe_, *matcher_, model_, spec);
  return evaluator.Evaluate(sources);
}

Result<MatchResult> Engine::MatchSources(const ProblemSpec& spec,
                                         std::vector<SourceId> sources) const {
  UBE_RETURN_IF_ERROR(CandidateEvaluator::ValidateSpec(universe_, spec));
  std::sort(sources.begin(), sources.end());
  sources.erase(std::unique(sources.begin(), sources.end()), sources.end());
  MatchOptions options;
  options.theta = spec.theta;
  options.beta = spec.beta;
  return matcher_->Match(sources, spec.source_constraints, spec.ga_constraints,
                         options);
}

}  // namespace ube
