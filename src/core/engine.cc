#include "core/engine.h"

#include <algorithm>
#include <utility>

#include "obs/obs.h"
#include "util/check.h"

namespace ube {

Engine::Engine(Universe universe, QualityModel model)
    : Engine(std::move(universe), std::move(model), Options{}) {}

Engine::Engine(Universe universe, QualityModel model, Options options)
    : universe_(std::move(universe)),
      model_(std::move(model)),
      obs_(options.obs) {
  obs::Tracer::Span span = obs::SpanIf(obs_, "phase/match");
  std::unique_ptr<AttributeSimilarity> measure =
      options.similarity != nullptr ? std::move(options.similarity)
                                    : MakeDefaultSimilarity();
  graph_ = std::make_unique<SimilarityGraph>(universe_, std::move(measure),
                                             options.similarity_floor);
  matcher_ = std::make_unique<ClusterMatcher>(universe_, *graph_);
  unavailable_ = universe_.UnavailableIds();
}

Engine::Engine(Acquisition acquisition, QualityModel model)
    : Engine(std::move(acquisition), std::move(model), Options{}) {}

Engine::Engine(Acquisition acquisition, QualityModel model, Options options)
    : Engine(std::move(acquisition.universe), std::move(model),
             std::move(options)) {
  acquisition_report_ = std::move(acquisition.report);
}

Result<ProblemSpec> Engine::EffectiveSpec(const ProblemSpec& spec) const {
  if (unavailable_.empty()) return spec;
  // A constraint pinning a dropped source can never be satisfied; report it
  // cleanly instead of letting it surface as a generic validation failure
  // (the dropped shell has an empty schema, so GA constraints on it would
  // otherwise read as "nonexistent attribute").
  for (SourceId s : spec.source_constraints) {
    if (s >= 0 && s < universe_.num_sources() &&
        std::binary_search(unavailable_.begin(), unavailable_.end(), s)) {
      return Status::Unavailable(
          "source constraint pins '" + universe_.source(s).name() +
          "', which was dropped during acquisition");
    }
  }
  for (const GlobalAttribute& g : spec.ga_constraints) {
    for (const AttributeId& id : g.attributes()) {
      if (id.source >= 0 && id.source < universe_.num_sources() &&
          std::binary_search(unavailable_.begin(), unavailable_.end(),
                             id.source)) {
        return Status::Unavailable(
            "GA constraint references '" + universe_.source(id.source).name() +
            "', which was dropped during acquisition");
      }
    }
  }
  ProblemSpec effective = spec;
  effective.banned_sources.insert(effective.banned_sources.end(),
                                  unavailable_.begin(), unavailable_.end());
  std::sort(effective.banned_sources.begin(), effective.banned_sources.end());
  effective.banned_sources.erase(
      std::unique(effective.banned_sources.begin(),
                  effective.banned_sources.end()),
      effective.banned_sources.end());
  return effective;
}

Result<Solution> Engine::Solve(const ProblemSpec& spec, SolverKind solver,
                               const SolverOptions& options) const {
  Result<ProblemSpec> effective = EffectiveSpec(spec);
  UBE_RETURN_IF_ERROR(effective.status());
  UBE_RETURN_IF_ERROR(
      CandidateEvaluator::ValidateSpec(universe_, effective.value()));
  if (spec.theta < graph_->floor()) {
    return Status::InvalidArgument(
        "θ is below the engine's similarity floor; rebuild the engine with a "
        "lower Options::similarity_floor");
  }
  obs::Tracer::Span evaluate_span = obs::SpanIf(obs_, "phase/evaluate");
  CandidateEvaluator evaluator(universe_, *matcher_, model_,
                               effective.value());
  evaluate_span.End();
  std::unique_ptr<Solver> impl = MakeSolver(solver);
  // Forward the engine's context into the solve unless the caller attached
  // their own SolverOptions::obs.
  SolverOptions effective_options = options;
  if (effective_options.obs == nullptr) effective_options.obs = obs_;
  obs::Tracer::Span solve_span = obs::SpanIf(obs_, "phase/solve");
  return impl->Solve(evaluator, effective_options);
}

Result<CandidateEvaluator::Evaluation> Engine::EvaluateCandidate(
    const ProblemSpec& spec, std::vector<SourceId> sources) const {
  Result<ProblemSpec> resolved = EffectiveSpec(spec);
  UBE_RETURN_IF_ERROR(resolved.status());
  const ProblemSpec& effective = resolved.value();
  UBE_RETURN_IF_ERROR(CandidateEvaluator::ValidateSpec(universe_, effective));
  for (SourceId s : sources) {
    UBE_RETURN_IF_ERROR(universe_.ValidateId(s));
  }
  std::sort(sources.begin(), sources.end());
  sources.erase(std::unique(sources.begin(), sources.end()), sources.end());
  if (sources.empty()) {
    return Status::InvalidArgument("candidate must contain a source");
  }
  if (static_cast<int>(sources.size()) > spec.max_sources) {
    return Status::InvalidArgument("candidate exceeds m sources");
  }
  std::vector<SourceId> required;
  for (SourceId s : spec.source_constraints) required.push_back(s);
  for (const GlobalAttribute& g : spec.ga_constraints) {
    for (const AttributeId& id : g.attributes()) required.push_back(id.source);
  }
  for (SourceId s : required) {
    if (!std::binary_search(sources.begin(), sources.end(), s)) {
      return Status::InvalidArgument(
          "candidate omits a source the constraints require");
    }
  }
  for (SourceId s : effective.banned_sources) {
    if (std::binary_search(sources.begin(), sources.end(), s)) {
      if (std::binary_search(unavailable_.begin(), unavailable_.end(), s)) {
        return Status::Unavailable(
            "candidate contains '" + universe_.source(s).name() +
            "', which was dropped during acquisition");
      }
      return Status::InvalidArgument("candidate contains a banned source");
    }
  }
  CandidateEvaluator evaluator(universe_, *matcher_, model_, effective);
  return evaluator.Evaluate(sources);
}

Result<MatchResult> Engine::MatchSources(const ProblemSpec& spec,
                                         std::vector<SourceId> sources) const {
  UBE_RETURN_IF_ERROR(CandidateEvaluator::ValidateSpec(universe_, spec));
  for (SourceId s : sources) {
    UBE_RETURN_IF_ERROR(universe_.ValidateId(s));
  }
  std::sort(sources.begin(), sources.end());
  sources.erase(std::unique(sources.begin(), sources.end()), sources.end());
  MatchOptions options;
  options.theta = spec.theta;
  options.beta = spec.beta;
  return matcher_->Match(sources, spec.source_constraints, spec.ga_constraints,
                         options);
}

}  // namespace ube
