#include "core/ga_evaluation.h"

#include <algorithm>

namespace ube {

GaQualityReport EvaluateGaQuality(const MediatedSchema& schema,
                                  const std::vector<SourceId>& sources,
                                  const GroundTruth& ground_truth) {
  GaQualityReport report;
  report.sources_selected = static_cast<int>(sources.size());

  std::vector<char> concept_covered(
      static_cast<size_t>(ground_truth.num_concepts()), 0);

  for (const GlobalAttribute& ga : schema.gas()) {
    int concept_id = -2;  // -2: unset, -1: noise seen
    bool pure = true;
    for (const AttributeId& id : ga.attributes()) {
      int c = ground_truth.ConceptOf(id);
      if (c < 0) {
        pure = false;
        break;
      }
      if (concept_id == -2) {
        concept_id = c;
      } else if (concept_id != c) {
        pure = false;
        break;
      }
    }
    if (pure && concept_id >= 0) {
      ++report.pure_gas;
      report.attributes_in_true_gas += ga.size();
      concept_covered[static_cast<size_t>(concept_id)] = 1;
    } else {
      ++report.false_gas;
    }
  }

  for (char covered : concept_covered) {
    if (covered) ++report.true_gas_selected;
  }
  report.concepts_available = static_cast<int>(
      ground_truth.ConceptsAvailable(sources, /*min_sources=*/2).size());
  report.true_gas_missed =
      std::max(0, report.concepts_available - report.true_gas_selected);
  return report;
}

std::string ToString(const GaQualityReport& report) {
  std::string out;
  out += "sources selected:       " + std::to_string(report.sources_selected) + "\n";
  out += "true GAs selected:      " + std::to_string(report.true_gas_selected) + "\n";
  out += "pure GAs:               " + std::to_string(report.pure_gas) + "\n";
  out += "false GAs:              " + std::to_string(report.false_gas) + "\n";
  out += "attributes in true GAs: " +
         std::to_string(report.attributes_in_true_gas) + "\n";
  out += "concepts available:     " +
         std::to_string(report.concepts_available) + "\n";
  out += "true GAs missed:        " + std::to_string(report.true_gas_missed) +
         "\n";
  return out;
}

}  // namespace ube
