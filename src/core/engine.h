#ifndef UBE_CORE_ENGINE_H_
#define UBE_CORE_ENGINE_H_

#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "catalog/change_feed.h"
#include "matching/cluster_matcher.h"
#include "matching/similarity_graph.h"
#include "optimize/evaluator.h"
#include "optimize/problem.h"
#include "optimize/repair.h"
#include "optimize/solver.h"
#include "qef/quality_model.h"
#include "source/live_universe.h"
#include "source/prober.h"
#include "source/universe.h"
#include "text/similarity.h"
#include "util/result.h"

namespace ube {

/// Knobs of Engine::RunContinuous — the continuous solver mode over a
/// churning catalog. Policy: repair first, escalate to a full re-solve only
/// when the repaired incumbent's quality falls below a configurable
/// fraction of the last full solve's quality.
struct ContinuousOptions {
  /// Solver for the initial solve and every escalation.
  SolverKind solver = SolverKind::kTabu;
  /// Options of those full solves (seed, budgets, num_threads, obs).
  SolverOptions solver_options;
  /// The bounded repair search (seed is re-derived per batch; num_threads
  /// and clock are overridden from solver_options so one knob steers the
  /// whole run).
  RepairOptions repair;
  /// The adaptive budget controller sizing repair.eval_budget per batch
  /// from recent repair telemetry (optimize/repair.h). Enabled by default;
  /// disable to run with the fixed repair.eval_budget (the configuration
  /// bench/churn_sweep compares against).
  AdaptiveRepairOptions adaptive;
  /// Events within this window of simulated time are applied together and
  /// answered with one repair.
  double batch_ms = 1'000.0;
  /// Escalate when repaired quality < fraction × last full-solve quality.
  double escalation_fraction = 0.85;
  /// kRepair is the live mode; kFullEverytime re-solves from scratch on
  /// every batch (the baseline bench/churn_sweep compares against).
  enum class Mode { kRepair, kFullEverytime };
  Mode mode = Mode::kRepair;
};

/// Why a batch escalated to a full re-solve (ContinuousStep).
enum class EscalationReason {
  kNone,              ///< the repaired incumbent was kept
  kQualityFraction,   ///< repaired quality < fraction x last full quality
  kIncumbentWipeout,  ///< sanitizing evicted the whole incumbent
  kBaseline,          ///< kFullEverytime mode re-solves unconditionally
};

std::string_view EscalationReasonName(EscalationReason reason);

/// One event batch answered by RunContinuous.
struct ContinuousStep {
  /// Simulated time of the batch's last event.
  double time_ms = 0.0;
  int events_applied = 0;
  /// Incumbent members evicted as dead/banned by this batch.
  int evicted = 0;
  /// Schema-drift events (attribute rename/add/drop) among them.
  int drift_events = 0;
  /// Whether a full re-solve ran (repair insufficient, or baseline mode).
  bool escalated = false;
  /// Why (kNone when the repaired incumbent was kept).
  EscalationReason escalation_reason = EscalationReason::kNone;
  /// The evaluation budget the repair ran with (the adaptive controller's
  /// choice, or the fixed RepairOptions::eval_budget; 0 in baseline mode).
  int64_t repair_budget = 0;
  /// Q of the surviving incumbent seed before any search (0 when the whole
  /// incumbent was evicted; not filled in baseline mode).
  double quality_before = 0.0;
  /// Q of the incumbent after repair/re-solve.
  double quality_after = 0.0;
  /// Candidate evaluations this batch actually computed.
  int64_t evaluations = 0;
  /// Wall-clock of the batch's repair + solve work (not deterministic).
  double elapsed_ms = 0.0;
  /// The incumbent after this batch, sorted (deterministic; the churn-trace
  /// replay tests compare these across thread counts).
  std::vector<SourceId> incumbent;
};

/// Everything RunContinuous did: per-batch steps plus aggregates.
struct ContinuousReport {
  std::vector<ContinuousStep> steps;
  /// The incumbent after the last batch (== the initial solve's Solution
  /// when the trace is empty — byte-identical, the zero-churn contract).
  Solution final_solution;
  int events_applied = 0;
  /// Schema-drift events among them.
  int drift_events = 0;
  /// Evaluations spent inside repairs (escalation re-solves excluded).
  int64_t repair_evaluations = 0;
  /// Full solves run (always >= 1: the initial solve).
  int full_solves = 0;
  int repairs = 0;
  int escalations = 0;
  /// Quality of the most recent full solve (the escalation reference).
  double last_full_quality = 0.0;
};

/// The µBE engine (Figure 2): owns the universe of source descriptions, the
/// precomputed attribute-similarity graph, the schema-matching operator and
/// the quality model, and solves the constrained optimization problems the
/// user poses iteratively.
///
/// Typical use:
///
///   Engine engine(std::move(universe), QualityModel::MakeDefault());
///   ProblemSpec spec;
///   spec.max_sources = 20;
///   Result<Solution> solution = engine.Solve(spec);
///
/// For the interactive feedback loop, wrap the engine in a Session. For a
/// churning catalog, feed a ChurnTrace to RunContinuous.
class Engine {
 public:
  struct Options {
    /// Similarity graph floor: edges below this are discarded. Must not
    /// exceed any θ used later; 0.25 comfortably under-runs practical
    /// thresholds while keeping the graph sparse.
    double similarity_floor = 0.25;
    /// Attribute similarity measure (null = the paper's 3-gram Jaccard).
    std::unique_ptr<AttributeSimilarity> similarity;
    /// Optional observability context. Not owned; must outlive the engine.
    /// The engine records phase spans (phase/match at construction,
    /// phase/evaluate and phase/solve inside Solve) and forwards the
    /// context to each Solve's SolverOptions unless the caller attached
    /// their own there. Null (default) disables instrumentation.
    obs::ObsContext* obs = nullptr;
  };

  /// Takes ownership of the universe (only RunContinuous may change it
  /// afterwards — the similarity graph is precomputed here and maintained
  /// incrementally under churn) and of the quality model.
  Engine(Universe universe, QualityModel model, Options options);
  /// Same, with default Options.
  Engine(Universe universe, QualityModel model);

  /// From a prober acquisition (source/prober.h): the universe may contain
  /// dropped (unavailable) and degraded sources. Dropped sources are
  /// auto-banned in every Solve; degraded statistics are handled by the
  /// model's degradation policy; the acquisition report is kept for
  /// Report's DegradedSources section.
  Engine(Acquisition acquisition, QualityModel model, Options options);
  Engine(Acquisition acquisition, QualityModel model);

  Engine(Engine&&) = default;
  Engine& operator=(Engine&&) = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  const Universe& universe() const { return live_.universe(); }
  const QualityModel& quality_model() const { return model_; }

  /// The per-source acquisition report, or null when the engine was built
  /// from a plain universe (no prober involved).
  const AcquisitionReport* acquisition_report() const {
    return acquisition_report_.has_value() ? &*acquisition_report_ : nullptr;
  }
  /// Mutable so the user can re-weight QEFs between iterations.
  QualityModel& mutable_quality_model() { return model_; }
  const SimilarityGraph& similarity_graph() const { return live_.graph(); }
  const ClusterMatcher& matcher() const { return live_.matcher(); }
  /// The live universe behind the engine (version, health registry).
  const LiveUniverse& live() const { return live_; }
  /// The attached observability context (null = disabled).
  obs::ObsContext* obs() const { return obs_; }

  /// Solves one µBE optimization problem. Validates the spec; infeasible
  /// constraint sets return kInfeasible.
  Result<Solution> Solve(const ProblemSpec& spec,
                         SolverKind solver = SolverKind::kTabu,
                         const SolverOptions& options = SolverOptions()) const;

  /// Continuous mode: solves once, then applies `trace` batch by batch,
  /// keeping the incumbent alive — evicting dead/banned sources, running a
  /// bounded repair seeded from what survived, and escalating to a full
  /// re-solve per ContinuousOptions. Sources whose health breaker is open
  /// at batch time are excluded from repair/re-solve (unless required by
  /// the spec's constraints).
  ///
  /// Deterministic contract: with an empty trace the returned
  /// final_solution is byte-identical to Solve(spec, solver, options) —
  /// for any thread count; with a non-empty trace every step's incumbent
  /// replays bit-identically from the trace and the options (wall-clock
  /// fields excepted).
  ///
  /// Mutates the engine (this is the point); Solve/EvaluateCandidate keep
  /// working against the evolved universe afterwards.
  Result<ContinuousReport> RunContinuous(const ProblemSpec& spec,
                                         const ChurnTrace& trace,
                                         const ContinuousOptions& options);

  /// Scores a user-chosen source set under a spec (the "what if I just use
  /// these" probe in the UI). `sources` need not be sorted.
  Result<CandidateEvaluator::Evaluation> EvaluateCandidate(
      const ProblemSpec& spec, std::vector<SourceId> sources) const;

  /// Repairs `incumbent` against `spec` (optimize/repair: evict banned /
  /// out-of-range members, re-add required sources, bounded steepest
  /// ascent) and returns the repaired source set — the warm-start seed
  /// Session/SessionServer feed into SolverOptions::initial_incumbent for
  /// the next Solve. Empty when nothing of the incumbent survives
  /// sanitizing (callers then cold-start); a Status only for an invalid
  /// spec. RepairOptions::shared_cache, when set, routes the repair's
  /// evaluations through the shared cache so they pre-warm the solve.
  Result<std::vector<SourceId>> RepairSeed(const ProblemSpec& spec,
                                           const std::vector<SourceId>& incumbent,
                                           const RepairOptions& options) const;

  /// Runs only the Match operator over a source set (no data QEFs).
  Result<MatchResult> MatchSources(
      const ProblemSpec& spec, std::vector<SourceId> sources) const;

 private:
  /// Spec with every unavailable (dropped) source appended to the ban list;
  /// Unavailable when a constraint requires a dropped source. Returns
  /// `spec` untouched when nothing was dropped.
  Result<ProblemSpec> EffectiveSpec(const ProblemSpec& spec) const;

  QualityModel model_;
  obs::ObsContext* obs_ = nullptr;
  LiveUniverse live_;
  std::optional<AcquisitionReport> acquisition_report_;
  std::vector<SourceId> unavailable_;  // sorted ids of dropped sources
};

}  // namespace ube

#endif  // UBE_CORE_ENGINE_H_
