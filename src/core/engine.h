#ifndef UBE_CORE_ENGINE_H_
#define UBE_CORE_ENGINE_H_

#include <memory>
#include <optional>

#include "matching/cluster_matcher.h"
#include "matching/similarity_graph.h"
#include "optimize/evaluator.h"
#include "optimize/problem.h"
#include "optimize/solver.h"
#include "qef/quality_model.h"
#include "source/prober.h"
#include "source/universe.h"
#include "text/similarity.h"
#include "util/result.h"

namespace ube {

/// The µBE engine (Figure 2): owns the universe of source descriptions, the
/// precomputed attribute-similarity graph, the schema-matching operator and
/// the quality model, and solves the constrained optimization problems the
/// user poses iteratively.
///
/// Typical use:
///
///   Engine engine(std::move(universe), QualityModel::MakeDefault());
///   ProblemSpec spec;
///   spec.max_sources = 20;
///   Result<Solution> solution = engine.Solve(spec);
///
/// For the interactive feedback loop, wrap the engine in a Session.
class Engine {
 public:
  struct Options {
    /// Similarity graph floor: edges below this are discarded. Must not
    /// exceed any θ used later; 0.25 comfortably under-runs practical
    /// thresholds while keeping the graph sparse.
    double similarity_floor = 0.25;
    /// Attribute similarity measure (null = the paper's 3-gram Jaccard).
    std::unique_ptr<AttributeSimilarity> similarity;
    /// Optional observability context. Not owned; must outlive the engine.
    /// The engine records phase spans (phase/match at construction,
    /// phase/evaluate and phase/solve inside Solve) and forwards the
    /// context to each Solve's SolverOptions unless the caller attached
    /// their own there. Null (default) disables instrumentation.
    obs::ObsContext* obs = nullptr;
  };

  /// Takes ownership of the universe (it must not change afterwards — the
  /// similarity graph is precomputed here) and of the quality model.
  Engine(Universe universe, QualityModel model, Options options);
  /// Same, with default Options.
  Engine(Universe universe, QualityModel model);

  /// From a prober acquisition (source/prober.h): the universe may contain
  /// dropped (unavailable) and degraded sources. Dropped sources are
  /// auto-banned in every Solve; degraded statistics are handled by the
  /// model's degradation policy; the acquisition report is kept for
  /// Report's DegradedSources section.
  Engine(Acquisition acquisition, QualityModel model, Options options);
  Engine(Acquisition acquisition, QualityModel model);

  Engine(Engine&&) = default;
  Engine& operator=(Engine&&) = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  const Universe& universe() const { return universe_; }
  const QualityModel& quality_model() const { return model_; }

  /// The per-source acquisition report, or null when the engine was built
  /// from a plain universe (no prober involved).
  const AcquisitionReport* acquisition_report() const {
    return acquisition_report_.has_value() ? &*acquisition_report_ : nullptr;
  }
  /// Mutable so the user can re-weight QEFs between iterations.
  QualityModel& mutable_quality_model() { return model_; }
  const SimilarityGraph& similarity_graph() const { return *graph_; }
  const ClusterMatcher& matcher() const { return *matcher_; }
  /// The attached observability context (null = disabled).
  obs::ObsContext* obs() const { return obs_; }

  /// Solves one µBE optimization problem. Validates the spec; infeasible
  /// constraint sets return kInfeasible.
  Result<Solution> Solve(const ProblemSpec& spec,
                         SolverKind solver = SolverKind::kTabu,
                         const SolverOptions& options = SolverOptions()) const;

  /// Scores a user-chosen source set under a spec (the "what if I just use
  /// these" probe in the UI). `sources` need not be sorted.
  Result<CandidateEvaluator::Evaluation> EvaluateCandidate(
      const ProblemSpec& spec, std::vector<SourceId> sources) const;

  /// Runs only the Match operator over a source set (no data QEFs).
  Result<MatchResult> MatchSources(
      const ProblemSpec& spec, std::vector<SourceId> sources) const;

 private:
  /// Spec with every unavailable (dropped) source appended to the ban list;
  /// Unavailable when a constraint requires a dropped source. Returns
  /// `spec` untouched when nothing was dropped.
  Result<ProblemSpec> EffectiveSpec(const ProblemSpec& spec) const;

  Universe universe_;
  QualityModel model_;
  obs::ObsContext* obs_ = nullptr;
  std::unique_ptr<SimilarityGraph> graph_;
  std::unique_ptr<ClusterMatcher> matcher_;
  std::optional<AcquisitionReport> acquisition_report_;
  std::vector<SourceId> unavailable_;  // sorted ids of dropped sources
};

}  // namespace ube

#endif  // UBE_CORE_ENGINE_H_
