#include "core/session_server.h"

#include <utility>

#include "obs/obs.h"

namespace ube {

SessionServer::SessionServer(Engine engine, Options options)
    : options_(std::move(options)),
      engine_(std::move(engine)),
      cache_(options_.cache_entries_per_shard) {
  // Force the lazy caches now, while the server is still single-threaded:
  // Universe::UnionSignature()/FreshUnionSignature() build on first use,
  // and N sessions constructing evaluators concurrently must only ever
  // read them.
  (void)engine_.universe().UnionSignature();
  (void)engine_.universe().FreshUnionSignature();
}

SessionServer::SessionServer(Engine engine)
    : SessionServer(std::move(engine), Options()) {}

std::pair<SessionServer::SessionId, Session*> SessionServer::Open() {
  auto session = std::make_unique<Session>(&engine_);
  session->set_warm_start(options_.warm_start);
  session->mutable_repair_options() = options_.repair;
  session->mutable_repair_options().shared_cache = &cache_;
  session->mutable_solver_options() = options_.solver_options;
  session->mutable_solver_options().shared_cache = &cache_;
  Session* raw = session.get();

  SessionId id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = next_id_++;
    ++total_opened_;
    sessions_.emplace(id, std::move(session));
  }
  if (options_.obs != nullptr) {
    obs::MetricsRegistry& metrics = options_.obs->metrics();
    metrics.Add(metrics.Counter("server/sessions_opened"));
  }
  return {id, raw};
}

Status SessionServer::Close(SessionId id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) {
      return Status::NotFound("no open session with this id");
    }
    sessions_.erase(it);
  }
  if (options_.obs != nullptr) {
    obs::MetricsRegistry& metrics = options_.obs->metrics();
    metrics.Add(metrics.Counter("server/sessions_closed"));
  }
  return Status::Ok();
}

Session* SessionServer::Find(SessionId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second.get();
}

int SessionServer::num_open() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(sessions_.size());
}

int64_t SessionServer::total_opened() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_opened_;
}

}  // namespace ube
