#ifndef UBE_CORE_GA_EVALUATION_H_
#define UBE_CORE_GA_EVALUATION_H_

#include <string>
#include <vector>

#include "schema/mediated_schema.h"
#include "workload/generator.h"

namespace ube {

/// Table 1 metrics: how well the generated mediated schema recovers the
/// domain's ground-truth concepts.
///
/// A GA is *pure* when every one of its attributes maps to the same
/// ground-truth concept (noise attributes make a GA false). Because a
/// concept can legitimately be recovered as several pure GAs (one per
/// lexical variant family), "true GAs selected" counts distinct concepts
/// covered, which is what the paper's <= 14 bound refers to.
struct GaQualityReport {
  int sources_selected = 0;
  /// Distinct concepts covered by at least one pure GA ("True GAs
  /// selected"; at most the domain's 14).
  int true_gas_selected = 0;
  /// Pure GAs in the schema (>= true_gas_selected when a concept is
  /// fragmented across variant families).
  int pure_gas = 0;
  /// GAs containing a noise attribute or attributes of two concepts
  /// ("µbe never produced false GAs" is the paper's reference result).
  int false_gas = 0;
  /// Total attributes across pure GAs ("Attributes in true GAs").
  int attributes_in_true_gas = 0;
  /// Concepts appearing in >= 2 selected sources — those a matcher could
  /// possibly express as GAs over the selection.
  int concepts_available = 0;
  /// concepts_available − true_gas_selected ("True GAs missed").
  int true_gas_missed = 0;
};

/// Scores `schema` (built over `sources`) against the generator's ground
/// truth.
GaQualityReport EvaluateGaQuality(const MediatedSchema& schema,
                                  const std::vector<SourceId>& sources,
                                  const GroundTruth& ground_truth);

/// One line per field, for benches and examples.
std::string ToString(const GaQualityReport& report);

}  // namespace ube

#endif  // UBE_CORE_GA_EVALUATION_H_
