#include "core/session.h"

#include <algorithm>
#include <utility>

#include "core/report.h"
#include "obs/obs.h"
#include "util/check.h"

namespace ube {

Session::Session(Engine* engine) : engine_(engine) {
  UBE_CHECK(engine_ != nullptr, "Session requires an engine");
}

Result<Solution> Session::Iterate(SolverKind solver) {
  return Iterate(solver, solver_options_);
}

Result<Solution> Session::Iterate(SolverKind solver,
                                  const SolverOptions& options) {
  obs::Tracer::Span span = obs::SpanIf(engine_->obs(), "session/iterate");
  Result<Solution> solution = engine_->Solve(spec_, solver, options);
  if (solution.ok()) history_.push_back(solution.value());
  return solution;
}

const Solution* Session::last() const {
  return history_.empty() ? nullptr : &history_.back();
}

std::string Session::ReportLast() const {
  const Solution* solution = last();
  if (solution == nullptr) return "";
  obs::Tracer::Span span = obs::SpanIf(engine_->obs(), "phase/report");
  return FormatSolution(*solution, engine_->universe(),
                        engine_->quality_model(), acquisition_report());
}

Status Session::PinSource(SourceId source) {
  if (source < 0 || source >= engine_->universe().num_sources()) {
    return Status::InvalidArgument("source id out of range");
  }
  if (!engine_->universe().source(source).available()) {
    return Status::Unavailable(
        "source was dropped during acquisition and cannot be pinned");
  }
  const auto& banned = spec_.banned_sources;
  if (std::find(banned.begin(), banned.end(), source) != banned.end()) {
    return Status::FailedPrecondition(
        "source is banned; unban it before pinning");
  }
  auto& constraints = spec_.source_constraints;
  if (std::find(constraints.begin(), constraints.end(), source) !=
      constraints.end()) {
    return Status::Ok();  // already pinned
  }
  constraints.push_back(source);
  return Status::Ok();
}

Status Session::PinSourceByName(std::string_view name) {
  Result<SourceId> id = engine_->universe().FindByName(name);
  if (!id.ok()) return id.status();
  return PinSource(id.value());
}

Status Session::UnpinSource(SourceId source) {
  auto& constraints = spec_.source_constraints;
  auto it = std::find(constraints.begin(), constraints.end(), source);
  if (it == constraints.end()) {
    return Status::NotFound("source is not pinned");
  }
  constraints.erase(it);
  return Status::Ok();
}

Status Session::BanSource(SourceId source) {
  if (source < 0 || source >= engine_->universe().num_sources()) {
    return Status::InvalidArgument("source id out of range");
  }
  const auto& pinned = spec_.source_constraints;
  if (std::find(pinned.begin(), pinned.end(), source) != pinned.end()) {
    return Status::FailedPrecondition(
        "source is pinned; unpin it before banning");
  }
  for (const GlobalAttribute& ga : spec_.ga_constraints) {
    if (ga.TouchesSource(source)) {
      return Status::FailedPrecondition(
          "source is referenced by a GA constraint; remove that first");
    }
  }
  auto& banned = spec_.banned_sources;
  if (std::find(banned.begin(), banned.end(), source) != banned.end()) {
    return Status::Ok();  // already banned
  }
  banned.push_back(source);
  return Status::Ok();
}

Status Session::BanSourceByName(std::string_view name) {
  Result<SourceId> id = engine_->universe().FindByName(name);
  if (!id.ok()) return id.status();
  return BanSource(id.value());
}

Status Session::UnbanSource(SourceId source) {
  auto& banned = spec_.banned_sources;
  auto it = std::find(banned.begin(), banned.end(), source);
  if (it == banned.end()) {
    return Status::NotFound("source is not banned");
  }
  banned.erase(it);
  return Status::Ok();
}

Status Session::PromoteGa(int ga_index) {
  const Solution* solution = last();
  if (solution == nullptr) {
    return Status::FailedPrecondition("no solution yet; call Iterate first");
  }
  if (ga_index < 0 || ga_index >= solution->mediated_schema.num_gas()) {
    return Status::InvalidArgument("GA index out of range");
  }
  return AddGaConstraint(solution->mediated_schema.ga(ga_index));
}

Status Session::AddGaConstraint(GlobalAttribute ga) {
  if (!ga.IsValid()) {
    return Status::InvalidArgument("not a valid GA");
  }
  for (const AttributeId& id : ga.attributes()) {
    if (id.source < 0 || id.source >= engine_->universe().num_sources()) {
      return Status::InvalidArgument("GA references a source out of range");
    }
    const SourceSchema& schema = engine_->universe().source(id.source).schema();
    if (id.attr_index < 0 || id.attr_index >= schema.num_attributes()) {
      return Status::InvalidArgument(
          "GA references a nonexistent attribute");
    }
  }
  // Absorb existing constraints fully contained in the new GA; reject
  // partial overlaps (they would make the constraint set inconsistent).
  std::vector<GlobalAttribute> kept;
  for (GlobalAttribute& existing : spec_.ga_constraints) {
    if (ga.ContainsAll(existing)) continue;  // absorbed
    if (ga.Intersects(existing)) {
      return Status::InvalidArgument(
          "GA partially overlaps an existing GA constraint; remove or edit "
          "that constraint first");
    }
    kept.push_back(std::move(existing));
  }
  kept.push_back(std::move(ga));
  spec_.ga_constraints = std::move(kept);
  return Status::Ok();
}

Status Session::AddGaConstraintByNames(
    const std::vector<std::pair<std::string, std::string>>& attributes) {
  GlobalAttribute ga;
  for (const auto& [source_name, attr_name] : attributes) {
    Result<SourceId> source = engine_->universe().FindByName(source_name);
    if (!source.ok()) return source.status();
    int attr = engine_->universe()
                   .source(source.value())
                   .schema()
                   .FindAttribute(attr_name);
    if (attr < 0) {
      return Status::NotFound("source '" + source_name +
                              "' has no attribute '" + attr_name + "'");
    }
    ga.Add(AttributeId{source.value(), attr});
  }
  return AddGaConstraint(std::move(ga));
}

Status Session::SetWeight(std::string_view qef_name, double weight) {
  return engine_->mutable_quality_model().SetWeightRescaling(qef_name, weight);
}

void Session::ClearConstraints() {
  spec_.source_constraints.clear();
  spec_.banned_sources.clear();
  spec_.ga_constraints.clear();
}

}  // namespace ube
