#include "core/session.h"

#include <algorithm>
#include <utility>

#include "core/report.h"
#include "obs/obs.h"
#include "util/check.h"
#include "util/timer.h"

namespace ube {

Session::Session(const Engine* engine) : engine_(engine) {
  UBE_CHECK(engine_ != nullptr, "Session requires an engine");
}

Result<Solution> Session::Iterate(SolverKind solver) {
  return Iterate(solver, solver_options_);
}

Result<Solution> Session::Iterate(SolverKind solver,
                                  const SolverOptions& options) {
  obs::Tracer::Span span = obs::SpanIf(engine_->obs(), "session/iterate");
  WallTimer timer;
  SolverOptions effective = options;
  bool warm = false;
  if (warm_start_ && last() != nullptr && effective.initial_incumbent.empty()) {
    // Repair the previous incumbent against the (possibly just-edited) spec
    // and seed the solver with whatever survives. A wiped-out incumbent
    // yields an empty seed and the solve proceeds cold; a repair *error*
    // (invalid spec) is left for Solve to report so failure surfaces once.
    RepairOptions repair = repair_options_;
    if (repair.shared_cache == nullptr) {
      repair.shared_cache = options.shared_cache;
    }
    Result<std::vector<SourceId>> seed =
        engine_->RepairSeed(spec_, last()->sources, repair);
    if (seed.ok() && !seed.value().empty()) {
      effective.initial_incumbent = std::move(seed.value());
      warm = true;
    }
  }
  Result<Solution> solution = engine_->Solve(spec_, solver, effective);
  const double elapsed_ms = timer.ElapsedSeconds() * 1e3;
  stats_.last_iterate_ms = elapsed_ms;
  stats_.total_iterate_ms += elapsed_ms;
  if (!solution.ok()) {
    ++stats_.failed_solves;
    return solution;
  }
  ++stats_.iterations;
  if (warm) {
    ++stats_.warm_solves;
  } else {
    ++stats_.cold_solves;
  }
  history_.push_back(solution.value());
  return solution;
}

const Solution* Session::last() const {
  return history_.empty() ? nullptr : &history_.back();
}

std::string Session::ReportLast() const {
  const Solution* solution = last();
  if (solution == nullptr) return "";
  obs::Tracer::Span span = obs::SpanIf(engine_->obs(), "phase/report");
  return FormatSolution(*solution, engine_->universe(),
                        engine_->quality_model(), acquisition_report());
}

Status Session::PinSource(SourceId source) {
  if (source < 0 || source >= engine_->universe().num_sources()) {
    return Status::InvalidArgument("source id out of range");
  }
  if (!engine_->universe().source(source).available()) {
    return Status::Unavailable(
        "source was dropped during acquisition and cannot be pinned");
  }
  const auto& banned = spec_.banned_sources;
  if (std::find(banned.begin(), banned.end(), source) != banned.end()) {
    return Status::FailedPrecondition(
        "source is banned; unban it before pinning");
  }
  auto& constraints = spec_.source_constraints;
  if (std::find(constraints.begin(), constraints.end(), source) !=
      constraints.end()) {
    return Status::Ok();  // already pinned
  }
  constraints.push_back(source);
  ++stats_.feedback_gestures;
  return Status::Ok();
}

Status Session::PinSourceByName(std::string_view name) {
  Result<SourceId> id = engine_->universe().FindByName(name);
  if (!id.ok()) return id.status();
  return PinSource(id.value());
}

Status Session::UnpinSource(SourceId source) {
  auto& constraints = spec_.source_constraints;
  auto it = std::find(constraints.begin(), constraints.end(), source);
  if (it == constraints.end()) {
    return Status::NotFound("source is not pinned");
  }
  constraints.erase(it);
  ++stats_.feedback_gestures;
  return Status::Ok();
}

Status Session::BanSource(SourceId source) {
  if (source < 0 || source >= engine_->universe().num_sources()) {
    return Status::InvalidArgument("source id out of range");
  }
  const auto& pinned = spec_.source_constraints;
  if (std::find(pinned.begin(), pinned.end(), source) != pinned.end()) {
    return Status::FailedPrecondition(
        "source is pinned; unpin it before banning");
  }
  for (const GlobalAttribute& ga : spec_.ga_constraints) {
    if (ga.TouchesSource(source)) {
      return Status::FailedPrecondition(
          "source is referenced by a GA constraint; remove that first");
    }
  }
  auto& banned = spec_.banned_sources;
  if (std::find(banned.begin(), banned.end(), source) != banned.end()) {
    return Status::Ok();  // already banned
  }
  banned.push_back(source);
  ++stats_.feedback_gestures;
  return Status::Ok();
}

Status Session::BanSourceByName(std::string_view name) {
  Result<SourceId> id = engine_->universe().FindByName(name);
  if (!id.ok()) return id.status();
  return BanSource(id.value());
}

Status Session::UnbanSource(SourceId source) {
  auto& banned = spec_.banned_sources;
  auto it = std::find(banned.begin(), banned.end(), source);
  if (it == banned.end()) {
    return Status::NotFound("source is not banned");
  }
  banned.erase(it);
  ++stats_.feedback_gestures;
  return Status::Ok();
}

Status Session::PromoteGa(int ga_index) {
  const Solution* solution = last();
  if (solution == nullptr) {
    return Status::FailedPrecondition("no solution yet; call Iterate first");
  }
  if (ga_index < 0 || ga_index >= solution->mediated_schema.num_gas()) {
    return Status::InvalidArgument("GA index out of range");
  }
  return AddGaConstraint(solution->mediated_schema.ga(ga_index));
}

Status Session::AddGaConstraint(GlobalAttribute ga) {
  if (!ga.IsValid()) {
    return Status::InvalidArgument("not a valid GA");
  }
  for (const AttributeId& id : ga.attributes()) {
    if (id.source < 0 || id.source >= engine_->universe().num_sources()) {
      return Status::InvalidArgument("GA references a source out of range");
    }
    const SourceSchema& schema = engine_->universe().source(id.source).schema();
    if (id.attr_index < 0 || id.attr_index >= schema.num_attributes()) {
      return Status::InvalidArgument(
          "GA references a nonexistent attribute");
    }
  }
  // Absorb existing constraints fully contained in the new GA; reject
  // partial overlaps (they would make the constraint set inconsistent).
  std::vector<GlobalAttribute> kept;
  for (GlobalAttribute& existing : spec_.ga_constraints) {
    if (ga.ContainsAll(existing)) continue;  // absorbed
    if (ga.Intersects(existing)) {
      return Status::InvalidArgument(
          "GA partially overlaps an existing GA constraint; remove or edit "
          "that constraint first");
    }
    kept.push_back(std::move(existing));
  }
  kept.push_back(std::move(ga));
  spec_.ga_constraints = std::move(kept);
  ++stats_.feedback_gestures;
  return Status::Ok();
}

Status Session::AddGaConstraintByNames(
    const std::vector<std::pair<std::string, std::string>>& attributes) {
  GlobalAttribute ga;
  for (const auto& [source_name, attr_name] : attributes) {
    Result<SourceId> source = engine_->universe().FindByName(source_name);
    if (!source.ok()) return source.status();
    int attr = engine_->universe()
                   .source(source.value())
                   .schema()
                   .FindAttribute(attr_name);
    if (attr < 0) {
      return Status::NotFound("source '" + source_name +
                              "' has no attribute '" + attr_name + "'");
    }
    ga.Add(AttributeId{source.value(), attr});
  }
  return AddGaConstraint(std::move(ga));
}

Status Session::SetWeight(std::string_view qef_name, double weight) {
  const QualityModel& model = engine_->quality_model();
  int index = model.FindQef(qef_name);
  if (index < 0) {
    return Status::NotFound("no QEF named '" + std::string(qef_name) + "'");
  }
  // Copy-on-first-write: the overlay starts as the shared model's weights
  // and diverges from there. The engine's model is never mutated.
  if (spec_.weight_overlay.empty()) {
    spec_.weight_overlay = model.weights();
  }
  Status status =
      QualityModel::RescaleWeight(&spec_.weight_overlay, index, weight);
  if (status.ok()) ++stats_.feedback_gestures;
  return status;
}

const std::vector<double>& Session::effective_weights() const {
  return spec_.weight_overlay.empty() ? engine_->quality_model().weights()
                                      : spec_.weight_overlay;
}

void Session::ClearConstraints() {
  spec_.source_constraints.clear();
  spec_.banned_sources.clear();
  spec_.ga_constraints.clear();
}

}  // namespace ube
