#ifndef UBE_CORE_REPORT_H_
#define UBE_CORE_REPORT_H_

#include <string>

#include "optimize/problem.h"
#include "qef/quality_model.h"
#include "source/prober.h"
#include "source/universe.h"

namespace ube {

struct ContinuousReport;  // core/engine.h

/// Renders a mediated schema with human-readable attribute names:
///   GA 0 [q=1.00]: {books-src-3.author, books-src-17.author, ...}
std::string FormatMediatedSchema(const MediatedSchema& schema,
                                 const std::vector<double>& ga_qualities,
                                 const Universe& universe);

/// Renders a full solution: sources, overall quality, per-QEF breakdown
/// (named using `model`), and the mediated schema. This is the textual
/// equivalent of the µBE result pane (Figure 4).
std::string FormatSolution(const Solution& solution, const Universe& universe,
                           const QualityModel& model);

/// Same, plus a DegradedSources section when `acquisition` (may be null) has
/// any degraded or dropped source.
std::string FormatSolution(const Solution& solution, const Universe& universe,
                           const QualityModel& model,
                           const AcquisitionReport* acquisition);

/// Renders the observability section of a solution's stats: cache hit rate,
/// the per-iteration incumbent curve, and the full metrics report. Empty
/// string when the solve ran without an ObsContext (stats.metrics null) —
/// FormatSolution appends this automatically.
std::string FormatObservability(const SolverStats& stats);

/// Renders a RunContinuous report: the aggregate line (events, drift
/// events, repairs vs full solves, repair evaluations), one line per batch
/// (time, events, evicted, budget, quality before/after) annotated with its
/// escalation reason, and an escalation-reason census.
std::string FormatContinuousReport(const ContinuousReport& report);

/// Renders the per-source acquisition report: the summary counts line plus
/// one line per degraded or dropped source (outcome, attempts, breaker
/// trips, staleness, final status). Fully acquired sources are summarized,
/// not listed.
std::string FormatAcquisitionReport(const AcquisitionReport& report);

}  // namespace ube

#endif  // UBE_CORE_REPORT_H_
