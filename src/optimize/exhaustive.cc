#include <algorithm>
#include <vector>

#include "optimize/solver_internal.h"
#include "optimize/solvers.h"
#include "util/timer.h"

namespace ube {

namespace {

// Number of candidates: sum over k = 0..slots of C(pool, k). Saturates at
// kLimit + 1.
constexpr int64_t kLimit = 2'000'000;

int64_t CountCandidates(int pool, int slots) {
  int64_t total = 0;
  // C(pool, k) computed incrementally.
  double binom = 1.0;
  for (int k = 0; k <= slots && k <= pool; ++k) {
    if (k > 0) binom = binom * (pool - k + 1) / k;
    if (binom > static_cast<double>(kLimit)) return kLimit + 1;
    total += static_cast<int64_t>(binom);
    if (total > kLimit) return kLimit + 1;
  }
  return total;
}

}  // namespace

Result<Solution> ExhaustiveSolver::Solve(const CandidateEvaluator& evaluator,
                                         const SolverOptions& options) const {
  UBE_RETURN_IF_ERROR(internal::CheckSolvable(evaluator));
  WallTimer timer(options.clock);
  evaluator.BeginRun();
  internal::SolveScope scope(evaluator, options, name());
  DeltaEvaluator delta = internal::MakeDeltaEvaluator(evaluator, options);

  const int n = evaluator.universe().num_sources();
  const int m = evaluator.spec().max_sources;
  const std::vector<SourceId>& required = evaluator.required_sources();
  std::vector<char> is_required(static_cast<size_t>(n), 0);
  for (SourceId s : required) is_required[static_cast<size_t>(s)] = 1;

  std::vector<SourceId> pool;
  for (SourceId s = 0; s < n; ++s) {
    if (!is_required[static_cast<size_t>(s)] && !evaluator.IsBanned(s)) {
      pool.push_back(s);
    }
  }
  const int slots = m - static_cast<int>(required.size());
  if (CountCandidates(static_cast<int>(pool.size()), slots) > kLimit) {
    return Status::FailedPrecondition(
        "instance too large for exhaustive enumeration (> 2M candidates)");
  }

  std::vector<SourceId> best;
  double best_quality = -1.0;
  int64_t iterations = 0;

  // Warm start: a complete enumeration dominates any seed, but a
  // budget-truncated one must still never return worse than the seed — so
  // the seed initializes the incumbent.
  std::vector<SourceId> warm = internal::ValidWarmStart(evaluator, options);
  if (!warm.empty()) {
    best_quality = delta.Quality(warm);
    best = std::move(warm);
  }

  std::vector<SourceId> chosen;  // indices into pool, as source ids
  // Depth-first enumeration of all subsets of `pool` of size <= slots.
  auto evaluate_current = [&]() {
    std::vector<SourceId> candidate = required;
    candidate.insert(candidate.end(), chosen.begin(), chosen.end());
    std::sort(candidate.begin(), candidate.end());
    if (candidate.empty()) return;  // |S| >= 1 required
    ++iterations;
    double quality = delta.Quality(candidate);
    if (quality > best_quality) {
      best_quality = quality;
      best = std::move(candidate);
    }
    if (scope.enabled()) {
      obs::IterationSample sample;
      sample.iteration = iterations;
      sample.evaluations = evaluator.num_evaluations();
      sample.incumbent_quality = best_quality;
      sample.neighborhood = 1;
      scope.RecordIteration(sample);
    }
  };

  // Iterative stack-based subset enumeration for determinism and to avoid
  // deep recursion.
  StopReason stop = StopReason::kExhausted;
  evaluate_current();
  std::vector<size_t> stack;  // stack of pool indices forming `chosen`
  size_t next = 0;
  while (true) {
    // Exact enumeration is the slowest solver per instance, so it honors
    // the wall-clock budget too (it used to ignore it entirely); a cut
    // enumeration returns the best candidate seen so far.
    if (internal::BudgetExpired(timer, evaluator, options, &stop)) {
      break;
    }
    if (static_cast<int>(stack.size()) < slots && next < pool.size()) {
      stack.push_back(next);
      chosen.push_back(pool[next]);
      evaluate_current();
      ++next;
    } else if (!stack.empty()) {
      next = stack.back() + 1;
      stack.pop_back();
      chosen.pop_back();
      if (next >= pool.size()) {
        // Exhausted this branch; backtrack further.
        continue;
      }
    } else {
      break;
    }
    if (stack.empty() && next >= pool.size()) break;
  }

  if (best.empty()) {
    return Status::Infeasible("no feasible candidate exists");
  }
  return internal::FinalizeSolution(evaluator, std::move(best),
                                    std::string(name()), iterations, timer,
                                    stop, {}, &scope);
}

}  // namespace ube
