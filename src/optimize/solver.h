#ifndef UBE_OPTIMIZE_SOLVER_H_
#define UBE_OPTIMIZE_SOLVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "optimize/evaluator.h"
#include "optimize/problem.h"
#include "util/result.h"
#include "util/timer.h"

namespace ube {

namespace obs {
class ObsContext;
}  // namespace obs

/// Shared knobs for all solvers; each solver reads the subset it needs.
struct SolverOptions {
  /// Seed for the solver's deterministic random stream.
  uint64_t seed = 42;
  /// Hard cap on outer iterations (meaning is solver-specific).
  int max_iterations = 400;
  /// Stop after this many iterations without improving the incumbent
  /// (<= 0 disables). Ignored by exhaustive search.
  int stall_iterations = 80;
  /// Wall-clock budget in seconds (<= 0 disables).
  double time_limit_seconds = 0.0;
  /// Time source behind time_limit_seconds and elapsed_seconds. Null (the
  /// default) reads the real steady clock; tests inject a ManualClock so
  /// time-limit stops are deterministic. Not owned; must outlive Solve.
  const Clock* clock = nullptr;
  /// Hard cap on *computed* candidate evaluations (<= 0 disables). Checked
  /// at the same points as time_limit_seconds, so a run can overshoot by
  /// at most one neighborhood batch. This is the budget the portfolio
  /// solver divides among its contenders.
  int64_t max_evaluations = 0;
  /// Record a TracePoint in SolverStats::trace every time the incumbent
  /// improves (for convergence analysis; small overhead).
  bool record_trace = false;
  /// Worker threads for neighborhood evaluation (QualityBatch). 1 = the
  /// sequential path (default), 0 = hardware_concurrency, N = exactly N.
  /// For a fixed seed the returned Solution (sources, quality, trace,
  /// counters) is identical for every value — only wall-clock changes.
  int num_threads = 1;
  /// Optional observability context (metrics + tracing + per-iteration
  /// telemetry). Not owned; must outlive the Solve call. Null (default)
  /// disables all instrumentation — the deterministic parts of the
  /// returned Solution are byte-identical either way.
  obs::ObsContext* obs = nullptr;
  /// Score candidates through the incremental delta path
  /// (optimize/delta_evaluator.h) when the quality model supports it
  /// (every QEF provides a delta scorer; matching models fall back to the
  /// full path automatically). Results, counters and traces are
  /// bit-identical on or off — this knob exists for A/B benchmarking
  /// (bench/micro_ube --delta) and as an escape hatch.
  bool delta_eval = true;
  /// Warm-start seed: a candidate the search starts from instead of a
  /// random draw — typically the previous incumbent of a feedback session,
  /// repaired against the new spec (Engine::RepairSeed). Every solver
  /// guarantees the returned quality is never below the (sanitized) seed's.
  /// Ignored when empty; a seed that is infeasible under the evaluator's
  /// spec (banned member, missing required source, over m) is discarded and
  /// the run is bit-identical to a cold solve — the random stream is only
  /// consumed once the seed has been rejected.
  std::vector<SourceId> initial_incumbent;
  /// Cross-evaluator quality cache (optimize/evaluator.h). Not owned; must
  /// outlive the Solve call. When set, Engine::Solve routes the evaluator's
  /// memoization through it, so equal-spec sessions share hits and a
  /// session's repair warms its own subsequent solve. Null (default) keeps
  /// the per-solve local cache. Solution bytes are unchanged either way
  /// unless an eval-budget stop fires (a warmer cache computes fewer
  /// evaluations, so max_evaluations cuts at a different point).
  SharedQualityCache* shared_cache = nullptr;

  // --- tabu search -----------------------------------------------------
  /// Moves sampled per iteration (0 = auto: scales with |U| and m).
  int candidate_moves = 0;
  /// Tabu tenure in iterations (0 = auto: 7 + |U|/50).
  int tabu_tenure = 0;

  // --- stochastic local search ------------------------------------------
  /// Number of random restarts.
  int restarts = 6;

  // --- simulated annealing ----------------------------------------------
  double initial_temperature = 0.05;
  double cooling_rate = 0.995;

  // --- particle swarm -----------------------------------------------------
  int swarm_size = 20;
  double inertia = 0.72;
  double cognitive = 1.5;
  double social = 1.5;

  // --- random search -------------------------------------------------------
  /// Candidates drawn by the random-search baseline.
  int random_samples = 400;
};

/// A combinatorial optimizer for the µBE problem. Section 6: "we tried
/// using stochastic local search, particle swarm optimization, constrained
/// simulated annealing, and tabu search, and we found that tabu search gives
/// the best results" — all of those are implemented behind this interface
/// so the comparison is reproducible (bench/ablation_solvers).
class Solver {
 public:
  virtual ~Solver() = default;

  /// Runs the search and returns the best feasible solution found. Fails
  /// with kInfeasible when the constraints admit no candidate (e.g. they
  /// force more sources than m).
  virtual Result<Solution> Solve(const CandidateEvaluator& evaluator,
                                 const SolverOptions& options) const = 0;

  virtual std::string_view name() const = 0;
};

/// Known solver implementations.
enum class SolverKind {
  kTabu,        ///< tabu search (µBE's default)
  kLocalSearch, ///< stochastic hill climbing with random restarts
  kAnnealing,   ///< constrained simulated annealing
  kPso,         ///< binary particle swarm optimization
  kGreedy,      ///< greedy constructive baseline
  kRandom,      ///< uniform random sampling baseline
  kExhaustive,  ///< exact enumeration (tiny instances / tests only)
  kPortfolio,   ///< races the other solvers on a shared eval budget
};

/// Factory for any solver kind.
std::unique_ptr<Solver> MakeSolver(SolverKind kind);

/// Display name ("tabu", "sls", ...).
std::string_view SolverKindName(SolverKind kind);

/// Capability descriptor of one solver — the unified fixture contract that
/// bench/ablation_solvers and tests/test_solver_fixture.cc check every
/// implementation against (one description per solver, checked cross-solver
/// on the same spec).
struct SolverTraits {
  SolverKind kind = SolverKind::kTabu;
  /// Incumbent trace is non-decreasing in quality (all current solvers
  /// report best-so-far traces, so this is true across the board — the
  /// fixture keeps asserting it).
  bool monotonic_trace = true;
  /// Result depends on SolverOptions::seed (false: deterministic
  /// construction/enumeration, every seed returns the same solution).
  bool randomized = true;
  /// Returns the global optimum whenever it completes (exhaustive only).
  bool exact = false;
  /// Can be truncated by time/eval budgets and still return a feasible
  /// incumbent (anytime behavior). False only for greedy, whose result is
  /// all-or-nothing per construction pass.
  bool anytime = true;
  /// Evaluation budget at which the solver reaches its typical quality on
  /// the bench workloads (the equalized budget ablation_solvers uses).
  int64_t default_eval_budget = 12'800;
  /// Worst acceptable quality gap to the exhaustive optimum on the golden
  /// small universe at default_eval_budget (fixture tolerance, not a
  /// performance promise).
  double quality_epsilon = 0.05;
};

/// The descriptor for one solver kind.
SolverTraits SolverTraitsFor(SolverKind kind);

/// Every SolverKind, portfolio last (it composes the rest).
const std::vector<SolverKind>& AllSolverKinds();

}  // namespace ube

#endif  // UBE_OPTIMIZE_SOLVER_H_
