#ifndef UBE_OPTIMIZE_SEARCH_STATE_H_
#define UBE_OPTIMIZE_SEARCH_STATE_H_

#include <bit>
#include <cstdint>
#include <vector>

#include "optimize/evaluator.h"
#include "optimize/problem.h"
#include "util/check.h"
#include "util/rng.h"

namespace ube {

/// Fixed-width bitmask over SourceIds, 64 ids per word. The width is sized
/// once — at universe build, when the owning SearchState is constructed —
/// and never grows: a universe that can grow during a run (LiveUniverse)
/// must reject add-events past its declared capacity *before* any downstream
/// bitmask indexes out of range (see LiveUniverse::Options::max_sources),
/// instead of letting an oversized id become UB here.
class SourceBitset {
 public:
  SourceBitset() = default;
  explicit SourceBitset(int num_sources)
      : size_(num_sources),
        words_(static_cast<size_t>(num_sources + 63) / 64, 0) {
    UBE_CHECK(num_sources >= 0, "bitset width must be non-negative");
  }

  /// Width in source ids (fixed at construction).
  int size() const { return size_; }

  bool test(SourceId s) const {
    UBE_DCHECK(s >= 0 && s < size_, "source id out of bitset range");
    return (words_[Word(s)] >> Bit(s)) & uint64_t{1};
  }
  void set(SourceId s) {
    UBE_DCHECK(s >= 0 && s < size_, "source id out of bitset range");
    words_[Word(s)] |= uint64_t{1} << Bit(s);
  }
  void reset(SourceId s) {
    UBE_DCHECK(s >= 0 && s < size_, "source id out of bitset range");
    words_[Word(s)] &= ~(uint64_t{1} << Bit(s));
  }
  void clear() { std::fill(words_.begin(), words_.end(), 0); }

  /// Number of set bits.
  int count() const {
    int total = 0;
    for (uint64_t word : words_) total += std::popcount(word);
    return total;
  }

 private:
  static size_t Word(SourceId s) { return static_cast<size_t>(s) >> 6; }
  static unsigned Bit(SourceId s) { return static_cast<unsigned>(s) & 63u; }

  int size_ = 0;
  std::vector<uint64_t> words_;
};

/// Mutable candidate representation shared by the local-move solvers:
/// a sorted source list plus an O(1) membership table, with the move set
/// (add / drop / swap) that never touches required sources and never
/// exceeds m — the constraints are enforced structurally, implementing the
/// paper's "permanently tabu regions of the space".
class SearchState {
 public:
  /// A single-element move. kAdd: insert `in`; kDrop: remove `out`;
  /// kSwap: remove `out`, insert `in`.
  struct Move {
    enum class Kind { kAdd, kDrop, kSwap } kind = Kind::kAdd;
    SourceId in = -1;
    SourceId out = -1;
  };

  /// Starts from the required sources, filled up to m with distinct random
  /// extra sources (fewer if the universe is small).
  SearchState(const CandidateEvaluator& evaluator, Rng& rng);

  /// Starts from an explicit candidate (must be sorted/unique, contain the
  /// required sources, size in [1, m]).
  SearchState(const CandidateEvaluator& evaluator,
              std::vector<SourceId> candidate);

  const std::vector<SourceId>& sources() const { return sources_; }
  int size() const { return static_cast<int>(sources_.size()); }
  bool Contains(SourceId s) const { return member_.test(s); }
  /// True if `s` may be dropped (present and not required).
  bool Droppable(SourceId s) const;

  /// Draws a uniformly random feasible move, or returns false when no move
  /// exists (universe exhausted / everything required).
  bool RandomMove(Rng& rng, Move* move) const;

  /// The candidate that `move` would produce (sorted).
  std::vector<SourceId> Apply(const Move& move) const;

  /// Applies `move` in place.
  void Commit(const Move& move);

  /// Replaces the whole candidate (same preconditions as the constructor).
  void Reset(std::vector<SourceId> candidate);

  /// All sources currently outside the candidate.
  std::vector<SourceId> NonMembers() const;

 private:
  void RebuildMembership();

  const CandidateEvaluator* evaluator_;
  int universe_size_;
  int max_sources_;
  std::vector<SourceId> sources_;  // sorted
  // Bit-packed, universe-width masks (width fixed at construction).
  SourceBitset member_;
  SourceBitset required_;
  SourceBitset banned_;
  int num_required_;
  int num_banned_;
};

/// Builds the initial candidate used by SearchState's random constructor;
/// exposed so greedy/PSO can share it.
std::vector<SourceId> RandomFeasibleCandidate(
    const CandidateEvaluator& evaluator, Rng& rng);

}  // namespace ube

#endif  // UBE_OPTIMIZE_SEARCH_STATE_H_
