#ifndef UBE_OPTIMIZE_SEARCH_STATE_H_
#define UBE_OPTIMIZE_SEARCH_STATE_H_

#include <vector>

#include "optimize/evaluator.h"
#include "optimize/problem.h"
#include "util/rng.h"

namespace ube {

/// Mutable candidate representation shared by the local-move solvers:
/// a sorted source list plus an O(1) membership table, with the move set
/// (add / drop / swap) that never touches required sources and never
/// exceeds m — the constraints are enforced structurally, implementing the
/// paper's "permanently tabu regions of the space".
class SearchState {
 public:
  /// A single-element move. kAdd: insert `in`; kDrop: remove `out`;
  /// kSwap: remove `out`, insert `in`.
  struct Move {
    enum class Kind { kAdd, kDrop, kSwap } kind = Kind::kAdd;
    SourceId in = -1;
    SourceId out = -1;
  };

  /// Starts from the required sources, filled up to m with distinct random
  /// extra sources (fewer if the universe is small).
  SearchState(const CandidateEvaluator& evaluator, Rng& rng);

  /// Starts from an explicit candidate (must be sorted/unique, contain the
  /// required sources, size in [1, m]).
  SearchState(const CandidateEvaluator& evaluator,
              std::vector<SourceId> candidate);

  const std::vector<SourceId>& sources() const { return sources_; }
  int size() const { return static_cast<int>(sources_.size()); }
  bool Contains(SourceId s) const { return member_[static_cast<size_t>(s)]; }
  /// True if `s` may be dropped (present and not required).
  bool Droppable(SourceId s) const;

  /// Draws a uniformly random feasible move, or returns false when no move
  /// exists (universe exhausted / everything required).
  bool RandomMove(Rng& rng, Move* move) const;

  /// The candidate that `move` would produce (sorted).
  std::vector<SourceId> Apply(const Move& move) const;

  /// Applies `move` in place.
  void Commit(const Move& move);

  /// Replaces the whole candidate (same preconditions as the constructor).
  void Reset(std::vector<SourceId> candidate);

  /// All sources currently outside the candidate.
  std::vector<SourceId> NonMembers() const;

 private:
  void RebuildMembership();

  const CandidateEvaluator* evaluator_;
  int universe_size_;
  int max_sources_;
  std::vector<SourceId> sources_;  // sorted
  std::vector<char> member_;       // universe-sized bitmap
  std::vector<char> required_;     // universe-sized bitmap
  std::vector<char> banned_;       // universe-sized bitmap
  int num_required_;
  int num_banned_;
};

/// Builds the initial candidate used by SearchState's random constructor;
/// exposed so greedy/PSO can share it.
std::vector<SourceId> RandomFeasibleCandidate(
    const CandidateEvaluator& evaluator, Rng& rng);

}  // namespace ube

#endif  // UBE_OPTIMIZE_SEARCH_STATE_H_
