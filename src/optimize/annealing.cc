#include <algorithm>
#include <cmath>
#include <vector>

#include "optimize/search_state.h"
#include "optimize/solver_internal.h"
#include "optimize/solvers.h"
#include "util/rng.h"
#include "util/timer.h"

namespace ube {

Result<Solution> AnnealingSolver::Solve(const CandidateEvaluator& evaluator,
                                        const SolverOptions& options) const {
  UBE_RETURN_IF_ERROR(internal::CheckSolvable(evaluator));
  WallTimer timer;
  evaluator.ResetCounters();
  Rng rng(options.seed);

  SearchState state(evaluator, rng);
  double current = evaluator.Quality(state.sources());
  std::vector<SourceId> best = state.sources();
  double best_quality = current;
  std::vector<TracePoint> trace;
  internal::MaybeTrace(options.record_trace, evaluator, best_quality, &trace);

  double temperature = std::max(1e-9, options.initial_temperature);
  const double cooling = std::clamp(options.cooling_rate, 0.5, 0.999999);

  int64_t iterations = 0;
  int stall = 0;
  // Annealing needs more, cheaper steps than tabu: each iteration evaluates
  // one neighbour instead of a whole candidate list, so scale the budget by
  // a nominal sample size to keep the evaluation effort comparable.
  const int64_t budget = static_cast<int64_t>(options.max_iterations) * 32;
  for (int64_t iter = 0; iter < budget; ++iter) {
    if (options.time_limit_seconds > 0.0 &&
        timer.ElapsedSeconds() > options.time_limit_seconds) {
      break;
    }
    if (options.stall_iterations > 0 &&
        stall >= static_cast<int64_t>(options.stall_iterations) * 32) {
      break;
    }
    ++iterations;

    SearchState::Move move;
    if (!state.RandomMove(rng, &move)) break;
    double quality = evaluator.Quality(state.Apply(move));
    double delta = quality - current;
    // Constrained annealing: only feasibility-preserving moves are ever
    // generated, so the Metropolis rule acts on quality alone.
    if (delta >= 0.0 || rng.UniformDouble() < std::exp(delta / temperature)) {
      state.Commit(move);
      current = quality;
      if (current > best_quality) {
        best_quality = current;
        best = state.sources();
        internal::MaybeTrace(options.record_trace, evaluator, best_quality,
                             &trace);
        stall = 0;
      } else {
        ++stall;
      }
    } else {
      ++stall;
    }
    temperature *= cooling;
  }

  return internal::FinalizeSolution(evaluator, std::move(best),
                                    std::string(name()), iterations, timer,
                                    std::move(trace));
}

}  // namespace ube
