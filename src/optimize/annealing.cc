#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "optimize/search_state.h"
#include "optimize/solver_internal.h"
#include "optimize/solvers.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace ube {

namespace {

// Annealing proposes one move at a time, which starves a parallel
// evaluator; instead each round drafts a block of moves from the current
// state, scores them in one batch, and then walks the block sequentially
// under the Metropolis rule. The first accepted move invalidates the rest
// of the block (they were proposed from the pre-move state), so the walk
// commits it and discards the remainder. Block size is a constant — it must
// not depend on num_threads, or different thread counts would take
// different walks.
constexpr int kProposalBlock = 8;

}  // namespace

Result<Solution> AnnealingSolver::Solve(const CandidateEvaluator& evaluator,
                                        const SolverOptions& options) const {
  UBE_RETURN_IF_ERROR(internal::CheckSolvable(evaluator));
  WallTimer timer(options.clock);
  evaluator.BeginRun();
  internal::SolveScope scope(evaluator, options, name());
  Rng rng(options.seed);
  std::unique_ptr<ThreadPool> pool = internal::MakeEvalPool(options);
  DeltaEvaluator scorer = internal::MakeDeltaEvaluator(evaluator, options);

  // Warm start: anneal from the (sanitized) seed instead of a random draw.
  // Checked before any rng use (cold fallback bit-identity).
  std::vector<SourceId> warm = internal::ValidWarmStart(evaluator, options);
  SearchState state = warm.empty() ? SearchState(evaluator, rng)
                                   : SearchState(evaluator, std::move(warm));
  double current = scorer.Quality(state.sources());
  std::vector<SourceId> best = state.sources();
  double best_quality = current;
  std::vector<TracePoint> trace;
  internal::MaybeTrace(options.record_trace, evaluator, best_quality, &trace);

  double temperature = std::max(1e-9, options.initial_temperature);
  const double cooling = std::clamp(options.cooling_rate, 0.5, 0.999999);

  int64_t iterations = 0;
  int64_t stall = 0;
  // Annealing needs more, cheaper steps than tabu: each considered move
  // evaluates one neighbour instead of a whole candidate list, so scale the
  // budget by a nominal sample size to keep the evaluation effort
  // comparable.
  const int64_t budget = static_cast<int64_t>(options.max_iterations) * 32;
  const int64_t stall_budget =
      options.stall_iterations > 0
          ? static_cast<int64_t>(options.stall_iterations) * 32
          : 0;
  std::vector<SearchState::Move> moves;
  std::vector<std::vector<SourceId>> candidates;
  bool exhausted = false;
  StopReason stop = StopReason::kMaxIterations;
  while (iterations < budget && !exhausted) {
    // Pre-dispatch deadline check (post-batch check at the bottom).
    if (internal::BudgetExpired(timer, evaluator, options, &stop)) {
      break;
    }
    if (stall_budget > 0 && stall >= stall_budget) {
      stop = StopReason::kStalled;
      break;
    }

    moves.clear();
    candidates.clear();
    const int64_t block =
        std::min<int64_t>(kProposalBlock, budget - iterations);
    for (int64_t k = 0; k < block; ++k) {
      SearchState::Move move;
      if (!state.RandomMove(rng, &move)) {
        exhausted = moves.empty();
        break;
      }
      moves.push_back(move);
      candidates.push_back(state.Apply(move));
    }
    if (moves.empty()) {
      stop = StopReason::kExhausted;
      break;
    }
    std::vector<double> qualities = scorer.ScoreNeighborhood(
        state.sources(), moves, candidates, pool.get());

    for (size_t k = 0; k < moves.size(); ++k) {
      ++iterations;
      double quality = qualities[k];
      double delta = quality - current;
      // Constrained annealing: only feasibility-preserving moves are ever
      // generated, so the Metropolis rule acts on quality alone.
      bool accept =
          delta >= 0.0 || rng.UniformDouble() < std::exp(delta / temperature);
      temperature *= cooling;
      if (!accept) {
        ++stall;
        if (stall_budget > 0 && stall >= stall_budget) break;
        continue;
      }
      state.Commit(moves[k]);
      current = quality;
      if (current > best_quality) {
        best_quality = current;
        best = state.sources();
        internal::MaybeTrace(options.record_trace, evaluator, best_quality,
                             &trace);
        stall = 0;
      } else {
        ++stall;
      }
      // The remaining proposals were drafted from the pre-move state;
      // drop them and draft a fresh block from the new state.
      break;
    }
    if (scope.enabled()) {
      obs::IterationSample sample;
      sample.iteration = iterations;
      sample.evaluations = evaluator.num_evaluations();
      sample.incumbent_quality = best_quality;
      sample.neighborhood = static_cast<int32_t>(candidates.size());
      sample.temperature = temperature;
      sample.stall = static_cast<int32_t>(
          std::min<int64_t>(stall, std::numeric_limits<int32_t>::max()));
      scope.RecordIteration(sample);
    }
    // Post-batch deadline check: the block already ran and its accepted
    // move is committed; stop before drafting another one.
    if (internal::BudgetExpired(timer, evaluator, options, &stop)) {
      break;
    }
  }
  // A drafting failure means no feasible move exists at all — terminal,
  // regardless of which budget also happened to run out.
  if (exhausted) stop = StopReason::kExhausted;

  return internal::FinalizeSolution(evaluator, std::move(best),
                                    std::string(name()), iterations, timer,
                                    stop, std::move(trace), &scope);
}

}  // namespace ube
