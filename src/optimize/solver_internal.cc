#include "optimize/solver_internal.h"

#include <algorithm>
#include <utility>

namespace ube::internal {

SolveScope::SolveScope(const CandidateEvaluator& evaluator,
                       const SolverOptions& options,
                       std::string_view solver_name)
    : evaluator_(evaluator), obs_(options.obs) {
  if (obs_ == nullptr) return;
  evaluator_.AttachObs(obs_);
  ring_ = std::make_unique<obs::TelemetryRing>(
      obs_->options().telemetry_capacity);
  span_ = obs_->tracer().StartSpan(std::string("solve/") +
                                   std::string(solver_name));
}

SolveScope::~SolveScope() {
  if (obs_ == nullptr) return;
  span_.End();
  evaluator_.DetachObs();
}

void SolveScope::Export(SolverStats* stats) {
  if (obs_ == nullptr) return;
  stats->telemetry = ring_->Samples();
  stats->telemetry_dropped = ring_->dropped();
  obs_->metrics().Add(obs_->metrics().Counter(
      std::string("solver.stop.") +
      std::string(StopReasonName(stats->stop_reason))));
  stats->metrics = std::make_shared<const obs::MetricsSnapshot>(
      obs_->metrics().Snapshot());
}

Solution FinalizeSolution(const CandidateEvaluator& evaluator,
                          std::vector<SourceId> best, std::string solver_name,
                          int64_t iterations, const WallTimer& timer,
                          StopReason stop_reason,
                          std::vector<TracePoint> trace, SolveScope* scope) {
  CandidateEvaluator::Evaluation eval = evaluator.Evaluate(best);
  Solution solution;
  solution.sources = std::move(best);
  solution.mediated_schema = std::move(eval.match.schema);
  solution.ga_qualities = std::move(eval.match.ga_qualities);
  solution.ga_from_constraint = std::move(eval.match.ga_from_constraint);
  solution.quality = eval.quality;
  solution.breakdown = std::move(eval.breakdown);
  solution.stats.solver_name = std::move(solver_name);
  solution.stats.iterations = iterations;
  solution.stats.evaluations = evaluator.num_evaluations();
  solution.stats.cache_hits = evaluator.num_cache_hits();
  solution.stats.elapsed_seconds = timer.ElapsedSeconds();
  solution.stats.stop_reason = stop_reason;
  solution.stats.trace = std::move(trace);
  if (scope != nullptr) scope->Export(&solution.stats);
  return solution;
}

Status CheckSolvable(const CandidateEvaluator& evaluator) {
  if (evaluator.universe().empty()) {
    return Status::Infeasible("the universe contains no sources");
  }
  return Status::Ok();
}

std::vector<SourceId> ValidWarmStart(const CandidateEvaluator& evaluator,
                                     const SolverOptions& options) {
  if (options.initial_incumbent.empty()) return {};
  std::vector<SourceId> seed = options.initial_incumbent;
  std::sort(seed.begin(), seed.end());
  seed.erase(std::unique(seed.begin(), seed.end()), seed.end());
  const int num_sources = evaluator.universe().num_sources();
  for (SourceId s : seed) {
    if (s < 0 || s >= num_sources || evaluator.IsBanned(s)) return {};
  }
  const std::vector<SourceId>& required = evaluator.required_sources();
  if (!std::includes(seed.begin(), seed.end(), required.begin(),
                     required.end())) {
    return {};
  }
  if (static_cast<int>(seed.size()) > evaluator.spec().max_sources) return {};
  return seed;
}

std::unique_ptr<ThreadPool> MakeEvalPool(const SolverOptions& options) {
  int threads = options.num_threads == 0 ? ThreadPool::HardwareConcurrency()
                                         : options.num_threads;
  if (threads <= 1) return nullptr;
  return std::make_unique<ThreadPool>(threads);
}

}  // namespace ube::internal
