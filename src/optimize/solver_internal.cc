#include "optimize/solver_internal.h"

#include <utility>

namespace ube::internal {

Solution FinalizeSolution(const CandidateEvaluator& evaluator,
                          std::vector<SourceId> best, std::string solver_name,
                          int64_t iterations, const WallTimer& timer,
                          std::vector<TracePoint> trace) {
  CandidateEvaluator::Evaluation eval = evaluator.Evaluate(best);
  Solution solution;
  solution.sources = std::move(best);
  solution.mediated_schema = std::move(eval.match.schema);
  solution.ga_qualities = std::move(eval.match.ga_qualities);
  solution.ga_from_constraint = std::move(eval.match.ga_from_constraint);
  solution.quality = eval.quality;
  solution.breakdown = std::move(eval.breakdown);
  solution.stats.solver_name = std::move(solver_name);
  solution.stats.iterations = iterations;
  solution.stats.evaluations = evaluator.num_evaluations();
  solution.stats.cache_hits = evaluator.num_cache_hits();
  solution.stats.elapsed_seconds = timer.ElapsedSeconds();
  solution.stats.trace = std::move(trace);
  return solution;
}

Status CheckSolvable(const CandidateEvaluator& evaluator) {
  if (evaluator.universe().empty()) {
    return Status::Infeasible("the universe contains no sources");
  }
  return Status::Ok();
}

std::unique_ptr<ThreadPool> MakeEvalPool(const SolverOptions& options) {
  int threads = options.num_threads == 0 ? ThreadPool::HardwareConcurrency()
                                         : options.num_threads;
  if (threads <= 1) return nullptr;
  return std::make_unique<ThreadPool>(threads);
}

}  // namespace ube::internal
