#include <algorithm>
#include <memory>
#include <vector>

#include "optimize/search_state.h"
#include "optimize/solver_internal.h"
#include "optimize/solvers.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace ube {

namespace {

constexpr double kEps = 1e-12;

}  // namespace

Result<Solution> LocalSearchSolver::Solve(const CandidateEvaluator& evaluator,
                                          const SolverOptions& options) const {
  UBE_RETURN_IF_ERROR(internal::CheckSolvable(evaluator));
  WallTimer timer(options.clock);
  evaluator.BeginRun();
  internal::SolveScope scope(evaluator, options, name());
  Rng rng(options.seed);
  std::unique_ptr<ThreadPool> pool = internal::MakeEvalPool(options);
  DeltaEvaluator delta = internal::MakeDeltaEvaluator(evaluator, options);

  const int n = evaluator.universe().num_sources();
  const int sample = options.candidate_moves > 0
                         ? options.candidate_moves
                         : std::min(64, std::max(24, n / 8));
  const int restarts = std::max(1, options.restarts);
  const int iters_per_restart =
      std::max(1, options.max_iterations / restarts);

  // Warm start: the first restart climbs from the seed; later restarts
  // stay random. Checked before any rng use (cold fallback bit-identity).
  std::vector<SourceId> warm = internal::ValidWarmStart(evaluator, options);

  std::vector<SourceId> best;
  double best_quality = -1.0;
  int64_t iterations = 0;
  StopReason stop = StopReason::kMaxIterations;
  std::vector<TracePoint> trace;

  for (int restart = 0; restart < restarts; ++restart) {
    // The deadline may only end the run once an incumbent exists: the first
    // restart must initialize and take its inner-loop checks, or a tiny
    // time limit would return an empty (infeasible) solution.
    if (!best.empty() &&
        internal::BudgetExpired(timer, evaluator, options, &stop)) {
      break;
    }
    SearchState state = (restart == 0 && !warm.empty())
                            ? SearchState(evaluator, warm)
                            : SearchState(evaluator, rng);
    double current = delta.Quality(state.sources());
    if (current > best_quality) {
      best_quality = current;
      best = state.sources();
      internal::MaybeTrace(options.record_trace, evaluator, best_quality,
                           &trace);
    }

    for (int iter = 0; iter < iters_per_restart; ++iter) {
      // Pre-dispatch deadline check (post-batch check below).
      if (internal::BudgetExpired(timer, evaluator, options, &stop)) {
        break;
      }
      ++iterations;
      // Sample the neighborhood up front and score it as one batch; the
      // selection below replays the sequential first-improvement rule over
      // the precomputed qualities, so any thread count gives the same walk.
      std::vector<SearchState::Move> moves;
      std::vector<std::vector<SourceId>> candidates;
      for (int k = 0; k < sample; ++k) {
        SearchState::Move move;
        if (!state.RandomMove(rng, &move)) break;
        moves.push_back(move);
        candidates.push_back(state.Apply(move));
      }
      std::vector<double> qualities = delta.ScoreNeighborhood(
          state.sources(), moves, candidates, pool.get());
      bool improved = false;
      SearchState::Move chosen;
      double chosen_quality = current;
      for (size_t k = 0; k < moves.size(); ++k) {
        if (qualities[k] > chosen_quality + kEps) {
          improved = true;
          chosen = moves[k];
          chosen_quality = qualities[k];
        }
      }
      if (improved) {
        state.Commit(chosen);
        current = chosen_quality;
        if (current > best_quality) {
          best_quality = current;
          best = state.sources();
          internal::MaybeTrace(options.record_trace, evaluator, best_quality,
                               &trace);
        }
      }
      if (scope.enabled()) {
        obs::IterationSample sample;
        sample.iteration = iterations;
        sample.evaluations = evaluator.num_evaluations();
        sample.incumbent_quality = best_quality;
        sample.neighborhood = static_cast<int32_t>(candidates.size());
        scope.RecordIteration(sample);
      }
      // Post-batch deadline check: the batch already ran, so fold its
      // result (above) but do not dispatch another one past the budget.
      if (internal::BudgetExpired(timer, evaluator, options, &stop)) {
        break;
      }
      if (!improved) break;  // local optimum w.r.t. the sampled neighborhood
    }
  }

  return internal::FinalizeSolution(evaluator, std::move(best),
                                    std::string(name()), iterations, timer,
                                    stop, std::move(trace), &scope);
}

Result<Solution> RandomSolver::Solve(const CandidateEvaluator& evaluator,
                                     const SolverOptions& options) const {
  UBE_RETURN_IF_ERROR(internal::CheckSolvable(evaluator));
  WallTimer timer(options.clock);
  evaluator.BeginRun();
  internal::SolveScope scope(evaluator, options, name());
  Rng rng(options.seed);
  DeltaEvaluator delta = internal::MakeDeltaEvaluator(evaluator, options);

  std::vector<SourceId> best;
  double best_quality = -1.0;
  int64_t iterations = 0;
  StopReason stop = StopReason::kMaxIterations;
  std::vector<TracePoint> trace;
  // Warm start: the seed becomes the incumbent every sample must beat.
  std::vector<SourceId> warm = internal::ValidWarmStart(evaluator, options);
  if (!warm.empty()) {
    best_quality = delta.Quality(warm);
    best = std::move(warm);
    internal::MaybeTrace(options.record_trace, evaluator, best_quality,
                         &trace);
  }
  for (int i = 0; i < std::max(1, options.random_samples); ++i) {
    // First sample always runs so a tiny time limit still yields a feasible
    // (nonempty) incumbent.
    if (!best.empty() &&
        internal::BudgetExpired(timer, evaluator, options, &stop)) {
      break;
    }
    ++iterations;
    std::vector<SourceId> candidate = RandomFeasibleCandidate(evaluator, rng);
    double quality = delta.Quality(candidate);
    if (quality > best_quality) {
      best_quality = quality;
      best = std::move(candidate);
      internal::MaybeTrace(options.record_trace, evaluator, best_quality,
                           &trace);
    }
    if (scope.enabled()) {
      obs::IterationSample sample;
      sample.iteration = iterations;
      sample.evaluations = evaluator.num_evaluations();
      sample.incumbent_quality = best_quality;
      sample.neighborhood = 1;
      scope.RecordIteration(sample);
    }
  }

  return internal::FinalizeSolution(evaluator, std::move(best),
                                    std::string(name()), iterations, timer,
                                    stop, std::move(trace), &scope);
}

}  // namespace ube
