#include <algorithm>
#include <memory>
#include <vector>

#include "optimize/search_state.h"
#include "optimize/solver_internal.h"
#include "optimize/solvers.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace ube {

namespace {

constexpr double kEps = 1e-12;

}  // namespace

Result<Solution> LocalSearchSolver::Solve(const CandidateEvaluator& evaluator,
                                          const SolverOptions& options) const {
  UBE_RETURN_IF_ERROR(internal::CheckSolvable(evaluator));
  WallTimer timer;
  evaluator.BeginRun();
  Rng rng(options.seed);
  std::unique_ptr<ThreadPool> pool = internal::MakeEvalPool(options);

  const int n = evaluator.universe().num_sources();
  const int sample = options.candidate_moves > 0
                         ? options.candidate_moves
                         : std::min(64, std::max(24, n / 8));
  const int restarts = std::max(1, options.restarts);
  const int iters_per_restart =
      std::max(1, options.max_iterations / restarts);

  std::vector<SourceId> best;
  double best_quality = -1.0;
  int64_t iterations = 0;
  std::vector<TracePoint> trace;

  for (int restart = 0; restart < restarts; ++restart) {
    if (options.time_limit_seconds > 0.0 &&
        timer.ElapsedSeconds() > options.time_limit_seconds) {
      break;
    }
    SearchState state(evaluator, rng);
    double current = evaluator.Quality(state.sources());
    if (current > best_quality) {
      best_quality = current;
      best = state.sources();
      internal::MaybeTrace(options.record_trace, evaluator, best_quality,
                           &trace);
    }

    for (int iter = 0; iter < iters_per_restart; ++iter) {
      if (options.time_limit_seconds > 0.0 &&
          timer.ElapsedSeconds() > options.time_limit_seconds) {
        break;
      }
      ++iterations;
      // Sample the neighborhood up front and score it as one batch; the
      // selection below replays the sequential first-improvement rule over
      // the precomputed qualities, so any thread count gives the same walk.
      std::vector<SearchState::Move> moves;
      std::vector<std::vector<SourceId>> candidates;
      for (int k = 0; k < sample; ++k) {
        SearchState::Move move;
        if (!state.RandomMove(rng, &move)) break;
        moves.push_back(move);
        candidates.push_back(state.Apply(move));
      }
      std::vector<double> qualities =
          evaluator.QualityBatch(candidates, pool.get());
      bool improved = false;
      SearchState::Move chosen;
      double chosen_quality = current;
      for (size_t k = 0; k < moves.size(); ++k) {
        if (qualities[k] > chosen_quality + kEps) {
          improved = true;
          chosen = moves[k];
          chosen_quality = qualities[k];
        }
      }
      if (!improved) break;  // local optimum w.r.t. the sampled neighborhood
      state.Commit(chosen);
      current = chosen_quality;
      if (current > best_quality) {
        best_quality = current;
        best = state.sources();
        internal::MaybeTrace(options.record_trace, evaluator, best_quality,
                             &trace);
      }
    }
  }

  return internal::FinalizeSolution(evaluator, std::move(best),
                                    std::string(name()), iterations, timer,
                                    std::move(trace));
}

Result<Solution> RandomSolver::Solve(const CandidateEvaluator& evaluator,
                                     const SolverOptions& options) const {
  UBE_RETURN_IF_ERROR(internal::CheckSolvable(evaluator));
  WallTimer timer;
  evaluator.BeginRun();
  Rng rng(options.seed);

  std::vector<SourceId> best;
  double best_quality = -1.0;
  int64_t iterations = 0;
  std::vector<TracePoint> trace;
  for (int i = 0; i < std::max(1, options.random_samples); ++i) {
    if (options.time_limit_seconds > 0.0 &&
        timer.ElapsedSeconds() > options.time_limit_seconds) {
      break;
    }
    ++iterations;
    std::vector<SourceId> candidate = RandomFeasibleCandidate(evaluator, rng);
    double quality = evaluator.Quality(candidate);
    if (quality > best_quality) {
      best_quality = quality;
      best = std::move(candidate);
      internal::MaybeTrace(options.record_trace, evaluator, best_quality,
                           &trace);
    }
  }

  return internal::FinalizeSolution(evaluator, std::move(best),
                                    std::string(name()), iterations, timer,
                                    std::move(trace));
}

}  // namespace ube
