#include "optimize/delta_evaluator.h"

#include <chrono>
#include <cstddef>
#include <unordered_map>

#include "obs/obs.h"
#include "sketch/distinct_estimator.h"
#include "sketch/pcsa.h"
#include "util/check.h"

namespace ube {

DeltaEvaluator::DeltaEvaluator(const CandidateEvaluator& evaluator,
                               bool enable)
    : evaluator_(&evaluator) {
  if (!enable) return;
  const QualityModel& model = evaluator.model();
  const Universe& universe = evaluator.universe();

  // Every QEF must offer an incremental scorer, or the whole model falls
  // back to full evaluation (a matching QEF's Match(S) cannot be
  // delta-maintained, and a partial delta would break per-QEF bit-identity).
  for (int i = 0; i < model.num_qefs(); ++i) {
    std::unique_ptr<QefDeltaScorer> scorer =
        model.qef(i).MakeDeltaScorer(universe);
    if (scorer == nullptr) {
      scorers_.clear();
      weights_.clear();
      return;
    }
    scorers_.push_back(std::move(scorer));
    // The evaluator's *effective* weights (spec overlay or model weights),
    // so a session's overlay flows through the delta path bit-identically
    // to the full path.
    weights_.push_back(evaluator.effective_weights()[static_cast<size_t>(i)]);
  }
  active_ = true;

  // Per-source tables: the degradation policy is a pure function of each
  // source's stats, and the universe must not mutate during a search (the
  // contract CandidateEvaluator already documents), so apply it once here
  // instead of once per member per evaluation.
  const int n = universe.num_sources();
  entries_.resize(static_cast<size_t>(n));
  for (SourceId s = 0; s < n; ++s) {
    const DataSource& source = universe.source(s);
    SourceEntry& e = entries_[static_cast<size_t>(s)];
    e.cardinality = source.cardinality();
    const QualityModel::SourcePolicy policy = model.PolicyFor(source);
    e.degraded = policy.degraded;
    e.contribution =
        policy.weight * static_cast<double>(source.cardinality());
    e.admitted = policy.admit_signature && source.has_signature();
    if (e.admitted) e.signature = &source.signature();
  }

  // Policy-adjusted denominators — the same Universe aggregates MakeContext
  // reads per evaluation, so the values (and bits) are identical.
  if (model.degradation().policy == DegradationPolicy::kExcludeRenormalize) {
    universe_cardinality_ = universe.FreshCardinality();
    universe_union_estimate_ = universe.FreshUnionCardinalityEstimate();
  } else {
    universe_cardinality_ = universe.TotalCardinality();
    universe_union_estimate_ = universe.UnionCardinalityEstimate();
  }

  // The word-wise union fast path needs every admitted signature to be a
  // PcsaSignature of one width; mixed or exact signatures use the generic
  // Clone+MergeFrom fallback (still delta-scored, just without the
  // prefix/suffix trick).
  pcsa_uniform_ = true;
  for (SourceEntry& e : entries_) {
    if (!e.admitted) continue;
    const auto* pcsa = dynamic_cast<const PcsaSignature*>(e.signature);
    if (pcsa == nullptr) {
      pcsa_uniform_ = false;
      break;
    }
    const std::vector<uint32_t>& words = pcsa->sketch().bitmaps();
    if (words_ == 0) words_ = words.size();
    if (words.size() != words_) {
      pcsa_uniform_ = false;
      break;
    }
    e.pcsa_words = &words;
  }
  if (words_ == 0) pcsa_uniform_ = false;  // no admitted signature anywhere
  if (pcsa_uniform_) scratch_.assign(words_, 0);
  admitted_index_.assign(static_cast<size_t>(n), -1);
}

void DeltaEvaluator::FillScalars(const std::vector<SourceId>& candidate,
                                 EvalContext* ctx) const {
  ctx->universe = &evaluator_->universe();
  ctx->sources = &candidate;
  ctx->match = nullptr;
  // Doubles are re-summed per evaluation, in candidate (ascending id)
  // order, from the precomputed per-source terms: identical operands in
  // identical order reproduce MakeContext's accumulation bits exactly.
  for (SourceId s : candidate) {
    const SourceEntry& e = entries_[static_cast<size_t>(s)];
    ctx->total_cardinality += e.cardinality;
    if (e.degraded) ++ctx->degraded_count;
    ctx->effective_cardinality += e.contribution;
    if (!e.admitted) continue;
    ++ctx->cooperating_count;
    ctx->cooperating_cardinality += e.contribution;
  }
  ctx->universe_cardinality = universe_cardinality_;
  ctx->universe_union_estimate = universe_union_estimate_;
}

double DeltaEvaluator::UnionFromScratch(
    const std::vector<SourceId>& candidate) {
  if (pcsa_uniform_) {
    scratch_.assign(words_, 0);
    bool any = false;
    for (SourceId s : candidate) {
      const SourceEntry& e = entries_[static_cast<size_t>(s)];
      if (!e.admitted) continue;
      any = true;
      const std::vector<uint32_t>& words = *e.pcsa_words;
      for (size_t w = 0; w < words_; ++w) scratch_[w] |= words[w];
    }
    return any ? PcsaSketch::EstimateFromBitmaps(scratch_) : 0.0;
  }
  // Generic signatures: replicate MakeContext's Clone-then-MergeFrom union
  // verbatim so the estimate bits cannot differ.
  std::unique_ptr<DistinctSignature> union_sig;
  for (SourceId s : candidate) {
    const SourceEntry& e = entries_[static_cast<size_t>(s)];
    if (!e.admitted) continue;
    if (union_sig == nullptr) {
      union_sig = e.signature->Clone();
    } else {
      union_sig->MergeFrom(*e.signature);
    }
  }
  return union_sig == nullptr ? 0.0 : union_sig->Estimate();
}

void DeltaEvaluator::Rebase(const std::vector<SourceId>& base) {
  base_ = base;
  has_base_ = true;
  if (!pcsa_uniform_) return;

  for (SourceId s : base_admitted_) admitted_index_[static_cast<size_t>(s)] = -1;
  base_admitted_.clear();
  for (SourceId s : base) {
    if (!entries_[static_cast<size_t>(s)].admitted) continue;
    admitted_index_[static_cast<size_t>(s)] =
        static_cast<int>(base_admitted_.size());
    base_admitted_.push_back(s);
  }
  const size_t k = base_admitted_.size();
  // prefix[i] = ∪ sketches of the first i admitted members; suffix[i] = ∪ of
  // members i..k-1. Removing admitted member j is then
  // prefix[j] | suffix[j+1] — the re-OR-on-remove the union's lack of an
  // inverse requires, paid once per base instead of once per flip.
  prefix_.assign((k + 1) * words_, 0);
  suffix_.assign((k + 1) * words_, 0);
  for (size_t i = 0; i < k; ++i) {
    const std::vector<uint32_t>& words =
        *entries_[static_cast<size_t>(base_admitted_[i])].pcsa_words;
    uint32_t* prev = prefix_.data() + i * words_;
    uint32_t* next = prefix_.data() + (i + 1) * words_;
    for (size_t w = 0; w < words_; ++w) next[w] = prev[w] | words[w];
  }
  for (size_t i = k; i-- > 0;) {
    const std::vector<uint32_t>& words =
        *entries_[static_cast<size_t>(base_admitted_[i])].pcsa_words;
    uint32_t* prev = suffix_.data() + (i + 1) * words_;
    uint32_t* next = suffix_.data() + i * words_;
    for (size_t w = 0; w < words_; ++w) next[w] = prev[w] | words[w];
  }
}

double DeltaEvaluator::UnionForMove(const SearchState::Move& move) {
  const size_t k = base_admitted_.size();
  int admitted = static_cast<int>(k);

  int removed_at = -1;
  if (move.kind != SearchState::Move::Kind::kAdd) {
    removed_at = admitted_index_[static_cast<size_t>(move.out)];
    if (removed_at >= 0) --admitted;
  }
  const std::vector<uint32_t>* added = nullptr;
  if (move.kind != SearchState::Move::Kind::kDrop &&
      entries_[static_cast<size_t>(move.in)].admitted) {
    added = entries_[static_cast<size_t>(move.in)].pcsa_words;
    ++admitted;
  }
  if (admitted <= 0) return 0.0;

  if (removed_at >= 0) {
    const uint32_t* lo = prefix_.data() + static_cast<size_t>(removed_at) * words_;
    const uint32_t* hi =
        suffix_.data() + (static_cast<size_t>(removed_at) + 1) * words_;
    for (size_t w = 0; w < words_; ++w) scratch_[w] = lo[w] | hi[w];
  } else {
    const uint32_t* all = prefix_.data() + k * words_;
    for (size_t w = 0; w < words_; ++w) scratch_[w] = all[w];
  }
  if (added != nullptr) {
    for (size_t w = 0; w < words_; ++w) scratch_[w] |= (*added)[w];
  }
  return PcsaSketch::EstimateFromBitmaps(scratch_);
}

QualityBreakdown DeltaEvaluator::Score(const EvalContext& ctx) const {
  // The delta replica of QualityModel::Evaluate for a matching-free model:
  // same per-QEF order, same weighted accumulation order.
  QualityBreakdown out;
  out.scores.resize(scorers_.size(), 0.0);
  for (size_t i = 0; i < scorers_.size(); ++i) {
    out.scores[i] = scorers_[i]->Score(ctx);
    out.overall += weights_[i] * out.scores[i];
  }
  return out;
}

QualityBreakdown DeltaEvaluator::Compute(
    const std::vector<SourceId>& candidate) {
  UBE_CHECK(active_, "DeltaEvaluator::Compute requires an active delta path");
  evaluator_->evaluations_.fetch_add(1, std::memory_order_relaxed);
  if (evaluator_->obs_.ctx != nullptr) {
    evaluator_->obs_.ctx->metrics().Add(evaluator_->obs_.computed);
  }
  EvalContext ctx;
  FillScalars(candidate, &ctx);
  ctx.union_estimate = UnionFromScratch(candidate);
  return Score(ctx);
}

double DeltaEvaluator::ComputeForMove(const SearchState::Move& move,
                                      const std::vector<SourceId>& candidate) {
  evaluator_->evaluations_.fetch_add(1, std::memory_order_relaxed);
  if (evaluator_->obs_.ctx != nullptr) {
    evaluator_->obs_.ctx->metrics().Add(evaluator_->obs_.computed);
  }
  EvalContext ctx;
  FillScalars(candidate, &ctx);
  ctx.union_estimate =
      pcsa_uniform_ ? UnionForMove(move) : UnionFromScratch(candidate);
  return Score(ctx).overall;
}

double DeltaEvaluator::Quality(const std::vector<SourceId>& candidate) {
  if (!active_) return evaluator_->Quality(candidate);
  const uint64_t key = evaluator_->CacheKey(candidate);
  double quality = 0.0;
  if (evaluator_->CacheLookup(key, candidate, &quality)) {
    evaluator_->cache_hits_.fetch_add(1, std::memory_order_relaxed);
    if (evaluator_->obs_.ctx != nullptr) {
      evaluator_->obs_.ctx->metrics().Add(evaluator_->obs_.cache_hit);
    }
    return quality;
  }
  quality = Compute(candidate).overall;
  evaluator_->CacheInsert(key, candidate, quality);
  return quality;
}

std::vector<double> DeltaEvaluator::ScoreCandidates(
    std::span<const std::vector<SourceId>> candidates, ThreadPool* pool) {
  if (!active_) return evaluator_->QualityBatch(candidates, pool);
  return Batch(candidates, nullptr);
}

std::vector<double> DeltaEvaluator::ScoreNeighborhood(
    const std::vector<SourceId>& base, std::span<const SearchState::Move> moves,
    std::span<const std::vector<SourceId>> candidates, ThreadPool* pool) {
  UBE_DCHECK(moves.size() == candidates.size(),
             "moves and candidates must be parallel");
  if (!active_) return evaluator_->QualityBatch(candidates, pool);
  if (!has_base_ || base_ != base) Rebase(base);
  return Batch(candidates, moves.data());
}

std::vector<double> DeltaEvaluator::Batch(
    std::span<const std::vector<SourceId>> candidates,
    const SearchState::Move* moves) {
  // Mirrors CandidateEvaluator::QualityBatch phase for phase so cache state,
  // counters and eval.* metrics come out identical for the same candidate
  // stream; only the per-miss compute differs (delta, sequential — each
  // miss is O(sketch words + |S|), so there is nothing worth parallelizing
  // and thread-count invariance is structural).
  const CandidateEvaluator& ev = *evaluator_;
  const size_t n = candidates.size();
  std::vector<double> out(n, 0.0);
  if (n == 0) return out;

  obs::Tracer::Span span = obs::SpanIf(ev.obs_.ctx, "eval/batch");
  std::chrono::steady_clock::time_point batch_start;
  if (ev.obs_.ctx != nullptr) {
    ev.obs_.ctx->metrics().Observe(ev.obs_.batch_size,
                                   static_cast<int64_t>(n));
    batch_start = std::chrono::steady_clock::now();
  }

  constexpr ptrdiff_t kResolved = -1;
  std::vector<ptrdiff_t> miss_of(n, kResolved);
  std::vector<size_t> misses;
  std::vector<uint64_t> miss_keys;
  std::unordered_map<uint64_t, std::vector<size_t>> pending;
  int64_t hits = 0;
  for (size_t i = 0; i < n; ++i) {
    const std::vector<SourceId>& candidate = candidates[i];
    uint64_t key = ev.CacheKey(candidate);
    if (ev.CacheLookup(key, candidate, &out[i])) {
      ++hits;
      continue;
    }
    std::vector<size_t>& bucket = pending[key];
    bool duplicate = false;
    for (size_t pos : bucket) {
      if (candidates[misses[pos]] == candidate) {
        miss_of[i] = static_cast<ptrdiff_t>(pos);
        ++hits;
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    miss_of[i] = static_cast<ptrdiff_t>(misses.size());
    bucket.push_back(misses.size());
    misses.push_back(i);
    miss_keys.push_back(key);
  }

  std::vector<double> computed(misses.size(), 0.0);
  for (size_t j = 0; j < misses.size(); ++j) {
    const size_t i = misses[j];
    computed[j] = moves != nullptr ? ComputeForMove(moves[i], candidates[i])
                                   : Compute(candidates[i]).overall;
  }

  for (size_t j = 0; j < misses.size(); ++j) {
    ev.CacheInsert(miss_keys[j], candidates[misses[j]], computed[j]);
  }
  for (size_t i = 0; i < n; ++i) {
    if (miss_of[i] != kResolved) {
      out[i] = computed[static_cast<size_t>(miss_of[i])];
    }
  }
  ev.cache_hits_.fetch_add(hits, std::memory_order_relaxed);
  if (ev.obs_.ctx != nullptr) {
    if (hits > 0) ev.obs_.ctx->metrics().Add(ev.obs_.cache_hit, hits);
    auto elapsed = std::chrono::steady_clock::now() - batch_start;
    ev.obs_.ctx->metrics().Observe(
        ev.obs_.batch_latency_us,
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
            .count());
  }
  return out;
}

}  // namespace ube
