#include "optimize/evaluator.h"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstring>

#include "obs/obs.h"
#include "util/check.h"
#include "util/rng.h"

namespace ube {

namespace {

std::vector<SourceId> SortedUnique(std::vector<SourceId> ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

std::vector<SourceId> ComputeRequired(const ProblemSpec& spec) {
  std::vector<SourceId> required = spec.source_constraints;
  for (const GlobalAttribute& g : spec.ga_constraints) {
    for (const AttributeId& id : g.attributes()) required.push_back(id.source);
  }
  std::sort(required.begin(), required.end());
  required.erase(std::unique(required.begin(), required.end()),
                 required.end());
  return required;
}

/// Digests everything a quality value depends on into 64 bits: the spec's
/// matching knobs and constraints, the effective weights (bit patterns, so
/// an overlay differing in the last ulp still separates), the degradation
/// policy, the model's QEF lineup, the universe extent and the caller's
/// cache epoch. Two evaluators agreeing on all of these return identical
/// qualities for any candidate — the invariant that makes sharing a cache
/// across sessions safe.
uint64_t ComputeSpecFingerprint(const Universe& universe,
                                const QualityModel& model,
                                const ProblemSpec& spec,
                                const std::vector<double>& weights,
                                const std::vector<SourceId>& banned,
                                uint64_t cache_epoch) {
  uint64_t h = SplitMix64(0x5bec0ffee5ULL ^ cache_epoch);
  auto mix = [&h](uint64_t v) { h = SplitMix64(h ^ v); };
  auto mix_double = [&mix](double d) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(bits));
    mix(bits);
  };
  auto mix_id = [&mix](SourceId s) {
    mix(static_cast<uint64_t>(static_cast<uint32_t>(s)));
  };

  mix(static_cast<uint64_t>(universe.num_sources()));
  mix(static_cast<uint64_t>(spec.max_sources));
  mix_double(spec.theta);
  mix(static_cast<uint64_t>(spec.beta));
  mix(spec.source_constraints.size());
  for (SourceId s : spec.source_constraints) mix_id(s);
  // Bans via the sorted-unique view: ban order cannot change any quality,
  // so sessions differing only in ban order still share cache hits.
  mix(banned.size());
  for (SourceId s : banned) mix_id(s);
  mix(spec.ga_constraints.size());
  for (const GlobalAttribute& g : spec.ga_constraints) {
    mix(static_cast<uint64_t>(g.attributes().size()));
    for (const AttributeId& id : g.attributes()) {
      mix_id(id.source);
      mix(static_cast<uint64_t>(static_cast<uint32_t>(id.attr_index)));
    }
  }
  mix(weights.size());
  for (double w : weights) mix_double(w);
  mix(static_cast<uint64_t>(model.degradation().policy));
  mix_double(model.degradation().stale_discount);
  mix(static_cast<uint64_t>(model.num_qefs()));
  for (int i = 0; i < model.num_qefs(); ++i) {
    std::string_view name = model.qef(i).name();
    mix(name.size());
    for (char c : name) mix(static_cast<uint64_t>(static_cast<uint8_t>(c)));
  }
  return h;
}

}  // namespace

SharedQualityCache::SharedQualityCache(size_t max_entries_per_shard)
    : max_entries_per_shard_(max_entries_per_shard) {}

uint64_t SharedQualityCache::SlotKey(uint64_t fingerprint,
                                     uint64_t key) const {
  return mix_fingerprint_ ? SplitMix64(fingerprint ^ key) : key;
}

bool SharedQualityCache::Lookup(uint64_t fingerprint, uint64_t key,
                                const std::vector<SourceId>& candidate,
                                double* quality) const {
  const uint64_t slot = SlotKey(fingerprint, key);
  Shard& shard = ShardFor(slot);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(slot);
  if (it == shard.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // Verify fingerprint AND candidate: a slot collision between two specs
  // (or two candidates) must recompute, never cross-serve a tenant.
  if (it->second.fingerprint != fingerprint ||
      it->second.candidate != candidate) {
    rejects_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  *quality = it->second.quality;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void SharedQualityCache::Insert(uint64_t fingerprint, uint64_t key,
                                const std::vector<SourceId>& candidate,
                                double quality) {
  const uint64_t slot = SlotKey(fingerprint, key);
  Shard& shard = ShardFor(slot);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.map.size() >= max_entries_per_shard_) {
    shard.map.clear();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  shard.map[slot] = Entry{fingerprint, candidate, quality};
  insertions_.fetch_add(1, std::memory_order_relaxed);
}

void SharedQualityCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.clear();
  }
}

SharedQualityCache::Stats SharedQualityCache::stats() const {
  Stats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.insertions = insertions_.load(std::memory_order_relaxed);
  out.rejects = rejects_.load(std::memory_order_relaxed);
  out.evictions = evictions_.load(std::memory_order_relaxed);
  return out;
}

size_t SharedQualityCache::size() const {
  size_t total = 0;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.map.size();
  }
  return total;
}

CandidateEvaluator::CandidateEvaluator(const Universe& universe,
                                       const ClusterMatcher& matcher,
                                       const QualityModel& model,
                                       const ProblemSpec& spec,
                                       uint64_t cache_epoch)
    : universe_(universe),
      matcher_(matcher),
      model_(model),
      spec_(spec),
      required_(ComputeRequired(spec)),
      banned_(SortedUnique(spec.banned_sources)),
      effective_weights_(spec.weight_overlay.empty() ? model.weights()
                                                     : spec.weight_overlay) {
  Status status = ValidateSpec(universe, spec);
  UBE_CHECK(status.ok(), "invalid ProblemSpec: " + status.ToString());
  status = ValidateOverlay(model, spec);
  UBE_CHECK(status.ok(), "invalid weight overlay: " + status.ToString());
  spec_fingerprint_ = ComputeSpecFingerprint(universe, model, spec,
                                             effective_weights_, banned_,
                                             cache_epoch);
  // Force the universe's lazily built union signatures now, while we are
  // still single-threaded: MakeContext reads one of them (which, depends on
  // the degradation policy) on every evaluation and the lazy build mutates
  // Universe state.
  universe_.UnionSignature();
  universe_.FreshUnionSignature();
}

Status CandidateEvaluator::ValidateOverlay(const QualityModel& model,
                                           const ProblemSpec& spec) {
  if (spec.weight_overlay.empty()) return Status::Ok();
  return model.ValidateWeightVector(spec.weight_overlay);
}

Status CandidateEvaluator::ValidateSpec(const Universe& universe,
                                        const ProblemSpec& spec) {
  if (spec.max_sources < 1) {
    return Status::InvalidArgument("m (max_sources) must be >= 1");
  }
  if (spec.theta < 0.0 || spec.theta > 1.0) {
    return Status::InvalidArgument("θ must be in [0, 1]");
  }
  if (spec.beta < 1) {
    return Status::InvalidArgument("β must be >= 1");
  }
  for (SourceId s : spec.source_constraints) {
    if (s < 0 || s >= universe.num_sources()) {
      return Status::InvalidArgument("source constraint out of range");
    }
  }
  for (SourceId s : spec.banned_sources) {
    if (s < 0 || s >= universe.num_sources()) {
      return Status::InvalidArgument("banned source out of range");
    }
  }
  for (size_t i = 0; i < spec.ga_constraints.size(); ++i) {
    const GlobalAttribute& g = spec.ga_constraints[i];
    if (!g.IsValid()) {
      return Status::InvalidArgument("GA constraint is not a valid GA");
    }
    for (const AttributeId& id : g.attributes()) {
      if (id.source < 0 || id.source >= universe.num_sources()) {
        return Status::InvalidArgument("GA constraint source out of range");
      }
      if (id.attr_index < 0 ||
          id.attr_index >=
              universe.source(id.source).schema().num_attributes()) {
        return Status::InvalidArgument(
            "GA constraint references a nonexistent attribute");
      }
    }
    for (size_t j = i + 1; j < spec.ga_constraints.size(); ++j) {
      if (g.Intersects(spec.ga_constraints[j])) {
        return Status::InvalidArgument("GA constraints must be disjoint");
      }
    }
  }
  std::vector<SourceId> required = ComputeRequired(spec);
  if (static_cast<int>(required.size()) > spec.max_sources) {
    return Status::Infeasible(
        "constraints force more sources than m allows");
  }
  for (SourceId banned : spec.banned_sources) {
    if (std::binary_search(required.begin(), required.end(), banned)) {
      return Status::Infeasible(
          "a source is both required (constraint) and banned");
    }
  }
  if (universe.num_sources() > 0 &&
      static_cast<int>(spec.banned_sources.size()) >=
          universe.num_sources()) {
    // Possible only when every source is banned (ids are validated above).
    std::vector<SourceId> banned = spec.banned_sources;
    std::sort(banned.begin(), banned.end());
    banned.erase(std::unique(banned.begin(), banned.end()), banned.end());
    if (static_cast<int>(banned.size()) == universe.num_sources()) {
      return Status::Infeasible("every source in the universe is banned");
    }
  }
  return Status::Ok();
}

CandidateEvaluator::Evaluation CandidateEvaluator::Evaluate(
    const std::vector<SourceId>& candidate) const {
  UBE_DCHECK(std::is_sorted(candidate.begin(), candidate.end()),
             "candidate must be sorted");
  UBE_DCHECK(!candidate.empty() &&
                 static_cast<int>(candidate.size()) <= spec_.max_sources,
             "candidate size out of [1, m]");
  UBE_DCHECK(std::includes(candidate.begin(), candidate.end(),
                           required_.begin(), required_.end()),
             "candidate must contain all required sources");
#ifndef NDEBUG
  for (SourceId s : candidate) {
    UBE_DCHECK(!IsBanned(s), "candidate contains a banned source");
  }
#endif

  evaluations_.fetch_add(1, std::memory_order_relaxed);
  if (obs_.ctx != nullptr) obs_.ctx->metrics().Add(obs_.computed);
  Evaluation out;
  if (model_.NeedsMatching()) {
    MatchOptions options;
    options.theta = spec_.theta;
    options.beta = spec_.beta;
    Result<MatchResult> match =
        matcher_.Match(candidate, spec_.source_constraints,
                       spec_.ga_constraints, options);
    UBE_CHECK(match.ok(), "Match failed: " + match.status().ToString());
    out.match = std::move(match).value();
  } else {
    out.match.valid = true;  // no matching QEF: feasibility is structural
  }
  EvalContext ctx = model_.MakeContext(universe_, candidate, &out.match);
  out.breakdown = model_.Evaluate(ctx, effective_weights_);
  out.quality = out.breakdown.overall;
  return out;
}

uint64_t CandidateEvaluator::CacheKey(
    const std::vector<SourceId>& candidate) const {
  return SplitMix64(spec_fingerprint_ ^ hash_fn_(candidate));
}

bool CandidateEvaluator::CacheLookup(uint64_t key,
                                     const std::vector<SourceId>& candidate,
                                     double* quality) const {
  if (shared_cache_ != nullptr) {
    return shared_cache_->Lookup(spec_fingerprint_, key, candidate, quality);
  }
  CacheShard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) return false;
  // Verify the stored candidate: a 64-bit collision must recompute, never
  // hand back another candidate's quality.
  if (it->second.candidate != candidate) {
    if (obs_.ctx != nullptr) {
      obs_.ctx->metrics().Add(obs_.collision_recompute);
    }
    return false;
  }
  *quality = it->second.quality;
  return true;
}

void CandidateEvaluator::CacheInsert(uint64_t key,
                                     const std::vector<SourceId>& candidate,
                                     double quality) const {
  if (shared_cache_ != nullptr) {
    shared_cache_->Insert(spec_fingerprint_, key, candidate, quality);
    return;
  }
  CacheShard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.map.size() >= max_entries_per_shard_) {
    shard.map.clear();
    if (obs_.ctx != nullptr) obs_.ctx->metrics().Add(obs_.shard_eviction);
  }
  shard.map[key] = CacheEntry{candidate, quality};
}

double CandidateEvaluator::Quality(
    const std::vector<SourceId>& candidate) const {
  uint64_t key = CacheKey(candidate);
  double quality = 0.0;
  if (CacheLookup(key, candidate, &quality)) {
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    if (obs_.ctx != nullptr) obs_.ctx->metrics().Add(obs_.cache_hit);
    return quality;
  }
  quality = Evaluate(candidate).quality;
  CacheInsert(key, candidate, quality);
  return quality;
}

std::vector<double> CandidateEvaluator::QualityBatch(
    std::span<const std::vector<SourceId>> candidates,
    ThreadPool* pool) const {
  const size_t n = candidates.size();
  std::vector<double> out(n, 0.0);
  if (n == 0) return out;

  obs::Tracer::Span span = obs::SpanIf(obs_.ctx, "eval/batch");
  std::chrono::steady_clock::time_point batch_start;
  if (obs_.ctx != nullptr) {
    obs_.ctx->metrics().Observe(obs_.batch_size, static_cast<int64_t>(n));
    batch_start = std::chrono::steady_clock::now();
  }

  // Phase 1 (sequential): probe the cache and deduplicate the misses, so a
  // candidate appearing twice in one batch is computed once and the second
  // occurrence counts as a cache hit — exactly what a sequence of Quality()
  // calls would do. kResolved marks entries already answered from cache.
  constexpr ptrdiff_t kResolved = -1;
  std::vector<ptrdiff_t> miss_of(n, kResolved);  // index into `misses`
  std::vector<size_t> misses;                    // first occurrence indices
  std::vector<uint64_t> miss_keys;
  std::unordered_map<uint64_t, std::vector<size_t>> pending;  // key → misses
  int64_t hits = 0;
  for (size_t i = 0; i < n; ++i) {
    const std::vector<SourceId>& candidate = candidates[i];
    uint64_t key = CacheKey(candidate);
    if (CacheLookup(key, candidate, &out[i])) {
      ++hits;
      continue;
    }
    std::vector<size_t>& bucket = pending[key];
    bool duplicate = false;
    for (size_t pos : bucket) {
      if (candidates[misses[pos]] == candidate) {
        miss_of[i] = static_cast<ptrdiff_t>(pos);
        ++hits;
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    miss_of[i] = static_cast<ptrdiff_t>(misses.size());
    bucket.push_back(misses.size());
    misses.push_back(i);
    miss_keys.push_back(key);
  }

  // Phase 2: compute the unique misses — each a pure function of its
  // candidate, so index order (and thread count) cannot change any value.
  std::vector<double> computed(misses.size(), 0.0);
  if (pool != nullptr && misses.size() > 1) {
    pool->ParallelFor(misses.size(), [&](size_t j) {
      computed[j] = Evaluate(candidates[misses[j]]).quality;
    });
  } else {
    for (size_t j = 0; j < misses.size(); ++j) {
      computed[j] = Evaluate(candidates[misses[j]]).quality;
    }
  }

  // Phase 3 (sequential): publish to the cache and scatter the results.
  for (size_t j = 0; j < misses.size(); ++j) {
    CacheInsert(miss_keys[j], candidates[misses[j]], computed[j]);
  }
  for (size_t i = 0; i < n; ++i) {
    if (miss_of[i] != kResolved) {
      out[i] = computed[static_cast<size_t>(miss_of[i])];
    }
  }
  cache_hits_.fetch_add(hits, std::memory_order_relaxed);
  if (obs_.ctx != nullptr) {
    if (hits > 0) obs_.ctx->metrics().Add(obs_.cache_hit, hits);
    auto elapsed = std::chrono::steady_clock::now() - batch_start;
    obs_.ctx->metrics().Observe(
        obs_.batch_latency_us,
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
            .count());
  }
  return out;
}

void CandidateEvaluator::AttachObs(obs::ObsContext* obs) const {
  obs_ = ObsHooks{};
  obs_.ctx = obs;
  if (obs == nullptr) return;
  obs::MetricsRegistry& m = obs->metrics();
  obs_.computed = m.Counter("eval.computed");
  obs_.cache_hit = m.Counter("eval.cache_hit");
  obs_.collision_recompute = m.Counter("eval.collision_recompute");
  obs_.shard_eviction = m.Counter("eval.shard_eviction");
  obs_.batch_size =
      m.Histogram("eval.batch_size", {1, 2, 4, 8, 16, 32, 64, 128, 256, 512,
                                      1024, 4096});
  // Wall-clock valued: the one metric family excluded from the
  // equal-totals-across-thread-counts guarantee.
  obs_.batch_latency_us =
      m.Histogram("eval.batch_latency_us",
                  {100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000,
                   100000, 250000, 1000000});
}

void CandidateEvaluator::ResetCounters() const {
  evaluations_.store(0, std::memory_order_relaxed);
  cache_hits_.store(0, std::memory_order_relaxed);
}

void CandidateEvaluator::ClearCache() const {
  for (CacheShard& shard : cache_shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.clear();
  }
}

uint64_t CandidateEvaluator::HashCandidate(
    const std::vector<SourceId>& candidate) {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (SourceId s : candidate) {
    h = SplitMix64(h ^ static_cast<uint64_t>(static_cast<uint32_t>(s)));
  }
  return h;
}

}  // namespace ube
