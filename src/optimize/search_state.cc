#include "optimize/search_state.h"

#include <algorithm>

#include "util/check.h"

namespace ube {

std::vector<SourceId> RandomFeasibleCandidate(
    const CandidateEvaluator& evaluator, Rng& rng) {
  const int n = evaluator.universe().num_sources();
  const int m = evaluator.spec().max_sources;
  std::vector<SourceId> candidate = evaluator.required_sources();

  // Distinct random extras via partial Fisher-Yates over the non-required,
  // non-banned ids.
  std::vector<char> used(static_cast<size_t>(n), 0);
  for (SourceId s : candidate) used[static_cast<size_t>(s)] = 1;
  for (SourceId s : evaluator.banned_sources()) {
    used[static_cast<size_t>(s)] = 1;
  }
  std::vector<SourceId> pool;
  pool.reserve(static_cast<size_t>(n));
  for (SourceId s = 0; s < n; ++s) {
    if (!used[static_cast<size_t>(s)]) pool.push_back(s);
  }
  while (static_cast<int>(candidate.size()) < m && !pool.empty()) {
    size_t pick = rng.UniformInt(pool.size());
    candidate.push_back(pool[pick]);
    pool[pick] = pool.back();
    pool.pop_back();
  }
  if (candidate.empty() && !pool.empty()) {
    candidate.push_back(pool[rng.UniformInt(pool.size())]);
  }
  UBE_CHECK(!candidate.empty(),
            "no feasible candidate exists (universe exhausted by bans)");
  std::sort(candidate.begin(), candidate.end());
  return candidate;
}

SearchState::SearchState(const CandidateEvaluator& evaluator, Rng& rng)
    : SearchState(evaluator, RandomFeasibleCandidate(evaluator, rng)) {}

SearchState::SearchState(const CandidateEvaluator& evaluator,
                         std::vector<SourceId> candidate)
    : evaluator_(&evaluator),
      universe_size_(evaluator.universe().num_sources()),
      max_sources_(evaluator.spec().max_sources) {
  required_ = SourceBitset(universe_size_);
  for (SourceId s : evaluator.required_sources()) required_.set(s);
  num_required_ = static_cast<int>(evaluator.required_sources().size());
  banned_ = SourceBitset(universe_size_);
  for (SourceId s : evaluator.banned_sources()) banned_.set(s);
  num_banned_ = static_cast<int>(evaluator.banned_sources().size());
  member_ = SourceBitset(universe_size_);
  Reset(std::move(candidate));
}

void SearchState::Reset(std::vector<SourceId> candidate) {
  UBE_CHECK(!candidate.empty(), "candidate must be non-empty");
  UBE_CHECK(static_cast<int>(candidate.size()) <= max_sources_,
            "candidate exceeds m");
  UBE_CHECK(std::is_sorted(candidate.begin(), candidate.end()),
            "candidate must be sorted");
  sources_ = std::move(candidate);
  RebuildMembership();
  for (SourceId s = 0; s < universe_size_; ++s) {
    if (required_.test(s)) {
      UBE_CHECK(member_.test(s), "candidate is missing a required source");
    }
    if (banned_.test(s)) {
      UBE_CHECK(!member_.test(s), "candidate contains a banned source");
    }
  }
}

void SearchState::RebuildMembership() {
  member_.clear();
  for (SourceId s : sources_) {
    UBE_CHECK(s >= 0 && s < universe_size_, "source id out of range");
    member_.set(s);
  }
}

bool SearchState::Droppable(SourceId s) const {
  return Contains(s) && !required_.test(s) && size() > 1;
}

bool SearchState::RandomMove(Rng& rng, Move* move) const {
  const int outside = universe_size_ - size() - num_banned_;
  const int droppable = size() - num_required_;
  const bool can_add = outside > 0 && size() < max_sources_;
  const bool can_drop = droppable > 0 && size() > 1;
  const bool can_swap = outside > 0 && droppable > 0;
  if (!can_add && !can_drop && !can_swap) return false;

  for (int attempt = 0; attempt < 64; ++attempt) {
    double roll = rng.UniformDouble();
    Move::Kind kind;
    // Swap keeps |S| at the (usually optimal) maximum, so weight it highest.
    if (can_swap && roll < 0.7) {
      kind = Move::Kind::kSwap;
    } else if (can_add && roll < 0.85) {
      kind = Move::Kind::kAdd;
    } else if (can_drop) {
      kind = Move::Kind::kDrop;
    } else if (can_swap) {
      kind = Move::Kind::kSwap;
    } else if (can_add) {
      kind = Move::Kind::kAdd;
    } else {
      continue;
    }

    SourceId in = -1;
    SourceId out = -1;
    if (kind == Move::Kind::kAdd || kind == Move::Kind::kSwap) {
      // Rejection-sample an addable (non-member, non-banned) source.
      int in_tries = 0;
      do {
        in = static_cast<SourceId>(
            rng.UniformInt(static_cast<uint64_t>(universe_size_)));
        if (++in_tries > 512) break;
      } while (Contains(in) || banned_.test(in));
      if (Contains(in) || banned_.test(in)) continue;
    }
    if (kind == Move::Kind::kDrop || kind == Move::Kind::kSwap) {
      // Rejection-sample a droppable member.
      int tries = 0;
      do {
        out = sources_[rng.UniformInt(sources_.size())];
        if (++tries > 256) break;
      } while (!Droppable(out));
      if (!Droppable(out)) continue;
    }
    move->kind = kind;
    move->in = in;
    move->out = out;
    return true;
  }
  return false;
}

std::vector<SourceId> SearchState::Apply(const Move& move) const {
  std::vector<SourceId> out = sources_;
  if (move.kind == Move::Kind::kDrop || move.kind == Move::Kind::kSwap) {
    auto it = std::lower_bound(out.begin(), out.end(), move.out);
    UBE_DCHECK(it != out.end() && *it == move.out, "drop target not present");
    out.erase(it);
  }
  if (move.kind == Move::Kind::kAdd || move.kind == Move::Kind::kSwap) {
    auto it = std::lower_bound(out.begin(), out.end(), move.in);
    UBE_DCHECK(it == out.end() || *it != move.in, "add target already present");
    out.insert(it, move.in);
  }
  return out;
}

void SearchState::Commit(const Move& move) {
  sources_ = Apply(move);
  if (move.kind == Move::Kind::kDrop || move.kind == Move::Kind::kSwap) {
    member_.reset(move.out);
  }
  if (move.kind == Move::Kind::kAdd || move.kind == Move::Kind::kSwap) {
    member_.set(move.in);
  }
}

std::vector<SourceId> SearchState::NonMembers() const {
  std::vector<SourceId> out;
  out.reserve(static_cast<size_t>(universe_size_ - size()));
  for (SourceId s = 0; s < universe_size_; ++s) {
    if (!member_.test(s)) out.push_back(s);
  }
  return out;
}

}  // namespace ube
