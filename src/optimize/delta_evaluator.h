#ifndef UBE_OPTIMIZE_DELTA_EVALUATOR_H_
#define UBE_OPTIMIZE_DELTA_EVALUATOR_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "optimize/evaluator.h"
#include "optimize/search_state.h"
#include "qef/quality_model.h"
#include "util/thread_pool.h"

namespace ube {

/// Incremental candidate scoring for the solvers' neighborhood loops.
///
/// The full path (CandidateEvaluator::Evaluate) rebuilds per-candidate state
/// from the universe on every call: it re-applies the degradation policy to
/// each member, clones and merges distinct signatures into a fresh union, and
/// lets QEFs like CharacteristicQef rescan the whole universe for their
/// min/max normalization. A single-flip neighbor shares almost all of that
/// work with its base candidate. DeltaEvaluator hoists everything that does
/// not depend on S to construction time — per-source policy weights and
/// cardinality contributions, the characteristic normalization tables, the
/// policy-adjusted universe denominators — and maintains running per-source
/// PCSA sketch unions for the current base candidate (prefix/suffix OR
/// arrays), so a flip's union is two word-wise ORs instead of |S| clones and
/// merges. Removal re-ORs from the per-source sketches (OR has no inverse);
/// a base change (commit or restart reset) rebases the arrays, which is the
/// only "full" recomputation the steady state ever does.
///
/// Bit-identity contract: every score this class returns is bit-identical to
/// the full path for the same candidate, for any thread count. That holds
/// because (a) integer aggregates and sketch-word ORs are exact and
/// order-free, (b) order-sensitive double sums are re-accumulated per
/// evaluation from precomputed per-source terms in the same ascending-id
/// order MakeContext uses — identical operands in identical order give
/// identical bits — and (c) the PCSA estimate is computed by the same
/// function (PcsaSketch::EstimateFromBitmaps) on identical words. The
/// property suite in tests/test_property_delta.cc enforces this per QEF and
/// for the composite Q(S) on random flip sequences.
///
/// Fallback rule: the delta path is active only when `enable` is set AND
/// every QEF of the model provides a QefDeltaScorer. Models with a matching
/// (or schema-coverage, or user-lambda) QEF need Match(S) — which is not
/// incrementally maintainable — so for them every method forwards verbatim
/// to the wrapped CandidateEvaluator and behavior is unchanged, including
/// the parallel batch path.
///
/// Cache and counter parity: the delta path probes and populates the SAME
/// sharded quality cache as the full path (cross-restart reuse keeps
/// working) and bumps num_evaluations / num_cache_hits / the eval.* metrics
/// with identical semantics, so eval budgets (SolverOptions::
/// max_evaluations) stop at exactly the same point with delta on or off.
///
/// Not thread safe: one instance per Solve call, used from the solver's
/// driving thread only (delta computes are cheap enough that the batch
/// phases run sequentially; thread-count invariance is then trivial).
class DeltaEvaluator {
 public:
  /// `evaluator` must outlive this object. `enable` = false forces
  /// forwarding mode (the --delta off axis in benches and tests).
  DeltaEvaluator(const CandidateEvaluator& evaluator, bool enable);

  DeltaEvaluator(DeltaEvaluator&&) = default;
  DeltaEvaluator(const DeltaEvaluator&) = delete;
  DeltaEvaluator& operator=(const DeltaEvaluator&) = delete;

  /// True when delta scoring is in effect (enabled and every QEF offered a
  /// scorer); false means every call forwards to the full evaluator.
  bool active() const { return active_; }

  const CandidateEvaluator& evaluator() const { return *evaluator_; }

  /// Q(S), memoized in the shared cache — the delta counterpart of
  /// CandidateEvaluator::Quality.
  double Quality(const std::vector<SourceId>& candidate);

  /// Scores arbitrary candidates (PSO positions, greedy extensions) in
  /// input order with QualityBatch's cache/dedup/counter semantics. `pool`
  /// is used only in forwarding mode.
  std::vector<double> ScoreCandidates(
      std::span<const std::vector<SourceId>> candidates, ThreadPool* pool);

  /// Scores the single-move neighborhood of `base`: candidates[i] must be
  /// base with moves[i] applied. Rebases the running sketch unions when
  /// `base` differs from the previous call's base, then scores each flip in
  /// O(sketch words + |S|) instead of a full evaluation.
  std::vector<double> ScoreNeighborhood(
      const std::vector<SourceId>& base,
      std::span<const SearchState::Move> moves,
      std::span<const std::vector<SourceId>> candidates, ThreadPool* pool);

  /// Uncached delta computation of the full breakdown (per-QEF scores and
  /// Q(S)). Counts as a computed evaluation, exactly like
  /// CandidateEvaluator::Evaluate; never reads or writes the cache. This is
  /// the probe the differential oracle tests compare against the full
  /// path's breakdown. Requires active().
  QualityBreakdown Compute(const std::vector<SourceId>& candidate);

 private:
  struct SourceEntry {
    int64_t cardinality = 0;
    /// Policy weight × cardinality — the term MakeContext adds to
    /// effective_cardinality (and, when admitted, cooperating_cardinality).
    double contribution = 0.0;
    /// Signature admitted by the policy and present on the source.
    bool admitted = false;
    bool degraded = false;
    const DistinctSignature* signature = nullptr;
    /// Raw sketch words when every admitted signature is a same-width
    /// PcsaSignature (the fast union path); null otherwise.
    const std::vector<uint32_t>* pcsa_words = nullptr;
  };

  /// Shared three-phase (probe / compute / publish) batch loop; `moves`
  /// (parallel to `candidates`) selects the incremental union path, null
  /// computes unions from scratch.
  std::vector<double> Batch(std::span<const std::vector<SourceId>> candidates,
                            const SearchState::Move* moves);

  /// Fills every EvalContext aggregate except union_estimate (exact int
  /// sums, plus double sums re-accumulated in candidate order).
  void FillScalars(const std::vector<SourceId>& candidate,
                   EvalContext* ctx) const;
  /// |∪S| over admitted members, from scratch (word ORs into scratch_ on
  /// the uniform-PCSA path, Clone+MergeFrom otherwise — both replicate
  /// MakeContext exactly).
  double UnionFromScratch(const std::vector<SourceId>& candidate);
  /// |∪ base±move| via the prefix/suffix OR arrays (uniform-PCSA only).
  double UnionForMove(const SearchState::Move& move);

  /// Compute without cache, union via the move against the current base.
  double ComputeForMove(const SearchState::Move& move,
                        const std::vector<SourceId>& candidate);
  /// Runs the per-QEF scorers over a prepared context — the delta replica
  /// of QualityModel::Evaluate's weighted sum.
  QualityBreakdown Score(const EvalContext& ctx) const;
  /// Rebuilds the admitted-member prefix/suffix unions for a new base.
  void Rebase(const std::vector<SourceId>& base);

  const CandidateEvaluator* evaluator_;
  bool active_ = false;

  std::vector<std::unique_ptr<QefDeltaScorer>> scorers_;
  std::vector<double> weights_;
  std::vector<SourceEntry> entries_;
  int64_t universe_cardinality_ = 0;
  double universe_union_estimate_ = 0.0;

  /// True when every admitted signature is a PcsaSignature of one width.
  bool pcsa_uniform_ = false;
  size_t words_ = 0;

  // Neighborhood base state (valid when has_base_).
  bool has_base_ = false;
  std::vector<SourceId> base_;
  std::vector<SourceId> base_admitted_;  // admitted members, ascending
  std::vector<int> admitted_index_;      // source id → index above, or -1
  std::vector<uint32_t> prefix_;         // (k+1) blocks of words_
  std::vector<uint32_t> suffix_;         // (k+1) blocks of words_
  std::vector<uint32_t> scratch_;
};

}  // namespace ube

#endif  // UBE_OPTIMIZE_DELTA_EVALUATOR_H_
