#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "optimize/search_state.h"
#include "optimize/solver_internal.h"
#include "optimize/solvers.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace ube {

namespace {

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

// Projects a bit vector onto the feasible region: required sources forced
// in, banned sources forced out; if more than m bits are set, the
// lowest-velocity optional bits are cleared; if nothing is set, the
// highest-velocity feasible bit is turned on.
std::vector<SourceId> Repair(const std::vector<char>& bits,
                             const std::vector<double>& velocity,
                             const std::vector<char>& required,
                             const std::vector<char>& banned, int m) {
  const int n = static_cast<int>(bits.size());
  std::vector<SourceId> chosen;
  std::vector<SourceId> optional;
  for (SourceId s = 0; s < n; ++s) {
    if (required[static_cast<size_t>(s)]) {
      chosen.push_back(s);
    } else if (bits[static_cast<size_t>(s)] &&
               !banned[static_cast<size_t>(s)]) {
      optional.push_back(s);
    }
  }
  int room = m - static_cast<int>(chosen.size());
  if (static_cast<int>(optional.size()) > room) {
    std::sort(optional.begin(), optional.end(),
              [&](SourceId a, SourceId b) {
                double va = velocity[static_cast<size_t>(a)];
                double vb = velocity[static_cast<size_t>(b)];
                if (va != vb) return va > vb;
                return a < b;
              });
    optional.resize(static_cast<size_t>(std::max(0, room)));
  }
  chosen.insert(chosen.end(), optional.begin(), optional.end());
  if (chosen.empty()) {
    SourceId best = -1;
    for (SourceId s = 0; s < n; ++s) {
      if (banned[static_cast<size_t>(s)]) continue;
      if (best < 0 || velocity[static_cast<size_t>(s)] >
                          velocity[static_cast<size_t>(best)]) {
        best = s;
      }
    }
    if (best >= 0) chosen.push_back(best);
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

struct Particle {
  std::vector<double> velocity;
  std::vector<char> bits;
  std::vector<SourceId> position;      // repaired candidate
  std::vector<char> best_bits;         // personal best as bit vector
  std::vector<SourceId> best_position;
  double best_quality = -1.0;
};

}  // namespace

Result<Solution> PsoSolver::Solve(const CandidateEvaluator& evaluator,
                                  const SolverOptions& options) const {
  UBE_RETURN_IF_ERROR(internal::CheckSolvable(evaluator));
  WallTimer timer(options.clock);
  evaluator.BeginRun();
  internal::SolveScope scope(evaluator, options, name());
  Rng rng(options.seed);
  std::unique_ptr<ThreadPool> pool = internal::MakeEvalPool(options);
  DeltaEvaluator delta = internal::MakeDeltaEvaluator(evaluator, options);

  const int n = evaluator.universe().num_sources();
  const int m = evaluator.spec().max_sources;
  std::vector<char> required(static_cast<size_t>(n), 0);
  for (SourceId s : evaluator.required_sources()) {
    required[static_cast<size_t>(s)] = 1;
  }
  std::vector<char> banned(static_cast<size_t>(n), 0);
  for (SourceId s : evaluator.banned_sources()) {
    banned[static_cast<size_t>(s)] = 1;
  }

  const int swarm_size = std::max(2, options.swarm_size);
  std::vector<Particle> swarm(static_cast<size_t>(swarm_size));
  std::vector<char> global_best_bits(static_cast<size_t>(n), 0);
  std::vector<SourceId> global_best;
  double global_best_quality = -1.0;
  std::vector<TracePoint> trace;

  // Draft the whole swarm first (all rng draws happen here, in particle
  // order), score every position in one batch, then fold the personal and
  // global bests in particle order — deterministic for any thread count.
  std::vector<std::vector<SourceId>> positions;
  positions.reserve(swarm.size());
  for (Particle& p : swarm) {
    p.velocity.resize(static_cast<size_t>(n));
    for (double& v : p.velocity) v = rng.UniformDouble(-1.0, 1.0);
    p.bits.assign(static_cast<size_t>(n), 0);
    for (SourceId s : RandomFeasibleCandidate(evaluator, rng)) {
      p.bits[static_cast<size_t>(s)] = 1;
    }
    p.position = Repair(p.bits, p.velocity, required, banned, m);
    positions.push_back(p.position);
  }
  // Warm start: particle 0 takes the seed as its position, *after* the
  // drafting loop so the rng stream is untouched — a rejected (empty) seed
  // leaves the run bit-identical to a cold solve, and the seed's quality
  // enters the global-best fold below, guaranteeing never-worse-than-seed.
  std::vector<SourceId> warm = internal::ValidWarmStart(evaluator, options);
  if (!warm.empty()) {
    Particle& p = swarm.front();
    std::fill(p.bits.begin(), p.bits.end(), 0);
    for (SourceId s : warm) p.bits[static_cast<size_t>(s)] = 1;
    p.position = warm;
    positions.front() = std::move(warm);
  }
  std::vector<double> qualities = delta.ScoreCandidates(positions, pool.get());
  for (size_t i = 0; i < swarm.size(); ++i) {
    Particle& p = swarm[i];
    double quality = qualities[i];
    p.best_bits = p.bits;
    p.best_position = p.position;
    p.best_quality = quality;
    if (quality > global_best_quality) {
      global_best_quality = quality;
      global_best = p.position;
      global_best_bits = p.bits;
      internal::MaybeTrace(options.record_trace, evaluator,
                           global_best_quality, &trace);
    }
  }

  int64_t iterations = 0;
  int stall = 0;
  // One PSO iteration evaluates the whole swarm; scale the iteration budget
  // so the total evaluation effort matches the other solvers.
  const int pso_iterations =
      std::max(1, options.max_iterations * 32 / swarm_size);
  const int pso_stall =
      options.stall_iterations > 0
          ? std::max(1, options.stall_iterations * 32 / swarm_size)
          : 0;
  constexpr double kVelocityClamp = 6.0;
  StopReason stop = StopReason::kMaxIterations;

  for (int iter = 0; iter < pso_iterations; ++iter) {
    // Pre-dispatch deadline check (post-batch check at the bottom).
    if (internal::BudgetExpired(timer, evaluator, options, &stop)) {
      break;
    }
    if (pso_stall > 0 && stall >= pso_stall) {
      stop = StopReason::kStalled;
      break;
    }
    ++iterations;

    // Synchronous PSO step: every particle moves against the global best of
    // the previous iteration, the whole swarm is scored as one batch, and
    // bests update in particle order afterwards.
    bool improved = false;
    positions.clear();
    for (Particle& p : swarm) {
      for (int d = 0; d < n; ++d) {
        auto i = static_cast<size_t>(d);
        double r1 = rng.UniformDouble();
        double r2 = rng.UniformDouble();
        p.velocity[i] =
            options.inertia * p.velocity[i] +
            options.cognitive * r1 *
                (static_cast<double>(p.best_bits[i]) - p.bits[i]) +
            options.social * r2 *
                (static_cast<double>(global_best_bits[i]) - p.bits[i]);
        p.velocity[i] =
            std::clamp(p.velocity[i], -kVelocityClamp, kVelocityClamp);
        p.bits[i] = rng.UniformDouble() < Sigmoid(p.velocity[i]) ? 1 : 0;
      }
      p.position = Repair(p.bits, p.velocity, required, banned, m);
      positions.push_back(p.position);
    }
    qualities = delta.ScoreCandidates(positions, pool.get());
    for (size_t i = 0; i < swarm.size(); ++i) {
      Particle& p = swarm[i];
      double quality = qualities[i];
      if (quality > p.best_quality) {
        p.best_quality = quality;
        p.best_position = p.position;
        p.best_bits = p.bits;
      }
      if (quality > global_best_quality) {
        global_best_quality = quality;
        global_best = p.position;
        global_best_bits = p.bits;
        internal::MaybeTrace(options.record_trace, evaluator,
                             global_best_quality, &trace);
        improved = true;
      }
    }
    if (improved) {
      stall = 0;
    } else {
      ++stall;
    }
    if (scope.enabled()) {
      obs::IterationSample sample;
      sample.iteration = iterations;
      sample.evaluations = evaluator.num_evaluations();
      sample.incumbent_quality = global_best_quality;
      sample.neighborhood = static_cast<int32_t>(positions.size());
      sample.stall = stall;
      scope.RecordIteration(sample);
    }
    // Post-batch deadline check: this swarm step already ran and its bests
    // are folded in; stop before scoring another one.
    if (internal::BudgetExpired(timer, evaluator, options, &stop)) {
      break;
    }
  }

  return internal::FinalizeSolution(evaluator, std::move(global_best),
                                    std::string(name()), iterations, timer,
                                    stop, std::move(trace), &scope);
}

}  // namespace ube
