#include <algorithm>
#include <memory>
#include <vector>

#include "optimize/search_state.h"
#include "optimize/solver_internal.h"
#include "optimize/solvers.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace ube {

namespace {

constexpr double kEps = 1e-12;

// Consecutive intensification restarts that fail to improve the incumbent
// before the search gives up. Each restart gets a full `restart_after`
// window, so with stall_iterations = s this terminates after roughly
// kMaxUnproductiveRestarts * s/3 ≈ s non-improving iterations — the
// patience the option asks for, now spent on restarts that actually
// explore instead of being cut short by a stall counter that survived the
// restart (the pre-fix behavior).
constexpr int kMaxUnproductiveRestarts = 3;

}  // namespace

Result<Solution> TabuSearchSolver::Solve(const CandidateEvaluator& evaluator,
                                         const SolverOptions& options) const {
  UBE_RETURN_IF_ERROR(internal::CheckSolvable(evaluator));
  WallTimer timer(options.clock);
  evaluator.BeginRun();
  internal::SolveScope scope(evaluator, options, name());
  Rng rng(options.seed);
  std::unique_ptr<ThreadPool> pool = internal::MakeEvalPool(options);
  DeltaEvaluator delta = internal::MakeDeltaEvaluator(evaluator, options);

  const int n = evaluator.universe().num_sources();
  const int tenure =
      options.tabu_tenure > 0 ? options.tabu_tenure : 7 + n / 50;
  const int sample = options.candidate_moves > 0
                         ? options.candidate_moves
                         : std::min(64, std::max(24, n / 8));

  // Warm start: begin from the (sanitized) seed instead of a random draw.
  // Checked before any rng use, so a rejected seed leaves the run
  // bit-identical to a cold solve.
  std::vector<SourceId> warm = internal::ValidWarmStart(evaluator, options);
  SearchState state = warm.empty() ? SearchState(evaluator, rng)
                                   : SearchState(evaluator, std::move(warm));
  double current_quality = delta.Quality(state.sources());
  std::vector<SourceId> best = state.sources();
  double best_quality = current_quality;
  std::vector<TracePoint> trace;
  internal::MaybeTrace(options.record_trace, evaluator, best_quality, &trace);

  // tabu_add_until[s]: iterations before which re-adding s is tabu
  // (set when s is dropped); tabu_drop_until[s]: before which dropping s
  // is tabu (set when s is added).
  std::vector<int> tabu_add_until(static_cast<size_t>(n), -1);
  std::vector<int> tabu_drop_until(static_cast<size_t>(n), -1);

  int64_t iterations = 0;
  int stall = 0;
  // Intensification: after `restart_after` non-improving iterations the
  // search jumps back to the incumbent with fresh tabu memory and explores
  // its neighborhood again from scratch. Both `stall` and `since_restart`
  // reset on restart so every restart gets its own exploration budget;
  // overall patience is bounded by kMaxUnproductiveRestarts instead.
  const int restart_after =
      options.stall_iterations > 0
          ? std::max(8, options.stall_iterations / 3)
          : options.max_iterations;
  int since_restart = 0;
  int unproductive_restarts = 0;
  bool improved_since_restart = false;
  StopReason stop = StopReason::kMaxIterations;
  std::vector<SearchState::Move> moves;
  std::vector<std::vector<SourceId>> candidates;
  // Telemetry is assembled only when observability is attached: counting
  // the tabu lists is O(n) per iteration.
  auto record_iteration = [&](int iter, size_t neighborhood) {
    if (!scope.enabled()) return;
    obs::IterationSample sample;
    sample.iteration = iterations;
    sample.evaluations = evaluator.num_evaluations();
    sample.incumbent_quality = best_quality;
    sample.neighborhood = static_cast<int32_t>(neighborhood);
    int occupancy = 0;
    for (int until : tabu_add_until) occupancy += iter < until ? 1 : 0;
    for (int until : tabu_drop_until) occupancy += iter < until ? 1 : 0;
    sample.tabu_occupancy = occupancy;
    sample.stall = stall;
    scope.RecordIteration(sample);
  };
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // Pre-dispatch deadline check (see also the post-batch check below).
    if (internal::BudgetExpired(timer, evaluator, options, &stop)) {
      break;
    }
    if (options.stall_iterations > 0 && stall >= options.stall_iterations) {
      stop = StopReason::kStalled;
      break;
    }
    if (since_restart >= restart_after) {
      if (improved_since_restart) {
        unproductive_restarts = 0;
      } else if (++unproductive_restarts >= kMaxUnproductiveRestarts) {
        stop = StopReason::kStalled;
        break;
      }
      state.Reset(best);
      current_quality = best_quality;
      std::fill(tabu_add_until.begin(), tabu_add_until.end(), -1);
      std::fill(tabu_drop_until.begin(), tabu_drop_until.end(), -1);
      since_restart = 0;
      stall = 0;
      improved_since_restart = false;
    }
    ++iterations;

    // Sample the whole candidate list up front, score it in one batch
    // (concurrently when a pool is configured), then pick the winner with
    // the same first-best-in-index-order rule the sequential loop used —
    // the result is bit-identical for any thread count.
    moves.clear();
    candidates.clear();
    for (int k = 0; k < sample; ++k) {
      SearchState::Move move;
      if (!state.RandomMove(rng, &move)) break;
      moves.push_back(move);
      candidates.push_back(state.Apply(move));
    }
    std::vector<double> qualities =
        delta.ScoreNeighborhood(state.sources(), moves, candidates, pool.get());

    bool have_move = false;
    SearchState::Move chosen;
    double chosen_quality = 0.0;
    for (size_t k = 0; k < moves.size(); ++k) {
      const SearchState::Move& move = moves[k];
      bool tabu = false;
      if (move.kind != SearchState::Move::Kind::kDrop &&
          iter < tabu_add_until[static_cast<size_t>(move.in)]) {
        tabu = true;
      }
      if (move.kind != SearchState::Move::Kind::kAdd &&
          iter < tabu_drop_until[static_cast<size_t>(move.out)]) {
        tabu = true;
      }
      double quality = qualities[k];
      // Aspiration: a tabu move that beats the incumbent is admissible.
      if (tabu && quality <= best_quality + kEps) continue;
      if (!have_move || quality > chosen_quality) {
        have_move = true;
        chosen = move;
        chosen_quality = quality;
      }
    }

    if (!have_move) {
      ++stall;
      ++since_restart;
      record_iteration(iter, candidates.size());
      // Post-batch deadline check: the batch we just paid for may have
      // overshot the budget; stop now instead of sampling another one.
      if (internal::BudgetExpired(timer, evaluator, options, &stop)) {
        break;
      }
      continue;
    }

    // Commit the best admissible move even when it worsens the current
    // solution — that is what lets tabu search climb out of local optima.
    state.Commit(chosen);
    current_quality = chosen_quality;
    if (chosen.kind != SearchState::Move::Kind::kDrop) {
      tabu_drop_until[static_cast<size_t>(chosen.in)] = iter + tenure;
    }
    if (chosen.kind != SearchState::Move::Kind::kAdd) {
      tabu_add_until[static_cast<size_t>(chosen.out)] = iter + tenure;
    }

    if (current_quality > best_quality + kEps) {
      best_quality = current_quality;
      best = state.sources();
      internal::MaybeTrace(options.record_trace, evaluator, best_quality,
                           &trace);
      stall = 0;
      since_restart = 0;
      improved_since_restart = true;
      unproductive_restarts = 0;
    } else {
      ++stall;
      ++since_restart;
    }
    record_iteration(iter, candidates.size());
    // Post-batch deadline check: fold the batch's result (above), then stop
    // before dispatching another batch past the budget.
    if (internal::BudgetExpired(timer, evaluator, options, &stop)) {
      break;
    }
  }

  return internal::FinalizeSolution(evaluator, std::move(best),
                                    std::string(name()), iterations, timer,
                                    stop, std::move(trace), &scope);
}

}  // namespace ube
