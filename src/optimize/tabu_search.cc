#include <algorithm>
#include <vector>

#include "optimize/search_state.h"
#include "optimize/solver_internal.h"
#include "optimize/solvers.h"
#include "util/rng.h"
#include "util/timer.h"

namespace ube {

namespace {

constexpr double kEps = 1e-12;

}  // namespace

Result<Solution> TabuSearchSolver::Solve(const CandidateEvaluator& evaluator,
                                         const SolverOptions& options) const {
  UBE_RETURN_IF_ERROR(internal::CheckSolvable(evaluator));
  WallTimer timer;
  evaluator.ResetCounters();
  Rng rng(options.seed);

  const int n = evaluator.universe().num_sources();
  const int tenure =
      options.tabu_tenure > 0 ? options.tabu_tenure : 7 + n / 50;
  const int sample = options.candidate_moves > 0
                         ? options.candidate_moves
                         : std::min(64, std::max(24, n / 8));

  SearchState state(evaluator, rng);
  double current_quality = evaluator.Quality(state.sources());
  std::vector<SourceId> best = state.sources();
  double best_quality = current_quality;
  std::vector<TracePoint> trace;
  internal::MaybeTrace(options.record_trace, evaluator, best_quality, &trace);

  // tabu_add_until[s]: iterations before which re-adding s is tabu
  // (set when s is dropped); tabu_drop_until[s]: before which dropping s
  // is tabu (set when s is added).
  std::vector<int> tabu_add_until(static_cast<size_t>(n), -1);
  std::vector<int> tabu_drop_until(static_cast<size_t>(n), -1);

  int64_t iterations = 0;
  int stall = 0;
  // Intensification: after `restart_after` non-improving iterations the
  // search jumps back to the incumbent with fresh tabu memory and explores
  // its neighborhood again from scratch.
  const int restart_after =
      options.stall_iterations > 0
          ? std::max(8, options.stall_iterations / 3)
          : options.max_iterations;
  int since_restart = 0;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    if (options.time_limit_seconds > 0.0 &&
        timer.ElapsedSeconds() > options.time_limit_seconds) {
      break;
    }
    if (options.stall_iterations > 0 && stall >= options.stall_iterations) {
      break;
    }
    if (since_restart >= restart_after) {
      state.Reset(best);
      current_quality = best_quality;
      std::fill(tabu_add_until.begin(), tabu_add_until.end(), -1);
      std::fill(tabu_drop_until.begin(), tabu_drop_until.end(), -1);
      since_restart = 0;
    }
    ++iterations;

    bool have_move = false;
    SearchState::Move chosen;
    double chosen_quality = 0.0;
    for (int k = 0; k < sample; ++k) {
      SearchState::Move move;
      if (!state.RandomMove(rng, &move)) break;
      bool tabu = false;
      if (move.kind != SearchState::Move::Kind::kDrop &&
          iter < tabu_add_until[static_cast<size_t>(move.in)]) {
        tabu = true;
      }
      if (move.kind != SearchState::Move::Kind::kAdd &&
          iter < tabu_drop_until[static_cast<size_t>(move.out)]) {
        tabu = true;
      }
      double quality = evaluator.Quality(state.Apply(move));
      // Aspiration: a tabu move that beats the incumbent is admissible.
      if (tabu && quality <= best_quality + kEps) continue;
      if (!have_move || quality > chosen_quality) {
        have_move = true;
        chosen = move;
        chosen_quality = quality;
      }
    }

    if (!have_move) {
      ++stall;
      ++since_restart;
      continue;
    }

    // Commit the best admissible move even when it worsens the current
    // solution — that is what lets tabu search climb out of local optima.
    state.Commit(chosen);
    current_quality = chosen_quality;
    if (chosen.kind != SearchState::Move::Kind::kDrop) {
      tabu_drop_until[static_cast<size_t>(chosen.in)] = iter + tenure;
    }
    if (chosen.kind != SearchState::Move::Kind::kAdd) {
      tabu_add_until[static_cast<size_t>(chosen.out)] = iter + tenure;
    }

    if (current_quality > best_quality + kEps) {
      best_quality = current_quality;
      best = state.sources();
      internal::MaybeTrace(options.record_trace, evaluator, best_quality,
                           &trace);
      stall = 0;
      since_restart = 0;
    } else {
      ++stall;
      ++since_restart;
    }
  }

  return internal::FinalizeSolution(evaluator, std::move(best),
                                    std::string(name()), iterations, timer,
                                    std::move(trace));
}

}  // namespace ube
