#ifndef UBE_OPTIMIZE_PROBLEM_H_
#define UBE_OPTIMIZE_PROBLEM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/telemetry.h"
#include "qef/quality_model.h"
#include "schema/mediated_schema.h"

namespace ube {

namespace obs {
struct MetricsSnapshot;
}  // namespace obs

/// The constrained optimization problem of Section 2.5:
///
///   arg max_{S ⊆ U} Q(S)  subject to  |S| <= m,  C ⊆ S,  G ⊑ M,
///   F1({g}) >= θ and |g| >= β for every g ∈ M − G.
///
/// U and the QEFs/weights live in the Engine / QualityModel; this struct
/// carries the per-iteration knobs the user edits between µBE runs.
struct ProblemSpec {
  /// m: maximum number of sources the user is willing to select.
  int max_sources = 20;
  /// θ: lower bound on the matching quality of every generated GA.
  double theta = 0.75;
  /// β: lower bound on the number of attributes in any generated GA.
  int beta = 2;
  /// C: sources that must be part of the solution.
  std::vector<SourceId> source_constraints;
  /// Sources that must NOT be part of the solution — the negative-feedback
  /// counterpart of C ("reject this source" in the iterative UI loop).
  /// Implemented, like C, as a permanently tabu region of the search space.
  std::vector<SourceId> banned_sources;
  /// G: user GAs that must be subsumed by the output mediated schema
  /// (each implicitly forces its sources into the solution).
  std::vector<GlobalAttribute> ga_constraints;
  /// Per-spec QEF weights overriding the QualityModel's (parallel to its
  /// QEF list; each in [0,1], summing to 1). Empty (the default) evaluates
  /// under the model's own weights. This is how a Session re-weights
  /// without mutating the engine's shared model: the overlay travels with
  /// the spec and is resolved at evaluation time, so N sessions over one
  /// engine each solve under their own weights.
  std::vector<double> weight_overlay;
};

/// One point of a solver convergence trace: the incumbent quality after a
/// given amount of evaluation effort.
struct TracePoint {
  int64_t evaluations = 0;   ///< total candidate evaluations so far
  double best_quality = 0.0; ///< incumbent Q(S) at that point
};

/// Why a solver's main loop terminated. Every solver sets this; without it
/// a converged run and a truncated one are indistinguishable in the report.
enum class StopReason {
  kUnknown = 0,    ///< solver did not report (should not happen)
  kMaxIterations,  ///< iteration/sample budget exhausted
  kStalled,        ///< stall_iterations without an incumbent improvement
  kTimeLimit,      ///< wall-clock budget (time_limit_seconds) reached
  kEvalBudget,     ///< evaluation budget (max_evaluations) reached
  kConverged,      ///< search converged (no admissible improving move left)
  kExhausted,      ///< whole feasible space enumerated / no move exists
};

/// Display name: "max-iterations", "stalled", ...
std::string_view StopReasonName(StopReason reason);

/// Progress/effort counters reported with every Solution.
struct SolverStats {
  std::string solver_name;
  int64_t iterations = 0;    ///< solver-specific outer iterations
  int64_t evaluations = 0;   ///< candidate evaluations actually computed
  int64_t cache_hits = 0;    ///< candidate evaluations answered from cache
  double elapsed_seconds = 0.0;
  /// Why the run ended. Deterministic (part of the bit-identity guarantee)
  /// except for kTimeLimit, which depends on wall clock by definition.
  StopReason stop_reason = StopReason::kUnknown;
  /// Incumbent-improvement trace; only recorded when
  /// SolverOptions::record_trace is set.
  std::vector<TracePoint> trace;

  // --- observability extras (filled only when SolverOptions::obs is ---
  // --- attached; never part of the bit-identity guarantee)          ---
  /// Per-iteration convergence telemetry (the tail that fit the ring).
  std::vector<obs::IterationSample> telemetry;
  /// Samples overwritten because the run outlived the telemetry ring.
  int64_t telemetry_dropped = 0;
  /// Metrics snapshot taken as the solve finished (cumulative over the
  /// attached ObsContext's lifetime, so back-to-back solves accumulate
  /// unless the caller resets the registry between runs).
  std::shared_ptr<const obs::MetricsSnapshot> metrics;
};

/// The data integration system µBE proposes: the chosen sources, the
/// mediated schema generated on them, and the quality achieved.
struct Solution {
  /// Chosen sources S, sorted ascending.
  std::vector<SourceId> sources;
  /// Mediated schema M produced by Match(S).
  MediatedSchema mediated_schema;
  /// Per-GA quality of matching, parallel to mediated_schema.gas().
  std::vector<double> ga_qualities;
  /// Whether each GA grew from a user GA constraint, parallel to gas().
  std::vector<bool> ga_from_constraint;
  /// Q(S), the weighted overall quality.
  double quality = 0.0;
  /// Per-QEF scores behind `quality`.
  QualityBreakdown breakdown;
  SolverStats stats;
};

}  // namespace ube

#endif  // UBE_OPTIMIZE_PROBLEM_H_
