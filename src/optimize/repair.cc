#include "optimize/repair.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>

#include "optimize/search_state.h"
#include "optimize/solver.h"
#include "optimize/solver_internal.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ube {

namespace {

constexpr double kEps = 1e-12;

/// SolverOptions view of the repair knobs, so SolveScope / BudgetExpired /
/// MakeEvalPool behave exactly as they do for full solvers.
SolverOptions AsSolverOptions(const RepairOptions& options) {
  SolverOptions solver;
  solver.seed = options.seed;
  solver.max_iterations = options.max_iterations;
  solver.max_evaluations = options.eval_budget;
  solver.candidate_moves = options.candidate_moves;
  solver.num_threads = options.num_threads;
  solver.delta_eval = options.delta_eval;
  solver.clock = options.clock;
  solver.obs = options.obs;
  solver.stall_iterations = 0;  // convergence is the natural stop
  return solver;
}

}  // namespace

RepairBudgetController::RepairBudgetController(
    int64_t base_budget, const AdaptiveRepairOptions& options)
    : options_(options),
      budget_(std::clamp(base_budget, options.min_eval_budget,
                         options.max_eval_budget)),
      ring_(std::max(1, options.window)) {}

void RepairBudgetController::Record(int64_t evaluations_used, bool repaired,
                                    bool quality_escalated, bool wipeout) {
  obs::IterationSample sample;
  sample.iteration = ++batches_;
  sample.evaluations = evaluations_used;
  sample.stall = quality_escalated ? 1 : 0;
  ring_.Record(sample);

  if (wipeout) {
    // The whole incumbent was evicted — no repair budget would have saved
    // it, so the outcome says nothing about the budget's size.
    cheap_streak_ = 0;
    return;
  }
  if (quality_escalated) {
    cheap_streak_ = 0;
    budget_ = std::min(options_.max_eval_budget, budget_ * 2);
  } else if (repaired && evaluations_used * 2 <= budget_) {
    if (++cheap_streak_ >= std::max(1, options_.shrink_after)) {
      cheap_streak_ = 0;
      budget_ = std::max(options_.min_eval_budget, budget_ * 3 / 4);
    }
  } else {
    cheap_streak_ = 0;
  }

  // Sustained escalation pressure overrides the gradual policy: when at
  // least half the trailing window escalated, run repairs wide open.
  const std::vector<obs::IterationSample> recent = ring_.Samples();
  int escalations = 0;
  for (const obs::IterationSample& s : recent) escalations += s.stall;
  if (static_cast<int64_t>(recent.size()) >= options_.window &&
      escalations * 2 >= static_cast<int>(recent.size())) {
    budget_ = options_.max_eval_budget;
  }
}

RepairResult RepairIncumbent(const CandidateEvaluator& evaluator,
                             const std::vector<SourceId>& incumbent,
                             const RepairOptions& options) {
  RepairResult result;
  const int n = evaluator.universe().num_sources();
  const int m = evaluator.spec().max_sources;

  // Sanitize: drop everything the current spec evicts, dedup, then re-add
  // newly required sources and clamp back to m (dropping non-required
  // members from the high end — deterministic and order-free).
  std::vector<SourceId> damaged;
  for (SourceId s : incumbent) {
    if (s >= 0 && s < n && !evaluator.IsBanned(s)) damaged.push_back(s);
  }
  std::sort(damaged.begin(), damaged.end());
  damaged.erase(std::unique(damaged.begin(), damaged.end()), damaged.end());
  result.evicted =
      static_cast<int>(incumbent.size()) - static_cast<int>(damaged.size());
  const std::vector<SourceId>& required = evaluator.required_sources();
  for (SourceId s : required) {
    auto it = std::lower_bound(damaged.begin(), damaged.end(), s);
    if (it == damaged.end() || *it != s) damaged.insert(it, s);
  }
  if (static_cast<int>(damaged.size()) > m) {
    std::vector<SourceId> clamped;
    int excess = static_cast<int>(damaged.size()) - m;
    for (auto it = damaged.rbegin(); it != damaged.rend(); ++it) {
      if (excess > 0 &&
          !std::binary_search(required.begin(), required.end(), *it)) {
        --excess;
        continue;
      }
      clamped.push_back(*it);
    }
    std::reverse(clamped.begin(), clamped.end());
    damaged = std::move(clamped);
  }
  if (damaged.empty() || static_cast<int>(damaged.size()) > m) {
    return result;  // seeded == false: nothing (feasible) to repair from
  }
  result.seeded = true;

  const SolverOptions solver_options = AsSolverOptions(options);
  WallTimer timer(solver_options.clock);
  evaluator.BeginRun();
  internal::SolveScope scope(evaluator, solver_options, "repair");
  Rng rng(solver_options.seed);
  std::unique_ptr<ThreadPool> pool = internal::MakeEvalPool(solver_options);
  DeltaEvaluator delta =
      internal::MakeDeltaEvaluator(evaluator, solver_options);

  SearchState state(evaluator, damaged);
  double current = delta.Quality(state.sources());
  result.seed_quality = current;
  std::vector<SourceId> best = state.sources();
  double best_quality = current;
  int64_t iterations = 0;
  StopReason stop = StopReason::kMaxIterations;

  const int sample = solver_options.candidate_moves > 0
                         ? solver_options.candidate_moves
                         : std::min(64, std::max(24, n / 8));
  for (int iter = 0; iter < std::max(1, solver_options.max_iterations);
       ++iter) {
    // Pre-dispatch budget check (post-batch check below); the seed is
    // already an incumbent, so unlike full solvers no first-pass guard is
    // needed.
    if (internal::BudgetExpired(timer, evaluator, solver_options, &stop)) {
      break;
    }
    ++iterations;
    std::vector<SearchState::Move> moves;
    std::vector<std::vector<SourceId>> candidates;
    for (int k = 0; k < sample; ++k) {
      SearchState::Move move;
      if (!state.RandomMove(rng, &move)) break;
      moves.push_back(move);
      candidates.push_back(state.Apply(move));
    }
    if (moves.empty()) {
      stop = StopReason::kExhausted;
      break;
    }
    std::vector<double> qualities =
        delta.ScoreNeighborhood(state.sources(), moves, candidates, pool.get());
    bool improved = false;
    SearchState::Move chosen;
    double chosen_quality = current;
    for (size_t k = 0; k < moves.size(); ++k) {
      if (qualities[k] > chosen_quality + kEps) {
        improved = true;
        chosen = moves[k];
        chosen_quality = qualities[k];
      }
    }
    if (improved) {
      state.Commit(chosen);
      current = chosen_quality;
      if (current > best_quality) {
        best_quality = current;
        best = state.sources();
      }
    }
    if (scope.enabled()) {
      obs::IterationSample sample_point;
      sample_point.iteration = iterations;
      sample_point.evaluations = evaluator.num_evaluations();
      sample_point.incumbent_quality = best_quality;
      sample_point.neighborhood = static_cast<int32_t>(candidates.size());
      scope.RecordIteration(sample_point);
    }
    if (internal::BudgetExpired(timer, evaluator, solver_options, &stop)) {
      break;
    }
    if (!improved) {
      stop = StopReason::kConverged;
      break;
    }
  }

  result.solution =
      internal::FinalizeSolution(evaluator, std::move(best), "repair",
                                 iterations, timer, stop, {}, &scope);
  return result;
}

}  // namespace ube
