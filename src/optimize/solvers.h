#ifndef UBE_OPTIMIZE_SOLVERS_H_
#define UBE_OPTIMIZE_SOLVERS_H_

#include "optimize/solver.h"

namespace ube {

/// Tabu search (Glover & Laguna), µBE's default solver (Section 6).
/// Recency-based tabu memory on reversing recent add/drop decisions, with
/// the standard aspiration criterion (a tabu move is admissible when it
/// improves the incumbent). Constraints define permanently tabu regions:
/// moves that would remove a required source are never generated.
class TabuSearchSolver final : public Solver {
 public:
  Result<Solution> Solve(const CandidateEvaluator& evaluator,
                         const SolverOptions& options) const override;
  std::string_view name() const override { return "tabu"; }
};

/// Stochastic local search: best-of-sample hill climbing restarted from
/// random feasible candidates.
class LocalSearchSolver final : public Solver {
 public:
  Result<Solution> Solve(const CandidateEvaluator& evaluator,
                         const SolverOptions& options) const override;
  std::string_view name() const override { return "sls"; }
};

/// Constrained simulated annealing with geometric cooling; infeasible
/// moves are never generated, so only quality drives acceptance.
class AnnealingSolver final : public Solver {
 public:
  Result<Solution> Solve(const CandidateEvaluator& evaluator,
                         const SolverOptions& options) const override;
  std::string_view name() const override { return "annealing"; }
};

/// Binary particle swarm optimization (Kennedy & Eberhart's discrete PSO):
/// sigmoid-squashed velocities sample bit vectors which are then repaired
/// onto the feasible region (required sources forced, size capped at m).
class PsoSolver final : public Solver {
 public:
  Result<Solution> Solve(const CandidateEvaluator& evaluator,
                         const SolverOptions& options) const override;
  std::string_view name() const override { return "pso"; }
};

/// Greedy constructive baseline: start from the required sources and
/// repeatedly add the source with the best marginal Q(S) gain.
class GreedySolver final : public Solver {
 public:
  Result<Solution> Solve(const CandidateEvaluator& evaluator,
                         const SolverOptions& options) const override;
  std::string_view name() const override { return "greedy"; }
};

/// Uniform random sampling baseline.
class RandomSolver final : public Solver {
 public:
  Result<Solution> Solve(const CandidateEvaluator& evaluator,
                         const SolverOptions& options) const override;
  std::string_view name() const override { return "random"; }
};

/// Exact enumeration of every feasible candidate. Refuses instances with
/// more than ~2 million candidates; intended for tests and for validating
/// the heuristics on tiny universes.
class ExhaustiveSolver final : public Solver {
 public:
  Result<Solution> Solve(const CandidateEvaluator& evaluator,
                         const SolverOptions& options) const override;
  std::string_view name() const override { return "exhaustive"; }
};

}  // namespace ube

#endif  // UBE_OPTIMIZE_SOLVERS_H_
