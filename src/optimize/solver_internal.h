#ifndef UBE_OPTIMIZE_SOLVER_INTERNAL_H_
#define UBE_OPTIMIZE_SOLVER_INTERNAL_H_

#include <memory>
#include <string>
#include <vector>

#include "optimize/evaluator.h"
#include "optimize/problem.h"
#include "optimize/solver.h"
#include "util/result.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace ube::internal {

/// Fully evaluates `best` and packages it (plus effort counters) into a
/// Solution. Shared by every solver. `trace` (may be empty) is moved into
/// the stats.
Solution FinalizeSolution(const CandidateEvaluator& evaluator,
                          std::vector<SourceId> best, std::string solver_name,
                          int64_t iterations, const WallTimer& timer,
                          std::vector<TracePoint> trace = {});

/// Appends a trace point when tracing is enabled.
inline void MaybeTrace(bool enabled, const CandidateEvaluator& evaluator,
                       double best_quality, std::vector<TracePoint>* trace) {
  if (!enabled) return;
  trace->push_back(TracePoint{evaluator.num_evaluations(), best_quality});
}

/// Common entry checks: non-empty universe. Returns OK or kInfeasible.
Status CheckSolvable(const CandidateEvaluator& evaluator);

/// Thread pool for QualityBatch per SolverOptions::num_threads, or null
/// when the resolved count is 1 (QualityBatch then evaluates inline).
std::unique_ptr<ThreadPool> MakeEvalPool(const SolverOptions& options);

}  // namespace ube::internal

#endif  // UBE_OPTIMIZE_SOLVER_INTERNAL_H_
