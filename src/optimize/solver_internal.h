#ifndef UBE_OPTIMIZE_SOLVER_INTERNAL_H_
#define UBE_OPTIMIZE_SOLVER_INTERNAL_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/obs.h"
#include "optimize/delta_evaluator.h"
#include "optimize/evaluator.h"
#include "optimize/problem.h"
#include "optimize/solver.h"
#include "util/result.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace ube::internal {

/// Per-solve observability scope shared by every solver. Construction
/// attaches SolverOptions::obs to the evaluator, opens a "solve/<name>"
/// span and allocates the telemetry ring; destruction detaches. When
/// options.obs is null (the default) every member is a cheap no-op, so
/// solvers use it unconditionally — gate only per-iteration sample
/// *assembly* on enabled() when it costs anything (e.g. counting the tabu
/// list).
class SolveScope {
 public:
  SolveScope(const CandidateEvaluator& evaluator, const SolverOptions& options,
             std::string_view solver_name);
  ~SolveScope();
  SolveScope(const SolveScope&) = delete;
  SolveScope& operator=(const SolveScope&) = delete;

  bool enabled() const { return obs_ != nullptr; }

  /// Records one outer-iteration telemetry sample (ring-bounded).
  void RecordIteration(const obs::IterationSample& sample) {
    if (ring_ != nullptr) ring_->Record(sample);
  }

  /// Copies telemetry and a metrics snapshot into `stats` and bumps the
  /// solver.stop.<reason> counter. FinalizeSolution calls this; only call
  /// it directly on non-FinalizeSolution exits.
  void Export(SolverStats* stats);

 private:
  const CandidateEvaluator& evaluator_;
  obs::ObsContext* obs_ = nullptr;
  std::unique_ptr<obs::TelemetryRing> ring_;
  obs::Tracer::Span span_;
};

/// True when the wall-clock or evaluation budget is set and spent, setting
/// `*stop` to the matching reason (time wins when both expired, so tiny
/// time-limit tests keep seeing kTimeLimit). Solvers must consult this both
/// before dispatching a QualityBatch and right after it returns: checking
/// only at the top of the outer loop lets one large batch overshoot either
/// budget by an unbounded amount.
inline bool BudgetExpired(const WallTimer& timer,
                          const CandidateEvaluator& evaluator,
                          const SolverOptions& options, StopReason* stop) {
  if (options.time_limit_seconds > 0.0 &&
      timer.ElapsedSeconds() >= options.time_limit_seconds) {
    *stop = StopReason::kTimeLimit;
    return true;
  }
  if (options.max_evaluations > 0 &&
      evaluator.num_evaluations() >= options.max_evaluations) {
    *stop = StopReason::kEvalBudget;
    return true;
  }
  return false;
}

/// Fully evaluates `best` and packages it (plus effort counters and the
/// stop reason) into a Solution. Shared by every solver. `trace` (may be
/// empty) is moved into the stats; `scope`, when given, exports telemetry
/// and metrics into the stats.
Solution FinalizeSolution(const CandidateEvaluator& evaluator,
                          std::vector<SourceId> best, std::string solver_name,
                          int64_t iterations, const WallTimer& timer,
                          StopReason stop_reason,
                          std::vector<TracePoint> trace = {},
                          SolveScope* scope = nullptr);

/// Appends a trace point when tracing is enabled.
inline void MaybeTrace(bool enabled, const CandidateEvaluator& evaluator,
                       double best_quality, std::vector<TracePoint>* trace) {
  if (!enabled) return;
  trace->push_back(TracePoint{evaluator.num_evaluations(), best_quality});
}

/// Common entry checks: non-empty universe. Returns OK or kInfeasible.
Status CheckSolvable(const CandidateEvaluator& evaluator);

/// The sanitized warm-start seed from SolverOptions::initial_incumbent, or
/// an empty vector when there is none or it is infeasible under the
/// evaluator's spec (out-of-range/banned member, missing required source,
/// size outside [1, m] after dedup). Solvers treat empty as "cold start" —
/// and MUST NOT have consumed any randomness before calling this, so the
/// infeasible-seed path stays bit-identical to a cold solve.
std::vector<SourceId> ValidWarmStart(const CandidateEvaluator& evaluator,
                                     const SolverOptions& options);

/// Delta scoring front-end per SolverOptions::delta_eval. Inactive (pure
/// pass-through to the full path) when the flag is off or the model has a
/// QEF without a delta scorer; either way solvers call the same
/// Quality/ScoreCandidates/ScoreNeighborhood API.
inline DeltaEvaluator MakeDeltaEvaluator(const CandidateEvaluator& evaluator,
                                         const SolverOptions& options) {
  return DeltaEvaluator(evaluator, options.delta_eval);
}

/// Thread pool for QualityBatch per SolverOptions::num_threads, or null
/// when the resolved count is 1 (QualityBatch then evaluates inline).
std::unique_ptr<ThreadPool> MakeEvalPool(const SolverOptions& options);

}  // namespace ube::internal

#endif  // UBE_OPTIMIZE_SOLVER_INTERNAL_H_
