#ifndef UBE_OPTIMIZE_EVALUATOR_H_
#define UBE_OPTIMIZE_EVALUATOR_H_

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "matching/cluster_matcher.h"
#include "optimize/problem.h"
#include "qef/quality_model.h"
#include "source/universe.h"
#include "util/result.h"

namespace ube {

/// Scores candidate source sets for one optimization problem: runs
/// Match(S, C, G) when the model needs it, builds the QEF context and
/// returns Q(S). Infeasible candidates (Match invalid on C) score 0.
///
/// Because tabu search revisits neighbourhoods, Quality() memoizes by a
/// 64-bit hash of the sorted candidate (bounded cache). Full Evaluate()
/// (with schema and breakdown) always computes.
///
/// Not thread-safe (single mutable cache); create one per search thread.
class CandidateEvaluator {
 public:
  /// All referees must outlive the evaluator. Call ValidateSpec first; the
  /// constructor UBE_CHECKs the same conditions.
  CandidateEvaluator(const Universe& universe, const ClusterMatcher& matcher,
                     const QualityModel& model, const ProblemSpec& spec);

  /// Checks a spec against a universe: ids in range, GA constraints valid
  /// and disjoint, θ/β sane, and |required| <= m.
  static Status ValidateSpec(const Universe& universe,
                             const ProblemSpec& spec);

  struct Evaluation {
    double quality = 0.0;
    QualityBreakdown breakdown;
    MatchResult match;
  };

  /// Fully evaluates a candidate (must be sorted, unique, contain all
  /// required sources, and have size in [1, m]; violations are programmer
  /// errors).
  Evaluation Evaluate(const std::vector<SourceId>& candidate) const;

  /// Q(S) only, memoized.
  double Quality(const std::vector<SourceId>& candidate) const;

  /// C ∪ {sources referenced by G}, sorted unique — the sources every
  /// feasible candidate must contain (the "permanently tabu" region).
  const std::vector<SourceId>& required_sources() const { return required_; }

  /// Sources no feasible candidate may contain, sorted unique.
  const std::vector<SourceId>& banned_sources() const { return banned_; }

  /// True iff `s` is banned.
  bool IsBanned(SourceId s) const {
    return std::binary_search(banned_.begin(), banned_.end(), s);
  }

  const ProblemSpec& spec() const { return spec_; }
  const Universe& universe() const { return universe_; }
  const QualityModel& model() const { return model_; }

  int64_t num_evaluations() const { return evaluations_; }
  int64_t num_cache_hits() const { return cache_hits_; }
  void ResetCounters() const;

 private:
  static uint64_t HashCandidate(const std::vector<SourceId>& candidate);

  const Universe& universe_;
  const ClusterMatcher& matcher_;
  const QualityModel& model_;
  const ProblemSpec& spec_;
  std::vector<SourceId> required_;
  std::vector<SourceId> banned_;

  static constexpr size_t kMaxCacheEntries = 1 << 18;
  mutable std::unordered_map<uint64_t, double> quality_cache_;
  mutable int64_t evaluations_ = 0;
  mutable int64_t cache_hits_ = 0;
};

}  // namespace ube

#endif  // UBE_OPTIMIZE_EVALUATOR_H_
