#ifndef UBE_OPTIMIZE_EVALUATOR_H_
#define UBE_OPTIMIZE_EVALUATOR_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "matching/cluster_matcher.h"
#include "optimize/problem.h"
#include "qef/quality_model.h"
#include "source/universe.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace ube {

namespace obs {
class ObsContext;
}  // namespace obs

class DeltaEvaluator;

/// A quality cache shared across evaluators — the cross-session warm cache
/// of the multi-tenant SessionServer. Entries are keyed by (spec
/// fingerprint, candidate): the fingerprint digests everything a quality
/// value depends on (θ/β, constraints, effective weights, degradation
/// policy, model shape, universe version), so two sessions with equal specs
/// share hits while a session with different weights can never be served
/// another's values. Every hit re-verifies both the stored fingerprint and
/// the stored candidate, so a 64-bit key collision recomputes instead of
/// poisoning a tenant.
///
/// Thread safety: Lookup/Insert are internally synchronized (sharded,
/// mutex-striped like the evaluator's own cache) and safe from any number
/// of concurrent sessions. Clear() is safe too but racing solvers may
/// re-insert immediately.
class SharedQualityCache {
 public:
  explicit SharedQualityCache(size_t max_entries_per_shard = 1u << 14);

  /// True and fills *quality when `candidate` is cached under
  /// (fingerprint, key) and the stored entry verifies.
  bool Lookup(uint64_t fingerprint, uint64_t key,
              const std::vector<SourceId>& candidate, double* quality) const;
  /// Inserts (bounded: a full shard is cleared first; last writer wins).
  void Insert(uint64_t fingerprint, uint64_t key,
              const std::vector<SourceId>& candidate, double quality);
  void Clear();

  /// Cumulative counters (relaxed atomics; totals only settle once
  /// concurrent sessions quiesce).
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t insertions = 0;
    /// Hits rejected by verification: same slot, different fingerprint or
    /// candidate (the would-be cross-session poisonings).
    int64_t rejects = 0;
    int64_t evictions = 0;  ///< full-shard clears
  };
  Stats stats() const;
  size_t size() const;

  /// Test hook: slot entries by candidate key only, ignoring the
  /// fingerprint, so two specs' entries collide on one slot and the
  /// verify-on-hit rejection path is exercised deterministically.
  void SetIdentityMixForTesting() { mix_fingerprint_ = false; }

 private:
  struct Entry {
    uint64_t fingerprint = 0;
    std::vector<SourceId> candidate;
    double quality = 0.0;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, Entry> map;
  };

  uint64_t SlotKey(uint64_t fingerprint, uint64_t key) const;
  Shard& ShardFor(uint64_t slot) const {
    return shards_[slot >> (64 - kShardBits)];
  }

  static constexpr int kShardBits = 4;
  static constexpr size_t kNumShards = 1u << kShardBits;
  mutable Shard shards_[kNumShards];
  size_t max_entries_per_shard_;
  bool mix_fingerprint_ = true;
  mutable std::atomic<int64_t> hits_{0};
  mutable std::atomic<int64_t> misses_{0};
  mutable std::atomic<int64_t> insertions_{0};
  mutable std::atomic<int64_t> rejects_{0};
  mutable std::atomic<int64_t> evictions_{0};
};

/// Scores candidate source sets for one optimization problem: runs
/// Match(S, C, G) when the model needs it, builds the QEF context and
/// returns Q(S). Infeasible candidates (Match invalid on C) score 0.
///
/// Because tabu search revisits neighbourhoods, Quality() memoizes Q(S) in
/// a sharded, mutex-striped cache: candidates hash to one of
/// kNumCacheShards shards (by hash prefix), each shard holding its own
/// mutex and bounded map, so concurrent lookups/inserts only contend when
/// they land on the same shard. Entries store the full candidate next to
/// the value and verify it on every hit — a 64-bit hash collision therefore
/// recomputes instead of silently returning the wrong quality. A shard that
/// reaches its bound evicts only itself (per-shard clear), never the whole
/// cache. Full Evaluate() (with schema and breakdown) always computes.
///
/// Thread safety: Quality(), QualityBatch(), Evaluate() and the counters
/// are safe to call concurrently (the referenced Universe/ClusterMatcher/
/// QualityModel must not be mutated during a search — the constructor
/// primes the universe's lazily built union signature for that reason).
/// ResetCounters()/ClearCache()/BeginRun() are not synchronized against
/// concurrent evaluation; call them between searches.
///
/// QualityBatch() scores a whole sampled neighborhood at once, optionally
/// on a ThreadPool. Results AND counter totals are bit-identical whether
/// the batch runs inline, on one worker, or on many: cache probing and
/// intra-batch deduplication happen sequentially up front, only the cache
/// misses (each a pure function of its candidate) are computed in
/// parallel, and insertion happens sequentially afterwards.
class CandidateEvaluator {
 public:
  /// All referees must outlive the evaluator. Call ValidateSpec (and
  /// ValidateOverlay when the spec carries a weight overlay) first; the
  /// constructor UBE_CHECKs the same conditions. `cache_epoch` is folded
  /// into the spec fingerprint — pass a universe version counter so a
  /// shared cache can never serve values computed before a churn event
  /// (equal specs over different universe states get distinct
  /// fingerprints).
  CandidateEvaluator(const Universe& universe, const ClusterMatcher& matcher,
                     const QualityModel& model, const ProblemSpec& spec,
                     uint64_t cache_epoch = 0);

  /// Checks a spec against a universe: ids in range, GA constraints valid
  /// and disjoint, θ/β sane, and |required| <= m.
  static Status ValidateSpec(const Universe& universe,
                             const ProblemSpec& spec);

  /// Checks ProblemSpec::weight_overlay against `model`: empty (inherit the
  /// model's weights) or a full valid weight vector.
  static Status ValidateOverlay(const QualityModel& model,
                                const ProblemSpec& spec);

  struct Evaluation {
    double quality = 0.0;
    QualityBreakdown breakdown;
    MatchResult match;
  };

  /// Fully evaluates a candidate (must be sorted, unique, contain all
  /// required sources, and have size in [1, m]; violations are programmer
  /// errors).
  Evaluation Evaluate(const std::vector<SourceId>& candidate) const;

  /// Q(S) only, memoized.
  double Quality(const std::vector<SourceId>& candidate) const;

  /// Q(S) for every candidate in `candidates` (same preconditions as
  /// Quality), returned in input order. Cache misses are evaluated on
  /// `pool` when given, inline otherwise; duplicates within the batch are
  /// computed once and counted as cache hits, exactly as the equivalent
  /// sequence of Quality() calls would count them.
  std::vector<double> QualityBatch(
      std::span<const std::vector<SourceId>> candidates,
      ThreadPool* pool = nullptr) const;

  /// C ∪ {sources referenced by G}, sorted unique — the sources every
  /// feasible candidate must contain (the "permanently tabu" region).
  const std::vector<SourceId>& required_sources() const { return required_; }

  /// Sources no feasible candidate may contain, sorted unique.
  const std::vector<SourceId>& banned_sources() const { return banned_; }

  /// True iff `s` is banned.
  bool IsBanned(SourceId s) const {
    return std::binary_search(banned_.begin(), banned_.end(), s);
  }

  const ProblemSpec& spec() const { return spec_; }
  const Universe& universe() const { return universe_; }
  const QualityModel& model() const { return model_; }

  /// The weights every evaluation here runs under: the spec's weight
  /// overlay when present, the model's weights otherwise. The delta path
  /// copies these (not the model's) so full and delta scoring agree bitwise
  /// under an overlay.
  const std::vector<double>& effective_weights() const {
    return effective_weights_;
  }

  /// 64-bit digest of everything a quality value depends on (spec, weights,
  /// degradation policy, model shape, cache epoch). Mixed into every cache
  /// key and stored next to shared-cache entries, so a warm cache from one
  /// spec can never answer for another.
  uint64_t spec_fingerprint() const { return spec_fingerprint_; }

  int64_t num_evaluations() const {
    return evaluations_.load(std::memory_order_relaxed);
  }
  int64_t num_cache_hits() const {
    return cache_hits_.load(std::memory_order_relaxed);
  }
  void ResetCounters() const;

  /// Drops every memoized quality. Solvers call this (via BeginRun) so each
  /// run starts cache-cold and reported evaluation counts/times are
  /// comparable across solvers instead of crediting later runs with the
  /// earlier runs' warm cache.
  void ClearCache() const;

  /// ClearCache() + ResetCounters(): what every Solve() invokes first.
  /// An attached shared cache deliberately survives — staying warm across
  /// runs and sessions is its purpose; fingerprinted keys keep it safe.
  void BeginRun() const {
    ClearCache();
    ResetCounters();
  }

  /// Routes this evaluator's memoization through `cache` instead of the
  /// local shards (null detaches). Like AttachObs, not synchronized against
  /// concurrent evaluation — attach before the search starts. Hits/misses
  /// keep counting in this evaluator's counters, so budget stops behave
  /// identically; only which store answers them changes.
  void AttachSharedCache(SharedQualityCache* cache) const {
    shared_cache_ = cache;
  }

  /// Attaches an observability context (null detaches). Records counters
  /// eval.computed / eval.cache_hit / eval.collision_recompute /
  /// eval.shard_eviction, histograms eval.batch_size /
  /// eval.batch_latency_us, and an eval/batch span per QualityBatch. Like
  /// BeginRun, not synchronized against concurrent evaluation — attach
  /// before the search starts. Never changes any returned quality.
  void AttachObs(obs::ObsContext* obs) const;
  void DetachObs() const { AttachObs(nullptr); }

  /// Test hook: replaces the cache hash function (e.g. with a constant) to
  /// force collisions and exercise the verify-on-hit path.
  using HashFn = uint64_t (*)(const std::vector<SourceId>&);
  void SetHashFunctionForTesting(HashFn fn) { hash_fn_ = fn; }

  /// Test hook: shrinks the per-shard cache bound so eviction is reachable
  /// without inserting ~2^14 entries.
  void SetShardCapacityForTesting(size_t max_entries_per_shard) {
    max_entries_per_shard_ = max_entries_per_shard;
  }

 private:
  /// The delta path (optimize/delta_evaluator.h) shares this evaluator's
  /// quality cache, counters and obs hooks so budgets and metrics stay
  /// identical with delta scoring on or off.
  friend class DeltaEvaluator;

  static uint64_t HashCandidate(const std::vector<SourceId>& candidate);

  /// Cache key of one candidate: the candidate hash mixed with the spec
  /// fingerprint, so keys from different specs never alias even when the
  /// candidate sets are identical (the cross-spec poisoning fix).
  uint64_t CacheKey(const std::vector<SourceId>& candidate) const;

  struct CacheEntry {
    std::vector<SourceId> candidate;  // verified on hit (collision safety)
    double quality = 0.0;
  };
  struct CacheShard {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, CacheEntry> map;
  };

  CacheShard& ShardFor(uint64_t key) const {
    // Key by hash prefix: the low bits index the shard's map buckets.
    return cache_shards_[key >> (64 - kShardBits)];
  }
  /// Returns true and fills *quality when `candidate` is cached under
  /// `key`; does not touch counters.
  bool CacheLookup(uint64_t key, const std::vector<SourceId>& candidate,
                   double* quality) const;
  /// Inserts (bounded: a full shard is cleared first). A colliding entry
  /// for a different candidate is overwritten (last writer wins).
  void CacheInsert(uint64_t key, const std::vector<SourceId>& candidate,
                   double quality) const;

  const Universe& universe_;
  const ClusterMatcher& matcher_;
  const QualityModel& model_;
  const ProblemSpec& spec_;
  std::vector<SourceId> required_;
  std::vector<SourceId> banned_;
  std::vector<double> effective_weights_;
  uint64_t spec_fingerprint_ = 0;
  mutable SharedQualityCache* shared_cache_ = nullptr;

  static constexpr int kShardBits = 4;
  static constexpr size_t kNumCacheShards = 1u << kShardBits;
  static constexpr size_t kMaxCacheEntries = 1 << 18;
  static constexpr size_t kMaxEntriesPerShard =
      kMaxCacheEntries / kNumCacheShards;
  mutable CacheShard cache_shards_[kNumCacheShards];
  size_t max_entries_per_shard_ = kMaxEntriesPerShard;
  HashFn hash_fn_ = &CandidateEvaluator::HashCandidate;
  mutable std::atomic<int64_t> evaluations_{0};
  mutable std::atomic<int64_t> cache_hits_{0};

  /// Pre-registered metric ids so hot paths never do name lookups; all -1
  /// (= MetricsRegistry::kInvalidMetric) when no context is attached.
  struct ObsHooks {
    obs::ObsContext* ctx = nullptr;
    int32_t computed = -1;
    int32_t cache_hit = -1;
    int32_t collision_recompute = -1;
    int32_t shard_eviction = -1;
    int32_t batch_size = -1;
    int32_t batch_latency_us = -1;
  };
  mutable ObsHooks obs_;
};

}  // namespace ube

#endif  // UBE_OPTIMIZE_EVALUATOR_H_
