#ifndef UBE_OPTIMIZE_REPAIR_H_
#define UBE_OPTIMIZE_REPAIR_H_

#include <cstdint>
#include <vector>

#include "optimize/evaluator.h"
#include "optimize/problem.h"
#include "util/timer.h"

namespace ube {

namespace obs {
class ObsContext;
}  // namespace obs

/// Knobs for the bounded incumbent-repair search. Deliberately a fraction
/// of a full solve's budget: repair exists so that per-event maintenance is
/// cheap, with escalation to a full re-solve as the quality backstop
/// (Engine::RunContinuous owns that policy).
struct RepairOptions {
  uint64_t seed = 42;
  /// Steepest-ascent iterations from the damaged incumbent.
  int max_iterations = 40;
  /// Hard cap on computed evaluations (<= 0 disables).
  int64_t eval_budget = 2'000;
  /// Moves sampled per iteration (0 = auto, same rule as local search).
  int candidate_moves = 0;
  /// QualityBatch threads (1 = inline); the result is identical for any
  /// value, per the evaluator's bit-identity contract.
  int num_threads = 1;
  /// Delta scoring (see SolverOptions::delta_eval) — bit-identical results
  /// either way.
  bool delta_eval = true;
  /// Injectable clock (tests); null = real steady clock.
  const Clock* clock = nullptr;
  /// Optional observability context (solve/repair span, solver metrics).
  obs::ObsContext* obs = nullptr;
};

/// Outcome of one repair attempt.
struct RepairResult {
  /// False when sanitizing left nothing to seed the search with (the whole
  /// incumbent was evicted) — the caller must fall back to a full solve;
  /// `solution` is meaningless then.
  bool seeded = false;
  /// Incumbent members evicted as dead / banned / out of range.
  int evicted = 0;
  /// Q of the sanitized seed before any search (diagnostics: how much the
  /// churn batch actually hurt).
  double seed_quality = 0.0;
  /// The repaired incumbent (solver_name "repair" in its stats).
  Solution solution;
};

/// Repairs a damaged incumbent against the evaluator's current spec and
/// universe: evicts banned/out-of-range members, re-adds newly required
/// sources, then runs a bounded steepest-ascent local search seeded from
/// what survived (adds, drops and swaps — so newly appeared sources are
/// adoptable). Deterministic for a fixed seed and any thread count.
///
/// The evaluator must be built over the *current* (post-churn) universe;
/// RepairIncumbent calls BeginRun, so reported evaluation counts are
/// per-repair and cache state never leaks across batches.
RepairResult RepairIncumbent(const CandidateEvaluator& evaluator,
                             const std::vector<SourceId>& incumbent,
                             const RepairOptions& options);

}  // namespace ube

#endif  // UBE_OPTIMIZE_REPAIR_H_
