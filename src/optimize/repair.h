#ifndef UBE_OPTIMIZE_REPAIR_H_
#define UBE_OPTIMIZE_REPAIR_H_

#include <cstdint>
#include <vector>

#include "obs/telemetry.h"
#include "optimize/evaluator.h"
#include "optimize/problem.h"
#include "util/timer.h"

namespace ube {

namespace obs {
class ObsContext;
}  // namespace obs

/// Knobs for the bounded incumbent-repair search. Deliberately a fraction
/// of a full solve's budget: repair exists so that per-event maintenance is
/// cheap, with escalation to a full re-solve as the quality backstop
/// (Engine::RunContinuous owns that policy).
struct RepairOptions {
  uint64_t seed = 42;
  /// Steepest-ascent iterations from the damaged incumbent.
  int max_iterations = 40;
  /// Hard cap on computed evaluations (<= 0 disables).
  int64_t eval_budget = 2'000;
  /// Moves sampled per iteration (0 = auto, same rule as local search).
  int candidate_moves = 0;
  /// QualityBatch threads (1 = inline); the result is identical for any
  /// value, per the evaluator's bit-identity contract.
  int num_threads = 1;
  /// Delta scoring (see SolverOptions::delta_eval) — bit-identical results
  /// either way.
  bool delta_eval = true;
  /// Injectable clock (tests); null = real steady clock.
  const Clock* clock = nullptr;
  /// Optional observability context (solve/repair span, solver metrics).
  obs::ObsContext* obs = nullptr;
  /// Cross-evaluator quality cache (optimize/evaluator.h). Not owned; must
  /// outlive the repair. Engine::RepairSeed attaches it to the repair's
  /// evaluator so a session's repair pre-warms its subsequent warm-start
  /// solve (same spec fingerprint). Null keeps the local cache.
  SharedQualityCache* shared_cache = nullptr;
};

/// Outcome of one repair attempt.
struct RepairResult {
  /// False when sanitizing left nothing to seed the search with (the whole
  /// incumbent was evicted) — the caller must fall back to a full solve;
  /// `solution` is meaningless then.
  bool seeded = false;
  /// Incumbent members evicted as dead / banned / out of range.
  int evicted = 0;
  /// Q of the sanitized seed before any search (diagnostics: how much the
  /// churn batch actually hurt).
  double seed_quality = 0.0;
  /// The repaired incumbent (solver_name "repair" in its stats).
  Solution solution;
};

/// Knobs of the adaptive repair-budget controller (continuous mode). The
/// controller replaces RepairOptions::eval_budget with a per-batch value it
/// steers inside [min_eval_budget, max_eval_budget] from recent repair
/// telemetry; disabling it restores the fixed budget exactly.
struct AdaptiveRepairOptions {
  bool enabled = true;
  /// Bounds of the per-batch evaluation budget. The base budget
  /// (RepairOptions::eval_budget) is clamped into this range up front.
  int64_t min_eval_budget = 256;
  int64_t max_eval_budget = 16'384;
  /// Consecutive cheap successes (repair converged using at most half the
  /// budget) before the budget shrinks by a quarter.
  int shrink_after = 3;
  /// Recent batches consulted for escalation pressure; when at least half
  /// of them escalated on quality, the budget pins at max_eval_budget.
  int window = 8;
};

/// Sizes the repair budget per churn batch from recent repair outcomes,
/// recorded into a PR-5 TelemetryRing (one IterationSample per batch:
/// evaluations = what the repair spent, stall = whether it escalated).
///
/// Policy, all deterministic integer arithmetic so continuous runs replay
/// bit-identically for any thread count:
///  - a quality-fraction escalation doubles the budget (the repair was
///    genuinely too small), capped at max;
///  - `shrink_after` consecutive cheap successes shrink it to 3/4, floored
///    at min — converged repairs should not hoard budget;
///  - an incumbent wipeout leaves it unchanged (no budget would have
///    helped; the full solve was structural);
///  - sustained escalation pressure (>= half the trailing `window`) pins
///    the budget at max until the pressure clears.
class RepairBudgetController {
 public:
  RepairBudgetController(int64_t base_budget,
                         const AdaptiveRepairOptions& options);

  /// The budget the next repair should run with.
  int64_t budget() const { return budget_; }

  /// Report one batch's outcome: evaluations the repair spent, whether it
  /// produced a seeded result, whether the result escalated on the quality
  /// fraction, and whether the whole incumbent was evicted.
  void Record(int64_t evaluations_used, bool repaired, bool quality_escalated,
              bool wipeout);

  const obs::TelemetryRing& ring() const { return ring_; }

 private:
  AdaptiveRepairOptions options_;
  int64_t budget_;
  int cheap_streak_ = 0;
  int64_t batches_ = 0;
  obs::TelemetryRing ring_;
};

/// Repairs a damaged incumbent against the evaluator's current spec and
/// universe: evicts banned/out-of-range members, re-adds newly required
/// sources, then runs a bounded steepest-ascent local search seeded from
/// what survived (adds, drops and swaps — so newly appeared sources are
/// adoptable). Deterministic for a fixed seed and any thread count.
///
/// The evaluator must be built over the *current* (post-churn) universe;
/// RepairIncumbent calls BeginRun, so reported evaluation counts are
/// per-repair and cache state never leaks across batches.
RepairResult RepairIncumbent(const CandidateEvaluator& evaluator,
                             const std::vector<SourceId>& incumbent,
                             const RepairOptions& options);

}  // namespace ube

#endif  // UBE_OPTIMIZE_REPAIR_H_
