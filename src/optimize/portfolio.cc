#include "optimize/portfolio.h"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "obs/obs.h"
#include "optimize/solver_internal.h"
#include "util/timer.h"

namespace ube {

namespace {

/// Truncated contenders within this quality gap of the truncated leader
/// stay in the race for the finish phase.
constexpr double kQualityMargin = 0.05;

/// One contender's probe outcome.
struct ProbeResult {
  SolverKind kind = SolverKind::kTabu;
  Solution solution;
  bool truncated = false;    // stopped on the eval cap, not on its own rule
  bool stalled_out = false;  // telemetry tail shows a long stall
};

/// The stall detector: the run's last telemetry sample spent a quarter of
/// its iterations (at least 8) without improving the incumbent. Telemetry
/// is recorded on the portfolio's internal context, so this is always
/// available and always deterministic.
bool StalledOut(const SolverStats& stats) {
  if (stats.telemetry.empty()) return false;
  const obs::IterationSample& last = stats.telemetry.back();
  return last.stall >= std::max<int64_t>(8, last.iteration / 4);
}

}  // namespace

Result<Solution> PortfolioSolver::Solve(const CandidateEvaluator& evaluator,
                                        const SolverOptions& options) const {
  UBE_RETURN_IF_ERROR(internal::CheckSolvable(evaluator));
  WallTimer timer(options.clock);
  obs::Tracer::Span span = obs::SpanIf(options.obs, "solve/portfolio");

  // Same equalized-budget convention ablation_solvers uses: a nominal 32
  // evaluations per outer iteration when the caller did not set an
  // explicit evaluation budget.
  const int64_t total_budget =
      options.max_evaluations > 0
          ? options.max_evaluations
          : static_cast<int64_t>(options.max_iterations) * 32;

  std::vector<SolverKind> contenders;
  for (SolverKind kind : AllSolverKinds()) {
    if (kind != SolverKind::kPortfolio) contenders.push_back(kind);
  }

  // Internal always-on context: its telemetry rings feed the stall
  // detector. Instrumentation never changes a contender's result, so the
  // race is identical with or without the caller's own context attached.
  obs::ObsOptions internal_options;
  internal_options.trace = false;
  obs::ObsContext internal_obs(internal_options);

  const int64_t probe_share = std::max<int64_t>(
      1, total_budget / (2 * static_cast<int64_t>(contenders.size())));

  int64_t spent = 0;
  int64_t iterations = 0;
  int64_t cache_hits = 0;
  bool out_of_time = false;
  Status last_error = Status::Ok();
  std::vector<ProbeResult> probes;

  // Runs one contender with the given per-run eval cap and the remaining
  // wall-clock budget; accounts its effort. Returns false on solver error.
  auto run_contender = [&](SolverKind kind, int64_t eval_cap,
                           ProbeResult* out) {
    SolverOptions sub = options;
    sub.obs = &internal_obs;
    sub.max_evaluations = eval_cap;
    if (options.time_limit_seconds > 0.0) {
      double remaining_time =
          options.time_limit_seconds - timer.ElapsedSeconds();
      if (remaining_time <= 0.0) {
        out_of_time = true;
        // The first contender still runs (with an already-expired budget):
        // every solver guarantees a feasible incumbent before honoring the
        // deadline, which keeps the portfolio anytime too.
        if (!probes.empty()) return false;
        remaining_time = 1e-12;
      }
      sub.time_limit_seconds = remaining_time;
    }
    Result<Solution> result = MakeSolver(kind)->Solve(evaluator, sub);
    if (!result.ok()) {
      // e.g. exhaustive refusing a large instance; skip, but account the
      // evaluations the attempt burned (per-run counters: every Solve
      // begins with BeginRun).
      spent += evaluator.num_evaluations();
      last_error = result.status();
      return false;
    }
    spent += result->stats.evaluations;
    iterations += result->stats.iterations;
    cache_hits += result->stats.cache_hits;
    out->kind = kind;
    out->truncated = result->stats.stop_reason == StopReason::kEvalBudget;
    out->stalled_out = StalledOut(result->stats);
    if (result->stats.stop_reason == StopReason::kTimeLimit) {
      out_of_time = true;
    }
    out->solution = std::move(*result);
    return true;
  };

  // --- probe phase -------------------------------------------------------
  bool exact_done = false;
  for (SolverKind kind : contenders) {
    const int64_t remaining = total_budget - spent;
    if (remaining <= 0 || out_of_time) break;
    ProbeResult probe;
    if (!run_contender(kind, std::min(probe_share, remaining), &probe)) {
      continue;
    }
    const bool exact_complete =
        SolverTraitsFor(kind).exact &&
        probe.solution.stats.stop_reason == StopReason::kExhausted;
    probes.push_back(std::move(probe));
    if (exact_complete) {
      // The optimum is in hand; no amount of remaining budget beats it.
      exact_done = true;
      break;
    }
  }
  if (probes.empty()) {
    return last_error.ok()
               ? Status::Infeasible("no portfolio contender produced a result")
               : last_error;
  }

  // --- finish phase ------------------------------------------------------
  // Spend what is left on the best truncated probes: the quality leader
  // always advances; the runner-up only if it kept pace and its tail was
  // still improving.
  if (!exact_done && !out_of_time) {
    std::vector<const ProbeResult*> truncated;
    for (const ProbeResult& probe : probes) {
      if (probe.truncated) truncated.push_back(&probe);
    }
    std::stable_sort(truncated.begin(), truncated.end(),
                     [](const ProbeResult* a, const ProbeResult* b) {
                       return a->solution.quality > b->solution.quality;
                     });
    std::vector<const ProbeResult*> finalists;
    if (!truncated.empty()) finalists.push_back(truncated.front());
    if (truncated.size() > 1 && !truncated[1]->stalled_out &&
        truncated[1]->solution.quality >=
            truncated[0]->solution.quality - kQualityMargin) {
      finalists.push_back(truncated[1]);
    }
    const int64_t remaining = total_budget - spent;
    if (!finalists.empty() && remaining > 0) {
      const int64_t share =
          remaining / static_cast<int64_t>(finalists.size());
      for (const ProbeResult* finalist : finalists) {
        if (out_of_time) break;
        // Rerunning replays the probe prefix (same seed), so the rerun cap
        // is probe + share; skip when that grants no new ground.
        const int64_t cap = finalist->solution.stats.evaluations + share;
        if (cap <= finalist->solution.stats.evaluations) continue;
        ProbeResult rerun;
        if (run_contender(finalist->kind, cap, &rerun)) {
          probes.push_back(std::move(rerun));
        }
      }
    }
  }

  // --- pick the winner ---------------------------------------------------
  size_t winner = 0;
  for (size_t i = 1; i < probes.size(); ++i) {
    if (probes[i].solution.quality > probes[winner].solution.quality) {
      winner = i;
    }
  }

  Solution solution = std::move(probes[winner].solution);
  solution.stats.solver_name = std::string(name());
  solution.stats.iterations = iterations;
  solution.stats.evaluations = spent;
  solution.stats.cache_hits = cache_hits;
  solution.stats.elapsed_seconds = timer.ElapsedSeconds();
  solution.stats.stop_reason = out_of_time       ? StopReason::kTimeLimit
                               : exact_done      ? StopReason::kExhausted
                               : spent >= total_budget
                                   ? StopReason::kEvalBudget
                                   : StopReason::kConverged;
  if (options.obs != nullptr) {
    obs::MetricsRegistry& metrics = options.obs->metrics();
    metrics.Add(metrics.Counter("portfolio.contenders"),
                static_cast<int64_t>(contenders.size()));
    metrics.Add(metrics.Counter("portfolio.runs"),
                static_cast<int64_t>(probes.size()));
    metrics.Add(metrics.Counter(std::string("portfolio.winner.") +
                                std::string(SolverKindName(
                                    probes[winner].kind))));
    metrics.Add(metrics.Counter(std::string("solver.stop.") +
                                std::string(StopReasonName(
                                    solution.stats.stop_reason))));
    solution.stats.metrics = std::make_shared<const obs::MetricsSnapshot>(
        metrics.Snapshot());
  } else {
    solution.stats.metrics = nullptr;
  }
  return solution;
}

}  // namespace ube
