#include "optimize/solver.h"

#include "optimize/solvers.h"
#include "util/check.h"

namespace ube {

std::unique_ptr<Solver> MakeSolver(SolverKind kind) {
  switch (kind) {
    case SolverKind::kTabu:
      return std::make_unique<TabuSearchSolver>();
    case SolverKind::kLocalSearch:
      return std::make_unique<LocalSearchSolver>();
    case SolverKind::kAnnealing:
      return std::make_unique<AnnealingSolver>();
    case SolverKind::kPso:
      return std::make_unique<PsoSolver>();
    case SolverKind::kGreedy:
      return std::make_unique<GreedySolver>();
    case SolverKind::kRandom:
      return std::make_unique<RandomSolver>();
    case SolverKind::kExhaustive:
      return std::make_unique<ExhaustiveSolver>();
  }
  UBE_CHECK(false, "unknown SolverKind");
  return nullptr;
}

std::string_view StopReasonName(StopReason reason) {
  switch (reason) {
    case StopReason::kUnknown:
      return "unknown";
    case StopReason::kMaxIterations:
      return "max-iterations";
    case StopReason::kStalled:
      return "stalled";
    case StopReason::kTimeLimit:
      return "time-limit";
    case StopReason::kConverged:
      return "converged";
    case StopReason::kExhausted:
      return "exhausted";
  }
  return "unknown";
}

std::string_view SolverKindName(SolverKind kind) {
  switch (kind) {
    case SolverKind::kTabu:
      return "tabu";
    case SolverKind::kLocalSearch:
      return "sls";
    case SolverKind::kAnnealing:
      return "annealing";
    case SolverKind::kPso:
      return "pso";
    case SolverKind::kGreedy:
      return "greedy";
    case SolverKind::kRandom:
      return "random";
    case SolverKind::kExhaustive:
      return "exhaustive";
  }
  return "unknown";
}

}  // namespace ube
