#include "optimize/solver.h"

#include "optimize/portfolio.h"
#include "optimize/solvers.h"
#include "util/check.h"

namespace ube {

std::unique_ptr<Solver> MakeSolver(SolverKind kind) {
  switch (kind) {
    case SolverKind::kTabu:
      return std::make_unique<TabuSearchSolver>();
    case SolverKind::kLocalSearch:
      return std::make_unique<LocalSearchSolver>();
    case SolverKind::kAnnealing:
      return std::make_unique<AnnealingSolver>();
    case SolverKind::kPso:
      return std::make_unique<PsoSolver>();
    case SolverKind::kGreedy:
      return std::make_unique<GreedySolver>();
    case SolverKind::kRandom:
      return std::make_unique<RandomSolver>();
    case SolverKind::kExhaustive:
      return std::make_unique<ExhaustiveSolver>();
    case SolverKind::kPortfolio:
      return std::make_unique<PortfolioSolver>();
  }
  UBE_CHECK(false, "unknown SolverKind");
  return nullptr;
}

std::string_view StopReasonName(StopReason reason) {
  switch (reason) {
    case StopReason::kUnknown:
      return "unknown";
    case StopReason::kMaxIterations:
      return "max-iterations";
    case StopReason::kStalled:
      return "stalled";
    case StopReason::kTimeLimit:
      return "time-limit";
    case StopReason::kEvalBudget:
      return "eval-budget";
    case StopReason::kConverged:
      return "converged";
    case StopReason::kExhausted:
      return "exhausted";
  }
  return "unknown";
}

std::string_view SolverKindName(SolverKind kind) {
  switch (kind) {
    case SolverKind::kTabu:
      return "tabu";
    case SolverKind::kLocalSearch:
      return "sls";
    case SolverKind::kAnnealing:
      return "annealing";
    case SolverKind::kPso:
      return "pso";
    case SolverKind::kGreedy:
      return "greedy";
    case SolverKind::kRandom:
      return "random";
    case SolverKind::kExhaustive:
      return "exhaustive";
    case SolverKind::kPortfolio:
      return "portfolio";
  }
  return "unknown";
}

SolverTraits SolverTraitsFor(SolverKind kind) {
  SolverTraits traits;
  traits.kind = kind;
  switch (kind) {
    case SolverKind::kTabu:
      traits.quality_epsilon = 0.02;
      break;
    case SolverKind::kLocalSearch:
      traits.quality_epsilon = 0.05;
      break;
    case SolverKind::kAnnealing:
      traits.quality_epsilon = 0.10;
      break;
    case SolverKind::kPso:
      traits.quality_epsilon = 0.10;
      break;
    case SolverKind::kGreedy:
      // Deterministic single construction pass; cheap but can lock into a
      // local optimum, hence the loose epsilon.
      traits.randomized = false;
      traits.anytime = false;
      traits.default_eval_budget = 2'000;
      traits.quality_epsilon = 0.15;
      break;
    case SolverKind::kRandom:
      traits.quality_epsilon = 0.30;
      break;
    case SolverKind::kExhaustive:
      traits.randomized = false;
      traits.exact = true;
      traits.monotonic_trace = true;
      traits.quality_epsilon = 0.0;
      break;
    case SolverKind::kPortfolio:
      // Races the rest; on small instances the exhaustive contender
      // finishes inside its probe share, so the portfolio is exact there —
      // but not in general.
      traits.quality_epsilon = 0.02;
      break;
  }
  return traits;
}

const std::vector<SolverKind>& AllSolverKinds() {
  static const std::vector<SolverKind> kinds = {
      SolverKind::kTabu,   SolverKind::kLocalSearch, SolverKind::kAnnealing,
      SolverKind::kPso,    SolverKind::kGreedy,      SolverKind::kRandom,
      SolverKind::kExhaustive, SolverKind::kPortfolio,
  };
  return kinds;
}

}  // namespace ube
