#ifndef UBE_OPTIMIZE_PORTFOLIO_H_
#define UBE_OPTIMIZE_PORTFOLIO_H_

#include "optimize/solver.h"

namespace ube {

/// Algorithm portfolio: races every other SolverKind on one shared
/// evaluation budget instead of betting the whole budget on a single
/// heuristic.
///
/// The race has two phases. A *probe* phase gives each contender an equal
/// slice (half the budget split evenly); contenders that finish inside
/// their slice (converged / exhausted / stalled) are done — rerunning them
/// with more budget would replay the identical trajectory, because every
/// stop rule except the eval cap is iteration-based. A *finish* phase
/// spends the remaining budget on the most promising truncated contenders:
/// the quality leader always advances, the runner-up only if it is within
/// a small quality margin and its telemetry does not show a stalled-out
/// tail (the PR-5 TelemetryRing stall counter doubles as the race's
/// early-stopping signal). An exact contender that completes (exhaustive
/// on small instances) short-circuits the race — its result is the
/// optimum.
///
/// Deterministic: contenders run sequentially in a fixed order with the
/// caller's seed, every budget split is integer arithmetic, and the stall
/// telemetry that steers the finish phase is recorded on an internal
/// always-on context — so the returned Solution is identical whether or
/// not SolverOptions::obs is attached, like every other solver.
class PortfolioSolver final : public Solver {
 public:
  Result<Solution> Solve(const CandidateEvaluator& evaluator,
                         const SolverOptions& options) const override;
  std::string_view name() const override { return "portfolio"; }
};

}  // namespace ube

#endif  // UBE_OPTIMIZE_PORTFOLIO_H_
