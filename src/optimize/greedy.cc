#include <algorithm>
#include <memory>
#include <vector>

#include "optimize/search_state.h"
#include "optimize/solver_internal.h"
#include "optimize/solvers.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace ube {

namespace {

constexpr double kEps = 1e-12;

}  // namespace

Result<Solution> GreedySolver::Solve(const CandidateEvaluator& evaluator,
                                     const SolverOptions& options) const {
  UBE_RETURN_IF_ERROR(internal::CheckSolvable(evaluator));
  WallTimer timer(options.clock);
  evaluator.BeginRun();
  internal::SolveScope scope(evaluator, options, name());
  std::unique_ptr<ThreadPool> pool = internal::MakeEvalPool(options);
  DeltaEvaluator delta = internal::MakeDeltaEvaluator(evaluator, options);

  const int n = evaluator.universe().num_sources();
  const int m = evaluator.spec().max_sources;

  std::vector<SourceId> current = evaluator.required_sources();
  // Treating banned sources as permanent members of nothing: mark them
  // "used" so the augmentation loop never considers them.
  std::vector<char> member(static_cast<size_t>(n), 0);
  for (SourceId s : current) member[static_cast<size_t>(s)] = 1;
  std::vector<char> excluded(static_cast<size_t>(n), 0);
  for (SourceId s : evaluator.banned_sources()) {
    excluded[static_cast<size_t>(s)] = 1;
  }

  int64_t iterations = 0;
  std::vector<TracePoint> trace;

  // Warm start: greedy construction is deterministic and can land below a
  // good incumbent, so score the seed up front and return whichever of
  // (seed, constructed) is better — never worse than the seed.
  std::vector<SourceId> warm = internal::ValidWarmStart(evaluator, options);
  double warm_quality = -1.0;
  if (!warm.empty()) warm_quality = delta.Quality(warm);

  // Seed: if no constraints, start from the best single source. All the
  // singletons are scored as one batch; ties keep the lowest id, as the
  // sequential scan did.
  if (current.empty()) {
    std::vector<SourceId> seeds;
    std::vector<std::vector<SourceId>> candidates;
    for (SourceId s = 0; s < n; ++s) {
      if (excluded[static_cast<size_t>(s)]) continue;
      seeds.push_back(s);
      candidates.push_back({s});
    }
    std::vector<double> qualities =
        delta.ScoreCandidates(candidates, pool.get());
    SourceId best_seed = -1;
    double best_quality = -1.0;
    for (size_t i = 0; i < seeds.size(); ++i) {
      if (qualities[i] > best_quality) {
        best_quality = qualities[i];
        best_seed = seeds[i];
      }
    }
    UBE_CHECK(best_seed >= 0, "no unbanned source available");
    current.push_back(best_seed);
    member[static_cast<size_t>(best_seed)] = 1;
  }
  double current_quality = delta.Quality(current);

  // Greedy augmentation: always add the best marginal source. Additions are
  // accepted even when the marginal gain is non-positive as long as *some*
  // source improves over the rest — Q is typically monotone in |S| through
  // the Card/Coverage terms, but an invalid Match can make all extensions
  // score 0; in that case we keep the incumbent and stop.
  // Construction that runs to completion (reaches m, or no extension
  // improves) converged; only the wall clock can cut it short.
  StopReason stop = StopReason::kConverged;
  while (static_cast<int>(current.size()) < m) {
    ++iterations;
    // Pre-dispatch deadline check (post-batch check at the bottom).
    if (internal::BudgetExpired(timer, evaluator, options, &stop)) {
      break;
    }
    // Score every feasible one-source extension as a single batch, then
    // replay the sequential lowest-id-first selection over the results.
    std::vector<SourceId> adds;
    std::vector<SearchState::Move> moves;
    std::vector<std::vector<SourceId>> candidates;
    for (SourceId s = 0; s < n; ++s) {
      if (member[static_cast<size_t>(s)] || excluded[static_cast<size_t>(s)]) {
        continue;
      }
      std::vector<SourceId> candidate = current;
      candidate.insert(
          std::lower_bound(candidate.begin(), candidate.end(), s), s);
      adds.push_back(s);
      moves.push_back(
          SearchState::Move{SearchState::Move::Kind::kAdd, s, -1});
      candidates.push_back(std::move(candidate));
    }
    std::vector<double> qualities =
        delta.ScoreNeighborhood(current, moves, candidates, pool.get());
    bool found = false;
    SourceId best_add = -1;
    double best_quality = current_quality;
    for (size_t i = 0; i < adds.size(); ++i) {
      if (qualities[i] > best_quality + kEps) {
        best_quality = qualities[i];
        best_add = adds[i];
        found = true;
      }
    }
    if (found) {
      current.insert(
          std::lower_bound(current.begin(), current.end(), best_add),
          best_add);
      member[static_cast<size_t>(best_add)] = 1;
      current_quality = best_quality;
      internal::MaybeTrace(options.record_trace, evaluator, current_quality,
                           &trace);
    }
    if (scope.enabled()) {
      obs::IterationSample sample;
      sample.iteration = iterations;
      sample.evaluations = evaluator.num_evaluations();
      sample.incumbent_quality = current_quality;
      sample.neighborhood = static_cast<int32_t>(candidates.size());
      scope.RecordIteration(sample);
    }
    if (!found) break;  // construction converged — the true stop cause even
                        // if the clock also just ran out
    // Post-batch deadline check: fold the extension we just paid for, then
    // stop before scoring another round.
    if (internal::BudgetExpired(timer, evaluator, options, &stop)) {
      break;
    }
  }

  if (!warm.empty() && warm_quality > current_quality) {
    current = std::move(warm);
  }
  return internal::FinalizeSolution(evaluator, std::move(current),
                                    std::string(name()), iterations, timer,
                                    stop, std::move(trace), &scope);
}

}  // namespace ube
