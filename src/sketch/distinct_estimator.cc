#include "sketch/distinct_estimator.h"

#include "util/check.h"

namespace ube {

void PcsaSignature::MergeFrom(const DistinctSignature& other) {
  const auto* pcsa = dynamic_cast<const PcsaSignature*>(&other);
  UBE_CHECK(pcsa != nullptr, "PcsaSignature can only merge PcsaSignature");
  sketch_.Merge(pcsa->sketch_);
}

void ExactSignature::MergeFrom(const DistinctSignature& other) {
  const auto* exact = dynamic_cast<const ExactSignature*>(&other);
  UBE_CHECK(exact != nullptr, "ExactSignature can only merge ExactSignature");
  ids_.insert(exact->ids_.begin(), exact->ids_.end());
}

std::unique_ptr<DistinctSignature> MakeSignature(SignatureKind kind,
                                                 int pcsa_bitmaps) {
  switch (kind) {
    case SignatureKind::kPcsa:
      return std::make_unique<PcsaSignature>(pcsa_bitmaps);
    case SignatureKind::kExact:
      return std::make_unique<ExactSignature>();
  }
  UBE_CHECK(false, "unknown SignatureKind");
  return nullptr;
}

}  // namespace ube
