#ifndef UBE_SKETCH_DISTINCT_ESTIMATOR_H_
#define UBE_SKETCH_DISTINCT_ESTIMATOR_H_

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "sketch/pcsa.h"

namespace ube {

/// A per-source summary from which the cardinality of unions of sources can
/// be estimated. Two implementations:
///  - PcsaSignature: the paper's mechanism (Section 4), constant size.
///  - ExactSignature: stores the id set; used in tests and in the accuracy
///    bench that reproduces the "worst case error of 7%" comparison.
///
/// Both are mergeable with the same union semantics, so the coverage /
/// redundancy QEFs are written once against this interface.
class DistinctSignature {
 public:
  virtual ~DistinctSignature() = default;

  /// Observes one tuple id.
  virtual void Add(uint64_t id) = 0;
  /// Estimated (or exact) number of distinct ids observed.
  virtual double Estimate() const = 0;
  /// Merges `other` into this signature (set-union semantics). Implementations
  /// may UBE_CHECK that `other` has the same concrete type/configuration.
  virtual void MergeFrom(const DistinctSignature& other) = 0;
  /// Deep copy preserving the concrete type.
  virtual std::unique_ptr<DistinctSignature> Clone() const = 0;
  /// Approximate memory footprint in bytes.
  virtual size_t SizeBytes() const = 0;
};

/// PCSA-backed signature (the realistic, constant-space implementation).
class PcsaSignature final : public DistinctSignature {
 public:
  explicit PcsaSignature(int num_bitmaps = 64) : sketch_(num_bitmaps) {}
  explicit PcsaSignature(PcsaSketch sketch) : sketch_(std::move(sketch)) {}

  void Add(uint64_t id) override { sketch_.AddHash(id); }
  double Estimate() const override { return sketch_.Estimate(); }
  void MergeFrom(const DistinctSignature& other) override;
  std::unique_ptr<DistinctSignature> Clone() const override {
    return std::make_unique<PcsaSignature>(sketch_);
  }
  size_t SizeBytes() const override { return sketch_.SizeBytes(); }

  const PcsaSketch& sketch() const { return sketch_; }

 private:
  PcsaSketch sketch_;
};

/// Exact signature storing the distinct id set. Linear space — only for
/// tests, small examples and accuracy baselines.
class ExactSignature final : public DistinctSignature {
 public:
  ExactSignature() = default;

  void Add(uint64_t id) override { ids_.insert(id); }
  double Estimate() const override { return static_cast<double>(ids_.size()); }
  void MergeFrom(const DistinctSignature& other) override;
  std::unique_ptr<DistinctSignature> Clone() const override {
    return std::make_unique<ExactSignature>(*this);
  }
  size_t SizeBytes() const override { return ids_.size() * sizeof(uint64_t); }

  const std::unordered_set<uint64_t>& ids() const { return ids_; }

 private:
  std::unordered_set<uint64_t> ids_;
};

/// Factory the workload generator and examples use to pick the signature
/// implementation uniformly.
enum class SignatureKind { kPcsa, kExact };

std::unique_ptr<DistinctSignature> MakeSignature(SignatureKind kind,
                                                 int pcsa_bitmaps = 64);

}  // namespace ube

#endif  // UBE_SKETCH_DISTINCT_ESTIMATOR_H_
