#include "sketch/pcsa.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace ube {

namespace {

constexpr double kPhi = 0.77351;          // Flajolet–Martin magic constant
constexpr double kKappa = 1.75;           // small-range bias correction

uint64_t HashString(std::string_view s) {
  // FNV-1a, then splitmix64 finalizer for avalanche.
  uint64_t h = 1469598103934665603ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return SplitMix64(h);
}

}  // namespace

PcsaSketch::PcsaSketch(int num_bitmaps) {
  UBE_CHECK(num_bitmaps >= 1 && num_bitmaps <= 65536 &&
                std::has_single_bit(static_cast<unsigned>(num_bitmaps)),
            "num_bitmaps must be a power of two in [1, 65536]");
  bitmaps_.assign(static_cast<size_t>(num_bitmaps), 0);
  index_bits_ = std::countr_zero(static_cast<unsigned>(num_bitmaps));
}

void PcsaSketch::AddHash(uint64_t value) {
  uint64_t h = SplitMix64(value);
  uint64_t index = h & ((uint64_t{1} << index_bits_) - 1);
  uint64_t rest = h >> index_bits_;
  // ρ = number of trailing zeros of the remaining bits; geometric with
  // P(ρ = r) = 2^-(r+1). rest == 0 is vanishingly rare; cap at bit 31.
  int rho = rest == 0 ? 31 : std::countr_zero(rest);
  if (rho > 31) rho = 31;
  bitmaps_[index] |= (uint32_t{1} << rho);
}

void PcsaSketch::AddString(std::string_view item) { AddHash(HashString(item)); }

bool PcsaSketch::IsEmpty() const {
  for (uint32_t word : bitmaps_) {
    if (word != 0) return false;
  }
  return true;
}

double PcsaSketch::Estimate() const { return EstimateFromBitmaps(bitmaps_); }

double PcsaSketch::EstimateFromBitmaps(const std::vector<uint32_t>& bitmaps) {
  bool empty = true;
  for (uint32_t word : bitmaps) {
    if (word != 0) {
      empty = false;
      break;
    }
  }
  if (empty) return 0.0;
  const double k = static_cast<double>(bitmaps.size());
  double sum_r = 0.0;
  for (uint32_t word : bitmaps) {
    // R = index of the lowest zero bit.
    sum_r += std::countr_one(word);
  }
  const double mean_r = sum_r / k;
  // Scheuermann–Mauve small-range correction: E = k/φ · (2^A - 2^{-κA}).
  double estimate =
      (k / kPhi) * (std::exp2(mean_r) - std::exp2(-kKappa * mean_r));
  // A non-empty sketch has seen at least one item; the corrected estimator
  // can otherwise round tiny cardinalities down to 0.
  return std::max(estimate, 1.0);
}

void PcsaSketch::Merge(const PcsaSketch& other) {
  UBE_CHECK(bitmaps_.size() == other.bitmaps_.size(),
            "cannot merge PCSA sketches with different bitmap counts");
  for (size_t i = 0; i < bitmaps_.size(); ++i) bitmaps_[i] |= other.bitmaps_[i];
}

PcsaSketch PcsaSketch::Union(const PcsaSketch& a, const PcsaSketch& b) {
  PcsaSketch out = a;
  out.Merge(b);
  return out;
}

PcsaSketch PcsaSketch::FromBitmaps(std::vector<uint32_t> bitmaps) {
  PcsaSketch out(static_cast<int>(bitmaps.size()));
  out.bitmaps_ = std::move(bitmaps);
  return out;
}

}  // namespace ube
