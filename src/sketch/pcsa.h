#ifndef UBE_SKETCH_PCSA_H_
#define UBE_SKETCH_PCSA_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ube {

/// Flajolet–Martin "Probabilistic Counting with Stochastic Averaging"
/// (PCSA) distinct-count sketch.
///
/// Section 4 of the paper: each data source computes a PCSA hash signature
/// of its tuples once; µBE caches the signatures and estimates the
/// cardinality of any *union* of sources by bitwise-ORing the signatures
/// and running the PCSA estimator on the result — no data access needed.
///
/// The sketch holds `num_bitmaps` 32-bit bitmaps. Each item's 64-bit hash is
/// split: the low bits pick a bitmap (stochastic averaging), the remaining
/// bits feed a geometric position ρ = #trailing zeros, and bit ρ of the
/// chosen bitmap is set. The estimate is
///
///   E = (k / φ) · 2^{mean_i R_i},   φ = 0.77351,
///
/// where R_i is the index of the lowest unset bit of bitmap i. A standard
/// small-cardinality correction (Scheuermann & Mauve) subtracts the 2^{-κR}
/// bias term so estimates stay accurate below ~10·k items.
class PcsaSketch {
 public:
  /// num_bitmaps must be a power of two in [1, 65536]. 64 bitmaps give a
  /// typical standard error of 0.78/sqrt(64) ≈ 9.7%; 256 give ≈ 4.9%.
  explicit PcsaSketch(int num_bitmaps = 64);

  /// Observes an item identified by a 64-bit value. The value is mixed
  /// through splitmix64 internally, so sequential ids are fine.
  void AddHash(uint64_t value);

  /// Observes a string item (hashed with FNV-1a then mixed).
  void AddString(std::string_view item);

  /// Estimated number of distinct items observed.
  double Estimate() const;

  /// The estimator applied to raw bitmap words (the exact computation
  /// Estimate() performs on bitmaps()). Lets callers that maintain running
  /// unions as plain word vectors — e.g. the delta evaluator's prefix/suffix
  /// OR arrays — estimate without constructing a sketch: the result is
  /// bit-identical to FromBitmaps(words).Estimate() because it IS that code.
  static double EstimateFromBitmaps(const std::vector<uint32_t>& bitmaps);

  /// True if no bit is set (no item was ever added).
  bool IsEmpty() const;

  /// Bitwise-ORs `other` into this sketch. The result is exactly the sketch
  /// of the multiset union — the key property µBE exploits. Both sketches
  /// must have the same num_bitmaps.
  void Merge(const PcsaSketch& other);

  /// Returns the union of two sketches without mutating either.
  static PcsaSketch Union(const PcsaSketch& a, const PcsaSketch& b);

  int num_bitmaps() const { return static_cast<int>(bitmaps_.size()); }

  /// Signature size in bytes ("a few bytes or kilobytes", Section 4) —
  /// used by the memory-accounting bench.
  size_t SizeBytes() const { return bitmaps_.size() * sizeof(uint32_t); }

  /// Raw bitmap words, e.g. for serialization by cooperating sources.
  const std::vector<uint32_t>& bitmaps() const { return bitmaps_; }

  /// Reconstructs a sketch from raw bitmap words (the wire format a
  /// cooperating source would ship to µBE).
  static PcsaSketch FromBitmaps(std::vector<uint32_t> bitmaps);

  friend bool operator==(const PcsaSketch& a, const PcsaSketch& b) {
    return a.bitmaps_ == b.bitmaps_;
  }

 private:
  std::vector<uint32_t> bitmaps_;
  int index_bits_;  // log2(num_bitmaps)
};

}  // namespace ube

#endif  // UBE_SKETCH_PCSA_H_
