#include "qef/qef.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace ube {

namespace {

double Clamp01(double x) { return std::clamp(x, 0.0, 1.0); }

/// Card / Coverage / Redundancy read only the aggregates the context
/// already carries, so given a prepared context their Evaluate is O(1);
/// the delta scorer simply forwards to it (one implementation, no drift).
class ForwardingDeltaScorer final : public QefDeltaScorer {
 public:
  explicit ForwardingDeltaScorer(const Qef* qef) : qef_(qef) {}
  double Score(const EvalContext& ctx) const override {
    return qef_->Evaluate(ctx);
  }

 private:
  const Qef* qef_;
};

/// CharacteristicQef's Evaluate rescans the universe (min/max) and hits the
/// per-source characteristic map for every candidate. This scorer freezes
/// both into per-source tables at construction and replays Evaluate's exact
/// aggregation arithmetic over them, in candidate order — identical
/// operands, identical order, identical bits.
class CharacteristicDeltaScorer final : public QefDeltaScorer {
 public:
  CharacteristicDeltaScorer(Aggregation aggregation, bool any,
                            std::vector<double> normalized,
                            std::vector<double> cardinality)
      : aggregation_(aggregation),
        any_(any),
        normalized_(std::move(normalized)),
        cardinality_(std::move(cardinality)) {}

  double Score(const EvalContext& ctx) const override {
    const std::vector<SourceId>& sources = *ctx.sources;
    if (sources.empty()) return 0.0;
    if (!any_) return 0.0;
    switch (aggregation_) {
      case Aggregation::kWeightedSum: {
        double weighted = 0.0;
        double total_card = 0.0;
        for (SourceId s : sources) {
          double card = cardinality_[static_cast<size_t>(s)];
          weighted += normalized_[static_cast<size_t>(s)] * card;
          total_card += card;
        }
        if (total_card <= 0.0) return 0.0;
        return Clamp01(weighted / total_card);
      }
      case Aggregation::kMean: {
        double sum = 0.0;
        for (SourceId s : sources) sum += normalized_[static_cast<size_t>(s)];
        return Clamp01(sum / static_cast<double>(sources.size()));
      }
      case Aggregation::kMin: {
        double best = 1.0;
        for (SourceId s : sources) {
          best = std::min(best, normalized_[static_cast<size_t>(s)]);
        }
        return best;
      }
      case Aggregation::kMax: {
        double best = 0.0;
        for (SourceId s : sources) {
          best = std::max(best, normalized_[static_cast<size_t>(s)]);
        }
        return best;
      }
    }
    UBE_CHECK(false, "unknown aggregation");
    return 0.0;
  }

 private:
  Aggregation aggregation_;
  bool any_;
  std::vector<double> normalized_;
  std::vector<double> cardinality_;
};

}  // namespace

std::string_view DegradationPolicyName(DegradationPolicy policy) {
  switch (policy) {
    case DegradationPolicy::kPessimisticPrior:
      return "pessimistic-prior";
    case DegradationPolicy::kLastKnownGood:
      return "last-known-good";
    case DegradationPolicy::kExcludeRenormalize:
      return "exclude-renormalize";
  }
  return "unknown";
}

double MatchingQualityQef::Evaluate(const EvalContext& ctx) const {
  UBE_CHECK(ctx.match != nullptr,
            "MatchingQualityQef requires a Match(S) result in the context");
  if (!ctx.match->valid) return 0.0;
  return Clamp01(ctx.match->matching_quality);
}

std::unique_ptr<QefDeltaScorer> CardinalityQef::MakeDeltaScorer(
    const Universe& universe) const {
  (void)universe;
  return std::make_unique<ForwardingDeltaScorer>(this);
}

std::unique_ptr<QefDeltaScorer> CoverageQef::MakeDeltaScorer(
    const Universe& universe) const {
  (void)universe;
  return std::make_unique<ForwardingDeltaScorer>(this);
}

std::unique_ptr<QefDeltaScorer> RedundancyQef::MakeDeltaScorer(
    const Universe& universe) const {
  (void)universe;
  return std::make_unique<ForwardingDeltaScorer>(this);
}

std::unique_ptr<QefDeltaScorer> CharacteristicQef::MakeDeltaScorer(
    const Universe& universe) const {
  // The same universe-wide min/max scan Evaluate performs per candidate.
  double min_u = std::numeric_limits<double>::infinity();
  double max_u = -std::numeric_limits<double>::infinity();
  bool any = false;
  for (SourceId s = 0; s < universe.num_sources(); ++s) {
    std::optional<double> value =
        universe.source(s).GetCharacteristic(characteristic_);
    if (!value.has_value()) continue;
    any = true;
    min_u = std::min(min_u, *value);
    max_u = std::max(max_u, *value);
  }
  const size_t n = static_cast<size_t>(universe.num_sources());
  std::vector<double> normalized(n, 0.0);
  std::vector<double> cardinality(n, 0.0);
  for (SourceId s = 0; s < universe.num_sources(); ++s) {
    normalized[static_cast<size_t>(s)] = Normalized(universe, s, min_u, max_u);
    cardinality[static_cast<size_t>(s)] =
        static_cast<double>(universe.source(s).cardinality());
  }
  return std::make_unique<CharacteristicDeltaScorer>(
      aggregation_, any, std::move(normalized), std::move(cardinality));
}

double CardinalityQef::Evaluate(const EvalContext& ctx) const {
  UBE_CHECK(ctx.universe != nullptr, "EvalContext missing universe");
  // MakeContext fills universe_cardinality per the degradation policy.
  if (ctx.universe_cardinality <= 0) return 0.0;
  return Clamp01(ctx.effective_cardinality /
                 static_cast<double>(ctx.universe_cardinality));
}

double CoverageQef::Evaluate(const EvalContext& ctx) const {
  UBE_CHECK(ctx.universe != nullptr, "EvalContext missing universe");
  if (ctx.universe_union_estimate <= 0.0) return 0.0;
  return Clamp01(ctx.union_estimate / ctx.universe_union_estimate);
}

double RedundancyQef::Evaluate(const EvalContext& ctx) const {
  // Only cooperating sources take part; the others are "assigned 0
  // coverage and redundancy QEFs" (Section 4), i.e. excluded here.
  const int n = ctx.cooperating_count;
  if (n <= 1) return 1.0;  // a single source cannot overlap with itself
  if (ctx.union_estimate <= 0.0 || ctx.cooperating_cardinality <= 0.0) {
    return 1.0;
  }
  double overlap_factor = ctx.cooperating_cardinality / ctx.union_estimate;
  switch (mode_) {
    case Mode::kOverlapFactor: {
      overlap_factor = std::clamp(overlap_factor, 1.0, static_cast<double>(n));
      return Clamp01((static_cast<double>(n) - overlap_factor) /
                     (static_cast<double>(n) - 1.0));
    }
    case Mode::kUnionRatio:
      return Clamp01(1.0 / overlap_factor);
  }
  UBE_CHECK(false, "unknown redundancy mode");
  return 0.0;
}

double SchemaCoverageQef::Evaluate(const EvalContext& ctx) const {
  UBE_CHECK(ctx.match != nullptr && ctx.universe != nullptr &&
                ctx.sources != nullptr,
            "SchemaCoverageQef requires match result, universe and sources");
  if (!ctx.match->valid) return 0.0;
  int total_attributes = 0;
  for (SourceId s : *ctx.sources) {
    total_attributes += ctx.universe->source(s).schema().num_attributes();
  }
  if (total_attributes == 0) return 0.0;
  int covered = ctx.match->schema.TotalAttributes();
  return Clamp01(static_cast<double>(covered) /
                 static_cast<double>(total_attributes));
}

CharacteristicQef::CharacteristicQef(std::string characteristic,
                                     Aggregation aggregation, bool invert)
    : characteristic_(std::move(characteristic)),
      aggregation_(aggregation),
      invert_(invert) {
  display_name_ = "char:" + characteristic_;
}

double CharacteristicQef::Normalized(const Universe& universe, SourceId s,
                                     double min_u, double max_u) const {
  std::optional<double> value =
      universe.source(s).GetCharacteristic(characteristic_);
  if (!value.has_value()) return 0.0;
  if (max_u <= min_u) return 1.0;  // degenerate range: all sources equal
  double normalized = invert_ ? (max_u - *value) / (max_u - min_u)
                              : (*value - min_u) / (max_u - min_u);
  return Clamp01(normalized);
}

double CharacteristicQef::Evaluate(const EvalContext& ctx) const {
  UBE_CHECK(ctx.universe != nullptr && ctx.sources != nullptr,
            "EvalContext missing universe or sources");
  const Universe& universe = *ctx.universe;
  const std::vector<SourceId>& sources = *ctx.sources;
  if (sources.empty()) return 0.0;

  // Universe-wide min/max over sources that define the characteristic.
  double min_u = std::numeric_limits<double>::infinity();
  double max_u = -std::numeric_limits<double>::infinity();
  bool any = false;
  for (SourceId s = 0; s < universe.num_sources(); ++s) {
    std::optional<double> value =
        universe.source(s).GetCharacteristic(characteristic_);
    if (!value.has_value()) continue;
    any = true;
    min_u = std::min(min_u, *value);
    max_u = std::max(max_u, *value);
  }
  if (!any) return 0.0;

  switch (aggregation_) {
    case Aggregation::kWeightedSum: {
      // wsum(S) = Σ_s normalized(q_s)·|s| / Σ_s |s|  (Section 5).
      double weighted = 0.0;
      double total_card = 0.0;
      for (SourceId s : sources) {
        auto card = static_cast<double>(universe.source(s).cardinality());
        weighted += Normalized(universe, s, min_u, max_u) * card;
        total_card += card;
      }
      if (total_card <= 0.0) return 0.0;
      return Clamp01(weighted / total_card);
    }
    case Aggregation::kMean: {
      double sum = 0.0;
      for (SourceId s : sources) sum += Normalized(universe, s, min_u, max_u);
      return Clamp01(sum / static_cast<double>(sources.size()));
    }
    case Aggregation::kMin: {
      double best = 1.0;
      for (SourceId s : sources) {
        best = std::min(best, Normalized(universe, s, min_u, max_u));
      }
      return best;
    }
    case Aggregation::kMax: {
      double best = 0.0;
      for (SourceId s : sources) {
        best = std::max(best, Normalized(universe, s, min_u, max_u));
      }
      return best;
    }
  }
  UBE_CHECK(false, "unknown aggregation");
  return 0.0;
}

}  // namespace ube
