#include "qef/quality_model.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace ube {

QualityModel QualityModel::MakeDefault(std::string mttf_characteristic) {
  QualityModel model;
  model.AddQef(std::make_unique<MatchingQualityQef>(), 0.25);
  model.AddQef(std::make_unique<CardinalityQef>(), 0.25);
  model.AddQef(std::make_unique<CoverageQef>(), 0.20);
  model.AddQef(std::make_unique<RedundancyQef>(), 0.15);
  model.AddQef(std::make_unique<CharacteristicQef>(
                   std::move(mttf_characteristic), Aggregation::kWeightedSum),
               0.15);
  return model;
}

void QualityModel::AddQef(std::unique_ptr<Qef> qef, double weight) {
  UBE_CHECK(qef != nullptr, "AddQef requires a QEF");
  qefs_.push_back(std::move(qef));
  weights_.push_back(weight);
}

const Qef& QualityModel::qef(int index) const {
  UBE_CHECK(index >= 0 && index < num_qefs(), "QEF index out of range");
  return *qefs_[static_cast<size_t>(index)];
}

double QualityModel::weight(int index) const {
  UBE_CHECK(index >= 0 && index < num_qefs(), "QEF index out of range");
  return weights_[static_cast<size_t>(index)];
}

int QualityModel::FindQef(std::string_view name) const {
  for (size_t i = 0; i < qefs_.size(); ++i) {
    if (qefs_[i]->name() == name) return static_cast<int>(i);
  }
  return -1;
}

Status QualityModel::SetWeights(const std::vector<double>& weights) {
  if (weights.size() != weights_.size()) {
    return Status::InvalidArgument("weight count does not match QEF count");
  }
  std::vector<double> candidate = weights;
  std::swap(candidate, weights_);
  Status status = ValidateWeights();
  if (!status.ok()) std::swap(candidate, weights_);  // roll back
  return status;
}

Status QualityModel::SetWeightRescaling(std::string_view name, double weight) {
  int index = FindQef(name);
  if (index < 0) {
    return Status::NotFound("no QEF named '" + std::string(name) + "'");
  }
  return RescaleWeight(&weights_, index, weight);
}

Status QualityModel::RescaleWeight(std::vector<double>* weights, int index,
                                   double weight) {
  UBE_CHECK(weights != nullptr, "RescaleWeight requires a weight vector");
  std::vector<double>& w = *weights;
  if (index < 0 || index >= static_cast<int>(w.size())) {
    return Status::InvalidArgument("weight index out of range");
  }
  if (weight < 0.0 || weight > 1.0) {
    return Status::InvalidArgument("weight must be in [0, 1]");
  }
  double others = 0.0;
  for (size_t i = 0; i < w.size(); ++i) {
    if (static_cast<int>(i) != index) others += w[i];
  }
  double remaining = 1.0 - weight;
  if (others <= 0.0) {
    // All other weights are zero: distribute `remaining` uniformly.
    double share =
        w.size() > 1 ? remaining / static_cast<double>(w.size() - 1) : 0.0;
    for (size_t i = 0; i < w.size(); ++i) {
      w[i] = static_cast<int>(i) == index ? weight : share;
    }
  } else {
    double scale = remaining / others;
    for (size_t i = 0; i < w.size(); ++i) {
      if (static_cast<int>(i) == index) {
        w[i] = weight;
      } else {
        w[i] *= scale;
      }
    }
  }
  return Status::Ok();
}

Status QualityModel::ValidateWeights() const {
  return ValidateWeightVector(weights_);
}

Status QualityModel::ValidateWeightVector(
    const std::vector<double>& weights) const {
  if (qefs_.empty()) {
    return Status::FailedPrecondition("quality model has no QEFs");
  }
  if (weights.size() != qefs_.size()) {
    return Status::InvalidArgument("weight count does not match QEF count");
  }
  double sum = 0.0;
  for (double w : weights) {
    if (w < 0.0 || w > 1.0) {
      return Status::InvalidArgument("each weight must be in [0, 1]");
    }
    sum += w;
  }
  if (std::fabs(sum - 1.0) > 1e-6) {
    return Status::InvalidArgument("weights must sum to 1");
  }
  return Status::Ok();
}

bool QualityModel::NeedsMatching() const {
  for (const auto& qef : qefs_) {
    if (dynamic_cast<const MatchingQualityQef*>(qef.get()) != nullptr ||
        dynamic_cast<const SchemaCoverageQef*>(qef.get()) != nullptr) {
      return true;
    }
  }
  return false;
}

QualityModel::SourcePolicy QualityModel::PolicyFor(
    const DataSource& source) const {
  const DegradationPolicy policy = degradation_.policy;
  SourcePolicy out;
  switch (source.stats_state()) {
    case StatsState::kFresh:
      break;
    case StatsState::kStale:
      out.degraded = true;
      if (policy == DegradationPolicy::kLastKnownGood) {
        out.weight = std::max(
            0.0, 1.0 - degradation_.stale_discount * source.staleness());
      } else {
        out.weight = 0.0;
        out.admit_signature = false;
      }
      break;
    case StatsState::kPartial:
      // Cardinality arrived fresh; only the signature was lost. The
      // exclude policy drops the source from the renormalized picture
      // entirely; the others trust what did arrive.
      out.degraded = true;
      out.admit_signature = false;
      if (policy == DegradationPolicy::kExcludeRenormalize) out.weight = 0.0;
      break;
    case StatsState::kMissing:
      out.degraded = true;
      out.weight = 0.0;
      out.admit_signature = false;
      break;
  }
  return out;
}

EvalContext QualityModel::MakeContext(const Universe& universe,
                                      const std::vector<SourceId>& sources,
                                      const MatchResult* match) const {
  EvalContext ctx;
  ctx.universe = &universe;
  ctx.sources = &sources;
  ctx.match = match;

  std::unique_ptr<DistinctSignature> union_sig;
  for (SourceId s : sources) {
    const DataSource& source = universe.source(s);
    ctx.total_cardinality += source.cardinality();

    // Weight of this source's cardinality contributions and whether its
    // signature is admitted, per the degradation policy (shared with the
    // delta path through PolicyFor). Fresh sources are weight 1 / admitted
    // under every policy.
    const SourcePolicy policy = PolicyFor(source);
    if (policy.degraded) ++ctx.degraded_count;
    ctx.effective_cardinality +=
        policy.weight * static_cast<double>(source.cardinality());
    if (!policy.admit_signature || !source.has_signature()) continue;
    ++ctx.cooperating_count;
    ctx.cooperating_cardinality +=
        policy.weight * static_cast<double>(source.cardinality());
    if (union_sig == nullptr) {
      union_sig = source.signature().Clone();
    } else {
      union_sig->MergeFrom(source.signature());
    }
  }
  ctx.union_estimate = union_sig == nullptr ? 0.0 : union_sig->Estimate();

  if (degradation_.policy == DegradationPolicy::kExcludeRenormalize) {
    ctx.universe_cardinality = universe.FreshCardinality();
    ctx.universe_union_estimate = universe.FreshUnionCardinalityEstimate();
  } else {
    ctx.universe_cardinality = universe.TotalCardinality();
    ctx.universe_union_estimate = universe.UnionCardinalityEstimate();
  }
  return ctx;
}

QualityBreakdown QualityModel::Evaluate(const EvalContext& ctx) const {
  return Evaluate(ctx, weights_);
}

QualityBreakdown QualityModel::Evaluate(
    const EvalContext& ctx, const std::vector<double>& weights) const {
  UBE_CHECK(ValidateWeightVector(weights).ok(),
            "QualityModel weights are invalid: " +
                ValidateWeightVector(weights).ToString());
  UBE_CHECK(!NeedsMatching() || ctx.match != nullptr,
            "model has a matching QEF but the context has no Match result");

  QualityBreakdown out;
  out.scores.resize(qefs_.size(), 0.0);
  if (ctx.match != nullptr && !ctx.match->valid) {
    out.feasible = false;
    out.overall = 0.0;
    return out;
  }
  for (size_t i = 0; i < qefs_.size(); ++i) {
    out.scores[i] = qefs_[i]->Evaluate(ctx);
    out.overall += weights[i] * out.scores[i];
  }
  return out;
}

}  // namespace ube
