#ifndef UBE_QEF_QUALITY_MODEL_H_
#define UBE_QEF_QUALITY_MODEL_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "qef/qef.h"
#include "util/result.h"

namespace ube {

/// Per-QEF scores plus the weighted overall quality of one candidate.
struct QualityBreakdown {
  /// Q(S) = Σ_k w_k F_k(S); 0 when the candidate is infeasible.
  double overall = 0.0;
  /// True iff the Match(S) result (when a matching QEF is present) is valid
  /// on the source constraints.
  bool feasible = true;
  /// F_k(S), parallel to the model's QEF list.
  std::vector<double> scores;
};

/// The set of QEFs F and weights W defining the overall quality
/// Q(S) = Σ w_i F_i(S) with 0 <= w_i <= 1 and Σ w_i = 1 (Section 2.3).
///
/// The user adjusts weights between µBE iterations "to guide the search for
/// a solution towards different parts of the search space"; SetWeights and
/// SetWeight support that feedback loop.
class QualityModel {
 public:
  QualityModel() = default;

  QualityModel(QualityModel&&) = default;
  QualityModel& operator=(QualityModel&&) = default;
  QualityModel(const QualityModel&) = delete;
  QualityModel& operator=(const QualityModel&) = delete;

  /// The paper's default model (Section 7.1): matching 0.25, cardinality
  /// 0.25, coverage 0.2, redundancy 0.15, wsum(MTTF) 0.15.
  static QualityModel MakeDefault(std::string mttf_characteristic = "mttf");

  /// Adds a QEF with the given weight. Weights are validated by
  /// ValidateWeights / at Evaluate time via UBE_CHECK in debug use.
  void AddQef(std::unique_ptr<Qef> qef, double weight);

  int num_qefs() const { return static_cast<int>(qefs_.size()); }
  const Qef& qef(int index) const;
  double weight(int index) const;
  /// Index of the QEF with this name, or -1.
  int FindQef(std::string_view name) const;

  /// All weights, parallel to the QEF list (the vector a per-spec overlay
  /// starts from — see ProblemSpec::weight_overlay).
  const std::vector<double>& weights() const { return weights_; }

  /// Replaces all weights (size must match; each in [0,1]; sum within 1e-6
  /// of 1).
  Status SetWeights(const std::vector<double>& weights);
  /// Sets one weight by QEF name and rescales the others proportionally so
  /// the sum stays 1 — the natural "turn this knob" user feedback.
  Status SetWeightRescaling(std::string_view name, double weight);

  /// The rescaling rule behind SetWeightRescaling on a free-standing weight
  /// vector: sets (*weights)[index] = weight and scales the others so the
  /// sum stays 1. Sessions apply it to their per-spec overlay so the
  /// engine's shared model is never touched.
  static Status RescaleWeight(std::vector<double>* weights, int index,
                              double weight);

  /// OK iff every weight is in [0,1] and they sum to 1 (±1e-6).
  Status ValidateWeights() const;
  /// Same conditions on a free-standing vector, plus size == num_qefs()
  /// (validates a ProblemSpec::weight_overlay against this model).
  Status ValidateWeightVector(const std::vector<double>& weights) const;

  /// True if any registered QEF is a MatchingQualityQef (i.e. evaluation
  /// requires running Match(S)).
  bool NeedsMatching() const;

  /// How MakeContext treats sources with degraded statistics (stale /
  /// partial / missing after acquisition). Irrelevant — all policies
  /// identical — when every source is fresh.
  const DegradationOptions& degradation() const { return degradation_; }
  void set_degradation(const DegradationOptions& options) {
    degradation_ = options;
  }

  /// How the active degradation policy treats one source: the weight of its
  /// cardinality contributions, whether its signature joins the union-of-S
  /// estimate, and whether it counts as degraded. Pure function of the
  /// source's stats. MakeContext and the DeltaEvaluator both derive their
  /// per-source treatment from this, so the full and delta paths cannot
  /// drift apart.
  struct SourcePolicy {
    double weight = 1.0;
    bool admit_signature = true;
    bool degraded = false;
  };
  SourcePolicy PolicyFor(const DataSource& source) const;

  /// Builds the evaluation context for candidate `sources` (precomputes the
  /// shared aggregates). `match` may be null iff !NeedsMatching().
  EvalContext MakeContext(const Universe& universe,
                          const std::vector<SourceId>& sources,
                          const MatchResult* match) const;

  /// Scores a prepared context. If the context carries an invalid Match
  /// result the candidate is infeasible: overall = 0, feasible = false
  /// (the paper's Match returns NULL and the optimizer treats Q as 0).
  QualityBreakdown Evaluate(const EvalContext& ctx) const;

  /// Same, but accumulates under `weights` instead of the model's own
  /// (size must equal num_qefs(); see ProblemSpec::weight_overlay). The
  /// per-QEF scores are identical either way; only the weighted sum moves.
  QualityBreakdown Evaluate(const EvalContext& ctx,
                            const std::vector<double>& weights) const;

 private:
  std::vector<std::unique_ptr<Qef>> qefs_;
  std::vector<double> weights_;
  DegradationOptions degradation_;
};

}  // namespace ube

#endif  // UBE_QEF_QUALITY_MODEL_H_
