#ifndef UBE_QEF_QEF_H_
#define UBE_QEF_QEF_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "matching/cluster_matcher.h"
#include "source/universe.h"

namespace ube {

/// How the data QEFs treat sources whose statistics came back degraded from
/// acquisition (stale snapshot, truncated signature, nothing at all — see
/// StatsState in source/data_source.h and the prober in source/prober.h).
enum class DegradationPolicy {
  /// Degraded statistics are not trusted: the source contributes nothing to
  /// Card / Coverage / Redundancy (a worst-case prior of 0, the same
  /// treatment Section 4 gives uncooperative sources); denominators stay
  /// universe-wide, so degradation strictly lowers quality.
  kPessimisticPrior,
  /// Use the last-known-good snapshot, discounted: a stale source's
  /// cardinality contributions are scaled by
  /// (1 − stale_discount · staleness) and its signature still joins the
  /// union-of-S estimate. The default — degraded data beats no data.
  kLastKnownGood,
  /// Degraded sources are excluded from numerators AND denominators: the
  /// data QEFs renormalize over the fresh part of the universe, measuring
  /// "quality relative to what we can actually see".
  kExcludeRenormalize,
};

std::string_view DegradationPolicyName(DegradationPolicy policy);

/// Degradation knobs, held by the QualityModel.
struct DegradationOptions {
  DegradationPolicy policy = DegradationPolicy::kLastKnownGood;
  /// Cardinality weight lost per unit staleness under kLastKnownGood,
  /// in [0, 1]: weight = 1 − stale_discount · staleness.
  double stale_discount = 0.5;
};

/// Everything a QEF may look at when scoring a candidate source set S.
///
/// Built once per candidate by QualityModel::MakeContext, which precomputes
/// the aggregates shared by several QEFs (total cardinality, union-of-S
/// distinct estimate over cooperating sources, the Match(S) result) and
/// applies the model's degradation policy to sources with stale / partial /
/// missing statistics. On a fully fresh universe every policy yields the
/// same numbers, bit-identical to the pre-acquisition behavior.
struct EvalContext {
  const Universe* universe = nullptr;
  /// The candidate S (each id valid for *universe).
  const std::vector<SourceId>* sources = nullptr;
  /// Result of Match(S) for this candidate; may be null when the model has
  /// no matching QEF. When present and !valid, the candidate is infeasible
  /// and QualityModel::Evaluate returns 0 overall.
  const MatchResult* match = nullptr;

  /// Σ_{s∈S} |s| over all sources of S (raw, policy-independent).
  int64_t total_cardinality = 0;
  /// Policy-adjusted Σ over S — the Card numerator (equals
  /// total_cardinality when every source is fresh).
  double effective_cardinality = 0.0;
  /// Number of sources in S whose signature the policy admits.
  int cooperating_count = 0;
  /// Policy-adjusted Σ |s| over those cooperating sources.
  double cooperating_cardinality = 0.0;
  /// Estimated |∪S| over admitted signatures (0 if none cooperate).
  double union_estimate = 0.0;
  /// Sources in S with degraded (non-fresh) statistics.
  int degraded_count = 0;

  /// Card denominator under the active policy: Σ_{t∈U}|t|, or the fresh
  /// subset under kExcludeRenormalize.
  int64_t universe_cardinality = 0;
  /// Coverage denominator under the active policy: estimated |∪U| (or
  /// |∪ fresh U|).
  double universe_union_estimate = 0.0;
};

/// Incremental scorer for one QEF: scores a prepared EvalContext without
/// any of the per-candidate universe-wide work Evaluate may redo on each
/// call (min/max scans, characteristic lookups). Built once per search by
/// Qef::MakeDeltaScorer against an immutable universe; the DeltaEvaluator
/// (src/optimize/delta_evaluator.h) drives it from the solvers' flip loops.
///
/// Contract: Score(ctx) must return a double bit-identical to the owning
/// Qef's Evaluate(ctx) for every context the quality model can build over
/// that universe — the delta-vs-full oracle suite enforces this per QEF.
class QefDeltaScorer {
 public:
  virtual ~QefDeltaScorer() = default;
  virtual double Score(const EvalContext& ctx) const = 0;
};

/// A quality evaluation function F_k(S) ∈ [0, 1]; higher is better
/// (Section 2.3). Implementations must be stateless w.r.t. candidates so a
/// single instance can score many candidates during one search.
class Qef {
 public:
  virtual ~Qef() = default;

  /// Aggregate quality of the candidate described by `ctx`, in [0, 1].
  virtual double Evaluate(const EvalContext& ctx) const = 0;

  /// Stable identifier used in weight maps and reports.
  virtual std::string_view name() const = 0;

  /// Factory for this QEF's incremental scorer over `universe` (which must
  /// outlive the scorer and stay immutable while it is used). The default
  /// returns null, meaning the QEF cannot be scored without per-candidate
  /// global work — true for the matching-based QEFs (Match(S) is not
  /// delta-maintainable) and user lambdas (opaque) — and the DeltaEvaluator
  /// then falls back to full evaluation for the whole model.
  virtual std::unique_ptr<QefDeltaScorer> MakeDeltaScorer(
      const Universe& universe) const {
    (void)universe;
    return nullptr;
  }
};

/// F1: matching quality — how well the schemas of S match each other
/// (the average GA quality of the generated mediated schema, Section 3).
class MatchingQualityQef final : public Qef {
 public:
  double Evaluate(const EvalContext& ctx) const override;
  std::string_view name() const override { return "matching"; }
};

/// F2: Card(S) = Σ_{s∈S}|s| / Σ_{t∈U}|t| — the amount of data in S
/// relative to the whole universe (Section 4).
class CardinalityQef final : public Qef {
 public:
  double Evaluate(const EvalContext& ctx) const override;
  std::string_view name() const override { return "cardinality"; }
  std::unique_ptr<QefDeltaScorer> MakeDeltaScorer(
      const Universe& universe) const override;
};

/// F3: Coverage(S) = |∪S| / |∪U| — how much of the universe's distinct
/// data S can deliver (Section 4). Uses the PCSA union estimates;
/// non-cooperating sources contribute nothing (Section 4 fallback).
class CoverageQef final : public Qef {
 public:
  double Evaluate(const EvalContext& ctx) const override;
  std::string_view name() const override { return "coverage"; }
  std::unique_ptr<QefDeltaScorer> MakeDeltaScorer(
      const Universe& universe) const override;
};

/// F4: Redundancy(S) — degree of overlap among the sources of S, oriented
/// so 0 is the worst (all sources identical) and 1 the best (pairwise
/// disjoint), as Section 4 requires.
class RedundancyQef final : public Qef {
 public:
  enum class Mode {
    /// (|S'| − o) / (|S'| − 1) with overlap factor o = Σ|s| / |∪S'| over the
    /// cooperating subset S'. Attains exactly 0 and 1 at the stated
    /// extremes (DESIGN.md §2 reconstruction; default).
    kOverlapFactor,
    /// |∪S'| / Σ_{s∈S'}|s| — simpler ratio, used by the design ablation.
    kUnionRatio,
  };

  explicit RedundancyQef(Mode mode = Mode::kOverlapFactor) : mode_(mode) {}
  double Evaluate(const EvalContext& ctx) const override;
  std::string_view name() const override { return "redundancy"; }
  std::unique_ptr<QefDeltaScorer> MakeDeltaScorer(
      const Universe& universe) const override;
  Mode mode() const { return mode_; }

 private:
  Mode mode_;
};

/// Schema coherence: the fraction of the selected sources' attributes
/// that the generated mediated schema covers (i.e. that matched *some*
/// other attribute). F1 scores how well the formed GAs match internally
/// but is blind to attributes that matched nothing; this QEF is the
/// complementary signal — it is what drops a source that "expresses the
/// concepts it contains in a way that is different from other data
/// sources" (Section 1's semantic-coherence argument). Built as one of the
/// user-defined QEFs Section 2.3 allows.
class SchemaCoverageQef final : public Qef {
 public:
  double Evaluate(const EvalContext& ctx) const override;
  std::string_view name() const override { return "schema-coverage"; }
};

/// How a CharacteristicQef folds per-source values into [0, 1] (Section 5).
enum class Aggregation {
  /// The paper's wsum: cardinality-weighted mean of min-max-normalized
  /// values — a high-MTTF source with many tuples counts more than a
  /// high-MTTF source with few.
  kWeightedSum,
  kMean,  ///< unweighted mean of normalized values
  kMin,   ///< worst normalized value in S
  kMax,   ///< best normalized value in S
};

/// QEF over a named per-source characteristic (latency, availability, fees,
/// reputation, MTTF, ...). Values are positive reals of any magnitude;
/// normalization is min-max over the sources of U that define the
/// characteristic. Sources lacking the characteristic contribute the worst
/// normalized value (0).
class CharacteristicQef final : public Qef {
 public:
  /// `invert` flips the normalization for smaller-is-better characteristics
  /// (latency, fees): normalized = (max − q) / (max − min).
  CharacteristicQef(std::string characteristic, Aggregation aggregation,
                    bool invert = false);

  double Evaluate(const EvalContext& ctx) const override;
  std::string_view name() const override { return display_name_; }
  /// Table-based scorer: the universe-wide min/max scan and every
  /// per-source Normalized() value are computed once instead of per
  /// candidate — the largest single saving of the delta path.
  std::unique_ptr<QefDeltaScorer> MakeDeltaScorer(
      const Universe& universe) const override;

  const std::string& characteristic() const { return characteristic_; }
  Aggregation aggregation() const { return aggregation_; }
  bool invert() const { return invert_; }

 private:
  /// Normalized value of one source, or 0 if it lacks the characteristic or
  /// the universe-wide range is degenerate (then every source scores 1).
  double Normalized(const Universe& universe, SourceId s, double min_u,
                    double max_u) const;

  std::string characteristic_;
  std::string display_name_;
  Aggregation aggregation_;
  bool invert_;
};

/// User-defined QEF from a callable — "the user can also define other QEFs"
/// (Section 2.3).
class LambdaQef final : public Qef {
 public:
  LambdaQef(std::string name,
            std::function<double(const EvalContext&)> function)
      : name_(std::move(name)), function_(std::move(function)) {}

  double Evaluate(const EvalContext& ctx) const override {
    return function_(ctx);
  }
  std::string_view name() const override { return name_; }

 private:
  std::string name_;
  std::function<double(const EvalContext&)> function_;
};

}  // namespace ube

#endif  // UBE_QEF_QEF_H_
