#include "catalog/change_feed.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <string>
#include <utility>

namespace ube {

namespace {

uint64_t DoubleBits(double v) { return std::bit_cast<uint64_t>(v); }

uint64_t HashString(const std::string& s) {
  uint64_t h = 1469598103934665603ull;
  for (char c : s) h = (h ^ static_cast<uint8_t>(c)) * 1099511628211ull;
  return h;
}

bool BadWeight(double w) { return !std::isfinite(w) || w < 0.0; }

}  // namespace

std::string_view ChurnEventKindName(ChurnEventKind kind) {
  switch (kind) {
    case ChurnEventKind::kAdd:
      return "add";
    case ChurnEventKind::kRemove:
      return "remove";
    case ChurnEventKind::kStaleRefresh:
      return "stale-refresh";
    case ChurnEventKind::kDrift:
      return "drift";
    case ChurnEventKind::kAttrRename:
      return "attr-rename";
    case ChurnEventKind::kAttrAdd:
      return "attr-add";
    case ChurnEventKind::kAttrDrop:
      return "attr-drop";
  }
  return "unknown";
}

bool IsSchemaDrift(ChurnEventKind kind) {
  return kind == ChurnEventKind::kAttrRename ||
         kind == ChurnEventKind::kAttrAdd ||
         kind == ChurnEventKind::kAttrDrop;
}

// --- ChurnFeedDriver -----------------------------------------------------

ChurnFeedDriver::ChurnFeedDriver(const Universe& universe,
                                 const ChurnFeedConfig& config)
    : config_(config), rng_(SplitMix64(config.seed ^ 0xc4a7a106feedull)) {
  for (SourceId s = 0; s < universe.num_sources(); ++s) {
    const DataSource& source = universe.source(s);
    (source.available() ? alive_ : dead_).push_back(s);
    schemas_.push_back(source.schema().names());
    names_.push_back(source.name());
    if (source.available()) {
      Template tmpl;
      tmpl.attributes = source.schema().names();
      tmpl.cardinality = source.cardinality();
      tmpl.characteristics.assign(source.characteristics().begin(),
                                  source.characteristics().end());
      for (const std::string& attr : tmpl.attributes) {
        attribute_pool_.push_back(attr);
      }
      templates_.push_back(std::move(tmpl));
    }
  }
  next_new_ = universe.num_sources();
  mean_gap_ms_ =
      config.events_per_sec > 0.0 ? 1000.0 / config.events_per_sec : 0.0;
}

Result<ChurnFeedDriver> ChurnFeedDriver::Make(const Universe& universe,
                                              const ChurnFeedConfig& config) {
  if (!std::isfinite(config.events_per_sec)) {
    return Status::InvalidArgument(
        "ChurnFeedConfig::events_per_sec must be finite");
  }
  if (!std::isfinite(config.horizon_ms)) {
    return Status::InvalidArgument(
        "ChurnFeedConfig::horizon_ms must be finite");
  }
  struct Named {
    const char* name;
    double value;
  };
  const Named weights[] = {
      {"add_weight", config.add_weight},
      {"remove_weight", config.remove_weight},
      {"stale_weight", config.stale_weight},
      {"drift_weight", config.drift_weight},
      {"attr_rename_weight", config.attr_rename_weight},
      {"attr_add_weight", config.attr_add_weight},
      {"attr_drop_weight", config.attr_drop_weight},
  };
  for (const Named& w : weights) {
    if (BadWeight(w.value)) {
      return Status::InvalidArgument(
          std::string("ChurnFeedConfig::") + w.name +
          " must be finite and >= 0, got " + std::to_string(w.value));
    }
  }
  if (!std::isfinite(config.revive_fraction) || config.revive_fraction < 0.0 ||
      config.revive_fraction > 1.0) {
    return Status::InvalidArgument(
        "ChurnFeedConfig::revive_fraction must be in [0, 1]");
  }
  if (!std::isfinite(config.refresh_success) ||
      config.refresh_success < 0.0 || config.refresh_success > 1.0) {
    return Status::InvalidArgument(
        "ChurnFeedConfig::refresh_success must be in [0, 1]");
  }
  if (config.min_alive < 0) {
    return Status::InvalidArgument("ChurnFeedConfig::min_alive must be >= 0");
  }
  if (config.min_alive > universe.num_available()) {
    return Status::InvalidArgument(
        "ChurnFeedConfig::min_alive (" + std::to_string(config.min_alive) +
        ") exceeds the universe's alive count (" +
        std::to_string(universe.num_available()) +
        "); the feed could never honor the floor");
  }
  return ChurnFeedDriver(universe, config);
}

double ChurnFeedDriver::NextEventTime() {
  if (mean_gap_ms_ <= 0.0 || config_.horizon_ms <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  t_ += -mean_gap_ms_ * std::log1p(-rng_.UniformDouble());
  return t_;
}

const std::string& ChurnFeedDriver::NameOf(SourceId s) const {
  UBE_CHECK(s >= 0 && static_cast<size_t>(s) < names_.size(),
            "ChurnFeedDriver::NameOf: source out of range");
  return names_[static_cast<size_t>(s)];
}

bool ChurnFeedDriver::IsAlive(SourceId s) const {
  return std::find(alive_.begin(), alive_.end(), s) != alive_.end();
}

std::string ChurnFeedDriver::MutateName(const std::string& base) {
  static constexpr const char* kSuffixes[] = {"_2", "_id", "_name", "_alt"};
  static constexpr const char* kPrefixes[] = {"src_", "new_", "the_"};
  if (rng_.Bernoulli(0.5)) {
    return base + kSuffixes[rng_.UniformInt(uint64_t{4})];
  }
  return std::string(kPrefixes[rng_.UniformInt(uint64_t{3})]) + base;
}

std::unique_ptr<DataSource> ChurnFeedDriver::SynthesizeSource(int ordinal) {
  // A brand-new source discovered by the feed: a perturbed clone of one of
  // the initial universe's alive sources (subset of its attributes, scaled
  // cardinality, copied characteristics). New sources arrive uncooperative —
  // no signature until a full probe, which keeps adds conservative for the
  // coverage QEF. Falls back to a tiny generic schema when the initial
  // universe had nothing alive to clone.
  const std::string name = "feed-" + std::to_string(ordinal);
  if (templates_.empty()) {
    auto source =
        std::make_unique<DataSource>(name, SourceSchema({"title", "author"}));
    source->set_cardinality(100);
    return source;
  }
  const Template& tmpl = templates_[rng_.UniformInt(templates_.size())];
  std::vector<std::string> attributes;
  for (const std::string& attr : tmpl.attributes) {
    if (attributes.empty() || !rng_.Bernoulli(0.2)) attributes.push_back(attr);
  }
  auto source =
      std::make_unique<DataSource>(name, SourceSchema(std::move(attributes)));
  source->set_cardinality(std::max<int64_t>(
      1, static_cast<int64_t>(static_cast<double>(tmpl.cardinality) *
                              rng_.UniformDouble(0.5, 2.0))));
  for (const auto& [key, value] : tmpl.characteristics) {
    source->SetCharacteristic(key, value);
  }
  return source;
}

std::optional<ChurnEvent> ChurnFeedDriver::DrawBase(double t) {
  // Eligibility gates per kind (weights of kinds with no valid target drop
  // out of the draw, so a generated trace always applies cleanly).
  std::vector<SourceId> renameable;  // alive with >= 1 attribute
  std::vector<SourceId> droppable;   // alive with >= 2 attributes
  for (SourceId s : alive_) {
    const size_t width = schemas_[static_cast<size_t>(s)].size();
    if (width >= 1) renameable.push_back(s);
    if (width >= 2) droppable.push_back(s);
  }
  const double wa = config_.add_weight;
  const double wr =
      static_cast<int>(alive_.size()) > std::max(0, config_.min_alive)
          ? config_.remove_weight
          : 0.0;
  const double ws = alive_.empty() ? 0.0 : config_.stale_weight;
  const double wd = alive_.empty() ? 0.0 : config_.drift_weight;
  const double wrn = renameable.empty() ? 0.0 : config_.attr_rename_weight;
  const double waa = alive_.empty() ? 0.0 : config_.attr_add_weight;
  const double wad = droppable.empty() ? 0.0 : config_.attr_drop_weight;
  const double total = wa + wr + ws + wd + wrn + waa + wad;
  if (total <= 0.0) return std::nullopt;
  const double draw = rng_.UniformDouble() * total;

  ChurnEvent event;
  event.time_ms = t;
  if (draw < wa) {
    event.kind = ChurnEventKind::kAdd;
    if (!dead_.empty() && rng_.Bernoulli(config_.revive_fraction)) {
      event.revive = true;
      event.source = dead_.front();
      dead_.erase(dead_.begin());
    } else {
      event.source = next_new_++;
      event.added = SynthesizeSource(synthesized_++);
      schemas_.push_back(event.added->schema().names());
      names_.push_back(event.added->name());
    }
    alive_.push_back(event.source);
  } else if (draw < wa + wr) {
    event.kind = ChurnEventKind::kRemove;
    const size_t pick = rng_.UniformInt(alive_.size());
    event.source = alive_[pick];
    alive_.erase(alive_.begin() + static_cast<long>(pick));
    dead_.push_back(event.source);
  } else if (draw < wa + wr + ws) {
    event.kind = ChurnEventKind::kStaleRefresh;
    event.source = alive_[rng_.UniformInt(alive_.size())];
    event.staleness = rng_.Bernoulli(config_.refresh_success)
                          ? 0.0
                          : rng_.UniformDouble(0.1, 0.9);
  } else if (draw < wa + wr + ws + wd) {
    event.kind = ChurnEventKind::kDrift;
    event.source = alive_[rng_.UniformInt(alive_.size())];
    event.cardinality_factor = rng_.UniformDouble(0.6, 1.5);
    event.characteristic_factor = rng_.UniformDouble(0.8, 1.25);
  } else if (draw < wa + wr + ws + wd + wrn) {
    event.kind = ChurnEventKind::kAttrRename;
    event.source = renameable[rng_.UniformInt(renameable.size())];
    std::vector<std::string>& schema = schemas_[static_cast<size_t>(event.source)];
    event.attr_index = static_cast<int32_t>(rng_.UniformInt(schema.size()));
    event.attr_name = MutateName(schema[static_cast<size_t>(event.attr_index)]);
    schema[static_cast<size_t>(event.attr_index)] = event.attr_name;
  } else if (draw < wa + wr + ws + wd + wrn + waa) {
    event.kind = ChurnEventKind::kAttrAdd;
    event.source = alive_[rng_.UniformInt(alive_.size())];
    std::vector<std::string>& schema = schemas_[static_cast<size_t>(event.source)];
    event.attr_index = static_cast<int32_t>(schema.size());
    // Half the new attributes are verbatim draws from the initial pool
    // (likely to match something — the interesting case for the matcher),
    // half are mutated variants.
    if (attribute_pool_.empty()) {
      event.attr_name = "attr-" + std::to_string(synthesized_++);
    } else {
      const std::string& base =
          attribute_pool_[rng_.UniformInt(attribute_pool_.size())];
      event.attr_name = rng_.Bernoulli(0.5) ? base : MutateName(base);
    }
    schema.push_back(event.attr_name);
  } else {
    event.kind = ChurnEventKind::kAttrDrop;
    event.source = droppable[rng_.UniformInt(droppable.size())];
    std::vector<std::string>& schema = schemas_[static_cast<size_t>(event.source)];
    event.attr_index = static_cast<int32_t>(rng_.UniformInt(schema.size()));
    schema.erase(schema.begin() + event.attr_index);
  }
  return event;
}

ChurnEvent ChurnFeedDriver::ForceRemove(double t, SourceId s) {
  auto it = std::find(alive_.begin(), alive_.end(), s);
  UBE_CHECK(it != alive_.end(), "ForceRemove of a source that is not alive");
  alive_.erase(it);
  dead_.push_back(s);
  ChurnEvent event;
  event.time_ms = t;
  event.kind = ChurnEventKind::kRemove;
  event.source = s;
  return event;
}

ChurnEvent ChurnFeedDriver::ForceRevive(double t, SourceId s) {
  auto it = std::find(dead_.begin(), dead_.end(), s);
  UBE_CHECK(it != dead_.end(), "ForceRevive of a source that is not dead");
  dead_.erase(it);
  alive_.push_back(s);
  ChurnEvent event;
  event.time_ms = t;
  event.kind = ChurnEventKind::kAdd;
  event.source = s;
  event.revive = true;
  return event;
}

ChurnEvent ChurnFeedDriver::ForceStaleRefresh(double t, SourceId s,
                                              double staleness) {
  UBE_CHECK(IsAlive(s), "ForceStaleRefresh of a source that is not alive");
  ChurnEvent event;
  event.time_ms = t;
  event.kind = ChurnEventKind::kStaleRefresh;
  event.source = s;
  event.staleness = staleness;
  return event;
}

// --- GenerateChurnTrace --------------------------------------------------

Result<ChurnTrace> GenerateChurnTrace(const Universe& universe,
                                      const ChurnFeedConfig& config) {
  Result<ChurnFeedDriver> driver = ChurnFeedDriver::Make(universe, config);
  if (!driver.ok()) return driver.status();

  ChurnTrace trace;
  trace.config = config;
  while (true) {
    const double t = driver->NextEventTime();
    if (t > config.horizon_ms) break;
    std::optional<ChurnEvent> event = driver->DrawBase(t);
    if (event.has_value()) trace.events.push_back(std::move(*event));
  }
  return trace;
}

uint64_t ChurnTraceFingerprint(const ChurnTrace& trace) {
  uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](uint64_t v) { h = SplitMix64(h ^ v); };
  mix(trace.events.size());
  for (const ChurnEvent& event : trace.events) {
    mix(DoubleBits(event.time_ms));
    mix(static_cast<uint64_t>(event.kind));
    mix(static_cast<uint64_t>(static_cast<uint32_t>(event.source)));
    mix(event.revive ? 1 : 0);
    mix(DoubleBits(event.staleness));
    mix(DoubleBits(event.cardinality_factor));
    mix(DoubleBits(event.characteristic_factor));
    mix(static_cast<uint64_t>(static_cast<uint32_t>(event.attr_index)));
    mix(HashString(event.attr_name));
    if (event.added != nullptr) {
      mix(HashString(event.added->name()));
      mix(static_cast<uint64_t>(event.added->cardinality()));
      for (const std::string& attr : event.added->schema().names()) {
        mix(HashString(attr));
      }
      for (const auto& [key, value] : event.added->characteristics()) {
        mix(HashString(key));
        mix(DoubleBits(value));
      }
      mix(event.added->has_signature() ? 1 : 0);
    }
  }
  return h;
}

}  // namespace ube
