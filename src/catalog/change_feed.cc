#include "catalog/change_feed.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <string>
#include <utility>

#include "util/rng.h"

namespace ube {

namespace {

/// A brand-new source discovered by the feed: a perturbed clone of one of
/// the initial universe's alive sources (subset of its attributes, scaled
/// cardinality, copied characteristics). New sources arrive uncooperative —
/// no signature until a full probe, which keeps adds conservative for the
/// coverage QEF. Falls back to a tiny generic schema when the initial
/// universe had nothing alive to clone.
std::unique_ptr<DataSource> SynthesizeSource(
    Rng& rng, const Universe& universe,
    const std::vector<SourceId>& template_pool, int ordinal) {
  const std::string name = "feed-" + std::to_string(ordinal);
  if (template_pool.empty()) {
    auto source = std::make_unique<DataSource>(
        name, SourceSchema({"title", "author"}));
    source->set_cardinality(100);
    return source;
  }
  const DataSource& tmpl = universe.source(
      template_pool[rng.UniformInt(template_pool.size())]);
  std::vector<std::string> attributes;
  for (const std::string& attr : tmpl.schema().names()) {
    if (attributes.empty() || !rng.Bernoulli(0.2)) attributes.push_back(attr);
  }
  auto source =
      std::make_unique<DataSource>(name, SourceSchema(std::move(attributes)));
  source->set_cardinality(std::max<int64_t>(
      1, static_cast<int64_t>(static_cast<double>(tmpl.cardinality()) *
                              rng.UniformDouble(0.5, 2.0))));
  for (const auto& [key, value] : tmpl.characteristics()) {
    source->SetCharacteristic(key, value);
  }
  return source;
}

uint64_t DoubleBits(double v) { return std::bit_cast<uint64_t>(v); }

uint64_t HashString(const std::string& s) {
  uint64_t h = 1469598103934665603ull;
  for (char c : s) h = (h ^ static_cast<uint8_t>(c)) * 1099511628211ull;
  return h;
}

}  // namespace

std::string_view ChurnEventKindName(ChurnEventKind kind) {
  switch (kind) {
    case ChurnEventKind::kAdd:
      return "add";
    case ChurnEventKind::kRemove:
      return "remove";
    case ChurnEventKind::kStaleRefresh:
      return "stale-refresh";
    case ChurnEventKind::kDrift:
      return "drift";
  }
  return "unknown";
}

ChurnTrace GenerateChurnTrace(const Universe& universe,
                              const ChurnFeedConfig& config) {
  ChurnTrace trace;
  trace.config = config;
  if (config.events_per_sec <= 0.0 || config.horizon_ms <= 0.0) return trace;

  Rng rng(SplitMix64(config.seed ^ 0xc4a7a106feedull));
  std::vector<SourceId> alive;
  std::vector<SourceId> dead;  // oldest first; revives pop the front
  for (SourceId s = 0; s < universe.num_sources(); ++s) {
    (universe.source(s).available() ? alive : dead).push_back(s);
  }
  // New-source templates come from the initial universe only (generation
  // never materializes the evolving universe).
  const std::vector<SourceId> template_pool = alive;
  SourceId next_new = universe.num_sources();
  int synthesized = 0;

  const double mean_gap_ms = 1000.0 / config.events_per_sec;
  double t = 0.0;
  while (true) {
    t += -mean_gap_ms * std::log1p(-rng.UniformDouble());
    if (t > config.horizon_ms) break;

    const double wa = std::max(0.0, config.add_weight);
    const double wr =
        static_cast<int>(alive.size()) > std::max(0, config.min_alive)
            ? std::max(0.0, config.remove_weight)
            : 0.0;
    const double ws = alive.empty() ? 0.0 : std::max(0.0, config.stale_weight);
    const double wd = alive.empty() ? 0.0 : std::max(0.0, config.drift_weight);
    const double total = wa + wr + ws + wd;
    if (total <= 0.0) continue;
    const double draw = rng.UniformDouble() * total;

    ChurnEvent event;
    event.time_ms = t;
    if (draw < wa) {
      event.kind = ChurnEventKind::kAdd;
      if (!dead.empty() && rng.Bernoulli(config.revive_fraction)) {
        event.revive = true;
        event.source = dead.front();
        dead.erase(dead.begin());
      } else {
        event.source = next_new++;
        event.added =
            SynthesizeSource(rng, universe, template_pool, synthesized++);
      }
      alive.push_back(event.source);
    } else if (draw < wa + wr) {
      event.kind = ChurnEventKind::kRemove;
      const size_t pick = rng.UniformInt(alive.size());
      event.source = alive[pick];
      alive.erase(alive.begin() + static_cast<long>(pick));
      dead.push_back(event.source);
    } else if (draw < wa + wr + ws) {
      event.kind = ChurnEventKind::kStaleRefresh;
      event.source = alive[rng.UniformInt(alive.size())];
      event.staleness = rng.Bernoulli(config.refresh_success)
                            ? 0.0
                            : rng.UniformDouble(0.1, 0.9);
    } else {
      event.kind = ChurnEventKind::kDrift;
      event.source = alive[rng.UniformInt(alive.size())];
      event.cardinality_factor = rng.UniformDouble(0.6, 1.5);
      event.characteristic_factor = rng.UniformDouble(0.8, 1.25);
    }
    trace.events.push_back(std::move(event));
  }
  return trace;
}

uint64_t ChurnTraceFingerprint(const ChurnTrace& trace) {
  uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](uint64_t v) { h = SplitMix64(h ^ v); };
  mix(trace.events.size());
  for (const ChurnEvent& event : trace.events) {
    mix(DoubleBits(event.time_ms));
    mix(static_cast<uint64_t>(event.kind));
    mix(static_cast<uint64_t>(static_cast<uint32_t>(event.source)));
    mix(event.revive ? 1 : 0);
    mix(DoubleBits(event.staleness));
    mix(DoubleBits(event.cardinality_factor));
    mix(DoubleBits(event.characteristic_factor));
    if (event.added != nullptr) {
      mix(HashString(event.added->name()));
      mix(static_cast<uint64_t>(event.added->cardinality()));
      for (const std::string& attr : event.added->schema().names()) {
        mix(HashString(attr));
      }
      for (const auto& [key, value] : event.added->characteristics()) {
        mix(HashString(key));
        mix(DoubleBits(value));
      }
      mix(event.added->has_signature() ? 1 : 0);
    }
  }
  return h;
}

}  // namespace ube
