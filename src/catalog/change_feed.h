#ifndef UBE_CATALOG_CHANGE_FEED_H_
#define UBE_CATALOG_CHANGE_FEED_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "source/data_source.h"
#include "source/universe.h"
#include "util/result.h"
#include "util/rng.h"

namespace ube {

/// What happened to the catalog at one instant of simulated time.
enum class ChurnEventKind {
  kAdd,           ///< a source appeared (brand new, or a dead one revived)
  kRemove,        ///< a source died (becomes an unavailable shell)
  kStaleRefresh,  ///< a statistics re-probe completed (fresh or aged)
  kDrift,         ///< data characteristics drifted (cardinality, char.*)
  kAttrRename,    ///< schema drift: one attribute was renamed in place
  kAttrAdd,       ///< schema drift: a new attribute appeared (appended)
  kAttrDrop,      ///< schema drift: one attribute disappeared
};

inline constexpr int kNumChurnEventKinds = 7;

std::string_view ChurnEventKindName(ChurnEventKind kind);

/// True for the three schema-drift kinds (attribute rename/add/drop).
bool IsSchemaDrift(ChurnEventKind kind);

/// One catalog change on the simulated-ms clock. Events carry their full
/// payload, so applying a trace needs no randomness: the generator draws
/// everything up front and replay is bit-identical from the config alone.
/// Move-only (a brand-new source owns its description).
struct ChurnEvent {
  double time_ms = 0.0;
  ChurnEventKind kind = ChurnEventKind::kAdd;
  /// Target id. For kRemove / kStaleRefresh / kDrift / the attribute kinds
  /// and a revive-kAdd this names an existing source; for a brand-new kAdd
  /// it is the id the source will receive (always one past the current
  /// maximum, so ids stay dense and a patched similarity graph matches a
  /// rebuild's layout).
  SourceId source = -1;
  /// Description of a brand-new source (kAdd with revive == false).
  std::unique_ptr<DataSource> added;
  /// kAdd: true = restore the tombstoned description of `source` instead
  /// of adding a new one.
  bool revive = false;
  /// kStaleRefresh: 0 = the re-probe succeeded (statistics fresh again);
  /// > 0 = it failed and the last-known-good snapshot aged to this value.
  double staleness = 0.0;
  /// kDrift: the source's cardinality is scaled by this factor.
  double cardinality_factor = 1.0;
  /// kDrift: every named characteristic is scaled by this factor.
  double characteristic_factor = 1.0;
  /// kAttrRename / kAttrDrop: index of the affected attribute. For
  /// kAttrAdd, the index the new attribute will occupy — must equal the
  /// schema's width at apply time (the attribute-level analogue of the
  /// dense-id rule for kAdd).
  int32_t attr_index = -1;
  /// kAttrRename: the attribute's new name. kAttrAdd: the new attribute's
  /// name. Empty otherwise.
  std::string attr_name;

  ChurnEvent() = default;
  ChurnEvent(ChurnEvent&&) = default;
  ChurnEvent& operator=(ChurnEvent&&) = default;
  ChurnEvent(const ChurnEvent&) = delete;
  ChurnEvent& operator=(const ChurnEvent&) = delete;
};

/// Knobs of the deterministic feed. The replay contract mirrors PR-4's
/// FaultPlan: the same (seed, events_per_sec, horizon_ms) over the same
/// universe always yields the same trace, checkable via
/// ChurnTraceFingerprint.
struct ChurnFeedConfig {
  uint64_t seed = 7;
  /// Mean event rate; inter-arrival gaps are exponential with mean
  /// 1000 / events_per_sec milliseconds. <= 0 yields an empty trace.
  double events_per_sec = 1.0;
  /// Events are scheduled in (0, horizon_ms].
  double horizon_ms = 10'000.0;
  /// Relative weights of the event kinds. Kinds with no valid target at
  /// draw time (e.g. kRemove at the alive floor, kAttrDrop when no alive
  /// source has two attributes) drop out of the draw. Negative or
  /// nonfinite weights are rejected by GenerateChurnTrace.
  double add_weight = 1.0;
  double remove_weight = 1.0;
  double stale_weight = 2.0;
  double drift_weight = 2.0;
  /// Schema-drift weights: rename an attribute in place, append a new
  /// attribute, drop an existing one. Zero all three for the pre-drift
  /// source-level-only feed.
  double attr_rename_weight = 1.0;
  double attr_add_weight = 0.5;
  double attr_drop_weight = 0.5;
  /// Fraction of kAdd events that revive the oldest dead source when one
  /// exists; the rest synthesize brand-new sources ("feed-<n>").
  double revive_fraction = 0.5;
  /// Probability that a kStaleRefresh re-probe succeeds (staleness 0).
  double refresh_success = 0.5;
  /// kRemove never shrinks the alive set below this.
  int min_alive = 2;
};

/// A complete, replayable schedule of catalog churn: events in
/// nondecreasing time order, all payloads materialized.
struct ChurnTrace {
  ChurnFeedConfig config;
  std::vector<ChurnEvent> events;
};

/// The evolving-catalog state machine behind GenerateChurnTrace, exposed so
/// the fault-coupled feed (src/source/fault_coupled_feed.h) can interleave
/// probe-driven events with base churn over ONE shared state: alive/dead
/// sets, per-source schemas (drift-adjusted), tombstone ordering and the
/// synthesized-source counter all stay consistent, so every event either
/// path emits is valid to LiveUniverse::Apply in trace order.
///
/// Deterministic: one Rng seeded from the config; the forced mutations
/// consume no randomness, so a driver used with zero forced events replays
/// GenerateChurnTrace's stream bit for bit.
class ChurnFeedDriver {
 public:
  /// Validates `config` against the universe's current state (see
  /// GenerateChurnTrace for the rejection rules) and snapshots the evolving
  /// state from it. The universe is not retained.
  static Result<ChurnFeedDriver> Make(const Universe& universe,
                                      const ChurnFeedConfig& config);

  /// Absolute simulated time of the next base-feed event; consumes the
  /// exponential gap draw. Returns a value past horizon_ms() when the
  /// schedule is exhausted (or the rate is <= 0).
  double NextEventTime();

  /// Draws one base churn event at time `t`, updating the evolving state.
  /// nullopt when every kind's weight is gated out at this instant.
  std::optional<ChurnEvent> DrawBase(double t);

  // --- forced (fault-driven) mutations ----------------------------------

  bool IsAlive(SourceId s) const;
  const std::vector<SourceId>& alive() const { return alive_; }
  /// Name of source `s` in the evolving catalog (synthesized sources
  /// included) — fault plans key probe streams off names.
  const std::string& NameOf(SourceId s) const;

  /// A kRemove of alive source `s` at time `t`.
  ChurnEvent ForceRemove(double t, SourceId s);
  /// A revive-kAdd of dead source `s` at time `t`.
  ChurnEvent ForceRevive(double t, SourceId s);
  /// A kStaleRefresh of alive source `s` (staleness 0 = successful probe).
  ChurnEvent ForceStaleRefresh(double t, SourceId s, double staleness);

  double horizon_ms() const { return config_.horizon_ms; }
  int min_alive() const { return config_.min_alive; }

 private:
  ChurnFeedDriver(const Universe& universe, const ChurnFeedConfig& config);

  std::unique_ptr<DataSource> SynthesizeSource(int ordinal);
  std::string MutateName(const std::string& base);

  ChurnFeedConfig config_;
  Rng rng_;
  double mean_gap_ms_ = 0.0;
  double t_ = 0.0;
  std::vector<SourceId> alive_;
  std::vector<SourceId> dead_;  // oldest first; base revives pop the front
  /// Evolving per-source schemas (drift-adjusted; frozen while dead, which
  /// mirrors the applier's tombstone-restore semantics).
  std::vector<std::vector<std::string>> schemas_;
  std::vector<std::string> names_;
  /// Immutable clone templates from the initial universe (schema +
  /// cardinality + characteristics of every initially-alive source).
  struct Template {
    std::vector<std::string> attributes;
    int64_t cardinality = 0;
    std::vector<std::pair<std::string, double>> characteristics;
  };
  std::vector<Template> templates_;
  /// Flat pool of initial attribute names (kAttrAdd draws from it).
  std::vector<std::string> attribute_pool_;
  SourceId next_new_ = 0;
  int synthesized_ = 0;
};

/// Generates the full schedule for `config` against the current state of
/// `universe` (alive/dead sets and new-source templates are derived from
/// it; the universe itself is not modified). Deterministic: a pure function
/// of the universe's content and the config.
///
/// Rejects malformed configs with InvalidArgument instead of clamping:
/// negative or nonfinite kind weights, nonfinite events_per_sec or
/// horizon_ms, revive_fraction / refresh_success outside [0, 1], negative
/// min_alive, and min_alive above the universe's current alive count.
Result<ChurnTrace> GenerateChurnTrace(const Universe& universe,
                                      const ChurnFeedConfig& config);

/// Order-sensitive structural hash over the whole trace — times, kinds,
/// targets and full payloads (drift attribute indices and names included).
/// The bit-identity oracle for replay tests.
uint64_t ChurnTraceFingerprint(const ChurnTrace& trace);

}  // namespace ube

#endif  // UBE_CATALOG_CHANGE_FEED_H_
