#ifndef UBE_CATALOG_CHANGE_FEED_H_
#define UBE_CATALOG_CHANGE_FEED_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "source/data_source.h"
#include "source/universe.h"

namespace ube {

/// What happened to the catalog at one instant of simulated time.
enum class ChurnEventKind {
  kAdd,           ///< a source appeared (brand new, or a dead one revived)
  kRemove,        ///< a source died (becomes an unavailable shell)
  kStaleRefresh,  ///< a statistics re-probe completed (fresh or aged)
  kDrift,         ///< data characteristics drifted (cardinality, char.*)
};

std::string_view ChurnEventKindName(ChurnEventKind kind);

/// One catalog change on the simulated-ms clock. Events carry their full
/// payload, so applying a trace needs no randomness: the generator draws
/// everything up front and replay is bit-identical from the config alone.
/// Move-only (a brand-new source owns its description).
struct ChurnEvent {
  double time_ms = 0.0;
  ChurnEventKind kind = ChurnEventKind::kAdd;
  /// Target id. For kRemove / kStaleRefresh / kDrift and a revive-kAdd this
  /// names an existing source; for a brand-new kAdd it is the id the source
  /// will receive (always one past the current maximum, so ids stay dense
  /// and a patched similarity graph matches a rebuild's layout).
  SourceId source = -1;
  /// Description of a brand-new source (kAdd with revive == false).
  std::unique_ptr<DataSource> added;
  /// kAdd: true = restore the tombstoned description of `source` instead
  /// of adding a new one.
  bool revive = false;
  /// kStaleRefresh: 0 = the re-probe succeeded (statistics fresh again);
  /// > 0 = it failed and the last-known-good snapshot aged to this value.
  double staleness = 0.0;
  /// kDrift: the source's cardinality is scaled by this factor.
  double cardinality_factor = 1.0;
  /// kDrift: every named characteristic is scaled by this factor.
  double characteristic_factor = 1.0;

  ChurnEvent() = default;
  ChurnEvent(ChurnEvent&&) = default;
  ChurnEvent& operator=(ChurnEvent&&) = default;
  ChurnEvent(const ChurnEvent&) = delete;
  ChurnEvent& operator=(const ChurnEvent&) = delete;
};

/// Knobs of the deterministic feed. The replay contract mirrors PR-4's
/// FaultPlan: the same (seed, events_per_sec, horizon_ms) over the same
/// universe always yields the same trace, checkable via
/// ChurnTraceFingerprint.
struct ChurnFeedConfig {
  uint64_t seed = 7;
  /// Mean event rate; inter-arrival gaps are exponential with mean
  /// 1000 / events_per_sec milliseconds. <= 0 yields an empty trace.
  double events_per_sec = 1.0;
  /// Events are scheduled in (0, horizon_ms].
  double horizon_ms = 10'000.0;
  /// Relative weights of the four event kinds. Kinds with no valid target
  /// at draw time (e.g. kRemove at the alive floor) drop out of the draw.
  double add_weight = 1.0;
  double remove_weight = 1.0;
  double stale_weight = 2.0;
  double drift_weight = 2.0;
  /// Fraction of kAdd events that revive the oldest dead source when one
  /// exists; the rest synthesize brand-new sources ("feed-<n>").
  double revive_fraction = 0.5;
  /// Probability that a kStaleRefresh re-probe succeeds (staleness 0).
  double refresh_success = 0.5;
  /// kRemove never shrinks the alive set below this.
  int min_alive = 2;
};

/// A complete, replayable schedule of catalog churn: events in
/// nondecreasing time order, all payloads materialized.
struct ChurnTrace {
  ChurnFeedConfig config;
  std::vector<ChurnEvent> events;
};

/// Generates the full schedule for `config` against the current state of
/// `universe` (alive/dead sets and new-source templates are derived from
/// it; the universe itself is not modified). Deterministic: a pure function
/// of the universe's content and the config.
ChurnTrace GenerateChurnTrace(const Universe& universe,
                              const ChurnFeedConfig& config);

/// Order-sensitive structural hash over the whole trace — times, kinds,
/// targets and full payloads. The bit-identity oracle for replay tests.
uint64_t ChurnTraceFingerprint(const ChurnTrace& trace);

}  // namespace ube

#endif  // UBE_CATALOG_CHANGE_FEED_H_
