#ifndef UBE_CATALOG_CATALOG_H_
#define UBE_CATALOG_CATALOG_H_

#include <string>
#include <string_view>

#include "source/universe.h"
#include "util/result.h"

namespace ube {

/// Text catalog of data-source descriptions — the user-provided input path
/// of Figure 2 ("such descriptions can be obtained from a hidden Web search
/// engine or some other source discovery mechanism, or they can be provided
/// by the user").
///
/// Format (line oriented, '#' starts a comment):
///
///   [source]
///   name        = megabooks.com
///   attributes  = title | author | isbn | price
///   cardinality = 60000
///   char.mttf   = 120
///   char.latency_ms = 85.5
///   # optional cooperating-source signature; bitmaps as 8-hex-digit words
///   signature   = pcsa:64:00000007f3a1...
///   # or, for tiny sources / tests, an explicit id set:
///   signature   = exact:17,42,99
///   # optional acquisition state: 'dropped' and/or one statistics token
///   # (fresh | stale:<staleness> | partial | missing), comma separated.
///   # Omitted = available with fresh statistics.
///   state       = dropped,missing
///
/// Every `[source]` block requires `name` and `attributes` — except that a
/// `dropped` source (the prober's unavailable shell, whose schema is empty)
/// may omit `attributes`. Everything else is optional. Unknown keys and
/// unknown `state` tokens are errors (catching typos beats silently
/// ignoring a misspelled characteristic).
///
/// The writer emits the same format, so catalogs round-trip:
/// ParseCatalog(WriteCatalog(u)) reproduces u exactly (including PCSA
/// bitmaps, availability and statistics state; exact signatures round-trip
/// as sorted id lists).

/// Parses a catalog from text. Errors carry 1-based line numbers.
Result<Universe> ParseCatalog(std::string_view text);

/// Reads and parses a catalog file.
Result<Universe> LoadCatalogFile(const std::string& path);

/// Serializes a universe into catalog text.
std::string WriteCatalog(const Universe& universe);

/// Writes WriteCatalog(universe) to a file.
Status SaveCatalogFile(const Universe& universe, const std::string& path);

}  // namespace ube

#endif  // UBE_CATALOG_CATALOG_H_
