#include "catalog/catalog.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "sketch/distinct_estimator.h"
#include "util/strings.h"

namespace ube {

namespace {

Status ParseError(int line, const std::string& message) {
  return Status::InvalidArgument("catalog line " + std::to_string(line) +
                                 ": " + message);
}

// Strips a comment: '#' at line start or preceded by whitespace.
std::string_view StripComment(std::string_view line) {
  for (size_t i = 0; i < line.size(); ++i) {
    if (line[i] == '#' &&
        (i == 0 || line[i - 1] == ' ' || line[i - 1] == '\t')) {
      return line.substr(0, i);
    }
  }
  return line;
}

bool ParseInt64(std::string_view text, int64_t* out) {
  if (text.empty()) return false;
  int64_t value = 0;
  size_t i = 0;
  bool negative = false;
  if (text[0] == '-') {
    negative = true;
    i = 1;
    if (text.size() == 1) return false;
  }
  for (; i < text.size(); ++i) {
    if (text[i] < '0' || text[i] > '9') return false;
    value = value * 10 + (text[i] - '0');
  }
  *out = negative ? -value : value;
  return true;
}

bool ParseDouble(std::string_view text, double* out) {
  std::string buffer(text);
  char* end = nullptr;
  double value = std::strtod(buffer.c_str(), &end);
  if (end == buffer.c_str() || *end != '\0') return false;
  *out = value;
  return true;
}

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

// Decodes 8-hex-digit little-words into uint32 bitmaps.
bool DecodeHexBitmaps(std::string_view hex, std::vector<uint32_t>* out) {
  if (hex.empty() || hex.size() % 8 != 0) return false;
  out->clear();
  out->reserve(hex.size() / 8);
  for (size_t i = 0; i < hex.size(); i += 8) {
    uint32_t word = 0;
    for (size_t j = 0; j < 8; ++j) {
      int v = HexValue(hex[i + j]);
      if (v < 0) return false;
      word = (word << 4) | static_cast<uint32_t>(v);
    }
    out->push_back(word);
  }
  return true;
}

std::string EncodeHexBitmaps(const std::vector<uint32_t>& bitmaps) {
  static const char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bitmaps.size() * 8);
  for (uint32_t word : bitmaps) {
    for (int shift = 28; shift >= 0; shift -= 4) {
      out.push_back(kDigits[(word >> shift) & 0xf]);
    }
  }
  return out;
}

// One source block under construction.
struct PendingSource {
  int start_line = 0;
  bool has_name = false;
  std::string name;
  bool has_attributes = false;
  std::vector<std::string> attributes;
  int64_t cardinality = 0;
  std::vector<std::pair<std::string, double>> characteristics;
  std::unique_ptr<DistinctSignature> signature;
  bool has_state = false;
  bool dropped = false;
  StatsState stats_state = StatsState::kFresh;
  double staleness = 0.0;
};

Result<std::unique_ptr<DistinctSignature>> ParseSignature(
    std::string_view value, int line) {
  size_t colon = value.find(':');
  if (colon == std::string_view::npos) {
    return ParseError(line, "signature must be pcsa:<bitmaps>:<hex> or "
                            "exact:<id,id,...>");
  }
  std::string_view kind = value.substr(0, colon);
  std::string_view rest = value.substr(colon + 1);
  if (kind == "pcsa") {
    size_t colon2 = rest.find(':');
    if (colon2 == std::string_view::npos) {
      return ParseError(line, "pcsa signature needs pcsa:<bitmaps>:<hex>");
    }
    int64_t num_bitmaps = 0;
    if (!ParseInt64(rest.substr(0, colon2), &num_bitmaps) ||
        num_bitmaps < 1 || num_bitmaps > 65536 ||
        (num_bitmaps & (num_bitmaps - 1)) != 0) {
      return ParseError(line, "pcsa bitmap count must be a power of two in "
                              "[1, 65536]");
    }
    std::vector<uint32_t> bitmaps;
    if (!DecodeHexBitmaps(rest.substr(colon2 + 1), &bitmaps)) {
      return ParseError(line, "malformed pcsa hex payload");
    }
    if (static_cast<int64_t>(bitmaps.size()) != num_bitmaps) {
      return ParseError(line, "pcsa payload length does not match the "
                              "declared bitmap count");
    }
    return std::unique_ptr<DistinctSignature>(std::make_unique<PcsaSignature>(
        PcsaSketch::FromBitmaps(std::move(bitmaps))));
  }
  if (kind == "exact") {
    auto signature = std::make_unique<ExactSignature>();
    if (!TrimWhitespace(rest).empty()) {
      for (const std::string& token : SplitTokens(rest, ",")) {
        int64_t id = 0;
        if (!ParseInt64(TrimWhitespace(token), &id) || id < 0) {
          return ParseError(line, "malformed exact signature id '" + token +
                                      "'");
        }
        signature->Add(static_cast<uint64_t>(id));
      }
    }
    return std::unique_ptr<DistinctSignature>(std::move(signature));
  }
  return ParseError(line, "unknown signature kind '" + std::string(kind) +
                              "' (expected pcsa or exact)");
}

Status Finish(PendingSource& pending, Universe* universe) {
  if (!pending.has_name) {
    return ParseError(pending.start_line, "[source] block is missing 'name'");
  }
  // A dropped source is the prober's unavailable-shell: its schema may be
  // (and normally is) empty, so 'attributes' is optional for it only.
  if (!pending.dropped &&
      (!pending.has_attributes || pending.attributes.empty())) {
    return ParseError(pending.start_line,
                      "[source] block '" + pending.name +
                          "' is missing 'attributes'");
  }
  DataSource source(pending.name, SourceSchema(pending.attributes));
  source.set_cardinality(pending.cardinality);
  for (const auto& [name, value] : pending.characteristics) {
    source.SetCharacteristic(name, value);
  }
  if (pending.signature != nullptr) {
    source.set_signature(std::move(pending.signature));
  }
  source.set_available(!pending.dropped);
  source.set_stats_state(pending.stats_state, pending.staleness);
  universe->AddSource(std::move(source));
  return Status::Ok();
}

}  // namespace

Result<Universe> ParseCatalog(std::string_view text) {
  Universe universe;
  PendingSource pending;
  bool in_block = false;

  int line_number = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    ++line_number;
    std::string_view line =
        TrimWhitespace(StripComment(text.substr(pos, end - pos)));
    pos = end + 1;

    if (line.empty()) continue;

    if (line == "[source]") {
      if (in_block) {
        UBE_RETURN_IF_ERROR(Finish(pending, &universe));
      }
      pending = PendingSource{};
      pending.start_line = line_number;
      in_block = true;
      continue;
    }
    if (line.front() == '[') {
      return ParseError(line_number,
                        "unknown section '" + std::string(line) + "'");
    }
    if (!in_block) {
      return ParseError(line_number, "content before the first [source]");
    }

    size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return ParseError(line_number, "expected key = value");
    }
    std::string key(TrimWhitespace(line.substr(0, eq)));
    std::string value(TrimWhitespace(line.substr(eq + 1)));

    if (key == "name") {
      if (pending.has_name) {
        return ParseError(line_number, "duplicate 'name'");
      }
      if (value.empty()) {
        return ParseError(line_number, "'name' must not be empty");
      }
      pending.has_name = true;
      pending.name = value;
    } else if (key == "attributes") {
      if (pending.has_attributes) {
        return ParseError(line_number, "duplicate 'attributes'");
      }
      for (const std::string& attr : SplitTokens(value, "|")) {
        std::string trimmed(TrimWhitespace(attr));
        if (!trimmed.empty()) pending.attributes.push_back(trimmed);
      }
      if (pending.attributes.empty()) {
        return ParseError(line_number, "'attributes' must list at least one "
                                       "attribute");
      }
      pending.has_attributes = true;
    } else if (key == "cardinality") {
      int64_t cardinality = 0;
      if (!ParseInt64(value, &cardinality) || cardinality < 0) {
        return ParseError(line_number,
                          "'cardinality' must be a non-negative integer");
      }
      pending.cardinality = cardinality;
    } else if (key.rfind("char.", 0) == 0) {
      std::string characteristic = key.substr(5);
      if (characteristic.empty()) {
        return ParseError(line_number, "characteristic name missing after "
                                       "'char.'");
      }
      double parsed = 0.0;
      if (!ParseDouble(value, &parsed)) {
        return ParseError(line_number, "characteristic '" + characteristic +
                                           "' must be a number");
      }
      pending.characteristics.emplace_back(characteristic, parsed);
    } else if (key == "state") {
      if (pending.has_state) {
        return ParseError(line_number, "duplicate 'state'");
      }
      pending.has_state = true;
      bool saw_stats = false;
      int tokens = 0;
      for (const std::string& raw : SplitTokens(value, ",")) {
        std::string token(TrimWhitespace(raw));
        if (token.empty()) continue;
        ++tokens;
        if (token == "dropped") {
          if (pending.dropped) {
            return ParseError(line_number, "duplicate 'dropped' token");
          }
          pending.dropped = true;
          continue;
        }
        if (saw_stats) {
          return ParseError(line_number,
                            "'state' lists more than one statistics token");
        }
        saw_stats = true;
        if (token == "fresh") {
          pending.stats_state = StatsState::kFresh;
        } else if (token == "partial") {
          pending.stats_state = StatsState::kPartial;
        } else if (token == "missing") {
          pending.stats_state = StatsState::kMissing;
        } else if (token.rfind("stale:", 0) == 0) {
          double staleness = 0.0;
          if (!ParseDouble(token.substr(6), &staleness) || staleness <= 0.0 ||
              staleness > 1.0) {
            return ParseError(line_number,
                              "stale staleness must be a number in (0, 1]");
          }
          pending.stats_state = StatsState::kStale;
          pending.staleness = staleness;
        } else {
          return ParseError(line_number,
                            "unknown 'state' token '" + token + "'");
        }
      }
      if (tokens == 0) {
        return ParseError(line_number,
                          "'state' must list at least one token");
      }
    } else if (key == "signature") {
      if (pending.signature != nullptr) {
        return ParseError(line_number, "duplicate 'signature'");
      }
      Result<std::unique_ptr<DistinctSignature>> signature =
          ParseSignature(value, line_number);
      if (!signature.ok()) return signature.status();
      pending.signature = std::move(signature).value();
    } else {
      return ParseError(line_number, "unknown key '" + key + "'");
    }
  }

  if (in_block) {
    UBE_RETURN_IF_ERROR(Finish(pending, &universe));
  }
  return universe;
}

Result<Universe> LoadCatalogFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return Status::NotFound("cannot open catalog file '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseCatalog(buffer.str());
}

std::string WriteCatalog(const Universe& universe) {
  std::string out;
  out += "# µBE source catalog — " +
         std::to_string(universe.num_sources()) + " sources\n";
  for (SourceId s = 0; s < universe.num_sources(); ++s) {
    const DataSource& source = universe.source(s);
    out += "\n[source]\n";
    out += "name        = " + source.name() + "\n";
    // A dropped shell has an empty schema; the parser accepts a missing
    // 'attributes' key for dropped sources only.
    if (!source.schema().names().empty()) {
      out += "attributes  = " + Join(source.schema().names(), " | ") + "\n";
    }
    out += "cardinality = " + std::to_string(source.cardinality()) + "\n";
    if (!source.available() || source.stats_state() != StatsState::kFresh) {
      std::string state;
      if (!source.available()) state = "dropped";
      auto append = [&state](const std::string& token) {
        if (!state.empty()) state += ",";
        state += token;
      };
      switch (source.stats_state()) {
        case StatsState::kFresh:
          break;
        case StatsState::kStale: {
          char staleness[64];
          std::snprintf(staleness, sizeof(staleness), "stale:%.17g",
                        source.staleness());
          append(staleness);
          break;
        }
        case StatsState::kPartial:
          append("partial");
          break;
        case StatsState::kMissing:
          append("missing");
          break;
      }
      out += "state       = " + state + "\n";
    }
    for (const auto& [name, value] : source.characteristics()) {
      char buffer[64];
      std::snprintf(buffer, sizeof(buffer), "%.17g", value);
      out += "char." + name + " = " + buffer + "\n";
    }
    if (source.has_signature()) {
      if (const auto* pcsa =
              dynamic_cast<const PcsaSignature*>(&source.signature())) {
        out += "signature   = pcsa:" +
               std::to_string(pcsa->sketch().num_bitmaps()) + ":" +
               EncodeHexBitmaps(pcsa->sketch().bitmaps()) + "\n";
      } else if (const auto* exact = dynamic_cast<const ExactSignature*>(
                     &source.signature())) {
        std::vector<uint64_t> ids(exact->ids().begin(), exact->ids().end());
        std::sort(ids.begin(), ids.end());
        std::string list;
        for (size_t i = 0; i < ids.size(); ++i) {
          if (i > 0) list += ",";
          list += std::to_string(ids[i]);
        }
        out += "signature   = exact:" + list + "\n";
      }
      // Unknown DistinctSignature implementations are skipped (a catalog
      // can only carry the two built-in wire formats).
    }
  }
  return out;
}

Status SaveCatalogFile(const Universe& universe, const std::string& path) {
  std::ofstream file(path);
  if (!file) {
    return Status::InvalidArgument("cannot open '" + path + "' for writing");
  }
  file << WriteCatalog(universe);
  if (!file.good()) {
    return Status::Internal("write to '" + path + "' failed");
  }
  return Status::Ok();
}

}  // namespace ube
