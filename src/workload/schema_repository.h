#ifndef UBE_WORKLOAD_SCHEMA_REPOSITORY_H_
#define UBE_WORKLOAD_SCHEMA_REPOSITORY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "schema/schema.h"

namespace ube {

/// One ground-truth domain concept: a family of attribute-name variants
/// that all express it in different Web query interfaces.
struct DomainConcept {
  std::string name;                   ///< canonical label ("author")
  std::vector<std::string> variants;  ///< surface forms seen in interfaces
};

/// Synthetic stand-in for one domain of the BAMM/UIUC Web-integration
/// repository: a set of ground-truth concepts plus `num_schemas` base
/// schemas deterministically derived from them (weighted concept sampling,
/// dominant-variant selection). The Books instance reproduces the paper's
/// experimental domain exactly; see workload/domains.h for the other BAMM
/// domains and workload/books_repository.h for the Books convenience
/// wrapper.
class SchemaRepository {
 public:
  /// `popularity` must parallel `concepts`; schemas draw 3-8 distinct
  /// concepts weighted by it. The same (concepts, num_schemas, seed) always
  /// produce the same base schemas.
  SchemaRepository(std::string domain_name,
                   std::vector<DomainConcept> concepts,
                   std::vector<double> popularity, int num_schemas,
                   uint64_t seed);

  const std::string& domain_name() const { return domain_name_; }

  const std::vector<DomainConcept>& concepts() const { return concepts_; }
  int num_concepts() const { return static_cast<int>(concepts_.size()); }

  const std::vector<SourceSchema>& base_schemas() const {
    return base_schemas_;
  }
  int num_base_schemas() const {
    return static_cast<int>(base_schemas_.size());
  }

  /// Concept index of a variant attribute name, or -1 for unknown names
  /// (noise words). Exact, case-sensitive match on the stored variants.
  int ConceptOf(std::string_view attribute_name) const;

  /// Vocabulary of words unrelated to any BAMM domain, used by the
  /// perturbation step ("a list of words unrelated to the Books domain").
  static const std::vector<std::string>& UnrelatedWords();

 private:
  std::string domain_name_;
  std::vector<DomainConcept> concepts_;
  std::vector<SourceSchema> base_schemas_;
};

}  // namespace ube

#endif  // UBE_WORKLOAD_SCHEMA_REPOSITORY_H_
