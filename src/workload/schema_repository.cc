#include "workload/schema_repository.h"

#include "util/check.h"
#include "util/rng.h"

namespace ube {

SchemaRepository::SchemaRepository(std::string domain_name,
                                   std::vector<DomainConcept> concepts,
                                   std::vector<double> popularity,
                                   int num_schemas, uint64_t seed)
    : domain_name_(std::move(domain_name)), concepts_(std::move(concepts)) {
  UBE_CHECK(!concepts_.empty(), "a domain needs at least one concept");
  UBE_CHECK(popularity.size() == concepts_.size(),
            "popularity must parallel concepts");
  UBE_CHECK(num_schemas >= 1, "num_schemas must be >= 1");

  Rng rng(seed);
  base_schemas_.reserve(static_cast<size_t>(num_schemas));
  for (int i = 0; i < num_schemas; ++i) {
    int num_attrs = static_cast<int>(rng.UniformInt(3, 8));

    // Weighted sampling of distinct concepts.
    std::vector<int> remaining(concepts_.size());
    for (size_t c = 0; c < concepts_.size(); ++c) {
      remaining[c] = static_cast<int>(c);
    }
    std::vector<std::string> names;
    while (static_cast<int>(names.size()) < num_attrs && !remaining.empty()) {
      double total = 0.0;
      for (int c : remaining) total += popularity[static_cast<size_t>(c)];
      double pick = rng.UniformDouble() * total;
      size_t chosen = 0;
      for (size_t j = 0; j < remaining.size(); ++j) {
        pick -= popularity[static_cast<size_t>(remaining[j])];
        if (pick <= 0.0) {
          chosen = j;
          break;
        }
      }
      const DomainConcept& chosen_concept =
          concepts_[static_cast<size_t>(remaining[chosen])];
      remaining.erase(remaining.begin() + static_cast<long>(chosen));

      // Dominant variant 60% of the time, otherwise a uniform alternate.
      size_t variant = 0;
      if (chosen_concept.variants.size() > 1 && !rng.Bernoulli(0.6)) {
        variant = 1 + rng.UniformInt(chosen_concept.variants.size() - 1);
      }
      names.push_back(chosen_concept.variants[variant]);
    }
    base_schemas_.emplace_back(std::move(names));
  }
}

int SchemaRepository::ConceptOf(std::string_view attribute_name) const {
  for (size_t c = 0; c < concepts_.size(); ++c) {
    for (const std::string& variant : concepts_[c].variants) {
      if (variant == attribute_name) return static_cast<int>(c);
    }
  }
  return -1;
}

const std::vector<std::string>& SchemaRepository::UnrelatedWords() {
  // Vocabulary from query-interface domains outside BAMM (jobs, autos,
  // electronics, real estate, weather, legal, ...). Noise attribute names
  // are built as word pairs/triples by the generator, which keeps them
  // unique across a universe.
  static const std::vector<std::string>* const kWords =
      new std::vector<std::string>{
          "hatchback",  "odometer",   "horsepower", "engine",     "sedan",
          "transmission", "cylinder", "doors",      "salary",     "employer",
          "occupation", "industry",   "benefits",   "resume",     "cpu",
          "memory",     "screen",     "battery",    "resolution", "warranty",
          "bedrooms",   "bathrooms",  "acreage",    "garage",     "zipcode",
          "county",     "latitude",   "longitude",  "cuisine",    "calories",
          "ingredient", "dosage",     "symptom",    "diagnosis",  "clinic",
          "insurance",  "premium",    "deductible", "beneficiary", "voltage",
          "wattage",    "frequency",  "bandwidth",  "protocol",   "firmware",
          "tonnage",    "cargo",      "freight",    "container",  "manifest",
          "fabric",     "sleeve",     "collar",     "waist",      "inseam",
          "stadium",    "league",     "referee",    "tournament", "roster",
          "altitude",   "humidity",   "rainfall",   "forecast",   "visibility",
          "docket",     "plaintiff",  "defendant",  "verdict",    "statute",
          "turbine",    "sprocket",   "gasket",     "flywheel",   "camshaft",
          "scaffold",   "drywall",    "rebar",      "mortar",     "plumb",
      };
  return *kWords;
}

}  // namespace ube
