#include "workload/domains.h"

#include "util/check.h"

namespace ube {

namespace {

DomainSpec MakeBooks() {
  // Must stay byte-identical to the original Books definition: the base
  // schemas derived from it are part of the repository contract (tests and
  // experiment goldens depend on them).
  DomainSpec spec;
  spec.name = "books";
  spec.concepts = {
      {"title", {"title", "book title", "title of book", "titles"}},
      {"author", {"author", "author name", "book author", "authors"}},
      {"keyword", {"keyword", "keywords", "keyword search", "key word"}},
      {"isbn", {"isbn", "isbn number", "isbn code"}},
      {"publisher",
       {"publisher", "publisher name", "publishers name", "publishing house"}},
      {"price", {"price", "max price", "price range", "list price"}},
      {"format", {"format", "book format", "format type", "binding"}},
      {"subject", {"subject", "subject area", "subjects"}},
      {"edition", {"edition", "book edition", "editions"}},
      {"language", {"language", "book language", "languages"}},
      {"publication-year",
       {"publication year", "publication years", "year of publication",
        "pub year"}},
      {"condition", {"condition", "book condition", "item condition"}},
      {"seller", {"seller", "seller name", "sellers", "book seller"}},
      {"reader-age", {"reader age", "readers age", "age group", "age range"}},
  };
  spec.popularity = {1.0, 1.0,  0.9,  0.6,  0.6, 0.8, 0.5,
                     0.5, 0.35, 0.35, 0.45, 0.4, 0.4, 0.3};
  return spec;
}

DomainSpec MakeAirfares() {
  DomainSpec spec;
  spec.name = "airfares";
  spec.concepts = {
      {"from", {"departure city", "departure cities", "leaving from",
                "origin city"}},
      {"to", {"arrival city", "arrival cities", "going to",
              "destination city"}},
      {"depart-date", {"departure date", "departure dates", "depart on"}},
      {"return-date", {"return date", "return dates", "returning on"}},
      {"passengers", {"passengers", "number of passengers", "passenger count",
                      "travelers"}},
      {"airline-class", {"cabin class", "cabin classes", "travel class",
                         "service class"}},
      {"airline", {"airline", "airlines", "airline name", "carrier"}},
      {"ticket-price", {"ticket price", "ticket prices", "maximum fare",
                        "fare limit"}},
      {"stops", {"number of stops", "stops", "nonstop only"}},
      {"flight-time", {"departure time", "departure times", "time of day"}},
  };
  spec.popularity = {1.0, 1.0, 0.95, 0.8, 0.75, 0.5, 0.55, 0.5, 0.35, 0.3};
  return spec;
}

DomainSpec MakeMovies() {
  DomainSpec spec;
  spec.name = "movies";
  spec.concepts = {
      {"movie-title", {"movie title", "movie titles", "film title",
                       "title of movie"}},
      {"director", {"director", "directors", "director name",
                    "directed by"}},
      {"actor", {"actor", "actors", "actor name", "starring"}},
      {"movie-genre", {"movie genre", "movie genres", "film genre",
                       "category of movie"}},
      {"release-year", {"release year", "release years", "year released",
                        "year of release"}},
      {"rating", {"mpaa rating", "mpaa ratings", "viewer rating",
                  "rated"}},
      {"movie-format", {"dvd format", "dvd formats", "disc format",
                        "video format"}},
      {"studio", {"studio", "studios", "studio name", "production studio"}},
      {"movie-price", {"movie price", "movie prices", "dvd price"}},
      {"runtime", {"running time", "running times", "length in minutes"}},
  };
  spec.popularity = {1.0, 0.8, 0.85, 0.7, 0.6, 0.5, 0.45, 0.35, 0.55, 0.3};
  return spec;
}

DomainSpec MakeMusicRecords() {
  DomainSpec spec;
  spec.name = "musicrecords";
  spec.concepts = {
      {"album", {"album title", "album titles", "title of album",
                 "record title"}},
      {"artist", {"artist", "artists", "artist name", "band name"}},
      {"song", {"song title", "song titles", "track title",
                "title of song"}},
      {"music-genre", {"music genre", "music genres", "style of music"}},
      {"label", {"record label", "record labels", "label name"}},
      {"album-year", {"album year", "album years", "year of album"}},
      {"media", {"media type", "media types", "disc type"}},
      {"album-price", {"album price", "album prices", "cd price"}},
      {"composer", {"composer", "composers", "composer name",
                    "composed by"}},
  };
  spec.popularity = {1.0, 1.0, 0.8, 0.6, 0.45, 0.45, 0.4, 0.55, 0.3};
  return spec;
}

}  // namespace

const std::vector<DomainSpec>& BammDomains() {
  static const std::vector<DomainSpec>* const kDomains = [] {
    auto* domains = new std::vector<DomainSpec>;
    domains->push_back(MakeBooks());
    domains->push_back(MakeAirfares());
    domains->push_back(MakeMovies());
    domains->push_back(MakeMusicRecords());
    for (const DomainSpec& spec : *domains) {
      UBE_CHECK(spec.concepts.size() == spec.popularity.size(),
                "domain popularity must parallel its concepts");
    }
    return domains;
  }();
  return *kDomains;
}

int FindDomain(const std::string& name) {
  const std::vector<DomainSpec>& domains = BammDomains();
  for (size_t i = 0; i < domains.size(); ++i) {
    if (domains[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace ube
