#ifndef UBE_WORKLOAD_DOMAINS_H_
#define UBE_WORKLOAD_DOMAINS_H_

#include <string>
#include <vector>

#include "workload/schema_repository.h"

namespace ube {

/// A query-interface domain: its ground-truth concepts (each a family of
/// attribute-name variants) and their relative popularity across the
/// domain's Web interfaces.
struct DomainSpec {
  std::string name;
  std::vector<DomainConcept> concepts;
  /// Parallel to `concepts`; relative sampling weight of each concept.
  std::vector<double> popularity;
};

/// The four domains of the BAMM/UIUC Web-integration repository the paper
/// draws on — **B**ooks, **A**irfares, **M**ovies, **M**usicRecords —
/// recreated synthetically (see DESIGN.md substitutions). Index 0 (Books)
/// is exactly the domain the Section 7 experiments use; the others enable
/// mixed-domain universes that exercise the paper's core motivation: out
/// of many discovered sources, only a semantically coherent subset should
/// be selected.
const std::vector<DomainSpec>& BammDomains();

/// Index of a domain by name ("books", "airfares", "movies",
/// "musicrecords"), or -1.
int FindDomain(const std::string& name);

}  // namespace ube

#endif  // UBE_WORKLOAD_DOMAINS_H_
