#include "workload/generator.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "util/check.h"
#include "util/distributions.h"
#include "util/rng.h"

namespace ube {

const std::string& GroundTruth::concept_name(int concept_id) const {
  UBE_CHECK(concept_id >= 0 && concept_id < num_concepts_,
            "concept index out of range");
  return concept_names_[static_cast<size_t>(concept_id)];
}

int GroundTruth::ConceptOf(const AttributeId& id) const {
  UBE_CHECK(id.source >= 0 &&
                static_cast<size_t>(id.source) < concept_of_.size(),
            "source out of range");
  const std::vector<int>& per_attr =
      concept_of_[static_cast<size_t>(id.source)];
  UBE_CHECK(id.attr_index >= 0 &&
                static_cast<size_t>(id.attr_index) < per_attr.size(),
            "attribute out of range");
  return per_attr[static_cast<size_t>(id.attr_index)];
}

std::vector<int> GroundTruth::ConceptsAvailable(
    const std::vector<SourceId>& sources, int min_sources) const {
  std::vector<int> source_count(static_cast<size_t>(num_concepts_), 0);
  for (SourceId s : sources) {
    UBE_CHECK(s >= 0 && static_cast<size_t>(s) < concept_of_.size(),
              "source out of range");
    std::vector<char> seen(static_cast<size_t>(num_concepts_), 0);
    for (int concept_id : concept_of_[static_cast<size_t>(s)]) {
      if (concept_id >= 0 && !seen[static_cast<size_t>(concept_id)]) {
        seen[static_cast<size_t>(concept_id)] = 1;
        ++source_count[static_cast<size_t>(concept_id)];
      }
    }
  }
  std::vector<int> out;
  for (int c = 0; c < num_concepts_; ++c) {
    if (source_count[static_cast<size_t>(c)] >= min_sources) out.push_back(c);
  }
  return out;
}

namespace {

// Draws a noise attribute name that is unique across the whole universe.
// The BAMM experiments never produced false GAs, which requires replacement
// words not to collide across sources; we build "word word" pairs (and
// triples on collision) from the unrelated vocabulary and track used names.
std::string DrawNoiseName(Rng& rng,
                          std::unordered_set<std::string>& used_names) {
  const std::vector<std::string>& words = SchemaRepository::UnrelatedWords();
  for (int attempt = 0; attempt < 64; ++attempt) {
    const std::string& w1 = words[rng.UniformInt(words.size())];
    const std::string& w2 = words[rng.UniformInt(words.size())];
    std::string name = w1 + " " + w2;
    if (attempt >= 8) {
      name += " " + words[rng.UniformInt(words.size())];
    }
    if (used_names.insert(name).second) return name;
  }
  // Vocabulary exhausted (pathological); fall back to a numbered name.
  for (int counter = 0;; ++counter) {
    std::string name = "noise attribute " + std::to_string(counter);
    if (used_names.insert(name).second) return name;
  }
}

// Greatest common divisor (for coprime stride selection).
int64_t Gcd(int64_t a, int64_t b) {
  while (b != 0) {
    int64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

// Streams `count` distinct pseudo-random ids from [pool_base,
// pool_base + pool_size) into the signature, using a coprime stride walk:
// distinct, deterministic, and uniform enough for hashing-based sketches.
void StreamTuples(Rng& rng, int64_t pool_base, int64_t pool_size,
                  int64_t count, DistinctSignature* signature) {
  if (pool_size <= 0 || count <= 0) return;
  count = std::min(count, pool_size);
  int64_t offset = static_cast<int64_t>(
      rng.UniformInt(static_cast<uint64_t>(pool_size)));
  int64_t stride;
  do {
    stride = 1 + static_cast<int64_t>(
                     rng.UniformInt(static_cast<uint64_t>(pool_size - 1)));
  } while (Gcd(stride, pool_size) != 1);
  int64_t position = offset;
  for (int64_t i = 0; i < count; ++i) {
    if (signature != nullptr) {
      signature->Add(static_cast<uint64_t>(pool_base + position));
    }
    position += stride;
    if (position >= pool_size) position -= pool_size;
  }
}

// Shared mutable state of one generation run (a plain Books run is a
// mixed run with a single domain).
struct GenerationStreams {
  Rng schema_rng;
  Rng data_rng;
  Rng char_rng;
  std::unordered_set<std::string> used_noise_names;
  ZipfSampler zipf;
};

int64_t Scaled(int64_t value, double scale) {
  return std::max<int64_t>(
      1, static_cast<int64_t>(std::llround(static_cast<double>(value) *
                                           scale)));
}

// Appends `count` sources derived from `repository` to the universe:
// base-schema copies (exact for the first num_base_schemas when configured)
// with perturbation, Zipf cardinalities, tuples from this domain's pools,
// and the MTTF characteristic. Concept ids in `concept_of` are offset by
// `concept_offset`.
void AppendDomainSources(const SchemaRepository& repository,
                         const WorkloadConfig& config, int count,
                         int concept_offset, int64_t pool_base,
                         GenerationStreams& streams, Universe* universe,
                         std::vector<std::vector<int>>* concept_of) {
  const int64_t general_pool = Scaled(config.general_pool, config.scale);
  const int64_t specialty_pool = Scaled(config.specialty_pool, config.scale);
  const int num_base = repository.num_base_schemas();

  for (int i = 0; i < count; ++i) {
    const SourceSchema& base =
        repository.base_schemas()[static_cast<size_t>(i % num_base)];

    // --- schema: exact copy or perturbed copy --------------------------
    std::vector<std::string> names;
    std::vector<int> concepts;
    const bool exact = config.keep_first_copies_exact && i < num_base;
    auto concept_for = [&](const std::string& name) {
      int local = repository.ConceptOf(name);
      return local < 0 ? -1 : local + concept_offset;
    };
    for (int a = 0; a < base.num_attributes(); ++a) {
      const std::string& name = base.attribute_name(a);
      if (!exact && streams.schema_rng.Bernoulli(config.remove_probability)) {
        continue;
      }
      if (!exact &&
          streams.schema_rng.Bernoulli(config.replace_probability)) {
        names.push_back(
            DrawNoiseName(streams.schema_rng, streams.used_noise_names));
        concepts.push_back(-1);
        continue;
      }
      names.push_back(name);
      concepts.push_back(concept_for(name));
    }
    if (!exact) {
      int added = 0;
      while (added < config.max_added_attributes &&
             streams.schema_rng.Bernoulli(config.add_probability)) {
        names.push_back(
            DrawNoiseName(streams.schema_rng, streams.used_noise_names));
        concepts.push_back(-1);
        ++added;
      }
    }
    if (names.empty()) {
      // Perturbation removed everything; keep one original attribute so the
      // source still has a schema.
      const std::string& name = base.attribute_name(0);
      names.push_back(name);
      concepts.push_back(concept_for(name));
    }

    DataSource source(repository.domain_name() + "-src-" +
                          std::to_string(universe->num_sources()),
                      SourceSchema(std::move(names)));

    // --- data ------------------------------------------------------------
    int64_t cardinality = ZipfRankToRange(
        streams.zipf.Sample(streams.data_rng), std::max(1, config.zipf_ranks),
        Scaled(config.min_cardinality, config.scale),
        Scaled(config.max_cardinality, config.scale));
    source.set_cardinality(cardinality);

    if (config.generate_data) {
      const bool uncooperative =
          streams.data_rng.Bernoulli(config.uncooperative_fraction);
      std::unique_ptr<DistinctSignature> signature =
          uncooperative ? nullptr
                        : MakeSignature(config.signature_kind,
                                        config.pcsa_bitmaps);
      const bool specialty =
          streams.data_rng.UniformDouble() < config.specialty_source_fraction;
      int64_t specialty_count =
          specialty ? static_cast<int64_t>(std::llround(
                          config.specialty_fraction *
                          static_cast<double>(cardinality)))
                    : 0;
      specialty_count = std::min(specialty_count, specialty_pool);
      int64_t general_count = cardinality - specialty_count;
      // Consume the RNG identically whether or not the source cooperates,
      // so uncooperative_fraction does not reshuffle everything else.
      StreamTuples(streams.data_rng, pool_base, general_pool, general_count,
                   signature.get());
      StreamTuples(streams.data_rng, pool_base + general_pool, specialty_pool,
                   specialty_count, signature.get());
      if (signature != nullptr) {
        source.set_signature(std::move(signature));
      }
    }

    // --- characteristics -------------------------------------------------
    source.SetCharacteristic(
        kMttfCharacteristic,
        TruncatedNormal(streams.char_rng, config.mttf_mean,
                        config.mttf_stddev, 1.0));

    universe->AddSource(std::move(source));
    concept_of->push_back(std::move(concepts));
  }
}

GenerationStreams MakeStreams(const WorkloadConfig& config) {
  Rng rng(config.seed);
  Rng schema_rng = rng.Fork(1);
  Rng data_rng = rng.Fork(2);
  Rng char_rng = rng.Fork(3);
  return GenerationStreams{schema_rng, data_rng, char_rng,
                           {},
                           ZipfSampler(std::max(1, config.zipf_ranks),
                                       config.zipf_exponent)};
}

}  // namespace

GeneratedWorkload GenerateWorkload(const WorkloadConfig& config) {
  UBE_CHECK(config.num_sources >= 1, "num_sources must be >= 1");
  UBE_CHECK(config.scale > 0.0, "scale must be positive");

  BooksRepository repository;
  GenerationStreams streams = MakeStreams(config);

  GeneratedWorkload out;
  std::vector<std::vector<int>> concept_of;
  concept_of.reserve(static_cast<size_t>(config.num_sources));
  AppendDomainSources(repository, config, config.num_sources,
                      /*concept_offset=*/0, /*pool_base=*/0, streams,
                      &out.universe, &concept_of);

  std::vector<std::string> concept_names;
  concept_names.reserve(static_cast<size_t>(repository.num_concepts()));
  for (const DomainConcept& dc : repository.concepts()) {
    concept_names.push_back(dc.name);
  }
  out.ground_truth = GroundTruth(repository.num_concepts(),
                                 std::move(concept_of),
                                 std::move(concept_names));
  return out;
}

Result<MixedWorkload> GenerateMixedWorkload(
    const MixedWorkloadConfig& config) {
  if (config.base.num_sources < 1) {
    return Status::InvalidArgument("num_sources must be >= 1");
  }
  if (config.base.scale <= 0.0) {
    return Status::InvalidArgument("scale must be positive");
  }
  if (config.mix.empty()) {
    return Status::InvalidArgument("mix must name at least one domain");
  }
  if (config.schemas_per_domain < 1) {
    return Status::InvalidArgument("schemas_per_domain must be >= 1");
  }
  const std::vector<DomainSpec>& domains = BammDomains();
  double total_fraction = 0.0;
  std::vector<char> seen(domains.size(), 0);
  for (const DomainShare& share : config.mix) {
    if (share.domain < 0 ||
        static_cast<size_t>(share.domain) >= domains.size()) {
      return Status::InvalidArgument("unknown domain index in mix");
    }
    if (share.fraction <= 0.0) {
      return Status::InvalidArgument("domain fractions must be positive");
    }
    if (seen[static_cast<size_t>(share.domain)]) {
      return Status::InvalidArgument("duplicate domain in mix");
    }
    seen[static_cast<size_t>(share.domain)] = 1;
    total_fraction += share.fraction;
  }

  // Per-domain source counts: proportional, remainder to the first domain.
  std::vector<int> counts(config.mix.size(), 0);
  int assigned = 0;
  for (size_t i = 0; i < config.mix.size(); ++i) {
    counts[i] = static_cast<int>(std::floor(
        config.mix[i].fraction / total_fraction * config.base.num_sources));
    assigned += counts[i];
  }
  counts[0] += config.base.num_sources - assigned;

  // Global concept id blocks, per BammDomains() index.
  MixedWorkload out;
  out.concept_offset.resize(domains.size(), 0);
  int next_offset = 0;
  for (size_t d = 0; d < domains.size(); ++d) {
    out.concept_offset[d] = next_offset;
    next_offset += static_cast<int>(domains[d].concepts.size());
  }
  std::vector<std::string> concept_names;
  concept_names.reserve(static_cast<size_t>(next_offset));
  for (const DomainSpec& spec : domains) {
    for (const DomainConcept& dc : spec.concepts) {
      concept_names.push_back(spec.name + "/" + dc.name);
    }
  }

  GenerationStreams streams = MakeStreams(config.base);
  std::vector<std::vector<int>> concept_of;
  concept_of.reserve(static_cast<size_t>(config.base.num_sources));
  out.domain_counts.assign(domains.size(), 0);

  const int64_t pool_span =
      Scaled(config.base.general_pool, config.base.scale) +
      Scaled(config.base.specialty_pool, config.base.scale);

  for (size_t i = 0; i < config.mix.size(); ++i) {
    const int domain = config.mix[i].domain;
    if (counts[i] <= 0) continue;
    // Base-schema seed derives from the repository seed and the domain so
    // each domain's schemas are stable across runs and mixes.
    SchemaRepository repository(
        domains[static_cast<size_t>(domain)].name,
        domains[static_cast<size_t>(domain)].concepts,
        domains[static_cast<size_t>(domain)].popularity,
        config.schemas_per_domain,
        0xB00C5u + static_cast<uint64_t>(domain));
    for (int j = 0; j < counts[i]; ++j) out.domain_of.push_back(domain);
    out.domain_counts[static_cast<size_t>(domain)] = counts[i];
    AppendDomainSources(repository, config.base, counts[i],
                        out.concept_offset[static_cast<size_t>(domain)],
                        /*pool_base=*/static_cast<int64_t>(domain) * pool_span,
                        streams, &out.universe, &concept_of);
  }

  out.ground_truth = GroundTruth(next_offset, std::move(concept_of),
                                 std::move(concept_names));
  return out;
}

}  // namespace ube
