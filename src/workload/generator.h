#ifndef UBE_WORKLOAD_GENERATOR_H_
#define UBE_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sketch/distinct_estimator.h"
#include "source/universe.h"
#include "workload/books_repository.h"
#include "workload/domains.h"

namespace ube {

/// Parameters of the Section 7.1 synthetic workload. Defaults reproduce the
/// paper's setup; `scale` shrinks the data volumes for fast tests without
/// changing the structure.
struct WorkloadConfig {
  /// Number of sources in the universe (paper: up to 700).
  int num_sources = 700;
  /// Master seed; everything derives deterministically from it.
  uint64_t seed = 17;

  // --- schema perturbation ("add, remove, or replace attributes") -------
  /// Per-attribute probability of being removed.
  double remove_probability = 0.10;
  /// Per-attribute probability of being replaced by an unrelated name.
  double replace_probability = 0.10;
  /// Probability of adding each successive unrelated noise attribute
  /// (geometric; expected extra attributes = p/(1-p)).
  double add_probability = 0.35;
  /// Hard cap on added noise attributes per schema.
  int max_added_attributes = 3;
  /// The first num_base_schemas sources keep their base schema verbatim
  /// ("fully conformant" sources, used as constraint targets in Section 7.2).
  bool keep_first_copies_exact = true;

  // --- data (tuples are 64-bit identities; see DESIGN.md substitutions) --
  /// Paper: cardinalities in [10 000, 1 000 000], Zipf distributed.
  int64_t min_cardinality = 10'000;
  int64_t max_cardinality = 1'000'000;
  /// Zipf exponent for the cardinality distribution.
  double zipf_exponent = 1.0;
  /// Number of Zipf rank buckets mapped onto the cardinality range.
  int zipf_ranks = 100;
  /// Paper: 4M distinct tuples, half General, half Specialty.
  int64_t general_pool = 2'000'000;
  int64_t specialty_pool = 2'000'000;
  /// Fraction of a Specialty source's tuples drawn from the Specialty pool
  /// ("a small number of tuples from the Specialty pool").
  double specialty_fraction = 0.10;
  /// Fraction of sources that are Specialty sources (paper: half).
  double specialty_source_fraction = 0.5;
  /// Global multiplier on cardinalities and pool sizes (tests use ~0.01).
  double scale = 1.0;
  /// Skip tuple generation entirely (schemas + characteristics only);
  /// sources then have cardinality but no signature.
  bool generate_data = true;
  /// Fraction of sources that refuse to provide a hash signature
  /// (Section 4's uncooperative sources).
  double uncooperative_fraction = 0.0;

  // --- signatures ---------------------------------------------------------
  SignatureKind signature_kind = SignatureKind::kPcsa;
  int pcsa_bitmaps = 64;

  // --- characteristics ------------------------------------------------------
  /// MTTF ~ Normal(100, 40) days, truncated positive (Section 7.1).
  double mttf_mean = 100.0;
  double mttf_stddev = 40.0;
};

/// Attribute → concept ground truth for a generated universe, used by the
/// Table 1 evaluation ("we manually counted the number of distinct concepts
/// in the BAMM schemas" — here the generator knows them exactly).
///
/// For mixed-domain universes, concept ids are global across the domains
/// (each domain's concepts occupy a contiguous id block) and names are
/// prefixed, e.g. "airfares/from".
class GroundTruth {
 public:
  GroundTruth() = default;
  GroundTruth(int num_concepts, std::vector<std::vector<int>> concept_of,
              std::vector<std::string> concept_names)
      : num_concepts_(num_concepts),
        concept_of_(std::move(concept_of)),
        concept_names_(std::move(concept_names)) {}

  int num_concepts() const { return num_concepts_; }
  const std::string& concept_name(int concept_id) const;

  /// Concept index of an attribute, or -1 for noise attributes.
  int ConceptOf(const AttributeId& id) const;

  /// Concepts that appear (via any variant) in at least `min_sources` of
  /// the given sources — the concepts a solution over those sources could
  /// possibly express as GAs.
  std::vector<int> ConceptsAvailable(const std::vector<SourceId>& sources,
                                     int min_sources = 2) const;

 private:
  int num_concepts_ = 0;
  std::vector<std::vector<int>> concept_of_;  // [source][attr] -> concept
  std::vector<std::string> concept_names_;
};

/// A generated universe plus its ground truth.
struct GeneratedWorkload {
  Universe universe;
  GroundTruth ground_truth;
};

/// Generates the Section 7.1 synthetic workload: `config.num_sources`
/// Books-domain sources (50 base schemas + perturbed copies), Zipf
/// cardinalities, General/Specialty tuple pools streamed into per-source
/// signatures, and an MTTF characteristic aggregated with wsum.
GeneratedWorkload GenerateWorkload(const WorkloadConfig& config);

/// Name of the MTTF characteristic the generator sets ("mttf").
inline constexpr const char* kMttfCharacteristic = "mttf";

// ---------------------------------------------------------------------------
// Mixed-domain universes
// ---------------------------------------------------------------------------

/// Share of one BAMM domain in a mixed universe.
struct DomainShare {
  /// Index into BammDomains().
  int domain = 0;
  /// Fraction of the universe's sources (shares are normalized).
  double fraction = 1.0;
};

/// Configuration for a mixed-domain universe: the Internet-scale scenario
/// of Section 1 where source discovery returns many sources, only some of
/// which belong to the domain the user cares about.
struct MixedWorkloadConfig {
  /// Data/perturbation parameters shared by all domains; `num_sources` is
  /// the total across domains.
  WorkloadConfig base;
  /// Domain composition; e.g. {{books, 0.5}, {airfares, 0.5}}.
  std::vector<DomainShare> mix;
  /// Base schemas generated per domain (the Books domain always has 50).
  int schemas_per_domain = 50;
};

/// A generated mixed-domain universe.
struct MixedWorkload {
  Universe universe;
  /// Ground truth with globally unique concept ids across domains.
  GroundTruth ground_truth;
  /// Domain (index into BammDomains()) of each source.
  std::vector<int> domain_of;
  /// First global concept id of each BammDomains() domain.
  std::vector<int> concept_offset;
  /// Sources per domain, parallel to BammDomains().
  std::vector<int> domain_counts;
};

/// Generates a mixed-domain universe. Each domain gets its own tuple pools
/// (sources from different domains never share data) but all sources share
/// one noise-name space, one Zipf cardinality law, and one MTTF law.
Result<MixedWorkload> GenerateMixedWorkload(const MixedWorkloadConfig& config);

}  // namespace ube

#endif  // UBE_WORKLOAD_GENERATOR_H_
