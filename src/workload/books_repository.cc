#include "workload/books_repository.h"

#include "util/check.h"
#include "workload/domains.h"

namespace ube {

namespace {

// Fixed seed: the base schemas are part of the repository definition and
// must be identical across runs, machines and user seeds — like the real
// BAMM files would be.
constexpr uint64_t kRepositorySeed = 0xB00C5u;
constexpr int kNumBaseSchemas = 50;

}  // namespace

BooksRepository::BooksRepository()
    : SchemaRepository(BammDomains()[0].name, BammDomains()[0].concepts,
                       BammDomains()[0].popularity, kNumBaseSchemas,
                       kRepositorySeed) {
  UBE_CHECK(num_concepts() == 14, "the Books domain has 14 concepts");
}

}  // namespace ube
