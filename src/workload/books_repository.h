#ifndef UBE_WORKLOAD_BOOKS_REPOSITORY_H_
#define UBE_WORKLOAD_BOOKS_REPOSITORY_H_

#include "workload/schema_repository.h"

namespace ube {

/// The Books domain of the BAMM repository — the domain the paper's
/// Section 7 experiments use: 14 ground-truth concepts (the manually
/// counted Table 1 ground truth) and 50 stable base schemas.
///
/// Thin convenience wrapper over SchemaRepository; the other BAMM domains
/// live in workload/domains.h.
class BooksRepository : public SchemaRepository {
 public:
  BooksRepository();
};

}  // namespace ube

#endif  // UBE_WORKLOAD_BOOKS_REPOSITORY_H_
