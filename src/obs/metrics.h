#ifndef UBE_OBS_METRICS_H_
#define UBE_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ube::obs {

/// Point-in-time value of one counter.
struct CounterSnapshot {
  std::string name;
  int64_t value = 0;
};

/// Point-in-time value of one gauge.
struct GaugeSnapshot {
  std::string name;
  double value = 0.0;
};

/// Point-in-time state of one fixed-bucket histogram. `bounds` are the
/// inclusive upper edges of the first bounds.size() buckets; the last bucket
/// (counts.back()) is the overflow bucket, so counts.size() == bounds.size()
/// + 1. Values are integers (counts, sizes, microseconds) so merging sinks
/// is exact and deterministic — no float summation order to worry about.
struct HistogramSnapshot {
  std::string name;
  std::vector<int64_t> bounds;
  std::vector<int64_t> counts;
  int64_t count = 0;
  int64_t sum = 0;
  int64_t min = 0;  ///< meaningful only when count > 0
  int64_t max = 0;  ///< meaningful only when count > 0

  double Mean() const {
    return count > 0 ? static_cast<double>(sum) / static_cast<double>(count)
                     : 0.0;
  }
};

/// Everything a registry held at one instant, each section sorted by metric
/// name so two snapshots of the same totals compare equal regardless of
/// registration interleaving.
struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Null when no such metric exists.
  const CounterSnapshot* FindCounter(std::string_view name) const;
  const GaugeSnapshot* FindGauge(std::string_view name) const;
  const HistogramSnapshot* FindHistogram(std::string_view name) const;
};

/// Multi-line human-readable rendering of a snapshot (the text half of the
/// observability output; the tracer owns the chrome-trace half).
std::string FormatMetricsReport(const MetricsSnapshot& snapshot);

/// Thread-safe metrics registry: counters, gauges and fixed-bucket
/// histograms.
///
/// Hot-path writes (Add / Observe) go to a lock-free per-thread sink: each
/// thread keeps a thread-local pointer to its own sink (plain relaxed
/// atomics that only the owning thread writes), so concurrent recording
/// never contends on a lock. A sink is sized to the metrics registered at
/// its creation; when a thread touches a metric registered later, it
/// retires its sink (counts are additive, so a retired sink merges exactly
/// like a live one) and starts a fresh, larger one. Snapshot() merges every
/// sink under the registration mutex; because counters and histogram
/// values are integers, the merged totals are exact and identical for any
/// number of recording threads — the determinism the solver replay
/// contract needs.
///
/// Gauges are last-write-wins process-level values (registry-resident,
/// mutex-guarded); they are for low-rate state, not hot paths.
///
/// A disabled registry (enabled = false) turns every record call into an
/// early-out on one bool.
class MetricsRegistry {
 public:
  /// Handle for one registered metric; cheap to copy, valid for the
  /// registry's lifetime. kInvalidMetric is accepted (and ignored) by every
  /// record call.
  using MetricId = int32_t;
  static constexpr MetricId kInvalidMetric = -1;

  explicit MetricsRegistry(bool enabled = true);
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  bool enabled() const { return enabled_; }

  /// Registration is idempotent: the same name returns the same id. A name
  /// may not be reused across metric kinds. Re-registering a histogram
  /// keeps the original bucket bounds.
  MetricId Counter(std::string_view name);
  MetricId Gauge(std::string_view name);
  /// `bounds` are inclusive upper bucket edges, strictly ascending; an
  /// implicit overflow bucket is appended.
  MetricId Histogram(std::string_view name, std::vector<int64_t> bounds);

  void Add(MetricId id, int64_t delta = 1);
  void Set(MetricId id, double value);
  void Observe(MetricId id, int64_t value);

  /// Merges every per-thread sink (exact for the integer-valued metrics).
  /// Safe to call concurrently with recording; in-flight updates on other
  /// threads may or may not be included.
  MetricsSnapshot Snapshot() const;

  /// Zeroes every metric in place (sinks stay alive, so other threads'
  /// cached sink pointers remain valid). Not synchronized with concurrent
  /// recording: call it between runs, like CandidateEvaluator::BeginRun.
  void Reset();

 private:
  struct HistSlot;
  struct Sink;
  struct HistDef {
    std::string name;
    std::vector<int64_t> bounds;
  };
  struct GaugeCell {
    std::string name;
    double value = 0.0;
  };

  /// The calling thread's sink, with room for metric slot `counter_slots` /
  /// `hist_slots`; creates (and registers) a larger one when needed.
  Sink* SinkFor(size_t counter_slots, size_t hist_slots);
  Sink* NewSinkLocked();

  const bool enabled_;
  const uint64_t epoch_;  ///< process-unique id for thread-local keying

  mutable std::mutex mu_;  // guards defs, gauges, and the sink list
  std::vector<std::string> counter_names_;
  std::vector<HistDef> hist_defs_;
  std::vector<GaugeCell> gauges_;
  std::vector<std::unique_ptr<Sink>> sinks_;
};

}  // namespace ube::obs

#endif  // UBE_OBS_METRICS_H_
