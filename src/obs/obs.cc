#include "obs/obs.h"

#include <cstdlib>
#include <cstring>

namespace ube::obs {

std::unique_ptr<ObsContext> ObsContext::FromEnv() {
  const char* value = std::getenv(kTraceEnvVar);
  if (value == nullptr || *value == '\0' || std::strcmp(value, "0") == 0) {
    return nullptr;
  }
  return std::make_unique<ObsContext>();
}

}  // namespace ube::obs
