#ifndef UBE_OBS_OBS_H_
#define UBE_OBS_OBS_H_

#include <memory>
#include <string>
#include <string_view>

#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace ube::obs {

/// Knobs for one ObsContext.
struct ObsOptions {
  /// Record counters/gauges/histograms.
  bool metrics = true;
  /// Record scoped spans (chrome-trace export).
  bool trace = true;
  /// Capacity of each solver run's per-iteration telemetry ring.
  int telemetry_capacity = 4096;
};

/// One observability scope: a metrics registry plus a tracer, handed by
/// pointer to whatever should be instrumented (SolverOptions::obs,
/// ProberOptions::obs, Engine::Options::obs). Null pointer = observability
/// off; every instrumentation site guards on that, so the disabled cost is
/// one pointer test.
///
/// Instrumentation NEVER feeds back into the computation: with a fixed
/// seed, results (Solution, Acquisition, ...) are bit-identical with or
/// without a context attached, and the integer metrics totals are
/// themselves identical for any thread count (see MetricsRegistry).
class ObsContext {
 public:
  /// Environment switch read by FromEnv(): unset/"0" → disabled.
  static constexpr const char* kTraceEnvVar = "UBE_TRACE";

  explicit ObsContext(const ObsOptions& options = ObsOptions())
      : options_(options),
        metrics_(options.metrics),
        tracer_(options.trace) {}

  /// A fresh context when UBE_TRACE is set to anything but "0"; null
  /// otherwise. The conventional opt-in for binaries:
  ///   std::unique_ptr<obs::ObsContext> obs = obs::ObsContext::FromEnv();
  ///   options.obs = obs.get();  // fine when null
  static std::unique_ptr<ObsContext> FromEnv();

  const ObsOptions& options() const { return options_; }
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }

 private:
  ObsOptions options_;
  MetricsRegistry metrics_;
  Tracer tracer_;
};

/// Opens a span on `obs`'s tracer, or a no-op span when `obs` is null.
inline Tracer::Span SpanIf(ObsContext* obs, std::string_view name) {
  return obs != nullptr ? obs->tracer().StartSpan(name) : Tracer::Span();
}

}  // namespace ube::obs

#endif  // UBE_OBS_OBS_H_
