#ifndef UBE_OBS_TRACE_H_
#define UBE_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ube::obs {

/// Scoped-span tracer. Spans are RAII objects (Tracer::Span) that record a
/// complete event when they end; the buffer exports as Chrome trace-event
/// JSON (loadable in chrome://tracing or https://ui.perfetto.dev) and as a
/// compact per-name text summary.
///
/// A disabled tracer (or a Span obtained from a null tracer pointer, see
/// SpanIf in obs.h) makes every operation a no-op that never reads the
/// clock. Recording is thread-safe; span timestamps are wall-clock, so the
/// JSON is a profile, never part of any determinism contract.
class Tracer {
 public:
  explicit Tracer(bool enabled = true);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return enabled_; }

  /// An open span. Ends (and records its event) on destruction or End(),
  /// whichever comes first. Movable, not copyable; a default-constructed
  /// Span is a no-op.
  class Span {
   public:
    Span() = default;
    Span(Span&& other) noexcept { *this = std::move(other); }
    Span& operator=(Span&& other) noexcept;
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span() { End(); }

    /// Ends the span now (idempotent).
    void End();

   private:
    friend class Tracer;
    Span(Tracer* tracer, std::string_view name);

    Tracer* tracer_ = nullptr;
    std::string name_;
    double start_us_ = 0.0;
  };

  Span StartSpan(std::string_view name) { return Span(this, name); }

  /// Records a complete event directly (for callers that measured the
  /// interval themselves).
  void AddEvent(std::string_view name, double start_us, double duration_us);

  /// Microseconds since the tracer was constructed.
  double NowMicros() const;

  int64_t num_events() const;
  void Clear();

  /// Chrome trace-event JSON: {"traceEvents": [...], ...}.
  std::string ToChromeTraceJson() const;

  /// Per-span-name aggregate (count, total/mean/max ms), sorted by name.
  std::string Summary() const;

 private:
  struct Event {
    std::string name;
    double start_us = 0.0;
    double duration_us = 0.0;
    int tid = 0;
  };

  const bool enabled_;
  const std::chrono::steady_clock::time_point origin_;
  mutable std::mutex mu_;
  std::vector<Event> events_;
};

}  // namespace ube::obs

#endif  // UBE_OBS_TRACE_H_
