#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <limits>

namespace ube::obs {

namespace {

// MetricId layout: kind in the top bits, slot (index within the kind's
// definition table) in the rest.
constexpr int kKindShift = 28;
constexpr MetricsRegistry::MetricId kSlotMask = (1 << kKindShift) - 1;
enum MetricKind : int32_t { kCounterKind = 0, kGaugeKind = 1, kHistKind = 2 };

MetricsRegistry::MetricId PackId(MetricKind kind, size_t slot) {
  return static_cast<MetricsRegistry::MetricId>(
      (static_cast<int32_t>(kind) << kKindShift) |
      static_cast<int32_t>(slot));
}

std::atomic<uint64_t> g_next_epoch{1};

// One thread-local sink pointer per live registry this thread has touched,
// keyed by the registry's process-unique epoch (never by pointer: a
// destroyed registry's address can be reused, its epoch cannot).
struct TlsEntry {
  uint64_t epoch = 0;
  void* sink = nullptr;
};
thread_local std::vector<TlsEntry> t_sinks;

std::string FormatCount(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.1f", value);
  return buffer;
}

}  // namespace

// A histogram's per-thread accumulation state. Single writer (the owning
// thread); atomics make the concurrent Snapshot() reads race-free. The
// bucket bounds are copied in at sink creation (under the registry mutex)
// so the record path never touches shared definition storage.
struct MetricsRegistry::HistSlot {
  explicit HistSlot(std::vector<int64_t> bucket_bounds)
      : bounds(std::move(bucket_bounds)), buckets(bounds.size() + 1) {}
  const std::vector<int64_t> bounds;
  std::vector<std::atomic<int64_t>> buckets;
  std::atomic<int64_t> count{0};
  std::atomic<int64_t> sum{0};
  std::atomic<int64_t> min{std::numeric_limits<int64_t>::max()};
  std::atomic<int64_t> max{std::numeric_limits<int64_t>::min()};
};

struct MetricsRegistry::Sink {
  Sink(size_t counter_slots, const std::vector<HistDef>& defs)
      : counters(counter_slots) {
    hists.reserve(defs.size());
    for (const HistDef& def : defs) {
      hists.push_back(std::make_unique<HistSlot>(def.bounds));
    }
  }
  std::vector<std::atomic<int64_t>> counters;
  std::vector<std::unique_ptr<HistSlot>> hists;
};

MetricsRegistry::MetricsRegistry(bool enabled)
    : enabled_(enabled),
      epoch_(g_next_epoch.fetch_add(1, std::memory_order_relaxed)) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::MetricId MetricsRegistry::Counter(std::string_view name) {
  if (!enabled_) return kInvalidMetric;
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < counter_names_.size(); ++i) {
    if (counter_names_[i] == name) return PackId(kCounterKind, i);
  }
  counter_names_.emplace_back(name);
  return PackId(kCounterKind, counter_names_.size() - 1);
}

MetricsRegistry::MetricId MetricsRegistry::Gauge(std::string_view name) {
  if (!enabled_) return kInvalidMetric;
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < gauges_.size(); ++i) {
    if (gauges_[i].name == name) return PackId(kGaugeKind, i);
  }
  gauges_.push_back(GaugeCell{std::string(name), 0.0});
  return PackId(kGaugeKind, gauges_.size() - 1);
}

MetricsRegistry::MetricId MetricsRegistry::Histogram(
    std::string_view name, std::vector<int64_t> bounds) {
  if (!enabled_) return kInvalidMetric;
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < hist_defs_.size(); ++i) {
    if (hist_defs_[i].name == name) return PackId(kHistKind, i);
  }
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
  hist_defs_.push_back(HistDef{std::string(name), std::move(bounds)});
  return PackId(kHistKind, hist_defs_.size() - 1);
}

MetricsRegistry::Sink* MetricsRegistry::NewSinkLocked() {
  sinks_.push_back(
      std::make_unique<Sink>(counter_names_.size(), hist_defs_));
  return sinks_.back().get();
}

MetricsRegistry::Sink* MetricsRegistry::SinkFor(size_t min_counters,
                                                size_t min_hists) {
  TlsEntry* mine = nullptr;
  for (TlsEntry& entry : t_sinks) {
    if (entry.epoch == epoch_) {
      mine = &entry;
      break;
    }
  }
  if (mine != nullptr) {
    Sink* sink = static_cast<Sink*>(mine->sink);
    if (sink->counters.size() >= min_counters &&
        sink->hists.size() >= min_hists) {
      return sink;
    }
  }
  // First touch from this thread, or a metric registered after this
  // thread's sink was sized: retire the old sink (its totals still merge)
  // and start a fresh one sized to the current definitions.
  std::lock_guard<std::mutex> lock(mu_);
  Sink* sink = NewSinkLocked();
  if (mine != nullptr) {
    mine->sink = sink;
  } else {
    t_sinks.push_back(TlsEntry{epoch_, sink});
  }
  return sink;
}

void MetricsRegistry::Add(MetricId id, int64_t delta) {
  if (!enabled_ || id < 0) return;
  const auto slot = static_cast<size_t>(id & kSlotMask);
  Sink* sink = SinkFor(slot + 1, 0);
  sink->counters[slot].fetch_add(delta, std::memory_order_relaxed);
}

void MetricsRegistry::Set(MetricId id, double value) {
  if (!enabled_ || id < 0) return;
  const auto slot = static_cast<size_t>(id & kSlotMask);
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[slot].value = value;
}

void MetricsRegistry::Observe(MetricId id, int64_t value) {
  if (!enabled_ || id < 0) return;
  const auto slot = static_cast<size_t>(id & kSlotMask);
  Sink* sink = SinkFor(0, slot + 1);
  HistSlot& hist = *sink->hists[slot];
  const std::vector<int64_t>& bounds = hist.bounds;
  size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds.begin(), bounds.end(), value) - bounds.begin());
  hist.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  hist.count.fetch_add(1, std::memory_order_relaxed);
  hist.sum.fetch_add(value, std::memory_order_relaxed);
  // Single writer per sink: a plain load/compare/store is race-free.
  if (value < hist.min.load(std::memory_order_relaxed)) {
    hist.min.store(value, std::memory_order_relaxed);
  }
  if (value > hist.max.load(std::memory_order_relaxed)) {
    hist.max.store(value, std::memory_order_relaxed);
  }
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot out;
  if (!enabled_) return out;
  std::lock_guard<std::mutex> lock(mu_);

  std::vector<int64_t> counter_totals(counter_names_.size(), 0);
  std::vector<HistogramSnapshot> hists(hist_defs_.size());
  for (size_t h = 0; h < hist_defs_.size(); ++h) {
    hists[h].name = hist_defs_[h].name;
    hists[h].bounds = hist_defs_[h].bounds;
    hists[h].counts.assign(hist_defs_[h].bounds.size() + 1, 0);
    hists[h].min = std::numeric_limits<int64_t>::max();
    hists[h].max = std::numeric_limits<int64_t>::min();
  }
  for (const std::unique_ptr<Sink>& sink : sinks_) {
    for (size_t c = 0; c < sink->counters.size(); ++c) {
      counter_totals[c] +=
          sink->counters[c].load(std::memory_order_relaxed);
    }
    for (size_t h = 0; h < sink->hists.size(); ++h) {
      const HistSlot& slot = *sink->hists[h];
      HistogramSnapshot& merged = hists[h];
      for (size_t b = 0; b < slot.buckets.size(); ++b) {
        merged.counts[b] += slot.buckets[b].load(std::memory_order_relaxed);
      }
      merged.count += slot.count.load(std::memory_order_relaxed);
      merged.sum += slot.sum.load(std::memory_order_relaxed);
      merged.min =
          std::min(merged.min, slot.min.load(std::memory_order_relaxed));
      merged.max =
          std::max(merged.max, slot.max.load(std::memory_order_relaxed));
    }
  }
  for (size_t c = 0; c < counter_names_.size(); ++c) {
    out.counters.push_back(CounterSnapshot{counter_names_[c],
                                           counter_totals[c]});
  }
  for (const GaugeCell& gauge : gauges_) {
    out.gauges.push_back(GaugeSnapshot{gauge.name, gauge.value});
  }
  for (HistogramSnapshot& hist : hists) {
    if (hist.count == 0) {
      hist.min = 0;
      hist.max = 0;
    }
    out.histograms.push_back(std::move(hist));
  }
  auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(out.counters.begin(), out.counters.end(), by_name);
  std::sort(out.gauges.begin(), out.gauges.end(), by_name);
  std::sort(out.histograms.begin(), out.histograms.end(), by_name);
  return out;
}

void MetricsRegistry::Reset() {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::unique_ptr<Sink>& sink : sinks_) {
    for (std::atomic<int64_t>& counter : sink->counters) {
      counter.store(0, std::memory_order_relaxed);
    }
    for (const std::unique_ptr<HistSlot>& hist : sink->hists) {
      for (std::atomic<int64_t>& bucket : hist->buckets) {
        bucket.store(0, std::memory_order_relaxed);
      }
      hist->count.store(0, std::memory_order_relaxed);
      hist->sum.store(0, std::memory_order_relaxed);
      hist->min.store(std::numeric_limits<int64_t>::max(),
                      std::memory_order_relaxed);
      hist->max.store(std::numeric_limits<int64_t>::min(),
                      std::memory_order_relaxed);
    }
  }
  for (GaugeCell& gauge : gauges_) gauge.value = 0.0;
}

const CounterSnapshot* MetricsSnapshot::FindCounter(
    std::string_view name) const {
  for (const CounterSnapshot& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const GaugeSnapshot* MetricsSnapshot::FindGauge(std::string_view name) const {
  for (const GaugeSnapshot& g : gauges) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

const HistogramSnapshot* MetricsSnapshot::FindHistogram(
    std::string_view name) const {
  for (const HistogramSnapshot& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

std::string FormatMetricsReport(const MetricsSnapshot& snapshot) {
  std::string out;
  if (!snapshot.counters.empty()) {
    out += "counters:\n";
    for (const CounterSnapshot& c : snapshot.counters) {
      out += "  " + c.name + " = " + std::to_string(c.value) + "\n";
    }
  }
  if (!snapshot.gauges.empty()) {
    out += "gauges:\n";
    for (const GaugeSnapshot& g : snapshot.gauges) {
      out += "  " + g.name + " = " + FormatCount(g.value) + "\n";
    }
  }
  if (!snapshot.histograms.empty()) {
    out += "histograms:\n";
    for (const HistogramSnapshot& h : snapshot.histograms) {
      out += "  " + h.name + ": count=" + std::to_string(h.count) +
             " sum=" + std::to_string(h.sum) +
             " min=" + std::to_string(h.min) +
             " max=" + std::to_string(h.max) +
             " mean=" + FormatCount(h.Mean()) + "\n";
      if (h.count > 0) {
        out += "    ";
        for (size_t b = 0; b < h.counts.size(); ++b) {
          if (b > 0) out += " ";
          out += (b < h.bounds.size()
                      ? "[<=" + std::to_string(h.bounds[b]) + "]="
                      : "[inf]=") +
                 std::to_string(h.counts[b]);
        }
        out += "\n";
      }
    }
  }
  if (out.empty()) out = "(no metrics recorded)\n";
  return out;
}

}  // namespace ube::obs
