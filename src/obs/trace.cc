#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>

namespace ube::obs {

namespace {

// Small dense thread ids for the "tid" field: assigned once per OS thread,
// stable across tracers so one process's traces line up.
int CurrentTid() {
  static std::atomic<int> next{0};
  thread_local int tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

void AppendJsonEscaped(std::string_view text, std::string* out) {
  for (char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          *out += buffer;
        } else {
          *out += c;
        }
    }
  }
}

std::string FormatFixed(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f", value);
  return buffer;
}

}  // namespace

Tracer::Tracer(bool enabled)
    : enabled_(enabled), origin_(std::chrono::steady_clock::now()) {}

double Tracer::NowMicros() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - origin_)
      .count();
}

Tracer::Span::Span(Tracer* tracer, std::string_view name) {
  if (tracer == nullptr || !tracer->enabled()) return;
  tracer_ = tracer;
  name_ = name;
  start_us_ = tracer->NowMicros();
}

Tracer::Span& Tracer::Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    End();
    tracer_ = other.tracer_;
    name_ = std::move(other.name_);
    start_us_ = other.start_us_;
    other.tracer_ = nullptr;
  }
  return *this;
}

void Tracer::Span::End() {
  if (tracer_ == nullptr) return;
  tracer_->AddEvent(name_, start_us_, tracer_->NowMicros() - start_us_);
  tracer_ = nullptr;
}

void Tracer::AddEvent(std::string_view name, double start_us,
                      double duration_us) {
  if (!enabled_) return;
  Event event;
  event.name = name;
  event.start_us = start_us;
  event.duration_us = duration_us;
  event.tid = CurrentTid();
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

int64_t Tracer::num_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(events_.size());
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

std::string Tracer::ToChromeTraceJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  for (size_t i = 0; i < events_.size(); ++i) {
    const Event& event = events_[i];
    if (i > 0) out += ",";
    out += "\n{\"name\":\"";
    AppendJsonEscaped(event.name, &out);
    out += "\",\"cat\":\"ube\",\"ph\":\"X\",\"pid\":0,\"tid\":" +
           std::to_string(event.tid) + ",\"ts\":" +
           FormatFixed(event.start_us) + ",\"dur\":" +
           FormatFixed(event.duration_us) + "}";
  }
  out += "\n]}\n";
  return out;
}

std::string Tracer::Summary() const {
  struct Agg {
    int64_t count = 0;
    double total_us = 0.0;
    double max_us = 0.0;
  };
  std::map<std::string, Agg> by_name;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Event& event : events_) {
      Agg& agg = by_name[event.name];
      ++agg.count;
      agg.total_us += event.duration_us;
      agg.max_us = std::max(agg.max_us, event.duration_us);
    }
  }
  if (by_name.empty()) return "(no spans recorded)\n";
  std::string out;
  for (const auto& [name, agg] : by_name) {
    out += "  " + name + ": count=" + std::to_string(agg.count) +
           " total=" + FormatFixed(agg.total_us / 1e3) + "ms mean=" +
           FormatFixed(agg.total_us / 1e3 / static_cast<double>(agg.count)) +
           "ms max=" + FormatFixed(agg.max_us / 1e3) + "ms\n";
  }
  return out;
}

}  // namespace ube::obs
