#ifndef UBE_OBS_TELEMETRY_H_
#define UBE_OBS_TELEMETRY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ube::obs {

/// One solver outer-iteration's convergence telemetry. Solver-specific
/// fields are zero where they do not apply (temperature outside annealing,
/// tabu_occupancy outside tabu search).
struct IterationSample {
  int64_t iteration = 0;          ///< outer iteration (1-based, as counted)
  int64_t evaluations = 0;        ///< evaluator computations so far
  double incumbent_quality = 0.0; ///< best Q(S) seen so far
  int32_t neighborhood = 0;       ///< candidates scored this iteration
  int32_t tabu_occupancy = 0;     ///< sources currently tabu (tabu search)
  double temperature = 0.0;       ///< current temperature (annealing)
  int32_t stall = 0;              ///< iterations since the last improvement
};

/// Fixed-capacity ring of the most recent IterationSamples. Bounded so an
/// instrumented long run cannot grow without limit; `dropped()` reports how
/// many old samples the ring overwrote. Single-threaded by design — it
/// lives inside one solver's Solve() loop.
class TelemetryRing {
 public:
  explicit TelemetryRing(int capacity)
      : capacity_(capacity > 0 ? static_cast<std::size_t>(capacity) : 1) {}

  void Record(const IterationSample& sample) {
    if (buffer_.size() < capacity_) {
      buffer_.push_back(sample);
    } else {
      buffer_[next_] = sample;
      next_ = (next_ + 1) % capacity_;
    }
    ++total_;
  }

  int64_t total() const { return total_; }
  int64_t dropped() const {
    return total_ - static_cast<int64_t>(buffer_.size());
  }

  /// Samples in recording order (oldest surviving sample first).
  std::vector<IterationSample> Samples() const {
    std::vector<IterationSample> out;
    out.reserve(buffer_.size());
    for (std::size_t i = 0; i < buffer_.size(); ++i) {
      out.push_back(buffer_[(next_ + i) % buffer_.size()]);
    }
    return out;
  }

 private:
  std::size_t capacity_;
  std::size_t next_ = 0;  // overwrite cursor == index of the oldest sample
  int64_t total_ = 0;
  std::vector<IterationSample> buffer_;
};

}  // namespace ube::obs

#endif  // UBE_OBS_TELEMETRY_H_
