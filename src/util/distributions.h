#ifndef UBE_UTIL_DISTRIBUTIONS_H_
#define UBE_UTIL_DISTRIBUTIONS_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace ube {

/// Samples ranks from a Zipf distribution over {1, ..., n} with exponent s:
/// P(rank = k) ∝ 1 / k^s.
///
/// Used by the workload generator to assign source cardinalities following
/// the paper's "cardinality ... follows a Zipf distribution" (Section 7.1).
/// Precomputes the CDF once; each draw is a binary search (O(log n)).
class ZipfSampler {
 public:
  /// n >= 1, s > 0.
  ZipfSampler(int n, double s);

  /// Draws a rank in [1, n].
  int Sample(Rng& rng) const;

  int n() const { return static_cast<int>(cdf_.size()); }
  double s() const { return s_; }

 private:
  double s_;
  std::vector<double> cdf_;  // cdf_[k-1] = P(rank <= k)
};

/// Draws from Normal(mean, stddev) truncated to be strictly greater than
/// `lower` (resampling; `lower` must be below mean + a few stddevs to
/// terminate quickly). Used for the MTTF source characteristic
/// (mean 100 days, stddev 40, Section 7.1).
double TruncatedNormal(Rng& rng, double mean, double stddev, double lower);

/// Maps a Zipf rank r in [1, n] onto the inclusive value range [lo, hi] so
/// that rank 1 -> hi (largest) and rank n -> lo, interpolating by 1/r:
/// value(r) = lo + (hi - lo) * ((1/r - 1/n) / (1 - 1/n)) for n > 1.
/// This reproduces "cardinality ranging from 10,000 to 1,000,000 that
/// follows a Zipf distribution": many small sources, few large ones.
int64_t ZipfRankToRange(int rank, int n, int64_t lo, int64_t hi);

}  // namespace ube

#endif  // UBE_UTIL_DISTRIBUTIONS_H_
