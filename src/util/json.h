#ifndef UBE_UTIL_JSON_H_
#define UBE_UTIL_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "util/result.h"

namespace ube::json {

/// A parsed JSON value. Objects use std::map, so iteration order is sorted
/// by key — stable across platforms, which the golden files and the
/// BENCH_*.json comparisons both rely on.
struct Value;
using Object = std::map<std::string, Value>;
using Array = std::vector<Value>;

struct Value {
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
      data = nullptr;
};

/// Parses one JSON document (objects, arrays, numbers, strings, bools,
/// null — the subset the repo's files use). Trailing characters after the
/// document are an error.
Result<Value> Parse(std::string_view text);

/// Shortest round-trippable rendering of a double: `%.17g` with the locale
/// decimal separator normalized to '.', non-finite values become `null`
/// (JSON has no inf/nan).
std::string FormatDouble(double value);

/// Renders `text` as a JSON string literal, quotes included.
std::string EscapeString(std::string_view text);

/// Streaming emitter with insertion-order keys (stable output: keys appear
/// exactly in the order the caller wrote them). The caller is responsible
/// for structural validity; commas and colons are managed automatically.
class Writer {
 public:
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();
  /// Writes an object key; the next call must write its value.
  void Key(std::string_view key);
  void String(std::string_view value);
  void Number(double value);
  void Number(int64_t value);
  void Bool(bool value);
  void Null();

  const std::string& str() const { return out_; }

 private:
  /// Emits the separating comma (if needed) before a key or array element.
  void Prefix();

  std::string out_;
  std::vector<bool> first_;   // per open container: is the next entry first?
  bool after_key_ = false;    // value immediately follows a Key()
};

}  // namespace ube::json

#endif  // UBE_UTIL_JSON_H_
