#include "util/distributions.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace ube {

ZipfSampler::ZipfSampler(int n, double s) : s_(s) {
  UBE_CHECK(n >= 1, "ZipfSampler requires n >= 1");
  UBE_CHECK(s > 0.0, "ZipfSampler requires s > 0");
  cdf_.resize(n);
  double total = 0.0;
  for (int k = 1; k <= n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k), s);
    cdf_[k - 1] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

int ZipfSampler::Sample(Rng& rng) const {
  double u = rng.UniformDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<int>(it - cdf_.begin()) + 1;
}

double TruncatedNormal(Rng& rng, double mean, double stddev, double lower) {
  UBE_CHECK(stddev > 0.0, "TruncatedNormal requires stddev > 0");
  for (int attempt = 0; attempt < 1000; ++attempt) {
    double x = mean + stddev * rng.StandardNormal();
    if (x > lower) return x;
  }
  // Pathological truncation point; fall back to the boundary.
  return lower + stddev * 1e-6;
}

int64_t ZipfRankToRange(int rank, int n, int64_t lo, int64_t hi) {
  UBE_CHECK(n >= 1 && rank >= 1 && rank <= n, "rank out of range");
  UBE_CHECK(lo <= hi, "ZipfRankToRange requires lo <= hi");
  if (n == 1) return hi;
  double inv_r = 1.0 / static_cast<double>(rank);
  double inv_n = 1.0 / static_cast<double>(n);
  double frac = (inv_r - inv_n) / (1.0 - inv_n);  // 1 at rank 1, 0 at rank n
  return lo + static_cast<int64_t>(
                  std::llround(frac * static_cast<double>(hi - lo)));
}

}  // namespace ube
