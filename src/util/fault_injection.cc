#include "util/fault_injection.h"

#include <algorithm>
#include <cstdlib>

#include "util/rng.h"

namespace ube {

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kTransient:
      return "transient";
    case FaultKind::kTimeout:
      return "timeout";
    case FaultKind::kPermanent:
      return "permanent";
    case FaultKind::kStale:
      return "stale";
    case FaultKind::kTruncated:
      return "truncated";
  }
  return "unknown";
}

uint64_t FaultPlan::KeyFor(std::string_view source_name) {
  // FNV-1a over the bytes, then splitmix64 to spread short names.
  uint64_t hash = 14695981039346656037ull;
  for (char c : source_name) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return SplitMix64(hash);
}

FaultDecision FaultPlan::Decide(uint64_t key, int attempt) const {
  FaultDecision decision;
  // Source-sticky draws: the same for every attempt against this source.
  Rng source_rng(SplitMix64(seed_ ^ key));
  const bool permanent = source_rng.Bernoulli(rates_.permanent);
  const bool stale = source_rng.Bernoulli(rates_.stale);
  const double staleness = source_rng.UniformDouble(0.05, 1.0);
  const bool truncated = source_rng.Bernoulli(rates_.truncated);
  const double base_latency_ms = source_rng.UniformDouble(5.0, 50.0);

  // Attempt-level draws.
  Rng attempt_rng = source_rng.Fork(static_cast<uint64_t>(attempt) + 1);
  decision.latency_ms = base_latency_ms * attempt_rng.UniformDouble(0.5, 2.0);

  if (permanent) {
    decision.kind = FaultKind::kPermanent;
    return decision;
  }
  if (attempt_rng.Bernoulli(rates_.timeout)) {
    decision.kind = FaultKind::kTimeout;
    decision.latency_ms = 1e12;  // prober clips to the attempt deadline
    return decision;
  }
  if (attempt_rng.Bernoulli(rates_.transient)) {
    decision.kind = FaultKind::kTransient;
    return decision;
  }
  if (stale) {
    decision.kind = FaultKind::kStale;
    decision.staleness = staleness;
    return decision;
  }
  if (truncated) {
    decision.kind = FaultKind::kTruncated;
    return decision;
  }
  return decision;
}

FaultRates FaultPlan::RatesFromEnv(FaultRates defaults) {
  const char* raw = std::getenv(kFaultRateEnvVar);
  if (raw == nullptr || raw[0] == '\0') return defaults;
  char* end = nullptr;
  double rate = std::strtod(raw, &end);
  if (end == raw) return defaults;
  rate = std::clamp(rate, 0.0, 1.0);
  defaults.transient = rate;
  // Keep a fixed transient:timeout pressure ratio so one knob drives both
  // retryable fault classes.
  defaults.timeout = std::clamp(rate / 3.0, 0.0, 1.0);
  return defaults;
}

}  // namespace ube
