#ifndef UBE_UTIL_BACKOFF_H_
#define UBE_UTIL_BACKOFF_H_

#include "util/rng.h"

namespace ube {

/// Retry policy for one probe sequence against a remote source: a bounded
/// number of attempts, a per-attempt deadline, and capped exponential
/// backoff with *decorrelated jitter* between attempts
/// (delay_k = min(cap, Uniform(base, multiplier · delay_{k-1}))), which
/// spreads retry storms better than plain exponential-with-jitter.
///
/// All durations are in (simulated) milliseconds — the prober advances a
/// deterministic virtual clock instead of sleeping, so tests and fault
/// replays run instantly (see DESIGN.md §6).
struct BackoffPolicy {
  /// Lower bound of the first delay and of every jitter window.
  double base_delay_ms = 50.0;
  /// Upper bound on any single delay.
  double max_delay_ms = 5'000.0;
  /// Growth factor of the jitter window between consecutive delays.
  double multiplier = 3.0;
  /// Total probe attempts per source (1 = no retry). The retry budget.
  int max_attempts = 4;
  /// Per-attempt deadline: an attempt whose (simulated) service time
  /// exceeds this is classified DEADLINE_EXCEEDED and retried.
  double attempt_deadline_ms = 1'000.0;
  /// Hard cap on the per-source simulated time (service + backoff + breaker
  /// cool-down). Once exceeded, no further attempt is made.
  double total_budget_ms = 20'000.0;
};

/// Produces the successive retry delays of one probe sequence.
/// Deterministic: the same Rng state and policy always yield the same
/// schedule, which is what makes fault plans replayable from a seed.
class BackoffSchedule {
 public:
  BackoffSchedule(const BackoffPolicy& policy, Rng rng);

  /// Delay to wait before the next retry. Each call advances the schedule.
  double NextDelayMs();

  /// Delays handed out so far.
  int num_delays() const { return num_delays_; }

 private:
  BackoffPolicy policy_;
  Rng rng_;
  double prev_ms_;
  int num_delays_ = 0;
};

}  // namespace ube

#endif  // UBE_UTIL_BACKOFF_H_
