#ifndef UBE_UTIL_TIMER_H_
#define UBE_UTIL_TIMER_H_

#include <chrono>

namespace ube {

/// Time source abstraction. Production code leaves it null and reads the
/// real steady clock; tests inject a ManualClock so time-limit stops are
/// deterministic — the same simulated-clock idiom the acquisition layer's
/// BackoffPolicy uses (all durations virtual, nothing sleeps).
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time in seconds from an arbitrary fixed origin.
  virtual double NowSeconds() const = 0;
};

/// Deterministic virtual clock. Time advances only when told to — either
/// explicitly (AdvanceMs) or by a fixed amount per reading
/// (set_auto_advance_ms), which models "every clock query costs X ms" and
/// lets a tiny time limit expire after an exact number of checks.
class ManualClock final : public Clock {
 public:
  double NowSeconds() const override {
    double now = now_seconds_;
    now_seconds_ += auto_advance_seconds_;
    return now;
  }

  void AdvanceMs(double ms) { now_seconds_ += ms * 1e-3; }
  void set_auto_advance_ms(double ms) { auto_advance_seconds_ = ms * 1e-3; }

  double now_seconds() const { return now_seconds_; }

 private:
  mutable double now_seconds_ = 0.0;
  double auto_advance_seconds_ = 0.0;
};

/// Monotonic stopwatch used by solvers (time limits) and by the benchmark
/// harnesses (Figures 5 and 6 report execution time). Reads the real
/// steady clock unless constructed with an injected Clock.
class WallTimer {
 public:
  WallTimer() : start_(Steady::now()) {}

  /// Stopwatch over an injected time source (nullptr = real clock, so
  /// call sites can pass through an optional clock unconditionally).
  explicit WallTimer(const Clock* clock) : clock_(clock) {
    if (clock_ != nullptr) {
      start_seconds_ = clock_->NowSeconds();
    } else {
      start_ = Steady::now();
    }
  }

  /// Restarts the stopwatch.
  void Reset() {
    if (clock_ != nullptr) {
      start_seconds_ = clock_->NowSeconds();
    } else {
      start_ = Steady::now();
    }
  }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    if (clock_ != nullptr) return clock_->NowSeconds() - start_seconds_;
    return std::chrono::duration<double>(Steady::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Steady = std::chrono::steady_clock;
  const Clock* clock_ = nullptr;
  Steady::time_point start_{};
  double start_seconds_ = 0.0;
};

}  // namespace ube

#endif  // UBE_UTIL_TIMER_H_
