#ifndef UBE_UTIL_TIMER_H_
#define UBE_UTIL_TIMER_H_

#include <chrono>

namespace ube {

/// Monotonic wall-clock stopwatch used by solvers (time limits) and by the
/// benchmark harnesses (Figures 5 and 6 report execution time).
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ube

#endif  // UBE_UTIL_TIMER_H_
