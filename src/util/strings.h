#ifndef UBE_UTIL_STRINGS_H_
#define UBE_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace ube {

/// Returns `s` lowercased (ASCII only; attribute names in Web query
/// interfaces are ASCII in practice).
std::string AsciiToLower(std::string_view s);

/// Splits on any run of characters from `delims`, dropping empty pieces.
std::vector<std::string> SplitTokens(std::string_view s,
                                     std::string_view delims = " \t\r\n");

/// Trims ASCII whitespace from both ends.
std::string_view TrimWhitespace(std::string_view s);

/// Normalizes an attribute name for similarity computation: lowercases and
/// collapses every run of non-alphanumeric characters into a single space.
/// "First_Name " and "first  name" normalize identically.
std::string NormalizeAttributeName(std::string_view name);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

}  // namespace ube

#endif  // UBE_UTIL_STRINGS_H_
