#ifndef UBE_UTIL_STATUS_H_
#define UBE_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace ube {

/// Error category for a failed operation.
///
/// µBE never throws exceptions across its public API; recoverable failures
/// are reported through Status / Result<T> (see result.h). Programmer errors
/// (violated preconditions) abort via UBE_CHECK instead.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< caller-supplied value violates the documented contract
  kNotFound,          ///< referenced entity (source, attribute, QEF) does not exist
  kFailedPrecondition,///< operation not valid in the current object state
  kInfeasible,        ///< optimization constraints admit no solution
  kInternal,          ///< invariant violation that was caught gracefully
  kUnavailable,       ///< a remote source is (transiently) unreachable
  kDeadlineExceeded,  ///< an operation ran past its deadline
};

/// Returns a stable human-readable name ("OK", "INVALID_ARGUMENT", ...).
std::string_view StatusCodeName(StatusCode code);

/// A cheap value type describing the outcome of an operation.
///
/// Usage:
///   Status s = engine.AddSource(...);
///   if (!s.ok()) { std::cerr << s << "\n"; return; }
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with the given code and diagnostic message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers, mirroring absl::Status conventions.
  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status Infeasible(std::string message) {
    return Status(StatusCode::kInfeasible, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "INVALID_ARGUMENT: why it failed".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace ube

/// Propagates a non-OK Status to the caller.
#define UBE_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::ube::Status ube_status_tmp_ = (expr);        \
    if (!ube_status_tmp_.ok()) return ube_status_tmp_; \
  } while (false)

#endif  // UBE_UTIL_STATUS_H_
