#ifndef UBE_UTIL_RESULT_H_
#define UBE_UTIL_RESULT_H_

#include <optional>
#include <utility>

#include "util/check.h"
#include "util/status.h"

namespace ube {

/// Either a value of type T or a non-OK Status — µBE's lightweight analogue
/// of absl::StatusOr<T>.
///
/// Accessing value() on a failed Result is a programmer error and aborts
/// (UBE_CHECK), so callers must test ok() first:
///
///   Result<Solution> r = engine.Solve(spec);
///   if (!r.ok()) return r.status();
///   Use(r.value());
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (mirrors absl::StatusOr).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a (necessarily non-OK) Status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    UBE_CHECK(!status_.ok(), "Result<T> constructed from an OK Status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    UBE_CHECK(ok(), "Result::value() called on error: " + status_.ToString());
    return *value_;
  }
  T& value() & {
    UBE_CHECK(ok(), "Result::value() called on error: " + status_.ToString());
    return *value_;
  }
  T&& value() && {
    UBE_CHECK(ok(), "Result::value() called on error: " + status_.ToString());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;           // kOk iff value_ holds a value
  std::optional<T> value_;
};

}  // namespace ube

#endif  // UBE_UTIL_RESULT_H_
