#include "util/backoff.h"

#include <algorithm>

namespace ube {

BackoffSchedule::BackoffSchedule(const BackoffPolicy& policy, Rng rng)
    : policy_(policy), rng_(rng), prev_ms_(policy.base_delay_ms) {}

double BackoffSchedule::NextDelayMs() {
  // Decorrelated jitter: next ~ Uniform(base, multiplier * prev), capped.
  double lo = std::max(0.0, policy_.base_delay_ms);
  double hi = std::max(lo, policy_.multiplier * prev_ms_);
  double delay = hi > lo ? rng_.UniformDouble(lo, hi) : lo;
  delay = std::min(delay, policy_.max_delay_ms);
  prev_ms_ = std::max(delay, lo);
  ++num_delays_;
  return delay;
}

}  // namespace ube
