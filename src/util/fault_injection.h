#ifndef UBE_UTIL_FAULT_INJECTION_H_
#define UBE_UTIL_FAULT_INJECTION_H_

#include <cstdint>
#include <string_view>

namespace ube {

/// What (if anything) goes wrong on one probe attempt against one source.
enum class FaultKind {
  kNone,       ///< probe succeeds with fresh statistics
  kTransient,  ///< attempt fails (UNAVAILABLE); a retry may succeed
  kTimeout,    ///< attempt runs past the per-attempt deadline
  kPermanent,  ///< source is gone for good; retrying is pointless
  kStale,      ///< probe succeeds but serves an old statistics snapshot
  kTruncated,  ///< probe succeeds but the signature is truncated in transit
};

std::string_view FaultKindName(FaultKind kind);

/// Per-attempt / per-source fault probabilities. Rates are independent;
/// permanence, staleness and truncation are properties of a *source*
/// (sticky across attempts), transient failures and timeouts are properties
/// of an *attempt*.
struct FaultRates {
  double transient = 0.0;
  double timeout = 0.0;
  double permanent = 0.0;
  double stale = 0.0;
  double truncated = 0.0;

  bool AllZero() const {
    return transient <= 0.0 && timeout <= 0.0 && permanent <= 0.0 &&
           stale <= 0.0 && truncated <= 0.0;
  }
};

/// The fault drawn for one (source, attempt) pair.
struct FaultDecision {
  FaultKind kind = FaultKind::kNone;
  /// Simulated service time of the attempt. For kTimeout this already
  /// exceeds any sane deadline; the prober clips it to the deadline.
  double latency_ms = 0.0;
  /// Age of the served snapshot for kStale, in (0, 1] (1 = oldest).
  double staleness = 0.0;
};

/// A deterministic, seeded fault-injection plan.
///
/// Decide(key, attempt) is a pure function of (seed, key, attempt) — no
/// shared mutable state — so a plan replays bit-identically regardless of
/// how probe attempts interleave across ThreadPool workers, in the same
/// spirit as the UBE_PROPERTY_SEED replay contract (TESTING.md).
class FaultPlan {
 public:
  /// A plan that never injects faults (the default-constructed plan).
  FaultPlan() = default;
  FaultPlan(uint64_t seed, const FaultRates& rates)
      : seed_(seed), rates_(rates) {}

  /// Draws the fault for probe attempt `attempt` against the source
  /// identified by `key` (use KeyFor(source name)).
  FaultDecision Decide(uint64_t key, int attempt) const;

  /// Stable 64-bit key of a source name (FNV-1a folded through splitmix64).
  static uint64_t KeyFor(std::string_view source_name);

  uint64_t seed() const { return seed_; }
  const FaultRates& rates() const { return rates_; }
  bool enabled() const { return !rates_.AllZero(); }

  /// `defaults` with the transient rate (and, scaled by ratio, the timeout
  /// rate) overridden from the UBE_FAULT_RATE environment variable when it
  /// is set — how the CI fault-injection job elevates the fault pressure
  /// without recompiling. Values are clamped to [0, 1].
  static FaultRates RatesFromEnv(FaultRates defaults);

  /// Name of the environment variable RatesFromEnv reads.
  static constexpr const char* kFaultRateEnvVar = "UBE_FAULT_RATE";

 private:
  uint64_t seed_ = 0;
  FaultRates rates_;
};

}  // namespace ube

#endif  // UBE_UTIL_FAULT_INJECTION_H_
