#ifndef UBE_UTIL_CHECK_H_
#define UBE_UTIL_CHECK_H_

#include <string>

namespace ube::internal {

/// Prints "UBE_CHECK failed at file:line: message" to stderr and aborts.
[[noreturn]] void CheckFailed(const char* file, int line,
                              const std::string& message);

}  // namespace ube::internal

/// Aborts the process with a diagnostic when `cond` is false.
///
/// Used for programmer errors (violated preconditions, broken invariants) —
/// never for conditions that depend on user input; those return ube::Status.
#define UBE_CHECK(cond, message)                                  \
  do {                                                            \
    if (!(cond)) {                                                \
      ::ube::internal::CheckFailed(__FILE__, __LINE__, (message)); \
    }                                                             \
  } while (false)

/// Like assert(): compiled out in NDEBUG builds. For hot inner loops.
#ifdef NDEBUG
#define UBE_DCHECK(cond, message) \
  do {                            \
  } while (false)
#else
#define UBE_DCHECK(cond, message) UBE_CHECK(cond, message)
#endif

#endif  // UBE_UTIL_CHECK_H_
