#ifndef UBE_UTIL_THREAD_POOL_H_
#define UBE_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ube {

/// A fixed-size pool of worker threads for data-parallel loops.
///
/// Deliberately work-stealing-free: ParallelFor hands out loop indices from
/// a single shared atomic counter, so every worker pulls the next undone
/// index and no task migrates between queues. That keeps the pool tiny,
/// predictable and fair for the one workload it serves — scoring a batch of
/// candidate source sets whose per-item cost is similar.
///
/// ParallelFor blocks the calling thread until every index has been
/// processed. The pool itself imposes no ordering between indices; callers
/// that need determinism must make fn(i) depend only on i (as
/// CandidateEvaluator::QualityBatch does) and sequence any reduction
/// afterwards.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers. 0 means HardwareConcurrency(); values
  /// below that floor are clamped to 1.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Runs fn(i) for every i in [0, n) across the workers and blocks until
  /// all calls returned. fn must be safe to invoke concurrently for
  /// distinct indices. Not reentrant: do not call ParallelFor from inside
  /// fn or from two threads at once.
  ///
  /// Exception safety: a throwing fn(i) does NOT take down the worker (which
  /// would std::terminate the process). The first exception of the batch is
  /// captured, the remaining indices still run, and the exception is
  /// rethrown here, on the calling thread, once the batch has drained. The
  /// pool stays fully usable for subsequent batches.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// std::thread::hardware_concurrency with a floor of 1 (the standard
  /// allows 0 for "unknown").
  static int HardwareConcurrency();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  // State of the current ParallelFor batch, guarded by mu_ (except next_,
  // which workers race on by design).
  const std::function<void(size_t)>* fn_ = nullptr;
  size_t batch_size_ = 0;
  std::atomic<size_t> next_{0};
  int active_workers_ = 0;
  uint64_t epoch_ = 0;
  bool shutdown_ = false;
  std::exception_ptr batch_exception_;  // first exception of the batch
};

}  // namespace ube

#endif  // UBE_UTIL_THREAD_POOL_H_
