#include "util/rng.h"

#include <cmath>
#include <numbers>

namespace ube {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& lane : s_) {
    sm += 0x9e3779b97f4a7c15ULL;
    lane = SplitMix64(sm);
  }
  // xoshiro256** requires a nonzero state; splitmix64 of distinct inputs
  // cannot produce four zeros, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t bound) {
  UBE_CHECK(bound > 0, "UniformInt bound must be positive");
  // Lemire's nearly-divisionless method.
  uint64_t x = Next64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<uint64_t>(m);
  if (lo < bound) {
    uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = Next64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  UBE_CHECK(lo <= hi, "UniformInt requires lo <= hi");
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next64());  // full 64-bit range
  return lo + static_cast<int64_t>(UniformInt(span));
}

double Rng::UniformDouble() {
  // 53 high bits -> [0, 1) with full double precision.
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::StandardNormal() {
  // Box–Muller. Draw u1 in (0, 1] to avoid log(0).
  double u1 = 1.0 - UniformDouble();
  double u2 = UniformDouble();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

Rng Rng::Fork(uint64_t label) {
  uint64_t child_seed = SplitMix64(Next64() ^ SplitMix64(label));
  return Rng(child_seed);
}

}  // namespace ube
