#include "util/strings.h"

#include <cctype>

namespace ube {

std::string AsciiToLower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    out.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

std::vector<std::string> SplitTokens(std::string_view s,
                                     std::string_view delims) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start < s.size()) {
    size_t end = s.find_first_of(delims, start);
    if (end == std::string_view::npos) end = s.size();
    if (end > start) out.emplace_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

std::string_view TrimWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string NormalizeAttributeName(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  bool pending_space = false;
  for (char raw : name) {
    auto c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      if (pending_space && !out.empty()) out.push_back(' ');
      pending_space = false;
      out.push_back(static_cast<char>(std::tolower(c)));
    } else {
      pending_space = true;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace ube
