#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace ube::json {

namespace {

// ---------------------------------------------------------------------------
// Recursive-descent parser — just the subset the repo's files use. No
// external dependency is available in the container, and the schemas are
// tiny, so a ~100-line parser beats gating the suite on one.
// ---------------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> Parse() {
    Result<Value> value = ParseValue();
    if (!value.ok()) return value;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<Value> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == 't' || c == 'f') return ParseBool();
    if (c == 'n') return ParseNull();
    return ParseNumber();
  }

  Result<Value> ParseObject() {
    ++pos_;  // '{'
    Object object;
    if (Consume('}')) return Value{std::move(object)};
    while (true) {
      SkipWhitespace();
      Result<Value> key = ParseString();
      if (!key.ok()) return key;
      if (!Consume(':')) return Error("expected ':' after object key");
      Result<Value> value = ParseValue();
      if (!value.ok()) return value;
      object[std::get<std::string>(key->data)] = std::move(*value);
      if (Consume(',')) continue;
      if (Consume('}')) return Value{std::move(object)};
      return Error("expected ',' or '}' in object");
    }
  }

  Result<Value> ParseArray() {
    ++pos_;  // '['
    Array array;
    if (Consume(']')) return Value{std::move(array)};
    while (true) {
      Result<Value> value = ParseValue();
      if (!value.ok()) return value;
      array.push_back(std::move(*value));
      if (Consume(',')) continue;
      if (Consume(']')) return Value{std::move(array)};
      return Error("expected ',' or ']' in array");
    }
  }

  Result<Value> ParseString() {
    SkipWhitespace();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Error("expected string");
    }
    ++pos_;
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return Error("bad escape");
        char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          default: return Error("unsupported escape sequence");
        }
      } else {
        out.push_back(c);
      }
    }
    if (pos_ >= text_.size()) return Error("unterminated string");
    ++pos_;  // closing quote
    return Value{std::move(out)};
  }

  Result<Value> ParseBool() {
    if (text_.substr(pos_, 4) == "true") {
      pos_ += 4;
      return Value{true};
    }
    if (text_.substr(pos_, 5) == "false") {
      pos_ += 5;
      return Value{false};
    }
    return Error("expected boolean");
  }

  Result<Value> ParseNull() {
    if (text_.substr(pos_, 4) == "null") {
      pos_ += 4;
      return Value{nullptr};
    }
    return Error("expected null");
  }

  Result<Value> ParseNumber() {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected number");
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Error("malformed number");
    return Value{value};
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Value> Parse(std::string_view text) { return Parser(text).Parse(); }

std::string FormatDouble(double value) {
  if (!std::isfinite(value)) return "null";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  // A non-"C" locale may render the decimal separator as ','.
  for (char* p = buffer; *p != '\0'; ++p) {
    if (*p == ',') *p = '.';
  }
  return buffer;
}

std::string EscapeString(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

void Writer::Prefix() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (first_.empty()) return;
  if (first_.back()) {
    first_.back() = false;
  } else {
    out_.push_back(',');
  }
}

void Writer::BeginObject() {
  Prefix();
  out_.push_back('{');
  first_.push_back(true);
}

void Writer::EndObject() {
  first_.pop_back();
  out_.push_back('}');
}

void Writer::BeginArray() {
  Prefix();
  out_.push_back('[');
  first_.push_back(true);
}

void Writer::EndArray() {
  first_.pop_back();
  out_.push_back(']');
}

void Writer::Key(std::string_view key) {
  Prefix();
  out_ += EscapeString(key);
  out_.push_back(':');
  after_key_ = true;
}

void Writer::String(std::string_view value) {
  Prefix();
  out_ += EscapeString(value);
}

void Writer::Number(double value) {
  Prefix();
  out_ += FormatDouble(value);
}

void Writer::Number(int64_t value) {
  Prefix();
  out_ += std::to_string(value);
}

void Writer::Bool(bool value) {
  Prefix();
  out_ += value ? "true" : "false";
}

void Writer::Null() {
  Prefix();
  out_ += "null";
}

}  // namespace ube::json
