#ifndef UBE_UTIL_RNG_H_
#define UBE_UTIL_RNG_H_

#include <cstdint>

#include "util/check.h"

namespace ube {

/// Mixes a 64-bit value through the splitmix64 finalizer. Also usable as a
/// cheap, high-quality hash of 64-bit keys (tuple ids, seeds).
uint64_t SplitMix64(uint64_t x);

/// Deterministic xoshiro256** pseudo-random generator.
///
/// Every randomized component in µBE (workload generation, solvers) takes an
/// explicit seed and derives its stream from this generator, so any run is
/// exactly reproducible. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the four lanes of state by iterating splitmix64, per the xoshiro
  /// authors' recommendation. Any seed (including 0) is valid.
  explicit Rng(uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }

  /// Next 64 uniformly random bits.
  uint64_t operator()() { return Next64(); }
  uint64_t Next64();

  /// Uniform integer in [0, bound). bound must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  uint64_t UniformInt(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal draw (Box–Muller; one value per call, no caching so the
  /// stream is position-independent).
  double StandardNormal();

  /// Forks an independent deterministic child stream; child streams derived
  /// with different labels are statistically independent.
  Rng Fork(uint64_t label);

 private:
  uint64_t s_[4];
};

}  // namespace ube

#endif  // UBE_UTIL_RNG_H_
