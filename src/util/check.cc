#include "util/check.h"

#include <cstdio>
#include <cstdlib>

namespace ube::internal {

void CheckFailed(const char* file, int line, const std::string& message) {
  std::fprintf(stderr, "UBE_CHECK failed at %s:%d: %s\n", file, line,
               message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace ube::internal
