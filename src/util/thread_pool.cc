#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

namespace ube {

int ThreadPool::HardwareConcurrency() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(int num_threads) {
  int count = num_threads == 0 ? HardwareConcurrency()
                               : std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(size_t)>* fn = nullptr;
    size_t n = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [&] { return shutdown_ || epoch_ != seen_epoch; });
      if (shutdown_) return;
      seen_epoch = epoch_;
      fn = fn_;
      n = batch_size_;
    }
    size_t i;
    while ((i = next_.fetch_add(1, std::memory_order_relaxed)) < n) {
      try {
        (*fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        if (!batch_exception_) batch_exception_ = std::current_exception();
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--active_workers_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  std::unique_lock<std::mutex> lock(mu_);
  fn_ = &fn;
  batch_size_ = n;
  next_.store(0, std::memory_order_relaxed);
  active_workers_ = static_cast<int>(workers_.size());
  ++epoch_;
  work_cv_.notify_all();
  done_cv_.wait(lock, [&] { return active_workers_ == 0; });
  fn_ = nullptr;
  batch_size_ = 0;
  if (batch_exception_) {
    std::exception_ptr rethrow = std::exchange(batch_exception_, nullptr);
    lock.unlock();
    std::rethrow_exception(rethrow);
  }
}

}  // namespace ube
