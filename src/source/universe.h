#ifndef UBE_SOURCE_UNIVERSE_H_
#define UBE_SOURCE_UNIVERSE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "source/data_source.h"
#include "util/result.h"

namespace ube {

/// The universe U = {s_1, ..., s_N}: all data sources µBE may choose from
/// (Section 2.1; "hundreds to a few thousands of sources").
///
/// Owns the sources; SourceId is the index into this container. Also caches
/// the union signature and total cardinality over all of U, which the
/// Coverage and Card QEFs use as denominators.
class Universe {
 public:
  Universe() = default;

  Universe(Universe&&) = default;
  Universe& operator=(Universe&&) = default;
  Universe(const Universe&) = delete;
  Universe& operator=(const Universe&) = delete;

  /// Adds a source and returns its id. Names need not be unique, but
  /// FindByName returns the first match.
  SourceId AddSource(DataSource source);

  int num_sources() const { return static_cast<int>(sources_.size()); }
  bool empty() const { return sources_.empty(); }

  /// Precondition-checked access (aborts on an out-of-range id); use only
  /// with ids already validated — externally supplied ids go through
  /// ValidateId / TryGetSource instead.
  const DataSource& source(SourceId id) const;
  DataSource* mutable_source(SourceId id);

  /// OK iff `id` names a source of this universe. The graceful counterpart
  /// of the UBE_CHECK in source() for externally-reachable paths.
  Status ValidateId(SourceId id) const;

  /// The source behind `id`, or InvalidArgument for out-of-range ids.
  Result<const DataSource*> TryGetSource(SourceId id) const;

  /// First source with the given name, or NotFound.
  Result<SourceId> FindByName(std::string_view name) const;

  /// Σ_{t∈U} |t| — denominator of the Card QEF.
  int64_t TotalCardinality() const;

  /// Σ |t| over available sources with fresh statistics — the Card
  /// denominator under the exclude-and-renormalize degradation policy.
  int64_t FreshCardinality() const;

  /// Union signature over every cooperating source in U (the |∪U|
  /// denominator of Coverage). Null when no source has a signature.
  /// Computed on first use and cached; invalidated by AddSource and by
  /// mutable_source (conservatively).
  const DistinctSignature* UnionSignature() const;

  /// Estimated |∪U| (0 when no source cooperates).
  double UnionCardinalityEstimate() const;

  /// Same pair restricted to available sources with fresh statistics — the
  /// Coverage denominator under exclude-and-renormalize. Cached like
  /// UnionSignature.
  const DistinctSignature* FreshUnionSignature() const;
  double FreshUnionCardinalityEstimate() const;

  /// Sources acquisition did not drop (all of them for a universe that
  /// never went through the prober).
  int num_available() const;

  /// All ids, 0..N-1 (convenience for "validate on all of U" call sites).
  std::vector<SourceId> AllIds() const;

  /// Ids of sources acquisition dropped (available() == false), ascending.
  std::vector<SourceId> UnavailableIds() const;

 private:
  std::vector<DataSource> sources_;
  mutable std::unique_ptr<DistinctSignature> union_signature_;
  mutable bool union_dirty_ = true;
  mutable std::unique_ptr<DistinctSignature> fresh_union_signature_;
  mutable bool fresh_union_dirty_ = true;
};

}  // namespace ube

#endif  // UBE_SOURCE_UNIVERSE_H_
