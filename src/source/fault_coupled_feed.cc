#include "source/fault_coupled_feed.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>
#include <utility>
#include <vector>

namespace ube {

namespace {

bool IsProbeSuccess(FaultKind kind) {
  // kStale and kTruncated are degraded but *answered* probes — the breaker
  // machinery treats them as successes, exactly like SourceProber does.
  return kind == FaultKind::kNone || kind == FaultKind::kStale ||
         kind == FaultKind::kTruncated;
}

/// Staleness charged to a source whose probe failed but which stays in the
/// catalog: grows with the consecutive-failure streak, capped below 1.
double StreakStaleness(int fail_streak) {
  return std::min(0.9, 0.15 * static_cast<double>(fail_streak));
}

/// The probe layer's evolving per-source state, keyed by SourceId. std::map
/// so every iteration order below is ascending and deterministic.
struct ProbeState {
  explicit ProbeState(const CircuitBreaker::Options& options)
      : breaker(options) {}
  CircuitBreaker breaker;
  int attempts = 0;
  int fail_streak = 0;
};

}  // namespace

Result<FaultCoupledTrace> GenerateFaultCoupledTrace(
    const Universe& universe, const FaultCoupledOptions& options) {
  const bool probing = !options.rates.AllZero();
  if (probing && (!std::isfinite(options.probe_period_ms) ||
                  options.probe_period_ms <= 0.0)) {
    return Status::InvalidArgument(
        "FaultCoupledOptions::probe_period_ms must be positive and finite "
        "when fault rates are nonzero");
  }
  Result<ChurnFeedDriver> driver = ChurnFeedDriver::Make(universe, options.feed);
  if (!driver.ok()) return driver.status();

  const FaultPlan plan(options.fault_seed, options.rates);
  FaultCoupledTrace out;
  out.trace.config = options.feed;

  std::map<SourceId, ProbeState> states;
  std::set<SourceId> fault_removed;
  auto state_of = [&](SourceId s) -> ProbeState& {
    return states.try_emplace(s, options.breaker).first->second;
  };

  auto sweep = [&](double t) {
    // Alive sources first, ascending id (driver->alive() is in insertion
    // order; the sort pins the sweep order for replay).
    std::vector<SourceId> alive = driver->alive();
    std::sort(alive.begin(), alive.end());
    for (SourceId s : alive) {
      ProbeState& state = state_of(s);
      if (!state.breaker.AllowRequest(t)) continue;
      ++out.stats.probes;
      const FaultDecision d =
          plan.Decide(FaultPlan::KeyFor(driver->NameOf(s)), state.attempts++);
      if (IsProbeSuccess(d.kind)) {
        state.breaker.RecordSuccess();
        state.fail_streak = 0;
        if (d.kind == FaultKind::kStale) {
          out.trace.events.push_back(
              driver->ForceStaleRefresh(t, s, d.staleness));
          ++out.stats.fault_stale_refreshes;
        }
        continue;
      }
      ++out.stats.probe_failures;
      const int trips_before = state.breaker.num_trips();
      state.breaker.RecordFailure(t);
      ++state.fail_streak;
      const bool tripped = state.breaker.num_trips() > trips_before;
      if (tripped) ++out.stats.breaker_trips;
      if (tripped && static_cast<int>(driver->alive().size()) >
                         std::max(0, driver->min_alive())) {
        out.trace.events.push_back(driver->ForceRemove(t, s));
        fault_removed.insert(s);
        ++out.stats.fault_removes;
      } else {
        // Still in the catalog (breaker closed, or the feed is at its
        // alive floor): the failed probe only ages its statistics.
        out.trace.events.push_back(
            driver->ForceStaleRefresh(t, s, StreakStaleness(state.fail_streak)));
        ++out.stats.fault_stale_refreshes;
      }
    }
    // Fault-removed sources: an open breaker whose cool-down expired admits
    // one half-open probe; success revives the source, failure re-opens.
    const std::vector<SourceId> removed(fault_removed.begin(),
                                        fault_removed.end());
    for (SourceId s : removed) {
      ProbeState& state = state_of(s);
      if (!state.breaker.AllowRequest(t)) continue;
      ++out.stats.probes;
      const FaultDecision d =
          plan.Decide(FaultPlan::KeyFor(driver->NameOf(s)), state.attempts++);
      if (IsProbeSuccess(d.kind)) {
        state.breaker.RecordSuccess();
        state.fail_streak = 0;
        fault_removed.erase(s);
        out.trace.events.push_back(driver->ForceRevive(t, s));
        ++out.stats.fault_revives;
        if (d.kind == FaultKind::kStale) {
          out.trace.events.push_back(
              driver->ForceStaleRefresh(t, s, d.staleness));
          ++out.stats.fault_stale_refreshes;
        }
      } else {
        ++out.stats.probe_failures;
        const int trips_before = state.breaker.num_trips();
        state.breaker.RecordFailure(t);
        ++state.fail_streak;
        if (state.breaker.num_trips() > trips_before) {
          ++out.stats.breaker_trips;
        }
      }
    }
  };

  const double horizon = options.feed.horizon_ms;
  double next_probe =
      probing ? options.probe_period_ms : std::numeric_limits<double>::infinity();
  double next_base = driver->NextEventTime();
  while (true) {
    const bool base_due = next_base <= horizon;
    const bool probe_due = next_probe <= horizon;
    if (!base_due && !probe_due) break;
    if (probe_due && (!base_due || next_probe <= next_base)) {
      sweep(next_probe);
      next_probe += options.probe_period_ms;
      continue;
    }
    std::optional<ChurnEvent> event = driver->DrawBase(next_base);
    if (event.has_value()) {
      // A base add/remove changes the occupant of the id slot: the probe
      // layer must not carry breaker state or attempt counts across
      // occupants (mirrors SourceHealthRegistry::Reset on re-add).
      if (event->kind == ChurnEventKind::kAdd ||
          event->kind == ChurnEventKind::kRemove) {
        states.erase(event->source);
        fault_removed.erase(event->source);
      }
      out.trace.events.push_back(std::move(*event));
    }
    next_base = driver->NextEventTime();
  }
  return out;
}

}  // namespace ube
