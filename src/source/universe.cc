#include "source/universe.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace ube {

std::string_view StatsStateName(StatsState state) {
  switch (state) {
    case StatsState::kFresh:
      return "fresh";
    case StatsState::kStale:
      return "stale";
    case StatsState::kPartial:
      return "partial";
    case StatsState::kMissing:
      return "missing";
  }
  return "unknown";
}

const DistinctSignature& DataSource::signature() const {
  UBE_CHECK(signature_ != nullptr,
            "signature() called on a non-cooperating source");
  return *signature_;
}

void DataSource::set_stats_state(StatsState state, double staleness) {
  stats_state_ = state;
  staleness_ = state == StatsState::kStale
                   ? std::clamp(staleness, 0.0, 1.0)
                   : 0.0;
}

void DataSource::SetCharacteristic(std::string_view name, double value) {
  characteristics_.insert_or_assign(std::string(name), value);
}

std::optional<double> DataSource::GetCharacteristic(
    std::string_view name) const {
  auto it = characteristics_.find(name);
  if (it == characteristics_.end()) return std::nullopt;
  return it->second;
}

SourceId Universe::AddSource(DataSource source) {
  sources_.push_back(std::move(source));
  union_dirty_ = true;
  fresh_union_dirty_ = true;
  return static_cast<SourceId>(sources_.size() - 1);
}

const DataSource& Universe::source(SourceId id) const {
  UBE_CHECK(id >= 0 && id < num_sources(), "SourceId out of range");
  return sources_[static_cast<size_t>(id)];
}

DataSource* Universe::mutable_source(SourceId id) {
  UBE_CHECK(id >= 0 && id < num_sources(), "SourceId out of range");
  union_dirty_ = true;
  fresh_union_dirty_ = true;
  return &sources_[static_cast<size_t>(id)];
}

Status Universe::ValidateId(SourceId id) const {
  if (id < 0 || id >= num_sources()) {
    return Status::InvalidArgument("SourceId " + std::to_string(id) +
                                   " out of range [0, " +
                                   std::to_string(num_sources()) + ")");
  }
  return Status::Ok();
}

Result<const DataSource*> Universe::TryGetSource(SourceId id) const {
  UBE_RETURN_IF_ERROR(ValidateId(id));
  return &sources_[static_cast<size_t>(id)];
}

Result<SourceId> Universe::FindByName(std::string_view name) const {
  for (size_t i = 0; i < sources_.size(); ++i) {
    if (sources_[i].name() == name) return static_cast<SourceId>(i);
  }
  return Status::NotFound("no source named '" + std::string(name) + "'");
}

int64_t Universe::TotalCardinality() const {
  int64_t total = 0;
  for (const DataSource& s : sources_) total += s.cardinality();
  return total;
}

int64_t Universe::FreshCardinality() const {
  int64_t total = 0;
  for (const DataSource& s : sources_) {
    if (s.stats_fresh()) total += s.cardinality();
  }
  return total;
}

const DistinctSignature* Universe::UnionSignature() const {
  if (union_dirty_) {
    union_signature_.reset();
    for (const DataSource& s : sources_) {
      if (!s.has_signature()) continue;
      if (union_signature_ == nullptr) {
        union_signature_ = s.signature().Clone();
      } else {
        union_signature_->MergeFrom(s.signature());
      }
    }
    union_dirty_ = false;
  }
  return union_signature_.get();
}

double Universe::UnionCardinalityEstimate() const {
  const DistinctSignature* sig = UnionSignature();
  return sig == nullptr ? 0.0 : sig->Estimate();
}

const DistinctSignature* Universe::FreshUnionSignature() const {
  if (fresh_union_dirty_) {
    fresh_union_signature_.reset();
    for (const DataSource& s : sources_) {
      if (!s.stats_fresh() || !s.has_signature()) continue;
      if (fresh_union_signature_ == nullptr) {
        fresh_union_signature_ = s.signature().Clone();
      } else {
        fresh_union_signature_->MergeFrom(s.signature());
      }
    }
    fresh_union_dirty_ = false;
  }
  return fresh_union_signature_.get();
}

double Universe::FreshUnionCardinalityEstimate() const {
  const DistinctSignature* sig = FreshUnionSignature();
  return sig == nullptr ? 0.0 : sig->Estimate();
}

int Universe::num_available() const {
  int count = 0;
  for (const DataSource& s : sources_) count += s.available() ? 1 : 0;
  return count;
}

std::vector<SourceId> Universe::AllIds() const {
  std::vector<SourceId> ids(sources_.size());
  std::iota(ids.begin(), ids.end(), 0);
  return ids;
}

std::vector<SourceId> Universe::UnavailableIds() const {
  std::vector<SourceId> ids;
  for (size_t i = 0; i < sources_.size(); ++i) {
    if (!sources_[i].available()) ids.push_back(static_cast<SourceId>(i));
  }
  return ids;
}

}  // namespace ube
