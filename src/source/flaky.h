#ifndef UBE_SOURCE_FLAKY_H_
#define UBE_SOURCE_FLAKY_H_

#include <memory>
#include <string>

#include "source/data_source.h"
#include "source/universe.h"
#include "util/fault_injection.h"
#include "util/result.h"

namespace ube {

/// A successful probe: the acquired source description plus flags about the
/// quality of the statistics that came back with it.
struct ProbedSource {
  DataSource source;
  /// Statistics are a last-known-good snapshot; `staleness` in (0, 1].
  bool stale = false;
  double staleness = 0.0;
  /// The signature was truncated in transit and had to be discarded
  /// (cardinality survived).
  bool truncated = false;
};

/// One probe attempt's outcome: a source (possibly degraded) or a failure,
/// plus the attempt's simulated service time.
struct ProbeResponse {
  Result<ProbedSource> outcome;
  double latency_ms = 0.0;
};

/// A remote source as the acquisition layer sees it: something that can be
/// probed for its description (schema, cardinality, signature,
/// characteristics) and may fail doing so.
///
/// Probe(attempt) must be a pure function of `attempt` — the prober retries
/// from ThreadPool workers and the replay contract requires the response
/// stream to be independent of thread interleaving.
class ProbeTarget {
 public:
  virtual ~ProbeTarget() = default;

  /// Stable name; doubles as the source's identity in fault plans and
  /// acquisition reports.
  virtual const std::string& name() const = 0;

  /// One probe attempt (0-based).
  virtual ProbeResponse Probe(int attempt) = 0;
};

/// Deep copy of a DataSource (which is move-only by design): schema,
/// cardinality, cloned signature, characteristics, stats state.
DataSource CloneSource(const DataSource& source);

/// Deep copy of a Universe (move-only as well), source by source with
/// SourceIds preserved. Benchmarks use this to run competing maintenance
/// policies over identical starting universes.
Universe CloneUniverse(const Universe& universe);

/// Probe target over a fully materialized in-memory source: every probe
/// succeeds instantly with fresh statistics. The building block tests and
/// simulations wrap in FlakyProbeTarget.
class InMemoryProbeTarget final : public ProbeTarget {
 public:
  explicit InMemoryProbeTarget(DataSource source)
      : source_(std::move(source)) {}

  const std::string& name() const override { return source_.name(); }
  ProbeResponse Probe(int attempt) override;

 private:
  DataSource source_;
};

/// Decorator injecting faults from a deterministic FaultPlan: depending on
/// the plan's draw for (source, attempt) the inner probe is passed through,
/// failed transiently/permanently, timed out, or degraded (stale snapshot /
/// truncated signature). With an all-zero-rate plan this is a transparent
/// wrapper — the zero-fault path stays bit-identical.
class FlakyProbeTarget final : public ProbeTarget {
 public:
  /// `plan` must outlive the target.
  FlakyProbeTarget(std::unique_ptr<ProbeTarget> inner, const FaultPlan* plan);

  const std::string& name() const override { return inner_->name(); }
  ProbeResponse Probe(int attempt) override;

 private:
  std::unique_ptr<ProbeTarget> inner_;
  const FaultPlan* plan_;
  uint64_t key_;
};

}  // namespace ube

#endif  // UBE_SOURCE_FLAKY_H_
