#ifndef UBE_SOURCE_FAULT_COUPLED_FEED_H_
#define UBE_SOURCE_FAULT_COUPLED_FEED_H_

#include <cstdint>

#include "catalog/change_feed.h"
#include "source/prober.h"
#include "source/universe.h"
#include "util/fault_injection.h"
#include "util/result.h"

namespace ube {

/// Knobs of the fault-coupled feed: the base churn schedule plus a
/// deterministic probe/fault layer running on the same simulated clock.
struct FaultCoupledOptions {
  /// The base churn schedule (validated by ChurnFeedDriver::Make).
  ChurnFeedConfig feed;
  /// Per-attempt / per-source fault probabilities of the probe layer.
  /// All-zero rates disable the layer entirely: the generated trace is then
  /// bit-identical to GenerateChurnTrace(universe, feed).
  FaultRates rates;
  /// Seed of the FaultPlan (independent of feed.seed: the same base
  /// schedule can be replayed under different fault weather).
  uint64_t fault_seed = 0;
  /// Every alive source is probed once per period, in ascending id order.
  /// Must be positive and finite when rates are nonzero.
  double probe_period_ms = 1'000.0;
  /// Breaker policy of the probe layer (independent of the applier's
  /// registry — this one decides when probe failures become churn).
  CircuitBreaker::Options breaker;
};

/// What the probe layer did while the trace was generated.
struct FaultCoupledStats {
  int64_t probes = 0;           ///< admitted probe attempts
  int64_t probe_failures = 0;   ///< attempts that drew a failing fault
  int breaker_trips = 0;        ///< closed/half-open -> open transitions
  int fault_removes = 0;        ///< kRemove events emitted by open breakers
  int fault_revives = 0;        ///< revive-kAdds from successful half-open probes
  int fault_stale_refreshes = 0;  ///< kStaleRefresh events emitted by probes

  friend bool operator==(const FaultCoupledStats&,
                         const FaultCoupledStats&) = default;
};

/// A base churn trace with probe-driven events interleaved.
struct FaultCoupledTrace {
  ChurnTrace trace;
  FaultCoupledStats stats;
};

/// Couples PR-4's probe/fault machinery to the churn feed: a FaultPlan and
/// per-source circuit breakers run on the simulated clock, and their
/// verdicts are *emitted into the trace* —
///  - a failing probe ages the source's statistics (kStaleRefresh with
///    staleness growing in the failure streak),
///  - a breaker tripping open removes the source (kRemove), unless the feed
///    is at its min_alive floor, in which case the failure only ages it,
///  - a successful half-open probe against a fault-removed source revives
///    it (revive-kAdd), while the breaker machinery re-opens on a failed
///    one.
/// Base churn and probe-driven events share ONE ChurnFeedDriver, so every
/// event in the merged trace is valid to LiveUniverse::Apply in order.
///
/// Replay contract: a pure function of (universe content, options) — the
/// FaultPlan is stateless, probes consume no feed randomness, and sweep
/// order is deterministic (ascending id, probes before a base event at the
/// same instant) — so the same inputs yield a fingerprint-identical trace
/// and equal stats, regardless of thread count anywhere downstream.
Result<FaultCoupledTrace> GenerateFaultCoupledTrace(
    const Universe& universe, const FaultCoupledOptions& options);

}  // namespace ube

#endif  // UBE_SOURCE_FAULT_COUPLED_FEED_H_
