#include "source/compound.h"

#include <algorithm>

#include "util/check.h"

namespace ube {

Result<std::vector<AttributeId>> CompoundMapping::OriginalsOf(
    const AttributeId& derived) const {
  if (derived.source < 0 ||
      static_cast<size_t>(derived.source) >= originals_.size()) {
    return Status::InvalidArgument("derived source out of range");
  }
  const auto& per_source = originals_[static_cast<size_t>(derived.source)];
  if (derived.attr_index < 0 ||
      static_cast<size_t>(derived.attr_index) >= per_source.size()) {
    return Status::InvalidArgument("derived attribute out of range");
  }
  return per_source[static_cast<size_t>(derived.attr_index)];
}

Result<AttributeId> CompoundMapping::DerivedOf(
    const AttributeId& original) const {
  if (original.source < 0 ||
      static_cast<size_t>(original.source) >= derived_.size()) {
    return Status::InvalidArgument("original source out of range");
  }
  const auto& per_source = derived_[static_cast<size_t>(original.source)];
  if (original.attr_index < 0 ||
      static_cast<size_t>(original.attr_index) >= per_source.size()) {
    return Status::InvalidArgument("original attribute out of range");
  }
  return per_source[static_cast<size_t>(original.attr_index)];
}

Result<bool> CompoundMapping::IsCompound(const AttributeId& derived) const {
  Result<std::vector<AttributeId>> originals = OriginalsOf(derived);
  UBE_RETURN_IF_ERROR(originals.status());
  return originals.value().size() > 1;
}

Result<std::vector<AttributeId>> CompoundMapping::ExpandGa(
    const GlobalAttribute& derived_ga) const {
  std::vector<AttributeId> out;
  for (const AttributeId& derived : derived_ga.attributes()) {
    Result<std::vector<AttributeId>> originals = OriginalsOf(derived);
    UBE_RETURN_IF_ERROR(originals.status());
    out.insert(out.end(), originals.value().begin(), originals.value().end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<std::vector<std::vector<AttributeId>>> CompoundMapping::ExpandSchema(
    const MediatedSchema& derived_schema) const {
  std::vector<std::vector<AttributeId>> out;
  out.reserve(static_cast<size_t>(derived_schema.num_gas()));
  for (const GlobalAttribute& ga : derived_schema.gas()) {
    Result<std::vector<AttributeId>> expanded = ExpandGa(ga);
    UBE_RETURN_IF_ERROR(expanded.status());
    out.push_back(std::move(expanded).value());
  }
  return out;
}

Result<std::pair<Universe, CompoundMapping>> BuildCompoundUniverse(
    const Universe& original, const std::vector<CompoundGroup>& groups) {
  // --- validate the groups --------------------------------------------
  // group_of[source][attr] = index into `groups`, or -1.
  std::vector<std::vector<int>> group_of(
      static_cast<size_t>(original.num_sources()));
  for (SourceId s = 0; s < original.num_sources(); ++s) {
    group_of[static_cast<size_t>(s)].assign(
        static_cast<size_t>(original.source(s).schema().num_attributes()),
        -1);
  }
  for (size_t g = 0; g < groups.size(); ++g) {
    const CompoundGroup& group = groups[g];
    if (group.source < 0 || group.source >= original.num_sources()) {
      return Status::InvalidArgument("compound group source out of range");
    }
    std::vector<int> indices = group.attr_indices;
    std::sort(indices.begin(), indices.end());
    if (indices.size() < 2 ||
        std::adjacent_find(indices.begin(), indices.end()) != indices.end()) {
      return Status::InvalidArgument(
          "a compound group needs at least two distinct attributes");
    }
    auto& marks = group_of[static_cast<size_t>(group.source)];
    for (int index : indices) {
      if (index < 0 || static_cast<size_t>(index) >= marks.size()) {
        return Status::InvalidArgument(
            "compound group attribute index out of range");
      }
      if (marks[static_cast<size_t>(index)] != -1) {
        return Status::InvalidArgument(
            "compound groups of one source must be disjoint");
      }
      marks[static_cast<size_t>(index)] = static_cast<int>(g);
    }
  }

  // --- build the derived universe ---------------------------------------
  Universe derived;
  CompoundMapping mapping;
  mapping.originals_.resize(static_cast<size_t>(original.num_sources()));
  mapping.derived_.resize(static_cast<size_t>(original.num_sources()));

  for (SourceId s = 0; s < original.num_sources(); ++s) {
    const DataSource& source = original.source(s);
    const SourceSchema& schema = source.schema();
    const auto& marks = group_of[static_cast<size_t>(s)];

    std::vector<std::string> names;
    auto& originals = mapping.originals_[static_cast<size_t>(s)];
    auto& derived_ids = mapping.derived_[static_cast<size_t>(s)];
    derived_ids.assign(static_cast<size_t>(schema.num_attributes()),
                       AttributeId{});

    // Walk attributes in order; emit non-grouped attributes as-is and each
    // group once, at the position of its first member — so derived schemas
    // keep the original reading order.
    std::vector<char> group_emitted(groups.size(), 0);
    for (int a = 0; a < schema.num_attributes(); ++a) {
      int g = marks[static_cast<size_t>(a)];
      if (g == -1) {
        int derived_index = static_cast<int>(names.size());
        names.push_back(schema.attribute_name(a));
        originals.push_back({AttributeId{s, a}});
        derived_ids[static_cast<size_t>(a)] = AttributeId{s, derived_index};
        continue;
      }
      if (group_emitted[static_cast<size_t>(g)]) continue;
      group_emitted[static_cast<size_t>(g)] = 1;
      const CompoundGroup& group = groups[static_cast<size_t>(g)];
      std::vector<int> indices = group.attr_indices;
      std::sort(indices.begin(), indices.end());
      std::string name = group.name;
      std::vector<AttributeId> members;
      for (int index : indices) {
        if (name.empty() || group.name.empty()) {
          if (!name.empty()) name += " ";
          name += schema.attribute_name(index);
        }
        members.push_back(AttributeId{s, index});
      }
      int derived_index = static_cast<int>(names.size());
      names.push_back(name);
      originals.push_back(members);
      for (int index : indices) {
        derived_ids[static_cast<size_t>(index)] =
            AttributeId{s, derived_index};
      }
    }

    DataSource derived_source(source.name(), SourceSchema(std::move(names)));
    derived_source.set_cardinality(source.cardinality());
    if (source.has_signature()) {
      derived_source.set_signature(source.signature().Clone());
    }
    for (const auto& [characteristic, value] : source.characteristics()) {
      derived_source.SetCharacteristic(characteristic, value);
    }
    derived.AddSource(std::move(derived_source));
  }

  return std::make_pair(std::move(derived), std::move(mapping));
}

}  // namespace ube
