#ifndef UBE_SOURCE_LIVE_UNIVERSE_H_
#define UBE_SOURCE_LIVE_UNIVERSE_H_

#include <map>
#include <memory>
#include <vector>

#include "catalog/change_feed.h"
#include "matching/cluster_matcher.h"
#include "matching/similarity_graph.h"
#include "source/prober.h"
#include "source/universe.h"
#include "text/similarity.h"
#include "util/result.h"

namespace ube {

/// A universe that survives catalog churn: applies ChurnEvents to a
/// versioned Universe with stable SourceIds and incrementally maintains the
/// attribute-similarity graph alongside it.
///
/// Invariants, all checked by tests:
///  - SourceIds never move. A removed source becomes the prober's
///    unavailable-shell (name kept, empty schema, no statistics,
///    available() == false), so every downstream index — acquisition
///    reports, constraints, incumbents — stays valid.
///  - After every Apply, graph() is byte-identical (Fingerprint()) to a
///    SimilarityGraph built from scratch over universe(): source removal /
///    addition only recomputes edges incident to the changed source, and
///    schema drift (attribute rename/add/drop) only recomputes edges
///    incident to the changed attribute.
///  - Fresh*/union aggregates and the compound-universe builder see the
///    mutated universe consistently (Universe's lazy caches are dirtied by
///    every mutation path used here).
///  - A re-added source (revive or brand-new id reuse) starts with clean
///    acquisition health: health().Reset(id) on every add, so it never
///    inherits the previous occupant's breaker state or backoff budget.
///
/// The matcher holds references to the owned universe and graph (stable
/// addresses behind unique_ptrs), so LiveUniverse is movable and Engine
/// stays movable holding one.
class LiveUniverse {
 public:
  struct Options {
    /// Similarity-graph floor (must match any θ used later, see Engine).
    double similarity_floor = 0.25;
    /// Attribute similarity measure (null = the paper's 3-gram Jaccard).
    std::unique_ptr<AttributeSimilarity> similarity;
    /// Breaker policy for the per-source health registry.
    CircuitBreaker::Options breaker;
    /// Simulated backoff milliseconds charged to a source per failed
    /// stale-refresh (budget accounting in the health registry).
    double refresh_retry_cost_ms = 50.0;
    /// Hard capacity in source ids (0 = unbounded). Add-events that would
    /// grow the universe past this many sources fail with
    /// FailedPrecondition instead of being applied. Set it when downstream
    /// structures size fixed-width state at universe build (SearchState's
    /// SourceBitset, the delta evaluator's per-source tables) so an
    /// oversized id surfaces as a Status, never as out-of-range indexing.
    int max_sources = 0;
  };

  LiveUniverse(Universe universe, Options options);
  explicit LiveUniverse(Universe universe);

  LiveUniverse(LiveUniverse&&) = default;
  LiveUniverse& operator=(LiveUniverse&&) = default;
  LiveUniverse(const LiveUniverse&) = delete;
  LiveUniverse& operator=(const LiveUniverse&) = delete;

  const Universe& universe() const { return *universe_; }
  const SimilarityGraph& graph() const { return *graph_; }
  const ClusterMatcher& matcher() const { return *matcher_; }
  SourceHealthRegistry& health() { return health_; }
  const SourceHealthRegistry& health() const { return health_; }

  /// Bumped by every successfully applied event.
  int64_t version() const { return version_; }
  /// Simulated time of the last applied event.
  double last_event_ms() const { return last_event_ms_; }

  /// Applies one event. Events must arrive in nondecreasing time order.
  /// Errors (wrong target state, out-of-order time, malformed payload)
  /// leave the universe unchanged.
  Status Apply(const ChurnEvent& event);

  /// Applies every event of `trace` in order, stopping at the first error.
  Status ApplyAll(const ChurnTrace& trace);

 private:
  Status ApplyAdd(const ChurnEvent& event);
  Status ApplyRemove(const ChurnEvent& event);
  Status ApplyStaleRefresh(const ChurnEvent& event);
  Status ApplyDrift(const ChurnEvent& event);
  Status ApplyAttrRename(const ChurnEvent& event);
  Status ApplyAttrAdd(const ChurnEvent& event);
  Status ApplyAttrDrop(const ChurnEvent& event);

  std::unique_ptr<Universe> universe_;
  std::unique_ptr<SimilarityGraph> graph_;
  std::unique_ptr<ClusterMatcher> matcher_;
  SourceHealthRegistry health_;
  /// Full descriptions of removed sources, stashed for revival.
  std::map<SourceId, DataSource> tombstones_;
  double refresh_retry_cost_ms_;
  int max_sources_ = 0;
  int64_t version_ = 0;
  double last_event_ms_ = 0.0;
};

}  // namespace ube

#endif  // UBE_SOURCE_LIVE_UNIVERSE_H_
