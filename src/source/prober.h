#ifndef UBE_SOURCE_PROBER_H_
#define UBE_SOURCE_PROBER_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "source/flaky.h"
#include "source/universe.h"
#include "util/backoff.h"
#include "util/result.h"
#include "util/rng.h"

namespace ube {

namespace obs {
class ObsContext;
}  // namespace obs

/// Per-source circuit breaker over the classic closed → open → half-open
/// state machine: `trip_threshold` consecutive failures open the circuit,
/// the cool-down keeps it open, then a single half-open probe decides
/// between closing (success) and re-opening (failure).
///
/// Time is the prober's simulated clock (milliseconds), not wall time, so
/// breaker behaviour is deterministic and replayable from a seed.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  struct Options {
    /// Consecutive failures that trip the breaker.
    int trip_threshold = 3;
    /// How long the circuit stays open before allowing a half-open probe.
    double cooldown_ms = 2'000.0;
  };

  explicit CircuitBreaker(const Options& options) : options_(options) {}

  /// True if a request may go out at simulated time `now_ms`. An open
  /// breaker whose cool-down has expired transitions to half-open here and
  /// admits the probe.
  bool AllowRequest(double now_ms);

  /// Report the outcome of an admitted request.
  void RecordSuccess();
  void RecordFailure(double now_ms);

  State state() const { return state_; }
  /// Earliest simulated time an open breaker admits a half-open probe.
  double open_until_ms() const { return open_until_ms_; }
  /// Times the breaker has tripped (closed/half-open → open).
  int num_trips() const { return num_trips_; }

 private:
  void Trip(double now_ms);

  Options options_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  double open_until_ms_ = 0.0;
  int num_trips_ = 0;
};

std::string_view CircuitBreakerStateName(CircuitBreaker::State state);

/// Persistent per-source acquisition health for the continuous (live
/// universe) mode: a circuit breaker plus the cumulative simulated backoff
/// budget spent on each SourceId, surviving across event batches.
///
/// SourceIds are slots: when the catalog feed removes a source and later
/// re-adds one under the same id (a revive, or a brand-new source reusing
/// the id space), the new occupant must NOT inherit the previous occupant's
/// breaker state or spent backoff budget — Reset(id) wipes the slot and the
/// live universe calls it on every re-add.
class SourceHealthRegistry {
 public:
  explicit SourceHealthRegistry(
      const CircuitBreaker::Options& breaker = CircuitBreaker::Options()) {
    breaker_options_ = breaker;
  }

  /// The breaker for `id` (created closed on first touch).
  CircuitBreaker& BreakerFor(SourceId id);
  /// Read-only view; null when the slot has never been touched.
  const CircuitBreaker* FindBreaker(SourceId id) const;

  void RecordSuccess(SourceId id) { BreakerFor(id).RecordSuccess(); }
  void RecordFailure(SourceId id, double now_ms) {
    BreakerFor(id).RecordFailure(now_ms);
  }

  /// Adds simulated backoff milliseconds spent retrying `id`.
  void AddBackoffSpent(SourceId id, double ms);
  /// Cumulative simulated backoff spent on `id` since its last Reset.
  double backoff_spent_ms(SourceId id) const;

  /// Forgets everything about `id`: breaker back to closed, backoff budget
  /// back to zero. Call on re-add so a fresh occupant starts clean.
  void Reset(SourceId id);

  /// True when `id`'s breaker blocks requests at simulated time `now_ms`
  /// (open with an unexpired cool-down). Const: unlike AllowRequest this
  /// never transitions the breaker to half-open, so it is safe for "should
  /// repair consider this source" queries that must not consume the
  /// half-open probe.
  bool IsBlocked(SourceId id, double now_ms) const;

  /// Ids with any recorded state, ascending (diagnostics / tests).
  std::vector<SourceId> TrackedIds() const;

 private:
  struct Slot {
    CircuitBreaker breaker;
    double backoff_spent_ms = 0.0;
    explicit Slot(const CircuitBreaker::Options& options)
        : breaker(options) {}
  };

  CircuitBreaker::Options breaker_options_;
  std::map<SourceId, Slot> slots_;
};

/// How one source came out of acquisition.
enum class AcquisitionOutcome {
  kAcquired,         ///< fresh statistics, full trust
  kAcquiredStale,    ///< acquired, but statistics are a stale snapshot
  kAcquiredPartial,  ///< acquired, but the signature was truncated/lost
  kDropped,          ///< not acquired; present in the universe but unavailable
};

std::string_view AcquisitionOutcomeName(AcquisitionOutcome outcome);

/// Per-source acquisition record (index-aligned with the universe's ids).
struct SourceAcquisition {
  std::string name;
  AcquisitionOutcome outcome = AcquisitionOutcome::kDropped;
  /// Probe attempts actually sent (breaker-denied attempts do not count).
  int attempts = 0;
  /// Simulated time spent on this source: service + backoff + cool-down.
  double elapsed_ms = 0.0;
  /// Snapshot age for kAcquiredStale, in (0, 1].
  double staleness = 0.0;
  /// Breaker trips while acquiring this source.
  int breaker_trips = 0;
  /// OK when acquired; the decisive failure when dropped.
  Status status;
};

/// The per-source outcomes of one acquisition run, plus aggregates.
struct AcquisitionReport {
  std::vector<SourceAcquisition> sources;

  int CountOutcome(AcquisitionOutcome outcome) const;
  int num_acquired() const {
    return static_cast<int>(sources.size()) -
           CountOutcome(AcquisitionOutcome::kDropped);
  }
  int num_dropped() const { return CountOutcome(AcquisitionOutcome::kDropped); }
  /// Acquired with less than fresh statistics (stale or partial).
  int num_degraded() const {
    return CountOutcome(AcquisitionOutcome::kAcquiredStale) +
           CountOutcome(AcquisitionOutcome::kAcquiredPartial);
  }
  /// Fan-out wall clock: the slowest per-source simulated time.
  double max_elapsed_ms() const;
  double mean_elapsed_ms() const;

  /// One line: "187/200 acquired (6 stale, 3 partial), 13 dropped, ...".
  std::string Summary() const;
};

struct ProberOptions {
  BackoffPolicy backoff;
  CircuitBreaker::Options breaker;
  /// ThreadPool width for the probe fan-out (1 = inline, 0 = hardware
  /// concurrency). Results are bit-identical for any value.
  int num_threads = 1;
  /// Seed of the backoff jitter streams (one independent fork per source).
  uint64_t seed = 0;
  /// Optional observability context (counters prober.*, histogram of
  /// simulated backoff waits, prober/acquire + prober/probe spans). Not
  /// owned; must outlive Acquire. Null (default) = no instrumentation.
  /// All prober metric values derive from the simulated clock, so totals
  /// are deterministic for any num_threads.
  obs::ObsContext* obs = nullptr;
};

/// A universe assembled from probes plus the per-source report. Dropped
/// sources are present as unavailable shells so SourceIds line up with the
/// report (and with any catalog the targets were built from).
struct Acquisition {
  Universe universe;
  AcquisitionReport report;
};

/// Probes every target — with retries, backoff and a per-source circuit
/// breaker, fanned out over a ThreadPool — and builds the universe of
/// whatever the network gave us.
///
/// Returns a non-OK Status only when *no* source could be acquired (there
/// is nothing to optimize over); partial failure is reported per source,
/// not as an error.
class SourceProber {
 public:
  explicit SourceProber(const ProberOptions& options = ProberOptions())
      : options_(options) {}

  const ProberOptions& options() const { return options_; }

  Result<Acquisition> Acquire(
      std::vector<std::unique_ptr<ProbeTarget>> targets) const;

 private:
  /// Runs the full retry/breaker loop for one target. Fills *acquired on
  /// success; pure function of (target, rng) so the fan-out is replayable.
  SourceAcquisition ProbeOne(ProbeTarget& target, Rng rng,
                             DataSource* acquired) const;

  /// Pre-registered metric ids (all -1 when options_.obs is null). Set up
  /// sequentially at the top of Acquire, read-only during the fan-out.
  struct ObsHooks {
    obs::ObsContext* ctx = nullptr;
    int32_t attempts = -1;
    int32_t backoff_waits = -1;
    int32_t backoff_wait_us = -1;  // histogram, simulated-clock valued
    int32_t breaker_trips = -1;
    int32_t breaker_half_open = -1;
    int32_t breaker_reclose = -1;
    int32_t outcome[4] = {-1, -1, -1, -1};  // indexed by AcquisitionOutcome
  };
  void InitObsHooks() const;

  ProberOptions options_;
  mutable ObsHooks hooks_;
};

}  // namespace ube

#endif  // UBE_SOURCE_PROBER_H_
