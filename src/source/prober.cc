#include "source/prober.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <optional>
#include <utility>

#include "obs/obs.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace ube {

namespace {

std::string FormatMs(double ms) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.1f", ms);
  return buffer;
}

}  // namespace

// --- CircuitBreaker --------------------------------------------------------

std::string_view CircuitBreakerStateName(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed:
      return "closed";
    case CircuitBreaker::State::kOpen:
      return "open";
    case CircuitBreaker::State::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

bool CircuitBreaker::AllowRequest(double now_ms) {
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now_ms + 1e-9 >= open_until_ms_) {
        state_ = State::kHalfOpen;
        return true;
      }
      return false;
    case State::kHalfOpen:
      return true;
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  state_ = State::kClosed;
  consecutive_failures_ = 0;
}

void CircuitBreaker::RecordFailure(double now_ms) {
  if (state_ == State::kHalfOpen) {
    // The probationary probe failed: straight back to open.
    Trip(now_ms);
    return;
  }
  if (++consecutive_failures_ >= options_.trip_threshold) Trip(now_ms);
}

void CircuitBreaker::Trip(double now_ms) {
  state_ = State::kOpen;
  open_until_ms_ = now_ms + options_.cooldown_ms;
  consecutive_failures_ = 0;
  ++num_trips_;
}

// --- SourceHealthRegistry --------------------------------------------------

CircuitBreaker& SourceHealthRegistry::BreakerFor(SourceId id) {
  auto it = slots_.find(id);
  if (it == slots_.end()) {
    it = slots_.emplace(id, Slot(breaker_options_)).first;
  }
  return it->second.breaker;
}

const CircuitBreaker* SourceHealthRegistry::FindBreaker(SourceId id) const {
  auto it = slots_.find(id);
  return it == slots_.end() ? nullptr : &it->second.breaker;
}

void SourceHealthRegistry::AddBackoffSpent(SourceId id, double ms) {
  auto it = slots_.find(id);
  if (it == slots_.end()) {
    it = slots_.emplace(id, Slot(breaker_options_)).first;
  }
  it->second.backoff_spent_ms += ms;
}

double SourceHealthRegistry::backoff_spent_ms(SourceId id) const {
  auto it = slots_.find(id);
  return it == slots_.end() ? 0.0 : it->second.backoff_spent_ms;
}

void SourceHealthRegistry::Reset(SourceId id) { slots_.erase(id); }

bool SourceHealthRegistry::IsBlocked(SourceId id, double now_ms) const {
  auto it = slots_.find(id);
  if (it == slots_.end()) return false;
  const CircuitBreaker& breaker = it->second.breaker;
  return breaker.state() == CircuitBreaker::State::kOpen &&
         now_ms + 1e-9 < breaker.open_until_ms();
}

std::vector<SourceId> SourceHealthRegistry::TrackedIds() const {
  std::vector<SourceId> ids;
  ids.reserve(slots_.size());
  for (const auto& [id, slot] : slots_) ids.push_back(id);
  return ids;
}

// --- AcquisitionReport -----------------------------------------------------

std::string_view AcquisitionOutcomeName(AcquisitionOutcome outcome) {
  switch (outcome) {
    case AcquisitionOutcome::kAcquired:
      return "acquired";
    case AcquisitionOutcome::kAcquiredStale:
      return "acquired-stale";
    case AcquisitionOutcome::kAcquiredPartial:
      return "acquired-partial";
    case AcquisitionOutcome::kDropped:
      return "dropped";
  }
  return "unknown";
}

int AcquisitionReport::CountOutcome(AcquisitionOutcome outcome) const {
  int count = 0;
  for (const SourceAcquisition& s : sources) {
    count += s.outcome == outcome ? 1 : 0;
  }
  return count;
}

double AcquisitionReport::max_elapsed_ms() const {
  double max_ms = 0.0;
  for (const SourceAcquisition& s : sources) {
    max_ms = std::max(max_ms, s.elapsed_ms);
  }
  return max_ms;
}

double AcquisitionReport::mean_elapsed_ms() const {
  if (sources.empty()) return 0.0;
  double total = 0.0;
  for (const SourceAcquisition& s : sources) total += s.elapsed_ms;
  return total / static_cast<double>(sources.size());
}

std::string AcquisitionReport::Summary() const {
  std::string out = std::to_string(num_acquired()) + "/" +
                    std::to_string(sources.size()) + " sources acquired";
  int stale = CountOutcome(AcquisitionOutcome::kAcquiredStale);
  int partial = CountOutcome(AcquisitionOutcome::kAcquiredPartial);
  if (stale > 0 || partial > 0) {
    out += " (" + std::to_string(stale) + " stale, " +
           std::to_string(partial) + " partial)";
  }
  out += ", " + std::to_string(num_dropped()) + " dropped; probe time mean " +
         FormatMs(mean_elapsed_ms()) + " ms / max " +
         FormatMs(max_elapsed_ms()) + " ms";
  return out;
}

// --- SourceProber ----------------------------------------------------------

void SourceProber::InitObsHooks() const {
  hooks_ = ObsHooks{};
  hooks_.ctx = options_.obs;
  if (options_.obs == nullptr) return;
  obs::MetricsRegistry& m = options_.obs->metrics();
  hooks_.attempts = m.Counter("prober.attempts");
  hooks_.backoff_waits = m.Counter("prober.backoff_waits");
  // Simulated-clock valued, so the totals (unlike wall-clock latency
  // histograms) stay deterministic across thread counts.
  hooks_.backoff_wait_us =
      m.Histogram("prober.backoff_wait_us",
                  {1000, 5000, 10000, 25000, 50000, 100000, 250000, 500000,
                   1000000, 5000000});
  hooks_.breaker_trips = m.Counter("prober.breaker.trips");
  hooks_.breaker_half_open = m.Counter("prober.breaker.half_open");
  hooks_.breaker_reclose = m.Counter("prober.breaker.reclose");
  for (int i = 0; i < 4; ++i) {
    hooks_.outcome[i] = m.Counter(
        std::string("prober.outcome.") +
        std::string(AcquisitionOutcomeName(static_cast<AcquisitionOutcome>(i))));
  }
}

SourceAcquisition SourceProber::ProbeOne(ProbeTarget& target, Rng rng,
                                         DataSource* acquired) const {
  const BackoffPolicy& policy = options_.backoff;
  obs::Tracer::Span span = obs::SpanIf(hooks_.ctx, "prober/probe");
  SourceAcquisition acq;
  acq.name = target.name();
  BackoffSchedule backoff(policy, rng);
  CircuitBreaker breaker(options_.breaker);
  double now_ms = 0.0;
  Status last = Status::Unavailable("no probe attempt was made");
  // Breaker transition counters, observed around the calls that can change
  // state: closed/half-open → open (trips, via num_trips), open →
  // half-open (cool-down expiry), half-open → closed (reclose).
  auto note_half_open = [&](CircuitBreaker::State before) {
    if (hooks_.ctx != nullptr &&
        before == CircuitBreaker::State::kOpen &&
        breaker.state() == CircuitBreaker::State::kHalfOpen) {
      hooks_.ctx->metrics().Add(hooks_.breaker_half_open);
    }
  };

  for (int attempt = 0; attempt < policy.max_attempts; ++attempt) {
    if (now_ms > policy.total_budget_ms) {
      last = Status::DeadlineExceeded(
          "per-source probe budget exhausted after " + FormatMs(now_ms) +
          " ms");
      break;
    }
    CircuitBreaker::State before_allow = breaker.state();
    bool allowed = breaker.AllowRequest(now_ms);
    note_half_open(before_allow);
    if (!allowed) {
      // Wait out the cool-down on the virtual clock, then take the
      // half-open probe — unless that would blow the total budget.
      double reopen_ms = breaker.open_until_ms();
      if (reopen_ms > policy.total_budget_ms) {
        last = Status::Unavailable(
            "circuit breaker open past the probe budget");
        break;
      }
      now_ms = reopen_ms;
      before_allow = breaker.state();
      bool admitted = breaker.AllowRequest(now_ms);
      note_half_open(before_allow);
      UBE_CHECK(admitted, "breaker must admit a probe after its cool-down");
    }

    ProbeResponse response = target.Probe(attempt);
    ++acq.attempts;
    if (hooks_.ctx != nullptr) hooks_.ctx->metrics().Add(hooks_.attempts);
    const bool timed_out = response.latency_ms > policy.attempt_deadline_ms;
    now_ms += std::min(response.latency_ms, policy.attempt_deadline_ms);

    if (!timed_out && response.outcome.ok()) {
      CircuitBreaker::State before_success = breaker.state();
      breaker.RecordSuccess();
      if (hooks_.ctx != nullptr &&
          before_success == CircuitBreaker::State::kHalfOpen) {
        hooks_.ctx->metrics().Add(hooks_.breaker_reclose);
      }
      ProbedSource probed = std::move(response.outcome).value();
      *acquired = std::move(probed.source);
      if (probed.stale) {
        acq.outcome = AcquisitionOutcome::kAcquiredStale;
        acq.staleness = probed.staleness;
        acquired->set_stats_state(StatsState::kStale, probed.staleness);
      } else if (probed.truncated) {
        acq.outcome = AcquisitionOutcome::kAcquiredPartial;
        acquired->set_stats_state(StatsState::kPartial);
      } else {
        acq.outcome = AcquisitionOutcome::kAcquired;
      }
      acq.status = Status::Ok();
      acq.breaker_trips = breaker.num_trips();
      acq.elapsed_ms = now_ms;
      return acq;
    }

    Status failure =
        timed_out ? Status::DeadlineExceeded(
                        "probe of '" + acq.name + "' exceeded the " +
                        FormatMs(policy.attempt_deadline_ms) +
                        " ms attempt deadline")
                  : response.outcome.status();
    last = failure;
    breaker.RecordFailure(now_ms);
    if (failure.code() == StatusCode::kNotFound) break;  // permanent: stop
    if (attempt + 1 < policy.max_attempts) {
      double delay_ms = backoff.NextDelayMs();
      now_ms += delay_ms;
      if (hooks_.ctx != nullptr) {
        hooks_.ctx->metrics().Add(hooks_.backoff_waits);
        hooks_.ctx->metrics().Observe(
            hooks_.backoff_wait_us,
            static_cast<int64_t>(std::llround(delay_ms * 1000.0)));
      }
    }
  }

  acq.outcome = AcquisitionOutcome::kDropped;
  acq.status = last;
  acq.breaker_trips = breaker.num_trips();
  acq.elapsed_ms = now_ms;
  return acq;
}

Result<Acquisition> SourceProber::Acquire(
    std::vector<std::unique_ptr<ProbeTarget>> targets) const {
  if (targets.empty()) {
    return Status::InvalidArgument("Acquire needs at least one probe target");
  }
  obs::Tracer::Span span = obs::SpanIf(options_.obs, "prober/acquire");
  InitObsHooks();
  const size_t n = targets.size();
  std::vector<SourceAcquisition> records(n);
  std::vector<std::optional<DataSource>> acquired(n);

  // One independent jitter stream per source, forked up front, so the
  // outcome is a pure function of (targets, options) — bit-identical for
  // any thread count or worker interleaving.
  Rng master(options_.seed);
  std::vector<Rng> streams;
  streams.reserve(n);
  for (size_t i = 0; i < n; ++i) streams.push_back(master.Fork(i));

  auto probe_one = [&](size_t i) {
    UBE_CHECK(targets[i] != nullptr, "null probe target");
    DataSource source;
    records[i] = ProbeOne(*targets[i], streams[i], &source);
    if (records[i].outcome != AcquisitionOutcome::kDropped) {
      acquired[i] = std::move(source);
    }
  };
  if (options_.num_threads == 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) probe_one(i);
  } else {
    ThreadPool pool(options_.num_threads);
    pool.ParallelFor(n, probe_one);
  }

  // Per-state aggregates folded sequentially from the records so the
  // totals match AcquisitionReport exactly, whatever the fan-out width.
  if (hooks_.ctx != nullptr) {
    obs::MetricsRegistry& m = hooks_.ctx->metrics();
    for (const SourceAcquisition& record : records) {
      m.Add(hooks_.breaker_trips, record.breaker_trips);
      m.Add(hooks_.outcome[static_cast<int>(record.outcome)]);
    }
  }

  Acquisition out;
  for (size_t i = 0; i < n; ++i) {
    if (acquired[i].has_value()) {
      out.universe.AddSource(std::move(*acquired[i]));
    } else {
      // Dropped sources stay in the universe as unavailable shells so ids
      // remain aligned with the report; the engine bans them from search.
      DataSource shell(records[i].name, SourceSchema());
      shell.set_available(false);
      shell.set_stats_state(StatsState::kMissing);
      out.universe.AddSource(std::move(shell));
    }
  }
  out.report.sources = std::move(records);
  if (out.universe.num_available() == 0) {
    return Status::Unavailable(
        "acquisition failed for every source (" + std::to_string(n) +
        " probed); first failure: " +
        out.report.sources.front().status.ToString());
  }
  return out;
}

}  // namespace ube
