#include "source/flaky.h"

#include <utility>

#include "util/check.h"

namespace ube {

DataSource CloneSource(const DataSource& source) {
  DataSource copy(source.name(), source.schema());
  copy.set_cardinality(source.cardinality());
  if (source.has_signature()) {
    copy.set_signature(source.signature().Clone());
  }
  for (const auto& [name, value] : source.characteristics()) {
    copy.SetCharacteristic(name, value);
  }
  copy.set_available(source.available());
  copy.set_stats_state(source.stats_state(), source.staleness());
  return copy;
}

Universe CloneUniverse(const Universe& universe) {
  Universe copy;
  for (SourceId s = 0; s < universe.num_sources(); ++s) {
    copy.AddSource(CloneSource(universe.source(s)));
  }
  return copy;
}

ProbeResponse InMemoryProbeTarget::Probe(int attempt) {
  (void)attempt;
  ProbeResponse response{ProbedSource{CloneSource(source_)}, 0.0};
  return response;
}

FlakyProbeTarget::FlakyProbeTarget(std::unique_ptr<ProbeTarget> inner,
                                   const FaultPlan* plan)
    : inner_(std::move(inner)), plan_(plan) {
  UBE_CHECK(inner_ != nullptr && plan_ != nullptr,
            "FlakyProbeTarget needs an inner target and a plan");
  key_ = FaultPlan::KeyFor(inner_->name());
}

ProbeResponse FlakyProbeTarget::Probe(int attempt) {
  FaultDecision fault = plan_->Decide(key_, attempt);
  switch (fault.kind) {
    case FaultKind::kTransient:
      return {Status::Unavailable("transient failure probing '" +
                                  inner_->name() + "'"),
              fault.latency_ms};
    case FaultKind::kTimeout:
      // The latency alone triggers the prober's per-attempt deadline; the
      // outcome below is what a caller without a deadline would see.
      return {Status::DeadlineExceeded("probe of '" + inner_->name() +
                                       "' did not respond"),
              fault.latency_ms};
    case FaultKind::kPermanent:
      return {Status::NotFound("source '" + inner_->name() +
                               "' is permanently gone"),
              fault.latency_ms};
    case FaultKind::kNone:
    case FaultKind::kStale:
    case FaultKind::kTruncated:
      break;
  }

  ProbeResponse inner = inner_->Probe(attempt);
  if (!inner.outcome.ok()) return inner;
  ProbedSource probed = std::move(inner.outcome).value();
  if (fault.kind == FaultKind::kStale) {
    probed.stale = true;
    probed.staleness = fault.staleness;
  } else if (fault.kind == FaultKind::kTruncated) {
    probed.truncated = true;
    probed.source.set_signature(nullptr);
  }
  return {std::move(probed), fault.latency_ms + inner.latency_ms};
}

}  // namespace ube
