#include "source/live_universe.h"

#include <algorithm>
#include <utility>

#include "source/flaky.h"
#include "util/check.h"

namespace ube {

LiveUniverse::LiveUniverse(Universe universe)
    : LiveUniverse(std::move(universe), Options{}) {}

LiveUniverse::LiveUniverse(Universe universe, Options options)
    : universe_(std::make_unique<Universe>(std::move(universe))),
      health_(options.breaker),
      refresh_retry_cost_ms_(options.refresh_retry_cost_ms),
      max_sources_(options.max_sources) {
  std::unique_ptr<AttributeSimilarity> measure =
      options.similarity != nullptr ? std::move(options.similarity)
                                    : MakeDefaultSimilarity();
  graph_ = std::make_unique<SimilarityGraph>(*universe_, std::move(measure),
                                             options.similarity_floor);
  matcher_ = std::make_unique<ClusterMatcher>(*universe_, *graph_);
}

Status LiveUniverse::Apply(const ChurnEvent& event) {
  if (event.time_ms + 1e-9 < last_event_ms_) {
    return Status::InvalidArgument(
        "churn event at " + std::to_string(event.time_ms) +
        "ms arrived after " + std::to_string(last_event_ms_) +
        "ms (events must be nondecreasing in time)");
  }
  Status status;
  switch (event.kind) {
    case ChurnEventKind::kAdd:
      status = ApplyAdd(event);
      break;
    case ChurnEventKind::kRemove:
      status = ApplyRemove(event);
      break;
    case ChurnEventKind::kStaleRefresh:
      status = ApplyStaleRefresh(event);
      break;
    case ChurnEventKind::kDrift:
      status = ApplyDrift(event);
      break;
    case ChurnEventKind::kAttrRename:
      status = ApplyAttrRename(event);
      break;
    case ChurnEventKind::kAttrAdd:
      status = ApplyAttrAdd(event);
      break;
    case ChurnEventKind::kAttrDrop:
      status = ApplyAttrDrop(event);
      break;
  }
  if (!status.ok()) return status;
  last_event_ms_ = event.time_ms;
  ++version_;
  return Status::Ok();
}

Status LiveUniverse::ApplyAll(const ChurnTrace& trace) {
  for (const ChurnEvent& event : trace.events) {
    UBE_RETURN_IF_ERROR(Apply(event));
  }
  return Status::Ok();
}

Status LiveUniverse::ApplyAdd(const ChurnEvent& event) {
  if (event.revive) {
    auto it = tombstones_.find(event.source);
    if (it == tombstones_.end()) {
      return Status::InvalidArgument(
          "revive of source " + std::to_string(event.source) +
          " which has no tombstone");
    }
    *universe_->mutable_source(event.source) = std::move(it->second);
    tombstones_.erase(it);
    graph_->PatchSourceAdded(*universe_, event.source);
    // A revived source is a fresh occupant of its id slot: it must not
    // inherit the breaker state or backoff budget its previous life
    // accumulated (tests/test_acquisition.cc pins this).
    health_.Reset(event.source);
    return Status::Ok();
  }
  if (event.added == nullptr) {
    return Status::InvalidArgument("add event carries no source description");
  }
  if (event.source != universe_->num_sources()) {
    return Status::InvalidArgument(
        "new source must take the next id " +
        std::to_string(universe_->num_sources()) + ", got " +
        std::to_string(event.source));
  }
  if (max_sources_ > 0 && universe_->num_sources() >= max_sources_) {
    // Reject before mutating anything: fixed-width downstream state
    // (SourceBitset, delta tables) is sized for max_sources ids, and an id
    // past that must never exist.
    return Status::FailedPrecondition(
        "add of source " + std::to_string(event.source) +
        " exceeds the declared capacity of " + std::to_string(max_sources_) +
        " sources");
  }
  universe_->AddSource(CloneSource(*event.added));
  graph_->PatchSourceAdded(*universe_, event.source);
  health_.Reset(event.source);
  return Status::Ok();
}

Status LiveUniverse::ApplyRemove(const ChurnEvent& event) {
  UBE_RETURN_IF_ERROR(universe_->ValidateId(event.source));
  DataSource* victim = universe_->mutable_source(event.source);
  if (!victim->available()) {
    return Status::InvalidArgument("remove of source " +
                                   std::to_string(event.source) +
                                   " which is already unavailable");
  }
  // Stash the full description for a later revive, then collapse the slot
  // to the prober's unavailable-shell convention: name kept, empty schema,
  // no statistics, unavailable — SourceIds stay stable.
  tombstones_.insert_or_assign(event.source, CloneSource(*victim));
  DataSource shell(victim->name(), SourceSchema());
  shell.set_available(false);
  shell.set_stats_state(StatsState::kMissing);
  *victim = std::move(shell);
  graph_->PatchSourceRemoved(event.source);
  health_.RecordFailure(event.source, event.time_ms);
  return Status::Ok();
}

Status LiveUniverse::ApplyStaleRefresh(const ChurnEvent& event) {
  UBE_RETURN_IF_ERROR(universe_->ValidateId(event.source));
  DataSource* source = universe_->mutable_source(event.source);
  if (!source->available()) {
    return Status::InvalidArgument("stale-refresh of unavailable source " +
                                   std::to_string(event.source));
  }
  if (event.staleness <= 0.0) {
    source->set_stats_state(StatsState::kFresh);
    health_.RecordSuccess(event.source);
  } else {
    source->set_stats_state(StatsState::kStale, event.staleness);
    health_.RecordFailure(event.source, event.time_ms);
    health_.AddBackoffSpent(event.source, refresh_retry_cost_ms_);
  }
  return Status::Ok();
}

Status LiveUniverse::ApplyDrift(const ChurnEvent& event) {
  UBE_RETURN_IF_ERROR(universe_->ValidateId(event.source));
  DataSource* source = universe_->mutable_source(event.source);
  if (!source->available()) {
    return Status::InvalidArgument("drift of unavailable source " +
                                   std::to_string(event.source));
  }
  if (event.cardinality_factor <= 0.0 || event.characteristic_factor <= 0.0) {
    return Status::InvalidArgument("drift factors must be positive");
  }
  source->set_cardinality(std::max<int64_t>(
      1, static_cast<int64_t>(static_cast<double>(source->cardinality()) *
                              event.cardinality_factor)));
  std::vector<std::pair<std::string, double>> scaled(
      source->characteristics().begin(), source->characteristics().end());
  for (const auto& [name, value] : scaled) {
    source->SetCharacteristic(name, value * event.characteristic_factor);
  }
  return Status::Ok();
}

Status LiveUniverse::ApplyAttrRename(const ChurnEvent& event) {
  UBE_RETURN_IF_ERROR(universe_->ValidateId(event.source));
  DataSource* source = universe_->mutable_source(event.source);
  if (!source->available()) {
    return Status::InvalidArgument("attr-rename of unavailable source " +
                                   std::to_string(event.source));
  }
  if (event.attr_index < 0 ||
      event.attr_index >= source->schema().num_attributes()) {
    return Status::InvalidArgument(
        "attr-rename of source " + std::to_string(event.source) +
        ": attribute " + std::to_string(event.attr_index) +
        " out of range (width " +
        std::to_string(source->schema().num_attributes()) + ")");
  }
  if (event.attr_name.empty()) {
    return Status::InvalidArgument("attr-rename carries an empty name");
  }
  source->mutable_schema()->RenameAttribute(event.attr_index, event.attr_name);
  graph_->PatchAttributeRenamed(*universe_, event.source, event.attr_index);
  return Status::Ok();
}

Status LiveUniverse::ApplyAttrAdd(const ChurnEvent& event) {
  UBE_RETURN_IF_ERROR(universe_->ValidateId(event.source));
  DataSource* source = universe_->mutable_source(event.source);
  if (!source->available()) {
    return Status::InvalidArgument("attr-add of unavailable source " +
                                   std::to_string(event.source));
  }
  // The attribute-level analogue of the dense-id rule for kAdd: new
  // attributes always append, so the patched graph's layout matches a
  // rebuild's.
  if (event.attr_index != source->schema().num_attributes()) {
    return Status::InvalidArgument(
        "attr-add of source " + std::to_string(event.source) +
        " must take the next index " +
        std::to_string(source->schema().num_attributes()) + ", got " +
        std::to_string(event.attr_index));
  }
  if (event.attr_name.empty()) {
    return Status::InvalidArgument("attr-add carries an empty name");
  }
  source->mutable_schema()->AddAttribute(event.attr_name);
  graph_->PatchAttributeAdded(*universe_, event.source);
  return Status::Ok();
}

Status LiveUniverse::ApplyAttrDrop(const ChurnEvent& event) {
  UBE_RETURN_IF_ERROR(universe_->ValidateId(event.source));
  DataSource* source = universe_->mutable_source(event.source);
  if (!source->available()) {
    return Status::InvalidArgument("attr-drop of unavailable source " +
                                   std::to_string(event.source));
  }
  if (event.attr_index < 0 ||
      event.attr_index >= source->schema().num_attributes()) {
    return Status::InvalidArgument(
        "attr-drop of source " + std::to_string(event.source) + ": attribute " +
        std::to_string(event.attr_index) + " out of range (width " +
        std::to_string(source->schema().num_attributes()) + ")");
  }
  if (source->schema().num_attributes() < 2) {
    // Drift never strips a live source bare — that is what kRemove is for
    // (and an alive zero-width source would be indistinguishable from a
    // removed shell to every downstream consumer).
    return Status::InvalidArgument(
        "attr-drop would leave source " + std::to_string(event.source) +
        " with no attributes; remove the source instead");
  }
  source->mutable_schema()->RemoveAttribute(event.attr_index);
  graph_->PatchAttributeDropped(event.source, event.attr_index);
  return Status::Ok();
}

}  // namespace ube
