#ifndef UBE_SOURCE_COMPOUND_H_
#define UBE_SOURCE_COMPOUND_H_

#include <string>
#include <utility>
#include <vector>

#include "schema/mediated_schema.h"
#include "source/universe.h"
#include "util/result.h"

namespace ube {

/// Compound schema elements — the extension sketched in Section 2.1:
/// "our formulation may be extended to accommodate compound schema elements
/// by replacing the attributes in our definitions with compound elements
/// (e.g., elements consisting of sets of attributes). This would enable us
/// to handle matching with n:m cardinality by mapping n:m matches to 1:1
/// matches on compound elements."
///
/// BuildCompoundUniverse derives a new universe in which user-specified
/// attribute groups of a source are fused into single compound attributes
/// (e.g. {"first name", "last name"} -> "first name last name"), so source
/// A's two attributes can match source B's single "full name" — a 2:1
/// match expressed as 1:1 over compounds. The returned CompoundMapping
/// translates ids and mediated schemas between the two universes.

/// One group of attributes of one source to fuse.
struct CompoundGroup {
  SourceId source = -1;
  /// Distinct in-range attribute indices; at least 2.
  std::vector<int> attr_indices;
  /// Name of the compound attribute in the derived schema; empty = the
  /// member names joined with spaces (in index order).
  std::string name;
};

/// Bidirectional id translation between an original universe and its
/// compound derivation.
class CompoundMapping {
 public:
  CompoundMapping() = default;

  /// Original attributes behind a derived attribute (size 1 for
  /// non-compound attributes, group size for compounds). InvalidArgument
  /// when `derived` does not name an attribute of the derived universe —
  /// ids arrive from user gestures (UI clicks, saved sessions), so bad
  /// input is reported, never aborted on.
  Result<std::vector<AttributeId>> OriginalsOf(const AttributeId& derived)
      const;

  /// Derived attribute holding an original attribute. InvalidArgument when
  /// `original` does not name an attribute of the original universe.
  Result<AttributeId> DerivedOf(const AttributeId& original) const;

  /// True if the derived attribute is a compound (> 1 originals);
  /// InvalidArgument on an out-of-range id.
  Result<bool> IsCompound(const AttributeId& derived) const;

  /// Expands a GA over the derived universe into the original attribute
  /// ids. The result can contain several attributes of one source — that
  /// is exactly the n:m semantics compounds encode — so it is returned as
  /// a plain id list, not a (1:1) GlobalAttribute. InvalidArgument when the
  /// GA references an attribute outside the derived universe.
  Result<std::vector<AttributeId>> ExpandGa(
      const GlobalAttribute& derived_ga) const;

  /// Expands every GA of a mediated schema over the derived universe.
  Result<std::vector<std::vector<AttributeId>>> ExpandSchema(
      const MediatedSchema& derived_schema) const;

 private:
  friend Result<std::pair<Universe, CompoundMapping>> BuildCompoundUniverse(
      const Universe& original, const std::vector<CompoundGroup>& groups);

  // originals_[source][derived attr index] -> original ids.
  std::vector<std::vector<std::vector<AttributeId>>> originals_;
  // derived_[source][original attr index] -> derived id.
  std::vector<std::vector<AttributeId>> derived_;
};

/// Builds the derived universe. Groups must reference valid sources and
/// attribute indices, contain at least two distinct indices each, and be
/// pairwise disjoint within a source. Source data (cardinality, signature,
/// characteristics) carries over unchanged — fusing interface fields does
/// not change the underlying tuples.
Result<std::pair<Universe, CompoundMapping>> BuildCompoundUniverse(
    const Universe& original, const std::vector<CompoundGroup>& groups);

}  // namespace ube

#endif  // UBE_SOURCE_COMPOUND_H_
