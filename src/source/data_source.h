#ifndef UBE_SOURCE_DATA_SOURCE_H_
#define UBE_SOURCE_DATA_SOURCE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "schema/schema.h"
#include "sketch/distinct_estimator.h"

namespace ube {

/// One data source as µBE sees it (Section 2.1): a schema, data
/// characteristics (tuple cardinality plus a distinct-count signature
/// provided by a *cooperating* source), and a set of named non-functional
/// characteristics such as latency, availability, fees or MTTF.
///
/// A source that does not cooperate simply has no signature
/// (has_signature() == false); the coverage/redundancy QEFs then assign it
/// zero contribution, per Section 4.
class DataSource {
 public:
  DataSource() = default;
  DataSource(std::string name, SourceSchema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  // Movable but not copyable (owns a signature); copies are rarely needed
  // and must be explicit via CloneShallow-style helpers if ever required.
  DataSource(DataSource&&) = default;
  DataSource& operator=(DataSource&&) = default;
  DataSource(const DataSource&) = delete;
  DataSource& operator=(const DataSource&) = delete;

  const std::string& name() const { return name_; }
  const SourceSchema& schema() const { return schema_; }
  SourceSchema* mutable_schema() { return &schema_; }

  /// Total number of tuples at the source ("obtained directly from the
  /// sources", Section 4). Includes duplicates the source may hold.
  int64_t cardinality() const { return cardinality_; }
  void set_cardinality(int64_t cardinality) { cardinality_ = cardinality; }

  /// The hash signature a cooperating source computed over its tuples.
  bool has_signature() const { return signature_ != nullptr; }
  const DistinctSignature& signature() const;
  void set_signature(std::unique_ptr<DistinctSignature> signature) {
    signature_ = std::move(signature);
  }

  /// Named non-functional characteristics (Section 5). Values are positive
  /// reals of any magnitude; aggregation into [0,1] happens in the QEFs.
  void SetCharacteristic(std::string_view name, double value);
  std::optional<double> GetCharacteristic(std::string_view name) const;
  const std::map<std::string, double, std::less<>>& characteristics() const {
    return characteristics_;
  }

 private:
  std::string name_;
  SourceSchema schema_;
  int64_t cardinality_ = 0;
  std::unique_ptr<DistinctSignature> signature_;
  std::map<std::string, double, std::less<>> characteristics_;
};

}  // namespace ube

#endif  // UBE_SOURCE_DATA_SOURCE_H_
