#ifndef UBE_SOURCE_DATA_SOURCE_H_
#define UBE_SOURCE_DATA_SOURCE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "schema/schema.h"
#include "sketch/distinct_estimator.h"

namespace ube {

/// Quality of the statistics (cardinality + signature) attached to a source
/// after acquisition (src/source/prober.h). A perfectly acquired source —
/// and every source built without going through the prober — is kFresh, so
/// the zero-fault path behaves exactly as before the acquisition layer.
enum class StatsState {
  kFresh,    ///< statistics are from a successful, current probe
  kStale,    ///< statistics are a last-known-good snapshot (see staleness())
  kPartial,  ///< cardinality known, signature truncated/lost in transit
  kMissing,  ///< no statistics at all (schema only)
};

std::string_view StatsStateName(StatsState state);

/// One data source as µBE sees it (Section 2.1): a schema, data
/// characteristics (tuple cardinality plus a distinct-count signature
/// provided by a *cooperating* source), and a set of named non-functional
/// characteristics such as latency, availability, fees or MTTF.
///
/// A source that does not cooperate simply has no signature
/// (has_signature() == false); the coverage/redundancy QEFs then assign it
/// zero contribution, per Section 4.
class DataSource {
 public:
  DataSource() = default;
  DataSource(std::string name, SourceSchema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  // Movable but not copyable (owns a signature); copies are rarely needed
  // and must be explicit via CloneShallow-style helpers if ever required.
  DataSource(DataSource&&) = default;
  DataSource& operator=(DataSource&&) = default;
  DataSource(const DataSource&) = delete;
  DataSource& operator=(const DataSource&) = delete;

  const std::string& name() const { return name_; }
  const SourceSchema& schema() const { return schema_; }
  SourceSchema* mutable_schema() { return &schema_; }

  /// Total number of tuples at the source ("obtained directly from the
  /// sources", Section 4). Includes duplicates the source may hold.
  int64_t cardinality() const { return cardinality_; }
  void set_cardinality(int64_t cardinality) { cardinality_ = cardinality; }

  /// The hash signature a cooperating source computed over its tuples.
  bool has_signature() const { return signature_ != nullptr; }
  const DistinctSignature& signature() const;
  void set_signature(std::unique_ptr<DistinctSignature> signature) {
    signature_ = std::move(signature);
  }

  /// False when acquisition dropped this source (permanent failure, breaker
  /// stuck open, or retry budget exhausted): the source stays in the
  /// universe so SourceIds remain stable against the acquisition report,
  /// but the engine treats it as permanently banned.
  bool available() const { return available_; }
  void set_available(bool available) { available_ = available; }

  /// Quality of the statistics attached to this source.
  StatsState stats_state() const { return stats_state_; }
  /// `staleness` is the snapshot's age in [0, 1] (0 = current); only
  /// meaningful for kStale, forced to 0 otherwise.
  void set_stats_state(StatsState state, double staleness = 0.0);
  double staleness() const { return staleness_; }

  /// Available with fully trusted statistics — the only sources the
  /// exclude-and-renormalize degradation policy admits (qef/qef.h).
  bool stats_fresh() const {
    return available_ && stats_state_ == StatsState::kFresh;
  }

  /// Named non-functional characteristics (Section 5). Values are positive
  /// reals of any magnitude; aggregation into [0,1] happens in the QEFs.
  void SetCharacteristic(std::string_view name, double value);
  std::optional<double> GetCharacteristic(std::string_view name) const;
  const std::map<std::string, double, std::less<>>& characteristics() const {
    return characteristics_;
  }

 private:
  std::string name_;
  SourceSchema schema_;
  int64_t cardinality_ = 0;
  std::unique_ptr<DistinctSignature> signature_;
  std::map<std::string, double, std::less<>> characteristics_;
  bool available_ = true;
  StatsState stats_state_ = StatsState::kFresh;
  double staleness_ = 0.0;
};

}  // namespace ube

#endif  // UBE_SOURCE_DATA_SOURCE_H_
