#ifndef UBE_MATCHING_CLUSTER_MATCHER_H_
#define UBE_MATCHING_CLUSTER_MATCHER_H_

#include <vector>

#include "matching/similarity_graph.h"
#include "schema/mediated_schema.h"
#include "source/universe.h"
#include "util/result.h"

namespace ube {

/// Parameters of the Match operator.
struct MatchOptions {
  /// Matching threshold θ: two clusters merge only if their (max-linkage)
  /// similarity reaches θ. Section 7.1 default.
  double theta = 0.75;
  /// β: minimum number of attributes in any output GA not stemming from a
  /// user GA constraint. Algorithm 1 only emits merged (size >= 2) clusters,
  /// so β = 2 is a no-op; larger values drop small GAs after clustering.
  int beta = 2;
};

/// Output of Match(S): the generated mediated schema and its quality.
struct MatchResult {
  /// True iff the schema is valid on the source constraints C. When false,
  /// matching_quality is 0 and `schema` is empty (Algorithm 1 returns NULL).
  bool valid = false;
  MediatedSchema schema;
  /// F1(S): average per-GA quality; 0 when invalid or when M is empty.
  double matching_quality = 0.0;
  /// Per-GA quality (max pairwise attribute similarity inside the GA;
  /// defined as 1 for single-attribute user GAs). Parallel to schema.gas().
  std::vector<double> ga_qualities;
  /// Whether the GA grew from (or is) a user GA constraint. Parallel to
  /// schema.gas(). Such GAs are exempt from the θ/β restrictions.
  std::vector<bool> ga_from_constraint;
  /// Number of merge rounds Algorithm 1 executed (diagnostics).
  int rounds = 0;
};

/// Order-sensitive structural hash over a MatchResult: validity, quality
/// float bits, rounds, every GA's attribute ids, per-GA quality bits and
/// constraint provenance. Equal fingerprints mean the results are
/// byte-identical for every consumer. Used by the drift property suite to
/// check that a matcher over an incrementally patched graph produces
/// exactly the output of one over a from-scratch rebuild.
uint64_t MatchResultFingerprint(const MatchResult& result);

/// The Match(S) schema-matching operator (Section 3, Algorithm 1): greedy
/// constrained similarity clustering of the attributes of a set of sources.
///
/// Clustering starts from the user GA constraints (each a pre-seeded
/// cluster that is never eliminated — the "Matching By Example" bridging
/// mechanism) plus one singleton cluster per remaining attribute, and
/// repeatedly merges the most similar admissible cluster pairs, where
/// cluster similarity is the *maximum* attribute-pair similarity between
/// the clusters and a merge is admissible only if the union is a valid GA
/// (at most one attribute per source). Clusters whose best similarity to
/// any other cluster is below θ are removed from consideration: singletons
/// are discarded, already-merged clusters are retired into the output (the
/// paper's "eliminate from M" is read as elimination from *consideration*;
/// see DESIGN.md §2).
class ClusterMatcher {
 public:
  /// Both the universe and the graph must outlive the matcher.
  ClusterMatcher(const Universe& universe, const SimilarityGraph& graph);

  /// Runs Match over `sources` with source constraints `source_constraints`
  /// (must be a subset of `sources`) and GA constraints `ga_constraints`.
  ///
  /// Returns a Status error for malformed input: duplicate/out-of-range
  /// sources, constraints not contained in `sources`, invalid or mutually
  /// intersecting GA constraints, or GA constraints referencing sources
  /// outside `sources`. An infeasible (but well-formed) matching — the
  /// result is not valid on the source constraints — returns a MatchResult
  /// with valid == false and quality 0, not an error.
  Result<MatchResult> Match(
      const std::vector<SourceId>& sources,
      const std::vector<SourceId>& source_constraints,
      const std::vector<GlobalAttribute>& ga_constraints,
      const MatchOptions& options = MatchOptions()) const;

  const SimilarityGraph& graph() const { return graph_; }

 private:
  const Universe& universe_;
  const SimilarityGraph& graph_;
};

}  // namespace ube

#endif  // UBE_MATCHING_CLUSTER_MATCHER_H_
