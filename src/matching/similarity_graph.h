#ifndef UBE_MATCHING_SIMILARITY_GRAPH_H_
#define UBE_MATCHING_SIMILARITY_GRAPH_H_

#include <memory>
#include <string>
#include <vector>

#include "schema/schema.h"
#include "source/universe.h"
#include "text/ngram.h"
#include "text/similarity.h"

namespace ube {

/// Precomputed pairwise attribute-similarity structure over a universe.
///
/// The schema matching operator must "enumerate pairs of schema elements at
/// any given two sources and compute a measure of similarity between each
/// pair" (Section 2.1). Because µBE evaluates Match(S) for thousands of
/// candidate source sets during one tabu search, we compute all cross-source
/// attribute similarities once per universe and keep only the edges whose
/// similarity reaches `floor` (any matching threshold θ used later must be
/// ≥ floor). Attributes are addressed by a dense universe-wide index.
///
/// The graph owns its similarity measure; there is a fast path for the
/// paper's default n-gram Jaccard measure (per-attribute n-gram sets are
/// precomputed once, making construction O(#pairs · avg-name-length)).
class SimilarityGraph {
 public:
  struct Edge {
    int32_t neighbor;   ///< dense index of the other attribute
    float similarity;   ///< in [floor, 1]
  };

  /// Builds the graph over all cross-source attribute pairs of `universe`.
  SimilarityGraph(const Universe& universe,
                  std::unique_ptr<AttributeSimilarity> similarity,
                  double floor);

  /// Convenience: paper defaults (3-gram Jaccard, floor 0.0 keeps every
  /// nonzero edge).
  static SimilarityGraph WithDefaults(const Universe& universe,
                                      double floor = 0.25);

  int num_attributes() const { return static_cast<int>(attr_ids_.size()); }
  double floor() const { return floor_; }
  const AttributeSimilarity& measure() const { return *measure_; }

  /// Dense index of an attribute; the id must be valid for the universe the
  /// graph was built on.
  int DenseIndex(const AttributeId& id) const;
  const AttributeId& AttrId(int dense_index) const;

  /// Original (un-normalized) name of the attribute at `dense_index`.
  const std::string& Name(int dense_index) const;

  /// Edges of one attribute, sorted by neighbor index. Only cross-source
  /// pairs with similarity >= floor appear.
  const std::vector<Edge>& EdgesOf(int dense_index) const;

  /// Exact similarity of an arbitrary attribute pair (recomputed; may be
  /// below floor). Used for user-GA quality, which has no threshold.
  double PairSimilarity(int a, int b) const;

  /// Total number of stored undirected edges.
  size_t num_edges() const { return num_edges_; }

  // --- incremental maintenance (live universe, src/source/live_universe.h) --
  //
  // The patch operations keep the graph byte-identical to a from-scratch
  // rebuild over the mutated universe (Fingerprint() is the oracle the
  // property suite checks): only edges incident to the changed source are
  // recomputed, every other row is renumbered in place.

  /// Removes every attribute of `source` from the graph (the source's slot
  /// stays — it just becomes zero-width, exactly as rebuilding over a
  /// universe where the source is an empty-schema shell would). No-op when
  /// the source already has no attributes.
  void PatchSourceRemoved(SourceId source);

  /// Adds the attributes of `universe.source(source)` to the graph. The
  /// source must currently be zero-width in the graph: either a removed
  /// shell being revived, or `source == S` (one past the last indexed
  /// source), which appends a new slot — the layout a rebuild over the
  /// grown universe produces, because new sources get the highest id.
  /// Similarities are computed with the same code path as construction, so
  /// edge floats match a rebuild bit for bit.
  void PatchSourceAdded(const Universe& universe, SourceId source);

  // Attribute-level patches (schema drift). The universe's schema must
  // already reflect the mutation when these are called; the graph catches up
  // to it. Same bit-identity contract as the source-level patches.

  /// Attribute `attr_index` of `source` was renamed in place: its dense
  /// index and AttributeId are unchanged, but its name, n-gram set and every
  /// incident edge are recomputed.
  void PatchAttributeRenamed(const Universe& universe, SourceId source,
                             int attr_index);

  /// A new attribute was appended to `source` (it now occupies the schema's
  /// last index — the attribute-level analogue of the dense-id rule for new
  /// sources). Inserts its row at the end of the source's block, renumbers
  /// later rows, and computes its edges.
  void PatchAttributeAdded(const Universe& universe, SourceId source);

  /// Attribute `attr_index` of `source` was removed; later attributes of
  /// the source shifted down by one. Erases the row, renumbers, and repairs
  /// the AttributeIds of the source's later attributes.
  void PatchAttributeDropped(SourceId source, int attr_index);

  /// Order-sensitive structural hash over (offsets, attribute ids, names,
  /// adjacency including similarity float bits, edge count). Two graphs
  /// with equal fingerprints are byte-identical for every query above.
  uint64_t Fingerprint() const;

  /// Number of source slots the graph indexes (a live universe grows this
  /// via PatchSourceAdded).
  int num_source_slots() const {
    return static_cast<int>(source_offsets_.size()) - 1;
  }

 private:
  /// Drops every edge incident to row `dense` (mirrors included) and clears
  /// the row.
  void EraseRowEdges(int dense);
  /// Computes the edges of row `dense` against every attribute outside
  /// [block_first, block_last) — the row's own source block — mirroring
  /// each edge into the neighbor's sorted row. The row must be empty.
  void RecomputeRow(int dense, int block_first, int block_last);

  double floor_;
  std::unique_ptr<AttributeSimilarity> measure_;
  std::vector<AttributeId> attr_ids_;          // dense index -> id
  std::vector<int> source_offsets_;            // source -> first dense index
  std::vector<std::string> names_;             // dense index -> raw name
  std::vector<NgramSet> ngram_sets_;           // fast path only
  std::vector<std::vector<Edge>> adjacency_;
  size_t num_edges_ = 0;
  int ngram_n_ = 0;  // >0 => n-gram Jaccard fast path active
};

}  // namespace ube

#endif  // UBE_MATCHING_SIMILARITY_GRAPH_H_
