#include "matching/similarity_graph.h"

#include <algorithm>
#include <bit>

#include "util/check.h"
#include "util/rng.h"
#include "util/strings.h"

namespace ube {

SimilarityGraph::SimilarityGraph(
    const Universe& universe, std::unique_ptr<AttributeSimilarity> similarity,
    double floor)
    : floor_(floor), measure_(std::move(similarity)) {
  UBE_CHECK(measure_ != nullptr, "SimilarityGraph requires a measure");
  UBE_CHECK(floor_ >= 0.0 && floor_ <= 1.0, "floor must be in [0, 1]");

  // Dense attribute indexing.
  source_offsets_.reserve(static_cast<size_t>(universe.num_sources()) + 1);
  for (SourceId s = 0; s < universe.num_sources(); ++s) {
    source_offsets_.push_back(static_cast<int>(attr_ids_.size()));
    const SourceSchema& schema = universe.source(s).schema();
    for (int a = 0; a < schema.num_attributes(); ++a) {
      attr_ids_.push_back(AttributeId{s, a});
      names_.push_back(schema.attribute_name(a));
    }
  }
  source_offsets_.push_back(static_cast<int>(attr_ids_.size()));
  adjacency_.resize(attr_ids_.size());

  // n-gram fast path detection.
  if (const auto* ngram =
          dynamic_cast<const NgramJaccardSimilarity*>(measure_.get())) {
    ngram_n_ = ngram->n();
    ngram_sets_.reserve(names_.size());
    for (const std::string& name : names_) {
      ngram_sets_.push_back(
          NgramSet::Build(NormalizeAttributeName(name), ngram_n_));
    }
  }

  // All cross-source pairs. Attributes of the same source never get edges
  // (a valid GA cannot contain two attributes of one source).
  const int n = num_attributes();
  for (int a = 0; a < n; ++a) {
    const SourceId source_a = attr_ids_[static_cast<size_t>(a)].source;
    // Attributes are laid out grouped by source; skip the rest of a's own
    // source block.
    int b_start = source_offsets_[static_cast<size_t>(source_a) + 1];
    for (int b = b_start; b < n; ++b) {
      double sim = PairSimilarity(a, b);
      if (sim >= floor_ && sim > 0.0) {
        adjacency_[static_cast<size_t>(a)].push_back(
            Edge{b, static_cast<float>(sim)});
        adjacency_[static_cast<size_t>(b)].push_back(
            Edge{a, static_cast<float>(sim)});
        ++num_edges_;
      }
    }
  }
  for (auto& edges : adjacency_) {
    std::sort(edges.begin(), edges.end(),
              [](const Edge& x, const Edge& y) {
                return x.neighbor < y.neighbor;
              });
  }
}

SimilarityGraph SimilarityGraph::WithDefaults(const Universe& universe,
                                              double floor) {
  return SimilarityGraph(universe, MakeDefaultSimilarity(), floor);
}

int SimilarityGraph::DenseIndex(const AttributeId& id) const {
  UBE_CHECK(id.source >= 0 &&
                id.source + 1 < static_cast<int>(source_offsets_.size()),
            "AttributeId source out of range");
  int base = source_offsets_[static_cast<size_t>(id.source)];
  int next = source_offsets_[static_cast<size_t>(id.source) + 1];
  UBE_CHECK(id.attr_index >= 0 && base + id.attr_index < next,
            "AttributeId attr_index out of range");
  return base + id.attr_index;
}

const AttributeId& SimilarityGraph::AttrId(int dense_index) const {
  UBE_CHECK(dense_index >= 0 && dense_index < num_attributes(),
            "dense index out of range");
  return attr_ids_[static_cast<size_t>(dense_index)];
}

const std::string& SimilarityGraph::Name(int dense_index) const {
  UBE_CHECK(dense_index >= 0 && dense_index < num_attributes(),
            "dense index out of range");
  return names_[static_cast<size_t>(dense_index)];
}

const std::vector<SimilarityGraph::Edge>& SimilarityGraph::EdgesOf(
    int dense_index) const {
  UBE_CHECK(dense_index >= 0 && dense_index < num_attributes(),
            "dense index out of range");
  return adjacency_[static_cast<size_t>(dense_index)];
}

void SimilarityGraph::PatchSourceRemoved(SourceId source) {
  UBE_CHECK(source >= 0 && source < num_source_slots(),
            "PatchSourceRemoved: source out of range");
  const int first = source_offsets_[static_cast<size_t>(source)];
  const int last = source_offsets_[static_cast<size_t>(source) + 1];
  const int count = last - first;
  if (count == 0) return;

  // Every edge of a removed row has its other endpoint outside the removed
  // block (same-source pairs never get edges), so each removed edge shows
  // up exactly once across the removed rows.
  for (int i = first; i < last; ++i) {
    num_edges_ -= adjacency_[static_cast<size_t>(i)].size();
  }
  adjacency_.erase(adjacency_.begin() + first, adjacency_.begin() + last);
  attr_ids_.erase(attr_ids_.begin() + first, attr_ids_.begin() + last);
  names_.erase(names_.begin() + first, names_.begin() + last);
  if (ngram_n_ > 0) {
    ngram_sets_.erase(ngram_sets_.begin() + first, ngram_sets_.begin() + last);
  }
  // Surviving rows: drop edges into the removed block, shift indexes past
  // it. The index mapping is monotonic, so rows stay sorted by neighbor.
  for (auto& edges : adjacency_) {
    size_t keep = 0;
    for (Edge edge : edges) {
      if (edge.neighbor >= first && edge.neighbor < last) continue;
      if (edge.neighbor >= last) edge.neighbor -= count;
      edges[keep++] = edge;
    }
    edges.resize(keep);
  }
  for (size_t t = static_cast<size_t>(source) + 1; t < source_offsets_.size();
       ++t) {
    source_offsets_[t] -= count;
  }
}

void SimilarityGraph::PatchSourceAdded(const Universe& universe,
                                       SourceId source) {
  UBE_CHECK(source >= 0 && source <= num_source_slots(),
            "PatchSourceAdded: source out of range");
  if (source == num_source_slots()) {
    // Brand-new source: append a zero-width slot at the tail — exactly
    // where a rebuild over the grown universe puts it.
    source_offsets_.push_back(source_offsets_.back());
  }
  UBE_CHECK(source_offsets_[static_cast<size_t>(source)] ==
                source_offsets_[static_cast<size_t>(source) + 1],
            "PatchSourceAdded: source still has attributes; remove it first");
  const SourceSchema& schema = universe.source(source).schema();
  const int add = schema.num_attributes();
  if (add == 0) return;
  const int first = source_offsets_[static_cast<size_t>(source)];

  // Renumber existing rows past the insertion point, then splice in the new
  // block. The shift is monotonic, so rows stay sorted.
  for (auto& edges : adjacency_) {
    for (Edge& edge : edges) {
      if (edge.neighbor >= first) edge.neighbor += add;
    }
  }
  for (size_t t = static_cast<size_t>(source) + 1; t < source_offsets_.size();
       ++t) {
    source_offsets_[t] += add;
  }
  attr_ids_.insert(attr_ids_.begin() + first, static_cast<size_t>(add),
                   AttributeId{});
  names_.insert(names_.begin() + first, static_cast<size_t>(add),
                std::string());
  adjacency_.insert(adjacency_.begin() + first, static_cast<size_t>(add),
                    std::vector<Edge>());
  if (ngram_n_ > 0) {
    ngram_sets_.insert(ngram_sets_.begin() + first, static_cast<size_t>(add),
                       NgramSet());
  }
  for (int a = 0; a < add; ++a) {
    const size_t dense = static_cast<size_t>(first + a);
    attr_ids_[dense] = AttributeId{source, a};
    names_[dense] = schema.attribute_name(a);
    if (ngram_n_ > 0) {
      ngram_sets_[dense] =
          NgramSet::Build(NormalizeAttributeName(names_[dense]), ngram_n_);
    }
  }

  // Only edges incident to the new block are computed; PairSimilarity is
  // the same code path construction uses (and every measure is exactly
  // symmetric), so the floats match a from-scratch rebuild bit for bit.
  const int n = num_attributes();
  for (int a = first; a < first + add; ++a) {
    auto& row = adjacency_[static_cast<size_t>(a)];
    for (int b = 0; b < n; ++b) {
      if (b >= first && b < first + add) continue;  // same-source block
      double sim = PairSimilarity(a, b);
      if (sim >= floor_ && sim > 0.0) {
        row.push_back(Edge{b, static_cast<float>(sim)});
        auto& other = adjacency_[static_cast<size_t>(b)];
        other.insert(std::lower_bound(other.begin(), other.end(), a,
                                      [](const Edge& e, int idx) {
                                        return e.neighbor < idx;
                                      }),
                     Edge{a, static_cast<float>(sim)});
        ++num_edges_;
      }
    }
    // b ran ascending, so the new row is already sorted by neighbor.
  }
}

void SimilarityGraph::EraseRowEdges(int dense) {
  auto& row = adjacency_[static_cast<size_t>(dense)];
  for (const Edge& edge : row) {
    auto& other = adjacency_[static_cast<size_t>(edge.neighbor)];
    auto it = std::lower_bound(other.begin(), other.end(), dense,
                               [](const Edge& e, int idx) {
                                 return e.neighbor < idx;
                               });
    UBE_CHECK(it != other.end() && it->neighbor == dense,
              "EraseRowEdges: mirror edge missing");
    other.erase(it);
  }
  num_edges_ -= row.size();
  row.clear();
}

void SimilarityGraph::RecomputeRow(int dense, int block_first, int block_last) {
  auto& row = adjacency_[static_cast<size_t>(dense)];
  UBE_CHECK(row.empty(), "RecomputeRow: row must be empty");
  const int n = num_attributes();
  for (int b = 0; b < n; ++b) {
    if (b >= block_first && b < block_last) continue;  // same-source block
    double sim = PairSimilarity(dense, b);
    if (sim >= floor_ && sim > 0.0) {
      row.push_back(Edge{b, static_cast<float>(sim)});
      auto& other = adjacency_[static_cast<size_t>(b)];
      other.insert(std::lower_bound(other.begin(), other.end(), dense,
                                    [](const Edge& e, int idx) {
                                      return e.neighbor < idx;
                                    }),
                   Edge{dense, static_cast<float>(sim)});
      ++num_edges_;
    }
  }
  // b ran ascending, so the row is sorted by neighbor.
}

void SimilarityGraph::PatchAttributeRenamed(const Universe& universe,
                                            SourceId source, int attr_index) {
  UBE_CHECK(source >= 0 && source < num_source_slots(),
            "PatchAttributeRenamed: source out of range");
  const int first = source_offsets_[static_cast<size_t>(source)];
  const int last = source_offsets_[static_cast<size_t>(source) + 1];
  UBE_CHECK(attr_index >= 0 && first + attr_index < last,
            "PatchAttributeRenamed: attr_index out of range");
  const int dense = first + attr_index;
  names_[static_cast<size_t>(dense)] =
      universe.source(source).schema().attribute_name(attr_index);
  if (ngram_n_ > 0) {
    ngram_sets_[static_cast<size_t>(dense)] = NgramSet::Build(
        NormalizeAttributeName(names_[static_cast<size_t>(dense)]), ngram_n_);
  }
  EraseRowEdges(dense);
  RecomputeRow(dense, first, last);
}

void SimilarityGraph::PatchAttributeAdded(const Universe& universe,
                                          SourceId source) {
  UBE_CHECK(source >= 0 && source < num_source_slots(),
            "PatchAttributeAdded: source out of range");
  const SourceSchema& schema = universe.source(source).schema();
  const int first = source_offsets_[static_cast<size_t>(source)];
  const int old_width = source_offsets_[static_cast<size_t>(source) + 1] - first;
  UBE_CHECK(schema.num_attributes() == old_width + 1,
            "PatchAttributeAdded: schema must have exactly one new attribute");
  const int attr_index = old_width;  // appended at the end of the block
  const int dense = first + attr_index;

  // Renumber existing rows at or past the insertion point, then splice the
  // new (empty) row in. The shift is monotonic, so rows stay sorted.
  for (auto& edges : adjacency_) {
    for (Edge& edge : edges) {
      if (edge.neighbor >= dense) edge.neighbor += 1;
    }
  }
  for (size_t t = static_cast<size_t>(source) + 1; t < source_offsets_.size();
       ++t) {
    source_offsets_[t] += 1;
  }
  attr_ids_.insert(attr_ids_.begin() + dense, AttributeId{source, attr_index});
  names_.insert(names_.begin() + dense, schema.attribute_name(attr_index));
  adjacency_.insert(adjacency_.begin() + dense, std::vector<Edge>());
  if (ngram_n_ > 0) {
    ngram_sets_.insert(
        ngram_sets_.begin() + dense,
        NgramSet::Build(
            NormalizeAttributeName(names_[static_cast<size_t>(dense)]),
            ngram_n_));
  }
  RecomputeRow(dense, first, first + attr_index + 1);
}

void SimilarityGraph::PatchAttributeDropped(SourceId source, int attr_index) {
  UBE_CHECK(source >= 0 && source < num_source_slots(),
            "PatchAttributeDropped: source out of range");
  const int first = source_offsets_[static_cast<size_t>(source)];
  const int last = source_offsets_[static_cast<size_t>(source) + 1];
  UBE_CHECK(attr_index >= 0 && first + attr_index < last,
            "PatchAttributeDropped: attr_index out of range");
  const int dense = first + attr_index;

  EraseRowEdges(dense);
  adjacency_.erase(adjacency_.begin() + dense);
  attr_ids_.erase(attr_ids_.begin() + dense);
  names_.erase(names_.begin() + dense);
  if (ngram_n_ > 0) ngram_sets_.erase(ngram_sets_.begin() + dense);

  // No row points at `dense` anymore; shift every later index down. The
  // mapping is monotonic, so rows stay sorted by neighbor.
  for (auto& edges : adjacency_) {
    for (Edge& edge : edges) {
      if (edge.neighbor > dense) edge.neighbor -= 1;
    }
  }
  for (size_t t = static_cast<size_t>(source) + 1; t < source_offsets_.size();
       ++t) {
    source_offsets_[t] -= 1;
  }
  // Later attributes of this source shifted down by one in the schema.
  for (int i = dense; i < last - 1; ++i) {
    attr_ids_[static_cast<size_t>(i)].attr_index -= 1;
  }
}

uint64_t SimilarityGraph::Fingerprint() const {
  uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](uint64_t v) { h = SplitMix64(h ^ v); };
  mix(static_cast<uint64_t>(attr_ids_.size()));
  mix(static_cast<uint64_t>(num_edges_));
  for (int offset : source_offsets_) mix(static_cast<uint64_t>(offset));
  for (const AttributeId& id : attr_ids_) {
    mix((static_cast<uint64_t>(static_cast<uint32_t>(id.source)) << 32) |
        static_cast<uint32_t>(id.attr_index));
  }
  for (const std::string& name : names_) {
    uint64_t inner = 1469598103934665603ull;
    for (char c : name) inner = (inner ^ static_cast<uint8_t>(c)) * 1099511628211ull;
    mix(inner);
  }
  for (const auto& edges : adjacency_) {
    mix(static_cast<uint64_t>(edges.size()));
    for (const Edge& edge : edges) {
      mix((static_cast<uint64_t>(static_cast<uint32_t>(edge.neighbor)) << 32) |
          std::bit_cast<uint32_t>(edge.similarity));
    }
  }
  return h;
}

double SimilarityGraph::PairSimilarity(int a, int b) const {
  UBE_DCHECK(a >= 0 && a < num_attributes() && b >= 0 && b < num_attributes(),
             "dense index out of range");
  if (ngram_n_ > 0) {
    return ngram_sets_[static_cast<size_t>(a)].Jaccard(
        ngram_sets_[static_cast<size_t>(b)]);
  }
  return measure_->Score(names_[static_cast<size_t>(a)],
                         names_[static_cast<size_t>(b)]);
}

}  // namespace ube
