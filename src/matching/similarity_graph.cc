#include "matching/similarity_graph.h"

#include <algorithm>

#include "util/check.h"
#include "util/strings.h"

namespace ube {

SimilarityGraph::SimilarityGraph(
    const Universe& universe, std::unique_ptr<AttributeSimilarity> similarity,
    double floor)
    : floor_(floor), measure_(std::move(similarity)) {
  UBE_CHECK(measure_ != nullptr, "SimilarityGraph requires a measure");
  UBE_CHECK(floor_ >= 0.0 && floor_ <= 1.0, "floor must be in [0, 1]");

  // Dense attribute indexing.
  source_offsets_.reserve(static_cast<size_t>(universe.num_sources()) + 1);
  for (SourceId s = 0; s < universe.num_sources(); ++s) {
    source_offsets_.push_back(static_cast<int>(attr_ids_.size()));
    const SourceSchema& schema = universe.source(s).schema();
    for (int a = 0; a < schema.num_attributes(); ++a) {
      attr_ids_.push_back(AttributeId{s, a});
      names_.push_back(schema.attribute_name(a));
    }
  }
  source_offsets_.push_back(static_cast<int>(attr_ids_.size()));
  adjacency_.resize(attr_ids_.size());

  // n-gram fast path detection.
  if (const auto* ngram =
          dynamic_cast<const NgramJaccardSimilarity*>(measure_.get())) {
    ngram_n_ = ngram->n();
    ngram_sets_.reserve(names_.size());
    for (const std::string& name : names_) {
      ngram_sets_.push_back(
          NgramSet::Build(NormalizeAttributeName(name), ngram_n_));
    }
  }

  // All cross-source pairs. Attributes of the same source never get edges
  // (a valid GA cannot contain two attributes of one source).
  const int n = num_attributes();
  for (int a = 0; a < n; ++a) {
    const SourceId source_a = attr_ids_[static_cast<size_t>(a)].source;
    // Attributes are laid out grouped by source; skip the rest of a's own
    // source block.
    int b_start = source_offsets_[static_cast<size_t>(source_a) + 1];
    for (int b = b_start; b < n; ++b) {
      double sim = PairSimilarity(a, b);
      if (sim >= floor_ && sim > 0.0) {
        adjacency_[static_cast<size_t>(a)].push_back(
            Edge{b, static_cast<float>(sim)});
        adjacency_[static_cast<size_t>(b)].push_back(
            Edge{a, static_cast<float>(sim)});
        ++num_edges_;
      }
    }
  }
  for (auto& edges : adjacency_) {
    std::sort(edges.begin(), edges.end(),
              [](const Edge& x, const Edge& y) {
                return x.neighbor < y.neighbor;
              });
  }
}

SimilarityGraph SimilarityGraph::WithDefaults(const Universe& universe,
                                              double floor) {
  return SimilarityGraph(universe, MakeDefaultSimilarity(), floor);
}

int SimilarityGraph::DenseIndex(const AttributeId& id) const {
  UBE_CHECK(id.source >= 0 &&
                id.source + 1 < static_cast<int>(source_offsets_.size()),
            "AttributeId source out of range");
  int base = source_offsets_[static_cast<size_t>(id.source)];
  int next = source_offsets_[static_cast<size_t>(id.source) + 1];
  UBE_CHECK(id.attr_index >= 0 && base + id.attr_index < next,
            "AttributeId attr_index out of range");
  return base + id.attr_index;
}

const AttributeId& SimilarityGraph::AttrId(int dense_index) const {
  UBE_CHECK(dense_index >= 0 && dense_index < num_attributes(),
            "dense index out of range");
  return attr_ids_[static_cast<size_t>(dense_index)];
}

const std::string& SimilarityGraph::Name(int dense_index) const {
  UBE_CHECK(dense_index >= 0 && dense_index < num_attributes(),
            "dense index out of range");
  return names_[static_cast<size_t>(dense_index)];
}

const std::vector<SimilarityGraph::Edge>& SimilarityGraph::EdgesOf(
    int dense_index) const {
  UBE_CHECK(dense_index >= 0 && dense_index < num_attributes(),
            "dense index out of range");
  return adjacency_[static_cast<size_t>(dense_index)];
}

double SimilarityGraph::PairSimilarity(int a, int b) const {
  UBE_DCHECK(a >= 0 && a < num_attributes() && b >= 0 && b < num_attributes(),
             "dense index out of range");
  if (ngram_n_ > 0) {
    return ngram_sets_[static_cast<size_t>(a)].Jaccard(
        ngram_sets_[static_cast<size_t>(b)]);
  }
  return measure_->Score(names_[static_cast<size_t>(a)],
                         names_[static_cast<size_t>(b)]);
}

}  // namespace ube
