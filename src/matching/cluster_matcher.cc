#include "matching/cluster_matcher.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace ube {

namespace {

// Working representation of one cluster during Algorithm 1.
struct Cluster {
  std::vector<int> attrs;        // dense attribute indices
  std::vector<SourceId> sources; // sorted; one entry per attribute
  double quality = 0.0;          // max pairwise similarity so far
  bool keep = false;             // grew from (or is) a user GA constraint
  bool retired = false;          // finalized into the output, no more merges
  bool absorbed = false;         // merged into another cluster
  bool discarded = false;        // eliminated singleton
  // Per-round flags (Algorithm 1 lines 3, 7).
  bool round_merged = false;
  bool round_mergecand = false;
  bool newly_created = false;

  bool Live() const { return !absorbed && !discarded; }
  bool Active() const { return Live() && !retired; }
};

// True iff the two sorted source lists share no element (merging yields a
// valid GA).
bool SourcesDisjoint(const std::vector<SourceId>& a,
                     const std::vector<SourceId>& b) {
  auto i = a.begin();
  auto j = b.begin();
  while (i != a.end() && j != b.end()) {
    if (*i < *j) {
      ++i;
    } else if (*j < *i) {
      ++j;
    } else {
      return false;
    }
  }
  return true;
}

struct PairCandidate {
  float similarity;
  int c1;  // c1 < c2
  int c2;
};

}  // namespace

uint64_t MatchResultFingerprint(const MatchResult& result) {
  uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](uint64_t v) { h = SplitMix64(h ^ v); };
  mix(result.valid ? 1 : 0);
  mix(std::bit_cast<uint64_t>(result.matching_quality));
  mix(static_cast<uint64_t>(result.rounds));
  mix(static_cast<uint64_t>(result.schema.num_gas()));
  for (const GlobalAttribute& ga : result.schema.gas()) {
    mix(static_cast<uint64_t>(ga.attributes().size()));
    for (const AttributeId& id : ga.attributes()) {
      mix((static_cast<uint64_t>(static_cast<uint32_t>(id.source)) << 32) |
          static_cast<uint32_t>(id.attr_index));
    }
  }
  for (double q : result.ga_qualities) mix(std::bit_cast<uint64_t>(q));
  for (bool from_constraint : result.ga_from_constraint) {
    mix(from_constraint ? 1 : 0);
  }
  return h;
}

ClusterMatcher::ClusterMatcher(const Universe& universe,
                               const SimilarityGraph& graph)
    : universe_(universe), graph_(graph) {}

Result<MatchResult> ClusterMatcher::Match(
    const std::vector<SourceId>& sources,
    const std::vector<SourceId>& source_constraints,
    const std::vector<GlobalAttribute>& ga_constraints,
    const MatchOptions& options) const {
  if (options.theta < graph_.floor()) {
    return Status::InvalidArgument(
        "matching threshold θ is below the similarity graph floor");
  }
  if (options.beta < 1) {
    return Status::InvalidArgument("β must be >= 1");
  }

  // --- Input validation -----------------------------------------------
  std::unordered_set<SourceId> in_s;
  for (SourceId s : sources) {
    if (s < 0 || s >= universe_.num_sources()) {
      return Status::InvalidArgument("source id out of range");
    }
    if (!in_s.insert(s).second) {
      return Status::InvalidArgument("duplicate source id in S");
    }
  }
  for (SourceId c : source_constraints) {
    if (!in_s.contains(c)) {
      return Status::InvalidArgument(
          "source constraint not contained in S (callers must ensure C ⊆ S)");
    }
  }
  for (size_t i = 0; i < ga_constraints.size(); ++i) {
    const GlobalAttribute& g = ga_constraints[i];
    if (!g.IsValid()) {
      return Status::InvalidArgument("GA constraint is not a valid GA");
    }
    for (const AttributeId& id : g.attributes()) {
      if (!in_s.contains(id.source)) {
        return Status::InvalidArgument(
            "GA constraint references a source outside S");
      }
      const SourceSchema& schema = universe_.source(id.source).schema();
      if (id.attr_index < 0 || id.attr_index >= schema.num_attributes()) {
        return Status::InvalidArgument(
            "GA constraint references a nonexistent attribute");
      }
    }
    for (size_t j = i + 1; j < ga_constraints.size(); ++j) {
      if (g.Intersects(ga_constraints[j])) {
        return Status::InvalidArgument("GA constraints must be disjoint");
      }
    }
  }

  // --- Initialization (Algorithm 1 lines 1-4) --------------------------
  std::vector<Cluster> clusters;
  // cluster_of[dense attr index] -> cluster index, or -1 if not in S.
  std::vector<int> cluster_of(static_cast<size_t>(graph_.num_attributes()),
                              -1);

  for (const GlobalAttribute& g : ga_constraints) {
    Cluster c;
    c.keep = true;
    for (const AttributeId& id : g.attributes()) {
      int dense = graph_.DenseIndex(id);
      c.attrs.push_back(dense);
      c.sources.push_back(id.source);
    }
    std::sort(c.sources.begin(), c.sources.end());
    // Quality of a user GA: max pairwise similarity (no threshold applies);
    // a single-attribute GA is perfectly coherent with itself.
    if (c.attrs.size() == 1) {
      c.quality = 1.0;
    } else {
      double best = 0.0;
      for (size_t i = 0; i < c.attrs.size(); ++i) {
        for (size_t j = i + 1; j < c.attrs.size(); ++j) {
          best = std::max(best,
                          graph_.PairSimilarity(c.attrs[i], c.attrs[j]));
        }
      }
      c.quality = best;
    }
    int idx = static_cast<int>(clusters.size());
    for (int dense : c.attrs) cluster_of[static_cast<size_t>(dense)] = idx;
    clusters.push_back(std::move(c));
  }

  // Remaining attributes of S as singleton clusters. Iterate sources in
  // sorted order for determinism.
  std::vector<SourceId> sorted_sources = sources;
  std::sort(sorted_sources.begin(), sorted_sources.end());
  for (SourceId s : sorted_sources) {
    const SourceSchema& schema = universe_.source(s).schema();
    for (int a = 0; a < schema.num_attributes(); ++a) {
      int dense = graph_.DenseIndex(AttributeId{s, a});
      if (cluster_of[static_cast<size_t>(dense)] != -1) continue;  // in G
      Cluster c;
      c.attrs.push_back(dense);
      c.sources.push_back(s);
      c.quality = 0.0;
      cluster_of[static_cast<size_t>(dense)] =
          static_cast<int>(clusters.size());
      clusters.push_back(std::move(c));
    }
  }

  // --- Merge rounds (Algorithm 1 lines 5-23) ---------------------------
  MatchResult result;
  const float theta = static_cast<float>(options.theta);
  bool done = false;
  while (!done) {
    done = true;
    ++result.rounds;
    const size_t round_start_size = clusters.size();
    for (Cluster& c : clusters) {
      c.round_merged = false;
      c.round_mergecand = false;
      c.newly_created = false;
    }

    // Line 8: all active-cluster pairs with similarity >= θ, max-linkage.
    std::unordered_map<uint64_t, float> pair_sim;
    for (size_t ci = 0; ci < round_start_size; ++ci) {
      if (!clusters[ci].Active()) continue;
      for (int u : clusters[ci].attrs) {
        for (const SimilarityGraph::Edge& e : graph_.EdgesOf(u)) {
          if (e.similarity < theta) continue;
          int cj = cluster_of[static_cast<size_t>(e.neighbor)];
          if (cj < 0 || static_cast<size_t>(cj) == ci) continue;
          if (!clusters[static_cast<size_t>(cj)].Active()) continue;
          uint64_t key =
              ci < static_cast<size_t>(cj)
                  ? (static_cast<uint64_t>(ci) << 32) | static_cast<uint32_t>(cj)
                  : (static_cast<uint64_t>(cj) << 32) | static_cast<uint32_t>(ci);
          auto [it, inserted] = pair_sim.try_emplace(key, e.similarity);
          if (!inserted && e.similarity > it->second) {
            it->second = e.similarity;
          }
        }
      }
    }

    std::vector<PairCandidate> heap;
    heap.reserve(pair_sim.size());
    for (const auto& [key, sim] : pair_sim) {
      heap.push_back(PairCandidate{sim, static_cast<int>(key >> 32),
                                   static_cast<int>(key & 0xffffffffu)});
    }
    // Highest similarity first; deterministic tie-break on cluster ids.
    std::sort(heap.begin(), heap.end(),
              [](const PairCandidate& a, const PairCandidate& b) {
                if (a.similarity != b.similarity) {
                  return a.similarity > b.similarity;
                }
                if (a.c1 != b.c1) return a.c1 < b.c1;
                return a.c2 < b.c2;
              });

    // Lines 9-19.
    for (const PairCandidate& cand : heap) {
      Cluster& c1 = clusters[static_cast<size_t>(cand.c1)];
      Cluster& c2 = clusters[static_cast<size_t>(cand.c2)];
      if (!c1.round_merged && !c2.round_merged) {
        if (!SourcesDisjoint(c1.sources, c2.sources)) continue;  // invalid GA
        // Merge c1 and c2 into a new cluster.
        Cluster merged;
        merged.attrs = c1.attrs;
        merged.attrs.insert(merged.attrs.end(), c2.attrs.begin(),
                            c2.attrs.end());
        merged.sources.resize(c1.sources.size() + c2.sources.size());
        std::merge(c1.sources.begin(), c1.sources.end(), c2.sources.begin(),
                   c2.sources.end(), merged.sources.begin());
        merged.quality =
            std::max({c1.quality, c2.quality,
                      static_cast<double>(cand.similarity)});
        // A single-attribute user GA had quality 1.0 by convention; once it
        // actually merges, the real max-pairwise value takes over.
        if (c1.keep && c1.attrs.size() == 1 && !c2.keep) {
          merged.quality = std::max(c2.quality,
                                    static_cast<double>(cand.similarity));
        } else if (c2.keep && c2.attrs.size() == 1 && !c1.keep) {
          merged.quality = std::max(c1.quality,
                                    static_cast<double>(cand.similarity));
        } else if (c1.keep && c1.attrs.size() == 1 && c2.keep &&
                   c2.attrs.size() == 1) {
          merged.quality = cand.similarity;
        }
        merged.keep = c1.keep || c2.keep;
        merged.newly_created = true;
        int new_idx = static_cast<int>(clusters.size());
        for (int a : merged.attrs) cluster_of[static_cast<size_t>(a)] = new_idx;
        c1.absorbed = true;
        c1.round_merged = true;
        c2.absorbed = true;
        c2.round_merged = true;
        clusters.push_back(std::move(merged));
        // Note: clusters may have reallocated; c1/c2 references are dead now.
      } else if (c1.round_merged != c2.round_merged) {
        // Exactly one was already merged this round: keep the other for the
        // next round (lines 15-19).
        Cluster& survivor = c1.round_merged ? c2 : c1;
        survivor.round_mergecand = true;
        done = false;
      } else {
        // Both already merged this round. The two *new* clusters may still
        // be mergeable at >= θ (max-linkage inherits this pair's edge), so
        // another round is needed — the paper's prose termination condition
        // is "when it cannot find any more pairs of clusters to merge".
        done = false;
      }
    }

    // Lines 20-22: eliminate clusters that found no partner this round.
    // Merged multi-attribute clusters are retired into the output;
    // singletons are discarded. keep clusters always survive.
    for (size_t ci = 0; ci < clusters.size(); ++ci) {
      Cluster& c = clusters[ci];
      if (!c.Active()) continue;
      if (c.newly_created || c.round_mergecand || c.keep) continue;
      if (c.attrs.size() >= 2) {
        c.retired = true;
      } else {
        c.discarded = true;
        for (int a : c.attrs) cluster_of[static_cast<size_t>(a)] = -1;
      }
    }
  }

  // --- Output assembly --------------------------------------------------
  for (const Cluster& c : clusters) {
    if (!c.Live()) continue;
    if (!c.keep && static_cast<int>(c.attrs.size()) < options.beta) continue;
    if (!c.keep && c.attrs.size() < 2) continue;  // never emit bare singletons
    std::vector<AttributeId> ids;
    ids.reserve(c.attrs.size());
    for (int dense : c.attrs) ids.push_back(graph_.AttrId(dense));
    result.schema.Add(GlobalAttribute(std::move(ids)));
    result.ga_qualities.push_back(c.quality);
    result.ga_from_constraint.push_back(c.keep);
  }

  // Line 24: M must be valid on the source constraints C.
  if (!result.schema.IsValidOn(source_constraints)) {
    MatchResult failed;
    failed.valid = false;
    failed.matching_quality = 0.0;
    failed.rounds = result.rounds;
    return failed;
  }

  result.valid = true;
  if (!result.ga_qualities.empty()) {
    double sum = 0.0;
    for (double q : result.ga_qualities) sum += q;
    result.matching_quality = sum / static_cast<double>(
                                        result.ga_qualities.size());
  } else {
    result.matching_quality = 0.0;
  }
  return result;
}

}  // namespace ube
