#ifndef UBE_TESTKIT_GOLDEN_H_
#define UBE_TESTKIT_GOLDEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "optimize/problem.h"
#include "testkit/generators.h"
#include "util/result.h"

namespace ube::testkit {

/// A pinned small-instance optimum: everything needed to regenerate one
/// canonical universe (generator options + seed), the problem posed on it,
/// and the exhaustive optimum recorded when the file was written.
///
/// The golden file deliberately pins GenerateUniverse's behavior: a change
/// to the generator's draw sequence shows up as a golden mismatch, which is
/// the alarm bell — every seeded property failure everywhere else would
/// stop being replayable across that change too (see TESTING.md).
struct GoldenSmallUniverse {
  std::string description;
  uint64_t universe_seed = 0;
  UniverseGenOptions universe;
  ProblemSpec spec;  // max_sources / theta / beta only
  std::vector<SourceId> optimal_sources;
  double optimal_quality = 0.0;
};

/// Loads a golden case from a JSON file (the subset of JSON the golden
/// files use: objects, arrays, numbers, strings, bools). Unknown keys are
/// an error so stale files fail loudly instead of silently defaulting.
Result<GoldenSmallUniverse> LoadGoldenSmallUniverse(const std::string& path);

}  // namespace ube::testkit

#endif  // UBE_TESTKIT_GOLDEN_H_
