#ifndef UBE_TESTKIT_PROPERTY_H_
#define UBE_TESTKIT_PROPERTY_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/rng.h"

namespace ube::testkit {

/// Environment variable holding the master seed for every property suite.
/// Unset, the suites run from kDefaultPropertySeed; set, they rerun the
/// exact same cases a failure banner named.
inline constexpr const char* kSeedEnvVar = "UBE_PROPERTY_SEED";

/// Environment variable overriding the per-property case count (CI sets a
/// small value to bound sanitizer-build time; unset keeps each property's
/// own default, which is what the acceptance bar of >= 50 universes uses).
inline constexpr const char* kItersEnvVar = "UBE_PROPERTY_ITERS";

/// Master seed used when UBE_PROPERTY_SEED is unset.
inline constexpr uint64_t kDefaultPropertySeed = 20260806;

/// Master seed for this process: UBE_PROPERTY_SEED if set (decimal or 0x
/// hex), kDefaultPropertySeed otherwise.
uint64_t PropertySeed();

/// Case count for one property: UBE_PROPERTY_ITERS if set (clamped to
/// >= 1), `default_cases` otherwise.
int PropertyCases(int default_cases);

/// Drives one property: hands out a deterministic, independent Rng per case
/// and a replay banner that names the seed to rerun from.
///
///   PropertyRunner runner("solver-vs-exhaustive", 50);
///   for (int c = 0; c < runner.num_cases(); ++c) {
///     SCOPED_TRACE(runner.Replay(c));
///     Rng rng = runner.CaseRng(c);
///     ... generate instance from rng, assert the property ...
///   }
///
/// Every gtest failure inside the loop then prints a line like
///   property 'solver-vs-exhaustive' case 17 of 50; rerun with
///   UBE_PROPERTY_SEED=20260806
/// and rerunning with that environment variable reproduces the case
/// bit-for-bit (case streams are forked from the master seed, so a given
/// seed always yields the same case sequence).
class PropertyRunner {
 public:
  /// `name` labels replay banners; `default_cases` is used unless
  /// UBE_PROPERTY_ITERS overrides it.
  PropertyRunner(std::string_view name, int default_cases);

  int num_cases() const { return num_cases_; }
  uint64_t master_seed() const { return master_seed_; }

  /// Independent deterministic stream for case `case_index`.
  Rng CaseRng(int case_index) const;

  /// Human-readable replay instructions for SCOPED_TRACE.
  std::string Replay(int case_index) const;

 private:
  std::string name_;
  uint64_t master_seed_;
  int num_cases_;
};

}  // namespace ube::testkit

#endif  // UBE_TESTKIT_PROPERTY_H_
