#include "testkit/property.h"

#include <cstdlib>
#include <string>

namespace ube::testkit {

namespace {

/// Parses a decimal or 0x-prefixed unsigned integer; returns `fallback` on
/// absent/empty/garbage input rather than failing — a typo in an env var
/// should not turn the suite into a crash loop.
uint64_t EnvUint64(const char* name, uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  unsigned long long value = std::strtoull(raw, &end, 0);
  if (end == raw || (end != nullptr && *end != '\0')) return fallback;
  return static_cast<uint64_t>(value);
}

}  // namespace

uint64_t PropertySeed() {
  return EnvUint64(kSeedEnvVar, kDefaultPropertySeed);
}

int PropertyCases(int default_cases) {
  uint64_t value =
      EnvUint64(kItersEnvVar, static_cast<uint64_t>(default_cases));
  if (value < 1) return 1;
  if (value > 1'000'000) return 1'000'000;
  return static_cast<int>(value);
}

PropertyRunner::PropertyRunner(std::string_view name, int default_cases)
    : name_(name),
      master_seed_(PropertySeed()),
      num_cases_(PropertyCases(default_cases)) {}

Rng PropertyRunner::CaseRng(int case_index) const {
  // Fork per case so case k is identical no matter how many cases run
  // before it (UBE_PROPERTY_ITERS does not shift the streams).
  Rng master(master_seed_);
  return master.Fork(static_cast<uint64_t>(case_index) + 1);
}

std::string PropertyRunner::Replay(int case_index) const {
  return "property '" + name_ + "' case " + std::to_string(case_index) +
         " of " + std::to_string(num_cases_) + "; rerun with " + kSeedEnvVar +
         "=" + std::to_string(master_seed_);
}

}  // namespace ube::testkit
