#include "testkit/oracles.h"

#include <algorithm>

namespace ube::testkit {

SolverOptions PropertySolverOptions(uint64_t seed) {
  SolverOptions options;
  options.seed = seed;
  options.max_iterations = 80;
  options.stall_iterations = 25;
  options.restarts = 3;
  options.swarm_size = 10;
  options.random_samples = 120;
  return options;
}

std::vector<SourceId> RequiredSources(const ProblemSpec& spec) {
  std::vector<SourceId> required = spec.source_constraints;
  for (const GlobalAttribute& g : spec.ga_constraints) {
    for (SourceId s : g.Sources()) required.push_back(s);
  }
  std::sort(required.begin(), required.end());
  required.erase(std::unique(required.begin(), required.end()),
                 required.end());
  return required;
}

::testing::AssertionResult SolutionIsFeasible(const Solution& solution,
                                              const Universe& universe,
                                              const ProblemSpec& spec) {
  const std::vector<SourceId>& sources = solution.sources;
  if (sources.empty()) {
    return ::testing::AssertionFailure() << "solution selects no sources";
  }
  if (static_cast<int>(sources.size()) > spec.max_sources) {
    return ::testing::AssertionFailure()
           << "solution selects " << sources.size() << " sources, m = "
           << spec.max_sources;
  }
  if (!std::is_sorted(sources.begin(), sources.end())) {
    return ::testing::AssertionFailure() << "solution sources not sorted";
  }
  if (std::adjacent_find(sources.begin(), sources.end()) != sources.end()) {
    return ::testing::AssertionFailure()
           << "solution sources contain a duplicate";
  }
  for (SourceId s : sources) {
    if (s < 0 || s >= universe.num_sources()) {
      return ::testing::AssertionFailure()
             << "source id " << s << " out of range (universe has "
             << universe.num_sources() << ")";
    }
  }
  for (SourceId required : RequiredSources(spec)) {
    if (!std::binary_search(sources.begin(), sources.end(), required)) {
      return ::testing::AssertionFailure()
             << "required source " << required << " missing from solution";
    }
  }
  for (SourceId banned : spec.banned_sources) {
    if (std::binary_search(sources.begin(), sources.end(), banned)) {
      return ::testing::AssertionFailure()
             << "banned source " << banned << " selected";
    }
  }
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult SolutionsBitIdentical(const Solution& a,
                                                 const Solution& b) {
  if (a.sources != b.sources) {
    return ::testing::AssertionFailure() << "sources differ";
  }
  if (a.quality != b.quality) {
    return ::testing::AssertionFailure()
           << "quality differs: " << a.quality << " vs " << b.quality;
  }
  if (a.stats.iterations != b.stats.iterations) {
    return ::testing::AssertionFailure()
           << "iterations differ: " << a.stats.iterations << " vs "
           << b.stats.iterations;
  }
  if (a.stats.evaluations != b.stats.evaluations) {
    return ::testing::AssertionFailure()
           << "evaluations differ: " << a.stats.evaluations << " vs "
           << b.stats.evaluations;
  }
  if (a.stats.cache_hits != b.stats.cache_hits) {
    return ::testing::AssertionFailure()
           << "cache_hits differ: " << a.stats.cache_hits << " vs "
           << b.stats.cache_hits;
  }
  if (a.stats.trace.size() != b.stats.trace.size()) {
    return ::testing::AssertionFailure()
           << "trace lengths differ: " << a.stats.trace.size() << " vs "
           << b.stats.trace.size();
  }
  for (size_t i = 0; i < a.stats.trace.size(); ++i) {
    if (a.stats.trace[i].evaluations != b.stats.trace[i].evaluations ||
        a.stats.trace[i].best_quality != b.stats.trace[i].best_quality) {
      return ::testing::AssertionFailure()
             << "trace point " << i << " differs: (" <<
             a.stats.trace[i].evaluations << ", "
             << a.stats.trace[i].best_quality << ") vs ("
             << b.stats.trace[i].evaluations << ", "
             << b.stats.trace[i].best_quality << ")";
    }
  }
  return ::testing::AssertionSuccess();
}

}  // namespace ube::testkit
