#include "testkit/golden.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <utility>
#include <variant>

namespace ube::testkit {

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON reader — just the subset the golden files use. No external
// dependency is available in the container, and the golden schema is tiny,
// so a ~100-line recursive-descent parser beats gating the suite on one.
// ---------------------------------------------------------------------------

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      data = nullptr;
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    Result<JsonValue> value = ParseValue();
    if (!value.ok()) return value;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == 't' || c == 'f') return ParseBool();
    if (c == 'n') return ParseNull();
    return ParseNumber();
  }

  Result<JsonValue> ParseObject() {
    ++pos_;  // '{'
    JsonObject object;
    if (Consume('}')) return JsonValue{std::move(object)};
    while (true) {
      SkipWhitespace();
      Result<JsonValue> key = ParseString();
      if (!key.ok()) return key;
      if (!Consume(':')) return Error("expected ':' after object key");
      Result<JsonValue> value = ParseValue();
      if (!value.ok()) return value;
      object[std::get<std::string>(key->data)] = std::move(*value);
      if (Consume(',')) continue;
      if (Consume('}')) return JsonValue{std::move(object)};
      return Error("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray() {
    ++pos_;  // '['
    JsonArray array;
    if (Consume(']')) return JsonValue{std::move(array)};
    while (true) {
      Result<JsonValue> value = ParseValue();
      if (!value.ok()) return value;
      array.push_back(std::move(*value));
      if (Consume(',')) continue;
      if (Consume(']')) return JsonValue{std::move(array)};
      return Error("expected ',' or ']' in array");
    }
  }

  Result<JsonValue> ParseString() {
    SkipWhitespace();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Error("expected string");
    }
    ++pos_;
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return Error("bad escape");
        char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          default: return Error("unsupported escape sequence");
        }
      } else {
        out.push_back(c);
      }
    }
    if (pos_ >= text_.size()) return Error("unterminated string");
    ++pos_;  // closing quote
    return JsonValue{std::move(out)};
  }

  Result<JsonValue> ParseBool() {
    if (text_.substr(pos_, 4) == "true") {
      pos_ += 4;
      return JsonValue{true};
    }
    if (text_.substr(pos_, 5) == "false") {
      pos_ += 5;
      return JsonValue{false};
    }
    return Error("expected boolean");
  }

  Result<JsonValue> ParseNull() {
    if (text_.substr(pos_, 4) == "null") {
      pos_ += 4;
      return JsonValue{nullptr};
    }
    return Error("expected null");
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected number");
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Error("malformed number");
    return JsonValue{value};
  }

  std::string_view text_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Mapping JSON onto GoldenSmallUniverse. Every key must be known; numeric
// fields are fetched through one typed accessor.
// ---------------------------------------------------------------------------

Status UnknownKeys(const JsonObject& object,
                   std::initializer_list<const char*> known,
                   const std::string& where) {
  for (const auto& [key, value] : object) {
    bool found = false;
    for (const char* k : known) found = found || key == k;
    if (!found) {
      return Status::InvalidArgument("unknown key '" + key + "' in " + where);
    }
  }
  return Status::Ok();
}

Result<double> Number(const JsonObject& object, const std::string& key) {
  auto it = object.find(key);
  if (it == object.end()) {
    return Status::InvalidArgument("missing key '" + key + "'");
  }
  const double* value = std::get_if<double>(&it->second.data);
  if (value == nullptr) {
    return Status::InvalidArgument("key '" + key + "' is not a number");
  }
  return *value;
}

}  // namespace

Result<GoldenSmallUniverse> LoadGoldenSmallUniverse(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return Status::NotFound("cannot open golden file: " + path);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  const std::string text = buffer.str();

  Result<JsonValue> root = JsonParser(text).Parse();
  if (!root.ok()) return root.status();
  const JsonObject* top = std::get_if<JsonObject>(&root->data);
  if (top == nullptr) {
    return Status::InvalidArgument("golden file root must be an object");
  }
  Status keys = UnknownKeys(
      *top, {"description", "universe_seed", "generator", "spec", "optimum"},
      "top level");
  if (!keys.ok()) return keys;

  GoldenSmallUniverse golden;
  if (auto it = top->find("description"); it != top->end()) {
    if (const std::string* s = std::get_if<std::string>(&it->second.data)) {
      golden.description = *s;
    }
  }
  Result<double> seed = Number(*top, "universe_seed");
  if (!seed.ok()) return seed.status();
  golden.universe_seed = static_cast<uint64_t>(*seed);

  auto generator_it = top->find("generator");
  if (generator_it == top->end()) {
    return Status::InvalidArgument("missing 'generator' object");
  }
  const JsonObject* gen = std::get_if<JsonObject>(&generator_it->second.data);
  if (gen == nullptr) {
    return Status::InvalidArgument("'generator' must be an object");
  }
  keys = UnknownKeys(*gen,
                     {"min_sources", "max_sources", "min_attributes",
                      "max_attributes", "vocabulary_concepts",
                      "noise_attribute_probability", "variant_probability",
                      "min_cardinality", "max_cardinality",
                      "uncooperative_probability", "shared_fraction",
                      "shared_pool", "exact_signatures",
                      "characteristic_probability"},
                     "'generator'");
  if (!keys.ok()) return keys;
  struct IntField { const char* key; int* out; };
  struct DoubleField { const char* key; double* out; };
  struct Int64Field { const char* key; int64_t* out; };
  UniverseGenOptions& u = golden.universe;
  for (IntField f : {IntField{"min_sources", &u.min_sources},
                     IntField{"max_sources", &u.max_sources},
                     IntField{"min_attributes", &u.min_attributes},
                     IntField{"max_attributes", &u.max_attributes},
                     IntField{"vocabulary_concepts",
                              &u.vocabulary_concepts}}) {
    Result<double> value = Number(*gen, f.key);
    if (!value.ok()) return value.status();
    *f.out = static_cast<int>(*value);
  }
  for (DoubleField f :
       {DoubleField{"noise_attribute_probability",
                    &u.noise_attribute_probability},
        DoubleField{"variant_probability", &u.variant_probability},
        DoubleField{"uncooperative_probability",
                    &u.uncooperative_probability},
        DoubleField{"shared_fraction", &u.shared_fraction},
        DoubleField{"characteristic_probability",
                    &u.characteristic_probability}}) {
    Result<double> value = Number(*gen, f.key);
    if (!value.ok()) return value.status();
    *f.out = *value;
  }
  for (Int64Field f : {Int64Field{"min_cardinality", &u.min_cardinality},
                       Int64Field{"max_cardinality", &u.max_cardinality},
                       Int64Field{"shared_pool", &u.shared_pool}}) {
    Result<double> value = Number(*gen, f.key);
    if (!value.ok()) return value.status();
    *f.out = static_cast<int64_t>(*value);
  }
  if (auto it = gen->find("exact_signatures"); it != gen->end()) {
    const bool* flag = std::get_if<bool>(&it->second.data);
    if (flag == nullptr) {
      return Status::InvalidArgument("'exact_signatures' must be a bool");
    }
    u.exact_signatures = *flag;
  }

  auto spec_it = top->find("spec");
  if (spec_it == top->end()) {
    return Status::InvalidArgument("missing 'spec' object");
  }
  const JsonObject* spec = std::get_if<JsonObject>(&spec_it->second.data);
  if (spec == nullptr) {
    return Status::InvalidArgument("'spec' must be an object");
  }
  keys = UnknownKeys(*spec, {"max_sources", "theta", "beta"}, "'spec'");
  if (!keys.ok()) return keys;
  Result<double> m = Number(*spec, "max_sources");
  if (!m.ok()) return m.status();
  golden.spec.max_sources = static_cast<int>(*m);
  Result<double> theta = Number(*spec, "theta");
  if (!theta.ok()) return theta.status();
  golden.spec.theta = *theta;
  Result<double> beta = Number(*spec, "beta");
  if (!beta.ok()) return beta.status();
  golden.spec.beta = static_cast<int>(*beta);

  auto optimum_it = top->find("optimum");
  if (optimum_it == top->end()) {
    return Status::InvalidArgument("missing 'optimum' object");
  }
  const JsonObject* optimum =
      std::get_if<JsonObject>(&optimum_it->second.data);
  if (optimum == nullptr) {
    return Status::InvalidArgument("'optimum' must be an object");
  }
  keys = UnknownKeys(*optimum, {"sources", "quality"}, "'optimum'");
  if (!keys.ok()) return keys;
  auto sources_it = optimum->find("sources");
  if (sources_it == optimum->end()) {
    return Status::InvalidArgument("missing 'optimum.sources'");
  }
  const JsonArray* sources =
      std::get_if<JsonArray>(&sources_it->second.data);
  if (sources == nullptr) {
    return Status::InvalidArgument("'optimum.sources' must be an array");
  }
  for (const JsonValue& entry : *sources) {
    const double* id = std::get_if<double>(&entry.data);
    if (id == nullptr) {
      return Status::InvalidArgument("'optimum.sources' entries must be ids");
    }
    golden.optimal_sources.push_back(static_cast<SourceId>(*id));
  }
  Result<double> quality = Number(*optimum, "quality");
  if (!quality.ok()) return quality.status();
  golden.optimal_quality = *quality;

  return golden;
}

}  // namespace ube::testkit
