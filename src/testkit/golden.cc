#include "testkit/golden.h"

#include <fstream>
#include <sstream>
#include <utility>
#include <variant>

#include "util/json.h"

namespace ube::testkit {

namespace {

using JsonObject = json::Object;
using JsonArray = json::Array;
using JsonValue = json::Value;

// ---------------------------------------------------------------------------
// Mapping JSON (parsed by util/json) onto GoldenSmallUniverse. Every key
// must be known; numeric fields are fetched through one typed accessor.
// ---------------------------------------------------------------------------

Status UnknownKeys(const JsonObject& object,
                   std::initializer_list<const char*> known,
                   const std::string& where) {
  for (const auto& [key, value] : object) {
    bool found = false;
    for (const char* k : known) found = found || key == k;
    if (!found) {
      return Status::InvalidArgument("unknown key '" + key + "' in " + where);
    }
  }
  return Status::Ok();
}

Result<double> Number(const JsonObject& object, const std::string& key) {
  auto it = object.find(key);
  if (it == object.end()) {
    return Status::InvalidArgument("missing key '" + key + "'");
  }
  const double* value = std::get_if<double>(&it->second.data);
  if (value == nullptr) {
    return Status::InvalidArgument("key '" + key + "' is not a number");
  }
  return *value;
}

}  // namespace

Result<GoldenSmallUniverse> LoadGoldenSmallUniverse(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return Status::NotFound("cannot open golden file: " + path);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  const std::string text = buffer.str();

  Result<JsonValue> root = json::Parse(text);
  if (!root.ok()) return root.status();
  const JsonObject* top = std::get_if<JsonObject>(&root->data);
  if (top == nullptr) {
    return Status::InvalidArgument("golden file root must be an object");
  }
  Status keys = UnknownKeys(
      *top, {"description", "universe_seed", "generator", "spec", "optimum"},
      "top level");
  if (!keys.ok()) return keys;

  GoldenSmallUniverse golden;
  if (auto it = top->find("description"); it != top->end()) {
    if (const std::string* s = std::get_if<std::string>(&it->second.data)) {
      golden.description = *s;
    }
  }
  Result<double> seed = Number(*top, "universe_seed");
  if (!seed.ok()) return seed.status();
  golden.universe_seed = static_cast<uint64_t>(*seed);

  auto generator_it = top->find("generator");
  if (generator_it == top->end()) {
    return Status::InvalidArgument("missing 'generator' object");
  }
  const JsonObject* gen = std::get_if<JsonObject>(&generator_it->second.data);
  if (gen == nullptr) {
    return Status::InvalidArgument("'generator' must be an object");
  }
  keys = UnknownKeys(*gen,
                     {"min_sources", "max_sources", "min_attributes",
                      "max_attributes", "vocabulary_concepts",
                      "noise_attribute_probability", "variant_probability",
                      "min_cardinality", "max_cardinality",
                      "uncooperative_probability", "shared_fraction",
                      "shared_pool", "exact_signatures",
                      "characteristic_probability"},
                     "'generator'");
  if (!keys.ok()) return keys;
  struct IntField { const char* key; int* out; };
  struct DoubleField { const char* key; double* out; };
  struct Int64Field { const char* key; int64_t* out; };
  UniverseGenOptions& u = golden.universe;
  for (IntField f : {IntField{"min_sources", &u.min_sources},
                     IntField{"max_sources", &u.max_sources},
                     IntField{"min_attributes", &u.min_attributes},
                     IntField{"max_attributes", &u.max_attributes},
                     IntField{"vocabulary_concepts",
                              &u.vocabulary_concepts}}) {
    Result<double> value = Number(*gen, f.key);
    if (!value.ok()) return value.status();
    *f.out = static_cast<int>(*value);
  }
  for (DoubleField f :
       {DoubleField{"noise_attribute_probability",
                    &u.noise_attribute_probability},
        DoubleField{"variant_probability", &u.variant_probability},
        DoubleField{"uncooperative_probability",
                    &u.uncooperative_probability},
        DoubleField{"shared_fraction", &u.shared_fraction},
        DoubleField{"characteristic_probability",
                    &u.characteristic_probability}}) {
    Result<double> value = Number(*gen, f.key);
    if (!value.ok()) return value.status();
    *f.out = *value;
  }
  for (Int64Field f : {Int64Field{"min_cardinality", &u.min_cardinality},
                       Int64Field{"max_cardinality", &u.max_cardinality},
                       Int64Field{"shared_pool", &u.shared_pool}}) {
    Result<double> value = Number(*gen, f.key);
    if (!value.ok()) return value.status();
    *f.out = static_cast<int64_t>(*value);
  }
  if (auto it = gen->find("exact_signatures"); it != gen->end()) {
    const bool* flag = std::get_if<bool>(&it->second.data);
    if (flag == nullptr) {
      return Status::InvalidArgument("'exact_signatures' must be a bool");
    }
    u.exact_signatures = *flag;
  }

  auto spec_it = top->find("spec");
  if (spec_it == top->end()) {
    return Status::InvalidArgument("missing 'spec' object");
  }
  const JsonObject* spec = std::get_if<JsonObject>(&spec_it->second.data);
  if (spec == nullptr) {
    return Status::InvalidArgument("'spec' must be an object");
  }
  keys = UnknownKeys(*spec, {"max_sources", "theta", "beta"}, "'spec'");
  if (!keys.ok()) return keys;
  Result<double> m = Number(*spec, "max_sources");
  if (!m.ok()) return m.status();
  golden.spec.max_sources = static_cast<int>(*m);
  Result<double> theta = Number(*spec, "theta");
  if (!theta.ok()) return theta.status();
  golden.spec.theta = *theta;
  Result<double> beta = Number(*spec, "beta");
  if (!beta.ok()) return beta.status();
  golden.spec.beta = static_cast<int>(*beta);

  auto optimum_it = top->find("optimum");
  if (optimum_it == top->end()) {
    return Status::InvalidArgument("missing 'optimum' object");
  }
  const JsonObject* optimum =
      std::get_if<JsonObject>(&optimum_it->second.data);
  if (optimum == nullptr) {
    return Status::InvalidArgument("'optimum' must be an object");
  }
  keys = UnknownKeys(*optimum, {"sources", "quality"}, "'optimum'");
  if (!keys.ok()) return keys;
  auto sources_it = optimum->find("sources");
  if (sources_it == optimum->end()) {
    return Status::InvalidArgument("missing 'optimum.sources'");
  }
  const JsonArray* sources =
      std::get_if<JsonArray>(&sources_it->second.data);
  if (sources == nullptr) {
    return Status::InvalidArgument("'optimum.sources' must be an array");
  }
  for (const JsonValue& entry : *sources) {
    const double* id = std::get_if<double>(&entry.data);
    if (id == nullptr) {
      return Status::InvalidArgument("'optimum.sources' entries must be ids");
    }
    golden.optimal_sources.push_back(static_cast<SourceId>(*id));
  }
  Result<double> quality = Number(*optimum, "quality");
  if (!quality.ok()) return quality.status();
  golden.optimal_quality = *quality;

  return golden;
}

}  // namespace ube::testkit
