#include "testkit/generators.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "qef/qef.h"
#include "sketch/distinct_estimator.h"
#include "util/check.h"

namespace ube::testkit {

namespace {

// Shared concept vocabulary: attribute names across sources are variants of
// these, so the similarity graph has real cluster structure to find.
constexpr const char* kConceptNames[] = {
    "title",  "author", "publisher", "price", "isbn",    "year",
    "format", "language", "rating",  "pages", "edition", "binding"};
constexpr int kNumConcepts =
    static_cast<int>(sizeof(kConceptNames) / sizeof(kConceptNames[0]));

constexpr const char* kPrefixes[] = {"", "book_", "item_"};
constexpr const char* kSuffixes[] = {"", "s", "_name", "_id", "_info"};

std::string RandomNoiseName(Rng& rng) {
  int length = static_cast<int>(rng.UniformInt(4, 8));
  std::string name;
  name.reserve(static_cast<size_t>(length) + 1);
  name.push_back('z');  // keep noise disjoint-ish from the vocabulary
  for (int i = 0; i < length; ++i) {
    name.push_back(static_cast<char>('a' + rng.UniformInt(26)));
  }
  return name;
}

std::string ConceptVariant(Rng& rng, int concept_id, double variant_p) {
  std::string base = kConceptNames[concept_id];
  if (!rng.Bernoulli(variant_p)) return base;
  const char* prefix = kPrefixes[rng.UniformInt(
      sizeof(kPrefixes) / sizeof(kPrefixes[0]))];
  const char* suffix = kSuffixes[rng.UniformInt(
      sizeof(kSuffixes) / sizeof(kSuffixes[0]))];
  return std::string(prefix) + base + suffix;
}

}  // namespace

Universe GenerateUniverse(Rng& rng, const UniverseGenOptions& options) {
  UBE_CHECK(options.min_sources >= 1 &&
                options.min_sources <= options.max_sources,
            "GenerateUniverse: bad source-count range");
  UBE_CHECK(options.min_attributes >= 1 &&
                options.min_attributes <= options.max_attributes,
            "GenerateUniverse: bad attribute-count range");
  const int vocabulary =
      std::clamp(options.vocabulary_concepts, 1, kNumConcepts);
  const int num_sources = static_cast<int>(
      rng.UniformInt(options.min_sources, options.max_sources));

  Universe universe;
  for (int s = 0; s < num_sources; ++s) {
    // Schema: a random distinct concept subset, each attribute either a
    // variant of its concept's name or pure noise.
    const int max_attrs =
        std::max(options.min_attributes,
                 std::min(options.max_attributes, vocabulary));
    const int num_attrs = static_cast<int>(
        rng.UniformInt(options.min_attributes, max_attrs));
    std::vector<int> concepts(static_cast<size_t>(vocabulary));
    for (int c = 0; c < vocabulary; ++c) concepts[static_cast<size_t>(c)] = c;
    // Partial Fisher-Yates: the first sampled entries are distinct; any
    // surplus attributes (num_attrs > vocabulary) reuse random concepts.
    const int distinct = std::min(num_attrs, vocabulary);
    for (int i = 0; i < distinct; ++i) {
      int j = i + static_cast<int>(rng.UniformInt(
                      static_cast<uint64_t>(vocabulary - i)));
      std::swap(concepts[static_cast<size_t>(i)],
                concepts[static_cast<size_t>(j)]);
    }
    std::vector<std::string> names;
    names.reserve(static_cast<size_t>(num_attrs));
    for (int a = 0; a < num_attrs; ++a) {
      const int concept_id =
          a < distinct
              ? concepts[static_cast<size_t>(a)]
              : static_cast<int>(rng.UniformInt(
                    static_cast<uint64_t>(vocabulary)));
      if (rng.Bernoulli(options.noise_attribute_probability)) {
        names.push_back(RandomNoiseName(rng));
      } else {
        names.push_back(ConceptVariant(rng, concept_id,
                                       options.variant_probability));
      }
    }

    DataSource source("rnd" + std::to_string(s),
                      SourceSchema(std::move(names)));

    // Data: ids from the shared pool (overlap) or a private range.
    const int64_t cardinality = rng.UniformInt(options.min_cardinality,
                                               options.max_cardinality);
    source.set_cardinality(cardinality);
    if (!rng.Bernoulli(options.uncooperative_probability)) {
      std::unique_ptr<DistinctSignature> signature =
          MakeSignature(options.exact_signatures ? SignatureKind::kExact
                                                 : SignatureKind::kPcsa,
                        options.pcsa_bitmaps);
      for (int64_t i = 0; i < cardinality; ++i) {
        uint64_t id;
        if (rng.Bernoulli(options.shared_fraction)) {
          id = rng.UniformInt(static_cast<uint64_t>(options.shared_pool));
        } else {
          id = static_cast<uint64_t>(s + 1) * 10'000'000ull +
               static_cast<uint64_t>(i);
        }
        signature->Add(id);
      }
      source.set_signature(std::move(signature));
    }

    if (rng.Bernoulli(options.characteristic_probability)) {
      source.SetCharacteristic("mttf", rng.UniformDouble(1.0, 200.0));
    }
    universe.AddSource(std::move(source));
  }
  return universe;
}

ProblemSpec GenerateSpec(Rng& rng, const Universe& universe,
                         const SpecGenOptions& options) {
  const int n = universe.num_sources();
  UBE_CHECK(n >= 1, "GenerateSpec needs a non-empty universe");
  ProblemSpec spec;
  spec.max_sources = static_cast<int>(rng.UniformInt(
      std::min(options.min_m, n), std::min(options.max_m, n)));
  if (options.randomize_thresholds) {
    spec.theta = rng.UniformDouble(0.3, 0.9);
    spec.beta = rng.Bernoulli(0.25) ? 3 : 2;
  }

  auto contains = [](const std::vector<SourceId>& v, SourceId s) {
    return std::find(v.begin(), v.end(), s) != v.end();
  };

  // Source constraints: up to m - 1 of them so the solver keeps a choice.
  if (spec.max_sources >= 2 &&
      rng.Bernoulli(options.source_constraint_probability)) {
    int count = 1 + static_cast<int>(rng.UniformInt(
                        static_cast<uint64_t>(
                            std::min(2, spec.max_sources - 1))));
    for (int i = 0; i < count; ++i) {
      SourceId s = static_cast<SourceId>(rng.UniformInt(
          static_cast<uint64_t>(n)));
      if (!contains(spec.source_constraints, s)) {
        spec.source_constraints.push_back(s);
      }
    }
  }

  // GA constraint: two sources sharing an attribute name verbatim, if any
  // pair exists and forcing both sources still fits under m.
  if (rng.Bernoulli(options.ga_constraint_probability)) {
    for (SourceId s1 = 0; s1 < n; ++s1) {
      const SourceSchema& schema1 = universe.source(s1).schema();
      GlobalAttribute found;
      for (SourceId s2 = s1 + 1; s2 < n && found.empty(); ++s2) {
        const SourceSchema& schema2 = universe.source(s2).schema();
        for (int a1 = 0; a1 < schema1.num_attributes() && found.empty();
             ++a1) {
          int a2 = schema2.FindAttribute(schema1.attribute_name(a1));
          if (a2 >= 0) {
            found = GlobalAttribute({AttributeId{s1, a1},
                                     AttributeId{s2, a2}});
          }
        }
      }
      if (found.empty()) continue;
      std::vector<SourceId> required = spec.source_constraints;
      for (SourceId s : found.Sources()) {
        if (!contains(required, s)) required.push_back(s);
      }
      if (static_cast<int>(required.size()) <= spec.max_sources) {
        spec.ga_constraints.push_back(std::move(found));
      }
      break;
    }
  }

  // Bans: never a required source, and always leave at least one
  // selectable source beyond the requirements.
  std::vector<SourceId> required = spec.source_constraints;
  for (const GlobalAttribute& g : spec.ga_constraints) {
    for (SourceId s : g.Sources()) {
      if (!contains(required, s)) required.push_back(s);
    }
  }
  if (rng.Bernoulli(options.ban_probability)) {
    int budget = n - static_cast<int>(required.size()) - 1;
    int count = std::min(2, budget);
    for (int i = 0; i < count; ++i) {
      SourceId s = static_cast<SourceId>(rng.UniformInt(
          static_cast<uint64_t>(n)));
      if (!contains(required, s) && !contains(spec.banned_sources, s)) {
        spec.banned_sources.push_back(s);
      }
    }
  }
  return spec;
}

std::vector<double> GenerateWeights(Rng& rng, int count) {
  UBE_CHECK(count >= 1, "GenerateWeights needs count >= 1");
  std::vector<double> weights(static_cast<size_t>(count));
  double sum = 0.0;
  for (double& w : weights) {
    w = rng.UniformDouble(0.05, 1.0);  // bounded away from 0: every QEF
    sum += w;                          // keeps a say in the optimum
  }
  for (double& w : weights) w /= sum;
  return weights;
}

QualityModel GenerateModel(Rng& rng, bool include_matching) {
  const int count = include_matching ? 5 : 4;
  std::vector<double> weights = GenerateWeights(rng, count);
  QualityModel model;
  size_t i = 0;
  if (include_matching) {
    model.AddQef(std::make_unique<MatchingQualityQef>(), weights[i++]);
  }
  model.AddQef(std::make_unique<CardinalityQef>(), weights[i++]);
  model.AddQef(std::make_unique<CoverageQef>(), weights[i++]);
  model.AddQef(std::make_unique<RedundancyQef>(), weights[i++]);
  model.AddQef(std::make_unique<CharacteristicQef>(
                   "mttf", Aggregation::kWeightedSum),
               weights[i++]);
  return model;
}

std::vector<SourceId> GenerateCandidate(Rng& rng, const Universe& universe,
                                        const ProblemSpec& spec) {
  std::vector<SourceId> candidate = spec.source_constraints;
  for (const GlobalAttribute& g : spec.ga_constraints) {
    for (SourceId s : g.Sources()) candidate.push_back(s);
  }
  std::sort(candidate.begin(), candidate.end());
  candidate.erase(std::unique(candidate.begin(), candidate.end()),
                  candidate.end());

  std::vector<SourceId> banned = spec.banned_sources;
  std::sort(banned.begin(), banned.end());
  std::vector<SourceId> eligible;
  for (SourceId s = 0; s < universe.num_sources(); ++s) {
    if (!std::binary_search(banned.begin(), banned.end(), s) &&
        !std::binary_search(candidate.begin(), candidate.end(), s)) {
      eligible.push_back(s);
    }
  }
  const int lo = std::max<int>(1, static_cast<int>(candidate.size()));
  const int hi = std::min<int>(
      spec.max_sources,
      static_cast<int>(candidate.size() + eligible.size()));
  const int target = static_cast<int>(rng.UniformInt(lo, hi));
  while (static_cast<int>(candidate.size()) < target && !eligible.empty()) {
    size_t pick = rng.UniformInt(eligible.size());
    candidate.push_back(eligible[pick]);
    eligible.erase(eligible.begin() + static_cast<ptrdiff_t>(pick));
  }
  std::sort(candidate.begin(), candidate.end());
  return candidate;
}

SourceId AddDominatedCopy(Rng& rng, Universe& universe, SourceId original) {
  const DataSource& base = universe.source(original);
  const auto* exact = dynamic_cast<const ExactSignature*>(&base.signature());
  UBE_CHECK(exact != nullptr,
            "AddDominatedCopy requires an ExactSignature original");

  auto subset = std::make_unique<ExactSignature>();
  int64_t kept = 0;
  const double keep_p = rng.UniformDouble(0.2, 0.9);
  for (uint64_t id : exact->ids()) {
    if (rng.Bernoulli(keep_p)) {
      subset->Add(id);
      ++kept;
    }
  }
  // Dominated cardinality: proportional to the kept ids, never above the
  // original's (which may exceed its distinct count via duplicates).
  int64_t cardinality = std::min(base.cardinality(), std::max<int64_t>(
      kept, 1));

  DataSource copy(base.name() + "_dominated",
                  SourceSchema(base.schema().names()));
  copy.set_cardinality(cardinality);
  copy.set_signature(std::move(subset));
  for (const auto& [name, value] : base.characteristics()) {
    copy.SetCharacteristic(name, value);
  }
  return universe.AddSource(std::move(copy));
}

}  // namespace ube::testkit
