#ifndef UBE_TESTKIT_ORACLES_H_
#define UBE_TESTKIT_ORACLES_H_

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "optimize/problem.h"
#include "optimize/solver.h"
#include "source/universe.h"

namespace ube::testkit {

/// Solver budget for the property suites: small enough that 50 universes x
/// 6 solvers x 2 thread counts stay in the seconds range, large enough
/// that the heuristics actually converge on 6-9-source instances.
SolverOptions PropertySolverOptions(uint64_t seed);

/// Structural feasibility oracle: the solution's sources are sorted,
/// unique, in range, within [1, m], contain every source required by the
/// spec's C / GA constraints and avoid every banned source. Violations name
/// the offending source in the failure message.
::testing::AssertionResult SolutionIsFeasible(const Solution& solution,
                                              const Universe& universe,
                                              const ProblemSpec& spec);

/// Replay oracle: the two solutions are bit-identical in every observable
/// the solver contract promises to be thread-count independent — sources,
/// quality (exact, not approximate), iteration/evaluation/cache counters,
/// and the full incumbent trace.
::testing::AssertionResult SolutionsBitIdentical(const Solution& a,
                                                 const Solution& b);

/// C ∪ {sources referenced by the GA constraints}, sorted unique — the
/// sources every feasible solution must contain.
std::vector<SourceId> RequiredSources(const ProblemSpec& spec);

}  // namespace ube::testkit

#endif  // UBE_TESTKIT_ORACLES_H_
