#ifndef UBE_TESTKIT_GENERATORS_H_
#define UBE_TESTKIT_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "optimize/problem.h"
#include "qef/quality_model.h"
#include "source/universe.h"
#include "util/rng.h"

namespace ube::testkit {

/// Knobs for GenerateUniverse. Defaults produce the "small instance"
/// regime the metamorphic oracles need: few enough sources that exhaustive
/// enumeration is instant, enough schema/data structure that every QEF has
/// something to measure.
struct UniverseGenOptions {
  int min_sources = 6;
  int max_sources = 9;
  int min_attributes = 2;
  int max_attributes = 5;
  /// Size of the shared concept vocabulary attribute names draw from
  /// (capped at the built-in vocabulary size).
  int vocabulary_concepts = 8;
  /// Probability that an attribute is unmatchable noise instead of a
  /// concept-name variant.
  double noise_attribute_probability = 0.15;
  /// Probability that a concept attribute uses a perturbed variant of the
  /// concept name instead of the name verbatim.
  double variant_probability = 0.5;
  int64_t min_cardinality = 50;
  int64_t max_cardinality = 2000;
  /// Probability that a source refuses to provide a signature (Section 4's
  /// uncooperative sources).
  double uncooperative_probability = 0.0;
  /// Tuple ids are drawn from a shared pool (overlap between sources) with
  /// this probability, from a per-source private range otherwise.
  double shared_fraction = 0.6;
  int64_t shared_pool = 3000;
  /// ExactSignature (default; required by the dominance oracles) or PCSA.
  bool exact_signatures = true;
  int pcsa_bitmaps = 64;
  /// Probability that a source defines the "mttf" characteristic.
  double characteristic_probability = 1.0;
};

/// Generates a random universe from `rng`. Deterministic: the same rng
/// state and options always produce the same universe.
Universe GenerateUniverse(Rng& rng, const UniverseGenOptions& options = {});

/// Knobs for GenerateSpec.
struct SpecGenOptions {
  int min_m = 2;
  int max_m = 4;
  double source_constraint_probability = 0.3;
  double ban_probability = 0.3;
  double ga_constraint_probability = 0.25;
  /// Draw θ from [0.3, 0.9] and β from {2, 3}; otherwise keep defaults.
  bool randomize_thresholds = true;
};

/// Generates a random ProblemSpec that is guaranteed to pass
/// CandidateEvaluator::ValidateSpec against `universe` (constraints fit in
/// m, bans never contradict constraints, at least one source selectable).
ProblemSpec GenerateSpec(Rng& rng, const Universe& universe,
                         const SpecGenOptions& options = {});

/// A random point on the `count`-simplex: weights in [0, 1] summing to 1.
std::vector<double> GenerateWeights(Rng& rng, int count);

/// A random quality model: the paper's five QEF families (matching is
/// optional) under GenerateWeights weights. Sources must define the "mttf"
/// characteristic for the CharacteristicQef member to be meaningful, which
/// GenerateUniverse does by default.
QualityModel GenerateModel(Rng& rng, bool include_matching = true);

/// A random feasible candidate for `spec`: sorted unique, contains every
/// required source, avoids bans, size in [max(1, |required|), m].
std::vector<SourceId> GenerateCandidate(Rng& rng, const Universe& universe,
                                        const ProblemSpec& spec);

/// Adds a copy of `original` that it dominates: identical schema and
/// characteristics, tuple ids a strict-or-equal subset of the original's
/// (so |∪U| is unchanged), cardinality scaled down accordingly. Requires
/// the original to carry an ExactSignature. Returns the new source's id.
SourceId AddDominatedCopy(Rng& rng, Universe& universe, SourceId original);

}  // namespace ube::testkit

#endif  // UBE_TESTKIT_GENERATORS_H_
