# Empty dependencies file for test_qef.
# This may be replaced when dependencies are built.
