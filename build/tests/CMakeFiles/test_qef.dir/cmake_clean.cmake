file(REMOVE_RECURSE
  "CMakeFiles/test_qef.dir/test_qef.cc.o"
  "CMakeFiles/test_qef.dir/test_qef.cc.o.d"
  "test_qef"
  "test_qef.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qef.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
