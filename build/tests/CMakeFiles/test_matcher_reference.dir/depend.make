# Empty dependencies file for test_matcher_reference.
# This may be replaced when dependencies are built.
