file(REMOVE_RECURSE
  "CMakeFiles/test_matcher_reference.dir/test_matcher_reference.cc.o"
  "CMakeFiles/test_matcher_reference.dir/test_matcher_reference.cc.o.d"
  "test_matcher_reference"
  "test_matcher_reference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_matcher_reference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
