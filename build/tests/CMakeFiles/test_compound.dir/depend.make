# Empty dependencies file for test_compound.
# This may be replaced when dependencies are built.
