file(REMOVE_RECURSE
  "CMakeFiles/test_compound.dir/test_compound.cc.o"
  "CMakeFiles/test_compound.dir/test_compound.cc.o.d"
  "test_compound"
  "test_compound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
