# Empty compiler generated dependencies file for books_exploration.
# This may be replaced when dependencies are built.
