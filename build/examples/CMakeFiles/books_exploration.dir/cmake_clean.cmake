file(REMOVE_RECURSE
  "CMakeFiles/books_exploration.dir/books_exploration.cpp.o"
  "CMakeFiles/books_exploration.dir/books_exploration.cpp.o.d"
  "books_exploration"
  "books_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/books_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
