# Empty dependencies file for compound_elements.
# This may be replaced when dependencies are built.
