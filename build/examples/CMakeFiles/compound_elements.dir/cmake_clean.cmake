file(REMOVE_RECURSE
  "CMakeFiles/compound_elements.dir/compound_elements.cpp.o"
  "CMakeFiles/compound_elements.dir/compound_elements.cpp.o.d"
  "compound_elements"
  "compound_elements.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compound_elements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
