# Empty compiler generated dependencies file for theater_tickets.
# This may be replaced when dependencies are built.
