# Empty compiler generated dependencies file for pcsa_accuracy.
# This may be replaced when dependencies are built.
