file(REMOVE_RECURSE
  "../bench/pcsa_accuracy"
  "../bench/pcsa_accuracy.pdb"
  "CMakeFiles/pcsa_accuracy.dir/pcsa_accuracy.cc.o"
  "CMakeFiles/pcsa_accuracy.dir/pcsa_accuracy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcsa_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
