# Empty dependencies file for fig7_overall_quality.
# This may be replaced when dependencies are built.
