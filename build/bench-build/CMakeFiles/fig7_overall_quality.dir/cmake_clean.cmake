file(REMOVE_RECURSE
  "../bench/fig7_overall_quality"
  "../bench/fig7_overall_quality.pdb"
  "CMakeFiles/fig7_overall_quality.dir/fig7_overall_quality.cc.o"
  "CMakeFiles/fig7_overall_quality.dir/fig7_overall_quality.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_overall_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
