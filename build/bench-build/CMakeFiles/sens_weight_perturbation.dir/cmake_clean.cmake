file(REMOVE_RECURSE
  "../bench/sens_weight_perturbation"
  "../bench/sens_weight_perturbation.pdb"
  "CMakeFiles/sens_weight_perturbation.dir/sens_weight_perturbation.cc.o"
  "CMakeFiles/sens_weight_perturbation.dir/sens_weight_perturbation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sens_weight_perturbation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
