# Empty dependencies file for sens_weight_perturbation.
# This may be replaced when dependencies are built.
