# Empty dependencies file for micro_ube.
# This may be replaced when dependencies are built.
