file(REMOVE_RECURSE
  "../bench/micro_ube"
  "../bench/micro_ube.pdb"
  "CMakeFiles/micro_ube.dir/micro_ube.cc.o"
  "CMakeFiles/micro_ube.dir/micro_ube.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_ube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
