file(REMOVE_RECURSE
  "../bench/ablation_solvers"
  "../bench/ablation_solvers.pdb"
  "CMakeFiles/ablation_solvers.dir/ablation_solvers.cc.o"
  "CMakeFiles/ablation_solvers.dir/ablation_solvers.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
