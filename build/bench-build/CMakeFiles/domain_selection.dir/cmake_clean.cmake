file(REMOVE_RECURSE
  "../bench/domain_selection"
  "../bench/domain_selection.pdb"
  "CMakeFiles/domain_selection.dir/domain_selection.cc.o"
  "CMakeFiles/domain_selection.dir/domain_selection.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domain_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
