# Empty compiler generated dependencies file for domain_selection.
# This may be replaced when dependencies are built.
