# Empty dependencies file for fig5_universe_size.
# This may be replaced when dependencies are built.
