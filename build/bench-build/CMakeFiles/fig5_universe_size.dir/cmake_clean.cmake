file(REMOVE_RECURSE
  "../bench/fig5_universe_size"
  "../bench/fig5_universe_size.pdb"
  "CMakeFiles/fig5_universe_size.dir/fig5_universe_size.cc.o"
  "CMakeFiles/fig5_universe_size.dir/fig5_universe_size.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_universe_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
