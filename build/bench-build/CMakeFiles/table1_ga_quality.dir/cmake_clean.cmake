file(REMOVE_RECURSE
  "../bench/table1_ga_quality"
  "../bench/table1_ga_quality.pdb"
  "CMakeFiles/table1_ga_quality.dir/table1_ga_quality.cc.o"
  "CMakeFiles/table1_ga_quality.dir/table1_ga_quality.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_ga_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
