
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table1_ga_quality.cc" "bench-build/CMakeFiles/table1_ga_quality.dir/table1_ga_quality.cc.o" "gcc" "bench-build/CMakeFiles/table1_ga_quality.dir/table1_ga_quality.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ube_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ube_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/optimize/CMakeFiles/ube_optimize.dir/DependInfo.cmake"
  "/root/repo/build/src/qef/CMakeFiles/ube_qef.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/ube_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/source/CMakeFiles/ube_source.dir/DependInfo.cmake"
  "/root/repo/build/src/schema/CMakeFiles/ube_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/ube_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/ube_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ube_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
