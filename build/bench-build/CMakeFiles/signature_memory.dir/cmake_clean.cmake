file(REMOVE_RECURSE
  "../bench/signature_memory"
  "../bench/signature_memory.pdb"
  "CMakeFiles/signature_memory.dir/signature_memory.cc.o"
  "CMakeFiles/signature_memory.dir/signature_memory.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/signature_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
