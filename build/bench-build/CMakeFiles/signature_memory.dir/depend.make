# Empty dependencies file for signature_memory.
# This may be replaced when dependencies are built.
