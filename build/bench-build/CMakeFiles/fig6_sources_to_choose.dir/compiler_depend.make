# Empty compiler generated dependencies file for fig6_sources_to_choose.
# This may be replaced when dependencies are built.
