file(REMOVE_RECURSE
  "../bench/fig6_sources_to_choose"
  "../bench/fig6_sources_to_choose.pdb"
  "CMakeFiles/fig6_sources_to_choose.dir/fig6_sources_to_choose.cc.o"
  "CMakeFiles/fig6_sources_to_choose.dir/fig6_sources_to_choose.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_sources_to_choose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
