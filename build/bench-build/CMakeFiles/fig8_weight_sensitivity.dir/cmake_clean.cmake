file(REMOVE_RECURSE
  "../bench/fig8_weight_sensitivity"
  "../bench/fig8_weight_sensitivity.pdb"
  "CMakeFiles/fig8_weight_sensitivity.dir/fig8_weight_sensitivity.cc.o"
  "CMakeFiles/fig8_weight_sensitivity.dir/fig8_weight_sensitivity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_weight_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
