file(REMOVE_RECURSE
  "libube_sketch.a"
)
