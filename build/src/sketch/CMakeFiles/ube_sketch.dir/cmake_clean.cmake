file(REMOVE_RECURSE
  "CMakeFiles/ube_sketch.dir/distinct_estimator.cc.o"
  "CMakeFiles/ube_sketch.dir/distinct_estimator.cc.o.d"
  "CMakeFiles/ube_sketch.dir/pcsa.cc.o"
  "CMakeFiles/ube_sketch.dir/pcsa.cc.o.d"
  "libube_sketch.a"
  "libube_sketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ube_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
