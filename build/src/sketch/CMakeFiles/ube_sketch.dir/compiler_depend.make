# Empty compiler generated dependencies file for ube_sketch.
# This may be replaced when dependencies are built.
