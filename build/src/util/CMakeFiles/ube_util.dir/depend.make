# Empty dependencies file for ube_util.
# This may be replaced when dependencies are built.
