file(REMOVE_RECURSE
  "libube_util.a"
)
