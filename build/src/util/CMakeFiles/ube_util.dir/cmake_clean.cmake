file(REMOVE_RECURSE
  "CMakeFiles/ube_util.dir/check.cc.o"
  "CMakeFiles/ube_util.dir/check.cc.o.d"
  "CMakeFiles/ube_util.dir/distributions.cc.o"
  "CMakeFiles/ube_util.dir/distributions.cc.o.d"
  "CMakeFiles/ube_util.dir/rng.cc.o"
  "CMakeFiles/ube_util.dir/rng.cc.o.d"
  "CMakeFiles/ube_util.dir/status.cc.o"
  "CMakeFiles/ube_util.dir/status.cc.o.d"
  "CMakeFiles/ube_util.dir/strings.cc.o"
  "CMakeFiles/ube_util.dir/strings.cc.o.d"
  "libube_util.a"
  "libube_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ube_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
