file(REMOVE_RECURSE
  "libube_schema.a"
)
