# Empty compiler generated dependencies file for ube_schema.
# This may be replaced when dependencies are built.
