file(REMOVE_RECURSE
  "CMakeFiles/ube_schema.dir/mediated_schema.cc.o"
  "CMakeFiles/ube_schema.dir/mediated_schema.cc.o.d"
  "CMakeFiles/ube_schema.dir/schema.cc.o"
  "CMakeFiles/ube_schema.dir/schema.cc.o.d"
  "libube_schema.a"
  "libube_schema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ube_schema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
