file(REMOVE_RECURSE
  "libube_qef.a"
)
