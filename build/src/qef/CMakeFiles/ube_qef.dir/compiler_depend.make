# Empty compiler generated dependencies file for ube_qef.
# This may be replaced when dependencies are built.
