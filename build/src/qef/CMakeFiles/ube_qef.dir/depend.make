# Empty dependencies file for ube_qef.
# This may be replaced when dependencies are built.
