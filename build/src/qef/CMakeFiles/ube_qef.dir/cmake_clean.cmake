file(REMOVE_RECURSE
  "CMakeFiles/ube_qef.dir/qef.cc.o"
  "CMakeFiles/ube_qef.dir/qef.cc.o.d"
  "CMakeFiles/ube_qef.dir/quality_model.cc.o"
  "CMakeFiles/ube_qef.dir/quality_model.cc.o.d"
  "libube_qef.a"
  "libube_qef.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ube_qef.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
