file(REMOVE_RECURSE
  "CMakeFiles/ube_source.dir/compound.cc.o"
  "CMakeFiles/ube_source.dir/compound.cc.o.d"
  "CMakeFiles/ube_source.dir/universe.cc.o"
  "CMakeFiles/ube_source.dir/universe.cc.o.d"
  "libube_source.a"
  "libube_source.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ube_source.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
