# Empty dependencies file for ube_source.
# This may be replaced when dependencies are built.
