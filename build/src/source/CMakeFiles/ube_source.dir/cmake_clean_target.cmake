file(REMOVE_RECURSE
  "libube_source.a"
)
