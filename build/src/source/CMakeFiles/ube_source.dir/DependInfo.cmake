
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/source/compound.cc" "src/source/CMakeFiles/ube_source.dir/compound.cc.o" "gcc" "src/source/CMakeFiles/ube_source.dir/compound.cc.o.d"
  "/root/repo/src/source/universe.cc" "src/source/CMakeFiles/ube_source.dir/universe.cc.o" "gcc" "src/source/CMakeFiles/ube_source.dir/universe.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/schema/CMakeFiles/ube_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/ube_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ube_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
