# Empty dependencies file for ube_catalog.
# This may be replaced when dependencies are built.
