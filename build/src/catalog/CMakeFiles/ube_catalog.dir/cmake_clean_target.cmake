file(REMOVE_RECURSE
  "libube_catalog.a"
)
