file(REMOVE_RECURSE
  "CMakeFiles/ube_catalog.dir/catalog.cc.o"
  "CMakeFiles/ube_catalog.dir/catalog.cc.o.d"
  "libube_catalog.a"
  "libube_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ube_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
