# Empty compiler generated dependencies file for ube_core.
# This may be replaced when dependencies are built.
