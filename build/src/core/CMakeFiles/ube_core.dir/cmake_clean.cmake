file(REMOVE_RECURSE
  "CMakeFiles/ube_core.dir/engine.cc.o"
  "CMakeFiles/ube_core.dir/engine.cc.o.d"
  "CMakeFiles/ube_core.dir/ga_evaluation.cc.o"
  "CMakeFiles/ube_core.dir/ga_evaluation.cc.o.d"
  "CMakeFiles/ube_core.dir/report.cc.o"
  "CMakeFiles/ube_core.dir/report.cc.o.d"
  "CMakeFiles/ube_core.dir/session.cc.o"
  "CMakeFiles/ube_core.dir/session.cc.o.d"
  "libube_core.a"
  "libube_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ube_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
