file(REMOVE_RECURSE
  "libube_core.a"
)
