
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/books_repository.cc" "src/workload/CMakeFiles/ube_workload.dir/books_repository.cc.o" "gcc" "src/workload/CMakeFiles/ube_workload.dir/books_repository.cc.o.d"
  "/root/repo/src/workload/domains.cc" "src/workload/CMakeFiles/ube_workload.dir/domains.cc.o" "gcc" "src/workload/CMakeFiles/ube_workload.dir/domains.cc.o.d"
  "/root/repo/src/workload/generator.cc" "src/workload/CMakeFiles/ube_workload.dir/generator.cc.o" "gcc" "src/workload/CMakeFiles/ube_workload.dir/generator.cc.o.d"
  "/root/repo/src/workload/schema_repository.cc" "src/workload/CMakeFiles/ube_workload.dir/schema_repository.cc.o" "gcc" "src/workload/CMakeFiles/ube_workload.dir/schema_repository.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/source/CMakeFiles/ube_source.dir/DependInfo.cmake"
  "/root/repo/build/src/schema/CMakeFiles/ube_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/ube_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ube_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
