# Empty dependencies file for ube_workload.
# This may be replaced when dependencies are built.
