file(REMOVE_RECURSE
  "CMakeFiles/ube_workload.dir/books_repository.cc.o"
  "CMakeFiles/ube_workload.dir/books_repository.cc.o.d"
  "CMakeFiles/ube_workload.dir/domains.cc.o"
  "CMakeFiles/ube_workload.dir/domains.cc.o.d"
  "CMakeFiles/ube_workload.dir/generator.cc.o"
  "CMakeFiles/ube_workload.dir/generator.cc.o.d"
  "CMakeFiles/ube_workload.dir/schema_repository.cc.o"
  "CMakeFiles/ube_workload.dir/schema_repository.cc.o.d"
  "libube_workload.a"
  "libube_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ube_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
