file(REMOVE_RECURSE
  "libube_workload.a"
)
