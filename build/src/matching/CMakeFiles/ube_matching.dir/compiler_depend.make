# Empty compiler generated dependencies file for ube_matching.
# This may be replaced when dependencies are built.
