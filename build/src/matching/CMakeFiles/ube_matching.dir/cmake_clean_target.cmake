file(REMOVE_RECURSE
  "libube_matching.a"
)
