file(REMOVE_RECURSE
  "CMakeFiles/ube_matching.dir/cluster_matcher.cc.o"
  "CMakeFiles/ube_matching.dir/cluster_matcher.cc.o.d"
  "CMakeFiles/ube_matching.dir/similarity_graph.cc.o"
  "CMakeFiles/ube_matching.dir/similarity_graph.cc.o.d"
  "libube_matching.a"
  "libube_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ube_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
