file(REMOVE_RECURSE
  "libube_optimize.a"
)
