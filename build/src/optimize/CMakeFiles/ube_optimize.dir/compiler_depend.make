# Empty compiler generated dependencies file for ube_optimize.
# This may be replaced when dependencies are built.
