
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/optimize/annealing.cc" "src/optimize/CMakeFiles/ube_optimize.dir/annealing.cc.o" "gcc" "src/optimize/CMakeFiles/ube_optimize.dir/annealing.cc.o.d"
  "/root/repo/src/optimize/evaluator.cc" "src/optimize/CMakeFiles/ube_optimize.dir/evaluator.cc.o" "gcc" "src/optimize/CMakeFiles/ube_optimize.dir/evaluator.cc.o.d"
  "/root/repo/src/optimize/exhaustive.cc" "src/optimize/CMakeFiles/ube_optimize.dir/exhaustive.cc.o" "gcc" "src/optimize/CMakeFiles/ube_optimize.dir/exhaustive.cc.o.d"
  "/root/repo/src/optimize/greedy.cc" "src/optimize/CMakeFiles/ube_optimize.dir/greedy.cc.o" "gcc" "src/optimize/CMakeFiles/ube_optimize.dir/greedy.cc.o.d"
  "/root/repo/src/optimize/local_search.cc" "src/optimize/CMakeFiles/ube_optimize.dir/local_search.cc.o" "gcc" "src/optimize/CMakeFiles/ube_optimize.dir/local_search.cc.o.d"
  "/root/repo/src/optimize/pso.cc" "src/optimize/CMakeFiles/ube_optimize.dir/pso.cc.o" "gcc" "src/optimize/CMakeFiles/ube_optimize.dir/pso.cc.o.d"
  "/root/repo/src/optimize/search_state.cc" "src/optimize/CMakeFiles/ube_optimize.dir/search_state.cc.o" "gcc" "src/optimize/CMakeFiles/ube_optimize.dir/search_state.cc.o.d"
  "/root/repo/src/optimize/solver.cc" "src/optimize/CMakeFiles/ube_optimize.dir/solver.cc.o" "gcc" "src/optimize/CMakeFiles/ube_optimize.dir/solver.cc.o.d"
  "/root/repo/src/optimize/solver_internal.cc" "src/optimize/CMakeFiles/ube_optimize.dir/solver_internal.cc.o" "gcc" "src/optimize/CMakeFiles/ube_optimize.dir/solver_internal.cc.o.d"
  "/root/repo/src/optimize/tabu_search.cc" "src/optimize/CMakeFiles/ube_optimize.dir/tabu_search.cc.o" "gcc" "src/optimize/CMakeFiles/ube_optimize.dir/tabu_search.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/qef/CMakeFiles/ube_qef.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/ube_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/source/CMakeFiles/ube_source.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ube_util.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/ube_text.dir/DependInfo.cmake"
  "/root/repo/build/src/schema/CMakeFiles/ube_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/ube_sketch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
