file(REMOVE_RECURSE
  "CMakeFiles/ube_optimize.dir/annealing.cc.o"
  "CMakeFiles/ube_optimize.dir/annealing.cc.o.d"
  "CMakeFiles/ube_optimize.dir/evaluator.cc.o"
  "CMakeFiles/ube_optimize.dir/evaluator.cc.o.d"
  "CMakeFiles/ube_optimize.dir/exhaustive.cc.o"
  "CMakeFiles/ube_optimize.dir/exhaustive.cc.o.d"
  "CMakeFiles/ube_optimize.dir/greedy.cc.o"
  "CMakeFiles/ube_optimize.dir/greedy.cc.o.d"
  "CMakeFiles/ube_optimize.dir/local_search.cc.o"
  "CMakeFiles/ube_optimize.dir/local_search.cc.o.d"
  "CMakeFiles/ube_optimize.dir/pso.cc.o"
  "CMakeFiles/ube_optimize.dir/pso.cc.o.d"
  "CMakeFiles/ube_optimize.dir/search_state.cc.o"
  "CMakeFiles/ube_optimize.dir/search_state.cc.o.d"
  "CMakeFiles/ube_optimize.dir/solver.cc.o"
  "CMakeFiles/ube_optimize.dir/solver.cc.o.d"
  "CMakeFiles/ube_optimize.dir/solver_internal.cc.o"
  "CMakeFiles/ube_optimize.dir/solver_internal.cc.o.d"
  "CMakeFiles/ube_optimize.dir/tabu_search.cc.o"
  "CMakeFiles/ube_optimize.dir/tabu_search.cc.o.d"
  "libube_optimize.a"
  "libube_optimize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ube_optimize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
