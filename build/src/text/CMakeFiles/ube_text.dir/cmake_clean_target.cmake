file(REMOVE_RECURSE
  "libube_text.a"
)
