file(REMOVE_RECURSE
  "CMakeFiles/ube_text.dir/ngram.cc.o"
  "CMakeFiles/ube_text.dir/ngram.cc.o.d"
  "CMakeFiles/ube_text.dir/similarity.cc.o"
  "CMakeFiles/ube_text.dir/similarity.cc.o.d"
  "libube_text.a"
  "libube_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ube_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
