# Empty dependencies file for ube_text.
# This may be replaced when dependencies are built.
