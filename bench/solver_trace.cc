// Convergence-telemetry exporter: runs one solver with the observability
// layer attached and writes (a) the chrome://tracing JSON of the run's
// spans, (b) a per-iteration CSV of the convergence telemetry ring, and
// (c) the human-readable solution + metrics report to stdout. This is the
// tool behind the convergence-curve table in EXPERIMENTS.md and the CI
// observability job's trace artifact.
//
//   solver_trace [--seed N] [--solver NAME] [--golden[=PATH]]
//                [--out trace.json] [--csv trace.csv] [--json[=PATH]]
//
// Default substrate is the paper-scale workload (choose 20 of 200); with
// --golden the pinned small universe from tests/data is used instead (the
// CI job runs that, so the artifact is bit-stable across machines).
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/engine.h"
#include "core/report.h"
#include "obs/obs.h"
#include "testkit/golden.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace ube;
using namespace ube::bench;

namespace {

#ifndef UBE_TEST_DATA_DIR
#define UBE_TEST_DATA_DIR "tests/data"
#endif

std::optional<SolverKind> KindFromName(const std::string& name) {
  for (SolverKind kind : AllSolverKinds()) {
    if (name == SolverKindName(kind)) return kind;
  }
  return std::nullopt;
}

std::string TelemetryCsv(const SolverStats& stats) {
  std::string csv =
      "iteration,evaluations,incumbent_quality,neighborhood,"
      "tabu_occupancy,temperature,stall\n";
  char row[160];
  for (const obs::IterationSample& s : stats.telemetry) {
    std::snprintf(row, sizeof(row), "%lld,%lld,%.17g,%d,%d,%.17g,%d\n",
                  static_cast<long long>(s.iteration),
                  static_cast<long long>(s.evaluations), s.incumbent_quality,
                  s.neighborhood, s.tabu_occupancy, s.temperature, s.stall);
    csv += row;
  }
  return csv;
}

}  // namespace

int main(int argc, char** argv) {
  BenchHarness bench("solver_trace");
  std::string solver_name = "tabu";
  std::optional<std::string> golden_path;
  std::string out_json = "solver_trace.json";
  std::string out_csv = "solver_trace.csv";
  const std::string default_golden =
      std::string(UBE_TEST_DATA_DIR) + "/golden_small_universe.json";
  bench.flags().AddString("--solver",
                          "solver to trace (see SolverKindName; includes "
                          "portfolio)",
                          &solver_name);
  bench.flags().AddOptionalString("--golden",
                                  "use the pinned golden universe "
                                  "(optionally from PATH)",
                                  &golden_path, default_golden);
  bench.flags().AddString("--out", "chrome-trace output path", &out_json);
  bench.flags().AddString("--csv", "telemetry CSV output path", &out_csv);
  bench.ParseOrExit(argc, argv);
  const BenchArgs& args = bench.args();
  WallTimer total;

  std::optional<SolverKind> kind = KindFromName(solver_name);
  if (!kind.has_value()) {
    std::fprintf(stderr, "unknown solver: %s\n%s", solver_name.c_str(),
                 bench.flags().Usage(argv[0]).c_str());
    return 2;
  }

  obs::ObsContext obs;
  Engine::Options engine_options;
  engine_options.obs = &obs;

  ProblemSpec spec;
  std::optional<Engine> engine;
  if (golden_path.has_value()) {
    Result<testkit::GoldenSmallUniverse> golden =
        testkit::LoadGoldenSmallUniverse(*golden_path);
    if (!golden.ok()) {
      std::fprintf(stderr, "cannot load golden universe %s: %s\n",
                   golden_path->c_str(),
                   golden.status().ToString().c_str());
      return 1;
    }
    Rng rng(golden->universe_seed);
    Universe universe = testkit::GenerateUniverse(rng, golden->universe);
    spec = golden->spec;
    std::printf("substrate: golden universe (%s), m=%d\n",
                golden->description.c_str(), spec.max_sources);
    engine.emplace(std::move(universe), QualityModel::MakeDefault(),
                   std::move(engine_options));
  } else {
    GeneratedWorkload workload = MakeWorkload(200, args.workload_seed);
    spec.max_sources = 20;
    std::printf("substrate: paper workload (choose 20 of 200)\n");
    engine.emplace(std::move(workload.universe), QualityModel::MakeDefault(),
                   std::move(engine_options));
  }

  // Historically --seed set the solver seed directly (default 42); under
  // the shared parser an explicit --seed shifts workload and search seeds
  // together via SolverSeed().
  SolverOptions options;
  options.seed = args.SolverSeed(42);
  options.record_trace = true;
  options.max_iterations = 400;
  options.stall_iterations = 100;
  options.num_threads = args.threads;
  std::printf("solver: %s, seed %llu\n\n", solver_name.c_str(),
              static_cast<unsigned long long>(options.seed));

  Result<Solution> solution = engine->Solve(spec, *kind, options);
  if (!solution.ok()) {
    std::fprintf(stderr, "solve failed: %s\n",
                 solution.status().ToString().c_str());
    return 1;
  }

  std::printf("%s\n", FormatSolution(solution.value(), engine->universe(),
                                     engine->quality_model())
                          .c_str());
  std::printf("span summary:\n%s\n", obs.tracer().Summary().c_str());

  if (!WriteTextFile(out_json, obs.tracer().ToChromeTraceJson())) {
    std::fprintf(stderr, "cannot write %s\n", out_json.c_str());
    return 1;
  }
  std::printf("chrome trace: %s (%lld events; load in chrome://tracing)\n",
              out_json.c_str(),
              static_cast<long long>(obs.tracer().num_events()));

  if (!WriteTextFile(out_csv, TelemetryCsv(solution->stats))) {
    std::fprintf(stderr, "cannot write %s\n", out_csv.c_str());
    return 1;
  }
  std::printf("telemetry csv: %s (%zu iteration samples, %lld dropped)\n",
              out_csv.c_str(), solution->stats.telemetry.size(),
              static_cast<long long>(solution->stats.telemetry_dropped));

  bench.SetMetric("q_best", solution->quality);
  bench.SetMetric("evals", solution->stats.evaluations);
  bench.SetMetric("telemetry_samples",
                  static_cast<int64_t>(solution->stats.telemetry.size()));
  bench.SetMetric("wall_ms", total.ElapsedMillis());
  return bench.Finish();
}
