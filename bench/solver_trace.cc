// Convergence-telemetry exporter: runs one solver with the observability
// layer attached and writes (a) the chrome://tracing JSON of the run's
// spans, (b) a per-iteration CSV of the convergence telemetry ring, and
// (c) the human-readable solution + metrics report to stdout. This is the
// tool behind the convergence-curve table in EXPERIMENTS.md and the CI
// observability job's trace artifact.
//
//   solver_trace [--seed N] [--solver NAME] [--golden[=PATH]]
//                [--out trace.json] [--csv trace.csv]
//
// Default substrate is the paper-scale workload (choose 20 of 200); with
// --golden the pinned small universe from tests/data is used instead (the
// CI job runs that, so the artifact is bit-stable across machines).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/engine.h"
#include "core/report.h"
#include "obs/obs.h"
#include "testkit/golden.h"
#include "util/rng.h"

using namespace ube;
using namespace ube::bench;

namespace {

#ifndef UBE_TEST_DATA_DIR
#define UBE_TEST_DATA_DIR "tests/data"
#endif

struct TraceArgs {
  uint64_t seed = 42;
  std::string solver = "tabu";
  bool golden = false;
  std::string golden_path =
      std::string(UBE_TEST_DATA_DIR) + "/golden_small_universe.json";
  std::string out_json = "solver_trace.json";
  std::string out_csv = "solver_trace.csv";
};

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seed N] [--solver "
               "tabu|sls|annealing|pso|greedy|random|exhaustive]\n"
               "          [--golden[=PATH]] [--out FILE.json] [--csv "
               "FILE.csv]\n",
               argv0);
  std::exit(2);
}

// `--flag value` / `--flag=value` → the value, advancing *i as needed.
const char* FlagValue(const char* flag, int argc, char** argv, int* i) {
  const char* arg = argv[*i];
  size_t len = std::strlen(flag);
  if (std::strncmp(arg, flag, len) == 0 && arg[len] == '=') return arg + len + 1;
  if (std::strcmp(arg, flag) == 0 && *i + 1 < argc) return argv[++*i];
  return nullptr;
}

TraceArgs ParseArgs(int argc, char** argv) {
  TraceArgs args;
  for (int i = 1; i < argc; ++i) {
    const char* value = nullptr;
    if ((value = FlagValue("--seed", argc, argv, &i)) != nullptr) {
      char* end = nullptr;
      args.seed = std::strtoull(value, &end, 0);
      if (end == value || *end != '\0') Usage(argv[0]);
    } else if ((value = FlagValue("--solver", argc, argv, &i)) != nullptr) {
      args.solver = value;
    } else if ((value = FlagValue("--out", argc, argv, &i)) != nullptr) {
      args.out_json = value;
    } else if ((value = FlagValue("--csv", argc, argv, &i)) != nullptr) {
      args.out_csv = value;
    } else if (std::strncmp(argv[i], "--golden=", 9) == 0) {
      args.golden = true;
      args.golden_path = argv[i] + 9;
    } else if (std::strcmp(argv[i], "--golden") == 0) {
      args.golden = true;
    } else {
      Usage(argv[0]);
    }
  }
  return args;
}

std::optional<SolverKind> KindFromName(const std::string& name) {
  for (SolverKind kind :
       {SolverKind::kTabu, SolverKind::kLocalSearch, SolverKind::kAnnealing,
        SolverKind::kPso, SolverKind::kGreedy, SolverKind::kRandom,
        SolverKind::kExhaustive}) {
    if (name == SolverKindName(kind)) return kind;
  }
  return std::nullopt;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  bool ok = std::fwrite(content.data(), 1, content.size(), f) ==
            content.size();
  return std::fclose(f) == 0 && ok;
}

std::string TelemetryCsv(const SolverStats& stats) {
  std::string csv =
      "iteration,evaluations,incumbent_quality,neighborhood,"
      "tabu_occupancy,temperature,stall\n";
  char row[160];
  for (const obs::IterationSample& s : stats.telemetry) {
    std::snprintf(row, sizeof(row), "%lld,%lld,%.17g,%d,%d,%.17g,%d\n",
                  static_cast<long long>(s.iteration),
                  static_cast<long long>(s.evaluations), s.incumbent_quality,
                  s.neighborhood, s.tabu_occupancy, s.temperature, s.stall);
    csv += row;
  }
  return csv;
}

}  // namespace

int main(int argc, char** argv) {
  const TraceArgs args = ParseArgs(argc, argv);
  std::optional<SolverKind> kind = KindFromName(args.solver);
  if (!kind.has_value()) {
    std::fprintf(stderr, "unknown solver: %s\n", args.solver.c_str());
    Usage(argv[0]);
  }

  obs::ObsContext obs;
  Engine::Options engine_options;
  engine_options.obs = &obs;

  ProblemSpec spec;
  std::optional<Engine> engine;
  if (args.golden) {
    Result<testkit::GoldenSmallUniverse> golden =
        testkit::LoadGoldenSmallUniverse(args.golden_path);
    if (!golden.ok()) {
      std::fprintf(stderr, "cannot load golden universe %s: %s\n",
                   args.golden_path.c_str(),
                   golden.status().ToString().c_str());
      return 1;
    }
    Rng rng(golden->universe_seed);
    Universe universe = testkit::GenerateUniverse(rng, golden->universe);
    spec = golden->spec;
    std::printf("substrate: golden universe (%s), m=%d\n",
                golden->description.c_str(), spec.max_sources);
    engine.emplace(std::move(universe), QualityModel::MakeDefault(),
                   std::move(engine_options));
  } else {
    GeneratedWorkload workload = MakeWorkload(200, 17);
    spec.max_sources = 20;
    std::printf("substrate: paper workload (choose 20 of 200)\n");
    engine.emplace(std::move(workload.universe), QualityModel::MakeDefault(),
                   std::move(engine_options));
  }

  SolverOptions options;
  options.seed = args.seed;
  options.record_trace = true;
  options.max_iterations = 400;
  options.stall_iterations = 100;
  std::printf("solver: %s, seed %llu\n\n", args.solver.c_str(),
              static_cast<unsigned long long>(args.seed));

  Result<Solution> solution = engine->Solve(spec, *kind, options);
  if (!solution.ok()) {
    std::fprintf(stderr, "solve failed: %s\n",
                 solution.status().ToString().c_str());
    return 1;
  }

  std::printf("%s\n", FormatSolution(solution.value(), engine->universe(),
                                     engine->quality_model())
                          .c_str());
  std::printf("span summary:\n%s\n", obs.tracer().Summary().c_str());

  if (!WriteFile(args.out_json, obs.tracer().ToChromeTraceJson())) {
    std::fprintf(stderr, "cannot write %s\n", args.out_json.c_str());
    return 1;
  }
  std::printf("chrome trace: %s (%lld events; load in chrome://tracing)\n",
              args.out_json.c_str(),
              static_cast<long long>(obs.tracer().num_events()));

  if (!WriteFile(args.out_csv, TelemetryCsv(solution->stats))) {
    std::fprintf(stderr, "cannot write %s\n", args.out_csv.c_str());
    return 1;
  }
  std::printf("telemetry csv: %s (%zu iteration samples, %lld dropped)\n",
              args.out_csv.c_str(), solution->stats.telemetry.size(),
              static_cast<long long>(solution->stats.telemetry_dropped));
  return 0;
}
