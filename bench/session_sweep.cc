// Session sweep: multi-tenant feedback-session throughput over one engine.
//
// Simulates N users against a SessionServer sharing one immutable universe
// + similarity-graph snapshot: each user opens a session, solves cold,
// then drives `--feedback` ban-gestures — each answered by a re-solve —
// and closes. The whole population runs on a ThreadPool (--threads users
// in flight; 0 = hardware concurrency). The sweep runs the population
// twice, warm-start off and on, over byte-identical engines: the warm axis
// repairs the previous incumbent against the edited spec and seeds the
// solver with it, the cold axis re-solves every gesture from scratch.
//
// Reported: sessions/sec per axis, p50/p99 feedback-to-new-schema latency
// (the Iterate wall time the user waits after a gesture), the fraction of
// feedback solves that actually warm-started, and the cold/warm p99 ratio.
// The default population is sized for a minutes-range run; the
// paper-scale load test is  --sessions 10000 --threads 0.
#include <algorithm>
#include <cstdio>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "core/session_server.h"
#include "source/flaky.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace ube;
using namespace ube::bench;

namespace {

struct AxisOutcome {
  bool ok = false;
  double wall_s = 0.0;
  double sessions_per_s = 0.0;
  double p50_feedback_ms = 0.0;
  double p99_feedback_ms = 0.0;
  int64_t warm_solves = 0;
  int64_t cold_solves = 0;
  int64_t feedback_solves = 0;  // feedback-gesture Iterate attempts
  int64_t failed = 0;
  SharedQualityCache::Stats cache;
};

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(idx, values.size() - 1)];
}

AxisOutcome RunAxis(const Universe& universe, bool warm, int sessions,
                    int feedback, int max_sources, int pool_threads,
                    uint64_t solver_seed) {
  AxisOutcome outcome;
  SessionServer::Options options;
  // Each session solves sequentially; the concurrency in this bench is
  // users, not neighborhood threads.
  options.solver_options = BenchSolverOptions(solver_seed, /*num_threads=*/1);
  options.warm_start = warm;
  SessionServer server(
      Engine(CloneUniverse(universe), QualityModel::MakeDefault()),
      std::move(options));

  const int num_sources = server.engine().universe().num_sources();
  std::vector<std::vector<double>> latencies(static_cast<size_t>(sessions));
  std::vector<Session::Stats> stats(static_cast<size_t>(sessions));
  std::vector<int64_t> feedback_attempts(static_cast<size_t>(sessions), 0);

  WallTimer timer;
  ThreadPool pool(pool_threads);
  pool.ParallelFor(static_cast<size_t>(sessions), [&](size_t i) {
    auto [id, session] = server.Open();
    session->SetMaxSources(max_sources);
    // Distinct initial gesture per user, so the population carries distinct
    // specs (the realistic multi-tenant shape: fingerprints differ, the
    // shared cache only helps within a session's repair -> solve pair).
    (void)session->BanSource(static_cast<SourceId>(i) %
                             static_cast<SourceId>(num_sources));
    (void)session->Iterate();  // the initial (always cold) solve
    for (int f = 0; f < feedback; ++f) {
      const Solution* last = session->last();
      if (last == nullptr || last->sources.empty()) break;
      // Reject one proposed source — the canonical feedback gesture —
      // and measure the wait for the re-solved schema.
      if (!session->BanSource(last->sources.back()).ok()) break;
      ++feedback_attempts[i];
      if (session->Iterate().ok()) {
        latencies[i].push_back(session->stats().last_iterate_ms);
      }
    }
    stats[i] = session->stats();
    (void)server.Close(id);
  });
  outcome.wall_s = timer.ElapsedSeconds();

  std::vector<double> all;
  for (const std::vector<double>& per_session : latencies) {
    all.insert(all.end(), per_session.begin(), per_session.end());
  }
  for (const Session::Stats& s : stats) {
    outcome.warm_solves += s.warm_solves;
    outcome.cold_solves += s.cold_solves;
    outcome.failed += s.failed_solves;
  }
  for (int64_t attempts : feedback_attempts) {
    outcome.feedback_solves += attempts;
  }
  outcome.ok = !all.empty();
  outcome.sessions_per_s =
      outcome.wall_s > 0.0 ? static_cast<double>(sessions) / outcome.wall_s
                           : 0.0;
  outcome.p50_feedback_ms = Percentile(all, 0.50);
  outcome.p99_feedback_ms = Percentile(all, 0.99);
  outcome.cache = server.cache().stats();
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  BenchHarness bench("session_sweep");
  int sessions = 512;
  int feedback = 3;
  int num_sources = 120;
  int max_sources = 8;
  bench.flags().AddInt("--sessions", "simulated users (default 512)",
                       &sessions);
  bench.flags().AddInt("--feedback",
                       "feedback gestures (re-solves) per session",
                       &feedback);
  bench.flags().AddInt("--sources", "universe size (default 120)",
                       &num_sources);
  bench.flags().AddInt("--m", "max sources per solution (default 8)",
                       &max_sources);
  bench.ParseOrExit(argc, argv);
  const BenchArgs& args = bench.args();

  std::printf("Session sweep — %d sessions x %d feedback gestures over one "
              "engine (|U|=%d, m=%d, --threads %d)\n\n",
              sessions, feedback, num_sources, max_sources, args.threads);

  GeneratedWorkload workload = MakeWorkload(num_sources, args.workload_seed);

  PrintRow({"axis", "sessions/s", "p50 fb ms", "p99 fb ms", "warm", "cold",
            "cache hit%"},
           12);
  AxisOutcome axes[2];
  for (bool warm : {false, true}) {
    AxisOutcome outcome =
        RunAxis(workload.universe, warm, sessions, feedback, max_sources,
                args.threads, args.SolverSeed());
    if (!outcome.ok) {
      std::fprintf(stderr, "axis produced no feedback latencies\n");
      return 1;
    }
    const int64_t probes = outcome.cache.hits + outcome.cache.misses;
    PrintRow({warm ? "warm" : "cold", Fmt("%.1f", outcome.sessions_per_s),
              Fmt("%.2f", outcome.p50_feedback_ms),
              Fmt("%.2f", outcome.p99_feedback_ms),
              Fmt(outcome.warm_solves), Fmt(outcome.cold_solves),
              Fmt("%.1f%%", probes > 0 ? 100.0 *
                                             static_cast<double>(
                                                 outcome.cache.hits) /
                                             static_cast<double>(probes)
                                       : 0.0)},
             12);
    axes[warm ? 1 : 0] = outcome;
  }

  const AxisOutcome& cold = axes[0];
  const AxisOutcome& warm = axes[1];
  const double p99_speedup = warm.p99_feedback_ms > 0.0
                                 ? cold.p99_feedback_ms / warm.p99_feedback_ms
                                 : 0.0;
  const int64_t warm_feedback = warm.warm_solves;
  std::printf("\nwarm-start covered %lld of %lld feedback solves; "
              "p99 feedback latency %.2fms warm vs %.2fms cold (%.2fx)\n",
              static_cast<long long>(warm_feedback),
              static_cast<long long>(warm.feedback_solves),
              warm.p99_feedback_ms, cold.p99_feedback_ms, p99_speedup);

  bench.SetMetric("sessions", static_cast<int64_t>(sessions));
  bench.SetMetric("feedback_per_session", static_cast<int64_t>(feedback));
  bench.SetMetric("sessions_per_s", warm.sessions_per_s);
  bench.SetMetric("cold_sessions_per_s", cold.sessions_per_s);
  bench.SetMetric("p50_warm_feedback_ms", warm.p50_feedback_ms);
  bench.SetMetric("p99_warm_feedback_ms", warm.p99_feedback_ms);
  bench.SetMetric("p50_cold_feedback_ms", cold.p50_feedback_ms);
  bench.SetMetric("p99_cold_feedback_ms", cold.p99_feedback_ms);
  bench.SetMetric("warm_p99_speedup_x", p99_speedup);
  bench.SetMetric("warm_solves", warm.warm_solves);
  bench.SetMetric("feedback_solves", warm.feedback_solves);
  bench.SetMetric("warm_axis_cold_solves", warm.cold_solves);
  bench.SetMetric("failed_solves", warm.failed + cold.failed);
  bench.SetMetric("cache_hits", warm.cache.hits);
  bench.SetMetric("cache_rejects", warm.cache.rejects);
  return bench.Finish();
}
