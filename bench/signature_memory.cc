// Section 7.1: "The maximum memory footprint for all of our experiments
// never exceeded 70MB. Most of this memory was used for the hash
// signatures of the data sources that we store for calculating coverage
// and redundancy."
//
// This bench accounts the signature memory for a 700-source universe at
// several PCSA resolutions and compares with exact id-set storage, showing
// why the sketch (not the data) is what µBE can afford to cache.
#include <cstdio>

#include "bench/bench_util.h"
#include "util/timer.h"
#include "workload/generator.h"

using namespace ube;
using namespace ube::bench;

int main(int argc, char** argv) {
  BenchHarness bench("signature_memory");
  bench.ParseOrExit(argc, argv);
  const BenchArgs& args = bench.args();
  WallTimer total;
  std::printf("§7.1 — signature memory accounting (700 sources)\n\n");
  PrintRow({"signature", "bytes/source", "total MB", "note"}, 16);

  for (int bitmaps : {64, 256, 1024}) {
    size_t per_source = static_cast<size_t>(bitmaps) * sizeof(uint32_t);
    double total_mb = 700.0 * per_source / (1024.0 * 1024.0);
    PrintRow({"pcsa-" + std::to_string(bitmaps),
              Fmt(static_cast<int64_t>(per_source)),
              Fmt("%.3f", total_mb), "constant"}, 16);
  }

  // Exact storage at the paper's full data scale: cardinalities are Zipf
  // over [10k, 1M]; estimate the expectation from the generator's rank map.
  WorkloadConfig config;
  config.num_sources = 700;
  config.seed = args.workload_seed;
  config.generate_data = false;  // cardinalities only
  GeneratedWorkload workload = GenerateWorkload(config);
  int64_t total_tuples = workload.universe.TotalCardinality();
  double exact_mb = static_cast<double>(total_tuples) * sizeof(uint64_t) /
                    (1024.0 * 1024.0);
  PrintRow({"exact-ids", "cardinality*8",
            Fmt("%.1f", exact_mb), "grows with data"}, 16);

  std::printf("\ntotal tuples at paper scale: %lld (~%.1f MB as raw ids, "
              "far beyond the paper's 70 MB budget without sketches)\n",
              static_cast<long long>(total_tuples), exact_mb);
  bench.SetMetric("exact_ids_mb", exact_mb);
  bench.SetMetric("total_tuples", total_tuples);
  bench.SetMetric("wall_ms", total.ElapsedMillis());
  return bench.Finish();
}
