// Section 6/7 claim: "we tried using stochastic local search, particle
// swarm optimization, constrained simulated annealing, and tabu search,
// and we found that tabu search gives the best results ... more robust and
// generates higher quality solutions".
//
// This ablation runs every solver on identical instances with a matched
// evaluation budget and reports mean/min quality and time over seeds.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/engine.h"
#include "util/timer.h"

using namespace ube;
using namespace ube::bench;

namespace {

void RunInstance(const BenchArgs& args, Engine& engine,
                 const ProblemSpec& spec) {
  PrintRow({"solver", "mean Q", "min Q", "max Q", "mean time(s)",
            "mean evals"});
  const std::vector<SolverKind> kinds = {
      SolverKind::kTabu, SolverKind::kLocalSearch, SolverKind::kAnnealing,
      SolverKind::kPso, SolverKind::kGreedy, SolverKind::kRandom};

  for (SolverKind kind : kinds) {
    double sum_q = 0.0, min_q = 1.0, max_q = 0.0, sum_t = 0.0;
    int64_t sum_evals = 0;
    int runs = 0;
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      SolverOptions options = BenchSolverOptions(args.SolverSeed(seed));
      // Equalized effort: every solver gets the same nominal budget of
      // ~400x32 candidate evaluations and the same patience.
      options.max_iterations = 400;
      options.stall_iterations = 120;
      options.candidate_moves = 32;
      // Greedy is deterministic and expensive (m*N evaluations); one run.
      if (kind == SolverKind::kGreedy && seed > 1) break;
      WallTimer timer;
      Result<Solution> solution = engine.Solve(spec, kind, options);
      double seconds = timer.ElapsedSeconds();
      if (!solution.ok()) continue;
      ++runs;
      sum_q += solution->quality;
      min_q = std::min(min_q, solution->quality);
      max_q = std::max(max_q, solution->quality);
      sum_t += seconds;
      sum_evals += solution->stats.evaluations;
    }
    if (runs == 0) continue;
    PrintRow({std::string(SolverKindName(kind)),
              Fmt("%.4f", sum_q / runs), Fmt("%.4f", min_q),
              Fmt("%.4f", max_q), Fmt("%.2f", sum_t / runs),
              Fmt(sum_evals / runs)});
  }
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv);
  std::printf("Solver ablation — choose 20 of 200, 5 seeds per solver, "
              "matched budgets\n");
  GeneratedWorkload workload = MakeWorkload(200, args.workload_seed);
  std::vector<ConstraintSet> sets = PaperConstraintSets(workload);
  Engine engine(std::move(workload.universe), QualityModel::MakeDefault());

  std::printf("\n-- unconstrained --\n");
  ProblemSpec spec;
  spec.max_sources = 20;
  RunInstance(args, engine, spec);

  std::printf("\n-- 5 source + 2 GA constraints --\n");
  ProblemSpec constrained = spec;
  constrained.source_constraints = sets.back().sources;
  constrained.ga_constraints = sets.back().gas;
  RunInstance(args, engine, constrained);

  std::printf("\n(paper: tabu search is the most robust and highest "
              "quality; random is the floor)\n");
  return 0;
}
