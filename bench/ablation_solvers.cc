// Section 6/7 claim: "we tried using stochastic local search, particle
// swarm optimization, constrained simulated annealing, and tabu search,
// and we found that tabu search gives the best results ... more robust and
// generates higher quality solutions".
//
// This ablation runs every registered solver (via AllSolverKinds(), so the
// portfolio racer is included) on identical instances with a matched
// evaluation budget and reports mean/min quality and time over seeds.
// --repeat N controls the seeds per randomized solver (default 5);
// deterministic solvers (per SolverTraitsFor) run once.
#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "core/engine.h"
#include "util/timer.h"

using namespace ube;
using namespace ube::bench;

namespace {

// Exhaustive cannot finish m=20-of-200 within any sane budget; skip it.
std::vector<SolverKind> AblationKinds() {
  std::vector<SolverKind> kinds;
  for (SolverKind kind : AllSolverKinds()) {
    if (!SolverTraitsFor(kind).exact) kinds.push_back(kind);
  }
  return kinds;
}

struct SolverSummary {
  double mean_q = 0.0;
  double min_q = 1.0;
  double max_q = 0.0;
  double mean_seconds = 0.0;
  int64_t mean_evals = 0;
};

void RunInstance(const BenchArgs& args, int seeds, Engine& engine,
                 const ProblemSpec& spec,
                 std::vector<std::pair<SolverKind, SolverSummary>>* out) {
  PrintRow({"solver", "mean Q", "min Q", "max Q", "mean time(s)",
            "mean evals"});
  for (SolverKind kind : AblationKinds()) {
    const SolverTraits traits = SolverTraitsFor(kind);
    double sum_q = 0.0, min_q = 1.0, max_q = 0.0, sum_t = 0.0;
    int64_t sum_evals = 0;
    int runs = 0;
    for (uint64_t seed = 1; seed <= static_cast<uint64_t>(seeds); ++seed) {
      SolverOptions options =
          BenchSolverOptions(args.SolverSeed(seed), args.threads);
      // Equalized effort: every solver gets the same nominal budget of
      // ~400x32 candidate evaluations and the same patience.
      options.max_iterations = 400;
      options.stall_iterations = 120;
      options.candidate_moves = 32;
      // Deterministic solvers (greedy: m*N evaluations, argmax) run once.
      if (!traits.randomized && seed > 1) break;
      WallTimer timer;
      Result<Solution> solution = engine.Solve(spec, kind, options);
      double seconds = timer.ElapsedSeconds();
      if (!solution.ok()) continue;
      ++runs;
      sum_q += solution->quality;
      min_q = std::min(min_q, solution->quality);
      max_q = std::max(max_q, solution->quality);
      sum_t += seconds;
      sum_evals += solution->stats.evaluations;
    }
    if (runs == 0) continue;
    SolverSummary summary;
    summary.mean_q = sum_q / runs;
    summary.min_q = min_q;
    summary.max_q = max_q;
    summary.mean_seconds = sum_t / runs;
    summary.mean_evals = sum_evals / runs;
    if (out != nullptr) out->emplace_back(kind, summary);
    PrintRow({std::string(SolverKindName(kind)),
              Fmt("%.4f", summary.mean_q), Fmt("%.4f", summary.min_q),
              Fmt("%.4f", summary.max_q),
              Fmt("%.2f", summary.mean_seconds),
              Fmt(summary.mean_evals)});
  }
}

}  // namespace

int main(int argc, char** argv) {
  BenchHarness bench("ablation_solvers");
  bench.set_default_repeat(5);
  bench.ParseOrExit(argc, argv);
  const BenchArgs& args = bench.args();
  const int seeds = bench.Repeat();
  WallTimer total;
  std::printf("Solver ablation — choose 20 of 200, %d seeds per solver, "
              "matched budgets\n", seeds);
  GeneratedWorkload workload = MakeWorkload(200, args.workload_seed);
  std::vector<ConstraintSet> sets = PaperConstraintSets(workload);
  Engine engine(std::move(workload.universe), QualityModel::MakeDefault());

  std::printf("\n-- unconstrained --\n");
  ProblemSpec spec;
  spec.max_sources = 20;
  std::vector<std::pair<SolverKind, SolverSummary>> summaries;
  RunInstance(args, seeds, engine, spec, &summaries);

  std::printf("\n-- 5 source + 2 GA constraints --\n");
  ProblemSpec constrained = spec;
  constrained.source_constraints = sets.back().sources;
  constrained.ga_constraints = sets.back().gas;
  RunInstance(args, seeds, engine, constrained, nullptr);

  std::printf("\n(paper: tabu search is the most robust and highest "
              "quality; random is the floor)\n");

  double q_best = 0.0;
  int64_t evals = 0;
  for (const auto& [kind, summary] : summaries) {
    std::string name(SolverKindName(kind));
    bench.SetMetric("q_mean_" + name, summary.mean_q);
    bench.SetMetric("time_mean_" + name + "_ms",
                    summary.mean_seconds * 1e3);
    q_best = std::max(q_best, summary.max_q);
    evals += summary.mean_evals;
  }
  bench.SetMetric("q_best", q_best);
  bench.SetMetric("evals", evals);
  bench.SetMetric("wall_ms", total.ElapsedMillis());
  return bench.Finish();
}
