// Section 7.3: "The quality of our coverage and redundancy estimates
// depends on the accuracy of the probabilistic counting algorithm. We have
// found this algorithm to be very accurate, with a worst case error of 7%
// compared to exact counting."
//
// This bench sweeps distinct counts and bitmap counts for single-source
// signatures AND for unions of overlapping sources (the operation µBE
// actually performs), reporting mean and worst relative error vs exact.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <unordered_set>
#include <vector>

#include "bench/bench_util.h"
#include "sketch/pcsa.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace ube;
using namespace ube::bench;

namespace {

struct ErrorStats {
  double mean = 0.0;
  double worst = 0.0;
};

// Relative error of PCSA on `trials` random sets of `count` items.
ErrorStats SingleSetError(int count, int bitmaps, int trials, Rng& rng) {
  ErrorStats stats;
  for (int t = 0; t < trials; ++t) {
    PcsaSketch sketch(bitmaps);
    for (int i = 0; i < count; ++i) sketch.AddHash(rng.Next64());
    double err = std::fabs(sketch.Estimate() - count) / count;
    stats.mean += err;
    stats.worst = std::max(stats.worst, err);
  }
  stats.mean /= trials;
  return stats;
}

// Error of |∪ of 20 overlapping sources| estimated by OR-ing signatures.
ErrorStats UnionError(int bitmaps, int trials, Rng& rng) {
  ErrorStats stats;
  for (int t = 0; t < trials; ++t) {
    PcsaSketch merged(bitmaps);
    std::unordered_set<uint64_t> exact;
    const uint64_t pool = 200000;
    for (int s = 0; s < 20; ++s) {
      PcsaSketch sketch(bitmaps);
      int card = 2000 + static_cast<int>(rng.UniformInt(20000));
      for (int i = 0; i < card; ++i) {
        uint64_t id = rng.UniformInt(pool);
        sketch.AddHash(id);
        exact.insert(id);
      }
      merged.Merge(sketch);
    }
    double err = std::fabs(merged.Estimate() -
                           static_cast<double>(exact.size())) /
                 static_cast<double>(exact.size());
    stats.mean += err;
    stats.worst = std::max(stats.worst, err);
  }
  stats.mean /= trials;
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  BenchHarness bench("pcsa_accuracy");
  bench.ParseOrExit(argc, argv);
  const BenchArgs& args = bench.args();
  WallTimer total;
  std::printf("§7.3 — PCSA accuracy vs exact counting\n\n");
  std::printf("-- single-source signatures (20 trials each) --\n");
  PrintRow({"distinct", "bitmaps", "mean err", "worst err"});
  // Historical trial seed 7; keyed off --seed explicitness (not its value)
  // so a literal `--seed 17` behaves like any other explicit seed.
  Rng rng(args.seed_explicit ? args.workload_seed : 7);
  double worst_1024 = 0.0;
  for (int bitmaps : {64, 256, 1024}) {
    for (int count : {1000, 10000, 100000}) {
      ErrorStats stats = SingleSetError(count, bitmaps, 20, rng);
      if (bitmaps == 1024) worst_1024 = std::max(worst_1024, stats.worst);
      PrintRow({Fmt(static_cast<int64_t>(count)),
                Fmt(static_cast<int64_t>(bitmaps)),
                Fmt("%.3f", stats.mean), Fmt("%.3f", stats.worst)});
    }
  }

  std::printf("\n-- unions of 20 overlapping sources (15 trials each) --\n");
  PrintRow({"bitmaps", "mean err", "worst err"});
  for (int bitmaps : {64, 256, 1024}) {
    ErrorStats stats = UnionError(bitmaps, 15, rng);
    if (bitmaps == 1024) worst_1024 = std::max(worst_1024, stats.worst);
    PrintRow({Fmt(static_cast<int64_t>(bitmaps)), Fmt("%.3f", stats.mean),
              Fmt("%.3f", stats.worst)});
  }
  bench.SetMetric("worst_err_1024", worst_1024);
  std::printf("\n(paper reports <= 7%% worst-case error; reaching that "
              "band requires ~1024 bitmaps = 4 KiB per signature, still "
              "'a few kilobytes' as Section 4 claims)\n");
  bench.SetMetric("wall_ms", total.ElapsedMillis());
  return bench.Finish();
}
