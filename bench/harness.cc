#include "bench/harness.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/json.h"
#include "util/timer.h"

namespace ube::bench {

namespace {

#ifndef UBE_GIT_COMMIT
#define UBE_GIT_COMMIT "unknown"
#endif

bool ParseUint64(const char* text, uint64_t* out) {
  char* end = nullptr;
  uint64_t value = std::strtoull(text, &end, 0);
  if (end == text || *end != '\0') return false;
  *out = value;
  return true;
}

bool ParseInt(const char* text, int* out) {
  char* end = nullptr;
  long value = std::strtol(text, &end, 0);
  if (end == text || *end != '\0') return false;
  *out = static_cast<int>(value);
  return true;
}

}  // namespace

void FlagParser::AddUint64(std::string_view name, std::string_view help,
                           uint64_t* value, bool* seen) {
  Flag flag;
  flag.name = std::string(name);
  flag.help = std::string(help);
  flag.kind = Kind::kUint64;
  flag.u64 = value;
  flag.seen = seen;
  flags_.push_back(std::move(flag));
}

void FlagParser::AddInt(std::string_view name, std::string_view help,
                        int* value, bool* seen) {
  Flag flag;
  flag.name = std::string(name);
  flag.help = std::string(help);
  flag.kind = Kind::kInt;
  flag.i32 = value;
  flag.seen = seen;
  flags_.push_back(std::move(flag));
}

void FlagParser::AddString(std::string_view name, std::string_view help,
                           std::string* value, bool* seen) {
  Flag flag;
  flag.name = std::string(name);
  flag.help = std::string(help);
  flag.kind = Kind::kString;
  flag.str = value;
  flag.seen = seen;
  flags_.push_back(std::move(flag));
}

void FlagParser::AddOptionalString(std::string_view name,
                                   std::string_view help,
                                   std::optional<std::string>* value,
                                   std::string_view bare_value) {
  Flag flag;
  flag.name = std::string(name);
  flag.help = std::string(help);
  flag.kind = Kind::kOptionalString;
  flag.opt = value;
  flag.bare_value = std::string(bare_value);
  flags_.push_back(std::move(flag));
}

void FlagParser::AddBool(std::string_view name, std::string_view help,
                         bool* value) {
  Flag flag;
  flag.name = std::string(name);
  flag.help = std::string(help);
  flag.kind = Kind::kBool;
  flag.flag = value;
  flags_.push_back(std::move(flag));
}

bool FlagParser::Apply(Flag& flag, const char* value, std::string* error) {
  if (flag.seen != nullptr) *flag.seen = true;
  switch (flag.kind) {
    case Kind::kUint64:
      if (!ParseUint64(value, flag.u64)) {
        *error = "bad " + flag.name + " value: " + value;
        return false;
      }
      return true;
    case Kind::kInt:
      if (!ParseInt(value, flag.i32)) {
        *error = "bad " + flag.name + " value: " + value;
        return false;
      }
      return true;
    case Kind::kString:
      *flag.str = value;
      return true;
    case Kind::kOptionalString:
      *flag.opt = std::string(value);
      return true;
    case Kind::kBool:
      *flag.flag = true;
      return true;
  }
  return false;
}

bool FlagParser::ParseKnown(int* argc, char** argv, std::string* error) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    Flag* match = nullptr;
    const char* value = nullptr;
    bool bare = false;
    for (Flag& flag : flags_) {
      size_t len = flag.name.size();
      if (std::strncmp(arg, flag.name.c_str(), len) != 0) continue;
      if (arg[len] == '=') {
        match = &flag;
        value = arg + len + 1;
        break;
      }
      if (arg[len] != '\0') continue;
      match = &flag;
      const bool takes_value = flag.kind != Kind::kBool;
      const bool value_optional = flag.kind == Kind::kOptionalString ||
                                  flag.kind == Kind::kBool;
      // A value-optional flag consumes the next argument only when it does
      // not look like another flag.
      if (takes_value && i + 1 < *argc &&
          (!value_optional || std::strncmp(argv[i + 1], "--", 2) != 0)) {
        value = argv[++i];
      } else {
        bare = true;
      }
      break;
    }
    if (match == nullptr) {
      argv[out++] = argv[i];
      continue;
    }
    if (bare || value == nullptr) {
      if (match->kind == Kind::kBool) {
        if (match->seen != nullptr) *match->seen = true;
        *match->flag = true;
        continue;
      }
      if (match->kind == Kind::kOptionalString) {
        *match->opt = match->bare_value;
        continue;
      }
      *error = match->name + " requires a value";
      return false;
    }
    if (!Apply(*match, value, error)) return false;
  }
  *argc = out;
  return true;
}

bool FlagParser::Parse(int argc, char** argv, std::string* error) {
  if (!ParseKnown(&argc, argv, error)) return false;
  if (argc > 1) {
    *error = std::string("unknown argument: ") + argv[1];
    return false;
  }
  return true;
}

std::string FlagParser::Usage(std::string_view argv0) const {
  std::string usage = "usage: " + std::string(argv0) + " [flags]\n";
  for (const Flag& flag : flags_) {
    usage += "  " + flag.name;
    switch (flag.kind) {
      case Kind::kUint64:
      case Kind::kInt:
        usage += " N";
        break;
      case Kind::kString:
        usage += " VALUE";
        break;
      case Kind::kOptionalString:
        usage += "[=VALUE]";
        break;
      case Kind::kBool:
        break;
    }
    usage += "  — " + flag.help + "\n";
  }
  return usage;
}

bool WriteTextFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  bool ok =
      std::fwrite(content.data(), 1, content.size(), f) == content.size();
  return std::fclose(f) == 0 && ok;
}

BenchHarness::BenchHarness(std::string_view name) : name_(name) {
  flags_.AddUint64("--seed", "workload seed (shifts the whole sweep)",
                   &args_.workload_seed, &args_.seed_explicit);
  flags_.AddInt("--threads",
                "evaluation threads (1=sequential, 0=hardware)",
                &args_.threads);
  flags_.AddInt("--repeat", "measurement repetitions (0=binary default)",
                &args_.repeat);
  flags_.AddOptionalString("--json",
                           "write BENCH_" + name_ +
                               ".json (or the given path)",
                           &args_.json_path);
}

void BenchHarness::ParseOrExit(int argc, char** argv) {
  std::string error;
  if (!flags_.Parse(argc, argv, &error)) {
    std::fprintf(stderr, "%s\n%s", error.c_str(),
                 flags_.Usage(argv[0]).c_str());
    std::exit(2);
  }
}

void BenchHarness::ParseKnownOrExit(int* argc, char** argv) {
  std::string error;
  if (!flags_.ParseKnown(argc, argv, &error)) {
    std::fprintf(stderr, "%s\n%s", error.c_str(),
                 flags_.Usage(argv[0]).c_str());
    std::exit(2);
  }
}

void BenchHarness::SetMetric(std::string_view key, double value) {
  for (Metric& metric : metrics_) {
    if (metric.key == key) {
      metric.is_int = false;
      metric.d = value;
      return;
    }
  }
  Metric metric;
  metric.key = std::string(key);
  metric.d = value;
  metrics_.push_back(std::move(metric));
}

void BenchHarness::SetMetric(std::string_view key, int64_t value) {
  for (Metric& metric : metrics_) {
    if (metric.key == key) {
      metric.is_int = true;
      metric.i = value;
      return;
    }
  }
  Metric metric;
  metric.key = std::string(key);
  metric.is_int = true;
  metric.i = value;
  metrics_.push_back(std::move(metric));
}

double BenchHarness::TimeMs(std::string_view key,
                            const std::function<void()>& fn) {
  fn();  // warmup
  std::vector<double> samples;
  const int repeat = std::max(1, Repeat());
  samples.reserve(static_cast<size_t>(repeat));
  for (int r = 0; r < repeat; ++r) {
    WallTimer timer;
    fn();
    samples.push_back(timer.ElapsedMillis());
  }
  std::sort(samples.begin(), samples.end());
  const double median = samples[samples.size() / 2];
  SetMetric(std::string(key) + "_ms", median);
  return median;
}

std::string BenchHarness::Json() const {
  json::Writer writer;
  writer.BeginObject();
  writer.Key("bench");
  writer.String(name_);
  writer.Key("git_commit");
  writer.String(UBE_GIT_COMMIT);
  writer.Key("seed");
  writer.Number(static_cast<int64_t>(args_.workload_seed));
  writer.Key("threads");
  writer.Number(static_cast<int64_t>(args_.threads));
  writer.Key("repeat");
  writer.Number(static_cast<int64_t>(Repeat()));
  writer.Key("metrics");
  writer.BeginObject();
  for (const Metric& metric : metrics_) {
    writer.Key(metric.key);
    if (metric.is_int) {
      writer.Number(metric.i);
    } else {
      writer.Number(metric.d);
    }
  }
  writer.EndObject();
  writer.EndObject();
  return writer.str() + "\n";
}

int BenchHarness::Finish() {
  if (!args_.json_path.has_value()) return 0;
  std::string path = *args_.json_path;
  if (path.empty()) path = "BENCH_" + name_ + ".json";
  if (!WriteTextFile(path, Json())) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("\nbench json: %s\n", path.c_str());
  return 0;
}

}  // namespace ube::bench
