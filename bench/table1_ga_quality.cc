// Table 1: quality of the GAs chosen by µBE — true GAs selected,
// attributes covered by them, and true GAs missed — when choosing 10-50
// sources from a 200-source universe with no constraints.
//
// Paper shape: with more sources µBE finds more of the 14 true GAs, misses
// fewer, covers more attributes, and never produces a false GA.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/engine.h"
#include "core/ga_evaluation.h"
#include "util/timer.h"

using namespace ube;
using namespace ube::bench;

int main(int argc, char** argv) {
  BenchHarness bench("table1_ga_quality");
  bench.ParseOrExit(argc, argv);
  const BenchArgs& args = bench.args();
  WallTimer total;
  std::printf("Table 1 — quality of GAs (|U|=200, no constraints, "
              "14 ground-truth concepts)\n\n");
  GeneratedWorkload workload = MakeWorkload(200, args.workload_seed);
  GroundTruth truth = workload.ground_truth;
  Engine engine(std::move(workload.universe), QualityModel::MakeDefault());

  int64_t false_gas_total = 0;
  PrintRow({"sources", "true GAs", "attrs in", "true GAs", "false",
            "concepts"});
  PrintRow({"selected", "selected", "true GAs", "missed", "GAs",
            "available"});
  for (int m = 10; m <= 50; m += 10) {
    ProblemSpec spec;
    spec.max_sources = m;
    Result<Solution> solution = engine.Solve(
        spec, SolverKind::kTabu,
        BenchSolverOptions(args.SolverSeed(), args.threads));
    if (!solution.ok()) {
      std::printf("m=%d: %s\n", m, solution.status().ToString().c_str());
      continue;
    }
    GaQualityReport report = EvaluateGaQuality(
        solution->mediated_schema, solution->sources, truth);
    false_gas_total += report.false_gas;
    if (m == 50) {
      bench.SetMetric("true_gas_m50",
                      static_cast<int64_t>(report.true_gas_selected));
      bench.SetMetric("true_gas_missed_m50",
                      static_cast<int64_t>(report.true_gas_missed));
    }
    PrintRow({Fmt(static_cast<int64_t>(report.sources_selected)),
              Fmt(static_cast<int64_t>(report.true_gas_selected)),
              Fmt(static_cast<int64_t>(report.attributes_in_true_gas)),
              Fmt(static_cast<int64_t>(report.true_gas_missed)),
              Fmt(static_cast<int64_t>(report.false_gas)),
              Fmt(static_cast<int64_t>(report.concepts_available))});
  }
  std::printf("\n(the paper reports zero false GAs in all runs)\n");
  bench.SetMetric("false_gas_total", false_gas_total);
  bench.SetMetric("wall_ms", total.ElapsedMillis());
  return bench.Finish();
}
