// Shared bench harness: one extensible flag parser (--seed/--threads/
// --repeat/--json plus binary-specific flags), warmup+median timing, and a
// machine-readable BENCH_<name>.json next to the human tables — the perf
// trajectory the builder pipeline tracks (see EXPERIMENTS.md).
#ifndef UBE_BENCH_HARNESS_H_
#define UBE_BENCH_HARNESS_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ube::bench {

/// The historical workload seed: an argument-less run reproduces the
/// numbers in EXPERIMENTS.md exactly. Single source of truth — BenchArgs
/// and MakeWorkload both use it.
inline constexpr uint64_t kDefaultWorkloadSeed = 17;

/// Command-line arguments shared by every bench binary.
struct BenchArgs {
  /// Workload seed (--seed N).
  uint64_t workload_seed = kDefaultWorkloadSeed;
  /// Whether --seed was passed at all. "Default run" keys off this, not
  /// off the seed's value, so the replay contract cannot silently drift if
  /// the default ever changes.
  bool seed_explicit = false;
  /// Worker threads for solver neighborhood evaluation (--threads N;
  /// 1 = sequential, 0 = hardware concurrency). Solutions are identical
  /// for every value — only wall-clock changes.
  int threads = 1;
  /// Measurement repetitions (--repeat N; 0 = the binary's default).
  int repeat = 0;
  /// Output path for BENCH_<name>.json (--json[=PATH]; bare --json uses
  /// the default name). Unset = no JSON output.
  std::optional<std::string> json_path;

  /// Seed for a solver run that historically used `historical`: returned
  /// unchanged in a default run, re-derived from the workload seed under
  /// an explicit --seed so the entire sweep (workload *and* search) shifts
  /// together.
  uint64_t SolverSeed(uint64_t historical = 42) const {
    if (!seed_explicit) return historical;
    return (workload_seed * 0x9e3779b97f4a7c15ull) ^ historical;
  }
};

/// Registration-based flag parser. Flags accept `--name value` and
/// `--name=value`; value-optional flags additionally accept bare `--name`.
/// Parse() rejects unknown arguments (with a usage listing); ParseKnown()
/// consumes registered flags and leaves everything else in argv for a
/// second-stage parser (micro_ube passes --benchmark_* through this way).
class FlagParser {
 public:
  /// `seen`, when non-null, is set to true if the flag was passed.
  void AddUint64(std::string_view name, std::string_view help,
                 uint64_t* value, bool* seen = nullptr);
  void AddInt(std::string_view name, std::string_view help, int* value,
              bool* seen = nullptr);
  void AddString(std::string_view name, std::string_view help,
                 std::string* value, bool* seen = nullptr);
  /// Value-optional string flag: bare `--name` stores `bare_value`.
  void AddOptionalString(std::string_view name, std::string_view help,
                         std::optional<std::string>* value,
                         std::string_view bare_value = "");
  /// Value-less switch.
  void AddBool(std::string_view name, std::string_view help, bool* value);

  /// Strict parse: any unregistered argument is an error.
  bool Parse(int argc, char** argv, std::string* error);
  /// Permissive parse: consumes registered flags, compacts the rest back
  /// into argv and updates *argc (for pass-through to another parser).
  bool ParseKnown(int* argc, char** argv, std::string* error);

  /// One-line-per-flag usage text.
  std::string Usage(std::string_view argv0) const;

 private:
  enum class Kind { kUint64, kInt, kString, kOptionalString, kBool };
  struct Flag {
    std::string name;  // including the leading "--"
    std::string help;
    Kind kind = Kind::kString;
    uint64_t* u64 = nullptr;
    int* i32 = nullptr;
    std::string* str = nullptr;
    std::optional<std::string>* opt = nullptr;
    bool* flag = nullptr;
    bool* seen = nullptr;
    std::string bare_value;
  };

  bool Apply(Flag& flag, const char* value, std::string* error);

  std::vector<Flag> flags_;
};

/// Writes `content` to `path`, returning false on any I/O failure.
bool WriteTextFile(const std::string& path, const std::string& content);

/// Per-binary harness: owns the shared BenchArgs + FlagParser, collects
/// named metrics in insertion order, and writes BENCH_<name>.json on
/// Finish() when --json was passed.
class BenchHarness {
 public:
  explicit BenchHarness(std::string_view name);

  /// Register binary-specific flags here before parsing.
  FlagParser& flags() { return flags_; }
  const BenchArgs& args() const { return args_; }

  /// Strict / permissive parse; prints usage and exits(2) on bad flags.
  void ParseOrExit(int argc, char** argv);
  void ParseKnownOrExit(int* argc, char** argv);

  /// Binary-specific meaning of --repeat when the user does not pass it
  /// (e.g. seeds-per-solver in ablation_solvers). Defaults to 1.
  void set_default_repeat(int n) { default_repeat_ = n; }
  /// --repeat if given, else the binary default.
  int Repeat() const { return args_.repeat > 0 ? args_.repeat : default_repeat_; }

  /// Records one metric (last write wins; first write fixes the position).
  void SetMetric(std::string_view key, double value);
  void SetMetric(std::string_view key, int64_t value);

  /// Runs `fn` once as warmup, then Repeat() timed times; records the
  /// median as metric `<key>_ms` and returns it.
  double TimeMs(std::string_view key, const std::function<void()>& fn);

  /// The BENCH_*.json document for the metrics recorded so far.
  std::string Json() const;

  /// Writes the JSON file when --json was passed. Returns the process exit
  /// code (0, or 1 when the file cannot be written).
  int Finish();

 private:
  std::string name_;
  FlagParser flags_;
  BenchArgs args_;
  int default_repeat_ = 1;
  struct Metric {
    std::string key;
    bool is_int = false;
    double d = 0.0;
    int64_t i = 0;
  };
  std::vector<Metric> metrics_;
};

}  // namespace ube::bench

#endif  // UBE_BENCH_HARNESS_H_
