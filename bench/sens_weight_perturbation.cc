// Section 7.4 robustness claim: "we randomly perturbed the values of all
// the weights by up to 15% ... perturbing the weights caused at most 1 GA
// in the solution to change, and the selected sources rarely changed."
//
// This bench perturbs each default weight by a uniform ±15% (renormalized)
// across several trials and reports how much the solution moved. Two
// regimes are reported:
//   - greedy (deterministic): isolates the robustness of the *argmax* to
//     the weights, which is what the paper's claim is about;
//   - tabu (stochastic): adds search noise — a finite-budget heuristic can
//     land on different near-optimal source sets even for identical
//     weights, because perturbed copies of the same base schema are nearly
//     interchangeable.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "core/engine.h"
#include "core/ga_evaluation.h"
#include "util/rng.h"
#include "util/timer.h"
#include "workload/generator.h"

using namespace ube;
using namespace ube::bench;

namespace {

QualityModel ModelWithWeights(const std::vector<double>& weights) {
  QualityModel model;
  model.AddQef(std::make_unique<MatchingQualityQef>(), weights[0]);
  model.AddQef(std::make_unique<CardinalityQef>(), weights[1]);
  model.AddQef(std::make_unique<CoverageQef>(), weights[2]);
  model.AddQef(std::make_unique<RedundancyQef>(), weights[3]);
  model.AddQef(std::make_unique<CharacteristicQef>(
                   kMttfCharacteristic, Aggregation::kWeightedSum),
               weights[4]);
  return model;
}

int SetDifference(const std::vector<SourceId>& a,
                  const std::vector<SourceId>& b) {
  std::vector<SourceId> diff;
  std::set_symmetric_difference(a.begin(), a.end(), b.begin(), b.end(),
                                std::back_inserter(diff));
  return static_cast<int>(diff.size());
}

// GAs of `x` that have no equal GA in `y`.
int GaChanges(const MediatedSchema& x, const MediatedSchema& y) {
  int changed = 0;
  for (const GlobalAttribute& ga : x.gas()) {
    bool found = false;
    for (const GlobalAttribute& other : y.gas()) {
      if (ga == other) {
        found = true;
        break;
      }
    }
    if (!found) ++changed;
  }
  return changed;
}

// Concepts covered by pure GAs of a schema (user-perceived content).
std::vector<int> ConceptsCovered(const MediatedSchema& schema,
                                 const GroundTruth& truth) {
  std::vector<char> covered(static_cast<size_t>(truth.num_concepts()), 0);
  for (const GlobalAttribute& ga : schema.gas()) {
    int concept_id = -2;
    for (const AttributeId& id : ga.attributes()) {
      int c = truth.ConceptOf(id);
      if (c < 0 || (concept_id >= 0 && concept_id != c)) {
        concept_id = -1;
        break;
      }
      concept_id = c;
    }
    if (concept_id >= 0) covered[static_cast<size_t>(concept_id)] = 1;
  }
  std::vector<int> out;
  for (int c = 0; c < truth.num_concepts(); ++c) {
    if (covered[static_cast<size_t>(c)]) out.push_back(c);
  }
  return out;
}

struct RegimeResult {
  int worst_sources = 0;
  int worst_gas = 0;
  int worst_concepts = 0;
};

RegimeResult RunRegime(const BenchArgs& args, SolverKind kind,
                       const char* label) {
  const std::vector<double> base = {0.25, 0.25, 0.20, 0.15, 0.15};
  ProblemSpec spec;
  spec.max_sources = 20;

  GeneratedWorkload baseline_workload = MakeWorkload(200, args.workload_seed);
  GroundTruth truth = baseline_workload.ground_truth;
  Engine baseline_engine(std::move(baseline_workload.universe),
                         ModelWithWeights(base));
  Result<Solution> baseline = baseline_engine.Solve(
      spec, kind, BenchSolverOptions(args.SolverSeed(), args.threads));
  if (!baseline.ok()) {
    std::printf("baseline failed: %s\n",
                baseline.status().ToString().c_str());
    return {};
  }

  std::vector<int> baseline_concepts =
      ConceptsCovered(baseline->mediated_schema, truth);

  std::printf("\n-- %s --\n", label);
  PrintRow({"trial", "src changed", "GAs changed", "concepts +-", "Q(S)"});
  Rng rng(2024);
  int worst_sources = 0, worst_gas = 0, worst_concepts = 0;
  for (int trial = 1; trial <= 10; ++trial) {
    std::vector<double> weights = base;
    double total = 0.0;
    for (double& w : weights) {
      w *= 1.0 + rng.UniformDouble(-0.15, 0.15);
      total += w;
    }
    for (double& w : weights) w /= total;  // renormalize to sum 1

    GeneratedWorkload workload = MakeWorkload(200, args.workload_seed);
    Engine engine(std::move(workload.universe), ModelWithWeights(weights));
    Result<Solution> solution = engine.Solve(
        spec, kind, BenchSolverOptions(args.SolverSeed(), args.threads));
    if (!solution.ok()) {
      std::printf("trial %d failed\n", trial);
      continue;
    }
    int src_delta = SetDifference(baseline->sources, solution->sources);
    int ga_delta = GaChanges(solution->mediated_schema,
                             baseline->mediated_schema);
    std::vector<int> concepts =
        ConceptsCovered(solution->mediated_schema, truth);
    std::vector<int> concept_diff;
    std::set_symmetric_difference(baseline_concepts.begin(),
                                  baseline_concepts.end(), concepts.begin(),
                                  concepts.end(),
                                  std::back_inserter(concept_diff));
    int concept_delta = static_cast<int>(concept_diff.size());
    worst_sources = std::max(worst_sources, src_delta);
    worst_gas = std::max(worst_gas, ga_delta);
    worst_concepts = std::max(worst_concepts, concept_delta);
    PrintRow({Fmt(static_cast<int64_t>(trial)),
              Fmt(static_cast<int64_t>(src_delta)),
              Fmt(static_cast<int64_t>(ga_delta)),
              Fmt(static_cast<int64_t>(concept_delta)),
              Fmt("%.4f", solution->quality)});
  }
  std::printf("worst case (%s): %d sources, %d GAs, %d concepts changed\n",
              label, worst_sources, worst_gas, worst_concepts);
  return {worst_sources, worst_gas, worst_concepts};
}

}  // namespace

int main(int argc, char** argv) {
  BenchHarness bench("sens_weight_perturbation");
  bench.ParseOrExit(argc, argv);
  const BenchArgs& args = bench.args();
  WallTimer total;
  std::printf("§7.4 — robustness to ±15%% weight perturbation "
              "(choose 20 of 200; 10 trials)\n");
  RegimeResult greedy =
      RunRegime(args, SolverKind::kGreedy, "greedy (deterministic argmax)");
  RunRegime(args, SolverKind::kTabu, "tabu (includes search noise)");
  std::printf("\n(paper: at most 1 GA changed, sources rarely changed — "
              "the deterministic regime is the comparable one)\n");
  bench.SetMetric("greedy_worst_sources",
                  static_cast<int64_t>(greedy.worst_sources));
  bench.SetMetric("greedy_worst_gas", static_cast<int64_t>(greedy.worst_gas));
  bench.SetMetric("wall_ms", total.ElapsedMillis());
  return bench.Finish();
}
