// Figure 7: overall solution quality Q(S) for the Figure 6 sweep
// (choose 10-50 of 200 sources, five constraint sets).
//
// Paper shape: quality increases with m (more options to exploit) and
// decreases as constraints are added (fewer valid options).
#include <cstdio>

#include "bench/bench_util.h"
#include "core/engine.h"
#include "util/timer.h"

using namespace ube;
using namespace ube::bench;

int main(int argc, char** argv) {
  BenchHarness bench("fig7_overall_quality");
  bench.ParseOrExit(argc, argv);
  const BenchArgs& args = bench.args();
  WallTimer total;
  std::printf("Figure 7 — overall quality Q(S) vs sources to choose "
              "(|U|=200, tabu search)\n\n");
  GeneratedWorkload workload = MakeWorkload(200, args.workload_seed);
  std::vector<ConstraintSet> sets = PaperConstraintSets(workload);
  Engine engine(std::move(workload.universe), QualityModel::MakeDefault());

  PrintRow({"m", "none", "1 src", "3 src", "5 src", "5 src+2 GA"});
  for (int m = 10; m <= 50; m += 10) {
    std::vector<std::string> row = {Fmt(static_cast<int64_t>(m))};
    for (const ConstraintSet& cs : sets) {
      ProblemSpec spec;
      spec.max_sources = m;
      spec.source_constraints = cs.sources;
      spec.ga_constraints = cs.gas;
      Result<Solution> solution = engine.Solve(
          spec, SolverKind::kTabu,
          BenchSolverOptions(args.SolverSeed(), args.threads));
      if (solution.ok() && m == 50 && cs.sources.empty() && cs.gas.empty()) {
        bench.SetMetric("q_m50_none", solution->quality);
      }
      row.push_back(solution.ok() ? Fmt("%.4f", solution->quality) : "ERR");
    }
    PrintRow(row);
  }
  bench.SetMetric("wall_ms", total.ElapsedMillis());
  return bench.Finish();
}
