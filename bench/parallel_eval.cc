// Neighborhood-evaluation throughput of CandidateEvaluator::QualityBatch
// on the paper-scale 200-source universe: cache-cold batches of sampled
// tabu neighborhoods, scored at 1/2/4/8 threads. Also cross-checks that the
// parallel results are bit-identical to the sequential ones, and reports an
// end-to-end tabu run at each thread count.
//
// Note: the speedup column only shows parallel gain on a multi-core host;
// on a single hardware thread the batch path degenerates gracefully to
// roughly sequential throughput.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "core/engine.h"
#include "optimize/delta_evaluator.h"
#include "optimize/search_state.h"
#include "qef/qef.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace ube;
using namespace ube::bench;

namespace {

// One tabu-style neighborhood sweep: `batches` rounds of `sample` moves
// from an evolving search state. Returns candidates per second.
double MeasureThroughput(const CandidateEvaluator& evaluator, int threads,
                         int batches, int sample,
                         std::vector<double>* qualities_out) {
  evaluator.BeginRun();
  std::unique_ptr<ThreadPool> pool =
      threads > 1 ? std::make_unique<ThreadPool>(threads) : nullptr;
  Rng rng(123);
  SearchState state(evaluator, rng);
  qualities_out->clear();
  int64_t scored = 0;
  WallTimer timer;
  for (int b = 0; b < batches; ++b) {
    std::vector<SearchState::Move> moves;
    std::vector<std::vector<SourceId>> candidates;
    for (int k = 0; k < sample; ++k) {
      SearchState::Move move;
      if (!state.RandomMove(rng, &move)) break;
      moves.push_back(move);
      candidates.push_back(state.Apply(move));
    }
    std::vector<double> qualities =
        evaluator.QualityBatch(candidates, pool.get());
    scored += static_cast<int64_t>(qualities.size());
    qualities_out->insert(qualities_out->end(), qualities.begin(),
                          qualities.end());
    // Walk like tabu would: commit the best sampled move.
    size_t best = 0;
    for (size_t k = 1; k < qualities.size(); ++k) {
      if (qualities[k] > qualities[best]) best = k;
    }
    if (!moves.empty()) state.Commit(moves[best]);
  }
  double seconds = timer.ElapsedSeconds();
  return seconds > 0.0 ? static_cast<double>(scored) / seconds : 0.0;
}

// Same sweep through DeltaEvaluator (the solvers' flip-scoring front end).
// With use_delta the one-move neighborhoods take the incremental path; off,
// every call forwards to QualityBatch — scores are bit-identical either way.
double MeasureDeltaThroughput(const CandidateEvaluator& evaluator,
                              bool use_delta, int batches, int sample,
                              std::vector<double>* qualities_out) {
  evaluator.BeginRun();
  DeltaEvaluator delta(evaluator, use_delta);
  Rng rng(123);
  SearchState state(evaluator, rng);
  qualities_out->clear();
  int64_t scored = 0;
  WallTimer timer;
  for (int b = 0; b < batches; ++b) {
    std::vector<SearchState::Move> moves;
    std::vector<std::vector<SourceId>> candidates;
    for (int k = 0; k < sample; ++k) {
      SearchState::Move move;
      if (!state.RandomMove(rng, &move)) break;
      moves.push_back(move);
      candidates.push_back(state.Apply(move));
    }
    std::vector<double> qualities =
        delta.ScoreNeighborhood(state.sources(), moves, candidates, nullptr);
    scored += static_cast<int64_t>(qualities.size());
    qualities_out->insert(qualities_out->end(), qualities.begin(),
                          qualities.end());
    size_t best = 0;
    for (size_t k = 1; k < qualities.size(); ++k) {
      if (qualities[k] > qualities[best]) best = k;
    }
    if (!moves.empty()) state.Commit(moves[best]);
  }
  double seconds = timer.ElapsedSeconds();
  return seconds > 0.0 ? static_cast<double>(scored) / seconds : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  BenchHarness bench("parallel_eval");
  bool delta_only = false;
  bench.flags().AddBool(
      "--delta",
      "delta section: time the incremental path only (default times both "
      "paths and cross-checks bit-identity)",
      &delta_only);
  bench.ParseOrExit(argc, argv);
  const BenchArgs& args = bench.args();
  WallTimer total;
  std::printf("QualityBatch throughput — 200 sources, choose 20, "
              "64-move neighborhoods, cache-cold per configuration\n");
  std::printf("(hardware threads available: %d)\n\n",
              ThreadPool::HardwareConcurrency());

  GeneratedWorkload workload = MakeWorkload(200, args.workload_seed);
  Engine engine(std::move(workload.universe), QualityModel::MakeDefault());
  ProblemSpec spec;
  spec.max_sources = 20;
  CandidateEvaluator evaluator(engine.universe(), engine.matcher(),
                               engine.quality_model(), spec);

  const int kBatches = 24;
  const int kSample = 64;
  std::vector<double> reference;
  double base = MeasureThroughput(evaluator, 1, kBatches, kSample, &reference);
  bench.SetMetric("cand_per_s_t1", base);

  bool all_identical = true;
  PrintRow({"threads", "cand/s", "speedup", "identical"});
  PrintRow({"1", Fmt("%.1f", base), "1.00x", "ref"});
  for (int threads : {2, 4, 8}) {
    std::vector<double> qualities;
    double rate =
        MeasureThroughput(evaluator, threads, kBatches, kSample, &qualities);
    bool identical = qualities == reference;
    all_identical = all_identical && identical;
    if (threads == 8) bench.SetMetric("cand_per_s_t8", rate);
    PrintRow({Fmt(static_cast<int64_t>(threads)), Fmt("%.1f", rate),
              Fmt("%.2f", base > 0.0 ? rate / base : 0.0) + "x",
              identical ? "yes" : "NO"});
  }
  bench.SetMetric("batch_identical", static_cast<int64_t>(all_identical));

  // Delta axis: single-flip neighborhoods on a data-only model (a matching
  // QEF needs Match(S) and turns the delta path off by design).
  std::printf("\nSingle-flip scoring, data-only model (--delta axis):\n");
  QualityModel data_model;
  data_model.AddQef(std::make_unique<CardinalityQef>(), 0.4);
  data_model.AddQef(std::make_unique<CoverageQef>(), 0.3);
  data_model.AddQef(std::make_unique<RedundancyQef>(), 0.2);
  data_model.AddQef(std::make_unique<CharacteristicQef>(
                        "mttf", Aggregation::kWeightedSum),
                    0.1);
  CandidateEvaluator flip_evaluator(engine.universe(), engine.matcher(),
                                    data_model, spec);
  PrintRow({"path", "cand/s", "speedup", "identical"});
  std::vector<double> delta_scores;
  double delta_rate = MeasureDeltaThroughput(flip_evaluator, true, kBatches,
                                             kSample, &delta_scores);
  bench.SetMetric("delta_cand_per_s", delta_rate);
  if (delta_only) {
    PrintRow({"delta", Fmt("%.1f", delta_rate), "-", "-"});
  } else {
    std::vector<double> full_scores;
    double full_rate = MeasureDeltaThroughput(flip_evaluator, false, kBatches,
                                              kSample, &full_scores);
    bool delta_identical = delta_scores == full_scores;
    bench.SetMetric("delta_off_cand_per_s", full_rate);
    bench.SetMetric("delta_speedup",
                    full_rate > 0.0 ? delta_rate / full_rate : 0.0);
    bench.SetMetric("delta_identical", static_cast<int64_t>(delta_identical));
    PrintRow({"full", Fmt("%.1f", full_rate), "1.00x", "ref"});
    PrintRow({"delta", Fmt("%.1f", delta_rate),
              Fmt("%.2f", full_rate > 0.0 ? delta_rate / full_rate : 0.0) +
                  "x",
              delta_identical ? "yes" : "NO"});
    if (!delta_identical) {
      std::printf("ERROR: delta scores diverged from the full path\n");
      return 1;
    }
  }

  std::printf("\nEnd-to-end tabu search (seed 1), same instance:\n");
  PrintRow({"threads", "time(s)", "quality", "evals"});
  std::vector<SourceId> reference_sources;
  for (int threads : {1, 8}) {
    SolverOptions options = BenchSolverOptions(args.SolverSeed(1), threads);
    options.max_iterations = 120;
    options.stall_iterations = 60;
    WallTimer timer;
    Result<Solution> solution =
        engine.Solve(spec, SolverKind::kTabu, options);
    double seconds = timer.ElapsedSeconds();
    if (!solution.ok()) continue;
    if (threads == 1) {
      reference_sources = solution->sources;
      bench.SetMetric("tabu_t1_ms", seconds * 1e3);
      bench.SetMetric("q_best", solution->quality);
      bench.SetMetric("evals", solution->stats.evaluations);
    }
    PrintRow({Fmt(static_cast<int64_t>(threads)), Fmt("%.2f", seconds),
              Fmt("%.4f", solution->quality),
              Fmt(solution->stats.evaluations)});
    if (threads != 1 && solution->sources != reference_sources) {
      std::printf("ERROR: parallel run diverged from sequential run\n");
      return 1;
    }
  }
  std::printf("\n(solutions are bit-identical across thread counts by "
              "construction)\n");
  bench.SetMetric("wall_ms", total.ElapsedMillis());
  return bench.Finish();
}
