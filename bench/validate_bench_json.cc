// Validates BENCH_*.json files against the perf-trajectory schema
// (EXPERIMENTS.md): a top-level object with string `bench`/`git_commit`,
// numeric `seed`/`threads`/`repeat`, and a non-empty `metrics` object whose
// values are all numbers. Exits 0 when every argument validates, 1
// otherwise. The CI bench-smoke job runs this over the artifacts it
// uploads.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <variant>

#include "util/json.h"

namespace {

using ube::json::Object;
using ube::json::Value;

bool Fail(const std::string& path, const std::string& message) {
  std::fprintf(stderr, "%s: %s\n", path.c_str(), message.c_str());
  return false;
}

bool HasString(const Object& object, const char* key) {
  auto it = object.find(key);
  return it != object.end() &&
         std::holds_alternative<std::string>(it->second.data);
}

bool HasNumber(const Object& object, const char* key) {
  auto it = object.find(key);
  return it != object.end() && std::holds_alternative<double>(it->second.data);
}

bool ValidateFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Fail(path, "cannot open");
  std::ostringstream buffer;
  buffer << file.rdbuf();

  ube::Result<Value> root = ube::json::Parse(buffer.str());
  if (!root.ok()) return Fail(path, root.status().ToString());
  const Object* top = std::get_if<Object>(&root->data);
  if (top == nullptr) return Fail(path, "root must be an object");

  for (const char* key : {"bench", "git_commit"}) {
    if (!HasString(*top, key)) {
      return Fail(path, std::string("missing string key '") + key + "'");
    }
  }
  for (const char* key : {"seed", "threads", "repeat"}) {
    if (!HasNumber(*top, key)) {
      return Fail(path, std::string("missing numeric key '") + key + "'");
    }
  }
  auto metrics_it = top->find("metrics");
  if (metrics_it == top->end()) return Fail(path, "missing 'metrics'");
  const Object* metrics = std::get_if<Object>(&metrics_it->second.data);
  if (metrics == nullptr) return Fail(path, "'metrics' must be an object");
  if (metrics->empty()) return Fail(path, "'metrics' is empty");
  for (const auto& [key, value] : *metrics) {
    if (!std::holds_alternative<double>(value.data)) {
      return Fail(path, "metric '" + key + "' is not a number");
    }
  }
  std::printf("%s: ok (%zu metrics)\n", path.c_str(), metrics->size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s BENCH_file.json...\n", argv[0]);
    return 2;
  }
  bool ok = true;
  for (int i = 1; i < argc; ++i) {
    ok = ValidateFile(argv[i]) && ok;
  }
  return ok ? 0 : 1;
}
