// Validates BENCH_*.json files against the perf-trajectory schema
// (EXPERIMENTS.md): a top-level object with string `bench`/`git_commit`,
// numeric `seed`/`threads`/`repeat`, and a non-empty `metrics` object whose
// values are all numbers. `--require <bench>:<metric>[,<metric>...]`
// additionally pins named metrics for files whose `bench` field matches —
// the CI bench-smoke job uses it to fail when a binary silently stops
// emitting a tracked metric (e.g. micro_ube's delta_flip_speedup). Exits 0
// when every argument validates, 1 otherwise.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "util/json.h"

namespace {

using ube::json::Object;
using ube::json::Value;

bool Fail(const std::string& path, const std::string& message) {
  std::fprintf(stderr, "%s: %s\n", path.c_str(), message.c_str());
  return false;
}

bool HasString(const Object& object, const char* key) {
  auto it = object.find(key);
  return it != object.end() &&
         std::holds_alternative<std::string>(it->second.data);
}

bool HasNumber(const Object& object, const char* key) {
  auto it = object.find(key);
  return it != object.end() && std::holds_alternative<double>(it->second.data);
}

/// One --require clause: metrics that must exist when `bench` matches.
struct Requirement {
  std::string bench;
  std::vector<std::string> metrics;
};

bool ParseRequirement(const std::string& spec, Requirement* out) {
  size_t colon = spec.find(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= spec.size()) {
    return false;
  }
  out->bench = spec.substr(0, colon);
  out->metrics.clear();
  size_t start = colon + 1;
  while (start <= spec.size()) {
    size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    if (comma > start) out->metrics.push_back(spec.substr(start, comma - start));
    start = comma + 1;
  }
  return !out->metrics.empty();
}

bool ValidateFile(const std::string& path,
                  const std::vector<Requirement>& requirements) {
  std::ifstream file(path);
  if (!file) return Fail(path, "cannot open");
  std::ostringstream buffer;
  buffer << file.rdbuf();

  ube::Result<Value> root = ube::json::Parse(buffer.str());
  if (!root.ok()) return Fail(path, root.status().ToString());
  const Object* top = std::get_if<Object>(&root->data);
  if (top == nullptr) return Fail(path, "root must be an object");

  for (const char* key : {"bench", "git_commit"}) {
    if (!HasString(*top, key)) {
      return Fail(path, std::string("missing string key '") + key + "'");
    }
  }
  for (const char* key : {"seed", "threads", "repeat"}) {
    if (!HasNumber(*top, key)) {
      return Fail(path, std::string("missing numeric key '") + key + "'");
    }
  }
  auto metrics_it = top->find("metrics");
  if (metrics_it == top->end()) return Fail(path, "missing 'metrics'");
  const Object* metrics = std::get_if<Object>(&metrics_it->second.data);
  if (metrics == nullptr) return Fail(path, "'metrics' must be an object");
  if (metrics->empty()) return Fail(path, "'metrics' is empty");
  for (const auto& [key, value] : *metrics) {
    if (!std::holds_alternative<double>(value.data)) {
      return Fail(path, "metric '" + key + "' is not a number");
    }
  }
  const std::string& bench_name =
      std::get<std::string>(top->find("bench")->second.data);
  for (const Requirement& req : requirements) {
    if (req.bench != bench_name) continue;
    for (const std::string& metric : req.metrics) {
      if (!HasNumber(*metrics, metric.c_str())) {
        return Fail(path, "required metric '" + metric + "' missing for bench '" +
                              bench_name + "'");
      }
    }
  }
  std::printf("%s: ok (%zu metrics)\n", path.c_str(), metrics->size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<Requirement> requirements;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--require") {
      Requirement req;
      if (i + 1 >= argc || !ParseRequirement(argv[++i], &req)) {
        std::fprintf(stderr, "--require wants <bench>:<metric>[,<metric>...]\n");
        return 2;
      }
      requirements.push_back(std::move(req));
      continue;
    }
    paths.push_back(std::move(arg));
  }
  if (paths.empty()) {
    std::fprintf(stderr,
                 "usage: %s [--require bench:metric[,metric...]]... "
                 "BENCH_file.json...\n",
                 argv[0]);
    return 2;
  }
  bool ok = true;
  for (const std::string& path : paths) {
    ok = ValidateFile(path, requirements) && ok;
  }
  return ok ? 0 : 1;
}
