// Design ablations for the reconstruction choices documented in DESIGN.md:
//   1. Redundancy formula: overlap-factor (default) vs union-ratio.
//   2. Similarity-graph floor: edge count and build time trade-off.
//   3. Tabu candidate-list size: quality vs time.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "core/engine.h"
#include "matching/similarity_graph.h"
#include "util/timer.h"
#include "workload/generator.h"

using namespace ube;
using namespace ube::bench;

namespace {

QualityModel ModelWithRedundancy(RedundancyQef::Mode mode) {
  QualityModel model;
  model.AddQef(std::make_unique<MatchingQualityQef>(), 0.25);
  model.AddQef(std::make_unique<CardinalityQef>(), 0.25);
  model.AddQef(std::make_unique<CoverageQef>(), 0.20);
  model.AddQef(std::make_unique<RedundancyQef>(mode), 0.15);
  model.AddQef(std::make_unique<CharacteristicQef>(
                   kMttfCharacteristic, Aggregation::kWeightedSum),
               0.15);
  return model;
}

}  // namespace

int main(int argc, char** argv) {
  BenchHarness bench("ablation_design");
  bench.ParseOrExit(argc, argv);
  const BenchArgs& args = bench.args();
  WallTimer total;
  std::printf("Design ablations (choose 20 of 200 unless noted)\n");

  // --- 1. redundancy formula -------------------------------------------
  std::printf("\n-- redundancy formula --\n");
  PrintRow({"mode", "Q(S)", "redundancy", "coverage"});
  for (auto mode : {RedundancyQef::Mode::kOverlapFactor,
                    RedundancyQef::Mode::kUnionRatio}) {
    GeneratedWorkload workload = MakeWorkload(200, args.workload_seed);
    Engine engine(std::move(workload.universe), ModelWithRedundancy(mode));
    ProblemSpec spec;
    spec.max_sources = 20;
    Result<Solution> solution = engine.Solve(
        spec, SolverKind::kTabu,
        BenchSolverOptions(args.SolverSeed(), args.threads));
    if (!solution.ok()) continue;
    PrintRow({mode == RedundancyQef::Mode::kOverlapFactor ? "overlap-factor"
                                                          : "union-ratio",
              Fmt("%.4f", solution->quality),
              Fmt("%.4f", solution->breakdown.scores[3]),
              Fmt("%.4f", solution->breakdown.scores[2])});
  }

  // --- 2. similarity floor ----------------------------------------------
  std::printf("\n-- similarity-graph floor (|U|=400) --\n");
  PrintRow({"floor", "edges", "build(s)"});
  for (double floor : {0.0, 0.25, 0.5, 0.75}) {
    GeneratedWorkload workload = MakeWorkload(400, args.workload_seed);
    WallTimer timer;
    SimilarityGraph graph =
        SimilarityGraph::WithDefaults(workload.universe, floor);
    PrintRow({Fmt("%.2f", floor),
              Fmt(static_cast<int64_t>(graph.num_edges())),
              Fmt("%.3f", timer.ElapsedSeconds())});
  }

  // --- 3. tabu candidate-list size --------------------------------------
  std::printf("\n-- tabu candidate-list size --\n");
  PrintRow({"moves/iter", "Q(S)", "time(s)", "evaluations"});
  GeneratedWorkload workload = MakeWorkload(200, args.workload_seed);
  Engine engine(std::move(workload.universe), QualityModel::MakeDefault());
  for (int moves : {8, 16, 32, 64, 128}) {
    ProblemSpec spec;
    spec.max_sources = 20;
    SolverOptions options =
        BenchSolverOptions(args.SolverSeed(), args.threads);
    options.candidate_moves = moves;
    WallTimer timer;
    Result<Solution> solution =
        engine.Solve(spec, SolverKind::kTabu, options);
    if (!solution.ok()) continue;
    if (moves == 32) {
      bench.SetMetric("q_moves32", solution->quality);
      bench.SetMetric("evals_moves32", solution->stats.evaluations);
    }
    PrintRow({Fmt(static_cast<int64_t>(moves)),
              Fmt("%.4f", solution->quality),
              Fmt("%.2f", timer.ElapsedSeconds()),
              Fmt(solution->stats.evaluations)});
  }
  bench.SetMetric("wall_ms", total.ElapsedMillis());
  return bench.Finish();
}
