// Figure 8: sensitivity to QEF weights — cardinality of the chosen
// solution as the weight of the Card QEF varies from 0.1 to 1.0 (remaining
// weights all equal, choose 20 of 200 sources).
//
// Paper shape: solution cardinality rises with the Card weight and
// flattens once the top-cardinality sources satisfying the matching
// threshold are already being chosen (around weight 0.5).
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "core/engine.h"
#include "util/timer.h"
#include "workload/generator.h"

using namespace ube;
using namespace ube::bench;

namespace {

QualityModel ModelWithCardWeight(double card_weight) {
  double rest = (1.0 - card_weight) / 4.0;
  QualityModel model;
  model.AddQef(std::make_unique<MatchingQualityQef>(), rest);
  model.AddQef(std::make_unique<CardinalityQef>(), card_weight);
  model.AddQef(std::make_unique<CoverageQef>(), rest);
  model.AddQef(std::make_unique<RedundancyQef>(), rest);
  model.AddQef(std::make_unique<CharacteristicQef>(
                   kMttfCharacteristic, Aggregation::kWeightedSum),
               rest);
  return model;
}

}  // namespace

int main(int argc, char** argv) {
  BenchHarness bench("fig8_weight_sensitivity");
  bench.ParseOrExit(argc, argv);
  const BenchArgs& args = bench.args();
  WallTimer total;
  std::printf("Figure 8 — solution cardinality vs Card QEF weight "
              "(choose 20 of 200; other weights equal)\n\n");
  PrintRow({"w(Card)", "solution card", "Card(S)", "Q(S)"});

  for (int step = 1; step <= 10; ++step) {
    double weight = step / 10.0;
    GeneratedWorkload workload = MakeWorkload(200, args.workload_seed);
    Engine engine(std::move(workload.universe), ModelWithCardWeight(weight));
    ProblemSpec spec;
    spec.max_sources = 20;
    Result<Solution> solution = engine.Solve(
        spec, SolverKind::kTabu,
        BenchSolverOptions(args.SolverSeed(), args.threads));
    if (!solution.ok()) {
      std::printf("w=%.1f: %s\n", weight,
                  solution.status().ToString().c_str());
      continue;
    }
    int64_t total_card = 0;
    for (SourceId s : solution->sources) {
      total_card += engine.universe().source(s).cardinality();
    }
    double card_fraction =
        static_cast<double>(total_card) /
        static_cast<double>(engine.universe().TotalCardinality());
    if (step == 10) bench.SetMetric("card_fraction_w10", card_fraction);
    PrintRow({Fmt("%.1f", weight), Fmt(total_card),
              Fmt("%.4f", card_fraction), Fmt("%.4f", solution->quality)});
  }
  bench.SetMetric("wall_ms", total.ElapsedMillis());
  return bench.Finish();
}
