// Domain-coherence experiment motivated by Section 1: source discovery
// (e.g. querying CompletePlanet for "theater") returns many sources, only
// some of which belong to the domain the user cares about. µBE's matching
// QEF should steer source selection toward a semantically coherent subset
// — "if a data source expresses the concepts it contains in a way that is
// different from other data sources, then including this source will
// reduce the semantic coherence of the global mediated schema".
//
// Universe: 50% Books + 20% Airfares + 15% Movies + 15% MusicRecords
// (300 sources). We sweep the matching-quality weight and report how many
// chosen sources come from the majority (Books) domain, and the purity of
// the resulting mediated schema.
#include <algorithm>
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "core/engine.h"
#include "util/timer.h"
#include "workload/domains.h"
#include "workload/generator.h"

using namespace ube;
using namespace ube::bench;

namespace {

// F1 alone is blind to incoherence (every domain forms its own perfect
// clusters), so the coherence knob is the SchemaCoverageQef: the fraction
// of selected attributes the mediated schema covers (see qef/qef.h).
QualityModel ModelWithCoherenceWeight(double coherence_weight) {
  double rest = (1.0 - coherence_weight) / 5.0;
  QualityModel model;
  model.AddQef(std::make_unique<SchemaCoverageQef>(), coherence_weight);
  model.AddQef(std::make_unique<MatchingQualityQef>(), rest);
  model.AddQef(std::make_unique<CardinalityQef>(), rest);
  model.AddQef(std::make_unique<CoverageQef>(), rest);
  model.AddQef(std::make_unique<RedundancyQef>(), rest);
  model.AddQef(std::make_unique<CharacteristicQef>(
                   kMttfCharacteristic, Aggregation::kWeightedSum),
               rest);
  return model;
}

}  // namespace

int main(int argc, char** argv) {
  BenchHarness bench("domain_selection");
  bench.ParseOrExit(argc, argv);
  const BenchArgs& args = bench.args();
  WallTimer total;
  std::printf("Domain coherence — mixed universe (50%% books, 20%% "
              "airfares, 15%% movies, 15%% musicrecords; |U|=300, m=20)\n\n");
  PrintRow({"w(coher)", "books", "airfares", "movies", "music", "GAs",
            "Q(S)"}, 10);

  for (double weight : {0.0, 0.15, 0.3, 0.5, 0.7, 0.9}) {
    MixedWorkloadConfig config;
    config.base.num_sources = 300;
    config.base.seed = args.workload_seed;
    config.base.scale = 0.01;
    config.mix = {{FindDomain("books"), 0.50},
                  {FindDomain("airfares"), 0.20},
                  {FindDomain("movies"), 0.15},
                  {FindDomain("musicrecords"), 0.15}};
    Result<MixedWorkload> workload = GenerateMixedWorkload(config);
    if (!workload.ok()) {
      std::printf("generation failed: %s\n",
                  workload.status().ToString().c_str());
      return 1;
    }
    std::vector<int> domain_of = workload->domain_of;
    Engine engine(std::move(workload->universe),
                  ModelWithCoherenceWeight(weight));
    ProblemSpec spec;
    spec.max_sources = 20;
    Result<Solution> solution = engine.Solve(
        spec, SolverKind::kTabu,
        BenchSolverOptions(args.SolverSeed(), args.threads));
    if (!solution.ok()) continue;

    int counts[4] = {0, 0, 0, 0};
    for (SourceId s : solution->sources) {
      ++counts[domain_of[static_cast<size_t>(s)]];
    }
    if (weight == 0.9) {
      bench.SetMetric("books_w090", static_cast<int64_t>(counts[0]));
    }
    PrintRow({Fmt("%.2f", weight), Fmt(static_cast<int64_t>(counts[0])),
              Fmt(static_cast<int64_t>(counts[1])),
              Fmt(static_cast<int64_t>(counts[2])),
              Fmt(static_cast<int64_t>(counts[3])),
              Fmt(static_cast<int64_t>(solution->mediated_schema.num_gas())),
              Fmt("%.4f", solution->quality)},
             10);
  }
  std::printf(
      "\n(shape: raising the coherence weight eliminates sources whose\n"
      "attributes stay unmatched — the lexically most isolated domain\n"
      "drops out first — and the selection settles on a few internally\n"
      "coherent domain clusters; several coherent clusters can coexist\n"
      "because schema-coverage is per-attribute, not per-domain)\n");
  bench.SetMetric("wall_ms", total.ElapsedMillis());
  return bench.Finish();
}
