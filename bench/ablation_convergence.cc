// Convergence ablation supporting the §6 solver-choice discussion: the
// incumbent quality each solver reaches as a function of candidate
// evaluations spent (choose 20 of 200, identical instance and seed).
//
// Shape of interest: how quickly each heuristic reaches the plateau, and
// where the plateau lies — robustness per unit of evaluation budget.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/engine.h"
#include "util/timer.h"

using namespace ube;
using namespace ube::bench;

namespace {

// Incumbent quality at an evaluation checkpoint (last trace point at or
// before it); 0 if the solver had no incumbent yet.
double QualityAt(const std::vector<TracePoint>& trace, int64_t evaluations) {
  double quality = 0.0;
  for (const TracePoint& point : trace) {
    if (point.evaluations > evaluations) break;
    quality = point.best_quality;
  }
  return quality;
}

}  // namespace

int main(int argc, char** argv) {
  BenchHarness bench("ablation_convergence");
  bench.ParseOrExit(argc, argv);
  const BenchArgs& args = bench.args();
  WallTimer total;
  std::printf("Convergence — incumbent Q(S) vs evaluations spent "
              "(choose 20 of 200, seed 3)\n\n");
  GeneratedWorkload workload = MakeWorkload(200, args.workload_seed);
  Engine engine(std::move(workload.universe), QualityModel::MakeDefault());
  ProblemSpec spec;
  spec.max_sources = 20;

  const std::vector<int64_t> checkpoints = {100,  250,  500,  1000,
                                            2000, 4000, 8000};
  std::vector<std::string> header = {"solver"};
  for (int64_t c : checkpoints) header.push_back(Fmt(c));
  PrintRow(header, 10);

  for (SolverKind kind : {SolverKind::kTabu, SolverKind::kLocalSearch,
                          SolverKind::kAnnealing, SolverKind::kPso,
                          SolverKind::kRandom}) {
    SolverOptions options =
        BenchSolverOptions(args.SolverSeed(3), args.threads);
    options.record_trace = true;
    options.max_iterations = 400;
    options.stall_iterations = 0;  // run the full budget
    options.random_samples = 8000;
    Result<Solution> solution = engine.Solve(spec, kind, options);
    if (!solution.ok()) continue;
    if (kind == SolverKind::kTabu) {
      bench.SetMetric("tabu_q_at_8000",
                      QualityAt(solution->stats.trace, 8000));
    }
    std::vector<std::string> row = {std::string(SolverKindName(kind))};
    for (int64_t c : checkpoints) {
      row.push_back(Fmt("%.4f", QualityAt(solution->stats.trace, c)));
    }
    PrintRow(row, 10);
  }
  std::printf("\n(each cell: incumbent quality after that many candidate "
              "evaluations)\n");
  bench.SetMetric("wall_ms", total.ElapsedMillis());
  return bench.Finish();
}
