// Shared helpers for the paper-reproduction bench binaries.
//
// Every binary prints the rows/series of one table or figure from the
// paper's Section 7 on a scaled-down substrate (see EXPERIMENTS.md for the
// scaling rationale); absolute numbers differ from the 2007 testbed, the
// shapes are what is being reproduced.
#ifndef UBE_BENCH_BENCH_UTIL_H_
#define UBE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "core/engine.h"
#include "workload/generator.h"

namespace ube::bench {

/// The paper's experimental universe (Section 7.1) at bench scale: schemas
/// and perturbation identical to the paper, data volumes scaled by `scale`.
inline GeneratedWorkload MakeWorkload(int num_sources,
                                      uint64_t seed = kDefaultWorkloadSeed,
                                      double scale = 0.01) {
  WorkloadConfig config;
  config.num_sources = num_sources;
  config.seed = seed;
  config.scale = scale;
  return GenerateWorkload(config);
}

/// Solver budget used by the figure benches. Smaller than the library
/// defaults so a full sweep stays in the minutes range on one core.
/// `num_threads` feeds SolverOptions::num_threads (1 = sequential, 0 =
/// hardware concurrency); solutions are identical either way, only
/// wall-clock changes.
inline SolverOptions BenchSolverOptions(uint64_t seed = 42,
                                        int num_threads = 1) {
  SolverOptions options;
  options.seed = seed;
  options.max_iterations = 200;
  options.stall_iterations = 50;
  options.num_threads = num_threads;
  return options;
}

/// The constraint sets of Figures 5-7: none, 1, 3, 5 source constraints,
/// and 5 source + 2 GA constraints. Source constraints are "random sources
/// with schemas fully conformant to one of the original BAMM schemas"
/// (our exact-copy sources, ids < 50); the GA constraints are accurate
/// matchings of up to `ga_size` attributes of one concept across distinct
/// constrained-eligible sources.
struct ConstraintSet {
  std::string label;
  std::vector<SourceId> sources;
  std::vector<GlobalAttribute> gas;
};

inline std::vector<ConstraintSet> PaperConstraintSets(
    const GeneratedWorkload& workload, int ga_size = 5) {
  // Deterministically pick conformant sources: 7, 13, 21, 34, 42 (< 50).
  const std::vector<SourceId> pool = {7, 13, 21, 34, 42};
  std::vector<ConstraintSet> sets;
  sets.push_back({"no constraints", {}, {}});
  sets.push_back({"1 source",
                  {pool.begin(), pool.begin() + 1},
                  {}});
  sets.push_back({"3 sources",
                  {pool.begin(), pool.begin() + 3},
                  {}});
  sets.push_back({"5 sources", pool, {}});

  // Two accurate GA constraints: for two concepts, gather up to `ga_size`
  // attributes with that concept from distinct sources. Attributes are
  // drawn from the constrained pool first, then from other exact-copy
  // sources, so the implied source constraints stay small enough for the
  // paper's smallest m (10).
  std::vector<GlobalAttribute> gas;
  const Universe& universe = workload.universe;
  const GroundTruth& truth = workload.ground_truth;
  std::vector<SourceId> candidates = pool;
  for (SourceId s = 0; s < universe.num_sources() && s < 50; ++s) {
    bool in_pool = false;
    for (SourceId p : pool) in_pool = in_pool || (p == s);
    if (!in_pool) candidates.push_back(s);
  }
  std::vector<char> used_extra(static_cast<size_t>(universe.num_sources()),
                               0);
  int extra_budget = 5;  // keep |required| <= |pool| + 5 = 10
  for (int concept_id : {0 /*title*/, 1 /*author*/}) {
    GlobalAttribute ga;
    for (SourceId s : candidates) {
      if (ga.size() >= ga_size) break;
      bool in_pool = false;
      for (SourceId p : pool) in_pool = in_pool || (p == s);
      if (!in_pool && !used_extra[static_cast<size_t>(s)] &&
          extra_budget <= 0) {
        continue;
      }
      const SourceSchema& schema = universe.source(s).schema();
      for (int a = 0; a < schema.num_attributes(); ++a) {
        if (truth.ConceptOf(AttributeId{s, a}) == concept_id) {
          ga.Add(AttributeId{s, a});
          if (!in_pool && !used_extra[static_cast<size_t>(s)]) {
            used_extra[static_cast<size_t>(s)] = 1;
            --extra_budget;
          }
          break;  // one attribute per source
        }
      }
    }
    if (ga.size() >= 2) gas.push_back(std::move(ga));
  }
  sets.push_back({"5 sources + 2 GAs", pool, gas});
  return sets;
}

/// printf helper for fixed-width table rows.
inline void PrintRow(const std::vector<std::string>& cells, int width = 14) {
  for (const std::string& cell : cells) {
    std::printf("%-*s", width, cell.c_str());
  }
  std::printf("\n");
}

inline std::string Fmt(const char* format, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), format, value);
  return buffer;
}

inline std::string Fmt(int64_t value) { return std::to_string(value); }

}  // namespace ube::bench

#endif  // UBE_BENCH_BENCH_UTIL_H_
