// Churn sweep: incremental maintenance + incumbent repair vs full re-solve
// per event batch, over the live catalog feed.
//
// Sweeps the churn rate over the medium BAMM universe. For each rate the
// same deterministic ChurnTrace is played twice through Engine::RunContinuous
// — once in the live repair-then-escalate mode, once in the
// full-re-solve-every-batch baseline — over byte-identical starting
// universes. Reported maintenance time is the sum of per-batch solve/repair
// wall time (the shared initial solve and graph build are excluded; both
// modes pay them identically). Expected shape: repair stays ~an order of
// magnitude cheaper per batch while final quality matches the baseline,
// with occasional escalations absorbing incumbent wipeouts.
//
// --sources N and --horizon-ms H shrink the sweep for smoke runs (CI).
#include <cstdio>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "catalog/change_feed.h"
#include "core/engine.h"
#include "source/flaky.h"
#include "util/timer.h"

using namespace ube;
using namespace ube::bench;

namespace {

struct ModeOutcome {
  bool ok = false;
  double maintain_ms = 0.0;  // Σ per-batch repair/solve wall time
  double quality = 0.0;      // final incumbent quality
  int batches = 0;
  int repairs = 0;
  int escalations = 0;
  int full_solves = 0;
  int drift_events = 0;
  int64_t evaluations = 0;        // repair + escalation evals, all batches
  int64_t repair_evaluations = 0; // repair-only share
};

ModeOutcome RunMode(const Universe& universe, const ChurnTrace& trace,
                    const ProblemSpec& spec, const ContinuousOptions& options) {
  ModeOutcome outcome;
  Engine engine(CloneUniverse(universe), QualityModel::MakeDefault());
  Result<ContinuousReport> report = engine.RunContinuous(spec, trace, options);
  if (!report.ok()) {
    std::fprintf(stderr, "RunContinuous failed: %s\n",
                 report.status().ToString().c_str());
    return outcome;
  }
  outcome.ok = true;
  outcome.quality = report->final_solution.quality;
  outcome.batches = static_cast<int>(report->steps.size());
  outcome.repairs = report->repairs;
  outcome.escalations = report->escalations;
  outcome.full_solves = report->full_solves;
  outcome.drift_events = report->drift_events;
  outcome.repair_evaluations = report->repair_evaluations;
  for (const ContinuousStep& step : report->steps) {
    outcome.maintain_ms += step.elapsed_ms;
    outcome.evaluations += step.evaluations;
  }
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  BenchHarness bench("churn_sweep");
  int num_sources = 120;
  int horizon_ms = 20'000;
  bench.flags().AddInt("--sources", "universe size (default 120)",
                       &num_sources);
  bench.flags().AddInt("--horizon-ms", "simulated feed horizon in ms",
                       &horizon_ms);
  bench.ParseOrExit(argc, argv);
  const BenchArgs& args = bench.args();
  WallTimer total;

  std::printf("Churn sweep — incumbent repair vs full re-solve per batch "
              "(|U|=%d, m=10, horizon=%dms, tabu escalation)\n\n",
              num_sources, horizon_ms);

  GeneratedWorkload workload = MakeWorkload(num_sources, args.workload_seed);
  ProblemSpec spec;
  spec.max_sources = 10;

  ContinuousOptions repair_mode;
  repair_mode.solver_options = BenchSolverOptions(args.SolverSeed(),
                                                  args.threads);
  ContinuousOptions baseline_mode = repair_mode;
  baseline_mode.mode = ContinuousOptions::Mode::kFullEverytime;

  PrintRow({"events/s", "events", "batches", "repairs", "escal",
            "repair ms", "full ms", "speedup", "Q(repair)", "Q(full)"},
           11);
  const std::vector<double> sweep = {0.5, 1.0, 2.0, 4.0};
  for (double rate : sweep) {
    ChurnFeedConfig feed;
    feed.seed = args.workload_seed ^ 0xc4a7u;
    feed.events_per_sec = rate;
    feed.horizon_ms = horizon_ms;
    ChurnTrace trace = GenerateChurnTrace(workload.universe, feed).value();

    ModeOutcome repaired = RunMode(workload.universe, trace, spec,
                                   repair_mode);
    ModeOutcome full = RunMode(workload.universe, trace, spec, baseline_mode);
    if (!repaired.ok || !full.ok) continue;
    const double speedup =
        repaired.maintain_ms > 0.0 ? full.maintain_ms / repaired.maintain_ms
                                   : 0.0;
    PrintRow({Fmt("%.1f", rate),
              Fmt(static_cast<int64_t>(trace.events.size())),
              Fmt(static_cast<int64_t>(repaired.batches)),
              Fmt(static_cast<int64_t>(repaired.repairs)),
              Fmt(static_cast<int64_t>(repaired.escalations)),
              Fmt("%.1f", repaired.maintain_ms),
              Fmt("%.1f", full.maintain_ms), Fmt("%.1fx", speedup),
              Fmt("%.4f", repaired.quality), Fmt("%.4f", full.quality)},
             11);
    // Headline metrics from the 2 events/s point (the paper-scale medium
    // churn regime the acceptance bar names).
    if (rate == 2.0) {
      bench.SetMetric("speedup_x", speedup);
      bench.SetMetric("q_repair", repaired.quality);
      bench.SetMetric("q_full", full.quality);
      bench.SetMetric("quality_delta", repaired.quality - full.quality);
      bench.SetMetric("repair_maintain_ms", repaired.maintain_ms);
      bench.SetMetric("full_maintain_ms", full.maintain_ms);
      bench.SetMetric("events", static_cast<int64_t>(trace.events.size()));
      bench.SetMetric("escalations",
                      static_cast<int64_t>(repaired.escalations));
      bench.SetMetric("repair_evals", repaired.evaluations);
      bench.SetMetric("full_evals", full.evaluations);
    }
  }

  // --- drift-fraction axis: adaptive vs fixed repair budget --------------
  //
  // Scales the schema-drift weights (attribute rename/add/drop) from zero
  // (the pre-drift source-level feed) to heavy, at the medium 2 events/s
  // churn rate, and plays each trace through the live mode twice: once with
  // the adaptive repair-budget controller (the default), once with the
  // fixed budget it replaces. The acceptance bar: adaptive reaches
  // equal-or-better quality at no more total evaluations.
  std::printf("\nDrift sweep — adaptive vs fixed repair budget "
              "(2 events/s, drift weights scaled)\n\n");
  // Both modes run a wide repair neighborhood from a small base budget
  // under a tight quality bar, so the controller's whole policy surface is
  // live: escalations double the adaptive budget, cheap converged repairs
  // shrink it back. Repair is steepest ascent from a barely damaged
  // incumbent, so it converges within the smallest budget here and the two
  // modes produce identical incumbents — the bar this sweep pins is
  // equal-or-better quality at no more total evaluations, i.e. adaptivity
  // bounds the starved worst case without ever costing quality or work.
  ContinuousOptions adaptive_mode = repair_mode;
  adaptive_mode.repair.candidate_moves = 32;  // wide, budget-hungry moves
  adaptive_mode.repair.eval_budget = 48;      // ~1.5 iterations when starved
  adaptive_mode.adaptive.min_eval_budget = 16;
  adaptive_mode.escalation_fraction = 0.97;  // tight quality bar
  ContinuousOptions fixed_mode = adaptive_mode;
  fixed_mode.adaptive.enabled = false;

  PrintRow({"drift x", "events", "drift ev", "Q(adapt)", "Q(fixed)",
            "evals(a)", "evals(f)", "escal%"},
           11);
  const std::vector<double> drift_sweep = {0.0, 0.5, 1.0, 2.0};
  for (double fraction : drift_sweep) {
    ChurnFeedConfig feed;
    feed.seed = args.workload_seed ^ 0xd41f7u;
    feed.events_per_sec = 2.0;
    feed.horizon_ms = horizon_ms;
    feed.attr_rename_weight *= fraction;
    feed.attr_add_weight *= fraction;
    feed.attr_drop_weight *= fraction;
    ChurnTrace trace = GenerateChurnTrace(workload.universe, feed).value();

    ModeOutcome adaptive = RunMode(workload.universe, trace, spec,
                                   adaptive_mode);
    ModeOutcome fixed = RunMode(workload.universe, trace, spec, fixed_mode);
    if (!adaptive.ok || !fixed.ok) continue;
    const double escalation_rate =
        adaptive.batches > 0
            ? static_cast<double>(adaptive.escalations) /
                  static_cast<double>(adaptive.batches)
            : 0.0;
    PrintRow({Fmt("%.1f", fraction),
              Fmt(static_cast<int64_t>(trace.events.size())),
              Fmt(static_cast<int64_t>(adaptive.drift_events)),
              Fmt("%.4f", adaptive.quality), Fmt("%.4f", fixed.quality),
              Fmt(adaptive.evaluations), Fmt(fixed.evaluations),
              Fmt("%.1f%%", 100.0 * escalation_rate)},
             11);
    // Headline metrics from the 1x point (the issue's drift regime).
    if (fraction == 1.0) {
      bench.SetMetric("drift_events",
                      static_cast<int64_t>(adaptive.drift_events));
      bench.SetMetric("adaptive_repair_evals", adaptive.repair_evaluations);
      bench.SetMetric("fixed_repair_evals", fixed.repair_evaluations);
      bench.SetMetric("adaptive_total_evals", adaptive.evaluations);
      bench.SetMetric("fixed_total_evals", fixed.evaluations);
      bench.SetMetric("escalation_rate", escalation_rate);
      bench.SetMetric("q_adaptive", adaptive.quality);
      bench.SetMetric("q_fixed", fixed.quality);
      bench.SetMetric("adaptive_quality_delta",
                      adaptive.quality - fixed.quality);
    }
  }

  bench.SetMetric("wall_ms", total.ElapsedMillis());
  return bench.Finish();
}
