// Churn sweep: incremental maintenance + incumbent repair vs full re-solve
// per event batch, over the live catalog feed.
//
// Sweeps the churn rate over the medium BAMM universe. For each rate the
// same deterministic ChurnTrace is played twice through Engine::RunContinuous
// — once in the live repair-then-escalate mode, once in the
// full-re-solve-every-batch baseline — over byte-identical starting
// universes. Reported maintenance time is the sum of per-batch solve/repair
// wall time (the shared initial solve and graph build are excluded; both
// modes pay them identically). Expected shape: repair stays ~an order of
// magnitude cheaper per batch while final quality matches the baseline,
// with occasional escalations absorbing incumbent wipeouts.
//
// --sources N and --horizon-ms H shrink the sweep for smoke runs (CI).
#include <cstdio>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "catalog/change_feed.h"
#include "core/engine.h"
#include "source/flaky.h"
#include "util/timer.h"

using namespace ube;
using namespace ube::bench;

namespace {

struct ModeOutcome {
  bool ok = false;
  double maintain_ms = 0.0;  // Σ per-batch repair/solve wall time
  double quality = 0.0;      // final incumbent quality
  int batches = 0;
  int repairs = 0;
  int escalations = 0;
  int full_solves = 0;
  int64_t evaluations = 0;
};

ModeOutcome RunMode(const Universe& universe, const ChurnTrace& trace,
                    const ProblemSpec& spec, const ContinuousOptions& options) {
  ModeOutcome outcome;
  Engine engine(CloneUniverse(universe), QualityModel::MakeDefault());
  Result<ContinuousReport> report = engine.RunContinuous(spec, trace, options);
  if (!report.ok()) {
    std::fprintf(stderr, "RunContinuous failed: %s\n",
                 report.status().ToString().c_str());
    return outcome;
  }
  outcome.ok = true;
  outcome.quality = report->final_solution.quality;
  outcome.batches = static_cast<int>(report->steps.size());
  outcome.repairs = report->repairs;
  outcome.escalations = report->escalations;
  outcome.full_solves = report->full_solves;
  for (const ContinuousStep& step : report->steps) {
    outcome.maintain_ms += step.elapsed_ms;
    outcome.evaluations += step.evaluations;
  }
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  BenchHarness bench("churn_sweep");
  int num_sources = 120;
  int horizon_ms = 20'000;
  bench.flags().AddInt("--sources", "universe size (default 120)",
                       &num_sources);
  bench.flags().AddInt("--horizon-ms", "simulated feed horizon in ms",
                       &horizon_ms);
  bench.ParseOrExit(argc, argv);
  const BenchArgs& args = bench.args();
  WallTimer total;

  std::printf("Churn sweep — incumbent repair vs full re-solve per batch "
              "(|U|=%d, m=10, horizon=%dms, tabu escalation)\n\n",
              num_sources, horizon_ms);

  GeneratedWorkload workload = MakeWorkload(num_sources, args.workload_seed);
  ProblemSpec spec;
  spec.max_sources = 10;

  ContinuousOptions repair_mode;
  repair_mode.solver_options = BenchSolverOptions(args.SolverSeed(),
                                                  args.threads);
  ContinuousOptions baseline_mode = repair_mode;
  baseline_mode.mode = ContinuousOptions::Mode::kFullEverytime;

  PrintRow({"events/s", "events", "batches", "repairs", "escal",
            "repair ms", "full ms", "speedup", "Q(repair)", "Q(full)"},
           11);
  const std::vector<double> sweep = {0.5, 1.0, 2.0, 4.0};
  for (double rate : sweep) {
    ChurnFeedConfig feed;
    feed.seed = args.workload_seed ^ 0xc4a7u;
    feed.events_per_sec = rate;
    feed.horizon_ms = horizon_ms;
    ChurnTrace trace = GenerateChurnTrace(workload.universe, feed);

    ModeOutcome repaired = RunMode(workload.universe, trace, spec,
                                   repair_mode);
    ModeOutcome full = RunMode(workload.universe, trace, spec, baseline_mode);
    if (!repaired.ok || !full.ok) continue;
    const double speedup =
        repaired.maintain_ms > 0.0 ? full.maintain_ms / repaired.maintain_ms
                                   : 0.0;
    PrintRow({Fmt("%.1f", rate),
              Fmt(static_cast<int64_t>(trace.events.size())),
              Fmt(static_cast<int64_t>(repaired.batches)),
              Fmt(static_cast<int64_t>(repaired.repairs)),
              Fmt(static_cast<int64_t>(repaired.escalations)),
              Fmt("%.1f", repaired.maintain_ms),
              Fmt("%.1f", full.maintain_ms), Fmt("%.1fx", speedup),
              Fmt("%.4f", repaired.quality), Fmt("%.4f", full.quality)},
             11);
    // Headline metrics from the 2 events/s point (the paper-scale medium
    // churn regime the acceptance bar names).
    if (rate == 2.0) {
      bench.SetMetric("speedup_x", speedup);
      bench.SetMetric("q_repair", repaired.quality);
      bench.SetMetric("q_full", full.quality);
      bench.SetMetric("quality_delta", repaired.quality - full.quality);
      bench.SetMetric("repair_maintain_ms", repaired.maintain_ms);
      bench.SetMetric("full_maintain_ms", full.maintain_ms);
      bench.SetMetric("events", static_cast<int64_t>(trace.events.size()));
      bench.SetMetric("escalations",
                      static_cast<int64_t>(repaired.escalations));
      bench.SetMetric("repair_evals", repaired.evaluations);
      bench.SetMetric("full_evals", full.evaluations);
    }
  }

  bench.SetMetric("wall_ms", total.ElapsedMillis());
  return bench.Finish();
}
