// Figure 5: execution time of µBE choosing 20 sources from universes of
// 100-700 sources, under the paper's five constraint sets.
//
// Paper shape: time grows with |U|; adding constraints *reduces* time
// (they restrict the search space / shrink it structurally).
#include <cstdio>

#include "bench/bench_util.h"
#include "core/engine.h"
#include "util/timer.h"

using namespace ube;
using namespace ube::bench;

int main(int argc, char** argv) {
  BenchHarness bench("fig5_universe_size");
  bench.ParseOrExit(argc, argv);
  const BenchArgs& args = bench.args();
  WallTimer total;
  std::printf("Figure 5 — execution time (s) vs universe size "
              "(choose m=20, tabu search)\n");
  std::printf("columns: universe size | one column per constraint set\n\n");
  PrintRow({"|U|", "none", "1 src", "3 src", "5 src", "5 src+2 GA",
            "graph-build"});

  for (int n = 100; n <= 700; n += 100) {
    GeneratedWorkload workload = MakeWorkload(n, args.workload_seed);
    std::vector<ConstraintSet> sets = PaperConstraintSets(workload);

    WallTimer build_timer;
    Engine engine(std::move(workload.universe), QualityModel::MakeDefault());
    double build_seconds = build_timer.ElapsedSeconds();

    std::vector<std::string> row = {Fmt(static_cast<int64_t>(n))};
    for (const ConstraintSet& cs : sets) {
      ProblemSpec spec;
      spec.max_sources = 20;
      spec.source_constraints = cs.sources;
      spec.ga_constraints = cs.gas;
      WallTimer timer;
      Result<Solution> solution = engine.Solve(
          spec, SolverKind::kTabu,
          BenchSolverOptions(args.SolverSeed(), args.threads));
      double seconds = timer.ElapsedSeconds();
      if (!solution.ok()) {
        row.push_back("ERR");
        continue;
      }
      if (n == 700 && cs.sources.empty() && cs.gas.empty()) {
        bench.SetMetric("solve_700_none_ms", seconds * 1e3);
        bench.SetMetric("q_700_none", solution->quality);
      }
      row.push_back(Fmt("%.2f", seconds));
    }
    if (n == 700) bench.SetMetric("graph_build_700_ms", build_seconds * 1e3);
    row.push_back(Fmt("%.2f", build_seconds));
    PrintRow(row);
  }
  std::printf(
      "\n(graph-build = one-time similarity-graph precomputation per "
      "universe, amortized across all iterations of a µBE session)\n");
  bench.SetMetric("wall_ms", total.ElapsedMillis());
  return bench.Finish();
}
