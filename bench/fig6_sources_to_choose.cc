// Figure 6: execution time of µBE choosing 10-50 sources from a universe
// of 200, under the paper's five constraint sets.
//
// Paper shape: time grows with the number of sources to choose; adding
// constraints reduces time.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/engine.h"
#include "util/timer.h"

using namespace ube;
using namespace ube::bench;

int main(int argc, char** argv) {
  BenchHarness bench("fig6_sources_to_choose");
  bench.ParseOrExit(argc, argv);
  const BenchArgs& args = bench.args();
  WallTimer total;
  std::printf("Figure 6 — execution time (s) vs sources to choose "
              "(|U|=200, tabu search)\n\n");
  GeneratedWorkload workload = MakeWorkload(200, args.workload_seed);
  std::vector<ConstraintSet> sets = PaperConstraintSets(workload);
  Engine engine(std::move(workload.universe), QualityModel::MakeDefault());

  PrintRow({"m", "none", "1 src", "3 src", "5 src", "5 src+2 GA"});
  for (int m = 10; m <= 50; m += 10) {
    std::vector<std::string> row = {Fmt(static_cast<int64_t>(m))};
    for (const ConstraintSet& cs : sets) {
      ProblemSpec spec;
      spec.max_sources = m;
      spec.source_constraints = cs.sources;
      spec.ga_constraints = cs.gas;
      WallTimer timer;
      Result<Solution> solution = engine.Solve(
          spec, SolverKind::kTabu,
          BenchSolverOptions(args.SolverSeed(), args.threads));
      if (solution.ok() && m == 50 && cs.sources.empty() && cs.gas.empty()) {
        bench.SetMetric("solve_m50_none_ms", timer.ElapsedMillis());
      }
      row.push_back(solution.ok() ? Fmt("%.2f", timer.ElapsedSeconds())
                                  : "ERR");
    }
    PrintRow(row);
  }
  bench.SetMetric("wall_ms", total.ElapsedMillis());
  return bench.Finish();
}
