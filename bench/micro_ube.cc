// google-benchmark micro-benchmarks for the µBE building blocks: string
// similarity, PCSA operations, Match(S) clustering, and full candidate
// evaluation. These are the per-call costs that the figure benches
// aggregate.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/harness.h"
#include "core/engine.h"
#include "matching/cluster_matcher.h"
#include "matching/similarity_graph.h"
#include "optimize/delta_evaluator.h"
#include "optimize/evaluator.h"
#include "optimize/search_state.h"
#include "qef/qef.h"
#include "sketch/pcsa.h"
#include "text/ngram.h"
#include "text/similarity.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace {

ube::GeneratedWorkload& SharedWorkload() {
  static auto* workload = [] {
    ube::WorkloadConfig config;
    config.num_sources = 200;
    config.scale = 0.01;
    return new ube::GeneratedWorkload(ube::GenerateWorkload(config));
  }();
  return *workload;
}

void BM_NgramJaccard(benchmark::State& state) {
  ube::NgramSet a = ube::NgramSet::Build("publication year", 3);
  ube::NgramSet b = ube::NgramSet::Build("year of publication", 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Jaccard(b));
  }
}
BENCHMARK(BM_NgramJaccard);

void BM_NgramBuild(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(ube::NgramSet::Build("publication year", 3));
  }
}
BENCHMARK(BM_NgramBuild);

void BM_LevenshteinScore(benchmark::State& state) {
  ube::LevenshteinSimilarity sim;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim.Score("publication year", "year of publication"));
  }
}
BENCHMARK(BM_LevenshteinScore);

void BM_PcsaAdd(benchmark::State& state) {
  ube::PcsaSketch sketch(64);
  uint64_t i = 0;
  for (auto _ : state) {
    sketch.AddHash(++i);
  }
  benchmark::DoNotOptimize(sketch.Estimate());
}
BENCHMARK(BM_PcsaAdd);

void BM_PcsaEstimate(benchmark::State& state) {
  ube::PcsaSketch sketch(static_cast<int>(state.range(0)));
  ube::Rng rng(1);
  for (int i = 0; i < 100000; ++i) sketch.AddHash(rng.Next64());
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch.Estimate());
  }
}
BENCHMARK(BM_PcsaEstimate)->Arg(64)->Arg(256)->Arg(1024);

void BM_PcsaMerge20(benchmark::State& state) {
  ube::Rng rng(2);
  std::vector<ube::PcsaSketch> sketches;
  for (int s = 0; s < 20; ++s) {
    ube::PcsaSketch sketch(64);
    for (int i = 0; i < 5000; ++i) sketch.AddHash(rng.Next64());
    sketches.push_back(sketch);
  }
  for (auto _ : state) {
    ube::PcsaSketch merged(64);
    for (const auto& sketch : sketches) merged.Merge(sketch);
    benchmark::DoNotOptimize(merged.Estimate());
  }
}
BENCHMARK(BM_PcsaMerge20);

void BM_SimilarityGraphBuild(benchmark::State& state) {
  auto& workload = SharedWorkload();
  for (auto _ : state) {
    ube::SimilarityGraph graph =
        ube::SimilarityGraph::WithDefaults(workload.universe, 0.25);
    benchmark::DoNotOptimize(graph.num_edges());
  }
}
BENCHMARK(BM_SimilarityGraphBuild)->Unit(benchmark::kMillisecond);

void BM_Match20Sources(benchmark::State& state) {
  auto& workload = SharedWorkload();
  static auto* graph = new ube::SimilarityGraph(
      ube::SimilarityGraph::WithDefaults(workload.universe, 0.25));
  ube::ClusterMatcher matcher(workload.universe, *graph);
  std::vector<ube::SourceId> sources;
  for (ube::SourceId s = 0; s < 200; s += 10) sources.push_back(s);
  ube::MatchOptions options;
  for (auto _ : state) {
    auto result = matcher.Match(sources, {}, {}, options);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_Match20Sources)->Unit(benchmark::kMicrosecond);

void BM_CandidateEvaluation(benchmark::State& state) {
  auto& workload = SharedWorkload();
  static auto* engine = new ube::Engine(
      [] {
        ube::WorkloadConfig config;
        config.num_sources = 200;
        config.scale = 0.01;
        auto w = ube::GenerateWorkload(config);
        return std::move(w.universe);
      }(),
      ube::QualityModel::MakeDefault());
  (void)workload;
  ube::ProblemSpec spec;
  spec.max_sources = 20;
  std::vector<ube::SourceId> candidate;
  for (ube::SourceId s = 0; s < 200; s += 10) candidate.push_back(s);
  for (auto _ : state) {
    auto evaluation = engine->EvaluateCandidate(spec, candidate);
    benchmark::DoNotOptimize(evaluation.ok());
  }
}
BENCHMARK(BM_CandidateEvaluation)->Unit(benchmark::kMicrosecond);

void BM_WorkloadGeneration(benchmark::State& state) {
  for (auto _ : state) {
    ube::WorkloadConfig config;
    config.num_sources = static_cast<int>(state.range(0));
    config.scale = 0.01;
    auto workload = ube::GenerateWorkload(config);
    benchmark::DoNotOptimize(workload.universe.num_sources());
  }
}
BENCHMARK(BM_WorkloadGeneration)->Arg(100)->Arg(400)
    ->Unit(benchmark::kMillisecond);

// The delta path only engages on models without a matching QEF (Match(S)
// is not incrementally maintainable), so the flip sweep scores the four
// data QEFs — the same model shape the delta oracle tests use.
ube::QualityModel DataOnlyModel() {
  ube::QualityModel model;
  model.AddQef(std::make_unique<ube::CardinalityQef>(), 0.4);
  model.AddQef(std::make_unique<ube::CoverageQef>(), 0.3);
  model.AddQef(std::make_unique<ube::RedundancyQef>(), 0.2);
  model.AddQef(std::make_unique<ube::CharacteristicQef>(
                   "mttf", ube::Aggregation::kWeightedSum),
               0.1);
  return model;
}

// Single-flip evaluation throughput: one seeded tabu-style move stream over
// a paper-scale 1000-source universe, each flip scored as a one-move
// neighborhood — through DeltaEvaluator's incremental path and (unless
// --delta restricts the sweep) through the full QualityBatch path. The full
// path pays O(|universe|) per evaluation (characteristic normalization
// rescans) while the delta path's per-flip cost is independent of universe
// size, which is the quantity this sweep tracks. Identical rng streams give
// identical candidate sequences, cache behavior included, so the ratio is a
// pure per-flip-cost comparison. Emits flip_delta_per_s and, on the default
// two-sided run, flip_full_per_s + delta_flip_speedup.
void RunFlipSweep(ube::bench::BenchHarness& bench, bool delta_only) {
  ube::WorkloadConfig config;
  config.num_sources = 1000;
  config.scale = 0.01;
  ube::GeneratedWorkload workload = ube::GenerateWorkload(config);
  ube::SimilarityGraph graph =
      ube::SimilarityGraph::WithDefaults(workload.universe, 0.25);
  ube::ClusterMatcher matcher(workload.universe, graph);
  ube::QualityModel model = DataOnlyModel();
  ube::ProblemSpec spec;
  spec.max_sources = 20;
  ube::CandidateEvaluator evaluator(workload.universe, matcher, model, spec);

  constexpr int kFlips = 4000;
  auto sweep = [&](bool use_delta) {
    ube::DeltaEvaluator delta(evaluator, use_delta);
    evaluator.BeginRun();
    ube::Rng rng(bench.args().SolverSeed(913));
    ube::SearchState state(evaluator, rng);
    std::vector<ube::SearchState::Move> moves(1);
    std::vector<std::vector<ube::SourceId>> candidates(1);
    double sink = 0.0;
    for (int i = 0; i < kFlips; ++i) {
      if (!state.RandomMove(rng, &moves[0])) break;
      candidates[0] = state.Apply(moves[0]);
      sink += delta.ScoreNeighborhood(state.sources(), moves, candidates,
                                      /*pool=*/nullptr)[0];
      // Commit occasionally so the sweep pays realistic rebase costs.
      if (i % 8 == 7) state.Commit(moves[0]);
    }
    benchmark::DoNotOptimize(sink);
  };

  const double delta_ms = bench.TimeMs("flip_delta", [&] { sweep(true); });
  const double delta_per_s = delta_ms > 0.0 ? kFlips / (delta_ms / 1e3) : 0.0;
  bench.SetMetric("flip_delta_per_s", delta_per_s);
  std::printf("flip sweep (delta): %d flips in %.2f ms (%.0f flips/s)\n",
              kFlips, delta_ms, delta_per_s);
  if (delta_only) return;
  const double full_ms = bench.TimeMs("flip_full", [&] { sweep(false); });
  const double full_per_s = full_ms > 0.0 ? kFlips / (full_ms / 1e3) : 0.0;
  bench.SetMetric("flip_full_per_s", full_per_s);
  const double speedup = delta_ms > 0.0 ? full_ms / delta_ms : 0.0;
  bench.SetMetric("delta_flip_speedup", speedup);
  std::printf(
      "flip sweep (full):  %d flips in %.2f ms (%.0f flips/s) — "
      "delta speedup %.1fx\n",
      kFlips, full_ms, full_per_s, speedup);
}

// Console output as usual, plus every benchmark's per-iteration real time
// harvested into the harness as `<name>_ns` for BENCH_micro_ube.json.
class MetricReporter : public benchmark::ConsoleReporter {
 public:
  explicit MetricReporter(ube::bench::BenchHarness* bench)
      : bench_(bench) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred || run.iterations <= 0) continue;
      std::string key = run.benchmark_name();
      for (char& c : key) {
        if (c == '/' || c == ':') c = '_';
      }
      const double ns_per_iter = run.real_accumulated_time /
                                 static_cast<double>(run.iterations) * 1e9;
      bench_->SetMetric(key + "_ns", ns_per_iter);
    }
    ConsoleReporter::ReportRuns(reports);
  }

 private:
  ube::bench::BenchHarness* bench_;
};

}  // namespace

int main(int argc, char** argv) {
  ube::bench::BenchHarness bench("micro_ube");
  bool delta_only = false;
  bench.flags().AddBool(
      "--delta",
      "flip sweep: time the incremental delta path only (default times "
      "both paths and records delta_flip_speedup)",
      &delta_only);
  // Harness flags first; --benchmark_* (and anything else) passes through
  // to google-benchmark's own parser.
  bench.ParseKnownOrExit(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  MetricReporter reporter(&bench);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  RunFlipSweep(bench, delta_only);
  return bench.Finish();
}
