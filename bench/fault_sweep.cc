// Fault sweep: solution quality and probe cost vs injected failure rate.
//
// Sweeps the transient fault rate over a 200-source universe (with
// proportional timeout/permanent/stale/truncated rates), acquires the
// sources through the fault-tolerant prober, and solves the same m=10
// problem over whatever survived. Expected shape: acquisition cost (probe
// attempts, simulated latency, dropped/degraded counts) grows steeply with
// the rate, while Q(S) — measured against the *acquired* universe — stays
// roughly flat: retries and the degradation policies absorb the damage, and
// a feasible solution comes out at every rate.
//
// UBE_FAULT_RATE overrides the sweep with a single point at that rate.
#include <cstdio>
#include <memory>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "core/engine.h"
#include "source/flaky.h"
#include "source/prober.h"
#include "util/fault_injection.h"
#include "util/timer.h"

using namespace ube;
using namespace ube::bench;

namespace {

FaultRates RatesAt(double rate) {
  FaultRates rates;
  rates.transient = rate;
  rates.timeout = rate / 3.0;
  rates.permanent = rate / 10.0;
  rates.stale = rate / 6.0;
  rates.truncated = rate / 6.0;
  return rates;
}

}  // namespace

int main(int argc, char** argv) {
  BenchHarness bench("fault_sweep");
  bench.ParseOrExit(argc, argv);
  const BenchArgs& args = bench.args();
  WallTimer total;
  std::printf("Fault sweep — acquisition cost and quality vs failure rate "
              "(|U|=200, m=10, tabu search)\n\n");

  std::vector<double> sweep = {0.0, 0.1, 0.2, 0.3, 0.4, 0.5};
  const char* env_rate = std::getenv(FaultPlan::kFaultRateEnvVar);
  if (env_rate != nullptr) {
    sweep = {std::strtod(env_rate, nullptr)};
  }

  GeneratedWorkload workload = MakeWorkload(200, args.workload_seed);

  PrintRow({"rate", "acquired", "degraded", "dropped", "attempts/src",
            "mean ms", "max ms", "Q(S)"});
  for (double rate : sweep) {
    std::vector<std::unique_ptr<ProbeTarget>> targets;
    FaultPlan plan(args.workload_seed ^ 0xfa57u, RatesAt(rate));
    for (SourceId s = 0; s < workload.universe.num_sources(); ++s) {
      auto inner = std::make_unique<InMemoryProbeTarget>(
          CloneSource(workload.universe.source(s)));
      targets.push_back(
          std::make_unique<FlakyProbeTarget>(std::move(inner), &plan));
    }
    ProberOptions prober_options;
    prober_options.num_threads = 0;  // hardware concurrency
    prober_options.seed = args.workload_seed;
    SourceProber prober(prober_options);
    Result<Acquisition> acquired = prober.Acquire(std::move(targets));
    if (!acquired.ok()) {
      PrintRow({Fmt("%.2f", rate), "ERR: " + acquired.status().ToString()});
      continue;
    }
    const AcquisitionReport& report = acquired->report;
    double total_attempts = 0.0;
    for (const SourceAcquisition& acq : report.sources) {
      total_attempts += acq.attempts;
    }
    std::vector<std::string> row = {
        Fmt("%.2f", rate),
        Fmt(static_cast<int64_t>(report.num_acquired())),
        Fmt(static_cast<int64_t>(report.num_degraded())),
        Fmt(static_cast<int64_t>(report.num_dropped())),
        Fmt("%.2f", total_attempts /
                        static_cast<double>(report.sources.size())),
        Fmt("%.1f", report.mean_elapsed_ms()),
        Fmt("%.1f", report.max_elapsed_ms()),
    };

    Engine engine(std::move(acquired).value(), QualityModel::MakeDefault());
    ProblemSpec spec;
    spec.max_sources = 10;
    Result<Solution> solution = engine.Solve(
        spec, SolverKind::kTabu,
        BenchSolverOptions(args.SolverSeed(), args.threads));
    if (solution.ok() && rate == sweep.back()) {
      bench.SetMetric("q_max_rate", solution->quality);
      bench.SetMetric("acquired_max_rate",
                      static_cast<int64_t>(report.num_acquired()));
    }
    row.push_back(solution.ok() ? Fmt("%.4f", solution->quality)
                                : "ERR");
    PrintRow(row);
  }
  bench.SetMetric("wall_ms", total.ElapsedMillis());
  return bench.Finish();
}
