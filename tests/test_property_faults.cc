// Property suite for the acquisition layer: any seeded fault plan leads to
// a feasible solution over the acquired sources or a clean Status — never a
// crash — and replaying the same plan is bit-identical, including across
// thread counts. Rerun failures with UBE_PROPERTY_SEED=<seed>.
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "source/flaky.h"
#include "source/prober.h"
#include "source/universe.h"
#include "testkit/generators.h"
#include "testkit/property.h"
#include "util/fault_injection.h"

namespace ube {
namespace {

using testkit::GenerateSpec;
using testkit::GenerateUniverse;
using testkit::PropertyRunner;

struct FaultCase {
  Universe universe;
  FaultRates rates;
  uint64_t plan_seed = 0;
  uint64_t prober_seed = 0;
  uint64_t solver_seed = 0;
};

// Draws one case from `rng`. Called twice with identical rng states to
// exercise the replay property without copying move-only universes.
FaultCase DrawCase(Rng& rng) {
  FaultCase out;
  out.universe = GenerateUniverse(rng);
  out.rates.transient = rng.UniformDouble(0.0, 0.6);
  out.rates.timeout = rng.UniformDouble(0.0, 0.3);
  out.rates.permanent = rng.UniformDouble(0.0, 0.2);
  out.rates.stale = rng.UniformDouble(0.0, 0.3);
  out.rates.truncated = rng.UniformDouble(0.0, 0.3);
  // UBE_FAULT_RATE (the CI fault-injection job) pins the transient/timeout
  // pressure; seeds still come from the case stream, so runs stay
  // replayable for any fixed value of the variable.
  out.rates = FaultPlan::RatesFromEnv(out.rates);
  out.plan_seed = rng.Next64();
  out.prober_seed = rng.Next64();
  out.solver_seed = rng.Next64();
  return out;
}

std::vector<std::unique_ptr<ProbeTarget>> TargetsOf(const Universe& universe,
                                                    const FaultPlan* plan) {
  std::vector<std::unique_ptr<ProbeTarget>> targets;
  for (SourceId s = 0; s < universe.num_sources(); ++s) {
    targets.push_back(std::make_unique<FlakyProbeTarget>(
        std::make_unique<InMemoryProbeTarget>(
            CloneSource(universe.source(s))),
        plan));
  }
  return targets;
}

Result<Acquisition> AcquireCase(const FaultCase& c, int num_threads) {
  FaultPlan plan(c.plan_seed, c.rates);
  ProberOptions options;
  options.num_threads = num_threads;
  options.seed = c.prober_seed;
  SourceProber prober(options);
  return prober.Acquire(TargetsOf(c.universe, &plan));
}

// Acquisition + solve never crash: every case ends in a feasible solution
// over available sources or a clean, categorized Status.
TEST(FaultPropertyTest, SolveOrCleanStatusNeverCrash) {
  PropertyRunner runner("faults-solve-or-status", 40);
  for (int c = 0; c < runner.num_cases(); ++c) {
    SCOPED_TRACE(runner.Replay(c));
    Rng rng = runner.CaseRng(c);
    FaultCase fault_case = DrawCase(rng);
    const int n = fault_case.universe.num_sources();

    Result<Acquisition> acquired = AcquireCase(fault_case, 1);
    if (!acquired.ok()) {
      // Total acquisition failure must be the documented clean error.
      EXPECT_EQ(acquired.status().code(), StatusCode::kUnavailable);
      continue;
    }
    Acquisition acquisition = std::move(acquired).value();
    ASSERT_EQ(acquisition.universe.num_sources(), n);
    ASSERT_EQ(static_cast<int>(acquisition.report.sources.size()), n);
    for (SourceId s = 0; s < n; ++s) {
      const SourceAcquisition& acq = acquisition.report.sources[s];
      EXPECT_EQ(acq.name, acquisition.universe.source(s).name());
      EXPECT_EQ(acq.outcome == AcquisitionOutcome::kDropped,
                !acquisition.universe.source(s).available());
      EXPECT_EQ(acq.status.ok(),
                acq.outcome != AcquisitionOutcome::kDropped);
    }

    Engine engine(std::move(acquisition), QualityModel::MakeDefault());
    Rng spec_rng = rng.Fork(1);
    ProblemSpec spec = GenerateSpec(spec_rng, engine.universe());
    SolverOptions options;
    options.seed = fault_case.solver_seed;
    options.max_iterations = 60;
    options.stall_iterations = 20;
    Result<Solution> solution =
        engine.Solve(spec, SolverKind::kTabu, options);
    if (!solution.ok()) {
      // The spec may pin a dropped source (Unavailable) or be infeasible
      // once the dropped sources are banned; both are clean outcomes.
      EXPECT_TRUE(solution.status().code() == StatusCode::kUnavailable ||
                  solution.status().code() == StatusCode::kInfeasible ||
                  solution.status().code() == StatusCode::kInvalidArgument)
          << solution.status();
      continue;
    }
    EXPECT_FALSE(solution->sources.empty());
    EXPECT_GE(solution->quality, 0.0);
    EXPECT_LE(solution->quality, 1.0);
    for (SourceId s : solution->sources) {
      EXPECT_TRUE(engine.universe().source(s).available())
          << "solution uses dropped source " << s;
    }
  }
}

// Replaying a fault plan from its seed is bit-identical, and the thread
// count of the probe fan-out cannot change any outcome.
TEST(FaultPropertyTest, ReplayIsBitIdentical) {
  PropertyRunner runner("faults-replay-identical", 20);
  for (int c = 0; c < runner.num_cases(); ++c) {
    SCOPED_TRACE(runner.Replay(c));
    Rng rng_a = runner.CaseRng(c);
    Rng rng_b = runner.CaseRng(c);
    FaultCase case_a = DrawCase(rng_a);
    FaultCase case_b = DrawCase(rng_b);
    Result<Acquisition> first = AcquireCase(case_a, 1);
    Result<Acquisition> second = AcquireCase(case_b, 3);
    ASSERT_EQ(first.ok(), second.ok());
    if (!first.ok()) continue;
    const AcquisitionReport& a = first->report;
    const AcquisitionReport& b = second->report;
    ASSERT_EQ(a.sources.size(), b.sources.size());
    for (size_t i = 0; i < a.sources.size(); ++i) {
      EXPECT_EQ(a.sources[i].outcome, b.sources[i].outcome) << i;
      EXPECT_EQ(a.sources[i].attempts, b.sources[i].attempts) << i;
      EXPECT_DOUBLE_EQ(a.sources[i].elapsed_ms, b.sources[i].elapsed_ms) << i;
      EXPECT_DOUBLE_EQ(a.sources[i].staleness, b.sources[i].staleness) << i;
      EXPECT_EQ(a.sources[i].breaker_trips, b.sources[i].breaker_trips) << i;
    }
    for (SourceId s = 0; s < first->universe.num_sources(); ++s) {
      EXPECT_EQ(first->universe.source(s).cardinality(),
                second->universe.source(s).cardinality());
      EXPECT_EQ(first->universe.source(s).stats_state(),
                second->universe.source(s).stats_state());
    }
  }
}

}  // namespace
}  // namespace ube
