// Golden small-universe regression (ISSUE 3 satellite): one canonical
// generated universe whose exhaustive optimum is pinned in
// tests/data/golden_small_universe.json. A mismatch means either the
// optimizer/QEF stack changed behavior or the generator's draw sequence
// moved — both must be deliberate, documented events (see TESTING.md).
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "optimize/solver.h"
#include "testkit/generators.h"
#include "testkit/golden.h"
#include "testkit/oracles.h"
#include "util/rng.h"

namespace ube {
namespace {

using testkit::GoldenSmallUniverse;
using testkit::LoadGoldenSmallUniverse;

std::string GoldenPath() {
  return std::string(UBE_TEST_DATA_DIR) + "/golden_small_universe.json";
}

class GoldenTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<GoldenSmallUniverse> loaded = LoadGoldenSmallUniverse(GoldenPath());
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    golden_ = std::move(*loaded);
  }

  Engine MakeEngine() const {
    Rng rng(golden_.universe_seed);
    Universe universe = testkit::GenerateUniverse(rng, golden_.universe);
    return Engine(std::move(universe), QualityModel::MakeDefault());
  }

  GoldenSmallUniverse golden_;
};

TEST_F(GoldenTest, ExhaustiveOptimumMatchesPinnedValues) {
  Engine engine = MakeEngine();
  Result<Solution> solution =
      engine.Solve(golden_.spec, SolverKind::kExhaustive);
  ASSERT_TRUE(solution.ok()) << solution.status();
  EXPECT_EQ(solution->sources, golden_.optimal_sources);
  EXPECT_NEAR(solution->quality, golden_.optimal_quality, 1e-9);
}

TEST_F(GoldenTest, TabuFindsThePinnedOptimum) {
  Engine engine = MakeEngine();
  Result<Solution> solution = engine.Solve(
      golden_.spec, SolverKind::kTabu, testkit::PropertySolverOptions(42));
  ASSERT_TRUE(solution.ok()) << solution.status();
  EXPECT_TRUE(
      testkit::SolutionIsFeasible(*solution, engine.universe(), golden_.spec));
  EXPECT_EQ(solution->sources, golden_.optimal_sources);
  EXPECT_NEAR(solution->quality, golden_.optimal_quality, 1e-9);
}

// Loader robustness: failures must be loud Status errors, not defaults.
TEST(GoldenLoaderTest, MissingFileIsNotFound) {
  Result<GoldenSmallUniverse> loaded =
      LoadGoldenSmallUniverse("/nonexistent/golden.json");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(GoldenLoaderTest, MalformedAndUnknownKeyFilesAreRejected) {
  const std::string dir = ::testing::TempDir();
  struct Case {
    const char* file;
    const char* text;
  };
  const Case cases[] = {
      {"truncated.json", "{\"universe_seed\": 1, "},
      {"not_object.json", "[1, 2, 3]"},
      {"unknown_key.json",
       "{\"universe_seed\": 1, \"surprise\": true, \"generator\": {}, "
       "\"spec\": {\"max_sources\": 2, \"theta\": 0.5, \"beta\": 2}, "
       "\"optimum\": {\"sources\": [0], \"quality\": 0.5}}"},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.file);
    const std::string path = dir + "/" + c.file;
    std::ofstream(path) << c.text;
    Result<GoldenSmallUniverse> loaded = LoadGoldenSmallUniverse(path);
    EXPECT_FALSE(loaded.ok());
  }
}

}  // namespace
}  // namespace ube
