#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "schema/mediated_schema.h"
#include "schema/schema.h"

namespace ube {
namespace {

AttributeId A(SourceId s, int a) { return AttributeId{s, a}; }

// ----------------------------- AttributeId ------------------------------

TEST(AttributeIdTest, Ordering) {
  EXPECT_LT(A(0, 5), A(1, 0));
  EXPECT_LT(A(1, 0), A(1, 1));
  EXPECT_EQ(A(2, 3), A(2, 3));
}

TEST(AttributeIdTest, HashDistinguishes) {
  std::unordered_set<AttributeId> set;
  for (SourceId s = 0; s < 10; ++s) {
    for (int a = 0; a < 10; ++a) set.insert(A(s, a));
  }
  EXPECT_EQ(set.size(), 100u);
}

TEST(AttributeIdTest, ToString) {
  EXPECT_EQ(ToString(A(3, 7)), "3:7");
}

// ----------------------------- SourceSchema -----------------------------

TEST(SourceSchemaTest, BasicAccess) {
  SourceSchema schema({"title", "author", "isbn"});
  EXPECT_EQ(schema.num_attributes(), 3);
  EXPECT_FALSE(schema.empty());
  EXPECT_EQ(schema.attribute_name(0), "title");
  EXPECT_EQ(schema.attribute_name(2), "isbn");
}

TEST(SourceSchemaTest, FindAttribute) {
  SourceSchema schema({"title", "author", "isbn"});
  EXPECT_EQ(schema.FindAttribute("author"), 1);
  EXPECT_EQ(schema.FindAttribute("missing"), -1);
  EXPECT_EQ(schema.FindAttribute("Title"), -1);  // exact match only
}

TEST(SourceSchemaTest, EmptySchema) {
  SourceSchema schema;
  EXPECT_TRUE(schema.empty());
  EXPECT_EQ(schema.num_attributes(), 0);
  EXPECT_EQ(schema.FindAttribute("x"), -1);
}

TEST(SourceSchemaDeathTest, OutOfRangeIndexAborts) {
  SourceSchema schema({"a"});
  EXPECT_DEATH(schema.attribute_name(1), "out of range");
  EXPECT_DEATH(schema.attribute_name(-1), "out of range");
}

// --------------------------- GlobalAttribute ----------------------------

TEST(GlobalAttributeTest, EmptyIsInvalid) {
  GlobalAttribute ga;
  EXPECT_FALSE(ga.IsValid());  // Definition 1: g != empty set
  EXPECT_TRUE(ga.empty());
}

TEST(GlobalAttributeTest, SingleAttributeIsValid) {
  GlobalAttribute ga({A(0, 0)});
  EXPECT_TRUE(ga.IsValid());
  EXPECT_EQ(ga.size(), 1);
}

TEST(GlobalAttributeTest, TwoAttrsSameSourceInvalid) {
  // Definition 1: i1 = i2 implies j1 = j2 — one attribute per source.
  GlobalAttribute ga({A(0, 0), A(0, 1)});
  EXPECT_FALSE(ga.IsValid());
}

TEST(GlobalAttributeTest, DuplicateAttributesCollapse) {
  GlobalAttribute ga({A(0, 0), A(0, 0), A(1, 1)});
  EXPECT_EQ(ga.size(), 2);
  EXPECT_TRUE(ga.IsValid());
}

TEST(GlobalAttributeTest, ConstructorSorts) {
  GlobalAttribute ga({A(2, 0), A(0, 3), A(1, 1)});
  EXPECT_EQ(ga.attributes()[0], A(0, 3));
  EXPECT_EQ(ga.attributes()[1], A(1, 1));
  EXPECT_EQ(ga.attributes()[2], A(2, 0));
}

TEST(GlobalAttributeTest, ContainsAndTouchesSource) {
  GlobalAttribute ga({A(0, 2), A(3, 1)});
  EXPECT_TRUE(ga.Contains(A(0, 2)));
  EXPECT_FALSE(ga.Contains(A(0, 1)));
  EXPECT_TRUE(ga.TouchesSource(0));
  EXPECT_TRUE(ga.TouchesSource(3));
  EXPECT_FALSE(ga.TouchesSource(1));
}

TEST(GlobalAttributeTest, ContainsAll) {
  GlobalAttribute big({A(0, 0), A(1, 1), A(2, 2)});
  GlobalAttribute small({A(0, 0), A(2, 2)});
  EXPECT_TRUE(big.ContainsAll(small));
  EXPECT_FALSE(small.ContainsAll(big));
  EXPECT_TRUE(big.ContainsAll(big));
  EXPECT_TRUE(big.ContainsAll(GlobalAttribute{}));  // empty subset
}

TEST(GlobalAttributeTest, Intersects) {
  GlobalAttribute a({A(0, 0), A(1, 1)});
  GlobalAttribute b({A(1, 1), A(2, 2)});
  GlobalAttribute c({A(3, 3)});
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_FALSE(c.Intersects(a));
}

TEST(GlobalAttributeTest, AddKeepsSortedUnique) {
  GlobalAttribute ga;
  ga.Add(A(2, 0));
  ga.Add(A(0, 0));
  ga.Add(A(2, 0));  // duplicate ignored
  EXPECT_EQ(ga.size(), 2);
  EXPECT_EQ(ga.attributes()[0], A(0, 0));
}

TEST(GlobalAttributeTest, Sources) {
  GlobalAttribute ga({A(4, 0), A(1, 2), A(7, 0)});
  EXPECT_EQ(ga.Sources(), (std::vector<SourceId>{1, 4, 7}));
}

// ---------------------------- MediatedSchema ----------------------------

TEST(MediatedSchemaTest, EmptyIsDisjointAndValidOnNoSources) {
  MediatedSchema m;
  EXPECT_TRUE(m.GasAreDisjointAndValid());
  EXPECT_TRUE(m.IsValidOn({}));
  EXPECT_FALSE(m.IsValidOn({0}));  // source 0 is not spanned
}

TEST(MediatedSchemaTest, DisjointGasValid) {
  MediatedSchema m({GlobalAttribute({A(0, 0), A(1, 0)}),
                    GlobalAttribute({A(0, 1), A(2, 0)})});
  EXPECT_TRUE(m.GasAreDisjointAndValid());
  EXPECT_TRUE(m.IsValidOn({0, 1, 2}));
}

TEST(MediatedSchemaTest, IntersectingGasInvalid) {
  // Definition 2: an attribute cannot appear in two GAs.
  MediatedSchema m({GlobalAttribute({A(0, 0), A(1, 0)}),
                    GlobalAttribute({A(0, 0), A(2, 0)})});
  EXPECT_FALSE(m.GasAreDisjointAndValid());
  EXPECT_FALSE(m.IsValidOn({0, 1, 2}));
}

TEST(MediatedSchemaTest, InvalidGaMakesSchemaInvalid) {
  MediatedSchema m({GlobalAttribute({A(0, 0), A(0, 1)})});
  EXPECT_FALSE(m.GasAreDisjointAndValid());
}

TEST(MediatedSchemaTest, MustSpanAllGivenSources) {
  MediatedSchema m({GlobalAttribute({A(0, 0), A(1, 0)})});
  EXPECT_TRUE(m.IsValidOn({0, 1}));
  EXPECT_FALSE(m.IsValidOn({0, 1, 2}));  // source 2 untouched
}

TEST(MediatedSchemaTest, SubsumptionBasics) {
  // Definition 3: M2 ⊑ M1 iff every GA of M2 is contained in a GA of M1.
  MediatedSchema coarse({GlobalAttribute({A(0, 0), A(1, 0), A(2, 0)})});
  MediatedSchema fine({GlobalAttribute({A(0, 0), A(1, 0)})});
  EXPECT_TRUE(fine.IsSubsumedBy(coarse));
  EXPECT_FALSE(coarse.IsSubsumedBy(fine));
}

TEST(MediatedSchemaTest, SubsumptionIsReflexive) {
  MediatedSchema m({GlobalAttribute({A(0, 0), A(1, 0)}),
                    GlobalAttribute({A(2, 1)})});
  EXPECT_TRUE(m.IsSubsumedBy(m));
}

TEST(MediatedSchemaTest, EmptySchemaSubsumedByAnything) {
  MediatedSchema empty;
  MediatedSchema m({GlobalAttribute({A(0, 0)})});
  EXPECT_TRUE(empty.IsSubsumedBy(m));
  EXPECT_TRUE(empty.IsSubsumedBy(empty));
  EXPECT_FALSE(m.IsSubsumedBy(empty));
}

TEST(MediatedSchemaTest, SubsumptionNeedsSingleContainingGa) {
  // {A,B} split across two GAs of M1 does not subsume the joint GA.
  MediatedSchema split({GlobalAttribute({A(0, 0)}),
                        GlobalAttribute({A(1, 0)})});
  MediatedSchema joint({GlobalAttribute({A(0, 0), A(1, 0)})});
  EXPECT_FALSE(joint.IsSubsumedBy(split));
  EXPECT_TRUE(split.IsSubsumedBy(joint));
}

TEST(MediatedSchemaTest, TotalAttributesAndLookup) {
  MediatedSchema m({GlobalAttribute({A(0, 0), A(1, 0)}),
                    GlobalAttribute({A(2, 1)})});
  EXPECT_EQ(m.TotalAttributes(), 3);
  EXPECT_EQ(m.FindGaContaining(A(2, 1)), 1);
  EXPECT_EQ(m.FindGaContaining(A(0, 0)), 0);
  EXPECT_EQ(m.FindGaContaining(A(9, 9)), -1);
}

TEST(MediatedSchemaDeathTest, GaIndexOutOfRange) {
  MediatedSchema m;
  EXPECT_DEATH(m.ga(0), "out of range");
}

}  // namespace
}  // namespace ube
