// End-to-end tests: scaled-down versions of the paper's experiments,
// asserting the qualitative shapes Section 7 reports rather than absolute
// numbers.
#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "core/engine.h"
#include "core/ga_evaluation.h"
#include "core/session.h"
#include "source/compound.h"
#include "workload/domains.h"
#include "workload/generator.h"

namespace ube {
namespace {

WorkloadConfig ScaledConfig(int num_sources, uint64_t seed = 17) {
  WorkloadConfig config;
  config.num_sources = num_sources;
  config.seed = seed;
  config.scale = 0.002;
  return config;
}

SolverOptions MediumSolve(uint64_t seed = 42) {
  SolverOptions options;
  options.seed = seed;
  options.max_iterations = 250;
  options.stall_iterations = 60;
  return options;
}

class IntegrationTest : public ::testing::Test {
 protected:
  IntegrationTest() {
    GeneratedWorkload w = GenerateWorkload(ScaledConfig(60));
    ground_truth_ = w.ground_truth;
    engine_ = std::make_unique<Engine>(std::move(w.universe),
                                       QualityModel::MakeDefault());
  }

  GroundTruth ground_truth_;
  std::unique_ptr<Engine> engine_;
};

TEST_F(IntegrationTest, NoFalseGasOnDefaultWorkload) {
  // Section 7.3: "µbe never produced false GAs."
  for (int m : {5, 10, 15}) {
    ProblemSpec spec;
    spec.max_sources = m;
    Result<Solution> solution =
        engine_->Solve(spec, SolverKind::kTabu, MediumSolve());
    ASSERT_TRUE(solution.ok());
    GaQualityReport report = EvaluateGaQuality(
        solution->mediated_schema, solution->sources, ground_truth_);
    EXPECT_EQ(report.false_gas, 0) << "m=" << m;
    EXPECT_GT(report.true_gas_selected, 0) << "m=" << m;
  }
}

TEST_F(IntegrationTest, MoreSourcesFindMoreTrueGas) {
  // Table 1's shape: allowing µBE to choose more sources lets it find more
  // of the true GAs and cover more attributes.
  ProblemSpec small_spec;
  small_spec.max_sources = 4;
  ProblemSpec large_spec;
  large_spec.max_sources = 16;
  Result<Solution> small =
      engine_->Solve(small_spec, SolverKind::kTabu, MediumSolve());
  Result<Solution> large =
      engine_->Solve(large_spec, SolverKind::kTabu, MediumSolve());
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  GaQualityReport small_report = EvaluateGaQuality(
      small->mediated_schema, small->sources, ground_truth_);
  GaQualityReport large_report = EvaluateGaQuality(
      large->mediated_schema, large->sources, ground_truth_);
  EXPECT_GE(large_report.true_gas_selected, small_report.true_gas_selected);
  EXPECT_GE(large_report.attributes_in_true_gas,
            small_report.attributes_in_true_gas);
}

TEST_F(IntegrationTest, QualityGrowsWithM) {
  // Figure 7's shape: overall quality increases with the number of sources
  // to choose (more options for Card/Coverage).
  double previous = -1.0;
  for (int m : {4, 10, 18}) {
    ProblemSpec spec;
    spec.max_sources = m;
    Result<Solution> solution =
        engine_->Solve(spec, SolverKind::kTabu, MediumSolve());
    ASSERT_TRUE(solution.ok());
    EXPECT_GT(solution->quality, previous - 0.02)  // small heuristic slack
        << "m=" << m;
    previous = std::max(previous, solution->quality);
  }
}

TEST_F(IntegrationTest, ConstraintsReduceOrKeepQuality) {
  // Figure 7's second shape: adding constraints restricts the feasible
  // region, so quality does not improve.
  ProblemSpec free_spec;
  free_spec.max_sources = 10;
  Result<Solution> unconstrained =
      engine_->Solve(free_spec, SolverKind::kTabu, MediumSolve());
  ASSERT_TRUE(unconstrained.ok());

  ProblemSpec constrained_spec = free_spec;
  // Pin 3 sources the unconstrained run did not select.
  for (SourceId s = 0;
       s < engine_->universe().num_sources() &&
       constrained_spec.source_constraints.size() < 3;
       ++s) {
    if (!std::binary_search(unconstrained->sources.begin(),
                            unconstrained->sources.end(), s)) {
      constrained_spec.source_constraints.push_back(s);
    }
  }
  Result<Solution> constrained =
      engine_->Solve(constrained_spec, SolverKind::kTabu, MediumSolve());
  ASSERT_TRUE(constrained.ok());
  EXPECT_LE(constrained->quality, unconstrained->quality + 0.02);
}

TEST_F(IntegrationTest, GaConstraintBridgingImprovesCoverage) {
  // The "Matching By Example" loop: promote a GA, re-solve, the GA is
  // preserved and grows (or stays equal), never shrinks.
  Session session(engine_.get());
  session.SetMaxSources(10);
  ASSERT_TRUE(session.Iterate(SolverKind::kTabu, MediumSolve()).ok());
  const Solution* first = session.last();
  ASSERT_GT(first->mediated_schema.num_gas(), 0);

  // Promote the largest GA.
  int best_ga = 0;
  for (int g = 1; g < first->mediated_schema.num_gas(); ++g) {
    if (first->mediated_schema.ga(g).size() >
        first->mediated_schema.ga(best_ga).size()) {
      best_ga = g;
    }
  }
  GlobalAttribute promoted = first->mediated_schema.ga(best_ga);
  ASSERT_TRUE(session.PromoteGa(best_ga).ok());
  ASSERT_TRUE(session.Iterate(SolverKind::kTabu, MediumSolve(43)).ok());
  const Solution* second = session.last();
  int containing = -1;
  for (int g = 0; g < second->mediated_schema.num_gas(); ++g) {
    if (second->mediated_schema.ga(g).ContainsAll(promoted)) {
      containing = g;
      break;
    }
  }
  ASSERT_NE(containing, -1) << "promoted GA lost";
  EXPECT_GE(second->mediated_schema.ga(containing).size(), promoted.size());
}

TEST_F(IntegrationTest, WeightBiasShiftsSolutions) {
  // Figure 8's shape: raising the cardinality weight biases µBE toward
  // high-cardinality solutions.
  ProblemSpec spec;
  spec.max_sources = 8;

  auto solution_cardinality = [&](double card_weight) {
    QualityModel model = QualityModel::MakeDefault();
    EXPECT_TRUE(model.SetWeightRescaling("cardinality", card_weight).ok());
    GeneratedWorkload w = GenerateWorkload(ScaledConfig(60));
    Engine engine(std::move(w.universe), std::move(model));
    Result<Solution> solution =
        engine.Solve(spec, SolverKind::kTabu, MediumSolve());
    EXPECT_TRUE(solution.ok());
    int64_t total = 0;
    for (SourceId s : solution->sources) {
      total += engine.universe().source(s).cardinality();
    }
    return total;
  };

  int64_t low = solution_cardinality(0.05);
  int64_t high = solution_cardinality(0.95);
  EXPECT_GE(high, low);
}

TEST_F(IntegrationTest, UncooperativeSourcesStillSolvable) {
  WorkloadConfig config = ScaledConfig(40, 23);
  config.uncooperative_fraction = 0.5;
  GeneratedWorkload w = GenerateWorkload(config);
  Engine engine(std::move(w.universe), QualityModel::MakeDefault());
  ProblemSpec spec;
  spec.max_sources = 8;
  Result<Solution> solution =
      engine.Solve(spec, SolverKind::kTabu, MediumSolve());
  ASSERT_TRUE(solution.ok());
  EXPECT_GT(solution->quality, 0.0);
}

TEST_F(IntegrationTest, ExactAndPcsaSignaturesAgreeOnWinners) {
  // The PCSA approximation should not change the qualitative outcome.
  WorkloadConfig exact_config = ScaledConfig(40, 29);
  exact_config.signature_kind = SignatureKind::kExact;
  WorkloadConfig pcsa_config = ScaledConfig(40, 29);
  pcsa_config.signature_kind = SignatureKind::kPcsa;
  pcsa_config.pcsa_bitmaps = 256;

  GeneratedWorkload we = GenerateWorkload(exact_config);
  GeneratedWorkload wp = GenerateWorkload(pcsa_config);
  Engine exact_engine(std::move(we.universe), QualityModel::MakeDefault());
  Engine pcsa_engine(std::move(wp.universe), QualityModel::MakeDefault());
  ProblemSpec spec;
  spec.max_sources = 8;
  Result<Solution> exact =
      exact_engine.Solve(spec, SolverKind::kGreedy, MediumSolve());
  Result<Solution> pcsa =
      pcsa_engine.Solve(spec, SolverKind::kGreedy, MediumSolve());
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(pcsa.ok());
  // Same greedy trajectory up to estimator noise: solutions overlap heavily.
  std::vector<SourceId> common;
  std::set_intersection(exact->sources.begin(), exact->sources.end(),
                        pcsa->sources.begin(), pcsa->sources.end(),
                        std::back_inserter(common));
  EXPECT_GE(common.size(), exact->sources.size() / 2);
}

TEST_F(IntegrationTest, SolversAgreeOnGoodRegions) {
  // §7 text: tabu search is the most robust; here we only require every
  // heuristic to land within a reasonable band of the best found.
  ProblemSpec spec;
  spec.max_sources = 8;
  double best = 0.0;
  std::vector<double> qualities;
  for (SolverKind kind : {SolverKind::kTabu, SolverKind::kLocalSearch,
                          SolverKind::kAnnealing, SolverKind::kPso}) {
    Result<Solution> solution = engine_->Solve(spec, kind, MediumSolve());
    ASSERT_TRUE(solution.ok()) << SolverKindName(kind);
    qualities.push_back(solution->quality);
    best = std::max(best, solution->quality);
  }
  for (double q : qualities) EXPECT_GE(q, best * 0.8);
}

TEST_F(IntegrationTest, SolutionIsDeterministicEndToEnd) {
  GeneratedWorkload w1 = GenerateWorkload(ScaledConfig(50, 31));
  GeneratedWorkload w2 = GenerateWorkload(ScaledConfig(50, 31));
  Engine e1(std::move(w1.universe), QualityModel::MakeDefault());
  Engine e2(std::move(w2.universe), QualityModel::MakeDefault());
  ProblemSpec spec;
  spec.max_sources = 10;
  Result<Solution> a = e1.Solve(spec, SolverKind::kTabu, MediumSolve(7));
  Result<Solution> b = e2.Solve(spec, SolverKind::kTabu, MediumSolve(7));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->sources, b->sources);
  EXPECT_DOUBLE_EQ(a->quality, b->quality);
  EXPECT_EQ(a->mediated_schema.num_gas(), b->mediated_schema.num_gas());
}

TEST_F(IntegrationTest, CatalogRoundTripPreservesSolutions) {
  // Serialize the engine's universe to a catalog, reload it, and verify an
  // identical problem yields the identical solution — the full
  // generator → catalog → parser → engine → solver pipeline.
  GeneratedWorkload w = GenerateWorkload(ScaledConfig(40, 41));
  std::string text = WriteCatalog(w.universe);
  Result<Universe> reloaded = ParseCatalog(text);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();

  Engine original(std::move(w.universe), QualityModel::MakeDefault());
  Engine parsed(std::move(reloaded).value(), QualityModel::MakeDefault());
  ProblemSpec spec;
  spec.max_sources = 8;
  Result<Solution> a = original.Solve(spec, SolverKind::kTabu,
                                      MediumSolve(5));
  Result<Solution> b = parsed.Solve(spec, SolverKind::kTabu, MediumSolve(5));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->sources, b->sources);
  EXPECT_DOUBLE_EQ(a->quality, b->quality);
  EXPECT_EQ(a->mediated_schema.num_gas(), b->mediated_schema.num_gas());
}

TEST_F(IntegrationTest, MixedDomainSessionWorkflow) {
  // Full loop on a polluted universe: solve, ban an off-domain source the
  // solver picked, re-solve; the ban holds and quality stays reasonable.
  MixedWorkloadConfig config;
  config.base.num_sources = 80;
  config.base.seed = 47;
  config.base.scale = 0.002;
  config.mix = {{FindDomain("books"), 0.6}, {FindDomain("movies"), 0.4}};
  Result<MixedWorkload> workload = GenerateMixedWorkload(config);
  ASSERT_TRUE(workload.ok());
  std::vector<int> domain_of = workload->domain_of;

  Engine engine(std::move(workload->universe), QualityModel::MakeDefault());
  Session session(&engine);
  session.SetMaxSources(10);
  ASSERT_TRUE(session.Iterate(SolverKind::kTabu, MediumSolve()).ok());

  // Ban the first off-domain (movies) source in the solution, if any.
  SourceId banned = -1;
  for (SourceId s : session.last()->sources) {
    if (domain_of[static_cast<size_t>(s)] != 0) {
      banned = s;
      break;
    }
  }
  if (banned >= 0) {
    ASSERT_TRUE(session.BanSource(banned).ok());
    ASSERT_TRUE(session.Iterate(SolverKind::kTabu, MediumSolve(48)).ok());
    EXPECT_FALSE(std::binary_search(session.last()->sources.begin(),
                                    session.last()->sources.end(), banned));
  }
  EXPECT_GT(session.last()->quality, 0.0);
  EXPECT_TRUE(session.last()->mediated_schema.GasAreDisjointAndValid());
}

TEST_F(IntegrationTest, CompoundUniverseSolvesEndToEnd) {
  // Fuse two attributes of the first source and run the whole engine over
  // the derived universe; solutions must remain structurally valid.
  GeneratedWorkload w = GenerateWorkload(ScaledConfig(30, 53));
  ASSERT_GE(w.universe.source(0).schema().num_attributes(), 2);
  CompoundGroup group;
  group.source = 0;
  group.attr_indices = {0, 1};
  auto derived = BuildCompoundUniverse(w.universe, {group});
  ASSERT_TRUE(derived.ok());
  Engine engine(std::move(derived->first), QualityModel::MakeDefault());
  ProblemSpec spec;
  spec.max_sources = 8;
  spec.source_constraints = {0};  // force the compound source in
  Result<Solution> solution =
      engine.Solve(spec, SolverKind::kTabu, MediumSolve());
  ASSERT_TRUE(solution.ok()) << solution.status();
  EXPECT_TRUE(std::binary_search(solution->sources.begin(),
                                 solution->sources.end(), 0));
  EXPECT_TRUE(solution->mediated_schema.GasAreDisjointAndValid());
  // Any GA touching source 0 expands to valid original ids.
  for (const GlobalAttribute& ga : solution->mediated_schema.gas()) {
    if (!ga.TouchesSource(0)) continue;
    Result<std::vector<AttributeId>> expanded = derived->second.ExpandGa(ga);
    ASSERT_TRUE(expanded.ok()) << expanded.status();
    EXPECT_GE(expanded->size(), static_cast<size_t>(ga.size()));
  }
}

}  // namespace
}  // namespace ube
