// The live-universe layer: deterministic churn feeds, incremental universe
// and similarity-graph maintenance, tombstone/revive semantics, and
// aggregate consistency under churn. The breadth version of the
// patched-vs-rebuilt graph check lives in test_property_similarity.cc; here
// the semantics of each event kind are pinned one by one.
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "catalog/change_feed.h"
#include "matching/similarity_graph.h"
#include "source/compound.h"
#include "source/flaky.h"
#include "source/live_universe.h"
#include "text/similarity.h"
#include "workload/generator.h"

namespace ube {
namespace {

Universe SmallUniverse(int num_sources = 20) {
  WorkloadConfig config;
  config.num_sources = num_sources;
  config.scale = 0.001;
  return GenerateWorkload(config).universe;
}

ChurnFeedConfig BusyFeed(uint64_t seed = 7) {
  ChurnFeedConfig config;
  config.seed = seed;
  config.events_per_sec = 3.0;
  config.horizon_ms = 10'000.0;  // ~30 events
  return config;
}

uint64_t RebuildFingerprint(const Universe& universe) {
  return SimilarityGraph(universe, MakeDefaultSimilarity(), 0.25)
      .Fingerprint();
}

TEST(ChurnFeedTest, ReplaysBitIdenticallyFromSeedRateHorizon) {
  Universe universe = SmallUniverse();
  ChurnTrace a = GenerateChurnTrace(universe, BusyFeed(123)).value();
  ChurnTrace b = GenerateChurnTrace(universe, BusyFeed(123)).value();
  ASSERT_FALSE(a.events.empty());
  ASSERT_EQ(a.events.size(), b.events.size());
  EXPECT_EQ(ChurnTraceFingerprint(a), ChurnTraceFingerprint(b));
  // A different seed produces a different stream.
  ChurnTrace c = GenerateChurnTrace(universe, BusyFeed(124)).value();
  EXPECT_NE(ChurnTraceFingerprint(a), ChurnTraceFingerprint(c));
}

TEST(ChurnFeedTest, EventsAreOrderedInsideHorizonAndApplyCleanly) {
  Universe universe = SmallUniverse();
  ChurnFeedConfig config = BusyFeed(99);
  ChurnTrace trace = GenerateChurnTrace(universe, config).value();
  ASSERT_FALSE(trace.events.empty());
  double last = 0.0;
  int kinds_seen[kNumChurnEventKinds] = {};
  for (const ChurnEvent& event : trace.events) {
    EXPECT_GE(event.time_ms, last);
    EXPECT_LE(event.time_ms, config.horizon_ms);
    last = event.time_ms;
    ++kinds_seen[static_cast<int>(event.kind)];
  }
  // With uniform-ish weights over ~30 events, every kind shows up.
  EXPECT_GT(kinds_seen[static_cast<int>(ChurnEventKind::kStaleRefresh)] +
                kinds_seen[static_cast<int>(ChurnEventKind::kDrift)],
            0);
  // The generator mirrors the applier's state machine: a generated trace
  // always applies without error.
  LiveUniverse live(std::move(universe));
  EXPECT_TRUE(live.ApplyAll(trace).ok());
  EXPECT_EQ(live.version(), static_cast<int64_t>(trace.events.size()));
}

TEST(ChurnFeedTest, NeverRemovesBelowMinAlive) {
  Universe universe = SmallUniverse(6);
  ChurnFeedConfig config = BusyFeed(5);
  config.remove_weight = 50.0;  // removal-hungry feed
  config.add_weight = 0.5;
  config.min_alive = 3;
  ChurnTrace trace = GenerateChurnTrace(universe, config).value();
  LiveUniverse live(std::move(universe));
  for (const ChurnEvent& event : trace.events) {
    ASSERT_TRUE(live.Apply(event).ok());
    EXPECT_GE(live.universe().num_available(), config.min_alive);
  }
}

// Declared-capacity guard: downstream structures (SearchState's
// SourceBitset, the delta evaluator's per-source tables) size fixed-width
// state at universe build, so an add-event that would grow past the cap
// must fail with a Status — leaving universe, graph and version untouched
// — instead of minting an id those structures cannot index.
TEST(LiveUniverseTest, AddPastDeclaredCapacityFailsWithoutMutating) {
  Universe universe = SmallUniverse(8);
  LiveUniverse::Options options;
  options.max_sources = 8;
  LiveUniverse live(std::move(universe), std::move(options));
  const uint64_t graph_before = live.graph().Fingerprint();

  ChurnEvent add;
  add.time_ms = 5.0;
  add.kind = ChurnEventKind::kAdd;
  add.source = 8;  // the next dense id — valid shape, over capacity
  add.added = std::make_unique<DataSource>("overflow", SourceSchema());
  Status status = live.Apply(add);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(live.universe().num_sources(), 8);
  EXPECT_EQ(live.version(), 0);
  EXPECT_EQ(live.graph().Fingerprint(), graph_before);

  // Remove + revive churn stays within the existing id range, so it is
  // unaffected by the cap.
  ChurnEvent remove;
  remove.time_ms = 6.0;
  remove.kind = ChurnEventKind::kRemove;
  remove.source = 3;
  ASSERT_TRUE(live.Apply(remove).ok());
  ChurnEvent revive;
  revive.time_ms = 7.0;
  revive.kind = ChurnEventKind::kAdd;
  revive.source = 3;
  revive.revive = true;
  ASSERT_TRUE(live.Apply(revive).ok());
  EXPECT_EQ(live.universe().num_sources(), 8);
}

TEST(LiveUniverseTest, RemoveCollapsesToShellWithStableIds) {
  Universe universe = SmallUniverse(8);
  const int n = universe.num_sources();
  const std::string name = universe.source(3).name();
  LiveUniverse live(std::move(universe));

  ChurnEvent remove;
  remove.time_ms = 5.0;
  remove.kind = ChurnEventKind::kRemove;
  remove.source = 3;
  ASSERT_TRUE(live.Apply(remove).ok());

  EXPECT_EQ(live.universe().num_sources(), n);  // ids stable
  const DataSource& shell = live.universe().source(3);
  EXPECT_EQ(shell.name(), name);
  EXPECT_FALSE(shell.available());
  EXPECT_TRUE(shell.schema().names().empty());
  EXPECT_EQ(shell.stats_state(), StatsState::kMissing);
  EXPECT_EQ(live.universe().UnavailableIds(), std::vector<SourceId>{3});
  EXPECT_EQ(live.graph().Fingerprint(), RebuildFingerprint(live.universe()));
}

TEST(LiveUniverseTest, ReviveRestoresByteIdenticalDescription) {
  Universe universe = SmallUniverse(8);
  LiveUniverse live(std::move(universe));
  const std::string before = WriteCatalog(live.universe());
  const uint64_t graph_before = live.graph().Fingerprint();

  ChurnEvent remove;
  remove.time_ms = 5.0;
  remove.kind = ChurnEventKind::kRemove;
  remove.source = 2;
  ASSERT_TRUE(live.Apply(remove).ok());
  EXPECT_NE(WriteCatalog(live.universe()), before);

  ChurnEvent revive;
  revive.time_ms = 9.0;
  revive.kind = ChurnEventKind::kAdd;
  revive.source = 2;
  revive.revive = true;
  ASSERT_TRUE(live.Apply(revive).ok());

  // Byte-identical catalog text: schema, cardinality, characteristics,
  // signature bits and state all came back.
  EXPECT_EQ(WriteCatalog(live.universe()), before);
  EXPECT_EQ(live.graph().Fingerprint(), graph_before);
}

TEST(LiveUniverseTest, BrandNewSourceTakesNextIdAndJoinsGraph) {
  Universe universe = SmallUniverse(6);
  const int n = universe.num_sources();
  LiveUniverse live(std::move(universe));

  ChurnEvent add;
  add.time_ms = 1.0;
  add.kind = ChurnEventKind::kAdd;
  add.source = n;
  add.added =
      std::make_unique<DataSource>("newcomer", SourceSchema({"title", "price"}));
  add.added->set_cardinality(777);
  ASSERT_TRUE(live.Apply(add).ok());

  ASSERT_EQ(live.universe().num_sources(), n + 1);
  EXPECT_EQ(live.universe().source(n).name(), "newcomer");
  EXPECT_TRUE(live.universe().source(n).available());
  EXPECT_EQ(live.graph().Fingerprint(), RebuildFingerprint(live.universe()));
  EXPECT_EQ(live.health().FindBreaker(n), nullptr);
}

TEST(LiveUniverseTest, InvalidEventsFailCleanlyAndLeaveStateUntouched) {
  Universe universe = SmallUniverse(6);
  LiveUniverse live(std::move(universe));
  const std::string snapshot = WriteCatalog(live.universe());

  ChurnEvent event;
  event.time_ms = 10.0;
  event.kind = ChurnEventKind::kStaleRefresh;
  event.source = 1;
  event.staleness = 0.4;
  ASSERT_TRUE(live.Apply(event).ok());
  const int64_t version = live.version();

  // Out-of-order time.
  ChurnEvent stale;
  stale.time_ms = 5.0;
  stale.kind = ChurnEventKind::kDrift;
  stale.source = 1;
  EXPECT_FALSE(live.Apply(stale).ok());

  // Revive without a tombstone.
  ChurnEvent revive;
  revive.time_ms = 11.0;
  revive.kind = ChurnEventKind::kAdd;
  revive.source = 2;
  revive.revive = true;
  EXPECT_FALSE(live.Apply(revive).ok());

  // Brand-new add must take the next id.
  ChurnEvent add;
  add.time_ms = 11.0;
  add.kind = ChurnEventKind::kAdd;
  add.source = 99;
  add.added = std::make_unique<DataSource>("x", SourceSchema({"a"}));
  EXPECT_FALSE(live.Apply(add).ok());

  // Add with no payload.
  ChurnEvent empty_add;
  empty_add.time_ms = 11.0;
  empty_add.kind = ChurnEventKind::kAdd;
  empty_add.source = live.universe().num_sources();
  EXPECT_FALSE(live.Apply(empty_add).ok());

  // Remove of an already-removed source.
  ChurnEvent remove;
  remove.time_ms = 12.0;
  remove.kind = ChurnEventKind::kRemove;
  remove.source = 3;
  ASSERT_TRUE(live.Apply(remove).ok());
  ChurnEvent again = std::move(remove);
  again.time_ms = 13.0;
  EXPECT_FALSE(live.Apply(again).ok());

  // Drift with a non-positive factor, and on an unavailable source.
  ChurnEvent drift;
  drift.time_ms = 14.0;
  drift.kind = ChurnEventKind::kDrift;
  drift.source = 1;
  drift.cardinality_factor = 0.0;
  EXPECT_FALSE(live.Apply(drift).ok());
  drift.cardinality_factor = 1.2;
  drift.source = 3;
  EXPECT_FALSE(live.Apply(drift).ok());

  // Only the valid events advanced the version.
  EXPECT_EQ(live.version(), version + 1);
}

TEST(LiveUniverseTest, StaleRefreshAndDriftUpdateStatistics) {
  Universe universe = SmallUniverse(6);
  const int64_t cardinality = universe.source(0).cardinality();
  LiveUniverse live(std::move(universe));

  ChurnEvent stale;
  stale.time_ms = 1.0;
  stale.kind = ChurnEventKind::kStaleRefresh;
  stale.source = 0;
  stale.staleness = 0.6;
  ASSERT_TRUE(live.Apply(stale).ok());
  EXPECT_EQ(live.universe().source(0).stats_state(), StatsState::kStale);
  EXPECT_EQ(live.universe().source(0).staleness(), 0.6);

  ChurnEvent refresh;
  refresh.time_ms = 2.0;
  refresh.kind = ChurnEventKind::kStaleRefresh;
  refresh.source = 0;
  refresh.staleness = 0.0;  // successful refresh
  ASSERT_TRUE(live.Apply(refresh).ok());
  EXPECT_TRUE(live.universe().source(0).stats_fresh());

  ChurnEvent drift;
  drift.time_ms = 3.0;
  drift.kind = ChurnEventKind::kDrift;
  drift.source = 0;
  drift.cardinality_factor = 2.0;
  drift.characteristic_factor = 1.0;
  ASSERT_TRUE(live.Apply(drift).ok());
  EXPECT_EQ(live.universe().source(0).cardinality(), 2 * cardinality);
}

// Fresh*/union aggregates are lazily cached in Universe; every mutation
// path LiveUniverse uses must dirty them. Compare against a cold clone
// whose caches were never warm.
TEST(LiveUniverseTest, AggregatesStayConsistentUnderChurn) {
  Universe universe = SmallUniverse();
  LiveUniverse live(std::move(universe));
  // Warm the caches before churning so stale caches would be caught.
  (void)live.universe().FreshUnionCardinalityEstimate();
  (void)live.universe().UnionCardinalityEstimate();
  (void)live.universe().TotalCardinality();

  ChurnTrace trace = GenerateChurnTrace(live.universe(), BusyFeed(31)).value();
  ASSERT_TRUE(live.ApplyAll(trace).ok());

  Universe cold = CloneUniverse(live.universe());
  EXPECT_EQ(live.universe().TotalCardinality(), cold.TotalCardinality());
  EXPECT_EQ(live.universe().FreshCardinality(), cold.FreshCardinality());
  EXPECT_EQ(live.universe().UnionCardinalityEstimate(),
            cold.UnionCardinalityEstimate());
  EXPECT_EQ(live.universe().FreshUnionCardinalityEstimate(),
            cold.FreshUnionCardinalityEstimate());
  EXPECT_EQ(live.universe().num_available(), cold.num_available());
}

TEST(LiveUniverseTest, ApplyAllIsDeterministicAcrossInstances) {
  Universe universe = SmallUniverse();
  ChurnTrace trace = GenerateChurnTrace(universe, BusyFeed(77)).value();
  LiveUniverse a(CloneUniverse(universe));
  LiveUniverse b(std::move(universe));
  ASSERT_TRUE(a.ApplyAll(trace).ok());
  ASSERT_TRUE(b.ApplyAll(trace).ok());
  EXPECT_EQ(a.graph().Fingerprint(), b.graph().Fingerprint());
  EXPECT_EQ(WriteCatalog(a.universe()), WriteCatalog(b.universe()));
}

TEST(ChurnFeedTest, MalformedConfigsAreRejectedNotClamped) {
  Universe universe = SmallUniverse(6);
  auto expect_invalid = [&universe](ChurnFeedConfig config) {
    Result<ChurnTrace> trace = GenerateChurnTrace(universe, config);
    ASSERT_FALSE(trace.ok());
    EXPECT_EQ(trace.status().code(), StatusCode::kInvalidArgument);
  };
  ChurnFeedConfig negative_weight = BusyFeed();
  negative_weight.attr_drop_weight = -0.5;
  expect_invalid(negative_weight);
  ChurnFeedConfig nan_weight = BusyFeed();
  nan_weight.stale_weight = std::numeric_limits<double>::quiet_NaN();
  expect_invalid(nan_weight);
  ChurnFeedConfig inf_rate = BusyFeed();
  inf_rate.events_per_sec = std::numeric_limits<double>::infinity();
  expect_invalid(inf_rate);
  ChurnFeedConfig bad_fraction = BusyFeed();
  bad_fraction.revive_fraction = 1.5;
  expect_invalid(bad_fraction);
  ChurnFeedConfig negative_min_alive = BusyFeed();
  negative_min_alive.min_alive = -1;
  expect_invalid(negative_min_alive);
  // min_alive above the universe's current alive count: the feed could
  // never honor the floor.
  ChurnFeedConfig unreachable_floor = BusyFeed();
  unreachable_floor.min_alive = 7;
  expect_invalid(unreachable_floor);
}

TEST(ChurnFeedTest, DriftEventsAppearAndApplyCleanly) {
  Universe universe = SmallUniverse();
  ChurnFeedConfig config = BusyFeed(17);
  config.events_per_sec = 6.0;  // ~60 events
  config.attr_rename_weight = 4.0;
  config.attr_add_weight = 2.0;
  config.attr_drop_weight = 2.0;
  ChurnTrace trace = GenerateChurnTrace(universe, config).value();
  int renames = 0, adds = 0, drops = 0;
  for (const ChurnEvent& event : trace.events) {
    if (event.kind == ChurnEventKind::kAttrRename) ++renames;
    if (event.kind == ChurnEventKind::kAttrAdd) ++adds;
    if (event.kind == ChurnEventKind::kAttrDrop) ++drops;
    if (IsSchemaDrift(event.kind)) {
      EXPECT_GE(event.attr_index, 0);
      if (event.kind != ChurnEventKind::kAttrDrop) {
        EXPECT_FALSE(event.attr_name.empty());
      }
    }
  }
  EXPECT_GT(renames, 0);
  EXPECT_GT(adds, 0);
  EXPECT_GT(drops, 0);
  LiveUniverse live(std::move(universe));
  ASSERT_TRUE(live.ApplyAll(trace).ok());
  EXPECT_EQ(live.graph().Fingerprint(), RebuildFingerprint(live.universe()));
}

TEST(LiveUniverseTest, AttrRenameUpdatesSchemaAndGraph) {
  Universe universe = SmallUniverse(6);
  LiveUniverse live(std::move(universe));
  const int width = live.universe().source(2).schema().num_attributes();
  ASSERT_GE(width, 1);

  ChurnEvent rename;
  rename.time_ms = 1.0;
  rename.kind = ChurnEventKind::kAttrRename;
  rename.source = 2;
  rename.attr_index = 0;
  rename.attr_name = "renamed_attr";
  ASSERT_TRUE(live.Apply(rename).ok());
  EXPECT_EQ(live.universe().source(2).schema().attribute_name(0),
            "renamed_attr");
  EXPECT_EQ(live.universe().source(2).schema().num_attributes(), width);
  EXPECT_EQ(live.graph().Fingerprint(), RebuildFingerprint(live.universe()));
}

TEST(LiveUniverseTest, AttrAddAppendsAndAttrDropShifts) {
  Universe universe = SmallUniverse(6);
  LiveUniverse live(std::move(universe));
  const int width = live.universe().source(1).schema().num_attributes();

  ChurnEvent add;
  add.time_ms = 1.0;
  add.kind = ChurnEventKind::kAttrAdd;
  add.source = 1;
  add.attr_index = width;  // must equal the schema width at apply time
  add.attr_name = "brand_new";
  ASSERT_TRUE(live.Apply(add).ok());
  EXPECT_EQ(live.universe().source(1).schema().num_attributes(), width + 1);
  EXPECT_EQ(live.universe().source(1).schema().attribute_name(width),
            "brand_new");
  EXPECT_EQ(live.graph().Fingerprint(), RebuildFingerprint(live.universe()));

  const std::string last =
      live.universe().source(1).schema().attribute_name(width);
  ChurnEvent drop;
  drop.time_ms = 2.0;
  drop.kind = ChurnEventKind::kAttrDrop;
  drop.source = 1;
  drop.attr_index = 0;
  ASSERT_TRUE(live.Apply(drop).ok());
  EXPECT_EQ(live.universe().source(1).schema().num_attributes(), width);
  // Later attributes shifted down by one.
  EXPECT_EQ(live.universe().source(1).schema().attribute_name(width - 1), last);
  EXPECT_EQ(live.graph().Fingerprint(), RebuildFingerprint(live.universe()));
}

TEST(LiveUniverseTest, MalformedDriftEventsFailCleanly) {
  Universe universe = SmallUniverse(6);
  LiveUniverse live(std::move(universe));
  const uint64_t graph_before = live.graph().Fingerprint();
  const int width = live.universe().source(0).schema().num_attributes();

  // Rename out of range / empty name.
  ChurnEvent rename;
  rename.time_ms = 1.0;
  rename.kind = ChurnEventKind::kAttrRename;
  rename.source = 0;
  rename.attr_index = width;
  rename.attr_name = "x";
  EXPECT_FALSE(live.Apply(rename).ok());
  rename.attr_index = 0;
  rename.attr_name = "";
  EXPECT_FALSE(live.Apply(rename).ok());

  // Add at the wrong index (the analogue of the dense-id rule).
  ChurnEvent add;
  add.time_ms = 1.0;
  add.kind = ChurnEventKind::kAttrAdd;
  add.source = 0;
  add.attr_index = 0;
  add.attr_name = "x";
  if (width != 0) EXPECT_FALSE(live.Apply(add).ok());

  // Drop out of range, and on an unavailable source.
  ChurnEvent drop;
  drop.time_ms = 1.0;
  drop.kind = ChurnEventKind::kAttrDrop;
  drop.source = 0;
  drop.attr_index = width;
  EXPECT_FALSE(live.Apply(drop).ok());

  ChurnEvent remove;
  remove.time_ms = 2.0;
  remove.kind = ChurnEventKind::kRemove;
  remove.source = 3;
  ASSERT_TRUE(live.Apply(remove).ok());
  ChurnEvent drift_dead;
  drift_dead.time_ms = 3.0;
  drift_dead.kind = ChurnEventKind::kAttrRename;
  drift_dead.source = 3;
  drift_dead.attr_index = 0;
  drift_dead.attr_name = "x";
  EXPECT_FALSE(live.Apply(drift_dead).ok());

  EXPECT_EQ(live.universe().source(0).schema().num_attributes(), width);
  // The one successful event was the remove.
  EXPECT_EQ(live.version(), 1);
  EXPECT_NE(live.graph().Fingerprint(), graph_before);
  EXPECT_EQ(live.graph().Fingerprint(), RebuildFingerprint(live.universe()));
}

TEST(LiveUniverseTest, AttrDropNeverStripsLastAttribute) {
  Universe universe;
  DataSource one("solo", SourceSchema({"only"}));
  one.set_cardinality(10);
  universe.AddSource(std::move(one));
  DataSource two("pair", SourceSchema({"a", "b"}));
  two.set_cardinality(10);
  universe.AddSource(std::move(two));
  LiveUniverse live(std::move(universe));

  ChurnEvent drop;
  drop.time_ms = 1.0;
  drop.kind = ChurnEventKind::kAttrDrop;
  drop.source = 0;
  drop.attr_index = 0;
  EXPECT_FALSE(live.Apply(drop).ok());
  EXPECT_EQ(live.universe().source(0).schema().num_attributes(), 1);

  drop.source = 1;
  ASSERT_TRUE(live.Apply(drop).ok());
  EXPECT_EQ(live.universe().source(1).schema().num_attributes(), 1);
}

TEST(LiveUniverseTest, CompoundUniverseBuildsOverChurnedUniverse) {
  Universe universe = SmallUniverse();
  LiveUniverse live(std::move(universe));
  ChurnTrace trace = GenerateChurnTrace(live.universe(), BusyFeed(13)).value();
  ASSERT_TRUE(live.ApplyAll(trace).ok());

  // Fuse the first two attributes of the first available source with a
  // schema of >= 2 attributes.
  SourceId target = -1;
  for (SourceId s = 0; s < live.universe().num_sources(); ++s) {
    const DataSource& source = live.universe().source(s);
    if (source.available() && source.schema().num_attributes() >= 2) {
      target = s;
      break;
    }
  }
  ASSERT_GE(target, 0);
  CompoundGroup group;
  group.source = target;
  group.attr_indices = {0, 1};
  Result<std::pair<Universe, CompoundMapping>> compound =
      BuildCompoundUniverse(live.universe(), {group});
  ASSERT_TRUE(compound.ok()) << compound.status();
  EXPECT_EQ(compound->first.num_sources(), live.universe().num_sources());
  EXPECT_EQ(compound->first.source(target).schema().num_attributes(),
            live.universe().source(target).schema().num_attributes() - 1);
}

}  // namespace
}  // namespace ube
