#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <set>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include <gtest/gtest.h>

#include "util/distributions.h"
#include "util/json.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/strings.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace ube {
namespace {

// --------------------------- Status / Result ---------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status s = Status::InvalidArgument("bad weight");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad weight");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad weight");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kInvalidArgument), "INVALID_ARGUMENT");
  EXPECT_EQ(StatusCodeName(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_EQ(StatusCodeName(StatusCode::kFailedPrecondition),
            "FAILED_PRECONDITION");
  EXPECT_EQ(StatusCodeName(StatusCode::kInfeasible), "INFEASIBLE");
  EXPECT_EQ(StatusCodeName(StatusCode::kInternal), "INTERNAL");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = []() -> Status { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    UBE_RETURN_IF_ERROR(fails());
    return Status::Ok();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

TEST(ResultDeathTest, ValueOnErrorAborts) {
  Result<int> r(Status::Internal("x"));
  EXPECT_DEATH((void)r.value(), "Result::value");
}

TEST(ResultDeathTest, OkStatusRejected) {
  EXPECT_DEATH(Result<int>{Status::Ok()}, "OK Status");
}

// ------------------------------- Rng -----------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.Next64() == b.Next64());
  EXPECT_LT(equal, 4);
}

TEST(RngTest, ZeroSeedIsValid) {
  Rng rng(0);
  EXPECT_NE(rng.Next64(), rng.Next64());
}

TEST(RngTest, UniformIntRespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.UniformInt(bound), bound);
  }
}

TEST(RngTest, UniformIntRangeInclusive) {
  Rng rng(8);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit with 500 draws
}

TEST(RngTest, UniformIntCoversAllResidues) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 400; ++i) seen.insert(rng.UniformInt(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformDoubleInHalfOpenUnit) {
  Rng rng(10);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformDoubleRange) {
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    double v = rng.UniformDouble(5.0, 6.5);
    EXPECT_GE(v, 5.0);
    EXPECT_LT(v, 6.5);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(12);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, StandardNormalMoments) {
  Rng rng(14);
  const int n = 50000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double x = rng.StandardNormal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, ForkProducesIndependentStreams) {
  Rng parent(99);
  Rng child1 = parent.Fork(1);
  Rng parent2(99);
  Rng child2 = parent2.Fork(1);
  // Same label + same parent state => same stream.
  for (int i = 0; i < 20; ++i) EXPECT_EQ(child1.Next64(), child2.Next64());
  // Different labels => different streams.
  Rng parent3(99);
  Rng other = parent3.Fork(2);
  int equal = 0;
  Rng parent4(99);
  Rng base = parent4.Fork(1);
  for (int i = 0; i < 64; ++i) equal += (base.Next64() == other.Next64());
  EXPECT_LT(equal, 4);
}

TEST(RngTest, SplitMix64KnownValues) {
  // Reference values from the splitmix64 reference implementation.
  EXPECT_EQ(SplitMix64(0), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(SplitMix64(1), 0x910a2dec89025cc1ULL);
}

// --------------------------- Distributions ------------------------------

TEST(ZipfTest, SamplesWithinRange) {
  Rng rng(1);
  ZipfSampler zipf(100, 1.0);
  for (int i = 0; i < 1000; ++i) {
    int r = zipf.Sample(rng);
    EXPECT_GE(r, 1);
    EXPECT_LE(r, 100);
  }
}

TEST(ZipfTest, SingleRank) {
  Rng rng(2);
  ZipfSampler zipf(1, 1.0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf.Sample(rng), 1);
}

TEST(ZipfTest, LowRanksDominate) {
  Rng rng(3);
  ZipfSampler zipf(50, 1.0);
  int rank1 = 0, rank_ge_10 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    int r = zipf.Sample(rng);
    if (r == 1) ++rank1;
    if (r >= 10) ++rank_ge_10;
  }
  // P(rank=1) ≈ 1/H_50 ≈ 0.222 for s=1.
  EXPECT_NEAR(static_cast<double>(rank1) / n, 0.222, 0.03);
  EXPECT_GT(rank1, 0);
  EXPECT_GT(rank_ge_10, 0);
}

TEST(ZipfTest, HigherExponentSkewsMore) {
  Rng rng1(4), rng2(4);
  ZipfSampler flat(50, 0.5), steep(50, 2.0);
  int flat1 = 0, steep1 = 0;
  for (int i = 0; i < 5000; ++i) {
    flat1 += (flat.Sample(rng1) == 1);
    steep1 += (steep.Sample(rng2) == 1);
  }
  EXPECT_GT(steep1, flat1);
}

TEST(TruncatedNormalTest, RespectsLowerBound) {
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_GT(TruncatedNormal(rng, 100.0, 40.0, 1.0), 1.0);
  }
}

TEST(TruncatedNormalTest, MeanApproximatelyPreserved) {
  Rng rng(6);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += TruncatedNormal(rng, 100.0, 40.0, 1.0);
  // Truncation at 1.0 (2.5 sigmas below) barely shifts the mean.
  EXPECT_NEAR(sum / n, 100.0, 2.0);
}

TEST(ZipfRankToRangeTest, Endpoints) {
  EXPECT_EQ(ZipfRankToRange(1, 100, 10, 1000), 1000);
  EXPECT_EQ(ZipfRankToRange(100, 100, 10, 1000), 10);
  EXPECT_EQ(ZipfRankToRange(1, 1, 10, 1000), 1000);
}

TEST(ZipfRankToRangeTest, MonotoneDecreasingInRank) {
  int64_t prev = ZipfRankToRange(1, 100, 10, 1000);
  for (int r = 2; r <= 100; ++r) {
    int64_t cur = ZipfRankToRange(r, 100, 10, 1000);
    EXPECT_LE(cur, prev);
    prev = cur;
  }
}

TEST(ZipfRankToRangeTest, ValuesStayInRange) {
  for (int r = 1; r <= 37; ++r) {
    int64_t v = ZipfRankToRange(r, 37, 5, 500);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 500);
  }
}

// ------------------------------ Strings ---------------------------------

TEST(StringsTest, AsciiToLower) {
  EXPECT_EQ(AsciiToLower("Hello World"), "hello world");
  EXPECT_EQ(AsciiToLower("ALL CAPS 123"), "all caps 123");
  EXPECT_EQ(AsciiToLower(""), "");
}

TEST(StringsTest, SplitTokens) {
  EXPECT_EQ(SplitTokens("a b  c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitTokens("  leading and trailing  "),
            (std::vector<std::string>{"leading", "and", "trailing"}));
  EXPECT_TRUE(SplitTokens("").empty());
  EXPECT_TRUE(SplitTokens("   ").empty());
}

TEST(StringsTest, SplitTokensCustomDelims) {
  EXPECT_EQ(SplitTokens("a,b;c", ",;"),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(StringsTest, TrimWhitespace) {
  EXPECT_EQ(TrimWhitespace("  x y  "), "x y");
  EXPECT_EQ(TrimWhitespace("x"), "x");
  EXPECT_EQ(TrimWhitespace("   "), "");
  EXPECT_EQ(TrimWhitespace(""), "");
}

TEST(StringsTest, NormalizeAttributeName) {
  EXPECT_EQ(NormalizeAttributeName("First_Name "), "first name");
  EXPECT_EQ(NormalizeAttributeName("first  name"), "first name");
  EXPECT_EQ(NormalizeAttributeName("ISBN-13"), "isbn 13");
  EXPECT_EQ(NormalizeAttributeName("___"), "");
  EXPECT_EQ(NormalizeAttributeName("price($)"), "price");
}

TEST(StringsTest, NormalizationIsIdempotent) {
  for (const char* s : {"A  b_C", "keyword", " Author Name ", "isbn#10"}) {
    std::string once = NormalizeAttributeName(s);
    EXPECT_EQ(NormalizeAttributeName(once), once);
  }
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(TimerTest, MeasuresElapsedTime) {
  WallTimer timer;
  double t0 = timer.ElapsedSeconds();
  EXPECT_GE(t0, 0.0);
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) {
    sink = sink + std::sqrt(static_cast<double>(i));
  }
  EXPECT_GE(timer.ElapsedSeconds(), t0);
  timer.Reset();
  EXPECT_LT(timer.ElapsedSeconds(), 1.0);
}

// ------------------------------ ThreadPool ------------------------------

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.num_threads(), threads);
    const size_t n = 10007;
    std::vector<std::atomic<int>> visits(n);
    for (auto& v : visits) v.store(0);
    pool.ParallelFor(n, [&](size_t i) {
      visits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(visits[i].load(), 1) << "index " << i;
    }
  }
}

TEST(ThreadPoolTest, ParallelForHandlesEmptyAndReuse) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "must not be called"; });
  // The pool is reusable across many batches.
  std::atomic<int64_t> sum{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(16, [&](size_t i) {
      sum.fetch_add(static_cast<int64_t>(i), std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(sum.load(), 50 * (15 * 16 / 2));
}

TEST(ThreadPoolTest, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), ThreadPool::HardwareConcurrency());
  EXPECT_GE(ThreadPool::HardwareConcurrency(), 1);
}

TEST(ThreadPoolTest, ThrowingTaskIsRethrownOnCaller) {
  ThreadPool pool(4);
  const size_t n = 257;
  std::vector<std::atomic<int>> visits(n);
  for (auto& v : visits) v.store(0);
  try {
    pool.ParallelFor(n, [&](size_t i) {
      visits[i].fetch_add(1, std::memory_order_relaxed);
      if (i == 100) throw std::runtime_error("boom at 100");
    });
    FAIL() << "expected ParallelFor to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom at 100");
  }
  // The batch drained: every index ran exactly once despite the throw.
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, PoolSurvivesExceptionsAcrossBatches) {
  ThreadPool pool(2);
  for (int round = 0; round < 10; ++round) {
    EXPECT_THROW(
        pool.ParallelFor(8, [](size_t) { throw std::logic_error("again"); }),
        std::logic_error);
  }
  // Workers were not terminated; a clean batch still completes.
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(64, [&](size_t i) {
    sum.fetch_add(static_cast<int64_t>(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 63 * 64 / 2);
}

// ------------------------------- JSON ----------------------------------
// Regression coverage for the shared emitter behind BENCH_*.json and the
// golden loader: stable key order, locale-independent doubles that
// round-trip exactly through the parser, and correct escaping.

TEST(JsonWriterTest, KeysKeepInsertionOrder) {
  json::Writer writer;
  writer.BeginObject();
  writer.Key("zeta");
  writer.Number(static_cast<int64_t>(1));
  writer.Key("alpha");
  writer.Number(static_cast<int64_t>(2));
  writer.Key("mid");
  writer.BeginArray();
  writer.Bool(true);
  writer.Null();
  writer.EndArray();
  writer.EndObject();
  EXPECT_EQ(writer.str(), R"({"zeta":1,"alpha":2,"mid":[true,null]})");
}

TEST(JsonFormatDoubleTest, LocaleIndependentAndNonFiniteIsNull) {
  EXPECT_EQ(json::FormatDouble(0.5), "0.5");
  // %.17g under a comma-decimal locale must still emit '.', never ','.
  EXPECT_EQ(json::FormatDouble(1.5).find(','), std::string::npos);
  EXPECT_EQ(json::FormatDouble(std::numeric_limits<double>::infinity()),
            "null");
  EXPECT_EQ(json::FormatDouble(-std::numeric_limits<double>::infinity()),
            "null");
  EXPECT_EQ(json::FormatDouble(std::nan("")), "null");
}

TEST(JsonFormatDoubleTest, SeventeenDigitsRoundTripExactly) {
  // Values with no short decimal representation: %.17g must carry enough
  // digits that parsing the text recovers the identical bit pattern.
  for (double value : {0.1, 1.0 / 3.0, 0.72493860138457189, 1e-300,
                       123456789.123456789, -2.2250738585072014e-308}) {
    Result<json::Value> parsed = json::Parse(json::FormatDouble(value));
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    ASSERT_TRUE(std::holds_alternative<double>(parsed->data));
    EXPECT_EQ(std::get<double>(parsed->data), value)
        << "round-trip drift for " << json::FormatDouble(value);
  }
}

TEST(JsonEscapeStringTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json::EscapeString("plain"), "\"plain\"");
  EXPECT_EQ(json::EscapeString("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(json::EscapeString("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(json::EscapeString("a\nb\tc"), "\"a\\nb\\tc\"");
  EXPECT_EQ(json::EscapeString(std::string("a\x01z")), "\"a\\u0001z\"");
}

TEST(JsonParseTest, DocumentRoundTripsThroughWriter) {
  json::Writer writer;
  writer.BeginObject();
  writer.Key("bench");
  writer.String("demo \"quoted\"");
  writer.Key("metrics");
  writer.BeginObject();
  writer.Key("wall_ms");
  writer.Number(12.375);
  writer.Key("evals");
  writer.Number(static_cast<int64_t>(12800));
  writer.EndObject();
  writer.EndObject();

  Result<json::Value> parsed = json::Parse(writer.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const auto* top = std::get_if<json::Object>(&parsed->data);
  ASSERT_NE(top, nullptr);
  EXPECT_EQ(std::get<std::string>(top->at("bench").data), "demo \"quoted\"");
  const auto* metrics = std::get_if<json::Object>(&top->at("metrics").data);
  ASSERT_NE(metrics, nullptr);
  EXPECT_EQ(std::get<double>(metrics->at("wall_ms").data), 12.375);
  EXPECT_EQ(std::get<double>(metrics->at("evals").data), 12800.0);
}

TEST(JsonParseTest, RejectsTrailingGarbageAndBadDocuments) {
  EXPECT_FALSE(json::Parse("{} trailing").ok());
  EXPECT_FALSE(json::Parse("{\"a\":}").ok());
  EXPECT_FALSE(json::Parse("[1,").ok());
  EXPECT_FALSE(json::Parse("").ok());
}

}  // namespace
}  // namespace ube
