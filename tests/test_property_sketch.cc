// PCSA sketch properties (ISSUE 3 tentpole, sketch axis).
//
// Exact laws (bitmap-level theorems — each id always sets the same bit, and
// union is bitwise OR): sketching a unioned stream equals OR-merging the
// per-stream sketches; Merge is commutative, associative and idempotent; the
// estimate is monotone under merge (countr_one of each bitmap is monotone
// under OR, and the estimator is increasing in the mean rank).
//
// Statistical law: for 256 bitmaps the standard error is ≈ 4.9%, so a 35%
// relative-error ceiling vs the exact distinct count has enormous margin
// while still catching real estimator regressions (a broken correction term
// or rank scan overshoots far past that).
#include <cstdint>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "sketch/pcsa.h"
#include "testkit/property.h"
#include "util/rng.h"

namespace ube {
namespace {

using testkit::PropertyRunner;

// A random id stream with tunable collision structure: ids are drawn from a
// bounded pool so streams genuinely overlap.
std::vector<uint64_t> RandomStream(Rng& rng, int64_t min_len, int64_t max_len,
                                   uint64_t pool) {
  const int64_t length = rng.UniformInt(min_len, max_len);
  std::vector<uint64_t> stream(static_cast<size_t>(length));
  for (uint64_t& id : stream) id = rng.UniformInt(pool);
  return stream;
}

PcsaSketch SketchOf(const std::vector<uint64_t>& stream, int bitmaps) {
  PcsaSketch sketch(bitmaps);
  for (uint64_t id : stream) sketch.AddHash(id);
  return sketch;
}

TEST(PcsaPropertyTest, UnionSketchEqualsSketchOfUnionedStream) {
  PropertyRunner runner("pcsa-union-equals-stream-union", 50);
  for (int c = 0; c < runner.num_cases(); ++c) {
    SCOPED_TRACE(runner.Replay(c));
    Rng rng = runner.CaseRng(c);
    const int bitmaps = 1 << rng.UniformInt(1, 8);  // 2..256, power of two
    std::vector<uint64_t> a = RandomStream(rng, 0, 3000, 5000);
    std::vector<uint64_t> b = RandomStream(rng, 0, 3000, 5000);

    std::vector<uint64_t> ab = a;
    ab.insert(ab.end(), b.begin(), b.end());

    PcsaSketch merged = PcsaSketch::Union(SketchOf(a, bitmaps),
                                          SketchOf(b, bitmaps));
    EXPECT_EQ(merged, SketchOf(ab, bitmaps));
  }
}

TEST(PcsaPropertyTest, MergeIsCommutativeAssociativeIdempotent) {
  PropertyRunner runner("pcsa-merge-algebra", 50);
  for (int c = 0; c < runner.num_cases(); ++c) {
    SCOPED_TRACE(runner.Replay(c));
    Rng rng = runner.CaseRng(c);
    const int bitmaps = 1 << rng.UniformInt(1, 8);
    PcsaSketch a = SketchOf(RandomStream(rng, 0, 2000, 4000), bitmaps);
    PcsaSketch b = SketchOf(RandomStream(rng, 0, 2000, 4000), bitmaps);
    PcsaSketch d = SketchOf(RandomStream(rng, 0, 2000, 4000), bitmaps);

    EXPECT_EQ(PcsaSketch::Union(a, b), PcsaSketch::Union(b, a));
    EXPECT_EQ(PcsaSketch::Union(PcsaSketch::Union(a, b), d),
              PcsaSketch::Union(a, PcsaSketch::Union(b, d)));
    EXPECT_EQ(PcsaSketch::Union(a, a), a);
  }
}

TEST(PcsaPropertyTest, EstimateMonotoneUnderMerge) {
  PropertyRunner runner("pcsa-estimate-monotone", 50);
  for (int c = 0; c < runner.num_cases(); ++c) {
    SCOPED_TRACE(runner.Replay(c));
    Rng rng = runner.CaseRng(c);
    const int bitmaps = 1 << rng.UniformInt(1, 8);
    PcsaSketch a = SketchOf(RandomStream(rng, 0, 2000, 4000), bitmaps);
    PcsaSketch b = SketchOf(RandomStream(rng, 0, 2000, 4000), bitmaps);
    PcsaSketch merged = PcsaSketch::Union(a, b);
    EXPECT_GE(merged.Estimate(), a.Estimate());
    EXPECT_GE(merged.Estimate(), b.Estimate());
  }
}

TEST(PcsaPropertyTest, EstimateTracksExactDistinctCountOfUnions) {
  PropertyRunner runner("pcsa-vs-exact-union-error", 50);
  constexpr int kBitmaps = 256;       // ≈ 4.9% standard error
  constexpr double kMaxRelError = 0.35;
  for (int c = 0; c < runner.num_cases(); ++c) {
    SCOPED_TRACE(runner.Replay(c));
    Rng rng = runner.CaseRng(c);
    // 3–8 "sources", all drawing from one shared pool like real universes.
    const int num_sources = static_cast<int>(rng.UniformInt(3, 8));
    PcsaSketch merged(kBitmaps);
    std::unordered_set<uint64_t> exact;
    for (int s = 0; s < num_sources; ++s) {
      std::vector<uint64_t> stream = RandomStream(rng, 500, 4000, 20'000);
      merged.Merge(SketchOf(stream, kBitmaps));
      exact.insert(stream.begin(), stream.end());
    }
    ASSERT_GE(exact.size(), 400u);  // keep out of the tiny-count regime
    const double truth = static_cast<double>(exact.size());
    const double estimate = merged.Estimate();
    EXPECT_NEAR(estimate, truth, kMaxRelError * truth)
        << "relative error " << (estimate - truth) / truth;
  }
}

TEST(PcsaPropertyTest, FromBitmapsRoundTripsAndEmptySketchIsEmpty) {
  PropertyRunner runner("pcsa-wire-roundtrip", 20);
  for (int c = 0; c < runner.num_cases(); ++c) {
    SCOPED_TRACE(runner.Replay(c));
    Rng rng = runner.CaseRng(c);
    const int bitmaps = 1 << rng.UniformInt(1, 8);
    EXPECT_TRUE(PcsaSketch(bitmaps).IsEmpty());
    PcsaSketch sketch = SketchOf(RandomStream(rng, 1, 2000, 4000), bitmaps);
    EXPECT_FALSE(sketch.IsEmpty());
    PcsaSketch restored = PcsaSketch::FromBitmaps(sketch.bitmaps());
    EXPECT_EQ(restored, sketch);
    EXPECT_EQ(restored.Estimate(), sketch.Estimate());
  }
}

}  // namespace
}  // namespace ube
