// Tests for the observability layer (src/obs): metrics registry semantics
// and thread-count-independent merges, the scoped-span tracer, the
// telemetry ring, and — most importantly — the contract that attaching an
// ObsContext never changes any computed result: Solutions are bit-identical
// with observability on or off, and prober metric totals reconcile exactly
// with the AcquisitionReport.
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/report.h"
#include "matching/cluster_matcher.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "optimize/evaluator.h"
#include "optimize/solver.h"
#include "qef/quality_model.h"
#include "sketch/distinct_estimator.h"
#include "source/flaky.h"
#include "source/prober.h"
#include "source/universe.h"
#include "util/fault_injection.h"

namespace ube {
namespace {

// ------------------------------ metrics --------------------------------

TEST(MetricsRegistryTest, CountersGaugesHistogramsBasics) {
  obs::MetricsRegistry registry;
  auto hits = registry.Counter("cache.hits");
  auto depth = registry.Gauge("queue.depth");
  auto latency = registry.Histogram("latency_us", {10, 100, 1000});

  registry.Add(hits);
  registry.Add(hits, 4);
  registry.Set(depth, 2.5);
  registry.Observe(latency, 5);     // bucket [<=10]
  registry.Observe(latency, 10);    // bucket [<=10] (bounds are inclusive)
  registry.Observe(latency, 500);   // bucket [<=1000]
  registry.Observe(latency, 5000);  // overflow bucket

  obs::MetricsSnapshot snap = registry.Snapshot();
  const obs::CounterSnapshot* c = snap.FindCounter("cache.hits");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value, 5);
  const obs::GaugeSnapshot* g = snap.FindGauge("queue.depth");
  ASSERT_NE(g, nullptr);
  EXPECT_DOUBLE_EQ(g->value, 2.5);
  const obs::HistogramSnapshot* h = snap.FindHistogram("latency_us");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 4);
  EXPECT_EQ(h->sum, 5515);
  EXPECT_EQ(h->min, 5);
  EXPECT_EQ(h->max, 5000);
  ASSERT_EQ(h->counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(h->counts[0], 2);
  EXPECT_EQ(h->counts[1], 0);
  EXPECT_EQ(h->counts[2], 1);
  EXPECT_EQ(h->counts[3], 1);
}

// Regression: values exactly ON a bucket's upper edge land in that bucket
// (edges are inclusive), edge + 1 lands in the next one, and values below
// the first edge — including negatives — land in the first bucket. A
// off-by-one here silently skews every latency distribution we export.
TEST(MetricsRegistryTest, HistogramBucketBoundariesAreInclusive) {
  obs::MetricsRegistry registry;
  auto h = registry.Histogram("edges", {0, 10, 100});

  registry.Observe(h, -5);   // below first edge -> bucket 0
  registry.Observe(h, 0);    // exactly on edge 0 -> bucket 0
  registry.Observe(h, 1);    // just above edge 0 -> bucket 1
  registry.Observe(h, 10);   // exactly on edge 10 -> bucket 1
  registry.Observe(h, 11);   // just above edge 10 -> bucket 2
  registry.Observe(h, 100);  // exactly on last edge -> bucket 2
  registry.Observe(h, 101);  // just above last edge -> overflow

  obs::MetricsSnapshot snap = registry.Snapshot();
  const obs::HistogramSnapshot* hs = snap.FindHistogram("edges");
  ASSERT_NE(hs, nullptr);
  ASSERT_EQ(hs->counts.size(), 4u);
  EXPECT_EQ(hs->counts[0], 2);
  EXPECT_EQ(hs->counts[1], 2);
  EXPECT_EQ(hs->counts[2], 2);
  EXPECT_EQ(hs->counts[3], 1);
  EXPECT_EQ(hs->count, 7);
  EXPECT_EQ(hs->min, -5);
  EXPECT_EQ(hs->max, 101);
  ASSERT_EQ(hs->bounds.size(), 3u);
  EXPECT_EQ(hs->bounds[0], 0);
  EXPECT_EQ(hs->bounds[2], 100);
}

TEST(MetricsRegistryTest, DisabledRegistryRecordsNothing) {
  obs::MetricsRegistry registry(/*enabled=*/false);
  auto c = registry.Counter("x");
  auto h = registry.Histogram("y", {1, 2});
  registry.Add(c, 10);
  registry.Observe(h, 1);
  registry.Set(registry.Gauge("z"), 1.0);
  obs::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.histograms.empty());
}

TEST(MetricsRegistryTest, RegistrationIsIdempotentByName) {
  obs::MetricsRegistry registry;
  auto a = registry.Counter("same");
  auto b = registry.Counter("same");
  EXPECT_EQ(a, b);
  registry.Add(a);
  registry.Add(b);
  obs::MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].value, 2);
}

// The merge contract the determinism tests lean on: integer counters and
// histograms reach the same totals no matter how many threads recorded
// them or how the per-thread sinks interleaved.
TEST(MetricsRegistryTest, MergeIsDeterministicAcrossThreadCounts) {
  auto run = [](int num_threads) {
    obs::MetricsRegistry registry;
    auto counter = registry.Counter("work.items");
    auto hist = registry.Histogram("work.size", {10, 100, 1000});
    const int total_items = 960;
    const int per_thread = total_items / num_threads;
    std::vector<std::thread> threads;
    for (int t = 0; t < num_threads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < per_thread; ++i) {
          registry.Add(counter);
          // Values depend on the global item index, not the thread, so
          // every partition of the work records the same multiset.
          int64_t value = (t * per_thread + i) % 1500;
          registry.Observe(hist, value);
        }
      });
    }
    for (std::thread& th : threads) th.join();
    return registry.Snapshot();
  };

  obs::MetricsSnapshot one = run(1);
  obs::MetricsSnapshot four = run(4);
  obs::MetricsSnapshot eight = run(8);
  ASSERT_EQ(one.counters.size(), 1u);
  EXPECT_EQ(one.counters[0].value, 960);
  for (const obs::MetricsSnapshot* other : {&four, &eight}) {
    ASSERT_EQ(other->counters.size(), one.counters.size());
    EXPECT_EQ(other->counters[0].value, one.counters[0].value);
    ASSERT_EQ(other->histograms.size(), one.histograms.size());
    EXPECT_EQ(other->histograms[0].counts, one.histograms[0].counts);
    EXPECT_EQ(other->histograms[0].count, one.histograms[0].count);
    EXPECT_EQ(other->histograms[0].sum, one.histograms[0].sum);
    EXPECT_EQ(other->histograms[0].min, one.histograms[0].min);
    EXPECT_EQ(other->histograms[0].max, one.histograms[0].max);
  }
}

TEST(MetricsRegistryTest, LateRegistrationReachesEarlierThreadsSinks) {
  obs::MetricsRegistry registry;
  auto first = registry.Counter("first");
  registry.Add(first);  // this thread's sink sized for one counter
  auto second = registry.Counter("second");
  registry.Add(second);  // forces the too-small sink to be retired/regrown
  registry.Add(first);
  obs::MetricsSnapshot snap = registry.Snapshot();
  const obs::CounterSnapshot* f = snap.FindCounter("first");
  const obs::CounterSnapshot* s = snap.FindCounter("second");
  ASSERT_NE(f, nullptr);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(f->value, 2);
  EXPECT_EQ(s->value, 1);
}

TEST(MetricsRegistryTest, ResetZeroesWithoutInvalidatingIds) {
  obs::MetricsRegistry registry;
  auto c = registry.Counter("c");
  auto h = registry.Histogram("h", {10});
  registry.Add(c, 3);
  registry.Observe(h, 5);
  registry.Reset();
  obs::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.FindCounter("c")->value, 0);
  EXPECT_EQ(snap.FindHistogram("h")->count, 0);
  registry.Add(c);  // the old id must still be valid
  EXPECT_EQ(registry.Snapshot().FindCounter("c")->value, 1);
}

TEST(MetricsReportTest, FormatContainsAllSections) {
  obs::MetricsRegistry registry;
  registry.Add(registry.Counter("hits"), 7);
  registry.Set(registry.Gauge("load"), 0.5);
  registry.Observe(registry.Histogram("lat", {10, 20}), 15);
  std::string report = obs::FormatMetricsReport(registry.Snapshot());
  EXPECT_NE(report.find("counters:"), std::string::npos);
  EXPECT_NE(report.find("hits = 7"), std::string::npos);
  EXPECT_NE(report.find("gauges:"), std::string::npos);
  EXPECT_NE(report.find("histograms:"), std::string::npos);
  EXPECT_NE(report.find("[<=20]=1"), std::string::npos);

  std::string empty = obs::FormatMetricsReport(obs::MetricsSnapshot{});
  EXPECT_NE(empty.find("no metrics recorded"), std::string::npos);
}

// ------------------------------- tracer --------------------------------

TEST(TracerTest, SpansProduceChromeTraceJson) {
  obs::Tracer tracer;
  {
    obs::Tracer::Span outer = tracer.StartSpan("solve/tabu");
    obs::Tracer::Span inner = tracer.StartSpan("eval/batch");
  }
  tracer.AddEvent("manual", 1.0, 2.0);
  EXPECT_EQ(tracer.num_events(), 3);
  std::string json = tracer.ToChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"solve/tabu\""), std::string::npos);
  EXPECT_NE(json.find("\"eval/batch\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Crude structural sanity: balanced braces/brackets.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(TracerTest, DisabledTracerIsNoOp) {
  obs::Tracer tracer(/*enabled=*/false);
  {
    obs::Tracer::Span span = tracer.StartSpan("ignored");
  }
  EXPECT_EQ(tracer.num_events(), 0);
  EXPECT_NE(tracer.ToChromeTraceJson().find("\"traceEvents\""),
            std::string::npos);
  // Null-tracer spans (what SpanIf returns when obs is off) are no-ops too.
  obs::Tracer::Span null_span = obs::SpanIf(nullptr, "also-ignored");
  null_span.End();
}

TEST(TracerTest, SummaryAggregatesByName) {
  obs::Tracer tracer;
  tracer.AddEvent("phase/a", 0.0, 1000.0);
  tracer.AddEvent("phase/a", 2000.0, 3000.0);
  tracer.AddEvent("phase/b", 0.0, 500.0);
  std::string summary = tracer.Summary();
  EXPECT_NE(summary.find("phase/a"), std::string::npos);
  EXPECT_NE(summary.find("phase/b"), std::string::npos);
  // phase/a appears before phase/b (sorted) and has count 2.
  EXPECT_LT(summary.find("phase/a"), summary.find("phase/b"));
}

TEST(TracerTest, JsonEscapesSpecialCharacters) {
  obs::Tracer tracer;
  tracer.AddEvent("quote\"back\\slash\n", 0.0, 1.0);
  std::string json = tracer.ToChromeTraceJson();
  EXPECT_NE(json.find("quote\\\"back\\\\slash\\n"), std::string::npos);
}

// ------------------------------ telemetry ------------------------------

TEST(TelemetryRingTest, KeepsTailAndCountsDropped) {
  obs::TelemetryRing ring(4);
  for (int i = 1; i <= 10; ++i) {
    obs::IterationSample sample;
    sample.iteration = i;
    ring.Record(sample);
  }
  EXPECT_EQ(ring.total(), 10);
  EXPECT_EQ(ring.dropped(), 6);
  std::vector<obs::IterationSample> samples = ring.Samples();
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_EQ(samples.front().iteration, 7);
  EXPECT_EQ(samples.back().iteration, 10);
}

// --------------------- obs on/off solution identity ---------------------

// Same known-optimum universe as test_optimize: disjoint sources, quality =
// Card, best m sources = top-m ids.
class KnownOptimumFixture {
 public:
  explicit KnownOptimumFixture(int n = 10) {
    for (int i = 0; i < n; ++i) {
      DataSource s("s" + std::to_string(i), SourceSchema({"title"}));
      s.set_cardinality((i + 1) * 100);
      auto sig = std::make_unique<ExactSignature>();
      for (int t = 0; t < (i + 1) * 100; ++t) {
        sig->Add(static_cast<uint64_t>(i) * 1000000 + t);
      }
      s.set_signature(std::move(sig));
      universe_.AddSource(std::move(s));
    }
    model_.AddQef(std::make_unique<CardinalityQef>(), 1.0);
    graph_ = std::make_unique<SimilarityGraph>(
        SimilarityGraph::WithDefaults(universe_, 0.25));
    matcher_ = std::make_unique<ClusterMatcher>(universe_, *graph_);
  }

  CandidateEvaluator MakeEvaluator(const ProblemSpec& spec) {
    return CandidateEvaluator(universe_, *matcher_, model_, spec);
  }

  Universe universe_;
  QualityModel model_;
  std::unique_ptr<SimilarityGraph> graph_;
  std::unique_ptr<ClusterMatcher> matcher_;
};

SolverOptions FastOptions(uint64_t seed) {
  SolverOptions options;
  options.seed = seed;
  options.max_iterations = 120;
  options.stall_iterations = 30;
  options.random_samples = 200;
  options.record_trace = true;
  return options;
}

// Byte-level equality of every deterministic Solution field. Telemetry and
// the metrics snapshot are obs-only extras and deliberately excluded.
void ExpectSameSolution(const Solution& a, const Solution& b,
                        const std::string& label) {
  EXPECT_EQ(a.sources, b.sources) << label;
  EXPECT_EQ(a.quality, b.quality) << label;  // bitwise, not approx
  ASSERT_EQ(a.ga_qualities.size(), b.ga_qualities.size()) << label;
  for (size_t i = 0; i < a.ga_qualities.size(); ++i) {
    EXPECT_EQ(a.ga_qualities[i], b.ga_qualities[i]) << label;
  }
  EXPECT_EQ(a.stats.iterations, b.stats.iterations) << label;
  EXPECT_EQ(a.stats.evaluations, b.stats.evaluations) << label;
  EXPECT_EQ(a.stats.cache_hits, b.stats.cache_hits) << label;
  EXPECT_EQ(a.stats.stop_reason, b.stats.stop_reason) << label;
  ASSERT_EQ(a.stats.trace.size(), b.stats.trace.size()) << label;
  for (size_t i = 0; i < a.stats.trace.size(); ++i) {
    EXPECT_EQ(a.stats.trace[i].evaluations, b.stats.trace[i].evaluations)
        << label;
    EXPECT_EQ(a.stats.trace[i].best_quality, b.stats.trace[i].best_quality)
        << label;
  }
}

TEST(ObsIdentityTest, SolutionBitIdenticalWithObsOnAndOff) {
  const SolverKind kinds[] = {
      SolverKind::kTabu,   SolverKind::kLocalSearch, SolverKind::kAnnealing,
      SolverKind::kPso,    SolverKind::kGreedy,      SolverKind::kRandom,
      SolverKind::kExhaustive};
  KnownOptimumFixture fx;
  ProblemSpec spec;
  spec.max_sources = 3;
  CandidateEvaluator evaluator = fx.MakeEvaluator(spec);
  for (SolverKind kind : kinds) {
    std::unique_ptr<Solver> solver = MakeSolver(kind);
    for (uint64_t seed : {uint64_t{7}, uint64_t{42}}) {
      for (int num_threads : {1, 0}) {
        SolverOptions off = FastOptions(seed);
        off.num_threads = num_threads;
        Result<Solution> plain = solver->Solve(evaluator, off);
        ASSERT_TRUE(plain.ok()) << plain.status();

        obs::ObsContext obs;
        SolverOptions on = off;
        on.obs = &obs;
        Result<Solution> observed = solver->Solve(evaluator, on);
        ASSERT_TRUE(observed.ok()) << observed.status();

        std::string label = std::string(SolverKindName(kind)) + " seed=" +
                            std::to_string(seed) +
                            " threads=" + std::to_string(num_threads);
        ExpectSameSolution(plain.value(), observed.value(), label);
        // The observed run carries the extras; the plain run does not.
        EXPECT_EQ(plain->stats.metrics, nullptr) << label;
        ASSERT_NE(observed->stats.metrics, nullptr) << label;
        EXPECT_NE(observed->stats.stop_reason, StopReason::kUnknown) << label;
      }
    }
  }
}

// Strips the one wall-clock-valued metric family; everything left must be
// identical for any num_threads.
obs::MetricsSnapshot DeterministicPart(obs::MetricsSnapshot snap) {
  snap.histograms.erase(
      std::remove_if(snap.histograms.begin(), snap.histograms.end(),
                     [](const obs::HistogramSnapshot& h) {
                       return h.name == "eval.batch_latency_us";
                     }),
      snap.histograms.end());
  return snap;
}

void ExpectSameSnapshot(const obs::MetricsSnapshot& a,
                        const obs::MetricsSnapshot& b,
                        const std::string& label) {
  ASSERT_EQ(a.counters.size(), b.counters.size()) << label;
  for (size_t i = 0; i < a.counters.size(); ++i) {
    EXPECT_EQ(a.counters[i].name, b.counters[i].name) << label;
    EXPECT_EQ(a.counters[i].value, b.counters[i].value)
        << label << " counter " << a.counters[i].name;
  }
  ASSERT_EQ(a.histograms.size(), b.histograms.size()) << label;
  for (size_t i = 0; i < a.histograms.size(); ++i) {
    const obs::HistogramSnapshot& ha = a.histograms[i];
    const obs::HistogramSnapshot& hb = b.histograms[i];
    EXPECT_EQ(ha.name, hb.name) << label;
    EXPECT_EQ(ha.counts, hb.counts) << label << " histogram " << ha.name;
    EXPECT_EQ(ha.count, hb.count) << label << " histogram " << ha.name;
    EXPECT_EQ(ha.sum, hb.sum) << label << " histogram " << ha.name;
    EXPECT_EQ(ha.min, hb.min) << label << " histogram " << ha.name;
    EXPECT_EQ(ha.max, hb.max) << label << " histogram " << ha.name;
  }
}

TEST(ObsIdentityTest, MetricsTotalsIdenticalAcrossThreadCounts) {
  KnownOptimumFixture fx;
  ProblemSpec spec;
  spec.max_sources = 3;
  CandidateEvaluator evaluator = fx.MakeEvaluator(spec);
  const SolverKind kinds[] = {SolverKind::kTabu, SolverKind::kPso};
  for (SolverKind kind : kinds) {
    std::unique_ptr<Solver> solver = MakeSolver(kind);
    auto run = [&](int num_threads) {
      obs::ObsContext obs;
      SolverOptions options = FastOptions(42);
      options.num_threads = num_threads;
      options.obs = &obs;
      Result<Solution> solution = solver->Solve(evaluator, options);
      EXPECT_TRUE(solution.ok()) << solution.status();
      return DeterministicPart(obs.metrics().Snapshot());
    };
    obs::MetricsSnapshot sequential = run(1);
    obs::MetricsSnapshot parallel = run(0);
    ExpectSameSnapshot(sequential, parallel,
                       std::string(SolverKindName(kind)));
  }
}

TEST(ObsIdentityTest, TelemetryAndSnapshotReconcileWithStats) {
  KnownOptimumFixture fx;
  ProblemSpec spec;
  spec.max_sources = 3;
  CandidateEvaluator evaluator = fx.MakeEvaluator(spec);
  obs::ObsContext obs;
  SolverOptions options = FastOptions(42);
  options.obs = &obs;
  std::unique_ptr<Solver> solver = MakeSolver(SolverKind::kTabu);
  Result<Solution> solution = solver->Solve(evaluator, options);
  ASSERT_TRUE(solution.ok()) << solution.status();
  const SolverStats& stats = solution->stats;

  // One telemetry sample per counted iteration (capacity is ample here).
  ASSERT_FALSE(stats.telemetry.empty());
  EXPECT_EQ(stats.telemetry_dropped, 0);
  EXPECT_EQ(static_cast<int64_t>(stats.telemetry.size()), stats.iterations);
  // Incumbent quality is monotone non-decreasing across iterations.
  for (size_t i = 1; i < stats.telemetry.size(); ++i) {
    EXPECT_GE(stats.telemetry[i].incumbent_quality,
              stats.telemetry[i - 1].incumbent_quality);
  }
  EXPECT_EQ(stats.telemetry.back().incumbent_quality, solution->quality);

  // The snapshot's eval counters reconcile with the evaluator's own.
  ASSERT_NE(stats.metrics, nullptr);
  const obs::CounterSnapshot* computed =
      stats.metrics->FindCounter("eval.computed");
  const obs::CounterSnapshot* hits =
      stats.metrics->FindCounter("eval.cache_hit");
  ASSERT_NE(computed, nullptr);
  ASSERT_NE(hits, nullptr);
  EXPECT_EQ(computed->value, stats.evaluations);
  EXPECT_EQ(hits->value, stats.cache_hits);
  // The stop-reason counter was bumped.
  const obs::CounterSnapshot* stop = stats.metrics->FindCounter(
      "solver.stop." + std::string(StopReasonName(stats.stop_reason)));
  ASSERT_NE(stop, nullptr);
  EXPECT_EQ(stop->value, 1);
  // Spans were recorded (solve + batches).
  EXPECT_GT(obs.tracer().num_events(), 0);
}

// ----------------------- evaluator edge counters ------------------------

TEST(ObsEvaluatorTest, CollisionRecomputeCounter) {
  KnownOptimumFixture fx;
  ProblemSpec spec;
  spec.max_sources = 3;
  CandidateEvaluator evaluator = fx.MakeEvaluator(spec);
  evaluator.SetHashFunctionForTesting(
      [](const std::vector<SourceId>&) -> uint64_t { return 12345; });
  obs::ObsContext obs;
  evaluator.AttachObs(&obs);
  EXPECT_GT(evaluator.Quality({0, 1, 2}), 0.0);
  EXPECT_GT(evaluator.Quality({7, 8, 9}), 0.0);  // same key, different set
  evaluator.DetachObs();
  obs::MetricsSnapshot snap = obs.metrics().Snapshot();
  const obs::CounterSnapshot* collisions =
      snap.FindCounter("eval.collision_recompute");
  ASSERT_NE(collisions, nullptr);
  EXPECT_EQ(collisions->value, 1);
  EXPECT_EQ(snap.FindCounter("eval.computed")->value, 2);
}

TEST(ObsEvaluatorTest, ShardEvictionCounter) {
  KnownOptimumFixture fx;
  ProblemSpec spec;
  spec.max_sources = 3;
  CandidateEvaluator evaluator = fx.MakeEvaluator(spec);
  // Constant hash pins every candidate to one shard; capacity 1 makes each
  // insert into the occupied shard clear it first.
  evaluator.SetHashFunctionForTesting(
      [](const std::vector<SourceId>&) -> uint64_t { return 12345; });
  evaluator.SetShardCapacityForTesting(1);
  obs::ObsContext obs;
  evaluator.AttachObs(&obs);
  evaluator.Quality({0, 1, 2});
  evaluator.Quality({1, 2, 3});
  evaluator.Quality({2, 3, 4});
  evaluator.Quality({3, 4, 5});
  evaluator.DetachObs();
  obs::MetricsSnapshot snap = obs.metrics().Snapshot();
  const obs::CounterSnapshot* evictions =
      snap.FindCounter("eval.shard_eviction");
  ASSERT_NE(evictions, nullptr);
  EXPECT_EQ(evictions->value, 3);
}

// ------------------------------- prober --------------------------------

DataSource MakeProbeSource(const std::string& name, int64_t cardinality,
                           int64_t first_tuple) {
  DataSource source(name, SourceSchema({"title", "year"}));
  source.set_cardinality(cardinality);
  auto signature = std::make_unique<ExactSignature>();
  for (int64_t t = 0; t < cardinality; ++t) signature->Add(first_tuple + t);
  source.set_signature(std::move(signature));
  return source;
}

TEST(ObsProberTest, MetricsReconcileWithAcquisitionReport) {
  FaultRates rates;
  rates.transient = 0.6;
  rates.timeout = 0.2;
  rates.stale = 0.1;
  FaultPlan plan(99, rates);

  auto make_targets = [&] {
    std::vector<std::unique_ptr<ProbeTarget>> targets;
    for (int i = 0; i < 24; ++i) {
      auto inner = std::make_unique<InMemoryProbeTarget>(
          MakeProbeSource("src-" + std::to_string(i), 30 + i, i * 1000));
      targets.push_back(
          std::make_unique<FlakyProbeTarget>(std::move(inner), &plan));
    }
    return targets;
  };

  auto run = [&](int num_threads, obs::ObsContext* obs) {
    ProberOptions options;
    options.seed = 7;
    options.num_threads = num_threads;
    options.breaker.trip_threshold = 2;
    options.obs = obs;
    SourceProber prober(options);
    Result<Acquisition> acquired = prober.Acquire(make_targets());
    EXPECT_TRUE(acquired.ok()) << acquired.status();
    return std::move(acquired).value();
  };

  obs::ObsContext obs;
  Acquisition acquisition = run(1, &obs);
  const AcquisitionReport& report = acquisition.report;
  obs::MetricsSnapshot snap = obs.metrics().Snapshot();

  int64_t report_attempts = 0;
  int64_t report_trips = 0;
  for (const SourceAcquisition& s : report.sources) {
    report_attempts += s.attempts;
    report_trips += s.breaker_trips;
  }
  EXPECT_EQ(snap.FindCounter("prober.attempts")->value, report_attempts);
  EXPECT_EQ(snap.FindCounter("prober.breaker.trips")->value, report_trips);
  for (int i = 0; i < 4; ++i) {
    auto outcome = static_cast<AcquisitionOutcome>(i);
    const obs::CounterSnapshot* counter = snap.FindCounter(
        "prober.outcome." + std::string(AcquisitionOutcomeName(outcome)));
    ASSERT_NE(counter, nullptr);
    EXPECT_EQ(counter->value, report.CountOutcome(outcome))
        << AcquisitionOutcomeName(outcome);
  }
  // With a trip threshold of 2 and a 60% transient rate, trips happen.
  EXPECT_GT(report_trips, 0);

  // Same fan-out on a thread pool: the acquisition replays bit-identically
  // and so do ALL prober metrics (backoff waits are simulated-clock
  // valued, so even the histogram matches exactly).
  obs::ObsContext obs_parallel;
  Acquisition parallel = run(4, &obs_parallel);
  ASSERT_EQ(parallel.report.sources.size(), report.sources.size());
  for (size_t i = 0; i < report.sources.size(); ++i) {
    EXPECT_EQ(parallel.report.sources[i].outcome, report.sources[i].outcome);
    EXPECT_EQ(parallel.report.sources[i].attempts,
              report.sources[i].attempts);
  }
  ExpectSameSnapshot(snap, obs_parallel.metrics().Snapshot(),
                     "prober threads 1 vs 4");
  // The acquire + per-probe spans were recorded.
  EXPECT_GT(obs.tracer().num_events(), 0);
}

// ------------------------------- report --------------------------------

TEST(ObsReportTest, FormatSolutionShowsStopReasonAndObservability) {
  Engine::Options engine_options;
  obs::ObsContext obs;
  engine_options.obs = &obs;
  Universe universe;
  for (int i = 0; i < 6; ++i) {
    DataSource s("s" + std::to_string(i), SourceSchema({"title"}));
    s.set_cardinality((i + 1) * 50);
    auto sig = std::make_unique<ExactSignature>();
    for (int t = 0; t < (i + 1) * 50; ++t) {
      sig->Add(static_cast<uint64_t>(i) * 100000 + t);
    }
    s.set_signature(std::move(sig));
    universe.AddSource(std::move(s));
  }
  QualityModel model;
  model.AddQef(std::make_unique<CardinalityQef>(), 1.0);
  Engine engine(std::move(universe), std::move(model),
                std::move(engine_options));
  ProblemSpec spec;
  spec.max_sources = 2;
  Result<Solution> solution = engine.Solve(spec);
  ASSERT_TRUE(solution.ok()) << solution.status();

  std::string report =
      FormatSolution(solution.value(), engine.universe(),
                     engine.quality_model());
  EXPECT_NE(report.find("stop="), std::string::npos);
  EXPECT_NE(report.find("observability:"), std::string::npos);
  EXPECT_NE(report.find("hit rate"), std::string::npos);
  EXPECT_NE(report.find("incumbent curve:"), std::string::npos);
  EXPECT_NE(report.find("eval.computed"), std::string::npos);
  // Engine phases landed in the tracer.
  std::string trace = obs.tracer().ToChromeTraceJson();
  EXPECT_NE(trace.find("phase/match"), std::string::npos);
  EXPECT_NE(trace.find("phase/solve"), std::string::npos);
  EXPECT_NE(trace.find("solve/tabu"), std::string::npos);

  // Stats without a metrics snapshot (no ObsContext attached) render no
  // observability section at all.
  SolverStats plain_stats;
  EXPECT_EQ(FormatObservability(plain_stats), "");
}

TEST(ObsContextTest, FromEnvHonorsVariable) {
  // Unset or "0" → disabled (null); anything else → enabled.
  ::unsetenv(obs::ObsContext::kTraceEnvVar);
  EXPECT_EQ(obs::ObsContext::FromEnv(), nullptr);
  ::setenv(obs::ObsContext::kTraceEnvVar, "0", 1);
  EXPECT_EQ(obs::ObsContext::FromEnv(), nullptr);
  ::setenv(obs::ObsContext::kTraceEnvVar, "1", 1);
  std::unique_ptr<obs::ObsContext> obs = obs::ObsContext::FromEnv();
  ASSERT_NE(obs, nullptr);
  EXPECT_TRUE(obs->options().metrics);
  EXPECT_TRUE(obs->options().trace);
  ::unsetenv(obs::ObsContext::kTraceEnvVar);
}

}  // namespace
}  // namespace ube
