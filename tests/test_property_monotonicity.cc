// Metamorphic monotonicity oracles. Every law here is a *theorem* of the
// model implemented in this repo (not merely an intuition): relaxing the
// feasible region never hurts the optimum, restricting it never helps, a
// coverage-dominated duplicate source cannot move a coverage-only optimum,
// uniformly scaling QEF weights preserves the argmax, and tightening the
// matcher's θ/β thresholds only shrinks the generated mediated schema.
// See TESTING.md ("oracle taxonomy") for why e.g. the dominated-source law
// is deliberately stated against a coverage-only model.
#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "matching/cluster_matcher.h"
#include "matching/similarity_graph.h"
#include "optimize/solver.h"
#include "qef/qef.h"
#include "qef/quality_model.h"
#include "testkit/generators.h"
#include "testkit/oracles.h"
#include "testkit/property.h"
#include "util/rng.h"

namespace ube {
namespace {

using testkit::GenerateCandidate;
using testkit::GenerateSpec;
using testkit::GenerateUniverse;
using testkit::GenerateWeights;
using testkit::PropertyRunner;
using testkit::RequiredSources;
using testkit::SpecGenOptions;

// The paper's five-QEF model with explicit weights (parallel to
// testkit::GenerateModel, which draws its own).
QualityModel BuildModel(const std::vector<double>& weights) {
  UBE_CHECK(weights.size() == 5, "BuildModel wants 5 weights");
  QualityModel model;
  model.AddQef(std::make_unique<MatchingQualityQef>(), weights[0]);
  model.AddQef(std::make_unique<CardinalityQef>(), weights[1]);
  model.AddQef(std::make_unique<CoverageQef>(), weights[2]);
  model.AddQef(std::make_unique<RedundancyQef>(), weights[3]);
  model.AddQef(std::make_unique<CharacteristicQef>(
                   "mttf", Aggregation::kWeightedSum),
               weights[4]);
  return model;
}

double ExhaustiveOptimum(const Engine& engine, const ProblemSpec& spec) {
  Result<Solution> solution = engine.Solve(spec, SolverKind::kExhaustive);
  UBE_CHECK(solution.ok(), "exhaustive solve failed in monotonicity oracle");
  return solution->quality;
}

// Raising m only enlarges the feasible region, and per-candidate quality
// does not depend on m — so the optimum is non-decreasing in m.
TEST(MonotonicityTest, OptimumNonDecreasingInMaxSources) {
  PropertyRunner runner("optimum-nondecreasing-in-m", 30);
  for (int c = 0; c < runner.num_cases(); ++c) {
    SCOPED_TRACE(runner.Replay(c));
    Rng rng = runner.CaseRng(c);
    Universe universe = GenerateUniverse(rng);
    QualityModel model = testkit::GenerateModel(rng);
    SpecGenOptions no_constraints;
    no_constraints.source_constraint_probability = 0.0;
    no_constraints.ban_probability = 0.0;
    no_constraints.ga_constraint_probability = 0.0;
    ProblemSpec spec = GenerateSpec(rng, universe, no_constraints);
    Engine engine(std::move(universe), std::move(model));

    double previous = -1.0;
    for (int m = 1; m <= 4; ++m) {
      spec.max_sources = m;
      double optimum = ExhaustiveOptimum(engine, spec);
      EXPECT_GE(optimum, previous - 1e-9) << "m = " << m;
      previous = optimum;
    }
  }
}

// Banning a source removes candidates and changes nothing else: the
// optimum can only stay or drop.
TEST(MonotonicityTest, BanningNeverImprovesOptimum) {
  PropertyRunner runner("banning-never-improves", 30);
  for (int c = 0; c < runner.num_cases(); ++c) {
    SCOPED_TRACE(runner.Replay(c));
    Rng rng = runner.CaseRng(c);
    Universe universe = GenerateUniverse(rng);
    QualityModel model = testkit::GenerateModel(rng);
    ProblemSpec spec = GenerateSpec(rng, universe);
    const int n = universe.num_sources();
    Engine engine(std::move(universe), std::move(model));

    std::vector<SourceId> required = RequiredSources(spec);
    std::vector<SourceId> candidates_to_ban;
    for (SourceId s = 0; s < n; ++s) {
      bool excluded =
          std::find(required.begin(), required.end(), s) != required.end() ||
          std::find(spec.banned_sources.begin(), spec.banned_sources.end(),
                    s) != spec.banned_sources.end();
      if (!excluded) candidates_to_ban.push_back(s);
    }
    // Keep at least one selectable source so the banned spec stays solvable
    // even when there are no required sources.
    if (candidates_to_ban.size() < 2) continue;

    double base = ExhaustiveOptimum(engine, spec);
    ProblemSpec banned = spec;
    banned.banned_sources.push_back(
        candidates_to_ban[rng.UniformInt(candidates_to_ban.size())]);
    double restricted = ExhaustiveOptimum(engine, banned);
    EXPECT_LE(restricted, base + 1e-9);
  }
}

// Forcing one more source into C shrinks the candidate set *and* makes the
// Match validity requirement strictly harder — both effects point down.
TEST(MonotonicityTest, AddingSourceConstraintNeverImprovesOptimum) {
  PropertyRunner runner("source-constraint-never-improves", 30);
  for (int c = 0; c < runner.num_cases(); ++c) {
    SCOPED_TRACE(runner.Replay(c));
    Rng rng = runner.CaseRng(c);
    Universe universe = GenerateUniverse(rng);
    QualityModel model = testkit::GenerateModel(rng);
    ProblemSpec spec = GenerateSpec(rng, universe);
    const int n = universe.num_sources();
    Engine engine(std::move(universe), std::move(model));

    std::vector<SourceId> required = RequiredSources(spec);
    if (static_cast<int>(required.size()) + 1 > spec.max_sources) continue;
    std::vector<SourceId> addable;
    for (SourceId s = 0; s < n; ++s) {
      bool excluded =
          std::find(required.begin(), required.end(), s) != required.end() ||
          std::find(spec.banned_sources.begin(), spec.banned_sources.end(),
                    s) != spec.banned_sources.end();
      if (!excluded) addable.push_back(s);
    }
    if (addable.empty()) continue;

    double base = ExhaustiveOptimum(engine, spec);
    ProblemSpec constrained = spec;
    constrained.source_constraints.push_back(
        addable[rng.UniformInt(addable.size())]);
    double restricted = ExhaustiveOptimum(engine, constrained);
    EXPECT_LE(restricted, base + 1e-9);
  }
}

// Under a *coverage-only* model with exact signatures, adding a source
// whose tuple set is a subset of an existing source's changes neither any
// existing candidate's coverage nor |∪U| — and any candidate using the copy
// is matched by one using the original. The optimum is exactly unchanged.
// (Deliberately NOT stated for the full model: cardinality's duplicate-
// counting denominator and matching quality both react to duplicates.)
TEST(MonotonicityTest, DominatedSourcePreservesCoverageOptimum) {
  PropertyRunner runner("dominated-source-coverage", 30);
  for (int c = 0; c < runner.num_cases(); ++c) {
    SCOPED_TRACE(runner.Replay(c));
    Rng rng = runner.CaseRng(c);
    Rng replay = rng;  // identical stream => identical base universe
    Universe base_universe = GenerateUniverse(rng);
    Universe extended_universe = GenerateUniverse(replay);

    SpecGenOptions no_constraints;
    no_constraints.source_constraint_probability = 0.0;
    no_constraints.ban_probability = 0.0;
    no_constraints.ga_constraint_probability = 0.0;
    ProblemSpec spec = GenerateSpec(rng, base_universe, no_constraints);
    const SourceId original =
        static_cast<SourceId>(rng.UniformInt(
            static_cast<uint64_t>(base_universe.num_sources())));
    testkit::AddDominatedCopy(rng, extended_universe, original);

    QualityModel coverage_only;
    coverage_only.AddQef(std::make_unique<CoverageQef>(), 1.0);
    QualityModel coverage_only2;
    coverage_only2.AddQef(std::make_unique<CoverageQef>(), 1.0);

    Engine base_engine(std::move(base_universe), std::move(coverage_only));
    Engine extended_engine(std::move(extended_universe),
                           std::move(coverage_only2));
    double base = ExhaustiveOptimum(base_engine, spec);
    double extended = ExhaustiveOptimum(extended_engine, spec);
    EXPECT_NEAR(extended, base, 1e-12);
  }
}

// Q(S) = Σ w_k F_k(S) with w normalized: scaling every raw weight by the
// same c > 0 leaves the normalized weights — hence the ranking of all
// candidates — unchanged. Stated tie-robustly: each model's argmax must be
// an argmax under the other model too.
TEST(MonotonicityTest, UniformWeightScalingPreservesArgmax) {
  PropertyRunner runner("weight-scaling-argmax", 30);
  for (int c = 0; c < runner.num_cases(); ++c) {
    SCOPED_TRACE(runner.Replay(c));
    Rng rng = runner.CaseRng(c);
    Rng replay = rng;
    Universe universe1 = GenerateUniverse(rng);
    Universe universe2 = GenerateUniverse(replay);

    std::vector<double> raw(5);
    for (double& w : raw) w = rng.UniformDouble(0.05, 1.0);
    const double scale = rng.UniformDouble(0.5, 20.0);
    std::vector<double> scaled = raw;
    for (double& w : scaled) w *= scale;
    auto normalize = [](std::vector<double> w) {
      double sum = 0.0;
      for (double v : w) sum += v;
      for (double& v : w) v /= sum;
      return w;
    };

    SpecGenOptions no_constraints;
    no_constraints.source_constraint_probability = 0.0;
    no_constraints.ban_probability = 0.0;
    no_constraints.ga_constraint_probability = 0.0;
    ProblemSpec spec = GenerateSpec(rng, universe1, no_constraints);

    Engine engine1(std::move(universe1), BuildModel(normalize(raw)));
    Engine engine2(std::move(universe2), BuildModel(normalize(scaled)));
    Result<Solution> sol1 = engine1.Solve(spec, SolverKind::kExhaustive);
    Result<Solution> sol2 = engine2.Solve(spec, SolverKind::kExhaustive);
    ASSERT_TRUE(sol1.ok()) << sol1.status();
    ASSERT_TRUE(sol2.ok()) << sol2.status();

    EXPECT_NEAR(sol1->quality, sol2->quality, 1e-9);
    // Cross-evaluate so exact ties between candidates cannot flake the test.
    Result<CandidateEvaluator::Evaluation> cross12 =
        engine2.EvaluateCandidate(spec, sol1->sources);
    Result<CandidateEvaluator::Evaluation> cross21 =
        engine1.EvaluateCandidate(spec, sol2->sources);
    ASSERT_TRUE(cross12.ok()) << cross12.status();
    ASSERT_TRUE(cross21.ok()) << cross21.status();
    EXPECT_NEAR(cross12->quality, sol2->quality, 1e-9);
    EXPECT_NEAR(cross21->quality, sol1->quality, 1e-9);
  }
}

// Matcher-level θ law: every merge Algorithm 1 performs at θ_high has
// similarity >= θ_high > θ_low, so it is also performed at θ_low; the
// θ_high schema can only lose attributes relative to the θ_low one.
TEST(MonotonicityTest, ThetaTighteningOnlyShrinksSchema) {
  PropertyRunner runner("theta-tightening", 40);
  for (int c = 0; c < runner.num_cases(); ++c) {
    SCOPED_TRACE(runner.Replay(c));
    Rng rng = runner.CaseRng(c);
    Universe universe = GenerateUniverse(rng);
    ProblemSpec trivial;
    trivial.max_sources = universe.num_sources();
    std::vector<SourceId> sources = GenerateCandidate(rng, universe, trivial);
    if (sources.size() < 2) continue;

    SimilarityGraph graph = SimilarityGraph::WithDefaults(universe, 0.0);
    ClusterMatcher matcher(universe, graph);
    MatchOptions loose{rng.UniformDouble(0.3, 0.6), 2};
    MatchOptions tight{loose.theta + rng.UniformDouble(0.05, 0.3), 2};

    // Source constraints = S makes validity meaningful: every chosen source
    // must be covered by some GA.
    Result<MatchResult> at_loose = matcher.Match(sources, sources, {}, loose);
    Result<MatchResult> at_tight = matcher.Match(sources, sources, {}, tight);
    ASSERT_TRUE(at_loose.ok()) << at_loose.status();
    ASSERT_TRUE(at_tight.ok()) << at_tight.status();

    if (at_tight->valid) EXPECT_TRUE(at_loose->valid);
    EXPECT_LE(at_tight->schema.TotalAttributes(),
              at_loose->schema.TotalAttributes());
    // Note: strict GA-level subsumption M(θ_high) ⊑ M(θ_low) is *not*
    // asserted — mid-run elimination at θ_high can diverge the greedy merge
    // order, re-partitioning attributes across GAs (observed ~1/2000 random
    // instances). Only the aggregate laws above are stable.

    // Structural sanity at both thresholds.
    for (const MatchResult* r : {&*at_loose, &*at_tight}) {
      EXPECT_TRUE(r->schema.GasAreDisjointAndValid());
      if (r->valid) EXPECT_TRUE(r->schema.IsValidOn(sources));
      for (double q : r->ga_qualities) {
        EXPECT_GE(q, 0.0);
        EXPECT_LE(q, 1.0);
      }
    }
  }
}

// Matcher-level β law: raising the minimum GA size only filters GAs out of
// the output schema.
TEST(MonotonicityTest, BetaTighteningOnlyShrinksSchema) {
  PropertyRunner runner("beta-tightening", 40);
  for (int c = 0; c < runner.num_cases(); ++c) {
    SCOPED_TRACE(runner.Replay(c));
    Rng rng = runner.CaseRng(c);
    Universe universe = GenerateUniverse(rng);
    ProblemSpec trivial;
    trivial.max_sources = universe.num_sources();
    std::vector<SourceId> sources = GenerateCandidate(rng, universe, trivial);
    if (sources.size() < 2) continue;

    SimilarityGraph graph = SimilarityGraph::WithDefaults(universe, 0.0);
    ClusterMatcher matcher(universe, graph);
    const double theta = rng.UniformDouble(0.3, 0.7);
    const int beta_high = 3 + static_cast<int>(rng.UniformInt(2));  // 3 or 4
    MatchOptions loose{theta, 2};
    MatchOptions tight{theta, beta_high};

    Result<MatchResult> at_loose = matcher.Match(sources, sources, {}, loose);
    Result<MatchResult> at_tight = matcher.Match(sources, sources, {}, tight);
    ASSERT_TRUE(at_loose.ok()) << at_loose.status();
    ASSERT_TRUE(at_tight.ok()) << at_tight.status();

    if (at_tight->valid) EXPECT_TRUE(at_loose->valid);
    EXPECT_LE(at_tight->schema.TotalAttributes(),
              at_loose->schema.TotalAttributes());
    EXPECT_TRUE(at_tight->schema.IsSubsumedBy(at_loose->schema));
    for (const GlobalAttribute& ga : at_tight->schema.gas()) {
      EXPECT_GE(ga.size(), beta_high);
    }
    for (const GlobalAttribute& ga : at_loose->schema.gas()) {
      EXPECT_GE(ga.size(), 2);
    }
  }
}

}  // namespace
}  // namespace ube
