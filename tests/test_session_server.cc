// Multi-tenant session server (ISSUE 10): N concurrent sessions over one
// immutable engine snapshot. The suite checks the isolation invariants the
// server is built on — per-session weight overlays and ban lists that solve
// byte-identically to single-tenant runs, a shared quality cache that can
// never cross-serve two specs (verify-on-hit), warm-start re-solve with a
// cold fallback — and replays N concurrent sessions deterministically (the
// TSan soak target in CI).
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/session_server.h"
#include "obs/obs.h"
#include "util/thread_pool.h"
#include "workload/generator.h"

namespace ube {
namespace {

WorkloadConfig SmallConfig(int num_sources = 40, uint64_t seed = 17) {
  WorkloadConfig config;
  config.num_sources = num_sources;
  config.seed = seed;
  config.scale = 0.001;
  return config;
}

Engine MakeEngine(int num_sources = 40, uint64_t seed = 17) {
  GeneratedWorkload w = GenerateWorkload(SmallConfig(num_sources, seed));
  return Engine(std::move(w.universe), QualityModel::MakeDefault());
}

SolverOptions FastSolve(uint64_t seed = 42) {
  SolverOptions options;
  options.seed = seed;
  options.max_iterations = 120;
  options.stall_iterations = 30;
  return options;
}

SessionServer::Options FastServerOptions() {
  SessionServer::Options options;
  options.solver_options = FastSolve();
  return options;
}

// Byte-level equality on everything the user sees. Solver stats are
// deliberately excluded: with a shared cache the *computed* evaluation
// count legitimately depends on what a sibling session cached first.
void ExpectSameSolution(const Solution& a, const Solution& b) {
  EXPECT_EQ(a.sources, b.sources);
  EXPECT_EQ(a.quality, b.quality);  // exact bits, not NEAR
  ASSERT_EQ(a.breakdown.scores.size(), b.breakdown.scores.size());
  for (size_t i = 0; i < a.breakdown.scores.size(); ++i) {
    EXPECT_EQ(a.breakdown.scores[i], b.breakdown.scores[i]) << "QEF " << i;
  }
}

// --------------------- SharedQualityCache unit tests ---------------------

TEST(SharedQualityCacheTest, HitMissAndVerifyOnHit) {
  SharedQualityCache cache;
  const std::vector<SourceId> cand = {1, 2, 3};
  double quality = 0.0;
  EXPECT_FALSE(cache.Lookup(/*fingerprint=*/7, /*key=*/99, cand, &quality));
  cache.Insert(7, 99, cand, 0.5);
  ASSERT_TRUE(cache.Lookup(7, 99, cand, &quality));
  EXPECT_DOUBLE_EQ(quality, 0.5);
  // A different fingerprint with the same key maps to a different slot
  // (the fingerprint is mixed into the slot), so it simply misses.
  EXPECT_FALSE(cache.Lookup(8, 99, cand, &quality));
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().misses, 2);
  EXPECT_EQ(cache.stats().insertions, 1);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(SharedQualityCacheTest, CrossSpecCollisionIsRejectedNotServed) {
  // Identity mix: the slot is the candidate key alone, so two specs'
  // entries for the same key land on one slot — the exact collision the
  // fingerprint check must catch. A poisoned cache would return spec A's
  // quality to spec B; the contract is a reject (recompute) instead.
  SharedQualityCache cache;
  cache.SetIdentityMixForTesting();
  const std::vector<SourceId> cand = {1, 2, 3};
  cache.Insert(/*fingerprint=*/7, /*key=*/99, cand, 0.5);
  double quality = -1.0;
  EXPECT_FALSE(cache.Lookup(/*fingerprint=*/8, 99, cand, &quality));
  EXPECT_EQ(quality, -1.0) << "poisoned value leaked across specs";
  EXPECT_EQ(cache.stats().rejects, 1);
  // Same slot, same fingerprint, different candidate (a 64-bit hash
  // collision): also rejected.
  const std::vector<SourceId> other = {4, 5};
  EXPECT_FALSE(cache.Lookup(7, 99, other, &quality));
  EXPECT_EQ(cache.stats().rejects, 2);
  // The honest owner still hits.
  EXPECT_TRUE(cache.Lookup(7, 99, cand, &quality));
  EXPECT_DOUBLE_EQ(quality, 0.5);
}

TEST(SharedQualityCacheTest, FullShardIsClearedOnInsert) {
  SharedQualityCache cache(/*max_entries_per_shard=*/4);
  const std::vector<SourceId> cand = {0};
  for (uint64_t k = 0; k < 256; ++k) cache.Insert(1, k, cand, 0.1);
  EXPECT_GT(cache.stats().evictions, 0);
  // Bounded: never more than shards x bound entries.
  EXPECT_LE(cache.size(), 16u * 4u);
}

// --------------------------- server lifecycle ----------------------------

TEST(SessionServerTest, OpenCloseFind) {
  obs::ObsContext obs;
  SessionServer::Options options = FastServerOptions();
  options.obs = &obs;
  SessionServer server(MakeEngine(), std::move(options));

  auto [id_a, a] = server.Open();
  auto [id_b, b] = server.Open();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(id_a, id_b);
  EXPECT_EQ(server.num_open(), 2);
  EXPECT_EQ(server.total_opened(), 2);
  EXPECT_EQ(server.Find(id_a), a);
  EXPECT_EQ(server.Find(id_b), b);

  EXPECT_TRUE(server.Close(id_a).ok());
  EXPECT_EQ(server.Find(id_a), nullptr);
  EXPECT_EQ(server.num_open(), 1);
  EXPECT_EQ(server.total_opened(), 2);
  EXPECT_FALSE(server.Close(id_a).ok()) << "double close must be NotFound";

  obs::MetricsSnapshot snapshot = obs.metrics().Snapshot();
  const obs::CounterSnapshot* opened =
      snapshot.FindCounter("server/sessions_opened");
  const obs::CounterSnapshot* closed =
      snapshot.FindCounter("server/sessions_closed");
  ASSERT_NE(opened, nullptr);
  ASSERT_NE(closed, nullptr);
  EXPECT_EQ(opened->value, 2);
  EXPECT_EQ(closed->value, 1);
}

TEST(SessionServerTest, OpenWiresWarmStartAndSharedCache) {
  SessionServer server(MakeEngine(), FastServerOptions());
  auto [id, session] = server.Open();
  (void)id;
  EXPECT_TRUE(session->warm_start());
  EXPECT_EQ(session->solver_options().shared_cache, &server.mutable_cache());
  EXPECT_EQ(session->repair_options().shared_cache, &server.mutable_cache());
}

// ------------------------- isolation invariants --------------------------

// The acceptance bar: two sessions with different weights and bans over one
// engine produce solutions byte-identical to single-session runs of the
// same specs. This is the regression for both PR-10 bugs at once — the
// SetWeight shared-model mutation and spec-blind cache reuse would each
// break it.
TEST(SessionServerTest, DifferentWeightsAndBansMatchSingleTenantRuns) {
  SessionServer server(MakeEngine(), FastServerOptions());
  auto [id_a, a] = server.Open();
  auto [id_b, b] = server.Open();
  (void)id_a;
  (void)id_b;
  a->SetMaxSources(5);
  b->SetMaxSources(5);
  ASSERT_TRUE(a->SetWeight("cardinality", 0.7).ok());
  ASSERT_TRUE(a->BanSource(3).ok());
  ASSERT_TRUE(b->SetWeight("coverage", 0.8).ok());
  ASSERT_TRUE(b->BanSource(5).ok());

  Result<Solution> sol_a = a->Iterate();
  Result<Solution> sol_b = b->Iterate();
  ASSERT_TRUE(sol_a.ok()) << sol_a.status();
  ASSERT_TRUE(sol_b.ok()) << sol_b.status();

  // Reference: a fresh single-tenant engine (same workload seed) solving
  // the very same specs, no server, no shared cache.
  Engine solo = MakeEngine();
  Result<Solution> ref_a = solo.Solve(a->spec(), SolverKind::kTabu,
                                      FastSolve());
  Result<Solution> ref_b = solo.Solve(b->spec(), SolverKind::kTabu,
                                      FastSolve());
  ASSERT_TRUE(ref_a.ok() && ref_b.ok());
  ExpectSameSolution(sol_a.value(), ref_a.value());
  ExpectSameSolution(sol_b.value(), ref_b.value());
}

// Two sessions posing the *same* effective problem share cache hits — and
// still answer byte-identically.
TEST(SessionServerTest, EqualSpecSessionsShareCacheHitsSafely) {
  SessionServer server(MakeEngine(), FastServerOptions());
  auto [id_a, a] = server.Open();
  auto [id_b, b] = server.Open();
  (void)id_a;
  (void)id_b;
  a->SetMaxSources(5);
  b->SetMaxSources(5);

  Result<Solution> sol_a = a->Iterate();  // populates the shared cache
  const SharedQualityCache::Stats after_a = server.cache().stats();
  Result<Solution> sol_b = b->Iterate();  // same fingerprint: hits
  const SharedQualityCache::Stats after_b = server.cache().stats();
  ASSERT_TRUE(sol_a.ok() && sol_b.ok());
  ExpectSameSolution(sol_a.value(), sol_b.value());
  EXPECT_GT(after_b.hits, after_a.hits)
      << "equal-spec sessions did not share the cache";
}

// --------------------------- warm-start loop -----------------------------

TEST(SessionServerTest, FeedbackGestureWarmStartsTheReSolve) {
  SessionServer server(MakeEngine(), FastServerOptions());
  auto [id, session] = server.Open();
  (void)id;
  session->SetMaxSources(5);

  Result<Solution> first = session->Iterate();
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(session->stats().cold_solves, 1);
  EXPECT_EQ(session->stats().warm_solves, 0);

  // The canonical gesture: reject one source of the proposal, re-solve.
  ASSERT_GE(first->sources.size(), 2u);
  ASSERT_TRUE(session->BanSource(first->sources.front()).ok());
  Result<Solution> second = session->Iterate();
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(session->stats().warm_solves, 1)
      << "re-solve after a ban should have warm-started from the repaired "
         "incumbent";
  for (SourceId s : second->sources) {
    EXPECT_NE(s, first->sources.front()) << "banned source in solution";
  }
  EXPECT_EQ(session->stats().iterations, 2);
  EXPECT_EQ(session->stats().feedback_gestures, 1);
}

TEST(SessionServerTest, WipedOutIncumbentFallsBackCold) {
  SessionServer server(MakeEngine(), FastServerOptions());
  auto [id, session] = server.Open();
  (void)id;
  session->SetMaxSources(4);

  Result<Solution> first = session->Iterate();
  ASSERT_TRUE(first.ok()) << first.status();
  // Ban the whole incumbent: the repair seed is empty, Iterate must fall
  // back to a cold solve (and still succeed — the universe is large).
  for (SourceId s : first->sources) {
    ASSERT_TRUE(session->BanSource(s).ok());
  }
  Result<Solution> second = session->Iterate();
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(session->stats().cold_solves, 2);
  EXPECT_EQ(session->stats().warm_solves, 0);
  for (SourceId banned : first->sources) {
    for (SourceId s : second->sources) EXPECT_NE(s, banned);
  }
}

TEST(SessionServerTest, FailedIterateKeepsHistoryAndCountsIt) {
  SessionServer server(MakeEngine(), FastServerOptions());
  auto [id, session] = server.Open();
  (void)id;
  session->SetMaxSources(5);
  ASSERT_TRUE(session->Iterate().ok());
  const Solution before = *session->last();

  session->SetMaxSources(1);
  ASSERT_TRUE(session->PinSource(0).ok());
  ASSERT_TRUE(session->PinSource(1).ok());
  Result<Solution> failed = session->Iterate();
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(session->num_iterations(), 1);
  ExpectSameSolution(*session->last(), before);
  EXPECT_EQ(session->stats().failed_solves, 1);
}

// ----------------------- concurrent determinism --------------------------

// One deterministic per-session scenario: distinct spec per session id
// (distinct fingerprint, so sessions never share cache entries and the
// replay claim is exact), two feedback rounds, warm-start on.
std::vector<Solution> DriveSession(Session* session, int session_index) {
  std::vector<Solution> produced;
  session->SetMaxSources(5);
  EXPECT_TRUE(
      session
          ->SetWeight(session_index % 2 == 0 ? "cardinality" : "coverage",
                      0.5 + 0.02 * static_cast<double>(session_index % 8))
          .ok());
  EXPECT_TRUE(session->BanSource(session_index % 16).ok());

  Result<Solution> first = session->Iterate();
  EXPECT_TRUE(first.ok()) << first.status();
  if (first.ok()) produced.push_back(first.value());

  if (first.ok() && !first->sources.empty()) {
    Status ban = session->BanSource(first->sources.back());
    EXPECT_TRUE(ban.ok()) << ban;
  }
  Result<Solution> second = session->Iterate();
  EXPECT_TRUE(second.ok()) << second.status();
  if (second.ok()) produced.push_back(second.value());
  return produced;
}

// The session-soak target: N sessions with interleaved feedback gestures
// run concurrently over one server, then the same scenarios replay
// sequentially on a fresh server — every session's whole history must come
// back byte-identical. Under TSan this also proves the engine snapshot,
// the shared cache and the metrics path are race-free.
TEST(SessionServerTest, ConcurrentSessionsReplayDeterministically) {
  constexpr int kSessions = 8;

  SessionServer concurrent(MakeEngine(), FastServerOptions());
  std::vector<Session*> sessions;
  for (int i = 0; i < kSessions; ++i) {
    sessions.push_back(concurrent.Open().second);
  }
  std::vector<std::vector<Solution>> parallel_runs(kSessions);
  ThreadPool pool(kSessions);
  pool.ParallelFor(kSessions, [&](size_t i) {
    parallel_runs[i] = DriveSession(sessions[i], static_cast<int>(i));
  });

  SessionServer sequential(MakeEngine(), FastServerOptions());
  for (int i = 0; i < kSessions; ++i) {
    std::vector<Solution> replay =
        DriveSession(sequential.Open().second, i);
    ASSERT_EQ(parallel_runs[static_cast<size_t>(i)].size(), replay.size())
        << "session " << i;
    for (size_t j = 0; j < replay.size(); ++j) {
      ExpectSameSolution(parallel_runs[static_cast<size_t>(i)][j], replay[j]);
    }
  }
  EXPECT_EQ(concurrent.num_open(), kSessions);
}

}  // namespace
}  // namespace ube
